# Empty dependencies file for universal_router.
# This may be replaced when dependencies are built.
