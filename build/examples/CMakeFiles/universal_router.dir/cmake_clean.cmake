file(REMOVE_RECURSE
  "CMakeFiles/universal_router.dir/universal_router.cc.o"
  "CMakeFiles/universal_router.dir/universal_router.cc.o.d"
  "universal_router"
  "universal_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
