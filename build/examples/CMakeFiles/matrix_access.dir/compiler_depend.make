# Empty compiler generated dependencies file for matrix_access.
# This may be replaced when dependencies are built.
