file(REMOVE_RECURSE
  "CMakeFiles/matrix_access.dir/matrix_access.cc.o"
  "CMakeFiles/matrix_access.dir/matrix_access.cc.o.d"
  "matrix_access"
  "matrix_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
