# Empty dependencies file for fft_reorder.
# This may be replaced when dependencies are built.
