file(REMOVE_RECURSE
  "CMakeFiles/fft_reorder.dir/fft_reorder.cc.o"
  "CMakeFiles/fft_reorder.dir/fft_reorder.cc.o.d"
  "fft_reorder"
  "fft_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
