# Empty dependencies file for simd_permute.
# This may be replaced when dependencies are built.
