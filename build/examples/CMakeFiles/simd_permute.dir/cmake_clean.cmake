file(REMOVE_RECURSE
  "CMakeFiles/simd_permute.dir/simd_permute.cc.o"
  "CMakeFiles/simd_permute.dir/simd_permute.cc.o.d"
  "simd_permute"
  "simd_permute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_permute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
