# Empty dependencies file for bench_two_pass.
# This may be replaced when dependencies are built.
