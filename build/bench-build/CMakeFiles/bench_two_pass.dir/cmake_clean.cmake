file(REMOVE_RECURSE
  "../bench/bench_two_pass"
  "../bench/bench_two_pass.pdb"
  "CMakeFiles/bench_two_pass.dir/bench_two_pass.cc.o"
  "CMakeFiles/bench_two_pass.dir/bench_two_pass.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
