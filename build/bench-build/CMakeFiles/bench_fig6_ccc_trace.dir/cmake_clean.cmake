file(REMOVE_RECURSE
  "../bench/bench_fig6_ccc_trace"
  "../bench/bench_fig6_ccc_trace.pdb"
  "CMakeFiles/bench_fig6_ccc_trace.dir/bench_fig6_ccc_trace.cc.o"
  "CMakeFiles/bench_fig6_ccc_trace.dir/bench_fig6_ccc_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ccc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
