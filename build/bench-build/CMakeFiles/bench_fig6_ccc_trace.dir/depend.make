# Empty dependencies file for bench_fig6_ccc_trace.
# This may be replaced when dependencies are built.
