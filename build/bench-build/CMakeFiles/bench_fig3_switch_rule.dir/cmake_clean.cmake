file(REMOVE_RECURSE
  "../bench/bench_fig3_switch_rule"
  "../bench/bench_fig3_switch_rule.pdb"
  "CMakeFiles/bench_fig3_switch_rule.dir/bench_fig3_switch_rule.cc.o"
  "CMakeFiles/bench_fig3_switch_rule.dir/bench_fig3_switch_rule.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_switch_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
