# Empty compiler generated dependencies file for bench_fig3_switch_rule.
# This may be replaced when dependencies are built.
