file(REMOVE_RECURSE
  "../bench/bench_packet"
  "../bench/bench_packet.pdb"
  "CMakeFiles/bench_packet.dir/bench_packet.cc.o"
  "CMakeFiles/bench_packet.dir/bench_packet.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
