# Empty dependencies file for bench_linear_class.
# This may be replaced when dependencies are built.
