file(REMOVE_RECURSE
  "../bench/bench_linear_class"
  "../bench/bench_linear_class.pdb"
  "CMakeFiles/bench_linear_class.dir/bench_linear_class.cc.o"
  "CMakeFiles/bench_linear_class.dir/bench_linear_class.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
