file(REMOVE_RECURSE
  "../bench/bench_gate_model"
  "../bench/bench_gate_model.pdb"
  "CMakeFiles/bench_gate_model.dir/bench_gate_model.cc.o"
  "CMakeFiles/bench_gate_model.dir/bench_gate_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gate_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
