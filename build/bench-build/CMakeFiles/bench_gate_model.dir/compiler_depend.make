# Empty compiler generated dependencies file for bench_gate_model.
# This may be replaced when dependencies are built.
