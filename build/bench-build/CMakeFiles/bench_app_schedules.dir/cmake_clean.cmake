file(REMOVE_RECURSE
  "../bench/bench_app_schedules"
  "../bench/bench_app_schedules.pdb"
  "CMakeFiles/bench_app_schedules.dir/bench_app_schedules.cc.o"
  "CMakeFiles/bench_app_schedules.dir/bench_app_schedules.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
