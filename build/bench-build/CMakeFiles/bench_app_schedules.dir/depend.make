# Empty dependencies file for bench_app_schedules.
# This may be replaced when dependencies are built.
