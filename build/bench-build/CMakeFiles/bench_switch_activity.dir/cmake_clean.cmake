file(REMOVE_RECURSE
  "../bench/bench_switch_activity"
  "../bench/bench_switch_activity.pdb"
  "CMakeFiles/bench_switch_activity.dir/bench_switch_activity.cc.o"
  "CMakeFiles/bench_switch_activity.dir/bench_switch_activity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switch_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
