# Empty compiler generated dependencies file for bench_switch_activity.
# This may be replaced when dependencies are built.
