file(REMOVE_RECURSE
  "../bench/bench_parallel_setup"
  "../bench/bench_parallel_setup.pdb"
  "CMakeFiles/bench_parallel_setup.dir/bench_parallel_setup.cc.o"
  "CMakeFiles/bench_parallel_setup.dir/bench_parallel_setup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
