# Empty compiler generated dependencies file for bench_parallel_setup.
# This may be replaced when dependencies are built.
