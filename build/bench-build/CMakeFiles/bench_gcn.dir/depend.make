# Empty dependencies file for bench_gcn.
# This may be replaced when dependencies are built.
