file(REMOVE_RECURSE
  "../bench/bench_gcn"
  "../bench/bench_gcn.pdb"
  "CMakeFiles/bench_gcn.dir/bench_gcn.cc.o"
  "CMakeFiles/bench_gcn.dir/bench_gcn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
