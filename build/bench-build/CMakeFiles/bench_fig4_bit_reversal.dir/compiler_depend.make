# Empty compiler generated dependencies file for bench_fig4_bit_reversal.
# This may be replaced when dependencies are built.
