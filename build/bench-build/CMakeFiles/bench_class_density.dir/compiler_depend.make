# Empty compiler generated dependencies file for bench_class_density.
# This may be replaced when dependencies are built.
