file(REMOVE_RECURSE
  "../bench/bench_class_density"
  "../bench/bench_class_density.pdb"
  "CMakeFiles/bench_class_density.dir/bench_class_density.cc.o"
  "CMakeFiles/bench_class_density.dir/bench_class_density.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_class_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
