file(REMOVE_RECURSE
  "../bench/bench_network_costs"
  "../bench/bench_network_costs.pdb"
  "CMakeFiles/bench_network_costs.dir/bench_network_costs.cc.o"
  "CMakeFiles/bench_network_costs.dir/bench_network_costs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
