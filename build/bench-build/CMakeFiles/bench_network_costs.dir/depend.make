# Empty dependencies file for bench_network_costs.
# This may be replaced when dependencies are built.
