file(REMOVE_RECURSE
  "../bench/bench_partial"
  "../bench/bench_partial.pdb"
  "CMakeFiles/bench_partial.dir/bench_partial.cc.o"
  "CMakeFiles/bench_partial.dir/bench_partial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
