file(REMOVE_RECURSE
  "../bench/bench_setup_time"
  "../bench/bench_setup_time.pdb"
  "CMakeFiles/bench_setup_time.dir/bench_setup_time.cc.o"
  "CMakeFiles/bench_setup_time.dir/bench_setup_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setup_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
