file(REMOVE_RECURSE
  "../bench/bench_simd_routes"
  "../bench/bench_simd_routes.pdb"
  "CMakeFiles/bench_simd_routes.dir/bench_simd_routes.cc.o"
  "CMakeFiles/bench_simd_routes.dir/bench_simd_routes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simd_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
