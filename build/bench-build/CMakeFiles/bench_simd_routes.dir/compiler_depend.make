# Empty compiler generated dependencies file for bench_simd_routes.
# This may be replaced when dependencies are built.
