# Empty compiler generated dependencies file for test_waksman_reduced.
# This may be replaced when dependencies are built.
