file(REMOVE_RECURSE
  "CMakeFiles/test_waksman_reduced.dir/test_waksman_reduced.cc.o"
  "CMakeFiles/test_waksman_reduced.dir/test_waksman_reduced.cc.o.d"
  "test_waksman_reduced"
  "test_waksman_reduced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waksman_reduced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
