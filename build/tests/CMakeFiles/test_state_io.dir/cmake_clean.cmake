file(REMOVE_RECURSE
  "CMakeFiles/test_state_io.dir/test_state_io.cc.o"
  "CMakeFiles/test_state_io.dir/test_state_io.cc.o.d"
  "test_state_io"
  "test_state_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
