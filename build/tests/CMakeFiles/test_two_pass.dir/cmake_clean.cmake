file(REMOVE_RECURSE
  "CMakeFiles/test_two_pass.dir/test_two_pass.cc.o"
  "CMakeFiles/test_two_pass.dir/test_two_pass.cc.o.d"
  "test_two_pass"
  "test_two_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
