file(REMOVE_RECURSE
  "CMakeFiles/test_cycles.dir/test_cycles.cc.o"
  "CMakeFiles/test_cycles.dir/test_cycles.cc.o.d"
  "test_cycles"
  "test_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
