file(REMOVE_RECURSE
  "CMakeFiles/test_mcc.dir/test_mcc.cc.o"
  "CMakeFiles/test_mcc.dir/test_mcc.cc.o.d"
  "test_mcc"
  "test_mcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
