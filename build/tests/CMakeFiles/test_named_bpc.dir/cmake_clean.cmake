file(REMOVE_RECURSE
  "CMakeFiles/test_named_bpc.dir/test_named_bpc.cc.o"
  "CMakeFiles/test_named_bpc.dir/test_named_bpc.cc.o.d"
  "test_named_bpc"
  "test_named_bpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_named_bpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
