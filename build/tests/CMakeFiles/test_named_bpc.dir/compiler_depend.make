# Empty compiler generated dependencies file for test_named_bpc.
# This may be replaced when dependencies are built.
