file(REMOVE_RECURSE
  "CMakeFiles/test_f_diagnosis.dir/test_f_diagnosis.cc.o"
  "CMakeFiles/test_f_diagnosis.dir/test_f_diagnosis.cc.o.d"
  "test_f_diagnosis"
  "test_f_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_f_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
