# Empty dependencies file for test_f_diagnosis.
# This may be replaced when dependencies are built.
