file(REMOVE_RECURSE
  "CMakeFiles/test_partial.dir/test_partial.cc.o"
  "CMakeFiles/test_partial.dir/test_partial.cc.o.d"
  "test_partial"
  "test_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
