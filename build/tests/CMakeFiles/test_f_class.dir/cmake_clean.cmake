file(REMOVE_RECURSE
  "CMakeFiles/test_f_class.dir/test_f_class.cc.o"
  "CMakeFiles/test_f_class.dir/test_f_class.cc.o.d"
  "test_f_class"
  "test_f_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_f_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
