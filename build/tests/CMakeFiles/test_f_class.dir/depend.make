# Empty dependencies file for test_f_class.
# This may be replaced when dependencies are built.
