# Empty compiler generated dependencies file for test_waksman.
# This may be replaced when dependencies are built.
