file(REMOVE_RECURSE
  "CMakeFiles/test_waksman.dir/test_waksman.cc.o"
  "CMakeFiles/test_waksman.dir/test_waksman.cc.o.d"
  "test_waksman"
  "test_waksman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waksman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
