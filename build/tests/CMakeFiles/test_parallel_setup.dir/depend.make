# Empty dependencies file for test_parallel_setup.
# This may be replaced when dependencies are built.
