file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_setup.dir/test_parallel_setup.cc.o"
  "CMakeFiles/test_parallel_setup.dir/test_parallel_setup.cc.o.d"
  "test_parallel_setup"
  "test_parallel_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
