# Empty dependencies file for test_simd_machine.
# This may be replaced when dependencies are built.
