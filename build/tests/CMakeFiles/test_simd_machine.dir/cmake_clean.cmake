file(REMOVE_RECURSE
  "CMakeFiles/test_simd_machine.dir/test_simd_machine.cc.o"
  "CMakeFiles/test_simd_machine.dir/test_simd_machine.cc.o.d"
  "test_simd_machine"
  "test_simd_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
