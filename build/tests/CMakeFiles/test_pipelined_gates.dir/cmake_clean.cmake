file(REMOVE_RECURSE
  "CMakeFiles/test_pipelined_gates.dir/test_pipelined_gates.cc.o"
  "CMakeFiles/test_pipelined_gates.dir/test_pipelined_gates.cc.o.d"
  "test_pipelined_gates"
  "test_pipelined_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipelined_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
