# Empty compiler generated dependencies file for test_pipelined_gates.
# This may be replaced when dependencies are built.
