file(REMOVE_RECURSE
  "CMakeFiles/test_omega_class.dir/test_omega_class.cc.o"
  "CMakeFiles/test_omega_class.dir/test_omega_class.cc.o.d"
  "test_omega_class"
  "test_omega_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omega_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
