# Empty dependencies file for test_omega_class.
# This may be replaced when dependencies are built.
