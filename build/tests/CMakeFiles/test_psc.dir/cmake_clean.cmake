file(REMOVE_RECURSE
  "CMakeFiles/test_psc.dir/test_psc.cc.o"
  "CMakeFiles/test_psc.dir/test_psc.cc.o.d"
  "test_psc"
  "test_psc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
