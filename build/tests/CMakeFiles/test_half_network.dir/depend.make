# Empty dependencies file for test_half_network.
# This may be replaced when dependencies are built.
