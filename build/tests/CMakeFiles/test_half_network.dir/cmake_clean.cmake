file(REMOVE_RECURSE
  "CMakeFiles/test_half_network.dir/test_half_network.cc.o"
  "CMakeFiles/test_half_network.dir/test_half_network.cc.o.d"
  "test_half_network"
  "test_half_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_half_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
