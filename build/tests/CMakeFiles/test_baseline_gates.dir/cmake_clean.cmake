file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_gates.dir/test_baseline_gates.cc.o"
  "CMakeFiles/test_baseline_gates.dir/test_baseline_gates.cc.o.d"
  "test_baseline_gates"
  "test_baseline_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
