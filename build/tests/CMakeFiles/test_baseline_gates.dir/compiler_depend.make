# Empty compiler generated dependencies file for test_baseline_gates.
# This may be replaced when dependencies are built.
