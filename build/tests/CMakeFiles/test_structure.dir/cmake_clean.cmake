file(REMOVE_RECURSE
  "CMakeFiles/test_structure.dir/test_structure.cc.o"
  "CMakeFiles/test_structure.dir/test_structure.cc.o.d"
  "test_structure"
  "test_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
