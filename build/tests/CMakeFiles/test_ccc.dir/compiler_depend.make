# Empty compiler generated dependencies file for test_ccc.
# This may be replaced when dependencies are built.
