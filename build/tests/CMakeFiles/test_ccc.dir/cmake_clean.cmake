file(REMOVE_RECURSE
  "CMakeFiles/test_ccc.dir/test_ccc.cc.o"
  "CMakeFiles/test_ccc.dir/test_ccc.cc.o.d"
  "test_ccc"
  "test_ccc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
