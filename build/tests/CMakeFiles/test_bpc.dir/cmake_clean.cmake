file(REMOVE_RECURSE
  "CMakeFiles/test_bpc.dir/test_bpc.cc.o"
  "CMakeFiles/test_bpc.dir/test_bpc.cc.o.d"
  "test_bpc"
  "test_bpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
