# Empty compiler generated dependencies file for test_bpc.
# This may be replaced when dependencies are built.
