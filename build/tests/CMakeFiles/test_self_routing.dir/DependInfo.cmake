
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_self_routing.cc" "tests/CMakeFiles/test_self_routing.dir/test_self_routing.cc.o" "gcc" "tests/CMakeFiles/test_self_routing.dir/test_self_routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/srb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/srb_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/srb_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/networks/CMakeFiles/srb_networks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/srb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perm/CMakeFiles/srb_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
