# Empty compiler generated dependencies file for test_self_routing.
# This may be replaced when dependencies are built.
