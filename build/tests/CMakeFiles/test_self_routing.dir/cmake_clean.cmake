file(REMOVE_RECURSE
  "CMakeFiles/test_self_routing.dir/test_self_routing.cc.o"
  "CMakeFiles/test_self_routing.dir/test_self_routing.cc.o.d"
  "test_self_routing"
  "test_self_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_self_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
