file(REMOVE_RECURSE
  "libsrb_packet.a"
)
