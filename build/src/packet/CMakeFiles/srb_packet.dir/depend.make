# Empty dependencies file for srb_packet.
# This may be replaced when dependencies are built.
