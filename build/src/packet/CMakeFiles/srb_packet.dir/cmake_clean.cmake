file(REMOVE_RECURSE
  "CMakeFiles/srb_packet.dir/packet_benes.cc.o"
  "CMakeFiles/srb_packet.dir/packet_benes.cc.o.d"
  "libsrb_packet.a"
  "libsrb_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srb_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
