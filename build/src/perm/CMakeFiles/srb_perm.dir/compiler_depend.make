# Empty compiler generated dependencies file for srb_perm.
# This may be replaced when dependencies are built.
