file(REMOVE_RECURSE
  "CMakeFiles/srb_perm.dir/bpc.cc.o"
  "CMakeFiles/srb_perm.dir/bpc.cc.o.d"
  "CMakeFiles/srb_perm.dir/classify.cc.o"
  "CMakeFiles/srb_perm.dir/classify.cc.o.d"
  "CMakeFiles/srb_perm.dir/compose.cc.o"
  "CMakeFiles/srb_perm.dir/compose.cc.o.d"
  "CMakeFiles/srb_perm.dir/cycles.cc.o"
  "CMakeFiles/srb_perm.dir/cycles.cc.o.d"
  "CMakeFiles/srb_perm.dir/f_class.cc.o"
  "CMakeFiles/srb_perm.dir/f_class.cc.o.d"
  "CMakeFiles/srb_perm.dir/f_diagnosis.cc.o"
  "CMakeFiles/srb_perm.dir/f_diagnosis.cc.o.d"
  "CMakeFiles/srb_perm.dir/linear.cc.o"
  "CMakeFiles/srb_perm.dir/linear.cc.o.d"
  "CMakeFiles/srb_perm.dir/named_bpc.cc.o"
  "CMakeFiles/srb_perm.dir/named_bpc.cc.o.d"
  "CMakeFiles/srb_perm.dir/omega_class.cc.o"
  "CMakeFiles/srb_perm.dir/omega_class.cc.o.d"
  "CMakeFiles/srb_perm.dir/permutation.cc.o"
  "CMakeFiles/srb_perm.dir/permutation.cc.o.d"
  "libsrb_perm.a"
  "libsrb_perm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srb_perm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
