
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perm/bpc.cc" "src/perm/CMakeFiles/srb_perm.dir/bpc.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/bpc.cc.o.d"
  "/root/repo/src/perm/classify.cc" "src/perm/CMakeFiles/srb_perm.dir/classify.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/classify.cc.o.d"
  "/root/repo/src/perm/compose.cc" "src/perm/CMakeFiles/srb_perm.dir/compose.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/compose.cc.o.d"
  "/root/repo/src/perm/cycles.cc" "src/perm/CMakeFiles/srb_perm.dir/cycles.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/cycles.cc.o.d"
  "/root/repo/src/perm/f_class.cc" "src/perm/CMakeFiles/srb_perm.dir/f_class.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/f_class.cc.o.d"
  "/root/repo/src/perm/f_diagnosis.cc" "src/perm/CMakeFiles/srb_perm.dir/f_diagnosis.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/f_diagnosis.cc.o.d"
  "/root/repo/src/perm/linear.cc" "src/perm/CMakeFiles/srb_perm.dir/linear.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/linear.cc.o.d"
  "/root/repo/src/perm/named_bpc.cc" "src/perm/CMakeFiles/srb_perm.dir/named_bpc.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/named_bpc.cc.o.d"
  "/root/repo/src/perm/omega_class.cc" "src/perm/CMakeFiles/srb_perm.dir/omega_class.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/omega_class.cc.o.d"
  "/root/repo/src/perm/permutation.cc" "src/perm/CMakeFiles/srb_perm.dir/permutation.cc.o" "gcc" "src/perm/CMakeFiles/srb_perm.dir/permutation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
