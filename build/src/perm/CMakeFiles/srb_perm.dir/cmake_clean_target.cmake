file(REMOVE_RECURSE
  "libsrb_perm.a"
)
