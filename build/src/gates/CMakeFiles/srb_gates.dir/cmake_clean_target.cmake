file(REMOVE_RECURSE
  "libsrb_gates.a"
)
