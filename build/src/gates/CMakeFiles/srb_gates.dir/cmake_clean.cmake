file(REMOVE_RECURSE
  "CMakeFiles/srb_gates.dir/baseline_gates.cc.o"
  "CMakeFiles/srb_gates.dir/baseline_gates.cc.o.d"
  "CMakeFiles/srb_gates.dir/benes_gates.cc.o"
  "CMakeFiles/srb_gates.dir/benes_gates.cc.o.d"
  "CMakeFiles/srb_gates.dir/netlist.cc.o"
  "CMakeFiles/srb_gates.dir/netlist.cc.o.d"
  "CMakeFiles/srb_gates.dir/pipelined_gates.cc.o"
  "CMakeFiles/srb_gates.dir/pipelined_gates.cc.o.d"
  "libsrb_gates.a"
  "libsrb_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srb_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
