# Empty compiler generated dependencies file for srb_gates.
# This may be replaced when dependencies are built.
