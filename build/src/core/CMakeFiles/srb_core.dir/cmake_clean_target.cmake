file(REMOVE_RECURSE
  "libsrb_core.a"
)
