file(REMOVE_RECURSE
  "CMakeFiles/srb_core.dir/faults.cc.o"
  "CMakeFiles/srb_core.dir/faults.cc.o.d"
  "CMakeFiles/srb_core.dir/half_network.cc.o"
  "CMakeFiles/srb_core.dir/half_network.cc.o.d"
  "CMakeFiles/srb_core.dir/parallel_setup.cc.o"
  "CMakeFiles/srb_core.dir/parallel_setup.cc.o.d"
  "CMakeFiles/srb_core.dir/partial.cc.o"
  "CMakeFiles/srb_core.dir/partial.cc.o.d"
  "CMakeFiles/srb_core.dir/pipeline.cc.o"
  "CMakeFiles/srb_core.dir/pipeline.cc.o.d"
  "CMakeFiles/srb_core.dir/render.cc.o"
  "CMakeFiles/srb_core.dir/render.cc.o.d"
  "CMakeFiles/srb_core.dir/router.cc.o"
  "CMakeFiles/srb_core.dir/router.cc.o.d"
  "CMakeFiles/srb_core.dir/self_routing.cc.o"
  "CMakeFiles/srb_core.dir/self_routing.cc.o.d"
  "CMakeFiles/srb_core.dir/state_io.cc.o"
  "CMakeFiles/srb_core.dir/state_io.cc.o.d"
  "CMakeFiles/srb_core.dir/stats.cc.o"
  "CMakeFiles/srb_core.dir/stats.cc.o.d"
  "CMakeFiles/srb_core.dir/topology.cc.o"
  "CMakeFiles/srb_core.dir/topology.cc.o.d"
  "CMakeFiles/srb_core.dir/two_pass.cc.o"
  "CMakeFiles/srb_core.dir/two_pass.cc.o.d"
  "CMakeFiles/srb_core.dir/waksman.cc.o"
  "CMakeFiles/srb_core.dir/waksman.cc.o.d"
  "CMakeFiles/srb_core.dir/waksman_reduced.cc.o"
  "CMakeFiles/srb_core.dir/waksman_reduced.cc.o.d"
  "libsrb_core.a"
  "libsrb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
