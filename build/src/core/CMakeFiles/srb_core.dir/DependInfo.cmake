
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/faults.cc" "src/core/CMakeFiles/srb_core.dir/faults.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/faults.cc.o.d"
  "/root/repo/src/core/half_network.cc" "src/core/CMakeFiles/srb_core.dir/half_network.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/half_network.cc.o.d"
  "/root/repo/src/core/parallel_setup.cc" "src/core/CMakeFiles/srb_core.dir/parallel_setup.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/parallel_setup.cc.o.d"
  "/root/repo/src/core/partial.cc" "src/core/CMakeFiles/srb_core.dir/partial.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/partial.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/srb_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/render.cc" "src/core/CMakeFiles/srb_core.dir/render.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/render.cc.o.d"
  "/root/repo/src/core/router.cc" "src/core/CMakeFiles/srb_core.dir/router.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/router.cc.o.d"
  "/root/repo/src/core/self_routing.cc" "src/core/CMakeFiles/srb_core.dir/self_routing.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/self_routing.cc.o.d"
  "/root/repo/src/core/state_io.cc" "src/core/CMakeFiles/srb_core.dir/state_io.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/state_io.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/srb_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/stats.cc.o.d"
  "/root/repo/src/core/topology.cc" "src/core/CMakeFiles/srb_core.dir/topology.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/topology.cc.o.d"
  "/root/repo/src/core/two_pass.cc" "src/core/CMakeFiles/srb_core.dir/two_pass.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/two_pass.cc.o.d"
  "/root/repo/src/core/waksman.cc" "src/core/CMakeFiles/srb_core.dir/waksman.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/waksman.cc.o.d"
  "/root/repo/src/core/waksman_reduced.cc" "src/core/CMakeFiles/srb_core.dir/waksman_reduced.cc.o" "gcc" "src/core/CMakeFiles/srb_core.dir/waksman_reduced.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simd/CMakeFiles/srb_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/perm/CMakeFiles/srb_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
