# Empty compiler generated dependencies file for srb_core.
# This may be replaced when dependencies are built.
