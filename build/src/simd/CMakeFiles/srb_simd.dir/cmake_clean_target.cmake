file(REMOVE_RECURSE
  "libsrb_simd.a"
)
