
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simd/bitonic.cc" "src/simd/CMakeFiles/srb_simd.dir/bitonic.cc.o" "gcc" "src/simd/CMakeFiles/srb_simd.dir/bitonic.cc.o.d"
  "/root/repo/src/simd/ccc.cc" "src/simd/CMakeFiles/srb_simd.dir/ccc.cc.o" "gcc" "src/simd/CMakeFiles/srb_simd.dir/ccc.cc.o.d"
  "/root/repo/src/simd/cic.cc" "src/simd/CMakeFiles/srb_simd.dir/cic.cc.o" "gcc" "src/simd/CMakeFiles/srb_simd.dir/cic.cc.o.d"
  "/root/repo/src/simd/machine.cc" "src/simd/CMakeFiles/srb_simd.dir/machine.cc.o" "gcc" "src/simd/CMakeFiles/srb_simd.dir/machine.cc.o.d"
  "/root/repo/src/simd/mcc.cc" "src/simd/CMakeFiles/srb_simd.dir/mcc.cc.o" "gcc" "src/simd/CMakeFiles/srb_simd.dir/mcc.cc.o.d"
  "/root/repo/src/simd/permute.cc" "src/simd/CMakeFiles/srb_simd.dir/permute.cc.o" "gcc" "src/simd/CMakeFiles/srb_simd.dir/permute.cc.o.d"
  "/root/repo/src/simd/psc.cc" "src/simd/CMakeFiles/srb_simd.dir/psc.cc.o" "gcc" "src/simd/CMakeFiles/srb_simd.dir/psc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perm/CMakeFiles/srb_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
