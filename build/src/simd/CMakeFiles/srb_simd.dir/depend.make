# Empty dependencies file for srb_simd.
# This may be replaced when dependencies are built.
