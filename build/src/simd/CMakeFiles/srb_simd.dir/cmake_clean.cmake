file(REMOVE_RECURSE
  "CMakeFiles/srb_simd.dir/bitonic.cc.o"
  "CMakeFiles/srb_simd.dir/bitonic.cc.o.d"
  "CMakeFiles/srb_simd.dir/ccc.cc.o"
  "CMakeFiles/srb_simd.dir/ccc.cc.o.d"
  "CMakeFiles/srb_simd.dir/cic.cc.o"
  "CMakeFiles/srb_simd.dir/cic.cc.o.d"
  "CMakeFiles/srb_simd.dir/machine.cc.o"
  "CMakeFiles/srb_simd.dir/machine.cc.o.d"
  "CMakeFiles/srb_simd.dir/mcc.cc.o"
  "CMakeFiles/srb_simd.dir/mcc.cc.o.d"
  "CMakeFiles/srb_simd.dir/permute.cc.o"
  "CMakeFiles/srb_simd.dir/permute.cc.o.d"
  "CMakeFiles/srb_simd.dir/psc.cc.o"
  "CMakeFiles/srb_simd.dir/psc.cc.o.d"
  "libsrb_simd.a"
  "libsrb_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srb_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
