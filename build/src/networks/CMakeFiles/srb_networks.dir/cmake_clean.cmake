file(REMOVE_RECURSE
  "CMakeFiles/srb_networks.dir/batcher.cc.o"
  "CMakeFiles/srb_networks.dir/batcher.cc.o.d"
  "CMakeFiles/srb_networks.dir/crossbar.cc.o"
  "CMakeFiles/srb_networks.dir/crossbar.cc.o.d"
  "CMakeFiles/srb_networks.dir/gcn.cc.o"
  "CMakeFiles/srb_networks.dir/gcn.cc.o.d"
  "CMakeFiles/srb_networks.dir/multicast.cc.o"
  "CMakeFiles/srb_networks.dir/multicast.cc.o.d"
  "CMakeFiles/srb_networks.dir/network_iface.cc.o"
  "CMakeFiles/srb_networks.dir/network_iface.cc.o.d"
  "CMakeFiles/srb_networks.dir/odd_even.cc.o"
  "CMakeFiles/srb_networks.dir/odd_even.cc.o.d"
  "CMakeFiles/srb_networks.dir/omega_network.cc.o"
  "CMakeFiles/srb_networks.dir/omega_network.cc.o.d"
  "libsrb_networks.a"
  "libsrb_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srb_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
