file(REMOVE_RECURSE
  "libsrb_networks.a"
)
