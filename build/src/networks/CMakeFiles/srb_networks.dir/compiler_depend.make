# Empty compiler generated dependencies file for srb_networks.
# This may be replaced when dependencies are built.
