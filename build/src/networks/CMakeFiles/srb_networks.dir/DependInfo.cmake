
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/networks/batcher.cc" "src/networks/CMakeFiles/srb_networks.dir/batcher.cc.o" "gcc" "src/networks/CMakeFiles/srb_networks.dir/batcher.cc.o.d"
  "/root/repo/src/networks/crossbar.cc" "src/networks/CMakeFiles/srb_networks.dir/crossbar.cc.o" "gcc" "src/networks/CMakeFiles/srb_networks.dir/crossbar.cc.o.d"
  "/root/repo/src/networks/gcn.cc" "src/networks/CMakeFiles/srb_networks.dir/gcn.cc.o" "gcc" "src/networks/CMakeFiles/srb_networks.dir/gcn.cc.o.d"
  "/root/repo/src/networks/multicast.cc" "src/networks/CMakeFiles/srb_networks.dir/multicast.cc.o" "gcc" "src/networks/CMakeFiles/srb_networks.dir/multicast.cc.o.d"
  "/root/repo/src/networks/network_iface.cc" "src/networks/CMakeFiles/srb_networks.dir/network_iface.cc.o" "gcc" "src/networks/CMakeFiles/srb_networks.dir/network_iface.cc.o.d"
  "/root/repo/src/networks/odd_even.cc" "src/networks/CMakeFiles/srb_networks.dir/odd_even.cc.o" "gcc" "src/networks/CMakeFiles/srb_networks.dir/odd_even.cc.o.d"
  "/root/repo/src/networks/omega_network.cc" "src/networks/CMakeFiles/srb_networks.dir/omega_network.cc.o" "gcc" "src/networks/CMakeFiles/srb_networks.dir/omega_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/srb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perm/CMakeFiles/srb_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/srb_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
