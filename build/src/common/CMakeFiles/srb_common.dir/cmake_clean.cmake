file(REMOVE_RECURSE
  "CMakeFiles/srb_common.dir/bitops.cc.o"
  "CMakeFiles/srb_common.dir/bitops.cc.o.d"
  "CMakeFiles/srb_common.dir/logging.cc.o"
  "CMakeFiles/srb_common.dir/logging.cc.o.d"
  "CMakeFiles/srb_common.dir/prng.cc.o"
  "CMakeFiles/srb_common.dir/prng.cc.o.d"
  "CMakeFiles/srb_common.dir/table.cc.o"
  "CMakeFiles/srb_common.dir/table.cc.o.d"
  "libsrb_common.a"
  "libsrb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
