file(REMOVE_RECURSE
  "libsrb_common.a"
)
