# Empty dependencies file for srb_common.
# This may be replaced when dependencies are built.
