#!/usr/bin/env bash
# CI bench smoke: run the perf-tracking benchmarks in their reduced
# SRBENES_BENCH_SMOKE configuration and validate every BENCH_*.json
# they emit. The point is not numbers (a shared runner can't produce
# meaningful ones) but proof that the binaries run to completion and
# their JSON stays machine-readable from PR to PR.
#
#     scripts/bench_smoke.sh [build-dir]     # default: build
#
# JSON files land in the current directory; exits nonzero if a bench
# fails or emits malformed JSON.
set -uo pipefail

build_dir="${1:-build}"
cd "$(dirname "$0")/.."

benches=(bench_fast_engine bench_setup_time bench_throughput bench_resilience bench_obs_overhead bench_service bench_packet)
failed=0

for bench in "${benches[@]}"; do
    bin="${build_dir}/bench/${bench}"
    if [ ! -x "${bin}" ]; then
        echo "MISSING: ${bin} (build the '${build_dir%%-*}' preset first)"
        failed=1
        continue
    fi
    echo "== ${bench} (smoke) =="
    if ! SRBENES_BENCH_SMOKE=1 "${bin}"; then
        echo "FAILED: ${bench}"
        failed=1
    fi
done

echo
echo "== validating BENCH_*.json =="
shopt -s nullglob
jsons=(BENCH_*.json)
if [ ${#jsons[@]} -eq 0 ]; then
    echo "no BENCH_*.json produced"
    failed=1
fi
for f in "${jsons[@]}"; do
    if python3 -m json.tool "${f}" > /dev/null; then
        echo "  ${f}: ok"
    else
        echo "  ${f}: MALFORMED"
        failed=1
    fi
done

# Batch-scaling guard: the tiled arena pipeline exists so large
# batches stop falling out of L2. Assert the committed acceptance
# ratio — n=12 batch-64 us/perm within 1.25x of batch-8 — on every
# run, so a regression back to the per-plan-FastPlan cliff (2.3x)
# cannot land silently.
if [ -f BENCH_setup.json ]; then
    echo
    echo "== batch-scaling guard (n=12, batch-64 : batch-8) =="
    if ! python3 - <<'EOF'
import json, sys
rows = json.load(open("BENCH_setup.json")).get("batch", [])
us = {r["batch"]: r["us_per_perm"] for r in rows if r["n"] == 12}
if 8 not in us or 64 not in us:
    sys.exit("missing n=12 batch-8/batch-64 rows in BENCH_setup.json")
ratio = us[64] / us[8]
print(f"  batch-8: {us[8]:.1f} us/perm  batch-64: {us[64]:.1f} "
      f"us/perm  ratio: {ratio:.2f} (limit 1.25)")
sys.exit(0 if ratio <= 1.25 else f"batch-64:batch-8 ratio {ratio:.2f} "
         "exceeds 1.25 -- the tiled pipeline regressed")
EOF
    then
        failed=1
    fi
fi

# Packet-loss guard: the packet fabric must not shed uniform
# traffic below saturation. bench_packet already exits nonzero on
# the same condition; re-checking the committed JSON here keeps the
# gate alive even if the bench's own exit path regresses.
if [ -f BENCH_packet.json ]; then
    echo
    echo "== packet lossless-load guard (uniform + drop) =="
    if ! python3 - <<'EOF'
import json, sys
doc = json.load(open("BENCH_packet.json"))
limit = doc["lossless_gate_load"]
rows = [r for r in doc["results"]
        if r["matrix"] == "uniform" and r["policy"] == "drop"
        and r["offered_load"] <= limit + 1e-9]
if not rows:
    sys.exit("no uniform+drop rows at or below load "
             f"{limit} in BENCH_packet.json")
bad = [r for r in doc["results"] if not r["conserved"]]
if bad:
    sys.exit(f"{len(bad)} rows broke conservation")
for r in rows:
    lost = r["dropped"] + r["rejected"]
    print(f"  load {r['offered_load']:.2f}: dropped {r['dropped']} "
          f"rejected {r['rejected']}")
    if lost:
        sys.exit(f"uniform load {r['offered_load']} lost {lost} "
                 "packets below saturation")
EOF
    then
        failed=1
    fi
fi

exit "${failed}"
