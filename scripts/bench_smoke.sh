#!/usr/bin/env bash
# CI bench smoke: run the perf-tracking benchmarks in their reduced
# SRBENES_BENCH_SMOKE configuration and validate every BENCH_*.json
# they emit. The point is not numbers (a shared runner can't produce
# meaningful ones) but proof that the binaries run to completion and
# their JSON stays machine-readable from PR to PR.
#
#     scripts/bench_smoke.sh [build-dir]     # default: build
#
# JSON files land in the current directory; exits nonzero if a bench
# fails or emits malformed JSON.
set -uo pipefail

build_dir="${1:-build}"
cd "$(dirname "$0")/.."

benches=(bench_fast_engine bench_setup_time bench_throughput bench_resilience bench_obs_overhead)
failed=0

for bench in "${benches[@]}"; do
    bin="${build_dir}/bench/${bench}"
    if [ ! -x "${bin}" ]; then
        echo "MISSING: ${bin} (build the '${build_dir%%-*}' preset first)"
        failed=1
        continue
    fi
    echo "== ${bench} (smoke) =="
    if ! SRBENES_BENCH_SMOKE=1 "${bin}"; then
        echo "FAILED: ${bench}"
        failed=1
    fi
done

echo
echo "== validating BENCH_*.json =="
shopt -s nullglob
jsons=(BENCH_*.json)
if [ ${#jsons[@]} -eq 0 ]; then
    echo "no BENCH_*.json produced"
    failed=1
fi
for f in "${jsons[@]}"; do
    if python3 -m json.tool "${f}" > /dev/null; then
        echo "  ${f}: ok"
    else
        echo "  ${f}: MALFORMED"
        failed=1
    fi
done

exit "${failed}"
