#!/usr/bin/env bash
# Build and test every configuration: the default RelWithDebInfo
# tree, the asan+ubsan tree, and the tsan tree (which exists chiefly
# for the stream-engine and router concurrency tests). One command
# instead of folklore:
#
#     scripts/check.sh            # all presets
#     scripts/check.sh release    # just one
#
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(release asan-ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
    echo "== preset: ${preset} =="
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}"
    ctest --preset "${preset}" -j "${jobs}"
done
