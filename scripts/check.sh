#!/usr/bin/env bash
# Build and test every configuration: the default RelWithDebInfo
# tree, the asan+ubsan tree, and the tsan tree (which exists chiefly
# for the stream-engine and router concurrency tests). One command
# instead of folklore:
#
#     scripts/check.sh            # all presets
#     scripts/check.sh release    # just one
#
# A failing preset no longer aborts the run: every requested preset
# is built and tested, a per-preset summary is printed at the end,
# and the exit code is nonzero iff any preset failed. CI fans the
# presets out as a matrix, but locally one invocation covering all
# three is the common case and a tsan-only breakage should not hide
# behind an asan one.
set -uo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(release asan-ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

declare -A status
failed=0

run_preset() {
    local preset="$1"
    cmake --preset "${preset}" &&
        cmake --build --preset "${preset}" -j "${jobs}" &&
        ctest --preset "${preset}" -j "${jobs}"
}

for preset in "${presets[@]}"; do
    echo "== preset: ${preset} =="
    if run_preset "${preset}"; then
        status["${preset}"]="ok"
    else
        status["${preset}"]="FAILED"
        failed=1
    fi
done

echo
echo "== summary =="
for preset in "${presets[@]}"; do
    printf '  %-12s %s\n' "${preset}" "${status[${preset}]}"
done

exit "${failed}"
