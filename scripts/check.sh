#!/usr/bin/env bash
# Build and test every configuration: the default RelWithDebInfo
# tree, the asan+ubsan tree, and the tsan tree (which exists chiefly
# for the stream-engine and router concurrency tests). One command
# instead of folklore:
#
#     scripts/check.sh            # all presets
#     scripts/check.sh release    # just one
#     scripts/check.sh --lint     # static analysis: srb-lint always,
#                                 # tidy preset + clang-tidy if clang
#                                 # is installed (CI `analyze` job)
#
# A failing preset no longer aborts the run: every requested preset
# is built and tested, a per-preset summary is printed at the end,
# and the exit code is nonzero iff any preset failed. CI fans the
# presets out as a matrix, but locally one invocation covering all
# three is the common case and a tsan-only breakage should not hide
# behind an asan one.
set -uo pipefail
cd "$(dirname "$0")/.."

jobs_for_lint=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

# --lint: the static-analysis lane. srb-lint is zero-dependency and
# always runs; the clang thread-safety build and clang-tidy need a
# clang install and are skipped (loudly) without one — CI always has
# it, laptops may not.
run_lint() {
    local rc=0

    echo "== srb-lint =="
    cmake --preset release >/dev/null &&
        cmake --build --preset release -j "${jobs_for_lint}" \
            --target srb_lint >/dev/null &&
        ./build/tools/srb_lint/srb_lint --root . || rc=1

    if command -v clang++ >/dev/null 2>&1; then
        echo "== clang thread-safety (tidy preset) =="
        cmake --preset tidy &&
            cmake --build --preset tidy -j "${jobs_for_lint}" || rc=1

        if command -v run-clang-tidy >/dev/null 2>&1; then
            echo "== clang-tidy =="
            run-clang-tidy -quiet -p build-tidy \
                -j "${jobs_for_lint}" 'src/.*\.cc$' || rc=1
        else
            echo "== clang-tidy: run-clang-tidy not found, skipped =="
        fi
    else
        echo "== tidy preset: clang++ not found, skipped (CI runs it) =="
    fi

    return "${rc}"
}

if [ "${1:-}" = "--lint" ]; then
    run_lint
    exit "$?"
fi

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(release asan-ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

declare -A status
failed=0

run_preset() {
    local preset="$1"
    cmake --preset "${preset}" &&
        cmake --build --preset "${preset}" -j "${jobs}" &&
        ctest --preset "${preset}" -j "${jobs}"
}

for preset in "${presets[@]}"; do
    echo "== preset: ${preset} =="
    if run_preset "${preset}"; then
        status["${preset}"]="ok"
    else
        status["${preset}"]="FAILED"
        failed=1
    fi
done

echo
echo "== summary =="
for preset in "${presets[@]}"; do
    printf '  %-12s %s\n' "${preset}" "${status[${preset}]}"
done

exit "${failed}"
