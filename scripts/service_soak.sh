#!/usr/bin/env bash
# CI service soak: boot the real srbd daemon on an ephemeral
# loopback port, drive it with the open-loop load generator in its
# reduced SRBENES_BENCH_SMOKE configuration, then SIGTERM the daemon
# and hold it to its drain contract.
#
#     scripts/service_soak.sh [build-dir]     # default: build
#
# Pass criteria, all hard:
#   - loadgen exits 0 under --require-clean: nonzero completed
#     serves, zero lost requests, zero payload mismatches, zero
#     protocol errors;
#   - the daemon's Prometheus exposition (fetched over the Stats
#     verb) carries srbd_ series with a nonzero submit count;
#   - after SIGTERM the daemon exits 0 (graceful drain) within the
#     timeout, reporting a clean drain on stdout.
set -uo pipefail

build_dir="${1:-build}"
cd "$(dirname "$0")/.."

srbd="${build_dir}/tools/srbd/srbd"
loadgen="${build_dir}/tools/srb_loadgen/srb_loadgen"
for bin in "${srbd}" "${loadgen}"; do
    if [ ! -x "${bin}" ]; then
        echo "MISSING: ${bin} (build the release preset first)"
        exit 1
    fi
done

workdir="$(mktemp -d)"
log="${workdir}/srbd.log"
metrics="${workdir}/metrics.txt"
failed=0

"${srbd}" --port=0 --n=8 > "${log}" 2>&1 &
srbd_pid=$!
cleanup() {
    kill -KILL "${srbd_pid}" 2>/dev/null
    rm -rf "${workdir}"
}
trap cleanup EXIT

# The daemon prints its bound address as its first line.
port=""
for _ in $(seq 1 50); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${log}")"
    [ -n "${port}" ] && break
    if ! kill -0 "${srbd_pid}" 2>/dev/null; then
        echo "srbd died before binding:"
        cat "${log}"
        exit 1
    fi
    sleep 0.1
done
if [ -z "${port}" ]; then
    echo "srbd never reported its port:"
    cat "${log}"
    exit 1
fi
echo "== srbd up on 127.0.0.1:${port} (pid ${srbd_pid}) =="

echo "== loadgen soak (smoke configuration) =="
if ! SRBENES_BENCH_SMOKE=1 "${loadgen}" \
        --port="${port}" --require-clean \
        --dump-metrics="${metrics}"; then
    echo "FAILED: loadgen was not clean"
    failed=1
fi

echo "== srbd metrics exposition =="
if grep -q '^srbd_submits_total [1-9]' "${metrics}"; then
    grep '^srbd_' "${metrics}" | grep -v '_bucket{' | head -20
else
    echo "FAILED: no nonzero srbd_submits_total in the exposition"
    sed -n '1,40p' "${metrics}"
    failed=1
fi

echo "== SIGTERM drain =="
kill -TERM "${srbd_pid}"
# Watchdog: a drain that hangs past 30s gets SIGKILLed, which
# surfaces as a nonzero exit below.
( sleep 30; kill -KILL "${srbd_pid}" 2>/dev/null ) &
watchdog=$!
wait "${srbd_pid}"
rc=$?
kill "${watchdog}" 2>/dev/null
wait "${watchdog}" 2>/dev/null
if [ "${rc}" -ne 0 ]; then
    echo "FAILED: srbd exited ${rc} (dirty or hung drain)"
    failed=1
fi
cat "${log}"
if ! grep -q 'drained clean' "${log}"; then
    echo "FAILED: srbd did not report a clean drain"
    failed=1
fi

exit "${failed}"
