/**
 * @file
 * Packet mode in one page: run a hot-spot traffic matrix through
 * packet::Fabric under both contention policies and print what the
 * obs layer sees.
 *
 *   1. build the fabric for B(6) with a metrics registry attached;
 *   2. drive a hot-spot matrix (25% of packets aim at line 0) at
 *      offered load 0.6 for a few thousand cycles;
 *   3. read the per-run accounting (conservation included);
 *   4. dump the Prometheus text exposition a scraper would see.
 *
 * Build & run:  ./build/examples/packet_hotspot
 */

#include <iostream>

#include "srbenes.hh"

namespace
{

void
runPolicy(srbenes::packet::ContentionPolicy policy,
          srbenes::obs::MetricsRegistry &reg)
{
    using namespace srbenes;

    const unsigned n = 6;
    packet::PacketOptions opts;
    opts.contention = policy;

    packet::Fabric fabric(n, opts, &reg);
    packet::HotSpotTraffic matrix(n, /*load=*/0.6,
                                  /*hot_fraction=*/0.25,
                                  /*hot=*/0);
    const packet::FabricStats st = fabric.run(matrix, 3000);

    std::cout << "policy " << contentionPolicyName(policy) << " ("
              << midpathPolicyName(opts.midpath) << " midpath)\n"
              << "  injected   " << st.injected << "\n"
              << "  delivered  " << st.delivered << "\n"
              << "  dropped    " << st.dropped << "\n"
              << "  stalls     " << st.stalls << "\n"
              << "  avg lat    " << st.avg_latency << " cycles (p99 "
              << st.p99_latency << ")\n"
              << "  conserved  " << std::boolalpha << st.conserved
              << "\n\n";
}

} // namespace

int
main()
{
    using namespace srbenes;

    obs::MetricsRegistry reg;
    runPolicy(packet::ContentionPolicy::Backpressure, reg);
    runPolicy(packet::ContentionPolicy::Drop, reg);

    std::cout << "--- Prometheus exposition "
                 "----------------------------------\n"
              << obs::exposeText(reg);
    return 0;
}
