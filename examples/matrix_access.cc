/**
 * @file
 * Conflict-free matrix access through the network -- the
 * PE-to-memory configuration of Section I ("the Benes network can
 * be used to connect the N PE's to N memory modules").
 *
 * A classic SIMD problem (Lawrie): store an 8x8 matrix across 8
 * memory modules so that any row, any column, and the main
 * diagonals can each be fetched with one parallel access (one
 * element per module), then let the network unscramble the skewed
 * layout. With the skew scheme module(i, j) = (i + j) mod 8, the
 * unscrambling permutations are cyclic shifts and p-orderings --
 * inverse-omega members, so the self-routing network handles every
 * access pattern with zero setup.
 *
 * Build & run:  ./build/examples/matrix_access
 */

#include <iomanip>
#include <iostream>

#include "srbenes.hh"

namespace
{

using namespace srbenes;

constexpr unsigned kLogSide = 3;
constexpr Word kSide = 8;

/** Memory: module m, offset t. Skewed layout: element (i, j) lives
 *  in module (i + j) mod 8 at offset i. */
struct Memory
{
    Word cell[kSide][kSide]; // [module][offset]
};

} // namespace

int
main()
{
    using namespace srbenes;

    // Fill the skewed store with the matrix a(i, j) = 10 i + j.
    Memory mem{};
    for (Word i = 0; i < kSide; ++i)
        for (Word j = 0; j < kSide; ++j)
            mem.cell[(i + j) % kSide][i] = 10 * i + j;

    const SelfRoutingBenes net(kLogSide);
    std::cout << "8x8 matrix, skewed storage module(i,j) = (i+j) "
                 "mod 8; every access is one parallel fetch +\none "
                 "self-routed pass through B(3).\n";

    auto show = [](const char *what, const std::vector<Word> &v) {
        std::cout << std::left << std::setw(26) << what << ":";
        for (Word x : v)
            std::cout << " " << std::setw(2) << x;
        std::cout << "\n";
    };

    // --- fetch row i: element (i, j) is in module (i+j)%8 ---------
    for (Word i : {Word{0}, Word{3}}) {
        // Module m holds column j = (m - i) mod 8 of this row; to
        // deliver element j to PE j, module m's word goes to PE
        // (m - i) mod 8: a cyclic shift by -i, an inverse-omega
        // member.
        std::vector<Word> fetched(kSide);
        for (Word m = 0; m < kSide; ++m)
            fetched[m] = mem.cell[m][i];
        const Permutation unscramble =
            named::cyclicShift(kLogSide, kSide - i);
        const auto row = net.permutePayloads(unscramble, fetched);
        if (!row) {
            std::cerr << "row unscramble not self-routable!\n";
            return 1;
        }
        show(("row " + std::to_string(i)).c_str(), *row);
    }

    // --- fetch column j: element (i, j) is in module (i+j)%8 at
    //     offset i -------------------------------------------------
    for (Word j : {Word{1}, Word{6}}) {
        // Module m holds row i = (m - j) mod 8 of this column.
        std::vector<Word> fetched(kSide);
        for (Word m = 0; m < kSide; ++m)
            fetched[m] = mem.cell[m][(m + kSide - j) % kSide];
        const Permutation unscramble =
            named::cyclicShift(kLogSide, kSide - j);
        const auto col = net.permutePayloads(unscramble, fetched);
        if (!col) {
            std::cerr << "column unscramble not self-routable!\n";
            return 1;
        }
        show(("column " + std::to_string(j)).c_str(), *col);
    }

    // --- fetch the anti-diagonal (i, (c - i) mod 8): module c -----
    // Every anti-diagonal element sits in the SAME module under
    // this skew -- the worst case -- while the main diagonal
    // (i, i) maps to module (2i) mod 8, hitting modules 0,2,4,6
    // twice each. The skew trades diagonal bandwidth for perfect
    // row/column bandwidth; Lawrie's prime-skew stores fix
    // diagonals at the cost of non-power-of-two module counts.
    {
        // Main diagonal in two conflict-free half accesses
        // (i = 0..3 touch modules 0,2,4,6 once; i = 4..7 again).
        std::vector<Word> diag(kSide);
        for (Word half = 0; half < 2; ++half)
            for (Word i = 4 * half; i < 4 * (half + 1); ++i)
                diag[i] = mem.cell[(2 * i) % kSide][i];
        show("main diagonal (2 fetches)", diag);

        // The half-access data arrives 2-ordered across modules;
        // unscrambling a 2-ordering ... note stride-2 patterns are
        // exactly where the inverse-p-ordering permutations of
        // Section II would be used with a conflict-free skew.
        std::cout << "(the (i+j) mod 8 skew serializes diagonals: "
                     "2 accesses for the main diagonal, 8 for the "
                     "anti-diagonal)\n";
    }
    return 0;
}
