/**
 * @file
 * Permutation routing on the three SIMD machine models of Section
 * III, side by side: for a chosen n, run a bundle of named
 * permutations on the CCC, PSC and MCC and report success plus the
 * unit routes spent -- with and without class hints -- against the
 * bitonic-sort baseline.
 *
 * Build & run:  ./build/examples/simd_permute [n]   (default n = 6)
 */

#include <cstdlib>
#include <iostream>

#include "srbenes.hh"

#include "simd/bitonic.hh"
#include "simd/permute.hh"

namespace
{

using namespace srbenes;

struct Workload
{
    std::string name;
    Permutation perm;
    PermClassHint hint;
    const BpcSpec *bpc;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace srbenes;

    unsigned n = 6;
    if (argc > 1)
        n = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));
    if (n < 2 || n > 20 || n % 2 != 0) {
        std::cerr << "usage: simd_permute [even n in 2..20]\n";
        return 1;
    }

    const BpcSpec transpose = named::matrixTranspose(n);
    const BpcSpec bitrev = named::bitReversal(n);
    const std::vector<Workload> workloads{
        {"bit reversal (general)", bitrev.toPermutation(),
         PermClassHint::General, nullptr},
        {"bit reversal (BPC hint)", bitrev.toPermutation(),
         PermClassHint::General, &bitrev},
        {"matrix transpose (BPC hint)", transpose.toPermutation(),
         PermClassHint::General, &transpose},
        {"cyclic shift +3 (omega hint)", named::cyclicShift(n, 3),
         PermClassHint::Omega, nullptr},
        {"5-ordering (inv-omega hint)", named::pOrdering(n, 5),
         PermClassHint::InverseOmega, nullptr},
    };

    std::cout << "N = " << (1u << n) << " PEs\n\n";
    TextTable table({"workload", "CCC routes", "PSC routes",
                     "MCC routes", "ok"});
    for (const auto &w : workloads) {
        CubeMachine ccc(n);
        ShuffleMachine psc(n);
        MeshMachine mcc(n);
        ccc.loadIota(w.perm);
        psc.loadIota(w.perm);
        mcc.loadIota(w.perm);
        const auto sc = cccPermute(ccc, w.hint, w.bpc);
        const auto sp = pscPermute(psc, w.hint, w.bpc);
        const auto sm = mccPermute(mcc, w.hint, w.bpc);
        table.newRow();
        table.addCell(w.name);
        table.addCell(sc.unit_routes);
        table.addCell(sp.unit_routes);
        table.addCell(sm.unit_routes);
        table.addCell(sc.success && sp.success && sm.success
                          ? "yes"
                          : "NO");
    }

    // Baseline: sort an arbitrary (non-F) permutation.
    {
        Prng prng(1);
        const auto arbitrary =
            Permutation::random(std::size_t{1} << n, prng);
        CubeMachine ccc(n);
        ShuffleMachine psc(n);
        MeshMachine mcc(n);
        ccc.loadIota(arbitrary);
        psc.loadIota(arbitrary);
        mcc.loadIota(arbitrary);
        const auto sc = bitonicPermuteCube(ccc);
        const auto sp = bitonicPermuteShuffle(psc);
        const auto sm = bitonicPermuteMesh(mcc);
        table.newRow();
        table.addCell("random perm (bitonic baseline)");
        table.addCell(sc.unit_routes);
        table.addCell(sp.unit_routes);
        table.addCell(sm.unit_routes);
        table.addCell(sc.success && sp.success && sm.success
                          ? "yes"
                          : "NO");
    }
    table.print(std::cout);

    std::cout << "\nformulas: CCC 2lgN-1 = " << 2 * n - 1
              << ", PSC 4lgN-3 = " << 4 * n - 3
              << ", MCC 7rt(N)-8 = " << 7 * (1u << (n / 2)) - 8
              << "\n";
    return 0;
}
