/**
 * @file
 * Universal routing cookbook: every way this library realizes an
 * ARBITRARY communication pattern, on one page.
 *
 *   1. single pass, external Waksman setup (all N! permutations);
 *   2. single pass on Waksman's reduced fabric (N lg N - N + 1
 *      switches);
 *   3. two self-routed passes (inverse-omega factor, then omega
 *      factor with the omega bit) -- no state loading at all;
 *   4. parallel setup on a CIC when a control processor array is
 *      available;
 *   5. a full generalized connection (fanout) through the GCN.
 *
 * Build & run:  ./build/examples/universal_router
 */

#include <iostream>

#include "srbenes.hh"

int
main()
{
    using namespace srbenes;

    const unsigned n = 5;
    const Word size = Word{1} << n;
    SelfRoutingBenes net(n);
    Prng prng(2026);

    // A permutation outside F: self-routing alone cannot carry it.
    Permutation d = Permutation::random(size, prng);
    while (inFClass(d))
        d = Permutation::random(size, prng);
    std::cout << "target permutation (not in F): " << d.toString()
              << "\n\n";
    std::cout << "plain self-routing succeeds? " << std::boolalpha
              << net.route(d).success << "\n\n";

    std::vector<Word> data(size);
    for (Word i = 0; i < size; ++i)
        data[i] = 400 + i;
    const auto expect = d.applyTo(data);

    // --- 1. Waksman setup, one pass ------------------------------
    {
        const auto states = waksmanSetup(net.topology(), d);
        const auto res = net.routeWithStates(d, states);
        std::cout << "1. waksman single pass: "
                  << (res.success ? "delivered" : "FAILED")
                  << "  (" << net.topology().numSwitches()
                  << " switch states computed)\n";
    }

    // --- 2. the reduced fabric ------------------------------------
    {
        const auto states = waksmanReducedSetup(net.topology(), d);
        const auto res = net.routeWithStates(d, states);
        std::cout << "2. reduced fabric:      "
                  << (res.success ? "delivered" : "FAILED")
                  << "  (" << waksmanReducedSwitchCount(n)
                  << " switches instead of "
                  << net.topology().numSwitches() << ")\n";
    }

    // --- 3. two self-routed passes --------------------------------
    {
        const auto plan = twoPassPlan(net, d);
        const auto out = twoPassPermute(net, plan, data);
        std::cout << "3. two-pass self-route: "
                  << (out == expect ? "delivered" : "FAILED")
                  << "  (factors: P1 = " << plan.first.toString()
                  << ")\n";
    }

    // --- 4. parallel setup ----------------------------------------
    {
        ParallelSetupStats stats;
        const auto states =
            parallelSetup(net.topology(), d, &stats);
        const auto res = net.routeWithStates(d, states);
        std::cout << "4. parallel CIC setup:  "
                  << (res.success ? "delivered" : "FAILED")
                  << "  (" << stats.total()
                  << " parallel steps vs ~" << n * size
                  << " serial touches)\n";
    }

    // --- 5. fanout through the GCN --------------------------------
    {
        const GcnNetwork gcn(n);
        std::vector<Word> src(size);
        for (Word j = 0; j < size; ++j)
            src[j] = d.inverse()[j] / 2 * 2; // even sources, fanout 2
        const auto out = gcn.routeMapping(src, data);
        bool ok = true;
        for (Word j = 0; j < size; ++j)
            ok = ok && out[j] == data[src[j]];
        std::cout << "5. GCN with fanout:     "
                  << (ok ? "delivered" : "FAILED")
                  << "  (every even input feeds two outputs)\n";
    }
    return 0;
}
