/**
 * @file
 * Maintenance drill: field-testing a deployed self-routing fabric.
 *
 * Scenario: a B(4) fabric in service develops a stuck switch. The
 * operator (this program):
 *
 *   1. generates a destination-tag test set offline (pure software,
 *      no fabric access needed);
 *   2. runs the tests through the (secretly faulty) fabric and
 *      observes only the output tags;
 *   3. localizes the fault to its behavioral equivalence class;
 *   4. keeps the system running meanwhile by steering traffic with
 *      permutations that MASK the fault (opening-half faults are
 *      invisible to pair-aligned workloads).
 *
 * Build & run:  ./build/examples/fault_drill
 */

#include <iostream>

#include "srbenes.hh"

int
main()
{
    using namespace srbenes;

    const unsigned n = 4;
    const SelfRoutingBenes net(n);
    Prng prng(2026);

    // The fault nobody knows about yet.
    const StuckFault secret{5, 3, 1};
    std::cout << "deployed fabric: B(4), 16 lines, 7 stages\n"
              << "(injected for the drill: stage 5 switch 3 stuck "
                 "crossed -- the operator doesn't know this)\n\n";

    // 1. Offline test-set generation.
    const auto tests = faultTestSet(net, prng);
    std::cout << "1. generated " << tests.size()
              << " destination-tag test vectors (covers all "
              << 2 * net.topology().numSwitches()
              << " single stuck-at faults)\n";

    // 2. Run the tests on the faulty fabric; observe output tags.
    std::vector<std::vector<Word>> observed;
    int failing_tests = 0;
    for (const auto &t : tests) {
        const auto res = routeWithFaults(net, t, {secret});
        observed.push_back(res.output_tags);
        failing_tests +=
            res.output_tags != net.route(t).output_tags;
    }
    std::cout << "2. ran the tests: " << failing_tests << " of "
              << tests.size() << " misbehaved\n";

    // 3. Localize.
    const auto candidates = diagnoseSingleFault(net, tests, observed);
    std::cout << "3. diagnosis: " << candidates.size()
              << " behaviorally consistent candidate(s):\n";
    bool found = false;
    for (const auto &c : candidates) {
        std::cout << "   stage " << c.stage << ", switch "
                  << c.switch_index << ", stuck "
                  << (c.stuck_value ? "crossed" : "straight")
                  << "\n";
        found = found || c == secret;
    }
    std::cout << "   (injected fault "
              << (found ? "IS" : "IS NOT")
              << " among the candidates)\n";

    // 4. Keep serving traffic that masks the fault: stage 5 is in
    // the forced half, so masking needs workloads whose realization
    // agrees with the stuck value. Search the named library.
    std::cout << "\n4. workloads that still route correctly on the "
                 "faulty fabric:\n";
    const struct
    {
        const char *name;
        Permutation perm;
    } workloads[] = {
        {"identity", Permutation::identity(16)},
        {"vector reversal",
         named::vectorReversal(n).toPermutation()},
        {"bit reversal", named::bitReversal(n).toPermutation()},
        {"matrix transpose",
         named::matrixTranspose(n).toPermutation()},
        {"perfect shuffle",
         named::perfectShuffle(n).toPermutation()},
        {"cyclic shift +5", named::cyclicShift(n, 5)},
    };
    for (const auto &w : workloads) {
        const auto res = routeWithFaults(net, w.perm, {secret});
        std::cout << "   " << w.name << ": "
                  << (res.success ? "routes" : "MISROUTES") << "\n";
    }
    return 0;
}
