/**
 * @file
 * Interactive permutation explorer: give it a permutation as a
 * comma-separated destination list (power-of-two length) and it
 * reports every class membership (F, BPC with recovered A-vector,
 * omega, inverse omega), renders the self-routing attempt, and shows
 * the omega-bit and Waksman rescues when self-routing fails.
 *
 * Build & run:
 *   ./build/examples/network_explorer 1,3,2,0
 *   ./build/examples/network_explorer 0,4,2,6,1,5,3,7
 *   ./build/examples/network_explorer            (random demo)
 */

#include <iostream>
#include <sstream>
#include <string>

#include "srbenes.hh"

namespace
{

using namespace srbenes;

std::vector<Word>
parseList(const std::string &arg)
{
    std::vector<Word> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace srbenes;

    std::vector<Word> dest;
    if (argc > 1) {
        dest = parseList(argv[1]);
    } else {
        std::cout << "(no argument: exploring a random member of "
                     "F(3); pass e.g. 1,3,2,0)\n\n";
        Prng prng(2026);
        dest = randomFMember(3, prng).dest();
    }

    if (!Permutation::isValid(dest)) {
        std::cerr << "not a permutation of 0..N-1\n";
        return 1;
    }
    if (!isPowerOfTwo(dest.size())) {
        std::cerr << "length must be a power of two\n";
        return 1;
    }

    const Permutation d(dest);
    const unsigned n = d.log2Size();
    std::cout << "D = " << d.toString() << ", N = " << d.size()
              << ", n = " << n << "\n\nclass membership:\n";
    std::cout << "  F(n)          : " << std::boolalpha
              << inFClass(d) << "\n";
    const auto bpc = recognizeBpc(d);
    std::cout << "  BPC(n)        : " << bpc.has_value();
    if (bpc)
        std::cout << "  A = " << bpc->toString();
    std::cout << "\n";
    std::cout << "  Omega(n)      : " << isOmega(d) << "\n";
    std::cout << "  InverseOmega  : " << isInverseOmega(d) << "\n\n";

    const SelfRoutingBenes net(n);
    RouteTrace trace;
    const auto res = net.route(d, RoutingMode::SelfRouting, &trace);
    std::cout << renderRoute(net.topology(), trace, res);

    if (!res.success) {
        std::cout << "\nrescues:\n";
        std::cout << "  omega bit    : "
                  << net.route(d, RoutingMode::OmegaBit).success
                  << "\n";
        const auto states = waksmanSetup(net.topology(), d);
        std::cout << "  waksman setup: "
                  << net.routeWithStates(d, states).success << "\n";
    }
    return 0;
}
