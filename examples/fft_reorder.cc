/**
 * @file
 * Streaming FFT data reordering through the pipelined network
 * (Section IV).
 *
 * A radix-2 FFT consumes its input in bit-reversed order; an SIMD
 * FFT also needs a perfect shuffle between butterfly ranks. Both are
 * Table I BPC permutations, so a pipelined self-routing B(n) can
 * reorder one N-point batch per clock with no setup at all: exactly
 * the paper's proposed use as the second interconnection network of
 * an SIMD machine.
 *
 * This example streams a mixed sequence of batches -- alternating
 * bit-reversal and perfect-shuffle reorderings -- and verifies the
 * throughput and every output.
 *
 * Build & run:  ./build/examples/fft_reorder
 */

#include <iostream>

#include "srbenes.hh"

int
main()
{
    using namespace srbenes;

    const unsigned n = 5; // 32-point batches
    const Word size = Word{1} << n;

    PipelinedBenes pipe(n);
    const Permutation bitrev = named::bitReversal(n).toPermutation();
    const Permutation shuffle =
        named::perfectShuffle(n).toPermutation();

    // Queue 16 batches, alternating the two reorderings; batch b's
    // samples are 1000 b + i so outputs are self-identifying.
    const int batches = 16;
    for (int b = 0; b < batches; ++b) {
        std::vector<Word> samples(size);
        for (Word i = 0; i < size; ++i)
            samples[i] = 1000 * b + i;
        pipe.inject(b % 2 == 0 ? bitrev : shuffle,
                    std::move(samples));
    }

    int received = 0;
    std::uint64_t first = 0;
    while (!pipe.drained()) {
        const auto out = pipe.clockTick();
        if (!out)
            continue;
        if (received == 0)
            first = pipe.cyclesElapsed();

        // Verify the batch against the permutation it used.
        const Permutation &d =
            received % 2 == 0 ? bitrev : shuffle;
        bool good = out->success;
        for (Word i = 0; i < size && good; ++i)
            good = out->payloads[d[i]] ==
                   1000 * static_cast<Word>(received) + i;
        if (!good) {
            std::cerr << "batch " << received << " corrupted\n";
            return 1;
        }
        ++received;
    }

    std::cout << "streamed " << received << " batches of " << size
              << " samples through B(" << n << ")\n";
    std::cout << "first batch latency: " << first << " clocks (2n-1 = "
              << 2 * n - 1 << ")\n";
    std::cout << "total clocks: " << pipe.cyclesElapsed()
              << " (fill + one batch per clock = "
              << (2 * n - 1) + (batches - 1) << ")\n";
    std::cout << "non-pipelined would need "
              << static_cast<unsigned>(batches) * (2 * n - 1)
              << " clocks\n";
    return 0;
}
