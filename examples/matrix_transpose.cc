/**
 * @file
 * Matrix workflows on an SIMD machine -- the application domain the
 * paper's introduction motivates (Lawrie's matrix-access
 * permutations, Cannon's alignment steps).
 *
 * A 8x8 matrix lives one element per PE in row-major order. We then:
 *   - transpose it through the self-routing Benes network (a Table I
 *     BPC permutation);
 *   - run Cannon's initial row-alignment A(i,j) -> A(i, (i+j) mod 8)
 *     as a Theorem 4 composite of per-row cyclic shifts;
 *   - do the same transpose on the mesh-connected computer and
 *     report the unit routes the Section III algorithm spends.
 *
 * Build & run:  ./build/examples/matrix_transpose
 */

#include <iomanip>
#include <iostream>

#include "srbenes.hh"

#include "simd/permute.hh"

namespace
{

using namespace srbenes;

void
printMatrix(const char *title, const std::vector<Word> &flat,
            Word side)
{
    std::cout << title << "\n";
    for (Word r = 0; r < side; ++r) {
        std::cout << "  ";
        for (Word c = 0; c < side; ++c)
            std::cout << std::setw(3) << flat[r * side + c] << " ";
        std::cout << "\n";
    }
}

} // namespace

int
main()
{
    using namespace srbenes;

    const unsigned n = 6; // 64 elements = 8x8
    const Word side = 8;

    std::vector<Word> matrix(64);
    for (Word r = 0; r < side; ++r)
        for (Word c = 0; c < side; ++c)
            matrix[r * side + c] = 10 * r + c; // element "rc"

    printMatrix("A (row-major on 64 PEs):", matrix, side);

    // --- transpose through the network -----------------------------
    SelfRoutingBenes net(n);
    const Permutation transpose =
        named::matrixTranspose(n).toPermutation();
    const auto transposed = net.permutePayloads(transpose, matrix);
    printMatrix("\nA^T via self-routing B(6):", *transposed, side);

    // --- Cannon alignment as a Theorem 4 composite ------------------
    const Word row_mask = lowMask(n) & ~lowMask(n / 2);
    std::vector<Permutation> shifts;
    for (Word r = 0; r < side; ++r)
        shifts.push_back(named::cyclicShift(n / 2, r));
    const Permutation cannon =
        blockwisePermutation(n, row_mask, shifts);
    std::cout << "\nCannon alignment A(i,j) -> A(i, (i+j) mod 8) in "
                 "F(6): "
              << std::boolalpha << inFClass(cannon) << "\n";
    const auto aligned = net.permutePayloads(cannon, matrix);
    printMatrix("aligned matrix:", *aligned, side);

    // --- the same transpose on a mesh-connected computer ------------
    MeshMachine mesh(n);
    mesh.load(transpose, matrix);
    const auto stats = mccPermute(mesh);
    std::cout << "\nMCC transpose: success = " << stats.success
              << ", unit routes = " << stats.unit_routes
              << " (bound 7 sqrt(N) - 8 = " << 7 * side - 8 << ")\n";

    // BPC hint: transpose fixes no axis at n = 6, but a symmetric
    // permutation like the identity-on-rows bit reversal does; show
    // the hint machinery on the transpose anyway.
    MeshMachine mesh2(n);
    mesh2.load(transpose, matrix);
    const BpcSpec spec = named::matrixTranspose(n);
    const auto hinted =
        mccPermute(mesh2, PermClassHint::General, &spec);
    std::cout << "with BPC schedule hint: unit routes = "
              << hinted.unit_routes << "\n";
    return 0;
}
