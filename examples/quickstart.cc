/**
 * @file
 * Quickstart: the five-minute tour of the library.
 *
 *   1. build a self-routing Benes network B(n);
 *   2. route a named permutation (bit reversal) by destination tags
 *      alone -- no setup phase;
 *   3. see a permutation outside F(n) fail, then rescue it with the
 *      omega bit and with external Waksman setup;
 *   4. move actual payload data through the fabric.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "srbenes.hh"

int
main()
{
    using namespace srbenes;

    // --- 1. an 8-input self-routing Benes network ----------------
    const unsigned n = 3;
    SelfRoutingBenes net(n);
    std::cout << "B(" << n << "): " << net.numLines() << " lines, "
              << net.topology().numStages() << " stages, "
              << net.topology().numSwitches() << " switches\n\n";

    // --- 2. self-route a permutation ------------------------------
    const Permutation bitrev = named::bitReversal(n).toPermutation();
    std::cout << "bit reversal " << bitrev.toString()
              << " in F(3): " << std::boolalpha << inFClass(bitrev)
              << "\n";

    RouteTrace trace;
    const RouteResult ok =
        net.route(bitrev, RoutingMode::SelfRouting, &trace);
    std::cout << renderRoute(net.topology(), trace, ok) << "\n";

    // --- 3. a permutation outside F, and its rescues --------------
    SelfRoutingBenes small(2);
    const Permutation hard{1, 3, 2, 0}; // the paper's Fig. 5
    std::cout << "D = " << hard.toString()
              << ": self-routing works? "
              << small.route(hard).success << "\n";
    std::cout << "  with the omega bit:  "
              << small.route(hard, RoutingMode::OmegaBit).success
              << "\n";
    const SwitchStates states =
        waksmanSetup(small.topology(), hard);
    std::cout << "  with Waksman setup:  "
              << small.routeWithStates(hard, states).success
              << "\n\n";

    // --- 4. move data ---------------------------------------------
    std::vector<Word> data{70, 71, 72, 73, 74, 75, 76, 77};
    const auto permuted = net.permutePayloads(bitrev, data);
    std::cout << "payloads through bit reversal:";
    for (Word v : *permuted)
        std::cout << " " << v;
    std::cout << "\n";
    return 0;
}
