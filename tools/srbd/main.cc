/**
 * @file
 * srbd: the self-routing Benes network daemon.
 *
 * Serves the srbd wire protocol (src/net/protocol.hh) on a TCP
 * socket, routing every submitted permutation through a
 * StreamEngine. SIGTERM / SIGINT trigger the graceful drain: stop
 * accepting, answer everything in flight, flush, exit 0. Any
 * dirtier ending exits nonzero — the CI soak relies on the exit
 * code as the drain verdict.
 *
 *   srbd [--bind=A] [--port=P] [--n=K] [--workers=W]
 *        [--rate=R] [--burst=B] [--max-conns=C] [--quiet]
 *
 * The bound address is printed as soon as the socket is up:
 *
 *   srbd: listening on 127.0.0.1:40913 (n=10, N=1024, workers=2)
 *
 * which is what scripts/service_soak.sh parses to find an
 * ephemeral port.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/server.hh"

namespace
{

srbenes::net::Server *g_server = nullptr;

void
onSignal(int)
{
    // requestDrain is async-signal-safe: an atomic flip plus an
    // eventfd write.
    if (g_server != nullptr)
        g_server->requestDrain();
}

bool
parseFlag(const char *arg, const char *name, std::string &out)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
        return false;
    out = arg + len + 1;
    return true;
}

void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--bind=ADDR] [--port=PORT] [--n=LOG2_LINES]\n"
        "          [--workers=K] [--rate=SUBMITS_PER_SEC_PER_TENANT]\n"
        "          [--burst=TOKENS] [--max-conns=C] [--quiet]\n"
        "\n"
        "Serves the srbd binary protocol; --port=0 picks an\n"
        "ephemeral port (printed on stdout). --rate=0 disables\n"
        "tenant quotas. SIGTERM drains gracefully and exits 0.\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace srbenes::net;

    ServerOptions opts;
    opts.n = 10;
    opts.stream.workers = 2;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (parseFlag(argv[i], "--bind", v)) {
            opts.bind_address = v;
        } else if (parseFlag(argv[i], "--port", v)) {
            opts.port = static_cast<std::uint16_t>(std::stoul(v));
        } else if (parseFlag(argv[i], "--n", v)) {
            opts.n = static_cast<unsigned>(std::stoul(v));
        } else if (parseFlag(argv[i], "--workers", v)) {
            opts.stream.workers =
                static_cast<unsigned>(std::stoul(v));
        } else if (parseFlag(argv[i], "--rate", v)) {
            opts.quota.rate_per_sec = std::stod(v);
        } else if (parseFlag(argv[i], "--burst", v)) {
            opts.quota.burst = std::stod(v);
        } else if (parseFlag(argv[i], "--max-conns", v)) {
            opts.max_connections = std::stoul(v);
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (opts.n < 1 || opts.n > 20) {
        std::fprintf(stderr, "srbd: --n must be in [1, 20]\n");
        return 2;
    }

    Server server(opts);
    if (!server.valid()) {
        std::fprintf(stderr, "srbd: failed to bind %s:%u\n",
                     opts.bind_address.c_str(),
                     unsigned(opts.port));
        return 1;
    }
    g_server = &server;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    // A client vanishing mid-write must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("srbd: listening on %s:%u (n=%u, N=%llu, "
                "workers=%u)\n",
                opts.bind_address.c_str(), unsigned(server.port()),
                server.n(),
                static_cast<unsigned long long>(server.numLines()),
                opts.stream.workers);
    std::fflush(stdout);

    const bool clean = server.serve();
    const ServerStats stats = server.stats();
    if (!quiet) {
        std::printf(
            "srbd: drained %s; submits=%llu responses=%llu "
            "ok=%llu shed=%llu over_quota=%llu "
            "protocol_errors=%llu\n",
            clean ? "clean" : "DIRTY",
            static_cast<unsigned long long>(stats.submits),
            static_cast<unsigned long long>(stats.responses),
            static_cast<unsigned long long>(stats.ok),
            static_cast<unsigned long long>(stats.sheds),
            static_cast<unsigned long long>(stats.quota_rejected),
            static_cast<unsigned long long>(stats.protocol_errors));
        std::fflush(stdout);
    }
    g_server = nullptr;
    return clean ? 0 : 1;
}
