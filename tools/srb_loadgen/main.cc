/**
 * @file
 * srb_loadgen: open-loop load generator for srbd.
 *
 * Drives a running daemon with clock-scheduled submits, verifies
 * routed payloads against locally computed expectations, and
 * reports the resulting SLO numbers (serves/s, p50/p99
 * submit→response latency, shed / deadline / quota counts).
 *
 *   srb_loadgen --port=P [--host=H] [--rate=RPS] [--seconds=S]
 *               [--connections=C] [--tenants=T] [--patterns=K]
 *               [--deadline-ms=D] [--no-payload] [--seed=S]
 *               [--json=PATH] [--dump-metrics=PATH]
 *               [--require-clean]
 *
 * --require-clean exits nonzero unless every sent request was
 * answered, no payload mismatched, and no protocol error occurred
 * — the CI soak's pass/fail verdict. SRBENES_BENCH_SMOKE=1 shrinks
 * the default rate/duration to seconds-scale for CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/loadgen.hh"

namespace
{

bool
parseFlag(const char *arg, const char *name, std::string &out)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
        return false;
    out = arg + len + 1;
    return true;
}

bool
smokeMode()
{
    const char *env = std::getenv("SRBENES_BENCH_SMOKE");
    return env != nullptr && env[0] == '1';
}

void
printReport(std::FILE *f, const srbenes::net::LoadgenReport &r,
            bool as_json)
{
    using ull = unsigned long long;
    if (as_json) {
        std::fprintf(
            f,
            "{\n"
            "  \"sent\": %llu,\n"
            "  \"responses\": %llu,\n"
            "  \"lost\": %llu,\n"
            "  \"ok\": %llu,\n"
            "  \"shed\": %llu,\n"
            "  \"over_quota\": %llu,\n"
            "  \"deadline_exceeded\": %llu,\n"
            "  \"draining\": %llu,\n"
            "  \"bad_request\": %llu,\n"
            "  \"fault_detected\": %llu,\n"
            "  \"not_in_f\": %llu,\n"
            "  \"other_status\": %llu,\n"
            "  \"protocol_errors\": %llu,\n"
            "  \"payload_mismatches\": %llu,\n"
            "  \"offered_rps\": %.1f,\n"
            "  \"achieved_rps\": %.1f,\n"
            "  \"serves_per_sec\": %.1f,\n"
            "  \"elapsed_sec\": %.3f,\n"
            "  \"p50_us\": %.1f,\n"
            "  \"p99_us\": %.1f\n"
            "}\n",
            ull(r.sent), ull(r.responses), ull(r.lost), ull(r.ok),
            ull(r.shed), ull(r.over_quota),
            ull(r.deadline_exceeded), ull(r.draining),
            ull(r.bad_request), ull(r.fault_detected),
            ull(r.not_in_f), ull(r.other_status),
            ull(r.protocol_errors), ull(r.payload_mismatches),
            r.offered_rps, r.achieved_rps, r.serves_per_sec,
            r.elapsed_sec, r.p50_ns / 1e3, r.p99_ns / 1e3);
    } else {
        std::fprintf(
            f,
            "srb_loadgen: sent=%llu responses=%llu lost=%llu\n"
            "  ok=%llu shed=%llu over_quota=%llu deadline=%llu "
            "draining=%llu bad=%llu\n"
            "  protocol_errors=%llu payload_mismatches=%llu\n"
            "  offered=%.0f/s achieved=%.0f/s serves=%.0f/s\n"
            "  p50=%.1fus p99=%.1fus elapsed=%.2fs\n",
            ull(r.sent), ull(r.responses), ull(r.lost), ull(r.ok),
            ull(r.shed), ull(r.over_quota),
            ull(r.deadline_exceeded), ull(r.draining),
            ull(r.bad_request), ull(r.protocol_errors),
            ull(r.payload_mismatches), r.offered_rps,
            r.achieved_rps, r.serves_per_sec, r.p50_ns / 1e3,
            r.p99_ns / 1e3, r.elapsed_sec);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace srbenes::net;

    LoadgenOptions opts;
    if (smokeMode()) {
        opts.rate_per_sec = 2000;
        opts.duration_ms = 2000;
    } else {
        opts.rate_per_sec = 20000;
        opts.duration_ms = 10000;
    }

    std::string json_path;
    std::string metrics_path;
    bool require_clean = false;

    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (parseFlag(argv[i], "--host", v)) {
            opts.host = v;
        } else if (parseFlag(argv[i], "--port", v)) {
            opts.port = static_cast<std::uint16_t>(std::stoul(v));
        } else if (parseFlag(argv[i], "--rate", v)) {
            opts.rate_per_sec = std::stod(v);
        } else if (parseFlag(argv[i], "--seconds", v)) {
            opts.duration_ms =
                static_cast<std::uint64_t>(std::stod(v) * 1e3);
        } else if (parseFlag(argv[i], "--connections", v)) {
            opts.connections =
                static_cast<unsigned>(std::stoul(v));
        } else if (parseFlag(argv[i], "--tenants", v)) {
            opts.tenants = std::stoull(v);
        } else if (parseFlag(argv[i], "--patterns", v)) {
            opts.patterns = static_cast<unsigned>(std::stoul(v));
        } else if (parseFlag(argv[i], "--deadline-ms", v)) {
            opts.deadline_rel_ns =
                static_cast<std::uint64_t>(std::stod(v) * 1e6);
        } else if (parseFlag(argv[i], "--seed", v)) {
            opts.seed = std::stoull(v);
        } else if (parseFlag(argv[i], "--json", v)) {
            json_path = v;
        } else if (parseFlag(argv[i], "--dump-metrics", v)) {
            metrics_path = v;
        } else if (std::strcmp(argv[i], "--no-payload") == 0) {
            opts.with_payload = false;
        } else if (std::strcmp(argv[i], "--require-clean") == 0) {
            require_clean = true;
        } else {
            std::fprintf(stderr,
                         "srb_loadgen: unknown flag %s\n", argv[i]);
            return 2;
        }
    }
    if (opts.port == 0) {
        std::fprintf(stderr, "srb_loadgen: --port is required\n");
        return 2;
    }
    if (opts.tenants == 0)
        opts.tenants = 1;

    const LoadgenReport report = runLoadgen(opts);
    if (report.connect_failed) {
        std::fprintf(stderr,
                     "srb_loadgen: cannot connect to %s:%u\n",
                     opts.host.c_str(), unsigned(opts.port));
        return 1;
    }

    printReport(stdout, report, false);
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr,
                         "srb_loadgen: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        printReport(f, report, true);
        std::fclose(f);
    }
    if (!metrics_path.empty()) {
        std::string text;
        if (!fetchStats(opts.host, opts.port,
                        StatsFormat::PrometheusText, text)) {
            std::fprintf(stderr,
                         "srb_loadgen: stats fetch failed\n");
            return 1;
        }
        std::FILE *f = std::fopen(metrics_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr,
                         "srb_loadgen: cannot write %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
    }

    if (require_clean && !report.clean()) {
        std::fprintf(stderr,
                     "srb_loadgen: NOT CLEAN (lost=%llu "
                     "protocol_errors=%llu mismatches=%llu "
                     "ok=%llu)\n",
                     static_cast<unsigned long long>(report.lost),
                     static_cast<unsigned long long>(
                         report.protocol_errors),
                     static_cast<unsigned long long>(
                         report.payload_mismatches),
                     static_cast<unsigned long long>(report.ok));
        return 1;
    }
    return 0;
}
