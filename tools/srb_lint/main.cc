/**
 * @file
 * CLI for srb-lint (see lint.hh for the rule catalog).
 *
 *   srb_lint [--root DIR] [--baseline FILE] [--update-baseline]
 *            [--list-rules] [paths...]
 *
 * Paths default to src bench tests tools, relative to --root
 * (default: the current directory). Exit status: 0 clean (all
 * findings baselined or none), 1 findings, 2 usage/IO error.
 */

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "srb_lint/lint.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: srb_lint [--root DIR] [--baseline FILE]\n"
          "                [--update-baseline] [--list-rules]\n"
          "                [paths...]\n"
          "paths default to: src bench tests tools\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace srbenes::lint;

    std::string root = ".";
    std::string baseline_path;
    bool update_baseline = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(std::cerr);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--update-baseline") {
            update_baseline = true;
        } else if (arg == "--list-rules") {
            for (const RuleInfo &r : ruleCatalog())
                std::cout << r.id << "  " << r.summary << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "srb_lint: unknown flag " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "tests", "tools"};
    if (baseline_path.empty())
        baseline_path = (std::filesystem::path(root) / "tools" /
                         "srb_lint" / "baseline.txt")
                            .string();

    const std::vector<Finding> all = lintTree(root, paths);

    if (update_baseline) {
        if (!writeBaseline(baseline_path, all)) {
            std::cerr << "srb_lint: cannot write " << baseline_path
                      << "\n";
            return 2;
        }
        std::cout << "srb_lint: wrote " << all.size()
                  << " baseline entr"
                  << (all.size() == 1 ? "y" : "ies") << " to "
                  << baseline_path << "\n";
        return 0;
    }

    std::size_t baselined = 0;
    const std::vector<Finding> findings =
        applyBaseline(all, loadBaseline(baseline_path), &baselined);

    for (const Finding &f : findings) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
        if (!f.code.empty())
            std::cout << "    " << f.code << "\n";
    }
    std::cout << "srb_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " ("
              << baselined << " baselined)\n";
    return findings.empty() ? 0 : 1;
}
