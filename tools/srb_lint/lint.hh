/**
 * @file
 * srb-lint: a zero-dependency structural analyzer for the repo's
 * concurrency and hygiene invariants — the rules a compiler cannot
 * check. clang's `-Wthread-safety` (the `tidy` preset) proves the
 * lock/capability structure; srb-lint proves the conventions around
 * it:
 *
 *   SRB001  every relaxed/acquire/release/acq_rel memory-order
 *           argument carries an adjacent `// order:` justification
 *   SRB002  no `volatile` (use std::atomic with a justified order)
 *   SRB003  no `rand()`/`srand()` (use common/prng.hh)
 *   SRB004  no naked `new`/`delete` outside allocator shims
 *   SRB005  no spin-yield loops (use Doorbell::waitUntil)
 *   SRB006  no raw std::mutex family member without a capability
 *           annotation (use srbenes::Mutex/SharedMutex)
 *   SRB007  include hygiene: no <bits/...>, and files naming
 *           std::atomic/std::thread include <atomic>/<thread>
 *           directly
 *   SRB008  files opening with a `// srb-lint: bitsliced` tag (on
 *           one of the first three lines) must produce switch
 *           states word-parallel: no per-switch scalar walks
 *           (switchesPerStage loops, SwitchStates)
 *
 * The scanner blanks comments, string/char literals, and raw
 * strings before matching, so rule patterns quoted in code or docs
 * never trip the rules themselves. Suppression is explicit and
 * committed: either an inline `// srb-lint: allow(SRB00x) reason`
 * on the offending (or preceding) line, or an entry in the baseline
 * file keyed by rule + path + source text, so line drift never
 * invalidates it.
 *
 * Built as a library so tests drive every rule against embedded
 * fixture snippets; the `srb_lint` binary is a thin CLI over it.
 */

#ifndef SRBENES_TOOLS_SRB_LINT_LINT_HH
#define SRBENES_TOOLS_SRB_LINT_LINT_HH

#include <set>
#include <string>
#include <vector>

namespace srbenes
{
namespace lint
{

/** One rule violation at a specific source line. */
struct Finding
{
    std::string rule;    //!< "SRB001" ... "SRB008"
    std::string file;    //!< path as given to the linter
    unsigned line = 0;   //!< 1-based
    std::string message; //!< human-readable explanation
    std::string code;    //!< trimmed source text of the line
};

/** Catalog entry for --list-rules and the docs. */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** The full rule catalog, in id order. */
const std::vector<RuleInfo> &ruleCatalog();

/**
 * Per-line views of one translation unit after lexing: `code` has
 * comments and all literals blanked to spaces (structure preserved),
 * `comment` holds the text of any comment touching the line.
 */
struct FileView
{
    std::vector<std::string> code;
    std::vector<std::string> comment;
};

/** Lex @p text into blanked code and comment views. */
FileView scanText(const std::string &text);

/**
 * Run every rule over @p text as file @p path (repo-relative; used
 * in findings and for shim allowlists). Inline
 * `srb-lint: allow(...)` suppressions are already applied; baseline
 * filtering is the caller's job.
 */
std::vector<Finding> lintText(const std::string &path,
                              const std::string &text);

/** lintText over the contents of @p root / @p relpath. */
std::vector<Finding> lintFile(const std::string &root,
                              const std::string &relpath);

/**
 * Walk @p paths (files or directories, relative to @p root) for
 * *.cc / *.hh and lint everything, findings sorted by
 * (file, line, rule).
 */
std::vector<Finding> lintTree(const std::string &root,
                              const std::vector<std::string> &paths);

/** Stable baseline key: "RULE|path|trimmed source text". */
std::string baselineKey(const Finding &f);

/** Load a baseline file; '#' comments and blank lines ignored. */
std::set<std::string> loadBaseline(const std::string &path);

/** Write @p findings as a baseline file (sorted, commented header). */
bool writeBaseline(const std::string &path,
                   const std::vector<Finding> &findings);

/**
 * Drop findings whose key is in @p baseline; @p baselined (if
 * non-null) receives how many were dropped.
 */
std::vector<Finding>
applyBaseline(const std::vector<Finding> &findings,
              const std::set<std::string> &baseline,
              std::size_t *baselined);

} // namespace lint
} // namespace srbenes

#endif // SRBENES_TOOLS_SRB_LINT_LINT_HH
