#include "srb_lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace srbenes
{
namespace lint
{

namespace
{

namespace fs = std::filesystem;

// ------------------------------------------------------------- lexer

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * True when the quote at @p i opens a raw string: an R immediately
 * before it, optionally prefixed u8/u/U/L, with no word character
 * before the prefix (so `FOOBAR"..."` is not a raw string).
 */
bool
isRawStringStart(const std::string &t, std::size_t i)
{
    if (i == 0 || t[i - 1] != 'R')
        return false;
    std::size_t p = i - 1; // index of 'R'
    if (p >= 2 && t[p - 2] == 'u' && t[p - 1] == '8')
        p -= 2;
    else if (p >= 1 &&
             (t[p - 1] == 'u' || t[p - 1] == 'U' || t[p - 1] == 'L'))
        p -= 1;
    return p == 0 || !isWordChar(t[p - 1]);
}

} // namespace

FileView
scanText(const std::string &text)
{
    FileView v;
    std::string code, comment;
    enum class St
    {
        Code,
        LineComment,
        BlockComment,
        Str,
        Chr,
        RawStr,
    };
    St st = St::Code;
    std::string raw_delim; // ")delim\"" terminator of a raw string

    auto flush = [&] {
        v.code.push_back(code);
        v.comment.push_back(comment);
        code.clear();
        comment.clear();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            flush();
            if (st == St::LineComment)
                st = St::Code;
            continue;
        }
        switch (st) {
          case St::Code:
            if (c == '/' && n == '/') {
                st = St::LineComment;
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::BlockComment;
                ++i;
            } else if (c == '"' && isRawStringStart(text, i)) {
                st = St::RawStr;
                raw_delim = ")";
                for (std::size_t j = i + 1;
                     j < text.size() && text[j] != '('; ++j)
                    raw_delim += text[j];
                raw_delim += '"';
                code += ' ';
            } else if (c == '"') {
                st = St::Str;
                code += ' ';
            } else if (c == '\'' && i > 0 && isWordChar(text[i - 1]) &&
                       isWordChar(n)) {
                // digit separator (1'000), not a char literal
                code += ' ';
            } else if (c == '\'') {
                st = St::Chr;
                code += ' ';
            } else {
                code += c;
            }
            break;
          case St::LineComment:
            comment += c;
            break;
          case St::BlockComment:
            if (c == '*' && n == '/') {
                st = St::Code;
                ++i;
            } else {
                comment += c;
            }
            break;
          case St::Str:
          case St::Chr:
            if (c == '\\' && n != '\0') {
                ++i;
            } else if ((st == St::Str && c == '"') ||
                       (st == St::Chr && c == '\'')) {
                st = St::Code;
            }
            code += ' ';
            break;
          case St::RawStr:
            if (c == ')' &&
                text.compare(i, raw_delim.size(), raw_delim) == 0) {
                i += raw_delim.size() - 1;
                st = St::Code;
            }
            code += ' ';
            break;
        }
    }
    flush();
    return v;
}

namespace
{

// ---------------------------------------------------------- helpers

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Rule ids named by `srb-lint: allow(...)` in @p comment. */
std::vector<std::string>
parseAllows(const std::string &comment)
{
    std::vector<std::string> ids;
    static const std::regex re(
        R"(srb-lint:\s*allow\(\s*([A-Z0-9,\s]+)\))");
    auto begin = std::sregex_iterator(comment.begin(), comment.end(),
                                      re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::stringstream ss((*it)[1].str());
        std::string id;
        while (std::getline(ss, id, ','))
            if (!trimmed(id).empty())
                ids.push_back(trimmed(id));
    }
    return ids;
}

struct Ctx
{
    const std::string &path;
    const std::vector<std::string> &lines; // raw source lines
    const FileView &view;
    std::vector<Finding> *out;

    void
    report(const char *rule, std::size_t idx, std::string message)
    {
        out->push_back(Finding{rule, path,
                               static_cast<unsigned>(idx + 1),
                               std::move(message),
                               trimmed(lines[idx])});
    }

    /** Comment text of lines [idx-span .. idx] joined. */
    std::string
    nearbyComments(std::size_t idx, std::size_t span) const
    {
        std::string all;
        const std::size_t from = idx >= span ? idx - span : 0;
        for (std::size_t i = from; i <= idx; ++i)
            all += view.comment[i] + "\n";
        return all;
    }
};

// ------------------------------------------------------------- rules

/**
 * SRB001: tsan can prove an ordering too weak only on the schedule
 * it happened to see; the justification comment is the reviewable
 * proof. Accepted within the four lines above the argument (or
 * trailing on its line), so multi-line justifications over
 * multi-line call statements work.
 */
void
ruleOrderJustified(Ctx &ctx)
{
    static const std::regex re(
        R"(memory_order(::|_)(relaxed|acquire|release|acq_rel))");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(ctx.view.code[i], m, re))
            continue;
        if (ctx.nearbyComments(i, 4).find("order:") !=
            std::string::npos)
            continue;
        ctx.report("SRB001", i,
                   "std::memory_order_" + m[2].str() +
                       " without an adjacent '// order:' "
                       "justification comment");
    }
}

/** SRB002: volatile is not a concurrency primitive. */
void
ruleNoVolatile(Ctx &ctx)
{
    static const std::regex re(R"(\bvolatile\b)");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i)
        if (std::regex_search(ctx.view.code[i], re))
            ctx.report("SRB002", i,
                       "volatile is not a concurrency or "
                       "do-not-optimize primitive; use std::atomic "
                       "with a justified order or a compiler "
                       "barrier");
}

/** SRB003: unseeded global PRNGs make runs irreproducible. */
void
ruleNoRand(Ctx &ctx)
{
    static const std::regex re(R"(\b(srand|rand)\s*\()");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        std::smatch m;
        if (std::regex_search(ctx.view.code[i], m, re))
            ctx.report("SRB003", i,
                       m[1].str() +
                           "() is global-state and irreproducible; "
                           "use common/prng.hh");
    }
}

/** SRB004: ownership must be typed (make_unique / containers). */
void
ruleNoNakedNewDelete(Ctx &ctx)
{
    static const std::regex re_new(R"(\bnew\b)");
    static const std::regex re_del(R"(\bdelete\b)");
    static const std::regex re_deleted_fn(R"(=\s*delete\b)");
    static const std::regex re_op(R"(operator\s+(new|delete)\b)");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        const std::string &ln = ctx.view.code[i];
        if (std::regex_search(ln, re_op))
            continue; // allocator shim operator declarations
        if (std::regex_search(ln, re_new))
            ctx.report("SRB004", i,
                       "naked new; use std::make_unique/"
                       "std::make_shared or a container");
        else if (std::regex_search(ln, re_del) &&
                 !std::regex_search(ln, re_deleted_fn))
            ctx.report("SRB004", i,
                       "naked delete; owning pointers must be "
                       "smart pointers");
    }
}

/**
 * SRB005: a yield loop burns a scheduler quantum per miss on an
 * oversubscribed host; block on a Doorbell (futex) instead.
 */
void
ruleNoSpinYield(Ctx &ctx)
{
    static const std::regex re(
        R"((std::this_thread::yield|\bsched_yield)\s*\()");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i)
        if (std::regex_search(ctx.view.code[i], re))
            ctx.report("SRB005", i,
                       "spin-yield loop; block on "
                       "Doorbell::waitUntil (core/stream.hh) or a "
                       "futex wait instead");
}

/**
 * SRB006: a raw standard mutex member is invisible to clang's
 * thread-safety analysis; srbenes::Mutex / SharedMutex
 * (common/thread_annotations.hh) carry the capability attributes.
 */
void
ruleAnnotatedMutexMembers(Ctx &ctx)
{
    static const std::regex re(
        R"(std::(shared_|recursive_|timed_)?mutex\s+\w+)");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        if (!std::regex_search(ctx.view.code[i], re))
            continue;
        // An adjacent capability annotation (rare: a guarded raw
        // mutex in code that cannot use the wrappers) is accepted.
        std::string near = ctx.view.code[i];
        if (i + 1 < ctx.view.code.size())
            near += ctx.view.code[i + 1];
        if (near.find("SRB_GUARDED_BY") != std::string::npos ||
            near.find("SRB_CAPABILITY") != std::string::npos)
            continue;
        ctx.report("SRB006", i,
                   "raw std mutex without a capability annotation; "
                   "use srbenes::Mutex/SharedMutex "
                   "(common/thread_annotations.hh)");
    }
}

/**
 * SRB007: <bits/...> is libstdc++ internal, and naming
 * std::atomic / std::thread while only including them transitively
 * breaks under include reshuffles.
 */
void
ruleIncludeHygiene(Ctx &ctx)
{
    static const std::regex re_bits(R"(#\s*include\s*<bits/)");
    static const std::regex re_inc(R"(#\s*include\s*<(atomic|thread)>)");
    static const std::regex re_atomic(R"(std::atomic\b)");
    static const std::regex re_thread(
        R"(std::(this_thread\b|jthread\b|thread\b))");

    bool has_atomic = false, has_thread = false;
    for (const std::string &ln : ctx.view.code) {
        std::smatch m;
        if (std::regex_search(ln, m, re_inc)) {
            if (m[1].str() == "atomic")
                has_atomic = true;
            else
                has_thread = true;
        }
    }

    bool flagged_atomic = false, flagged_thread = false;
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        const std::string &ln = ctx.view.code[i];
        if (std::regex_search(ln, re_bits))
            ctx.report("SRB007", i,
                       "<bits/...> is a libstdc++ internal header");
        if (!has_atomic && !flagged_atomic &&
            std::regex_search(ln, re_atomic)) {
            flagged_atomic = true;
            ctx.report("SRB007", i,
                       "names std::atomic but does not include "
                       "<atomic> directly");
        }
        if (!has_thread && !flagged_thread &&
            std::regex_search(ln, re_thread)) {
            flagged_thread = true;
            ctx.report("SRB007", i,
                       "names std::thread/this_thread but does not "
                       "include <thread> directly");
        }
    }
}

/**
 * SRB008: a file tagged `// srb-lint: bitsliced` promises
 * word-parallel state production — that promise is the whole point
 * of the setup engine. A per-switch scalar walk (a loop bounded by
 * switchesPerStage, or materializing the one-entry-per-switch
 * SwitchStates form) silently forfeits the speedup; flag it so the
 * regression needs a reviewed allow() to land.
 */
void
ruleBitslicedNoScalarWalk(Ctx &ctx)
{
    // The tag must sit on one of the file's first three lines — a
    // deliberate marker, not a doc comment that merely quotes it.
    bool tagged = false;
    for (std::size_t i = 0;
         i < ctx.view.comment.size() && i < 3 && !tagged; ++i)
        tagged = ctx.view.comment[i].find("srb-lint: bitsliced") !=
                 std::string::npos;
    if (!tagged)
        return;
    static const std::regex re(
        R"(\bswitchesPerStage\b|\bSwitchStates\b)");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i)
        if (std::regex_search(ctx.view.code[i], re))
            ctx.report("SRB008", i,
                       "per-switch scalar state walk in a file "
                       "tagged bitsliced; produce states "
                       "word-parallel (or justify construction-time "
                       "use with an allow)");
}

/**
 * SRB009: a file tagged `// srb-lint: arena` stores plan bytes in a
 * PlanArena — the contract that keeps batched plans in tiled,
 * cache-budget-sized blocks. A std::vector<Word> buffer or a naked
 * new/make_unique Word[] allocation reintroduces exactly the
 * per-plan heap traffic the arena exists to remove; flag it so the
 * escape hatch (the flat PackedStates compat form) needs a reviewed
 * allow() to land.
 */
void
ruleArenaNoHeapPlanBytes(Ctx &ctx)
{
    // Same opt-in discipline as SRB008: the tag must sit on one of
    // the file's first three lines.
    bool tagged = false;
    for (std::size_t i = 0;
         i < ctx.view.comment.size() && i < 3 && !tagged; ++i)
        tagged = ctx.view.comment[i].find("srb-lint: arena") !=
                 std::string::npos;
    if (!tagged)
        return;
    static const std::regex re(
        R"(std::vector<\s*Word\s*>|\bnew\s+Word\s*\[)"
        R"(|make_unique<\s*Word\s*\[\s*\]\s*>)");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i)
        if (std::regex_search(ctx.view.code[i], re))
            ctx.report("SRB009", i,
                       "heap-allocated plan bytes in a file tagged "
                       "arena; carve the block from a PlanArena (or "
                       "justify the compat form with an allow)");
}

/**
 * SRB010: a file tagged `// srb-lint: modeled` promises that its
 * concurrency goes through the common/sync.hh shim, so the srb_model
 * suite actually exercises the synchronization the production build
 * runs. A raw std::atomic / std::mutex / condition_variable member
 * or a direct SYS_futex call would compile and pass every test while
 * silently escaping the checker; flag it so bypassing the model
 * needs a reviewed allow() to land.
 */
void
ruleModeledSyncShim(Ctx &ctx)
{
    // Same opt-in discipline as SRB008/SRB009: the tag must sit on
    // one of the file's first three lines.
    bool tagged = false;
    for (std::size_t i = 0;
         i < ctx.view.comment.size() && i < 3 && !tagged; ++i)
        tagged = ctx.view.comment[i].find("srb-lint: modeled") !=
                 std::string::npos;
    if (!tagged)
        return;
    static const std::regex re(
        R"(std::atomic\b|std::mutex\b|std::shared_mutex\b)"
        R"(|std::condition_variable\b|std::scoped_lock\b)"
        R"(|std::lock_guard\b|std::unique_lock\b)"
        R"(|syscall\s*\(\s*SYS_futex)");
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i)
        if (std::regex_search(ctx.view.code[i], re))
            ctx.report("SRB010", i,
                       "raw synchronization primitive in a file "
                       "tagged modeled; use the common/sync.hh shim "
                       "(sync::Atomic/Mutex/Cell) so srb_model "
                       "checks it (or justify with an allow)");
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"SRB001", "relaxed/acquire/release/acq_rel memory order "
                   "needs an adjacent '// order:' justification"},
        {"SRB002", "no volatile"},
        {"SRB003", "no rand()/srand(); use common/prng.hh"},
        {"SRB004", "no naked new/delete"},
        {"SRB005", "no spin-yield loops; use Doorbell::waitUntil"},
        {"SRB006", "std mutex members must carry capability "
                   "annotations (srbenes::Mutex/SharedMutex)"},
        {"SRB007", "include hygiene: no <bits/>, direct "
                   "<atomic>/<thread> includes"},
        {"SRB008", "no per-switch scalar walks in files tagged "
                   "'srb-lint: bitsliced'"},
        {"SRB009", "no heap-allocated plan bytes in files tagged "
                   "'srb-lint: arena'; use PlanArena"},
        {"SRB010", "no raw std::atomic/std::mutex/SYS_futex in files "
                   "tagged 'srb-lint: modeled'; use common/sync.hh"},
    };
    return catalog;
}

std::vector<Finding>
lintText(const std::string &path, const std::string &text)
{
    FileView view = scanText(text);

    std::vector<std::string> lines;
    {
        std::stringstream ss(text);
        std::string ln;
        while (std::getline(ss, ln))
            lines.push_back(ln);
    }
    lines.resize(view.code.size());

    std::vector<Finding> found;
    Ctx ctx{path, lines, view, &found};
    ruleOrderJustified(ctx);
    ruleNoVolatile(ctx);
    ruleNoRand(ctx);
    ruleNoNakedNewDelete(ctx);
    ruleNoSpinYield(ctx);
    ruleAnnotatedMutexMembers(ctx);
    ruleIncludeHygiene(ctx);
    ruleBitslicedNoScalarWalk(ctx);
    ruleArenaNoHeapPlanBytes(ctx);
    ruleModeledSyncShim(ctx);

    // Inline suppressions: an allow on the finding's line or within
    // the two lines above it (room for a wrapped reason).
    std::vector<Finding> kept;
    for (Finding &f : found) {
        const std::size_t idx = f.line - 1;
        std::vector<std::string> allows;
        for (std::size_t back = 0; back <= 2 && back <= idx; ++back) {
            std::vector<std::string> a =
                parseAllows(view.comment[idx - back]);
            allows.insert(allows.end(), a.begin(), a.end());
        }
        if (std::find(allows.begin(), allows.end(), f.rule) ==
            allows.end())
            kept.push_back(std::move(f));
    }

    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return kept;
}

std::vector<Finding>
lintFile(const std::string &root, const std::string &relpath)
{
    std::ifstream in(fs::path(root) / relpath,
                     std::ios::in | std::ios::binary);
    if (!in)
        return {Finding{"SRB000", relpath, 0, "cannot read file", ""}};
    std::stringstream ss;
    ss << in.rdbuf();
    return lintText(relpath, ss.str());
}

std::vector<Finding>
lintTree(const std::string &root,
         const std::vector<std::string> &paths)
{
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        const fs::path abs = fs::path(root) / p;
        if (fs::is_regular_file(abs)) {
            files.push_back(p);
            continue;
        }
        if (!fs::is_directory(abs))
            continue;
        for (const auto &ent :
             fs::recursive_directory_iterator(abs)) {
            if (!ent.is_regular_file())
                continue;
            const std::string ext = ent.path().extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".h")
                continue;
            files.push_back(
                fs::relative(ent.path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());

    std::vector<Finding> all;
    for (const std::string &f : files) {
        std::vector<Finding> fs_ = lintFile(root, f);
        all.insert(all.end(), std::make_move_iterator(fs_.begin()),
                   std::make_move_iterator(fs_.end()));
    }
    return all;
}

std::string
baselineKey(const Finding &f)
{
    return f.rule + "|" + f.file + "|" + f.code;
}

std::set<std::string>
loadBaseline(const std::string &path)
{
    std::set<std::string> keys;
    std::ifstream in(path);
    std::string ln;
    while (std::getline(in, ln)) {
        const std::string t = trimmed(ln);
        if (t.empty() || t[0] == '#')
            continue;
        keys.insert(t);
    }
    return keys;
}

bool
writeBaseline(const std::string &path,
              const std::vector<Finding> &findings)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << "# srb-lint suppression baseline.\n"
        << "# One key per line: RULE|path|source-text. Entries are\n"
        << "# matched by content, so they survive line drift; each\n"
        << "# addition needs a review-visible justification in the\n"
        << "# PR that commits it. Regenerate with\n"
        << "#   srb_lint --update-baseline\n";
    std::set<std::string> keys;
    for (const Finding &f : findings)
        keys.insert(baselineKey(f));
    for (const std::string &k : keys)
        out << k << "\n";
    return true;
}

std::vector<Finding>
applyBaseline(const std::vector<Finding> &findings,
              const std::set<std::string> &baseline,
              std::size_t *baselined)
{
    std::vector<Finding> kept;
    std::size_t dropped = 0;
    for (const Finding &f : findings) {
        if (baseline.count(baselineKey(f)))
            ++dropped;
        else
            kept.push_back(f);
    }
    if (baselined)
        *baselined = dropped;
    return kept;
}

} // namespace lint
} // namespace srbenes
