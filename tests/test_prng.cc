/**
 * @file
 * Tests for the deterministic PRNG: reproducibility is load-bearing
 * for every sampled experiment.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"

namespace srbenes
{
namespace
{

TEST(Prng, SameSeedSameStream)
{
    Prng a(42), b(42);
    for (int k = 0; k < 1000; ++k)
        ASSERT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1), b(2);
    int equal = 0;
    for (int k = 0; k < 100; ++k)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Prng, BelowStaysInRange)
{
    Prng prng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
        for (int k = 0; k < 200; ++k)
            ASSERT_LT(prng.below(bound), bound);
    }
}

TEST(Prng, BelowOneIsAlwaysZero)
{
    Prng prng(9);
    for (int k = 0; k < 50; ++k)
        ASSERT_EQ(prng.below(1), 0u);
}

TEST(Prng, BelowCoversSmallRange)
{
    Prng prng(11);
    std::array<int, 4> hits{};
    for (int k = 0; k < 4000; ++k)
        ++hits[prng.below(4)];
    for (int h : hits) {
        // Each bucket should get roughly a quarter of the draws.
        EXPECT_GT(h, 800);
        EXPECT_LT(h, 1200);
    }
}

TEST(Prng, NonzeroOutput)
{
    // A bad seed expansion could zero the state; make sure the
    // stream is alive for several seeds including zero.
    for (std::uint64_t seed : {0ull, 1ull, 0xffffffffffffffffull}) {
        Prng prng(seed);
        std::uint64_t acc = 0;
        for (int k = 0; k < 16; ++k)
            acc |= prng();
        EXPECT_NE(acc, 0u);
    }
}

} // namespace
} // namespace srbenes
