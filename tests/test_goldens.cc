/**
 * @file
 * Golden-output tests: lock the externally visible text formats
 * (the Fig. 4 route render, Table I notation, cycle notation, hex
 * state blobs) so accidental format drift is caught even when the
 * underlying values stay correct.
 */

#include <gtest/gtest.h>

#include "core/render.hh"
#include "core/state_io.hh"
#include "core/waksman.hh"
#include "perm/cycles.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(Goldens, FigFourRender)
{
    const SelfRoutingBenes net(3);
    RouteTrace trace;
    const auto res = net.route(named::bitReversal(3).toPermutation(),
                               RoutingMode::SelfRouting, &trace);
    const std::string expected =
        "B(3), N = 8, 5 stages\n"
        "line  s0(b0)  s1(b1)  s2(b2)  s3(b1)  s4(b0)  out\n"
        "----  ------  ------  ------  ------  ------  ---\n"
        "0     000     000     000     000     000     000\n"
        "1     100     010     101     010     001     001\n"
        "2     010     101     010     101     010     010\n"
        "3     110     111     111     111     011     011\n"
        "4     001     100     100     001     101     100\n"
        "5     101     110     001     011     100     101\n"
        "6     011     001     110     100     111     110\n"
        "7     111     011     011     110     110     111\n"
        "switch states (stage: states top to bottom):\n"
        "  stage 0: 0 0 1 1\n"
        "  stage 1: 0 0 0 0\n"
        "  stage 2: 0 0 1 1\n"
        "  stage 3: 0 0 0 0\n"
        "  stage 4: 0 0 1 1\n"
        "verdict: permutation realized\n";
    EXPECT_EQ(renderRoute(net.topology(), trace, res), expected);
}

TEST(Goldens, TableOneNotationN6)
{
    const auto rows = named::tableOne(6);
    const char *expected[] = {
        "(2, 1, 0, 5, 4, 3)",        // matrix transpose
        "(0, 1, 2, 3, 4, 5)",        // bit reversal
        "(-5, -4, -3, -2, -1, -0)",  // vector reversal
        "(0, 5, 4, 3, 2, 1)",        // perfect shuffle
        "(4, 3, 2, 1, 0, 5)",        // unshuffle
        "(5, 3, 1, 4, 2, 0)",        // shuffled row major
        "(5, 2, 4, 1, 3, 0)",        // bit shuffle
    };
    ASSERT_EQ(rows.size(), 7u);
    for (std::size_t k = 0; k < rows.size(); ++k)
        EXPECT_EQ(rows[k].spec.toString(), expected[k])
            << rows[k].name;
}

TEST(Goldens, CycleNotation)
{
    EXPECT_EQ(toCycleString(
                  named::vectorReversal(2).toPermutation()),
              "(0 3)(1 2)");
    EXPECT_EQ(toCycleString(
                  named::perfectShuffle(3).toPermutation()),
              "(1 2 4)(3 6 5)");
}

TEST(Goldens, StateHexOfBitReversalSetup)
{
    // The Waksman setup is deterministic, so its packed form is a
    // stable fingerprint of the whole setup pipeline.
    const BenesTopology topo(3);
    const auto states = waksmanSetup(
        topo, named::bitReversal(3).toPermutation());
    const std::string hex = statesToHex(topo, states);
    EXPECT_EQ(hex.size(), 6u);
    // Lock the value: any change to the looping algorithm's
    // deterministic choices shows up here.
    EXPECT_EQ(statesFromHex(topo, hex), states);
    EXPECT_EQ(hex, statesToHex(topo, states)); // stable across calls
}

} // namespace
} // namespace srbenes
