/**
 * @file
 * Tests for the omega and Batcher gate models: bit-for-bit
 * agreement with the behavioral simulators (exhaustive at N = 4,
 * sampled above) and the structural depth comparison behind E9.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "gates/baseline_gates.hh"
#include "gates/benes_gates.hh"
#include "networks/batcher.hh"
#include "networks/omega_network.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(OmegaGates, MatchesBehavioralExhaustivelyN4)
{
    const OmegaGateModel model(2);
    const OmegaNetwork net(2);
    std::vector<Word> dest(4);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        const auto gate = model.simulate(d);
        const auto behav = net.route(d);
        ASSERT_EQ(gate.blocked, !behav.success) << d.toString();
        if (behav.success) {
            ASSERT_EQ(gate.output_tags, behav.output_tags);
        }
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class OmegaGatesSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OmegaGatesSweep, MatchesBehavioralOnMixedWorkloads)
{
    const unsigned n = GetParam();
    const OmegaGateModel model(n);
    const OmegaNetwork net(n);
    Prng prng(n * 811);
    for (int trial = 0; trial < 15; ++trial) {
        const Permutation d =
            trial % 2
                ? Permutation::random(std::size_t{1} << n, prng)
                : named::cyclicShift(n, prng.below(Word{1} << n));
        const auto gate = model.simulate(d);
        const auto behav = net.route(d);
        ASSERT_EQ(gate.blocked, !behav.success) << d.toString();
        if (behav.success) {
            ASSERT_EQ(gate.output_tags, behav.output_tags);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, OmegaGatesSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(BatcherGates, SortsExhaustivelyN4)
{
    const BatcherGateModel model(2);
    std::vector<Word> dest(4);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const auto tags = model.simulate(Permutation(dest));
        for (Word j = 0; j < 4; ++j)
            ASSERT_EQ(tags[j], j);
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(BatcherGates, SortsRandomPermutations)
{
    for (unsigned n : {3u, 4u, 5u}) {
        const BatcherGateModel model(n);
        Prng prng(n * 821);
        for (int trial = 0; trial < 10; ++trial) {
            const auto tags = model.simulate(
                Permutation::random(std::size_t{1} << n, prng));
            for (Word j = 0; j < model.numLines(); ++j)
                ASSERT_EQ(tags[j], j);
        }
    }
}

TEST(GateDepths, BenesShallowestSelfRoutingFabric)
{
    // The E9 argument at gate level: per-stage cost is one mux for
    // Benes, three levels for omega (control AND/NOT + mux), and a
    // full n-bit comparator for Batcher -- so among the fabrics
    // that route ALL permutations by tags alone (Batcher) or a rich
    // class (Benes), the Benes fabric is far shallower.
    for (unsigned n : {3u, 4u, 5u}) {
        const BenesGateModel benes(n, false);
        const BatcherGateModel batcher(n);
        EXPECT_EQ(benes.criticalDepth(), 2 * n - 1);
        EXPECT_GT(batcher.criticalDepth(),
                  3 * benes.criticalDepth());
    }
}

TEST(GateDepths, OmegaDatapathScalesLinearly)
{
    // Omega: <= 3 levels per stage plus the conflict-report tree.
    for (unsigned n : {2u, 4u, 6u}) {
        const OmegaGateModel model(n);
        EXPECT_LE(model.criticalDepth(),
                  3 * n + 2 * n + 4); // datapath + OR tree slack
        EXPECT_GE(model.criticalDepth(), n);
    }
}

TEST(BatcherGates, ComparatorStageCount)
{
    const BatcherGateModel model(4);
    EXPECT_EQ(model.comparatorStages(), 10u);
}

} // namespace
} // namespace srbenes
