/**
 * @file
 * Tests for the external Waksman/looping setup: the fabric with
 * self-setting disabled must realize EVERY permutation, exhaustively
 * for N <= 8 and sampled up to N = 1024.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "perm/bpc.hh"
#include "perm/f_class.hh"

namespace srbenes
{
namespace
{

TEST(Waksman, SingleSwitch)
{
    const SelfRoutingBenes net(1);
    for (const Permutation &d : {Permutation({0, 1}),
                                 Permutation({1, 0})}) {
        const auto states = waksmanSetup(net.topology(), d);
        EXPECT_TRUE(net.routeWithStates(d, states).success);
    }
}

TEST(Waksman, AllPermutationsN4)
{
    const SelfRoutingBenes net(2);
    std::vector<Word> dest(4);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        const auto states = waksmanSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success)
            << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(Waksman, AllPermutationsN8)
{
    const SelfRoutingBenes net(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        const auto states = waksmanSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success)
            << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class WaksmanSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WaksmanSweep, RandomPermutationsRealized)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 131);
    for (int trial = 0; trial < 15; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        const auto states = waksmanSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success);
    }
}

TEST_P(WaksmanSweep, HandlesPermutationsOutsideF)
{
    // The point of external setup: permutations the self-router
    // cannot do. Find a random non-F permutation and realize it.
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 137);
    for (int trial = 0; trial < 200; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        if (inFClass(d))
            continue;
        EXPECT_FALSE(net.route(d).success);
        const auto states = waksmanSetup(net.topology(), d);
        EXPECT_TRUE(net.routeWithStates(d, states).success);
        return;
    }
    FAIL() << "no non-F permutation sampled (astronomically "
              "unlikely)";
}

INSTANTIATE_TEST_SUITE_P(Widths, WaksmanSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 10u));

TEST(Waksman, StateArrayShape)
{
    const BenesTopology topo(4);
    Prng prng(7);
    const auto states =
        waksmanSetup(topo, Permutation::random(16, prng));
    ASSERT_EQ(states.size(), topo.numStages());
    for (const auto &stage : states)
        ASSERT_EQ(stage.size(), topo.switchesPerStage());
}

TEST(WaksmanSeeded, EverySeedRealizesThePermutation)
{
    // The looping algorithm's free choices are POLICY: any coloring
    // realizes d, so every seed must yield a working setup.
    const SelfRoutingBenes net(4);
    Prng prng(31);
    for (int trial = 0; trial < 5; ++trial) {
        const Permutation d = Permutation::random(16, prng);
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            const auto states =
                waksmanSetupSeeded(net.topology(), d, seed);
            EXPECT_TRUE(net.routeWithStates(d, states).success)
                << "seed " << seed;
        }
    }
}

TEST(WaksmanSeeded, SeedZeroIsTheCanonicalSetup)
{
    const BenesTopology topo(5);
    Prng prng(32);
    for (int trial = 0; trial < 5; ++trial) {
        const Permutation d = Permutation::random(32, prng);
        EXPECT_EQ(waksmanSetupSeeded(topo, d, 0),
                  waksmanSetup(topo, d));
    }
}

TEST(WaksmanSeeded, SeedsExerciseDifferentStates)
{
    // Distinct seeds must actually move some switch, or the Reroute
    // tier's reseeding would be a no-op.
    const BenesTopology topo(4);
    Prng prng(33);
    const Permutation d = Permutation::random(16, prng);
    const auto canonical = waksmanSetupSeeded(topo, d, 0);
    bool varied = false;
    for (std::uint64_t seed = 1; seed < 10 && !varied; ++seed)
        varied = waksmanSetupSeeded(topo, d, seed) != canonical;
    EXPECT_TRUE(varied);
}

TEST(WaksmanPinned, ExhaustiveSinglePinSweep)
{
    // Every non-center switch sits on a constraint loop with a free
    // coloring, so a single pin there is ALWAYS honorable; the
    // center stage (m == 1 subnetworks) is fully determined by the
    // sub-permutations, so a pin there may be unsatisfiable for a
    // given seed. Whenever setup succeeds the pin must be honored
    // bit-for-bit and the states must realize d.
    const unsigned n = 3;
    const SelfRoutingBenes net(n);
    const BenesTopology &topo = net.topology();
    Prng prng(34);
    const Permutation d = Permutation::random(8, prng);

    for (unsigned s = 0; s < topo.numStages(); ++s) {
        for (Word sw = 0; sw < topo.switchesPerStage(); ++sw) {
            for (std::uint8_t st : {std::uint8_t{0},
                                    std::uint8_t{1}}) {
                const StatePin pin{s, sw, st};
                bool satisfied = false;
                for (std::uint64_t seed = 0; seed < 8; ++seed) {
                    const auto states =
                        waksmanSetupPinned(topo, d, {pin}, seed);
                    if (!states)
                        continue;
                    satisfied = true;
                    EXPECT_EQ((*states)[s][sw], st);
                    EXPECT_TRUE(
                        net.routeWithStates(d, *states).success);
                }
                if (s != n - 1) {
                    EXPECT_TRUE(satisfied)
                        << "free pin (" << s << ", " << sw << ", "
                        << int(st) << ") refused";
                }
            }
        }
    }
}

TEST(WaksmanPinned, ConflictingPinsAreRefusedNotMisrouted)
{
    // Pinning one switch both ways cannot be satisfied; the setup
    // must answer nullopt rather than hand back a broken state set.
    const BenesTopology topo(3);
    Prng prng(35);
    const Permutation d = Permutation::random(8, prng);
    const std::vector<StatePin> pins{StatePin{0, 1, 0},
                                     StatePin{0, 1, 1}};
    EXPECT_FALSE(waksmanSetupPinned(topo, d, pins, 0).has_value());
}

TEST(Waksman, SelfRoutableInputsMayDifferInStatesButAgreeInEffect)
{
    // For a permutation in F both drive styles succeed; the realized
    // destinations must agree even if individual switch states
    // differ (the Benes decomposition is not unique).
    const SelfRoutingBenes net(4);
    Prng prng(23);
    const Permutation d = BpcSpec::random(4, prng).toPermutation();
    const auto self_res = net.route(d);
    const auto states = waksmanSetup(net.topology(), d);
    const auto ext_res = net.routeWithStates(d, states);
    ASSERT_TRUE(self_res.success);
    ASSERT_TRUE(ext_res.success);
    EXPECT_EQ(self_res.realized_dest, ext_res.realized_dest);
}

} // namespace
} // namespace srbenes
