/**
 * @file
 * Tests for the external Waksman/looping setup: the fabric with
 * self-setting disabled must realize EVERY permutation, exhaustively
 * for N <= 8 and sampled up to N = 1024.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "perm/bpc.hh"
#include "perm/f_class.hh"

namespace srbenes
{
namespace
{

TEST(Waksman, SingleSwitch)
{
    const SelfRoutingBenes net(1);
    for (const Permutation &d : {Permutation({0, 1}),
                                 Permutation({1, 0})}) {
        const auto states = waksmanSetup(net.topology(), d);
        EXPECT_TRUE(net.routeWithStates(d, states).success);
    }
}

TEST(Waksman, AllPermutationsN4)
{
    const SelfRoutingBenes net(2);
    std::vector<Word> dest(4);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        const auto states = waksmanSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success)
            << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(Waksman, AllPermutationsN8)
{
    const SelfRoutingBenes net(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        const auto states = waksmanSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success)
            << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class WaksmanSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WaksmanSweep, RandomPermutationsRealized)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 131);
    for (int trial = 0; trial < 15; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        const auto states = waksmanSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success);
    }
}

TEST_P(WaksmanSweep, HandlesPermutationsOutsideF)
{
    // The point of external setup: permutations the self-router
    // cannot do. Find a random non-F permutation and realize it.
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 137);
    for (int trial = 0; trial < 200; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        if (inFClass(d))
            continue;
        EXPECT_FALSE(net.route(d).success);
        const auto states = waksmanSetup(net.topology(), d);
        EXPECT_TRUE(net.routeWithStates(d, states).success);
        return;
    }
    FAIL() << "no non-F permutation sampled (astronomically "
              "unlikely)";
}

INSTANTIATE_TEST_SUITE_P(Widths, WaksmanSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 10u));

TEST(Waksman, StateArrayShape)
{
    const BenesTopology topo(4);
    Prng prng(7);
    const auto states =
        waksmanSetup(topo, Permutation::random(16, prng));
    ASSERT_EQ(states.size(), topo.numStages());
    for (const auto &stage : states)
        ASSERT_EQ(stage.size(), topo.switchesPerStage());
}

TEST(Waksman, SelfRoutableInputsMayDifferInStatesButAgreeInEffect)
{
    // For a permutation in F both drive styles succeed; the realized
    // destinations must agree even if individual switch states
    // differ (the Benes decomposition is not unique).
    const SelfRoutingBenes net(4);
    Prng prng(23);
    const Permutation d = BpcSpec::random(4, prng).toPermutation();
    const auto self_res = net.route(d);
    const auto states = waksmanSetup(net.topology(), d);
    const auto ext_res = net.routeWithStates(d, states);
    ASSERT_TRUE(self_res.success);
    ASSERT_TRUE(ext_res.success);
    EXPECT_EQ(self_res.realized_dest, ext_res.realized_dest);
}

} // namespace
} // namespace srbenes
