/**
 * @file
 * Tests for the half-network decomposition: the exact form of the
 * paper's "first n stages correspond to an inverse omega network
 * except for some rearrangement of switches" -- the rearrangement
 * is precisely one fixed bit-permutation relabeling (the
 * all-straight map; bit reversal for the omega half). Set
 * equalities are checked exhaustively over ALL switch settings at
 * N = 4 and N = 8.
 */

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/half_network.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "perm/bpc.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

/** Load the low bits of @p settings into the switches of stages
 *  [lo, hi]. */
SwitchStates
statesFromBits(const BenesTopology &topo, unsigned lo, unsigned hi,
               std::uint64_t settings)
{
    SwitchStates states = topo.makeStates();
    unsigned bit_idx = 0;
    for (unsigned s = lo; s <= hi; ++s)
        for (Word i = 0; i < topo.switchesPerStage(); ++i)
            states[s][i] = static_cast<std::uint8_t>(
                (settings >> bit_idx++) & 1);
    return states;
}

/** All mappings a half realizes, over every switch setting. */
template <typename MapFn>
std::set<std::vector<Word>>
enumerateHalf(const BenesTopology &topo, unsigned lo, unsigned hi,
              MapFn map_fn)
{
    const unsigned bits = static_cast<unsigned>(
        (hi - lo + 1) * topo.switchesPerStage());
    std::set<std::vector<Word>> out;
    for (std::uint64_t settings = 0;
         settings < (std::uint64_t{1} << bits); ++settings) {
        const auto states = statesFromBits(topo, lo, hi, settings);
        out.insert(map_fn(topo, states).dest());
    }
    return out;
}

/** All members of a permutation class at size N. */
template <typename Pred>
std::set<std::vector<Word>>
enumerateClass(Word size, Pred pred)
{
    std::vector<Word> dest(size);
    std::iota(dest.begin(), dest.end(), 0);
    std::set<std::vector<Word>> out;
    do {
        if (pred(Permutation(dest)))
            out.insert(dest);
    } while (std::next_permutation(dest.begin(), dest.end()));
    return out;
}

class HalfNetwork : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HalfNetwork, FirstHalfIsInverseOmegaTimesUnshuffle)
{
    const unsigned n = GetParam();
    const BenesTopology topo(n);
    const Word size = topo.numLines();

    const auto realized =
        enumerateHalf(topo, 0, n - 1, firstHalfMapping);

    // { rho.then(w0) : rho in InverseOmega(n) } with w0 the fixed
    // all-straight relabeling of this size.
    const Permutation w0 =
        firstHalfMapping(topo, topo.makeStates());
    std::set<std::vector<Word>> expected;
    for (const auto &rho :
         enumerateClass(size, [](const Permutation &p) {
             return isInverseOmega(p);
         }))
        expected.insert(Permutation(rho).then(w0).dest());

    EXPECT_EQ(realized, expected);
    // Injectivity: one distinct mapping per setting.
    EXPECT_EQ(realized.size(),
              std::size_t{1} << (n * size / 2));
}

TEST_P(HalfNetwork, OmegaHalfIsBitReversalTimesOmega)
{
    const unsigned n = GetParam();
    const BenesTopology topo(n);
    const Word size = topo.numLines();

    const auto realized = enumerateHalf(topo, n - 1, 2 * n - 2,
                                        omegaHalfMapping);

    const Permutation bitrev =
        named::bitReversal(n).toPermutation();
    std::set<std::vector<Word>> expected;
    for (const auto &om :
         enumerateClass(size, [](const Permutation &p) {
             return isOmega(p);
         }))
        expected.insert(bitrev.then(Permutation(om)).dest());

    EXPECT_EQ(realized, expected);
    EXPECT_EQ(realized.size(),
              std::size_t{1} << (n * size / 2));
}

INSTANTIATE_TEST_SUITE_P(Widths, HalfNetwork,
                         ::testing::Values(2u, 3u));

TEST(HalfNetwork, RouteFactorsThroughTheHalves)
{
    // firstHalf.then(tail) must equal the full realized mapping for
    // arbitrary switch settings.
    const unsigned n = 4;
    const SelfRoutingBenes net(n);
    const auto &topo = net.topology();
    Prng prng(41);
    for (int trial = 0; trial < 20; ++trial) {
        const auto d = Permutation::random(16, prng);
        const auto states = waksmanSetup(topo, d);
        const auto first = firstHalfMapping(topo, states);
        const auto tail = tailMapping(topo, states);
        // The Waksman states realize d, so the composition is d.
        EXPECT_EQ(first.then(tail), d);
    }
}

TEST(HalfNetwork, AllStraightFirstHalfRelabelings)
{
    // The fixed relabeling w0 depends on n: the inner partial
    // unshuffles only cancel pairwise against the trailing
    // boundary. Spot values: identity at n = 2, one unshuffle at
    // n = 3; always a pure bit-permutation of the line index.
    EXPECT_EQ(firstHalfMapping(BenesTopology(2),
                               BenesTopology(2).makeStates()),
              Permutation::identity(4));
    EXPECT_EQ(firstHalfMapping(BenesTopology(3),
                               BenesTopology(3).makeStates()),
              named::unshuffle(3).toPermutation());
    for (unsigned n = 2; n <= 6; ++n) {
        const BenesTopology topo(n);
        const auto w0 = firstHalfMapping(topo, topo.makeStates());
        EXPECT_TRUE(recognizeBpc(w0).has_value()) << n;
    }
}

TEST(HalfNetwork, AllStraightOmegaHalfIsBitReversal)
{
    for (unsigned n = 2; n <= 6; ++n) {
        const BenesTopology topo(n);
        EXPECT_EQ(omegaHalfMapping(topo, topo.makeStates()),
                  named::bitReversal(n).toPermutation())
            << n;
    }
}

TEST(HalfNetwork, SingleStageNetworkDegenerates)
{
    const BenesTopology topo(1);
    const auto states = topo.makeStates();
    EXPECT_EQ(firstHalfMapping(topo, states),
              Permutation::identity(2));
    EXPECT_EQ(tailMapping(topo, states), Permutation::identity(2));
}

} // namespace
} // namespace srbenes
