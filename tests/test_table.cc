/**
 * @file
 * Tests for the text-table formatter used by all bench output.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

namespace srbenes
{
namespace
{

TEST(TextTable, AlignsColumnsToWidestCell)
{
    TextTable t({"a", "bbbb"});
    t.addRow({"wide-cell", "1"});
    t.addRow({"x", "22"});

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();

    EXPECT_NE(out.find("a          bbbb"), std::string::npos);
    EXPECT_NE(out.find("wide-cell  1"), std::string::npos);
    EXPECT_NE(out.find("x          22"), std::string::npos);
}

TEST(TextTable, HeaderRuleMatchesWidths)
{
    TextTable t({"col"});
    t.addRow({"abcdef"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("------"), std::string::npos);
}

TEST(TextTable, NumericCells)
{
    TextTable t({"u64", "int", "dbl"});
    t.newRow();
    t.addCell(std::uint64_t{18446744073709551615ull});
    t.addCell(-42);
    t.addCell(3.14159, 2);

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
    EXPECT_NE(out.find("-42"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
}

TEST(TextTable, RowCount)
{
    TextTable t({"x"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}

} // namespace
} // namespace srbenes
