/**
 * @file
 * End-to-end tests of the srbd server over real loopback sockets:
 * payload-exact serving, admission control (bad request, quota,
 * shed, draining), protocol-error handling with counter bumps,
 * graceful drain with requests in flight, and concurrent client
 * threads sharing one server (the tsan target).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/prng.hh"
#include "net/client.hh"
#include "net/loadgen.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "perm/permutation.hh"

namespace srbenes
{
namespace net
{
namespace
{

/** A served fixture: its own registry, n=6 (N=64), two workers. */
class SrbdTest : public ::testing::Test
{
  protected:
    void
    startServer(ServerOptions opts)
    {
        opts.metrics = &registry_;
        opts.stream.metrics = &registry_;
        server_ = std::make_unique<Server>(std::move(opts));
        ASSERT_TRUE(server_->valid());
        server_->start();
    }

    ServerOptions
    defaults()
    {
        ServerOptions opts;
        opts.n = 6;
        opts.stream.workers = 2;
        return opts;
    }

    bool
    stopServer()
    {
        server_->requestDrain();
        return server_->awaitStop();
    }

    SubmitMsg
    randomSubmit(std::uint64_t id, Prng &prng,
                 std::vector<Word> *expected = nullptr)
    {
        const Word N = server_->numLines();
        const Permutation perm = Permutation::random(N, prng);
        SubmitMsg m;
        m.id = id;
        m.dest = perm.dest();
        m.has_payload = true;
        m.payload.resize(N);
        for (Word i = 0; i < N; ++i)
            m.payload[i] = id * 1000 + i;
        if (expected != nullptr)
            *expected = perm.applyTo(m.payload);
        return m;
    }

    obs::MetricsRegistry registry_;
    std::unique_ptr<Server> server_;
};

TEST_F(SrbdTest, ServesPayloadExactly)
{
    startServer(defaults());
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));

    Prng prng(7);
    for (std::uint64_t id = 1; id <= 16; ++id) {
        std::vector<Word> expected;
        const SubmitMsg m = randomSubmit(id, prng, &expected);
        Message response;
        ASSERT_TRUE(client.roundTrip(Message{m}, response));
        auto *res = std::get_if<SubmitResultMsg>(&response);
        ASSERT_NE(res, nullptr);
        EXPECT_EQ(res->id, id);
        EXPECT_EQ(res->status, Status::Ok);
        EXPECT_EQ(res->tier, ServeTier::Primary);
        EXPECT_GT(res->server_ns, 0u);
        EXPECT_EQ(res->payload, expected);
    }
    client.close();
    EXPECT_TRUE(stopServer());
    EXPECT_EQ(server_->stats().ok, 16u);
    EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(SrbdTest, ControlPlaneSubmitEchoesNoPayload)
{
    startServer(defaults());
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));

    Prng prng(11);
    SubmitMsg m = randomSubmit(1, prng);
    m.has_payload = false;
    m.payload.clear();
    Message response;
    ASSERT_TRUE(client.roundTrip(Message{m}, response));
    auto *res = std::get_if<SubmitResultMsg>(&response);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, Status::Ok);
    EXPECT_TRUE(res->payload.empty());
    client.close();
    EXPECT_TRUE(stopServer());
}

TEST_F(SrbdTest, RejectsMalformedSubmits)
{
    startServer(defaults());
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));

    // Wrong size: 4 lines against an N=64 fabric.
    SubmitMsg wrong_size;
    wrong_size.id = 1;
    wrong_size.dest = {0, 1, 2, 3};
    Message response;
    ASSERT_TRUE(client.roundTrip(Message{wrong_size}, response));
    auto *res = std::get_if<SubmitResultMsg>(&response);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, Status::BadRequest);
    EXPECT_EQ(res->tier, ServeTier::Failed);

    // Right size, not a permutation (output 0 twice).
    SubmitMsg not_perm;
    not_perm.id = 2;
    not_perm.dest.assign(server_->numLines(), 0);
    ASSERT_TRUE(client.roundTrip(Message{not_perm}, response));
    res = std::get_if<SubmitResultMsg>(&response);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, Status::BadRequest);

    // The connection survives semantic refusals.
    Prng prng(3);
    std::vector<Word> expected;
    const SubmitMsg good = randomSubmit(3, prng, &expected);
    ASSERT_TRUE(client.roundTrip(Message{good}, response));
    res = std::get_if<SubmitResultMsg>(&response);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, Status::Ok);
    EXPECT_EQ(res->payload, expected);

    client.close();
    EXPECT_TRUE(stopServer());
    EXPECT_EQ(server_->stats().bad_requests, 2u);
}

TEST_F(SrbdTest, HealthAndStatsVerbs)
{
    startServer(defaults());

    HealthResultMsg health;
    ASSERT_TRUE(
        fetchHealth("127.0.0.1", server_->port(), health));
    EXPECT_EQ(health.state, ServeState::Serving);
    EXPECT_EQ(health.n, 6u);
    EXPECT_EQ(health.workers, 2u);

    std::string text;
    ASSERT_TRUE(fetchStats("127.0.0.1", server_->port(),
                           StatsFormat::PrometheusText, text));
    EXPECT_NE(text.find("srbd_submits_total"), std::string::npos);
    EXPECT_NE(text.find("srbd_active_connections"),
              std::string::npos);

    std::string json;
    ASSERT_TRUE(fetchStats("127.0.0.1", server_->port(),
                           StatsFormat::Json, json));
    EXPECT_NE(json.find("\"srbd_submits_total\""),
              std::string::npos);

    EXPECT_TRUE(stopServer());
}

TEST_F(SrbdTest, QuotaRefusesTheBurstExcess)
{
    ServerOptions opts = defaults();
    // 1 token/s, depth 2: the third back-to-back submit from one
    // tenant must be refused, quota being charged before the ring.
    opts.quota.rate_per_sec = 1;
    opts.quota.burst = 2;
    startServer(std::move(opts));

    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    Prng prng(5);
    std::uint64_t ok = 0, over_quota = 0;
    for (std::uint64_t id = 1; id <= 3; ++id) {
        Message response;
        ASSERT_TRUE(client.roundTrip(
            Message{randomSubmit(id, prng)}, response));
        auto *res = std::get_if<SubmitResultMsg>(&response);
        ASSERT_NE(res, nullptr);
        if (res->status == Status::Ok)
            ++ok;
        else if (res->status == Status::OverQuota)
            ++over_quota;
    }
    EXPECT_EQ(ok, 2u);
    EXPECT_EQ(over_quota, 1u);

    // A different tenant has its own bucket.
    SubmitMsg other = randomSubmit(4, prng);
    other.tenant = 999;
    Message response;
    ASSERT_TRUE(client.roundTrip(Message{other}, response));
    auto *res = std::get_if<SubmitResultMsg>(&response);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, Status::Ok);

    client.close();
    EXPECT_TRUE(stopServer());
    EXPECT_EQ(server_->stats().quota_rejected, 1u);

    // The per-tenant series took the charge.
    EXPECT_GE(registry_
                  .counter("srbd_tenant_rejected_total",
                           {{"tenant", "0"}})
                  .value(),
              1u);
}

TEST_F(SrbdTest, ShedsAtTheInflightCap)
{
    ServerOptions opts = defaults();
    // Cap 0: every submit finds the connection at its in-flight
    // limit — a deterministic stand-in for full rings.
    opts.max_conn_inflight = 0;
    startServer(std::move(opts));

    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    Prng prng(13);
    Message response;
    ASSERT_TRUE(client.roundTrip(Message{randomSubmit(1, prng)},
                                 response));
    auto *res = std::get_if<SubmitResultMsg>(&response);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, Status::Shed);
    client.close();
    EXPECT_TRUE(stopServer());
    EXPECT_EQ(server_->stats().sheds, 1u);
}

TEST_F(SrbdTest, GarbageFrameClosesConnectionAndCounts)
{
    startServer(defaults());
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));

    // Hand-roll an unknown-type frame over a plain socket: the
    // Message API cannot produce one.
    const std::vector<std::uint8_t> wire = {1, 0, 0, 0, 0x7F};
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    // The server must close on us without crashing.
    char buf[16];
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_EQ(got, 0) << "expected EOF after protocol error";
    ::close(fd);

    // The well-behaved connection is unaffected.
    Prng prng(17);
    std::vector<Word> expected;
    Message response;
    ASSERT_TRUE(client.roundTrip(
        Message{randomSubmit(1, prng, &expected)}, response));
    auto *res = std::get_if<SubmitResultMsg>(&response);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, Status::Ok);
    EXPECT_EQ(res->payload, expected);

    client.close();
    EXPECT_TRUE(stopServer());
    EXPECT_EQ(server_->stats().protocol_errors, 1u);
}

TEST_F(SrbdTest, UnsolicitedServerTypeIsAProtocolError)
{
    startServer(defaults());
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));

    // A client sending a server-to-client type gets dropped.
    ASSERT_TRUE(client.send(Message{SubmitResultMsg{}}));
    Message out;
    std::string error;
    EXPECT_FALSE(client.receive(out, &error));
    client.close();
    EXPECT_TRUE(stopServer());
    EXPECT_EQ(server_->stats().protocol_errors, 1u);
}

TEST_F(SrbdTest, WireDeadlineSurfacesAsDeadlineExceeded)
{
    startServer(defaults());
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));

    // A 1 ns relative deadline is expired by the time any worker
    // (or the inline path) picks the request up: the engine's
    // deadline taxonomy must cross the wire intact.
    Prng prng(31);
    SubmitMsg m = randomSubmit(1, prng);
    m.deadline_rel_ns = 1;
    Message response;
    ASSERT_TRUE(client.roundTrip(Message{m}, response));
    auto *res = std::get_if<SubmitResultMsg>(&response);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, Status::DeadlineExceeded);
    EXPECT_TRUE(res->payload.empty());
    client.close();
    EXPECT_TRUE(stopServer());
}

TEST_F(SrbdTest, DrainAnswersEverythingInFlight)
{
    startServer(defaults());
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));

    // Fire a burst without reading, drain mid-flight, then collect:
    // every submit must be answered (Ok or Draining), none lost.
    Prng prng(23);
    constexpr std::uint64_t kBurst = 64;
    for (std::uint64_t id = 1; id <= kBurst; ++id)
        ASSERT_TRUE(client.send(Message{randomSubmit(id, prng)}));
    server_->requestDrain();

    std::uint64_t answered = 0, ok = 0, draining = 0;
    while (answered < kBurst) {
        Message response;
        bool timed_out = false;
        if (!client.receiveFor(response, 2000, timed_out))
            break;
        auto *res = std::get_if<SubmitResultMsg>(&response);
        ASSERT_NE(res, nullptr);
        ++answered;
        if (res->status == Status::Ok)
            ++ok;
        else if (res->status == Status::Draining)
            ++draining;
    }
    EXPECT_EQ(answered, kBurst) << "requests lost across drain";
    EXPECT_EQ(ok + draining, kBurst);
    client.close();
    EXPECT_TRUE(server_->awaitStop()) << "drain was not clean";
    EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(SrbdTest, RefusesSubmitsWhileDrainingButStillAnswers)
{
    startServer(defaults());
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));

    Prng prng(29);
    // Park one request so the drain has something in flight, giving
    // the draining-refusal window a deterministic floor.
    for (std::uint64_t id = 1; id <= 8; ++id)
        ASSERT_TRUE(client.send(Message{randomSubmit(id, prng)}));
    server_->requestDrain();
    ASSERT_TRUE(client.send(Message{randomSubmit(100, prng)}));

    std::uint64_t answered = 0;
    bool saw_draining_or_all_ok = false;
    for (std::uint64_t i = 0; i < 9; ++i) {
        Message response;
        bool timed_out = false;
        if (!client.receiveFor(response, 2000, timed_out))
            break;
        auto *res = std::get_if<SubmitResultMsg>(&response);
        ASSERT_NE(res, nullptr);
        ++answered;
        if (res->id == 100)
            saw_draining_or_all_ok =
                res->status == Status::Draining ||
                res->status == Status::Ok;
    }
    // The late submit races the drain flag; either refusal or
    // service is legal, silence is not.
    EXPECT_EQ(answered, 9u);
    EXPECT_TRUE(saw_draining_or_all_ok);
    client.close();
    EXPECT_TRUE(server_->awaitStop());
}

TEST_F(SrbdTest, ConcurrentClientsShareOneEngine)
{
    // The tsan target: several client threads hammer one server,
    // whose single loop feeds a shared StreamEngine.
    startServer(defaults());
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 48;
    std::vector<std::thread> threads;
    std::vector<std::uint64_t> ok_counts(kThreads, 0);

    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([this, t, &ok_counts] {
            Client client;
            if (!client.connect("127.0.0.1", server_->port()))
                return;
            Prng prng(100 + t);
            const Word N = server_->numLines();
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const Permutation perm = Permutation::random(N, prng);
                SubmitMsg m;
                m.id = i;
                m.tenant = t;
                m.dest = perm.dest();
                m.has_payload = true;
                m.payload.resize(N);
                for (Word w = 0; w < N; ++w)
                    m.payload[w] = (std::uint64_t{t} << 32) | w;
                const std::vector<Word> expected =
                    perm.applyTo(m.payload);
                Message response;
                if (!client.roundTrip(Message{m}, response))
                    return;
                auto *res = std::get_if<SubmitResultMsg>(&response);
                if (res != nullptr && res->status == Status::Ok &&
                    res->payload == expected)
                    ++ok_counts[t];
            }
        });
    for (std::thread &t : threads)
        t.join();
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(ok_counts[t], kPerThread) << "thread " << t;
    EXPECT_TRUE(stopServer());
    EXPECT_EQ(server_->stats().ok, kThreads * kPerThread);
    EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(SrbdTest, LoadgenRunsCleanAgainstTheServer)
{
    // The in-process version of the CI soak: a short open-loop
    // phase must come back clean() with verified payloads.
    startServer(defaults());
    LoadgenOptions opts;
    opts.port = server_->port();
    opts.connections = 2;
    opts.rate_per_sec = 2000;
    opts.duration_ms = 300;
    opts.patterns = 4;
    const LoadgenReport report = runLoadgen(opts);
    EXPECT_TRUE(report.clean())
        << "lost=" << report.lost
        << " protocol_errors=" << report.protocol_errors
        << " mismatches=" << report.payload_mismatches;
    EXPECT_GT(report.ok, 0u);
    EXPECT_GT(report.p99_ns, 0u);
    EXPECT_TRUE(stopServer());
}

} // namespace
} // namespace net
} // namespace srbenes
