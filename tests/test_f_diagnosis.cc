/**
 * @file
 * Tests for the non-membership diagnosis: agreement with inFClass,
 * the exact Fig. 5 localization, and determinism.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/f_class.hh"
#include "perm/f_diagnosis.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(FDiagnosis, MembersAreClean)
{
    Prng prng(1);
    for (unsigned n : {2u, 4u, 6u}) {
        for (int trial = 0; trial < 20; ++trial) {
            const Permutation p = randomFMember(n, prng);
            EXPECT_FALSE(diagnoseNonMembership(p).has_value())
                << p.toString();
        }
    }
}

TEST(FDiagnosis, FigFiveLocalization)
{
    // D = (1,3,2,0): stage-0 switches put tags 3 and 2 into the
    // upper child -- both high-bit value 1; switches 0 and 1
    // collide.
    const auto diag =
        diagnoseNonMembership(Permutation({1, 3, 2, 0}));
    ASSERT_TRUE(diag.has_value());
    EXPECT_EQ(diag->level, 0u);
    EXPECT_EQ(diag->subnetwork, 0u);
    EXPECT_TRUE(diag->upper_child);
    EXPECT_EQ(diag->colliding_value, 1u);
    EXPECT_EQ(diag->first_switch, 0u);
    EXPECT_EQ(diag->second_switch, 1u);
    EXPECT_NE(diag->toString().find("upper"), std::string::npos);
}

TEST(FDiagnosis, AgreesWithMembershipExhaustivelyN8)
{
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation p(dest);
        ASSERT_EQ(diagnoseNonMembership(p).has_value(),
                  !inFClass(p))
            << p.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(FDiagnosis, DeepViolationReported)
{
    // Build a permutation valid at the top split but broken one
    // level down: apply the Fig. 5 pattern inside the upper
    // B(2) of a B(3). Top level: keep evens up, odds down. The
    // upper child then carries (1,3,2,0)-like tags.
    // Construct tags directly: inputs 2i get even tags whose halves
    // misbehave: upper child receives shifted tags (1,3,2,0) =>
    // full tags (2,6,4,0) on even inputs; odd inputs get odd tags
    // in valid order (1,3,5,7).
    const Permutation p{2, 1, 6, 3, 4, 5, 0, 7};
    ASSERT_FALSE(inFClass(p));
    const auto diag = diagnoseNonMembership(p);
    ASSERT_TRUE(diag.has_value());
    EXPECT_EQ(diag->level, 1u);
    EXPECT_EQ(diag->subnetwork, 0u); // the upper B(2)
}

TEST(FDiagnosis, DeterministicAcrossCalls)
{
    Prng prng(7);
    for (int trial = 0; trial < 50; ++trial) {
        const auto p = Permutation::random(16, prng);
        const auto a = diagnoseNonMembership(p);
        const auto b = diagnoseNonMembership(p);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
            EXPECT_EQ(a->level, b->level);
            EXPECT_EQ(a->subnetwork, b->subnetwork);
            EXPECT_EQ(a->colliding_value, b->colliding_value);
        }
    }
}

} // namespace
} // namespace srbenes
