/**
 * @file
 * Cross-module boundary and failure-path coverage: the degenerate
 * n = 1 fabric everywhere, size-mismatch and malformed-input
 * fatal()s, and API misuse that must die loudly rather than
 * corrupt a result.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "networks/gcn.hh"
#include "packet/packet_benes.hh"
#include "perm/bpc.hh"
#include "perm/compose.hh"
#include "simd/permute.hh"

namespace srbenes
{
namespace
{

TEST(EdgeCases, SmallestFabricEverywhere)
{
    // n = 1: a single switch. Every subsystem must handle it.
    const SelfRoutingBenes net(1);
    EXPECT_TRUE(net.route(Permutation({1, 0})).success);
    EXPECT_TRUE(net.route(Permutation({0, 1})).success);

    PipelinedBenes pipe(1);
    pipe.inject(Permutation({1, 0}), {7, 9});
    const auto out = pipe.clockTick();
    ASSERT_TRUE(out.has_value()); // latency 2*1-1 = 1
    EXPECT_TRUE(out->success);
    EXPECT_EQ(out->payloads, (std::vector<Word>{9, 7}));

    CubeMachine ccc(1);
    ccc.loadIota(Permutation({1, 0}));
    EXPECT_TRUE(cccPermute(ccc).success);
    EXPECT_EQ(ccc.unitRoutes(), 1u);

    ShuffleMachine psc(1);
    psc.loadIota(Permutation({1, 0}));
    EXPECT_TRUE(pscPermute(psc).success);

    const GcnNetwork gcn(1);
    EXPECT_EQ(gcn.routeMapping({1, 1}, {5, 6}),
              (std::vector<Word>{6, 6}));

    PacketBenes pkt(1);
    EXPECT_TRUE(pkt.runPermutation(Permutation({1, 0}))
                    .all_delivered);
}

TEST(EdgeCases, SizeMismatchesDie)
{
    const SelfRoutingBenes net(3);
    EXPECT_DEATH(net.route(Permutation::identity(4)),
                 "does not match");
    EXPECT_DEATH(net.permutePayloads(Permutation::identity(8),
                                     {1, 2, 3}),
                 "payload");
    EXPECT_DEATH(
        net.routeWithStates(Permutation::identity(8),
                            BenesTopology(2).makeStates()),
        "stages");
    EXPECT_DEATH(waksmanSetup(net.topology(),
                              Permutation::identity(16)),
                 "does not match");
}

TEST(EdgeCases, MalformedPermutationDies)
{
    EXPECT_DEATH(Permutation({0, 0, 1, 1}), "not a permutation");
    EXPECT_DEATH(Permutation({0, 1, 2, 9}), "not a permutation");
    EXPECT_DEATH(Permutation(std::vector<Word>{}),
                 "not a permutation");
}

TEST(EdgeCases, NonPowerOfTwoSizesRejectedWhereRequired)
{
    // The algebra allows any size; network classes need 2^n.
    const Permutation p{2, 0, 1};
    EXPECT_EQ(p.then(p).size(), 3u); // fine
    EXPECT_DEATH(p.log2Size(), "not a power of two");
}

TEST(EdgeCases, BadBpcSpecsDie)
{
    EXPECT_DEATH(BpcSpec::fromPaper({"0", "0"}),
                 "not a permutation");
    EXPECT_DEATH(BpcSpec::fromPaper({"2", "x"}), "malformed");
    EXPECT_DEATH(BpcSpec::fromPaper({}), "at least one");
}

TEST(EdgeCases, ComposeMaskValidation)
{
    // Wrong block-permutation sizes die rather than mis-map.
    EXPECT_DEATH(blockwisePermutation(
                     3, 0b100,
                     std::vector<Permutation>{
                         Permutation::identity(4)}),
                 "block permutations");
    EXPECT_DEATH(blockwisePermutation(3, 0b100,
                                      Permutation::identity(2)),
                 "block permutation size");
}

TEST(EdgeCases, TableMisuseDies)
{
    TextTable t({"one"});
    t.addRow({"a"});
    EXPECT_DEATH(t.addCell("overflow"), "more cells");
}

TEST(EdgeCases, TopologyBounds)
{
    EXPECT_DEATH(BenesTopology(0), "out of supported range");
    EXPECT_DEATH(BenesTopology(31), "out of supported range");
}

TEST(EdgeCases, MachineHintValidation)
{
    CubeMachine m(3);
    m.loadIota(Permutation::identity(8));
    const BpcSpec wrong = BpcSpec::identity(4);
    EXPECT_DEATH(cccPermute(m, PermClassHint::General, &wrong),
                 "does not match");
}

TEST(EdgeCases, RoutesPerInterchangeValidation)
{
    EXPECT_DEATH(CubeMachine(3, 0), "one or two");
    EXPECT_DEATH(CubeMachine(3, 3), "one or two");
}

TEST(EdgeCases, GcnSizeValidation)
{
    const GcnNetwork gcn(2);
    EXPECT_DEATH(gcn.routeMapping({0, 1}, {0, 1, 2, 3}),
                 "mismatch");
}

} // namespace
} // namespace srbenes
