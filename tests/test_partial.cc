/**
 * @file
 * Tests for partial-permutation self-routing: the extended switch
 * rule, guaranteed single-signal delivery, full-occupancy
 * equivalence with the original rule, and the (non-)monotonicity of
 * restricting an F member.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/partial.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(Partial, ValidationRejectsDuplicates)
{
    EXPECT_DEATH(PartialMapping({0, 0, PartialMapping::kIdle,
                                 PartialMapping::kIdle}),
                 "duplicate");
    EXPECT_DEATH(PartialMapping({9, PartialMapping::kIdle,
                                 PartialMapping::kIdle,
                                 PartialMapping::kIdle}),
                 "out of range");
}

TEST(Partial, ActiveCount)
{
    const PartialMapping m(
        {2, PartialMapping::kIdle, 0, PartialMapping::kIdle});
    EXPECT_EQ(m.activeCount(), 2u);
    EXPECT_TRUE(m.isActive(0));
    EXPECT_FALSE(m.isActive(1));
}

TEST(Partial, SingleSignalAlwaysDelivered)
{
    // The extended rule routes a lone signal from ANY input to ANY
    // output: every (src, dst) pair at N = 8 and N = 16.
    for (unsigned n : {3u, 4u}) {
        const SelfRoutingBenes net(n);
        const Word size = Word{1} << n;
        for (Word src = 0; src < size; ++src) {
            for (Word dst = 0; dst < size; ++dst) {
                std::vector<Word> dest(size, PartialMapping::kIdle);
                dest[src] = dst;
                const auto res =
                    routePartial(net, PartialMapping(dest));
                ASSERT_TRUE(res.success)
                    << src << " -> " << dst;
                ASSERT_EQ(res.output_tags[dst], dst);
            }
        }
    }
}

TEST(Partial, FullOccupancyMatchesOriginalRule)
{
    const SelfRoutingBenes net(4);
    Prng prng(71);
    std::vector<bool> all(16, true);
    for (int trial = 0; trial < 30; ++trial) {
        const auto d = Permutation::random(16, prng);
        const auto partial =
            routePartial(net, PartialMapping::restrict(d, all));
        const auto full = net.route(d);
        EXPECT_EQ(partial.success, full.success);
        EXPECT_EQ(partial.states, full.states);
    }
}

TEST(Partial, EmptyMappingTriviallySucceeds)
{
    const SelfRoutingBenes net(3);
    const PartialMapping empty(
        std::vector<Word>(8, PartialMapping::kIdle));
    const auto res = routePartial(net, empty);
    EXPECT_TRUE(res.success);
    EXPECT_EQ(res.delivered, 0u);
    // All switches rest straight.
    for (const auto &stage : res.states)
        for (auto s : stage)
            EXPECT_EQ(s, 0);
}

TEST(Partial, RestrictionOfFMemberCanFail)
{
    // Idle holes change upstream decisions, so a sub-mapping of a
    // routable permutation need not route: find both a surviving
    // and a failing restriction over a seeded stream.
    const unsigned n = 4;
    const SelfRoutingBenes net(n);
    Prng prng(73);
    bool saw_success = false, saw_failure = false;
    for (int trial = 0; trial < 300 && !(saw_success && saw_failure);
         ++trial) {
        const Permutation member = randomFMember(n, prng);
        std::vector<bool> mask(16);
        for (std::size_t i = 0; i < 16; ++i)
            mask[i] = prng.below(2) == 1;
        const auto res = routePartial(
            net, PartialMapping::restrict(member, mask));
        (res.success ? saw_success : saw_failure) = true;
    }
    EXPECT_TRUE(saw_success);
    EXPECT_TRUE(saw_failure);
}

TEST(Partial, PairsAlwaysRoute)
{
    // Any two signals route: their paths can only collide at a
    // switch, where the extended rule serves the upper signal and
    // the lower takes the free port... verified exhaustively at
    // N = 8 over all (src pair, dst pair) choices.
    const unsigned n = 3;
    const SelfRoutingBenes net(n);
    const Word size = 8;
    unsigned failures = 0;
    for (Word s1 = 0; s1 < size; ++s1)
        for (Word s2 = 0; s2 < size; ++s2)
            for (Word d1 = 0; d1 < size; ++d1)
                for (Word d2 = 0; d2 < size; ++d2) {
                    if (s1 == s2 || d1 == d2)
                        continue;
                    std::vector<Word> dest(size,
                                           PartialMapping::kIdle);
                    dest[s1] = d1;
                    dest[s2] = d2;
                    failures += !routePartial(
                                     net, PartialMapping(dest))
                                     .success;
                }
    // Document the measured value; see bench_partial for the
    // occupancy curve.
    EXPECT_EQ(failures, 0u);
}

TEST(Partial, RandomMappingIsValidAndDeterministic)
{
    Prng a(5), b(5);
    for (int trial = 0; trial < 10; ++trial) {
        const auto ma = PartialMapping::random(32, 12, a);
        const auto mb = PartialMapping::random(32, 12, b);
        EXPECT_EQ(ma.dest(), mb.dest());
        EXPECT_EQ(ma.activeCount(), 12u);
    }
}

} // namespace
} // namespace srbenes
