/**
 * @file
 * Wire-protocol codec tests: every message type must survive an
 * encode→decode round trip bit-exactly, and the decoder must reject
 * truncated, oversized, and garbage frames without crashing,
 * over-reading, or resynchronizing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/protocol.hh"

namespace srbenes
{
namespace net
{
namespace
{

Message
roundTrip(const Message &in)
{
    std::vector<std::uint8_t> wire;
    encode(in, wire);
    Decoder dec;
    dec.feed(wire.data(), wire.size());
    Message out;
    std::string error;
    EXPECT_EQ(dec.next(out, &error), DecodeStatus::Ok) << error;
    EXPECT_EQ(dec.buffered(), 0u);
    return out;
}

TEST(NetProtocol, SubmitRoundTripWithPayload)
{
    SubmitMsg m;
    m.id = 0xDEADBEEFCAFE1234ULL;
    m.tenant = 42;
    m.deadline_rel_ns = 5'000'000;
    m.dest = {3, 1, 0, 2};
    m.has_payload = true;
    m.payload = {10, 20, 30, 0xFFFFFFFFFFFFFFFFULL};

    const Message out = roundTrip(Message{m});
    ASSERT_TRUE(std::holds_alternative<SubmitMsg>(out));
    EXPECT_EQ(std::get<SubmitMsg>(out), m);
}

TEST(NetProtocol, SubmitRoundTripControlPlane)
{
    SubmitMsg m;
    m.id = 7;
    m.dest = {1, 0};
    m.has_payload = false;

    const Message out = roundTrip(Message{m});
    ASSERT_TRUE(std::holds_alternative<SubmitMsg>(out));
    EXPECT_EQ(std::get<SubmitMsg>(out), m);
}

TEST(NetProtocol, SubmitResultRoundTripEveryStatusAndTier)
{
    const Status statuses[] = {
        Status::Ok,        Status::NotInF,
        Status::FaultDetected, Status::DeadlineExceeded,
        Status::Shed,      Status::OverQuota,
        Status::BadRequest, Status::Draining,
    };
    const ServeTier tiers[] = {ServeTier::Primary,
                               ServeTier::Reroute,
                               ServeTier::TwoPass, ServeTier::Failed};
    for (Status s : statuses)
        for (ServeTier t : tiers) {
            SubmitResultMsg m;
            m.id = static_cast<std::uint64_t>(s) * 100 +
                   static_cast<std::uint64_t>(t);
            m.status = s;
            m.tier = t;
            m.server_ns = 123456789;
            if (s == Status::Ok)
                m.payload = {5, 6, 7};
            const Message out = roundTrip(Message{m});
            ASSERT_TRUE(
                std::holds_alternative<SubmitResultMsg>(out));
            EXPECT_EQ(std::get<SubmitResultMsg>(out), m);
        }
}

TEST(NetProtocol, HealthRoundTrip)
{
    const Message out = roundTrip(Message{HealthMsg{}});
    EXPECT_TRUE(std::holds_alternative<HealthMsg>(out));
}

TEST(NetProtocol, HealthResultRoundTrip)
{
    HealthResultMsg m;
    m.state = ServeState::Draining;
    m.n = 10;
    m.workers = 4;
    m.uptime_ns = 99999;
    m.served = 123;
    m.inflight = 7;
    const Message out = roundTrip(Message{m});
    ASSERT_TRUE(std::holds_alternative<HealthResultMsg>(out));
    EXPECT_EQ(std::get<HealthResultMsg>(out), m);
}

TEST(NetProtocol, StatsRoundTripBothFormats)
{
    for (StatsFormat f :
         {StatsFormat::PrometheusText, StatsFormat::Json}) {
        StatsMsg m;
        m.format = f;
        const Message out = roundTrip(Message{m});
        ASSERT_TRUE(std::holds_alternative<StatsMsg>(out));
        EXPECT_EQ(std::get<StatsMsg>(out), m);

        StatsResultMsg r;
        r.format = f;
        // Embedded NUL: the body is length-delimited, not C-string.
        r.body = std::string("srbd_submits_total 12\n\0x", 24);
        const Message rout = roundTrip(Message{r});
        ASSERT_TRUE(std::holds_alternative<StatsResultMsg>(rout));
        EXPECT_EQ(std::get<StatsResultMsg>(rout), r);
    }
}

TEST(NetProtocol, MessageTypeTags)
{
    EXPECT_EQ(messageType(Message{SubmitMsg{}}), MsgType::Submit);
    EXPECT_EQ(messageType(Message{SubmitResultMsg{}}),
              MsgType::SubmitResult);
    EXPECT_EQ(messageType(Message{HealthMsg{}}), MsgType::Health);
    EXPECT_EQ(messageType(Message{HealthResultMsg{}}),
              MsgType::HealthResult);
    EXPECT_EQ(messageType(Message{StatsMsg{}}), MsgType::Stats);
    EXPECT_EQ(messageType(Message{StatsResultMsg{}}),
              MsgType::StatsResult);
}

TEST(NetProtocol, StatusFromErrcIsVerbatim)
{
    EXPECT_EQ(statusFromErrc(RouteErrc::Ok), Status::Ok);
    EXPECT_EQ(statusFromErrc(RouteErrc::NotInF), Status::NotInF);
    EXPECT_EQ(statusFromErrc(RouteErrc::FaultDetected),
              Status::FaultDetected);
    EXPECT_EQ(statusFromErrc(RouteErrc::DeadlineExceeded),
              Status::DeadlineExceeded);
    EXPECT_EQ(statusFromErrc(RouteErrc::Shed), Status::Shed);
}

TEST(NetProtocol, ByteAtATimeFeedNeedsMoreUntilComplete)
{
    SubmitMsg m;
    m.id = 9;
    m.dest = {0, 1, 2, 3};
    m.has_payload = true;
    m.payload = {4, 5, 6, 7};
    std::vector<std::uint8_t> wire;
    encode(Message{m}, wire);

    Decoder dec;
    Message out;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        dec.feed(&wire[i], 1);
        EXPECT_EQ(dec.next(out), DecodeStatus::NeedMore)
            << "completed early at byte " << i;
    }
    dec.feed(&wire[wire.size() - 1], 1);
    ASSERT_EQ(dec.next(out), DecodeStatus::Ok);
    EXPECT_EQ(std::get<SubmitMsg>(out), m);
}

TEST(NetProtocol, MultipleFramesInOneFeed)
{
    std::vector<std::uint8_t> wire;
    encode(Message{HealthMsg{}}, wire);
    StatsMsg s;
    s.format = StatsFormat::Json;
    encode(Message{s}, wire);
    SubmitMsg m;
    m.dest = {1, 0};
    encode(Message{m}, wire);

    Decoder dec;
    dec.feed(wire.data(), wire.size());
    Message out;
    ASSERT_EQ(dec.next(out), DecodeStatus::Ok);
    EXPECT_TRUE(std::holds_alternative<HealthMsg>(out));
    ASSERT_EQ(dec.next(out), DecodeStatus::Ok);
    EXPECT_EQ(std::get<StatsMsg>(out), s);
    ASSERT_EQ(dec.next(out), DecodeStatus::Ok);
    EXPECT_EQ(std::get<SubmitMsg>(out), m);
    EXPECT_EQ(dec.next(out), DecodeStatus::NeedMore);
}

TEST(NetProtocol, RejectsUnknownType)
{
    // length=1, type=0x7F: well-framed, meaningless.
    const std::uint8_t wire[] = {1, 0, 0, 0, 0x7F};
    Decoder dec;
    dec.feed(wire, sizeof(wire));
    Message out;
    std::string error;
    EXPECT_EQ(dec.next(out, &error), DecodeStatus::Error);
    EXPECT_FALSE(error.empty());
}

TEST(NetProtocol, RejectsEmptyBody)
{
    const std::uint8_t wire[] = {0, 0, 0, 0};
    Decoder dec;
    dec.feed(wire, sizeof(wire));
    Message out;
    EXPECT_EQ(dec.next(out), DecodeStatus::Error);
}

TEST(NetProtocol, RejectsOversizedFrameBeforeBufferingIt)
{
    // Claims a 2 MiB body against a 1 KiB cap; the decoder must
    // error from the header alone.
    Decoder dec(1024);
    const std::uint32_t huge = 2u << 20;
    const std::uint8_t wire[] = {
        static_cast<std::uint8_t>(huge & 0xFF),
        static_cast<std::uint8_t>((huge >> 8) & 0xFF),
        static_cast<std::uint8_t>((huge >> 16) & 0xFF),
        static_cast<std::uint8_t>((huge >> 24) & 0xFF),
    };
    dec.feed(wire, sizeof(wire));
    Message out;
    EXPECT_EQ(dec.next(out), DecodeStatus::Error);
}

TEST(NetProtocol, RejectsHostileLineCount)
{
    // A Submit whose num_lines claims far more dest words than the
    // body carries: exact-length validation must refuse it instead
    // of allocating or over-reading.
    std::vector<std::uint8_t> body;
    body.push_back(static_cast<std::uint8_t>(MsgType::Submit));
    for (int i = 0; i < 24; ++i)
        body.push_back(0); // id, tenant, deadline
    const std::uint32_t lines = 0xFFFFFF;
    for (int i = 0; i < 4; ++i)
        body.push_back(
            static_cast<std::uint8_t>((lines >> (8 * i)) & 0xFF));
    body.push_back(0); // has_payload = false, but no dest words

    std::vector<std::uint8_t> wire;
    const std::uint32_t len =
        static_cast<std::uint32_t>(body.size());
    for (int i = 0; i < 4; ++i)
        wire.push_back(
            static_cast<std::uint8_t>((len >> (8 * i)) & 0xFF));
    wire.insert(wire.end(), body.begin(), body.end());

    Decoder dec;
    dec.feed(wire.data(), wire.size());
    Message out;
    EXPECT_EQ(dec.next(out), DecodeStatus::Error);
}

TEST(NetProtocol, RejectsTrailingGarbageInBody)
{
    std::vector<std::uint8_t> wire;
    encode(Message{HealthMsg{}}, wire);
    // Re-frame the 1-byte Health body with 3 junk bytes appended.
    wire[0] = 4;
    wire.push_back(0xAA);
    wire.push_back(0xBB);
    wire.push_back(0xCC);
    Decoder dec;
    dec.feed(wire.data(), wire.size());
    Message out;
    EXPECT_EQ(dec.next(out), DecodeStatus::Error);
}

TEST(NetProtocol, RejectsTruncatedBody)
{
    std::vector<std::uint8_t> wire;
    HealthResultMsg m;
    m.n = 5;
    encode(Message{m}, wire);
    // Shrink the declared length so the body cuts off mid-field.
    wire[0] = 6;
    Decoder dec;
    dec.feed(wire.data(), 4 + 6);
    Message out;
    EXPECT_EQ(dec.next(out), DecodeStatus::Error);
}

TEST(NetProtocol, PoisonedDecoderStaysPoisoned)
{
    const std::uint8_t bad[] = {1, 0, 0, 0, 0x7F};
    Decoder dec;
    dec.feed(bad, sizeof(bad));
    Message out;
    ASSERT_EQ(dec.next(out), DecodeStatus::Error);

    // A perfectly valid frame after the error must not resuscitate
    // the stream: there is no resync in a length-prefixed protocol.
    std::vector<std::uint8_t> good;
    encode(Message{HealthMsg{}}, good);
    dec.feed(good.data(), good.size());
    EXPECT_EQ(dec.next(out), DecodeStatus::Error);
    EXPECT_EQ(dec.next(out), DecodeStatus::Error);
}

TEST(NetProtocol, GarbageFuzzNeverCrashes)
{
    // Deterministic LCG bytes; every prefix either parses, needs
    // more, or errors — it must never crash or hang.
    std::uint64_t state = 0x2545F4914F6CDD1DULL;
    for (int trial = 0; trial < 64; ++trial) {
        Decoder dec(4096);
        Message out;
        for (int i = 0; i < 512; ++i) {
            state = state * 6364136223846793005ULL + 1442695040888963407ULL;
            const std::uint8_t b =
                static_cast<std::uint8_t>(state >> 56);
            dec.feed(&b, 1);
            const DecodeStatus st = dec.next(out);
            if (st == DecodeStatus::Error)
                break;
        }
    }
    SUCCEED();
}

} // namespace
} // namespace net
} // namespace srbenes
