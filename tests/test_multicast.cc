/**
 * @file
 * Tests for the broadcast-capable Benes fabric: 4-state switch
 * semantics, exact setup (exhaustive over all 256 mappings at
 * N = 4), permutation compatibility, broadcast patterns, and the
 * existence of single-pass-infeasible multicasts at N = 8 (why
 * GCNs spend a second fabric).
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "networks/multicast.hh"

namespace srbenes
{
namespace
{

TEST(Multicast, FourStateSwitchSemantics)
{
    const MulticastBenes fabric(1);
    McStates states(1, {McState::Through});
    EXPECT_EQ(fabric.routeWithStates(states),
              (std::vector<Word>{0, 1}));
    states[0][0] = McState::Cross;
    EXPECT_EQ(fabric.routeWithStates(states),
              (std::vector<Word>{1, 0}));
    states[0][0] = McState::BcastUpper;
    EXPECT_EQ(fabric.routeWithStates(states),
              (std::vector<Word>{0, 0}));
    states[0][0] = McState::BcastLower;
    EXPECT_EQ(fabric.routeWithStates(states),
              (std::vector<Word>{1, 1}));
}

TEST(Multicast, ExhaustiveAllMappingsN4)
{
    // Every one of the 4^4 = 256 mappings fits in one pass at
    // N = 4.
    const MulticastBenes fabric(2);
    for (unsigned code = 0; code < 256; ++code) {
        std::vector<Word> src(4);
        unsigned c = code;
        for (Word j = 0; j < 4; ++j) {
            src[j] = c % 4;
            c /= 4;
        }
        const auto states = fabric.setupMapping(src);
        ASSERT_TRUE(states.has_value()) << "code " << code;
        EXPECT_EQ(fabric.routeWithStates(*states), src);
    }
}

TEST(Multicast, PermutationsAlwaysFit)
{
    // With no fanout the fabric degenerates to a Benes network, so
    // every permutation must set up.
    Prng prng(3);
    for (unsigned n : {2u, 3u, 4u}) {
        const MulticastBenes fabric(n);
        for (int trial = 0; trial < 15; ++trial) {
            const auto d =
                Permutation::random(std::size_t{1} << n, prng);
            // src[j] = input feeding output j = d^-1.
            const auto states = fabric.setupMapping(d.inverse().dest());
            ASSERT_TRUE(states.has_value()) << d.toString();
        }
    }
}

TEST(Multicast, FullBroadcastFits)
{
    for (unsigned n : {2u, 3u, 4u}) {
        const MulticastBenes fabric(n);
        const Word size = Word{1} << n;
        for (Word hot : {Word{0}, size - 1, size / 2}) {
            const std::vector<Word> src(size, hot);
            const auto states = fabric.setupMapping(src);
            ASSERT_TRUE(states.has_value()) << hot;
            EXPECT_EQ(fabric.routeWithStates(*states), src);
        }
    }
}

TEST(Multicast, SomeMulticastsNeedTwoFabrics)
{
    // The reason GCNs exist: at N = 8 some fanout patterns are
    // single-pass infeasible. Find one deterministically.
    const MulticastBenes fabric(3);
    Prng prng(5);
    bool found_infeasible = false;
    std::vector<Word> witness;
    for (int trial = 0; trial < 3000 && !found_infeasible;
         ++trial) {
        std::vector<Word> src(8);
        for (Word j = 0; j < 8; ++j)
            src[j] = prng.below(8);
        if (!fabric.setupMapping(src).has_value()) {
            found_infeasible = true;
            witness = src;
        }
    }
    EXPECT_TRUE(found_infeasible)
        << "all sampled multicasts fit -- unexpected";
}

TEST(Multicast, FeasibleSetupsVerify)
{
    Prng prng(7);
    const MulticastBenes fabric(3);
    int feasible = 0;
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<Word> src(8);
        for (Word j = 0; j < 8; ++j)
            src[j] = prng.below(8);
        const auto states = fabric.setupMapping(src);
        if (!states)
            continue;
        ++feasible;
        EXPECT_EQ(fabric.routeWithStates(*states), src);
    }
    EXPECT_GT(feasible, 0);
}

TEST(Multicast, OutOfRangeRequestDies)
{
    const MulticastBenes fabric(2);
    EXPECT_DEATH(fabric.setupMapping({0, 1, 2, 9}), "out of range");
}

} // namespace
} // namespace srbenes
