/**
 * @file
 * Tests for the self-routing fabric: the Fig. 4 worked example, the
 * Fig. 5 failure, the omega-bit extension (exhaustively equal to
 * Omega membership at N = 8), payload transport, and diagnostics.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(SelfRouting, IdentityRoutesEverywhere)
{
    for (unsigned n = 1; n <= 8; ++n) {
        const SelfRoutingBenes net(n);
        const auto res =
            net.route(Permutation::identity(std::size_t{1} << n));
        EXPECT_TRUE(res.success);
        // Identity tags put every switch in state 0.
        for (const auto &stage : res.states)
            for (auto s : stage)
                EXPECT_EQ(s, 0);
    }
}

TEST(SelfRouting, FigFourBitReversal)
{
    // Fig. 4: bit reversal on B(3) succeeds under self-routing.
    const SelfRoutingBenes net(3);
    RouteTrace trace;
    const auto res = net.route(named::bitReversal(3).toPermutation(),
                               RoutingMode::SelfRouting, &trace);
    ASSERT_TRUE(res.success);

    // The figure's input column: destination tags 000, 100, 010,
    // 110, 001, 101, 011, 111 on lines 0..7.
    EXPECT_EQ(trace.tags_at_stage.front(),
              (std::vector<Word>{0, 4, 2, 6, 1, 5, 3, 7}));
    // Output column: tag j on line j.
    EXPECT_EQ(trace.tags_at_stage.back(),
              (std::vector<Word>{0, 1, 2, 3, 4, 5, 6, 7}));

    // Stage 0 reads bit 0 of the upper tags (0, 2, 1, 3):
    // states 0, 0, 1, 1.
    EXPECT_EQ(res.states[0],
              (std::vector<std::uint8_t>{0, 0, 1, 1}));
}

TEST(SelfRouting, FigFiveFailure)
{
    // Fig. 5: D = (1, 3, 2, 0) misroutes on B(2).
    const SelfRoutingBenes net(2);
    const auto res = net.route(Permutation({1, 3, 2, 0}));
    EXPECT_FALSE(res.success);
    EXPECT_FALSE(res.misrouted_outputs.empty());
    // Misrouted outputs carry somebody else's tag.
    for (Word j : res.misrouted_outputs)
        EXPECT_NE(res.output_tags[j], j);
}

TEST(SelfRouting, RealizedDestMatchesRequestOnSuccess)
{
    Prng prng(13);
    const SelfRoutingBenes net(5);
    for (int trial = 0; trial < 30; ++trial) {
        const BpcSpec spec = BpcSpec::random(5, prng);
        const Permutation d = spec.toPermutation();
        const auto res = net.route(d);
        ASSERT_TRUE(res.success) << spec.toString();
        for (Word i = 0; i < d.size(); ++i)
            EXPECT_EQ(res.realized_dest[i], d[i]);
    }
}

TEST(SelfRouting, GateDelayIsStageCount)
{
    for (unsigned n = 1; n <= 6; ++n) {
        const SelfRoutingBenes net(n);
        const auto res =
            net.route(Permutation::identity(std::size_t{1} << n));
        EXPECT_EQ(res.gate_delay, 2 * n - 1);
    }
}

TEST(SelfRouting, OmegaBitMatchesOmegaClassExhaustively)
{
    // With the omega bit set, the network realizes exactly the
    // Omega(3) permutations -- all 40320 cases checked.
    const SelfRoutingBenes net(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation p(dest);
        ASSERT_EQ(net.route(p, RoutingMode::OmegaBit).success,
                  isOmega(p))
            << p.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(SelfRouting, OmegaBitForcesEarlyStagesStraight)
{
    const SelfRoutingBenes net(4);
    const auto res = net.route(named::cyclicShift(4, 5),
                               RoutingMode::OmegaBit);
    ASSERT_TRUE(res.success);
    for (unsigned s = 0; s + 1 < net.n(); ++s)
        for (auto state : res.states[s])
            EXPECT_EQ(state, 0);
}

TEST(SelfRouting, FigFiveRoutesWithOmegaBit)
{
    // (1,3,2,0) is in Omega(2), so the omega bit rescues it.
    const SelfRoutingBenes net(2);
    EXPECT_TRUE(
        net.route(Permutation({1, 3, 2, 0}), RoutingMode::OmegaBit)
            .success);
}

TEST(SelfRouting, PayloadsFollowTags)
{
    const SelfRoutingBenes net(4);
    const Permutation d = named::bitReversal(4).toPermutation();
    std::vector<Word> data(16);
    for (Word i = 0; i < 16; ++i)
        data[i] = 1000 + i;

    const auto out = net.permutePayloads(d, data);
    ASSERT_TRUE(out.has_value());
    for (Word i = 0; i < 16; ++i)
        EXPECT_EQ((*out)[d[i]], 1000 + i);
}

TEST(SelfRouting, PayloadsRefusedWhenNotInF)
{
    const SelfRoutingBenes net(2);
    const std::vector<Word> data{9, 8, 7, 6};
    EXPECT_FALSE(
        net.permutePayloads(Permutation({1, 3, 2, 0}), data)
            .has_value());
}

TEST(SelfRouting, TraceHasOneSnapshotPerStagePlusOutput)
{
    const SelfRoutingBenes net(4);
    RouteTrace trace;
    net.route(Permutation::identity(16), RoutingMode::SelfRouting,
              &trace);
    EXPECT_EQ(trace.tags_at_stage.size(),
              net.topology().numStages() + 1u);
}

class SelfRoutingSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SelfRoutingSweep, RandomBpcAlwaysRoutes)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 977);
    for (int trial = 0; trial < 20; ++trial) {
        const auto d = BpcSpec::random(n, prng).toPermutation();
        EXPECT_TRUE(net.route(d).success);
    }
}

TEST_P(SelfRoutingSweep, RandomPermutationAgreesWithTheoremOne)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 1009);
    for (int trial = 0; trial < 20; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        EXPECT_EQ(net.route(d).success, inFClass(d));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SelfRoutingSweep,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 10u));

} // namespace
} // namespace srbenes
