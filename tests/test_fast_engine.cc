/**
 * @file
 * Differential tests for the bit-sliced fast engine against the
 * reference SelfRoutingBenes simulator: exhaustive at n = 2, 3,
 * randomized over every permutation class at n = 4..10, in both
 * routing modes and under forced (Waksman) states — states,
 * output_tags, realized_dest, misrouted_outputs and success must
 * match bit for bit. Also covers the packed-state round trips, the
 * batched executors, and the Router plan cache.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "rand_iters.hh"

#include "common/prng.hh"
#include "core/fast_engine.hh"
#include "core/router.hh"
#include "core/two_pass.hh"
#include "core/waksman.hh"
#include "perm/bpc.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

void
expectSameResult(const RouteResult &ref, const RouteResult &fast,
                 const Permutation &d)
{
    ASSERT_EQ(ref.success, fast.success) << d.toString();
    ASSERT_EQ(ref.output_tags, fast.output_tags) << d.toString();
    ASSERT_EQ(ref.realized_dest, fast.realized_dest) << d.toString();
    ASSERT_EQ(ref.states, fast.states) << d.toString();
    ASSERT_EQ(ref.misrouted_outputs, fast.misrouted_outputs)
        << d.toString();
    ASSERT_EQ(ref.gate_delay, fast.gate_delay) << d.toString();
}

void
compareBothModes(const SelfRoutingBenes &net, const FastEngine &eng,
                 const Permutation &d)
{
    for (RoutingMode mode :
         {RoutingMode::SelfRouting, RoutingMode::OmegaBit}) {
        const RouteResult ref = net.route(d, mode);
        const RouteResult fast = eng.route(d, mode);
        expectSameResult(ref, fast, d);
    }
}

TEST(FastEngine, ExhaustiveDifferentialSmall)
{
    for (unsigned n : {1u, 2u, 3u}) {
        const SelfRoutingBenes net(n);
        const FastEngine eng(n);
        std::vector<Word> dest(Word{1} << n);
        std::iota(dest.begin(), dest.end(), Word{0});
        do {
            compareBothModes(net, eng, Permutation(dest));
        } while (std::next_permutation(dest.begin(), dest.end()));
    }
}

TEST(FastEngine, RandomizedDifferentialAllClasses)
{
    Prng prng(42);
    for (unsigned n = 4; n <= 10; ++n) {
        const SelfRoutingBenes net(n);
        const FastEngine eng(n);
        const std::size_t size = std::size_t{1} << n;
        const int trials = randIters(n <= 7 ? 20 : 6);
        for (int t = 0; t < trials; ++t) {
            const Permutation any = Permutation::random(size, prng);
            const TwoPassPlan tp = twoPassPlan(net, any);
            // F members, BPC members, the two-pass factors (an
            // inverse-omega and an omega member), and arbitrary
            // permutations — the last mostly FAIL under
            // self-routing, checking the misroute reporting too.
            const Permutation cases[] = {
                randomFMember(n, prng),
                BpcSpec::random(n, prng).toPermutation(),
                tp.first,
                tp.second,
                any,
            };
            for (const auto &d : cases)
                compareBothModes(net, eng, d);
        }
    }
}

TEST(FastEngine, WaksmanForcedStatesDifferential)
{
    Prng prng(7);
    for (unsigned n = 2; n <= 9; ++n) {
        const SelfRoutingBenes net(n);
        const FastEngine eng(n);
        for (int t = 0; t < randIters(8); ++t) {
            const auto d =
                Permutation::random(std::size_t{1} << n, prng);
            const SwitchStates states =
                waksmanSetup(net.topology(), d);
            const RouteResult ref = net.routeWithStates(d, states);
            const RouteResult fast = eng.routeWithStates(d, states);
            ASSERT_TRUE(fast.success);
            expectSameResult(ref, fast, d);

            // Deliberately mismatched forced states (for a different
            // permutation) must misroute identically as well.
            const auto other =
                Permutation::random(std::size_t{1} << n, prng);
            expectSameResult(net.routeWithStates(other, states),
                             eng.routeWithStates(other, states),
                             other);
        }
    }
}

TEST(FastEngine, FlatWiringMatchesTopology)
{
    for (unsigned n = 1; n <= 8; ++n) {
        const BenesTopology topo(n);
        const FastEngine eng(n);
        for (unsigned s = 0; s + 1 < topo.numStages(); ++s)
            for (Word line = 0; line < topo.numLines(); ++line)
                ASSERT_EQ(eng.wireToNext(s, line),
                          topo.wireToNext(s, line));
    }
}

TEST(FastEngine, PackedStatesRoundTrip)
{
    Prng prng(13);
    for (unsigned n = 1; n <= 9; ++n) {
        const FastEngine eng(n);
        // Random dense states round-trip through the packed form.
        SwitchStates states(eng.numStages(),
                            std::vector<std::uint8_t>(
                                eng.switchesPerStage()));
        for (auto &stage : states)
            for (auto &s : stage)
                s = static_cast<std::uint8_t>(prng.below(2));
        const PackedStates packed = eng.packStates(states);
        EXPECT_EQ(eng.unpackStates(packed), states);

        // Bit accessors agree with the source array.
        for (unsigned s = 0; s < eng.numStages(); ++s)
            for (Word i = 0; i < eng.switchesPerStage(); ++i)
                ASSERT_EQ(packed.get(s, i), states[s][i] != 0);
    }
}

TEST(FastEngine, PlanStatesMatchReferenceAndPackedForm)
{
    Prng prng(17);
    for (unsigned n = 2; n <= 9; ++n) {
        const SelfRoutingBenes net(n);
        const FastEngine eng(n);
        const Permutation d = randomFMember(n, prng);
        const FastPlan plan = eng.routePlan(d);
        ASSERT_TRUE(plan.success);
        const SwitchStates states = eng.planStates(plan);
        EXPECT_EQ(states, net.route(d).states);
        EXPECT_EQ(eng.unpackStates(eng.planPackedStates(plan)),
                  states);
    }
}

TEST(FastEngine, PlanWithPackedEqualsPlanWithStates)
{
    Prng prng(19);
    const unsigned n = 6;
    const SelfRoutingBenes net(n);
    const FastEngine eng(n);
    const auto d = Permutation::random(64, prng);
    const SwitchStates states = waksmanSetup(net.topology(), d);
    const FastPlan a = eng.planWithStates(d, states);
    const FastPlan b = eng.planWithPacked(d, eng.packStates(states));
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.dest, b.dest);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.ctrl, b.ctrl);
}

TEST(FastEngine, ExecuteMatchesPermutationApply)
{
    Prng prng(23);
    for (unsigned n : {3u, 6u, 8u}) {
        const FastEngine eng(n);
        const std::size_t size = std::size_t{1} << n;
        const Permutation d = randomFMember(n, prng);
        const FastPlan plan = eng.routePlan(d);
        ASSERT_TRUE(plan.success);

        std::vector<Word> data(size);
        for (std::size_t i = 0; i < size; ++i)
            data[i] = 1000 + i;
        EXPECT_EQ(eng.execute(plan, data), d.applyTo(data));

        // executeInto reuses the output buffer.
        std::vector<Word> out;
        eng.executeInto(plan, data, out);
        EXPECT_EQ(out, d.applyTo(data));
        eng.executeInto(plan, data, out);
        EXPECT_EQ(out, d.applyTo(data));
    }
}

TEST(FastEngine, RouteBatchSerialAndThreaded)
{
    Prng prng(29);
    const unsigned n = 8;
    const std::size_t size = std::size_t{1} << n;
    const FastEngine eng(n);
    const Permutation d = randomFMember(n, prng);

    std::vector<std::vector<Word>> batch(10);
    for (std::size_t v = 0; v < batch.size(); ++v) {
        batch[v].resize(size);
        for (std::size_t i = 0; i < size; ++i)
            batch[v][i] = v * 10000 + i;
    }

    const auto serial = eng.routeBatch(d, batch);
    const auto threaded =
        eng.routeBatch(d, batch, RoutingMode::SelfRouting, 4);
    ASSERT_EQ(serial.size(), batch.size());
    for (std::size_t v = 0; v < batch.size(); ++v) {
        EXPECT_EQ(serial[v], d.applyTo(batch[v]));
        EXPECT_EQ(threaded[v], serial[v]);
    }
}

TEST(FastEngine, RouteIntoReusesResultBuffers)
{
    Prng prng(31);
    const unsigned n = 6;
    const SelfRoutingBenes net(n);
    RouteResult reused;
    for (int t = 0; t < randIters(5); ++t) {
        const auto d = Permutation::random(64, prng);
        net.routeInto(d, reused);
        const RouteResult fresh = net.route(d);
        expectSameResult(fresh, reused, d);
    }
}

TEST(RouterCache, HitsAndMisses)
{
    Prng prng(37);
    const Router router(5, false, 8);
    const std::size_t size = 32;
    std::vector<Word> data(size);
    std::iota(data.begin(), data.end(), Word{100});

    const auto d1 = Permutation::random(size, prng);
    const auto d2 = Permutation::random(size, prng);

    EXPECT_EQ(router.planCacheSize(), 0u);
    const auto out1 = router.route(d1, data);
    EXPECT_EQ(router.planCacheMisses(), 1u);
    EXPECT_EQ(router.planCacheHits(), 0u);

    const auto out1b = router.route(d1, data);
    EXPECT_EQ(router.planCacheMisses(), 1u);
    EXPECT_EQ(router.planCacheHits(), 1u);
    EXPECT_EQ(out1, out1b);
    EXPECT_EQ(out1, d1.applyTo(data));

    const auto out2 = router.route(d2, data);
    EXPECT_EQ(router.planCacheMisses(), 2u);
    EXPECT_EQ(router.planCacheSize(), 2u);
    EXPECT_EQ(out2, d2.applyTo(data));

    // The cached plan is the same object, not a re-plan.
    const auto p1 = router.planCached(d1);
    const auto p2 = router.planCached(d1);
    EXPECT_EQ(p1.get(), p2.get());

    router.clearPlanCache();
    EXPECT_EQ(router.planCacheSize(), 0u);
    EXPECT_EQ(router.planCacheHits(), 0u);
}

TEST(RouterCache, LruEviction)
{
    Prng prng(41);
    const Router router(4, false, 2);
    const std::size_t size = 16;
    std::vector<Word> data(size);
    std::iota(data.begin(), data.end(), Word{0});

    const auto a = Permutation::random(size, prng);
    const auto b = Permutation::random(size, prng);
    const auto c = Permutation::random(size, prng);

    router.route(a, data); // cache: a
    router.route(b, data); // cache: b a
    router.route(a, data); // hit -> a b
    EXPECT_EQ(router.planCacheHits(), 1u);
    router.route(c, data); // evicts b -> c a
    EXPECT_EQ(router.planCacheSize(), 2u);
    router.route(a, data); // still cached
    EXPECT_EQ(router.planCacheHits(), 2u);
    router.route(b, data); // evicted: a miss again
    EXPECT_EQ(router.planCacheMisses(), 4u);
}

TEST(RouterCache, ZeroCapacityDisablesCaching)
{
    Prng prng(43);
    const Router router(4, false, 0);
    const std::size_t size = 16;
    std::vector<Word> data(size);
    std::iota(data.begin(), data.end(), Word{0});
    const auto d = Permutation::random(size, prng);
    router.route(d, data);
    router.route(d, data);
    EXPECT_EQ(router.planCacheSize(), 0u);
    EXPECT_EQ(router.planCacheHits(), 0u);
}

TEST(Router, FastPathDeliversUnderEveryStrategy)
{
    Prng prng(47);
    for (bool prefer_waksman : {false, true}) {
        const Router router(5, prefer_waksman);
        const std::size_t size = 32;
        std::vector<Word> data(size);
        std::iota(data.begin(), data.end(), Word{7});

        const std::vector<Permutation> mix{
            randomFMember(5, prng),                 // self-routing
            named::cyclicShift(5, 9).inverse(),     // omega-bit
            Permutation::random(size, prng),        // two-pass/waksman
            Permutation::random(size, prng),
        };
        for (const auto &d : mix) {
            const auto plan = router.plan(d);
            ASSERT_TRUE(plan.fast != nullptr);
            ASSERT_TRUE(plan.fast->success);
            EXPECT_EQ(plan.fast->dest, d.dest());
            EXPECT_EQ(router.execute(plan, data), d.applyTo(data));

            std::vector<Word> out;
            router.executeInto(plan, data, out);
            EXPECT_EQ(out, d.applyTo(data));

            const std::vector<std::vector<Word>> batch{data, data};
            for (const auto &o : router.executeMany(plan, batch, 2))
                EXPECT_EQ(o, d.applyTo(data));
        }
    }
}

TEST(Router, RouteBatchMatchesPerVectorRoute)
{
    Prng prng(53);
    const Router router(6);
    const std::size_t size = 64;
    const auto d = Permutation::random(size, prng);
    std::vector<std::vector<Word>> batch(5);
    for (std::size_t v = 0; v < batch.size(); ++v) {
        batch[v].resize(size);
        for (std::size_t i = 0; i < size; ++i)
            batch[v][i] = v * 1000 + i;
    }
    const auto outs = router.routeBatch(d, batch);
    ASSERT_EQ(outs.size(), batch.size());
    for (std::size_t v = 0; v < batch.size(); ++v)
        EXPECT_EQ(outs[v], d.applyTo(batch[v]));

    // A second batch with the same pattern hits the plan cache.
    const auto again = router.routeBatch(d, batch, 2);
    EXPECT_EQ(again, outs);
    EXPECT_EQ(router.planCacheHits(), 1u);
}

} // namespace
} // namespace srbenes
