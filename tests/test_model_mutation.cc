/**
 * @file
 * Mutation regression for the model checker: this target compiles
 * with SRBENES_MODEL_MUTATE, which re-introduces the historical
 * StreamEngine lifecycle-stamp race inside LifecycleStamps (the flag
 * store degrades from release to relaxed, so the flag no longer
 * certifies its clock stamp). The suite asserts srb_model FINDS the
 * stale-stamp schedule — proving the checker would have caught the
 * original regression — and prints the replayable failure trace.
 */

#include <gtest/gtest.h>

#include <iostream>

#include "core/stream.hh"
#include "model/model.hh"

#ifndef SRBENES_MODEL_MUTATE
#error "test_model_mutation must be compiled with SRBENES_MODEL_MUTATE"
#endif

namespace srbenes
{
namespace
{

using model::explore;
using model::joinAll;
using model::modelAssert;
using model::Options;
using model::Result;
using model::spawn;

/** The exact stats()-vs-start() scenario: a reader that observes
 *  started() == true reads the start stamp. With the mutated
 *  relaxed flag store nothing certifies the stamp, and the checker
 *  must reach the schedule where the reader sees the flag but a
 *  stale (zero) stamp. */
TEST(ModelMutation, SeededLifecycleStampRaceIsDetected)
{
    Options opts;
    opts.name = "lifecycle-mutant";
    opts.preemption_bound = model::preemptionBoundFromEnv(3);
    const Result res = explore(opts, [] {
        LifecycleStamps life;
        spawn([&] {
            if (life.started())
                modelAssert(life.startNs() == 7,
                            "stale stamp behind mutated flag");
        });
        life.markStarted(7);
        joinAll();
    });

    ASSERT_FALSE(res.ok)
        << "the seeded lifecycle-stamp race was NOT detected — the "
           "model checker lost its sensitivity to the PR-4 class of "
           "publication bugs";
    EXPECT_NE(res.failure.find("stale stamp"), std::string::npos)
        << res.report();
    EXPECT_FALSE(res.decisions.empty());
    EXPECT_FALSE(res.trace.empty());

    // The replayable trace is the artifact a developer debugs from;
    // print it so the ctest log shows what detection looks like.
    std::cout << "seeded mutant detected as expected; replay with "
                 "Options::replay = \""
              << res.decisions << "\"\n"
              << res.report() << "\n";

    // And prove the recipe works: replaying the recorded decisions
    // reproduces the same failure in a single schedule.
    Options replay;
    replay.name = "lifecycle-mutant-replay";
    replay.replay = res.decisions;
    const Result again = explore(replay, [] {
        LifecycleStamps life;
        spawn([&] {
            if (life.started())
                modelAssert(life.startNs() == 7,
                            "stale stamp behind mutated flag");
        });
        life.markStarted(7);
        joinAll();
    });
    EXPECT_FALSE(again.ok);
    EXPECT_EQ(again.schedules, 1u);
    EXPECT_EQ(again.failure, res.failure) << again.report();
}

} // namespace
} // namespace srbenes
