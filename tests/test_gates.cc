/**
 * @file
 * Tests for the gate-level fabric: netlist primitives, the
 * structural cost/delay claims (2n muxes per switch, one mux level
 * per stage), and bit-for-bit equivalence with the behavioral
 * simulator -- exhaustively at N = 4 and sampled at larger sizes.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "gates/benes_gates.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(Netlist, PrimitiveTruthTables)
{
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId s = net.addInput();
    const NodeId n_not = net.addNot(a);
    const NodeId n_and = net.addAnd(a, b);
    const NodeId n_or = net.addOr(a, b);
    const NodeId n_xor = net.addXor(a, b);
    const NodeId n_mux = net.addMux(s, a, b);

    for (std::uint8_t va : {0, 1}) {
        for (std::uint8_t vb : {0, 1}) {
            for (std::uint8_t vs : {0, 1}) {
                const auto v = net.evaluate({va, vb, vs});
                EXPECT_EQ(v[n_not], va ^ 1);
                EXPECT_EQ(v[n_and], va & vb);
                EXPECT_EQ(v[n_or], va | vb);
                EXPECT_EQ(v[n_xor], va ^ vb);
                EXPECT_EQ(v[n_mux], vs ? vb : va);
            }
        }
    }
}

TEST(Netlist, DepthAccounting)
{
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    EXPECT_EQ(net.depthOf(a), 0u);
    const NodeId x = net.addAnd(a, b); // depth 1
    const NodeId y = net.addOr(x, a);  // depth 2
    const NodeId z = net.addMux(y, x, b); // depth 3
    EXPECT_EQ(net.depthOf(x), 1u);
    EXPECT_EQ(net.depthOf(y), 2u);
    EXPECT_EQ(net.depthOf(z), 3u);
    EXPECT_EQ(net.criticalDepth(), 3u);
}

TEST(Netlist, ConstantsAreShared)
{
    Netlist net;
    const NodeId c0 = net.constant(false);
    const NodeId c1 = net.constant(true);
    EXPECT_EQ(net.constant(false), c0);
    EXPECT_EQ(net.constant(true), c1);
    const auto v = net.evaluate({});
    EXPECT_EQ(v[c0], 0);
    EXPECT_EQ(v[c1], 1);
}

TEST(Netlist, GateCounts)
{
    Netlist net;
    const NodeId a = net.addInput();
    net.addNot(a);
    net.addNot(a);
    EXPECT_EQ(net.numGates(), 2u);
    EXPECT_EQ(net.countOf(GateOp::Not), 2u);
    EXPECT_EQ(net.countOf(GateOp::Input), 1u);
    EXPECT_EQ(net.numInputs(), 1u);
}

TEST(GateModel, StructuralCosts)
{
    for (unsigned n = 1; n <= 6; ++n) {
        const BenesGateModel model(n, /*with_omega_input=*/false);
        const Word size = Word{1} << n;
        const Word switches = (2 * n - 1) * size / 2;
        // "2n muxes per switch": each of the n tag bits needs one
        // mux per output.
        EXPECT_EQ(model.netlist().countOf(GateOp::Mux),
                  switches * 2 * n);
        // Delay: exactly one mux level per stage, no setup phase.
        EXPECT_EQ(model.criticalDepth(), 2 * n - 1);
        EXPECT_EQ(model.netlist().numInputs(), size * n);
    }
}

TEST(GateModel, OmegaFeatureCost)
{
    const unsigned n = 4;
    const BenesGateModel model(n, true);
    const Word size = Word{1} << n;
    // One AND per switch in the n-1 forced stages, one shared NOT.
    EXPECT_EQ(model.netlist().countOf(GateOp::And),
              (n - 1) * size / 2);
    EXPECT_EQ(model.netlist().countOf(GateOp::Not), 1u);
    // Forced stages stack control AND + mux; still O(log N).
    EXPECT_LE(model.criticalDepth(), 3 * n);
}

TEST(GateModel, MatchesBehavioralExhaustivelyN4)
{
    const BenesGateModel model(2, true);
    const SelfRoutingBenes net(2);
    std::vector<Word> dest(4);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        for (bool omega : {false, true}) {
            const auto mode = omega ? RoutingMode::OmegaBit
                                    : RoutingMode::SelfRouting;
            ASSERT_EQ(model.simulate(d, omega),
                      net.route(d, mode).output_tags)
                << d.toString() << " omega=" << omega;
        }
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class GateModelSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GateModelSweep, MatchesBehavioralOnRandomPermutations)
{
    const unsigned n = GetParam();
    const BenesGateModel model(n, true);
    const SelfRoutingBenes net(n);
    Prng prng(n * 307);
    for (int trial = 0; trial < 10; ++trial) {
        // Mix members and non-members of F.
        const Permutation d =
            trial % 2 ? Permutation::random(std::size_t{1} << n, prng)
                      : randomFMember(n, prng);
        for (bool omega : {false, true}) {
            const auto mode = omega ? RoutingMode::OmegaBit
                                    : RoutingMode::SelfRouting;
            ASSERT_EQ(model.simulate(d, omega),
                      net.route(d, mode).output_tags)
                << d.toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, GateModelSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(GateModel, BitReversalDeliversSortedTags)
{
    const BenesGateModel model(3, false);
    const auto tags =
        model.simulate(named::bitReversal(3).toPermutation());
    for (Word j = 0; j < 8; ++j)
        EXPECT_EQ(tags[j], j);
}

TEST(GateModel, OmegaModeForcesFigFiveThrough)
{
    const BenesGateModel model(2, true);
    const Permutation d{1, 3, 2, 0};
    // Self mode misroutes; omega mode sorts the tags.
    const auto self_tags = model.simulate(d, false);
    EXPECT_NE(self_tags, (std::vector<Word>{0, 1, 2, 3}));
    EXPECT_EQ(model.simulate(d, true),
              (std::vector<Word>{0, 1, 2, 3}));
}

} // namespace
} // namespace srbenes
