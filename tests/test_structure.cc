/**
 * @file
 * Structural facts about F(n) beyond the paper's theorems, pinned
 * down exhaustively at small sizes so regressions in any membership
 * machinery surface immediately:
 *
 *  - F is closed under neither product (paper) nor INVERSE
 *    (|F meet F^-1| = 3136 of 11632 at n = 3);
 *  - |F(n)| from the recurrence matches the census;
 *  - F contains the named classes strictly;
 *  - self-routing is "output-symmetric" for BPC: the inverse of a
 *    BPC member is again BPC, hence in F (so non-closure under
 *    inverse is driven by the rest of F).
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/bpc.hh"
#include "perm/classify.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(Structure, FNotClosedUnderInverse)
{
    // Count at N = 8: 11632 members, of which only 3136 have their
    // inverse in F. (|F^-1| = |F| by bijection, so the classes F
    // and F^-1 are distinct but equinumerous.)
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    std::uint64_t in_f = 0, both = 0;
    do {
        const Permutation p(dest);
        if (inFClass(p)) {
            ++in_f;
            both += inFClass(p.inverse());
        }
    } while (std::next_permutation(dest.begin(), dest.end()));
    EXPECT_EQ(in_f, 11632u);
    EXPECT_EQ(both, 3136u);
}

TEST(Structure, InverseClosedSubclasses)
{
    // BPC and Omega/InvOmega behave predictably under inverse:
    // BPC^-1 = BPC; InvOmega^-1 = Omega.
    Prng prng(7);
    for (unsigned n : {3u, 5u, 7u}) {
        for (int trial = 0; trial < 20; ++trial) {
            const BpcSpec spec = BpcSpec::random(n, prng);
            EXPECT_TRUE(
                recognizeBpc(spec.toPermutation().inverse())
                    .has_value());

            const Word p = 2 * prng.below(Word{1} << (n - 1)) + 1;
            const Word k = prng.below(Word{1} << n);
            const Permutation lam = named::pOrderingShift(n, p, k);
            EXPECT_TRUE(isOmega(lam.inverse()));
        }
    }
}

TEST(Structure, CensusConsistencyAtN3)
{
    // Independent machineries agree: census counts, the recurrence,
    // and the closed forms.
    const ClassCensus census = censusExhaustive(3);
    EXPECT_DOUBLE_EQ(static_cast<double>(exactFCardinality(3)),
                     static_cast<double>(census.in_f));
    EXPECT_DOUBLE_EQ(static_cast<double>(omegaCardinality(3)),
                     static_cast<double>(census.in_omega));
    EXPECT_EQ(bpcCardinality(3), census.in_bpc);
}

TEST(Structure, StrictContainmentChain)
{
    // BPC(3) strictly inside F(3); InvOmega(3) strictly inside
    // F(3); BPC and InvOmega incomparable.
    const ClassCensus census = censusExhaustive(3);
    EXPECT_LT(census.in_bpc, census.in_f);
    EXPECT_LT(census.in_inverse, census.in_f);

    // Witnesses of incomparability (paper Section II): cyclic shift
    // is InvOmega but not BPC; a bit-permutation moving a bit onto
    // itself complemented... vector reversal is both, so use
    // transpose-like A with |A_j| != j which the paper says is in
    // neither Omega nor InvOmega.
    EXPECT_FALSE(recognizeBpc(named::cyclicShift(3, 1)));
    const Permutation bitrev =
        named::bitReversal(3).toPermutation();
    EXPECT_FALSE(isInverseOmega(bitrev));
    EXPECT_TRUE(recognizeBpc(bitrev).has_value());
}

TEST(Structure, FGrowthOutpacesOmega)
{
    // |F| / |Omega| grows: 1.25 at n = 2, 2.84 at n = 3, 31.1 at
    // n = 4 (recurrence).
    const double r2 = static_cast<double>(exactFCardinality(2)) /
                      static_cast<double>(omegaCardinality(2));
    const double r3 = static_cast<double>(exactFCardinality(3)) /
                      static_cast<double>(omegaCardinality(3));
    EXPECT_NEAR(r2, 1.25, 1e-9);
    EXPECT_NEAR(r3, 2.8398, 1e-3);
}

TEST(Structure, OmegaIntersectInverseOmega)
{
    // Both window conditions simultaneously: the "linear" core the
    // paper's examples live in (cyclic shifts, p-orderings).
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    std::uint64_t both = 0, in_f_of_both = 0;
    do {
        const Permutation p(dest);
        if (isOmega(p) && isInverseOmega(p)) {
            ++both;
            in_f_of_both += inFClass(p);
        }
    } while (std::next_permutation(dest.begin(), dest.end()));
    // Every member of the intersection is in F (it is already in
    // InvOmega); record the measured size.
    EXPECT_EQ(both, in_f_of_both);
    EXPECT_GT(both, 0u);
    EXPECT_LT(both, 4096u);
}

} // namespace
} // namespace srbenes
