/**
 * @file
 * Tests for the packet-switched fabric (packet::Fabric): universal
 * delivery under every midpath policy (exhaustive at N = 8),
 * conservation accounting under every traffic-matrix/policy
 * combination, eventual delivery under backpressure (feed-forward
 * => deadlock-free), bit-exact payload delivery against
 * Permutation::applyTo, registry wiring, and the deprecated
 * PacketBenes shim (the old suite, still green through the shim).
 */

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "packet/fabric.hh"
#include "packet/packet_benes.hh"
#include "packet/traffic.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"
#include "rand_iters.hh"

namespace srbenes
{
namespace
{

using packet::ContentionPolicy;
using packet::Fabric;
using packet::FabricStats;
using packet::MidpathPolicy;
using packet::PacketOptions;

constexpr MidpathPolicy kMidpaths[] = {
    MidpathPolicy::LeastOccupancy,
    MidpathPolicy::Random,
    MidpathPolicy::TagBits,
};

constexpr ContentionPolicy kPolicies[] = {
    ContentionPolicy::Backpressure,
    ContentionPolicy::Drop,
};

/** Every matrix in the traffic library, freshly built. */
std::vector<std::unique_ptr<packet::TrafficSource>>
allMatrices(unsigned n, double load, std::uint64_t seed)
{
    std::vector<std::unique_ptr<packet::TrafficSource>> out;
    out.push_back(
        std::make_unique<packet::UniformTraffic>(n, load, seed));
    out.push_back(std::make_unique<packet::HotSpotTraffic>(
        n, load, 0.25, 0, seed));
    out.push_back(std::make_unique<packet::BurstyTraffic>(
        n, std::min(load, 0.8), 8.0, seed));
    out.push_back(std::make_unique<packet::PartialTraffic>(
        n, load, 0.5, seed));
    out.push_back(std::make_unique<packet::MulticastTraffic>(
        n, load, 4, seed));
    out.push_back(std::make_unique<packet::PermutationTraffic>(
        n, load, named::bitReversal(n).toPermutation(), seed));
    return out;
}

TEST(Fabric, IdentityTagBitsIsStallFreeAtStageCountLatency)
{
    for (unsigned n : {2u, 4u, 6u}) {
        PacketOptions opts;
        opts.midpath = MidpathPolicy::TagBits;
        Fabric fabric(n, opts, nullptr);
        const FabricStats st = fabric.runPermutation(
            Permutation::identity(std::size_t{1} << n));
        EXPECT_TRUE(st.allDelivered());
        EXPECT_TRUE(st.conserved);
        EXPECT_EQ(st.stalls, 0u);
        // One hop per stage after injection.
        EXPECT_EQ(st.min_latency, 2 * n - 1);
        EXPECT_EQ(st.max_latency, 2 * n - 1);
    }
}

TEST(Fabric, AllPermutationsDeliverN8UnderEveryMidpath)
{
    // Exhaustive proof (at N = 8) that the closing omega half
    // self-routes from ANY middle line: whatever port the first n-1
    // stages pick, every packet reaches its destination (a misroute
    // would panic inside deliver()).
    for (const MidpathPolicy mp : kMidpaths) {
        PacketOptions opts;
        opts.midpath = mp;
        Fabric fabric(3, opts, nullptr);
        std::vector<Word> dest(8);
        std::iota(dest.begin(), dest.end(), 0);
        do {
            const FabricStats st =
                fabric.runPermutation(Permutation(dest));
            ASSERT_TRUE(st.allDelivered())
                << midpathPolicyName(mp) << " "
                << Permutation(dest).toString();
            ASSERT_TRUE(st.conserved);
        } while (std::next_permutation(dest.begin(), dest.end()));
    }
}

TEST(Fabric, BitExactDeliveryMatchesApplyTo)
{
    // Under backpressure nothing is lost, so pushing payloads
    // through the wires must equal the algebraic permutation.
    const unsigned n = 5;
    const Word size = Word{1} << n;
    Prng prng(21);
    const int trials = randIters(12);
    for (const MidpathPolicy mp : kMidpaths) {
        PacketOptions opts;
        opts.midpath = mp;
        Fabric fabric(n, opts, nullptr);
        for (int t = 0; t < trials; ++t) {
            const Permutation d = Permutation::random(size, prng);
            std::vector<Word> data(size);
            for (Word i = 0; i < size; ++i)
                data[i] = prng();
            std::vector<Word> out;
            const FabricStats st =
                fabric.runPermutation(d, data, out);
            ASSERT_TRUE(st.allDelivered());
            EXPECT_EQ(out, d.applyTo(data))
                << midpathPolicyName(mp) << " " << d.toString();
        }
    }
}

TEST(Fabric, ConservationHoldsForEveryMatrixAndPolicy)
{
    // The tentpole invariant: offered == injected + rejected and
    // injected == delivered + dropped + in-flight, for every
    // traffic matrix under both contention policies (and a drained
    // fabric has nothing in flight).
    const unsigned n = 4;
    std::uint64_t seed = 97;
    for (const ContentionPolicy cp : kPolicies)
        for (const MidpathPolicy mp : kMidpaths)
            for (auto &matrix : allMatrices(n, 0.7, ++seed)) {
                PacketOptions opts;
                opts.contention = cp;
                opts.midpath = mp;
                Fabric fabric(n, opts, nullptr);
                const FabricStats st = fabric.run(*matrix, 300);
                ASSERT_TRUE(st.conserved)
                    << matrix->name() << " / "
                    << contentionPolicyName(cp) << " / "
                    << midpathPolicyName(mp);
                EXPECT_EQ(st.in_flight, 0u);
                EXPECT_EQ(st.injected,
                          st.delivered + st.dropped);
                if (cp == ContentionPolicy::Backpressure) {
                    EXPECT_EQ(st.dropped, 0u) << matrix->name();
                }
            }
}

TEST(Fabric, EventualDeliveryUnderBackpressure)
{
    // Feed-forward wires cannot deadlock: even one-slot rings under
    // a saturating hot-spot drain completely and lose nothing
    // (drainAll() panics if the fabric ever wedges).
    const unsigned n = 5;
    PacketOptions opts;
    opts.queue_capacity = 1;
    opts.ingress_capacity = 1;
    opts.contention = ContentionPolicy::Backpressure;
    Fabric fabric(n, opts, nullptr);
    packet::HotSpotTraffic matrix(n, 0.9, 0.5, 3, 17);
    const FabricStats st = fabric.run(matrix, 400);
    EXPECT_TRUE(st.conserved);
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_EQ(st.delivered, st.injected);
    EXPECT_EQ(st.in_flight, 0u);
    EXPECT_GT(st.stalls, 0u);
}

TEST(Fabric, DropPolicyAccountsEveryLoss)
{
    const unsigned n = 5;
    PacketOptions opts;
    opts.contention = ContentionPolicy::Drop;
    Fabric fabric(n, opts, nullptr);
    packet::HotSpotTraffic matrix(n, 0.9, 0.5, 0, 23);
    const FabricStats st = fabric.run(matrix, 500);
    EXPECT_TRUE(st.conserved);
    EXPECT_GT(st.dropped, 0u); // a saturated hot-spot must shed
    EXPECT_EQ(st.injected, st.delivered + st.dropped);
    // Losses keep latency bounded: the drop fabric's worst packet
    // beats the queueing collapse backpressure would show here.
    EXPECT_LT(st.avg_latency, 10.0 * (2 * n - 1));
}

TEST(Fabric, OccupancyNeverExceedsRingCapacity)
{
    const unsigned n = 4;
    PacketOptions opts;
    opts.queue_capacity = 3;
    opts.ingress_capacity = 5;
    Fabric fabric(n, opts, nullptr);
    packet::UniformTraffic matrix(n, 0.9, 31);
    const FabricStats st = fabric.run(matrix, 300);
    EXPECT_TRUE(st.conserved);
    EXPECT_LE(st.max_occupancy, 3u);
    EXPECT_LE(st.max_ingress_occupancy, 5u);
    EXPECT_GT(st.max_occupancy, 0u);
}

TEST(Fabric, IngressFullMeansRejectedNeverLost)
{
    PacketOptions opts;
    opts.ingress_capacity = 1;
    Fabric fabric(3, opts, nullptr);
    EXPECT_TRUE(fabric.offer(0, 5));
    EXPECT_FALSE(fabric.offer(0, 6)); // same ring, still full
    fabric.drainAll();
    const FabricStats st = fabric.stats();
    EXPECT_TRUE(st.conserved);
    EXPECT_EQ(st.offered, 2u);
    EXPECT_EQ(st.injected, 1u);
    EXPECT_EQ(st.rejected, 1u);
    EXPECT_EQ(st.delivered, 1u);
}

TEST(Fabric, LoadBalancedMidpathBeatsTagBitsUnderCongestion)
{
    // The Huang & Walrand point: tag-bit routing follows ONE path
    // per (src, dst) pair, so a skewed-but-legal matrix like
    // sustained bit reversal piles every packet onto the same
    // middle trunks; spreading across the equivalent middle lines
    // removes the hot trunks. Same traffic, same seeds -- fewer
    // stalls, far shorter delays, and no ingress saturation.
    const unsigned n = 6;
    auto runWith = [&](MidpathPolicy mp) {
        PacketOptions opts;
        opts.midpath = mp;
        Fabric fabric(n, opts, nullptr);
        packet::PermutationTraffic matrix(
            n, 0.6, named::bitReversal(n).toPermutation(), 41);
        return fabric.run(matrix, 500);
    };
    const FabricStats tag = runWith(MidpathPolicy::TagBits);
    const FabricStats lo = runWith(MidpathPolicy::LeastOccupancy);
    EXPECT_TRUE(tag.conserved);
    EXPECT_TRUE(lo.conserved);
    EXPECT_LT(lo.stalls, tag.stalls);
    EXPECT_LT(lo.max_latency, tag.max_latency);
    EXPECT_LT(lo.avg_latency, tag.avg_latency);
    EXPECT_EQ(lo.rejected, 0u);   // balanced fabric keeps up
    EXPECT_GT(tag.rejected, 0u);  // single-path trunks back up
}

TEST(Fabric, RunHelpersReportPerRunDeltas)
{
    Fabric fabric(3, {}, nullptr);
    const Permutation d = Permutation::identity(8);
    const FabricStats first = fabric.runPermutation(d);
    const FabricStats second = fabric.runPermutation(d);
    EXPECT_EQ(first.injected, 8u);
    EXPECT_EQ(second.injected, 8u); // a delta, not a lifetime sum
    EXPECT_EQ(fabric.stats().injected, 16u);
    EXPECT_TRUE(fabric.stats().conserved);
}

TEST(Fabric, ResetFlushesInFlightIntoDropped)
{
    Fabric fabric(3, {}, nullptr);
    for (Word i = 0; i < 8; ++i)
        ASSERT_TRUE(fabric.offer(i, 7 - i));
    fabric.step();
    fabric.reset();
    EXPECT_TRUE(fabric.empty());
    EXPECT_EQ(fabric.cycle(), 0u);
    const FabricStats st = fabric.stats();
    EXPECT_TRUE(st.conserved); // the flush is accounted, not lost
    EXPECT_EQ(st.dropped, 8u);
}

TEST(Fabric, DeliverySinkSeesEveryPacketOnce)
{
    Fabric fabric(4, {}, nullptr);
    std::vector<std::uint64_t> hits(16, 0);
    fabric.setDeliverySink([&hits](const packet::Delivery &del) {
        ++hits[del.dst];
        EXPECT_GE(del.latency, 7u);
    });
    Prng prng(47);
    fabric.runPermutation(Permutation::random(16, prng));
    for (const std::uint64_t h : hits)
        EXPECT_EQ(h, 1u);
}

TEST(Fabric, RegistryMirrorsTheExactTallies)
{
    obs::MetricsRegistry reg;
    Fabric fabric(4, {}, &reg);
    packet::UniformTraffic matrix(4, 0.5, 53);
    fabric.run(matrix, 200);
    const FabricStats st = fabric.stats();

    std::uint64_t delivered = 0, injected = 0;
    reg.visit([&](const obs::MetricsRegistry::View &v) {
        if (v.name == "srbenes_packet_delivered_total")
            delivered = v.counter->value();
        if (v.name == "srbenes_packet_injected_total")
            injected = v.counter->value();
    });
    EXPECT_EQ(delivered, st.delivered);
    EXPECT_EQ(injected, st.injected);
    EXPECT_GT(st.p50_latency, 0u); // histogram attached
    EXPECT_GE(st.p99_latency, st.p50_latency);

    const std::string text = obs::exposeText(reg);
    EXPECT_NE(text.find("srbenes_packet_latency_cycles"),
              std::string::npos);
    EXPECT_NE(text.find("srbenes_packet_queue_depth"),
              std::string::npos);
}

TEST(Fabric, DarkFabricStaysExact)
{
    // metrics = nullptr turns exposition off, never the accounting;
    // only the histogram-backed percentiles read zero.
    Fabric fabric(4, {}, nullptr);
    packet::UniformTraffic matrix(4, 0.5, 59);
    const FabricStats st = fabric.run(matrix, 200);
    EXPECT_TRUE(st.conserved);
    EXPECT_GT(st.delivered, 0u);
    EXPECT_GT(st.avg_latency, 0.0);
    EXPECT_EQ(st.p50_latency, 0u);
    EXPECT_EQ(st.p99_latency, 0u);
}

TEST(Fabric, SameSeedReplaysSameSchedule)
{
    auto once = [] {
        PacketOptions opts;
        opts.midpath = MidpathPolicy::Random;
        Fabric fabric(4, opts, nullptr);
        packet::BurstyTraffic matrix(4, 0.6, 8.0, 61);
        return fabric.run(matrix, 250);
    };
    const FabricStats a = once();
    const FabricStats b = once();
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.max_latency, b.max_latency);
}

// --- The pre-Fabric suite, kept verbatim against the deprecated --
// --- PacketBenes shim: the old surface must stay green for one  --
// --- release.                                                   --

TEST(PacketShim, IdentityFlowsWithoutStalls)
{
    for (unsigned n : {2u, 4u, 6u}) {
        PacketBenes fabric(n);
        const auto stats = fabric.runPermutation(
            Permutation::identity(std::size_t{1} << n));
        EXPECT_TRUE(stats.all_delivered);
        EXPECT_EQ(stats.stalls, 0u);
        EXPECT_EQ(stats.min_latency, 2 * n - 1);
        EXPECT_EQ(stats.max_latency, 2 * n - 1);
    }
}

TEST(PacketShim, AllPermutationsDeliverN8)
{
    PacketBenes fabric(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const auto stats =
            fabric.runPermutation(Permutation(dest));
        ASSERT_TRUE(stats.all_delivered)
            << Permutation(dest).toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(PacketShim, LatencyLowerBoundIsStageCount)
{
    PacketBenes fabric(4);
    Prng prng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const auto stats = fabric.runPermutation(
            Permutation::random(16, prng));
        EXPECT_TRUE(stats.all_delivered);
        EXPECT_GE(stats.min_latency, 7u);
        EXPECT_GE(stats.max_latency, stats.min_latency);
        EXPECT_GE(stats.avg_latency,
                  static_cast<double>(stats.min_latency));
    }
}

TEST(PacketShim, BitReversalStallsDespiteBeingInF)
{
    // The central comparison: the circuit-switched rule carries bit
    // reversal conflict-free (it is in F), but per-packet tag
    // routing collides (e.g.\ tags 0 and 4 at stage-0 switch 0 both
    // request port 0).
    const unsigned n = 4;
    const Permutation d = named::bitReversal(n).toPermutation();
    ASSERT_TRUE(inFClass(d));
    PacketBenes fabric(n);
    const auto stats = fabric.runPermutation(d);
    EXPECT_TRUE(stats.all_delivered);
    EXPECT_GT(stats.max_latency, 2 * n - 1);
}

TEST(PacketShim, StreamThroughputApproachesOneBatchPerCycle)
{
    // Identity batches stream at full rate: K batches in
    // (2n-1) + K cycles (one extra for the injection offset).
    const unsigned n = 3;
    PacketBenes fabric(n);
    const int batches = 32;
    const std::vector<Permutation> stream(
        batches, Permutation::identity(8));
    const auto stats = fabric.runStream(stream);
    EXPECT_TRUE(stats.all_delivered);
    EXPECT_EQ(stats.stalls, 0u);
    EXPECT_LE(stats.cycles, (2 * n - 1) + batches + 1u);
}

TEST(PacketShim, TinyFifosStillDeliver)
{
    PacketConfig cfg;
    cfg.fifo_capacity = 1;
    PacketBenes fabric(4, cfg);
    Prng prng(5);
    for (int trial = 0; trial < 10; ++trial) {
        const auto stats = fabric.runPermutation(
            Permutation::random(16, prng));
        EXPECT_TRUE(stats.all_delivered);
    }
}

TEST(PacketShim, DeeperFifosReduceStalls)
{
    const unsigned n = 5;
    Prng prng(7);
    const auto d = Permutation::random(32, prng);

    PacketConfig shallow;
    shallow.fifo_capacity = 1;
    PacketConfig deep;
    deep.fifo_capacity = 8;

    const auto s1 = PacketBenes(n, shallow).runPermutation(d);
    const auto s2 = PacketBenes(n, deep).runPermutation(d);
    EXPECT_TRUE(s1.all_delivered);
    EXPECT_TRUE(s2.all_delivered);
    EXPECT_LE(s2.stalls, s1.stalls);
}

TEST(PacketShim, OccupancyBoundedByCapacity)
{
    PacketConfig cfg;
    cfg.fifo_capacity = 3;
    PacketBenes fabric(4, cfg);
    Prng prng(11);
    const auto stats =
        fabric.runPermutation(Permutation::random(16, prng));
    EXPECT_LE(stats.max_occupancy, 3u);
}

} // namespace
} // namespace srbenes
