/**
 * @file
 * Tests for the packet-switched fabric: universal delivery
 * (exhaustive at N = 8), latency bounds, contention behavior
 * (identity flows stall-free, bit reversal collides even though it
 * is in F -- the circuit rule is strictly stronger), streaming
 * throughput, and backpressure with tiny FIFOs.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "packet/packet_benes.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(Packet, IdentityFlowsWithoutStalls)
{
    for (unsigned n : {2u, 4u, 6u}) {
        PacketBenes fabric(n);
        const auto stats = fabric.runPermutation(
            Permutation::identity(std::size_t{1} << n));
        EXPECT_TRUE(stats.all_delivered);
        EXPECT_EQ(stats.stalls, 0u);
        // One hop per stage after injection.
        EXPECT_EQ(stats.min_latency, 2 * n - 1);
        EXPECT_EQ(stats.max_latency, 2 * n - 1);
    }
}

TEST(Packet, AllPermutationsDeliverN8)
{
    PacketBenes fabric(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const auto stats =
            fabric.runPermutation(Permutation(dest));
        ASSERT_TRUE(stats.all_delivered) << Permutation(dest).toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(Packet, LatencyLowerBoundIsStageCount)
{
    PacketBenes fabric(4);
    Prng prng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const auto stats = fabric.runPermutation(
            Permutation::random(16, prng));
        EXPECT_TRUE(stats.all_delivered);
        EXPECT_GE(stats.min_latency, 7u);
        EXPECT_GE(stats.max_latency, stats.min_latency);
        EXPECT_GE(stats.avg_latency,
                  static_cast<double>(stats.min_latency));
    }
}

TEST(Packet, BitReversalStallsDespiteBeingInF)
{
    // The central comparison: the circuit-switched rule carries bit
    // reversal conflict-free (it is in F), but per-packet tag
    // routing collides (e.g.\ tags 0 and 4 at stage-0 switch 0 both
    // request port 0).
    const unsigned n = 4;
    const Permutation d = named::bitReversal(n).toPermutation();
    ASSERT_TRUE(inFClass(d));
    PacketBenes fabric(n);
    const auto stats = fabric.runPermutation(d);
    EXPECT_TRUE(stats.all_delivered);
    EXPECT_GT(stats.max_latency, 2 * n - 1);
}

TEST(Packet, CyclicShiftFlowsCheaply)
{
    // Cyclic shifts distribute across ports evenly at each stage.
    PacketBenes fabric(5);
    const auto stats =
        fabric.runPermutation(named::cyclicShift(5, 7));
    EXPECT_TRUE(stats.all_delivered);
    EXPECT_LE(stats.avg_latency, 2.0 * (2 * 5 - 1));
}

TEST(Packet, StreamThroughputApproachesOneBatchPerCycle)
{
    // Identity batches stream at full rate: K batches in
    // (2n-1) + K cycles (one extra for the injection offset).
    const unsigned n = 3;
    PacketBenes fabric(n);
    const int batches = 32;
    const std::vector<Permutation> stream(
        batches, Permutation::identity(8));
    const auto stats = fabric.runStream(stream);
    EXPECT_TRUE(stats.all_delivered);
    EXPECT_EQ(stats.stalls, 0u);
    EXPECT_LE(stats.cycles, (2 * n - 1) + batches + 1u);
}

TEST(Packet, TinyFifosStillDeliver)
{
    PacketConfig cfg;
    cfg.fifo_capacity = 1;
    PacketBenes fabric(4, cfg);
    Prng prng(5);
    for (int trial = 0; trial < 10; ++trial) {
        const auto stats = fabric.runPermutation(
            Permutation::random(16, prng));
        EXPECT_TRUE(stats.all_delivered);
    }
}

TEST(Packet, DeeperFifosReduceStalls)
{
    const unsigned n = 5;
    Prng prng(7);
    const auto d = Permutation::random(32, prng);

    PacketConfig shallow;
    shallow.fifo_capacity = 1;
    PacketConfig deep;
    deep.fifo_capacity = 8;

    const auto s1 = PacketBenes(n, shallow).runPermutation(d);
    const auto s2 = PacketBenes(n, deep).runPermutation(d);
    EXPECT_TRUE(s1.all_delivered);
    EXPECT_TRUE(s2.all_delivered);
    EXPECT_LE(s2.stalls, s1.stalls);
}

TEST(Packet, OccupancyBoundedByCapacity)
{
    PacketConfig cfg;
    cfg.fifo_capacity = 3;
    PacketBenes fabric(4, cfg);
    Prng prng(11);
    const auto stats =
        fabric.runPermutation(Permutation::random(16, prng));
    EXPECT_LE(stats.max_occupancy, 3u);
}

} // namespace
} // namespace srbenes
