/**
 * @file
 * Tests for the cube-connected computer and its Section III
 * permutation algorithm: the Fig. 6 trace, exhaustive equivalence
 * with F(n) at N = 8, route-count formulas, and the class-hint
 * schedule optimizations.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"
#include "simd/permute.hh"

namespace srbenes
{
namespace
{

TEST(Ccc, InterchangeSwapsSelectedPairs)
{
    CubeMachine m(2);
    m.loadIota(Permutation::identity(4));
    // Swap only the pair (1, 3) across dimension 1.
    m.interchange(1, [](Word i) { return i == 1; });
    EXPECT_EQ(m.pe(0).r, 0u);
    EXPECT_EQ(m.pe(1).r, 3u);
    EXPECT_EQ(m.pe(3).r, 1u);
    EXPECT_EQ(m.unitRoutes(), 1u);
    EXPECT_EQ(m.interchangeSteps(), 1u);
}

TEST(Ccc, FigSixBitReversalTrace)
{
    // Fig. 6: bit reversal on 8 PEs; the loop runs b = 0, 1, 2, 1, 0
    // and the destination column converges to the identity.
    CubeMachine m(3);
    m.loadIota(named::bitReversal(3).toPermutation());

    const auto schedule = benesSchedule(3);
    EXPECT_EQ(schedule, (std::vector<unsigned>{0, 1, 2, 1, 0}));

    // First iteration (b = 0): the paper notes PE(6)/PE(7) exchange
    // because D(6) = 011 has bit 0 = 1, while PE(0)/PE(1) do not
    // (D(0) = 000).
    m.interchange(0, [&m](Word i) { return bit(m.pe(i).d, 0) == 1; });
    EXPECT_EQ(m.pe(6).d, 7u); // D(7) = 111 moved up
    EXPECT_EQ(m.pe(7).d, 3u);
    EXPECT_EQ(m.pe(0).d, 0u); // unchanged

    for (unsigned b : {1u, 2u, 1u, 0u})
        m.interchange(b,
                      [&m, b](Word i) { return bit(m.pe(i).d, b); });
    EXPECT_TRUE(m.permutationComplete());
}

TEST(Ccc, PermuteMatchesFClassExhaustivelyN8)
{
    // Section III claims the loop simulates the self-routing network
    // exactly; check success against Theorem 1 for all 40320
    // permutations of 8 elements.
    CubeMachine m(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        m.loadIota(d);
        const auto stats = cccPermute(m);
        ASSERT_EQ(stats.success, inFClass(d)) << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(Ccc, DataArrivesWithTags)
{
    CubeMachine m(4);
    Prng prng(19);
    for (int trial = 0; trial < 20; ++trial) {
        const Permutation d = BpcSpec::random(4, prng).toPermutation();
        m.loadIota(d);
        ASSERT_TRUE(cccPermute(m).success);
        // Record from PE i must now sit in PE d[i].
        for (Word i = 0; i < 16; ++i)
            EXPECT_EQ(m.pe(d[i]).r, i);
    }
}

class CccRouteCounts : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CccRouteCounts, GeneralCaseUsesTwoLogNMinusOne)
{
    const unsigned n = GetParam();
    CubeMachine m(n);
    m.loadIota(named::bitReversal(n).toPermutation());
    const auto stats = cccPermute(m);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(stats.interchanges, 2 * n - 1);
    EXPECT_EQ(stats.unit_routes, 2 * n - 1); // 1 route/interchange
}

TEST_P(CccRouteCounts, TwoRoutesPerInterchangeDoubles)
{
    const unsigned n = GetParam();
    CubeMachine m(n, 2);
    m.loadIota(named::bitReversal(n).toPermutation());
    const auto stats = cccPermute(m);
    EXPECT_TRUE(stats.success);
    // "If the interchange needs two unit-routes, then 4 log N - 2."
    EXPECT_EQ(stats.unit_routes, 4 * n - 2);
}

TEST_P(CccRouteCounts, OmegaHintSkipsFirstHalf)
{
    const unsigned n = GetParam();
    CubeMachine m(n);
    m.loadIota(named::cyclicShift(n, 3));
    const auto stats = cccPermute(m, PermClassHint::Omega);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(stats.interchanges, n);
}

TEST_P(CccRouteCounts, InverseOmegaHintSkipsSecondHalf)
{
    const unsigned n = GetParam();
    CubeMachine m(n);
    m.loadIota(named::pOrdering(n, 5));
    const auto stats = cccPermute(m, PermClassHint::InverseOmega);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(stats.interchanges, n);
}

TEST_P(CccRouteCounts, BpcFixedAxesSkipped)
{
    // A permutation that only reverses the low two index bits fixes
    // axes 2..n-1, so the schedule 0..n-2, n-1, n-2..0 collapses to
    // the four entries 0, 1, 1, 0 when n > 2.
    const unsigned n = GetParam();
    if (n < 3)
        return;
    const BpcSpec spec = named::segmentBitReversal(n, 2);
    CubeMachine m(n);
    m.loadIota(spec.toPermutation());
    const auto stats = cccPermute(m, PermClassHint::General, &spec);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(stats.interchanges, 4u); // dims 0, 1, 1, 0
}

INSTANTIATE_TEST_SUITE_P(Widths, CccRouteCounts,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 10u));

TEST(Ccc, IdentityNeedsNoExchangesButFullSchedule)
{
    CubeMachine m(4);
    const BpcSpec id = BpcSpec::identity(4);
    m.loadIota(id.toPermutation());
    // With the BPC hint, the identity's schedule is empty.
    const auto stats = cccPermute(m, PermClassHint::General, &id);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(stats.interchanges, 0u);
}

TEST(Ccc, HintedRunsAgreeWithGeneralRuns)
{
    Prng prng(29);
    const unsigned n = 5;
    for (int trial = 0; trial < 20; ++trial) {
        const BpcSpec spec = BpcSpec::random(n, prng);
        CubeMachine a(n), b(n);
        a.loadIota(spec.toPermutation());
        b.loadIota(spec.toPermutation());
        ASSERT_TRUE(cccPermute(a).success);
        ASSERT_TRUE(
            cccPermute(b, PermClassHint::General, &spec).success);
        for (Word i = 0; i < a.numPes(); ++i)
            EXPECT_EQ(a.pe(i).r, b.pe(i).r);
    }
}

} // namespace
} // namespace srbenes
