/**
 * @file
 * Tests for the routing facade: strategy selection, plan reuse,
 * correct delivery under every strategy, and the Waksman
 * preference knob.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/router.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

std::vector<Word>
iotaData(std::size_t size)
{
    std::vector<Word> v(size);
    for (std::size_t i = 0; i < size; ++i)
        v[i] = 600 + i;
    return v;
}

TEST(Router, PicksSelfRoutingForFMembers)
{
    const Router router(4);
    Prng prng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const auto plan = router.plan(randomFMember(4, prng));
        EXPECT_EQ(plan.strategy, RouteStrategy::SelfRouting);
        EXPECT_EQ(plan.passes, 1u);
    }
}

TEST(Router, PicksOmegaBitForOmegaOnlyMembers)
{
    // (1,3,2,0) is Omega(2) but not F(2).
    const Router router(2);
    const auto plan = router.plan(Permutation({1, 3, 2, 0}));
    EXPECT_EQ(plan.strategy, RouteStrategy::OmegaBit);
}

TEST(Router, PicksTwoPassForTheRest)
{
    const Router router(4);
    Prng prng(3);
    int seen = 0;
    for (int trial = 0; trial < 50; ++trial) {
        const auto d = Permutation::random(16, prng);
        if (inFClass(d) || isOmega(d))
            continue;
        const auto plan = router.plan(d);
        EXPECT_EQ(plan.strategy, RouteStrategy::TwoPass);
        EXPECT_EQ(plan.passes, 2u);
        ++seen;
    }
    EXPECT_GT(seen, 30);
}

TEST(Router, WaksmanPreferenceKnob)
{
    const Router router(4, /*prefer_waksman=*/true);
    Prng prng(5);
    for (int trial = 0; trial < 50; ++trial) {
        const auto d = Permutation::random(16, prng);
        if (inFClass(d) || isOmega(d))
            continue;
        const auto plan = router.plan(d);
        EXPECT_EQ(plan.strategy, RouteStrategy::Waksman);
        EXPECT_EQ(plan.passes, 1u);
        return;
    }
    FAIL() << "no generic permutation sampled";
}

TEST(Router, DeliversUnderEveryStrategy)
{
    for (bool prefer_waksman : {false, true}) {
        const Router router(5, prefer_waksman);
        Prng prng(7);
        const auto data = iotaData(32);
        // A workload mix covering every strategy.
        std::vector<Permutation> mix{
            randomFMember(5, prng),
            named::cyclicShift(5, 9).inverse(), // omega member
            Permutation::random(32, prng),
            Permutation::random(32, prng),
        };
        for (const auto &d : mix) {
            const auto out = router.route(d, data);
            for (Word i = 0; i < 32; ++i)
                ASSERT_EQ(out[d[i]], data[i])
                    << d.toString() << " waksman="
                    << prefer_waksman;
        }
    }
}

TEST(Router, PlansAreReusable)
{
    const Router router(4);
    Prng prng(9);
    const auto d = Permutation::random(16, prng);
    const auto plan = router.plan(d);
    for (int run = 0; run < 3; ++run) {
        std::vector<Word> data(16);
        for (Word i = 0; i < 16; ++i)
            data[i] = 100 * run + i;
        const auto out = router.execute(plan, data);
        for (Word i = 0; i < 16; ++i)
            EXPECT_EQ(out[d[i]], 100 * run + i);
    }
}

TEST(Router, StrategyNames)
{
    EXPECT_STREQ(routeStrategyName(RouteStrategy::SelfRouting),
                 "self-routing");
    EXPECT_STREQ(routeStrategyName(RouteStrategy::TwoPass),
                 "two-pass");
    EXPECT_STREQ(routeStrategyName(RouteStrategy::Waksman),
                 "waksman");
    EXPECT_STREQ(routeStrategyName(RouteStrategy::OmegaBit),
                 "omega-bit");
}

TEST(Router, SizeMismatchDies)
{
    const Router router(3);
    EXPECT_DEATH(router.plan(Permutation::identity(4)),
                 "does not match");
}

} // namespace
} // namespace srbenes
