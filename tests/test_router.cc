/**
 * @file
 * Tests for the routing facade: strategy selection, plan reuse,
 * correct delivery under every strategy, and the Waksman
 * preference knob.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/router.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

std::vector<Word>
iotaData(std::size_t size)
{
    std::vector<Word> v(size);
    for (std::size_t i = 0; i < size; ++i)
        v[i] = 600 + i;
    return v;
}

TEST(Router, PicksSelfRoutingForFMembers)
{
    const Router router(4);
    Prng prng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const auto plan = router.plan(randomFMember(4, prng));
        EXPECT_EQ(plan.strategy, RouteStrategy::SelfRouting);
        EXPECT_EQ(plan.passes, 1u);
    }
}

TEST(Router, PicksOmegaBitForOmegaOnlyMembers)
{
    // (1,3,2,0) is Omega(2) but not F(2).
    const Router router(2);
    const auto plan = router.plan(Permutation({1, 3, 2, 0}));
    EXPECT_EQ(plan.strategy, RouteStrategy::OmegaBit);
}

TEST(Router, PicksTwoPassForTheRest)
{
    const Router router(4);
    Prng prng(3);
    int seen = 0;
    for (int trial = 0; trial < 50; ++trial) {
        const auto d = Permutation::random(16, prng);
        if (inFClass(d) || isOmega(d))
            continue;
        const auto plan = router.plan(d);
        EXPECT_EQ(plan.strategy, RouteStrategy::TwoPass);
        EXPECT_EQ(plan.passes, 2u);
        ++seen;
    }
    EXPECT_GT(seen, 30);
}

TEST(Router, WaksmanPreferenceKnob)
{
    const Router router(4, /*prefer_waksman=*/true);
    Prng prng(5);
    for (int trial = 0; trial < 50; ++trial) {
        const auto d = Permutation::random(16, prng);
        if (inFClass(d) || isOmega(d))
            continue;
        const auto plan = router.plan(d);
        EXPECT_EQ(plan.strategy, RouteStrategy::Waksman);
        EXPECT_EQ(plan.passes, 1u);
        return;
    }
    FAIL() << "no generic permutation sampled";
}

TEST(Router, DeliversUnderEveryStrategy)
{
    for (bool prefer_waksman : {false, true}) {
        const Router router(5, prefer_waksman);
        Prng prng(7);
        const auto data = iotaData(32);
        // A workload mix covering every strategy.
        std::vector<Permutation> mix{
            randomFMember(5, prng),
            named::cyclicShift(5, 9).inverse(), // omega member
            Permutation::random(32, prng),
            Permutation::random(32, prng),
        };
        for (const auto &d : mix) {
            const auto out = router.route(d, data);
            for (Word i = 0; i < 32; ++i)
                ASSERT_EQ(out[d[i]], data[i])
                    << d.toString() << " waksman="
                    << prefer_waksman;
        }
    }
}

TEST(Router, PlansAreReusable)
{
    const Router router(4);
    Prng prng(9);
    const auto d = Permutation::random(16, prng);
    const auto plan = router.plan(d);
    for (int run = 0; run < 3; ++run) {
        std::vector<Word> data(16);
        for (Word i = 0; i < 16; ++i)
            data[i] = 100 * run + i;
        const auto out = router.execute(plan, data);
        for (Word i = 0; i < 16; ++i)
            EXPECT_EQ(out[d[i]], 100 * run + i);
    }
}

TEST(Router, StrategyNames)
{
    EXPECT_STREQ(routeStrategyName(RouteStrategy::SelfRouting),
                 "self-routing");
    EXPECT_STREQ(routeStrategyName(RouteStrategy::TwoPass),
                 "two-pass");
    EXPECT_STREQ(routeStrategyName(RouteStrategy::Waksman),
                 "waksman");
    EXPECT_STREQ(routeStrategyName(RouteStrategy::OmegaBit),
                 "omega-bit");
}

TEST(Router, SizeMismatchDies)
{
    const Router router(3);
    EXPECT_DEATH(router.plan(Permutation::identity(4)),
                 "does not match");
}

TEST(Router, CachedPlansAreCompacted)
{
    Prng prng(11);
    const unsigned n = 6;
    const Word N = Word{1} << n;
    const Router router(n);
    const Permutation f = randomFMember(n, prng);

    // The uncompacted plan carries the flat ctrl masks and dest.
    const RoutePlan fresh = router.plan(f);
    ASSERT_TRUE(fresh.fast);
    EXPECT_FALSE(fresh.fast->ctrl.empty());
    EXPECT_FALSE(fresh.fast->dest.empty());
    EXPECT_EQ(fresh.packed_ctrl.words, nullptr);

    // The cached one is slimmed to packed bits + the src gather
    // table execute() reads.
    const auto cached = router.planCached(f);
    ASSERT_TRUE(cached->fast);
    EXPECT_TRUE(cached->fast->ctrl.empty());
    EXPECT_TRUE(cached->fast->dest.empty());
    EXPECT_FALSE(cached->fast->src.empty());
    ASSERT_NE(cached->packed_ctrl.words, nullptr);

    // The packed bits are the plan's switch settings, bit for bit.
    const PackedStates want =
        router.setupEngine().packedStates(*fresh.fast);
    EXPECT_EQ(cached->packed_ctrl.n, want.n);
    EXPECT_EQ(cached->packed_ctrl.words_per_stage,
              want.words_per_stage);
    for (unsigned s = 0; s < 2 * n - 1; ++s)
        for (Word sw = 0; sw < N / 2; ++sw)
            ASSERT_EQ(cached->packed_ctrl.get(s, sw),
                      want.get(s, sw))
                << "stage " << s << " switch " << sw;

    // And the compacted plan still delivers.
    const auto data = iotaData(N);
    const auto out = router.execute(*cached, data);
    for (Word i = 0; i < N; ++i)
        EXPECT_EQ(out[f[i]], data[i]);

    EXPECT_GT(router.planCacheBytes(), 0u);
}

TEST(Router, TwoPassPlansCacheWithoutPackedBits)
{
    Prng prng(13);
    const unsigned n = 4;
    const Word N = Word{1} << n;
    const Router router(n);
    for (int trial = 0; trial < 50; ++trial) {
        const auto d = Permutation::random(N, prng);
        const auto cached = router.planCached(d);
        if (cached->strategy != RouteStrategy::TwoPass)
            continue;
        // The composed mapping carries no ctrl masks, so there is
        // nothing to compact — and it must still execute.
        EXPECT_EQ(cached->packed_ctrl.words, nullptr);
        const auto data = iotaData(N);
        const auto out = router.execute(*cached, data);
        for (Word i = 0; i < N; ++i)
            EXPECT_EQ(out[d[i]], data[i]);
        return;
    }
    FAIL() << "no two-pass permutation sampled";
}

TEST(Router, CachedWaksmanPlansKeepTheirStates)
{
    // The resilient layer replays cached Waksman plans from
    // plan->states; compaction must leave them intact.
    Prng prng(15);
    const unsigned n = 4;
    const Word N = Word{1} << n;
    const Router router(n, /*prefer_waksman=*/true);
    for (int trial = 0; trial < 50; ++trial) {
        const auto d = Permutation::random(N, prng);
        const auto cached = router.planCached(d);
        if (cached->strategy != RouteStrategy::Waksman)
            continue;
        EXPECT_TRUE(cached->states.has_value());
        return;
    }
    FAIL() << "no waksman permutation sampled";
}

TEST(Router, ByteAccountingTracksInsertsAndClear)
{
    Prng prng(17);
    const unsigned n = 6;
    const Router router(n, false, /*capacity=*/32, /*shards=*/4);
    EXPECT_EQ(router.planCacheBytes(), 0u);

    std::size_t prev = 0;
    for (int i = 0; i < 8; ++i) {
        router.planCached(randomFMember(n, prng));
        EXPECT_GT(router.planCacheBytes(), prev);
        prev = router.planCacheBytes();
    }

    // cacheStats' per-shard bytes sum to the total, and the shard
    // arenas report the packed blocks resident.
    std::size_t sum = 0, arena_resident = 0;
    for (const CacheShardStats &s : router.cacheStats()) {
        sum += s.bytes;
        arena_resident += s.arena_resident_bytes;
    }
    EXPECT_EQ(sum, router.planCacheBytes());
    EXPECT_GT(arena_resident, 0u);

    router.clearPlanCache();
    EXPECT_EQ(router.planCacheBytes(), 0u);
}

TEST(Router, ByteBudgetEvictsLeastRecentlyUsed)
{
    Prng prng(19);
    const unsigned n = 8;
    // Find the per-plan footprint, then budget for about three.
    std::size_t per_plan;
    {
        const Router probe(n);
        probe.planCached(randomFMember(n, prng));
        per_plan = probe.planCacheBytes();
        ASSERT_GT(per_plan, 0u);
    }
    const std::size_t budget = 3 * per_plan + per_plan / 2;
    const Router router(n, false, /*capacity=*/64, /*shards=*/2,
                        obs::defaultRegistry(),
                        /*plan_cache_bytes=*/budget);
    EXPECT_EQ(router.planCacheByteBudget(), budget);

    std::vector<Permutation> perms;
    for (int i = 0; i < 12; ++i)
        perms.push_back(randomFMember(n, prng));
    // Hold the first plan's handle across its eviction.
    const auto held = router.planCached(perms[0]);
    for (const auto &d : perms)
        router.planCached(d);

    // The budget kept the cache to ~3 entries despite capacity 64.
    EXPECT_LE(router.planCacheBytes(), budget);
    EXPECT_LT(router.planCacheSize(), perms.size());
    EXPECT_GT(router.planCacheEvictions(), 0u);

    // The held (evicted) plan's packed block outlives eviction: the
    // deleter keeps the shard arena alive and the plan executes.
    ASSERT_NE(held->packed_ctrl.words, nullptr);
    const Word N = Word{1} << n;
    const auto data = iotaData(N);
    const auto out = router.execute(*held, data);
    for (Word i = 0; i < N; ++i)
        EXPECT_EQ(out[perms[0][i]], data[i]);
}

} // namespace
} // namespace srbenes
