/**
 * @file
 * Tests for the Permutation value type, including the paper's
 * composition convention (Section II closing example).
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/permutation.hh"

namespace srbenes
{
namespace
{

TEST(Permutation, ValidityChecks)
{
    EXPECT_TRUE(Permutation::isValid({0, 1, 2, 3}));
    EXPECT_TRUE(Permutation::isValid({3, 1, 0, 2}));
    EXPECT_FALSE(Permutation::isValid({0, 0, 2, 3})); // duplicate
    EXPECT_FALSE(Permutation::isValid({0, 1, 2, 4})); // out of range
    EXPECT_FALSE(Permutation::isValid({}));           // empty
}

TEST(Permutation, IdentityMapsEachToItself)
{
    const auto id = Permutation::identity(8);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(id[i], i);
}

TEST(Permutation, Log2Size)
{
    EXPECT_EQ(Permutation::identity(8).log2Size(), 3u);
    EXPECT_EQ(Permutation::identity(1).log2Size(), 0u);
}

TEST(Permutation, InverseUndoes)
{
    const Permutation p{2, 0, 3, 1};
    const Permutation inv = p.inverse();
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(inv[p[i]], i);
    EXPECT_EQ(p.then(inv), Permutation::identity(4));
    EXPECT_EQ(inv.then(p), Permutation::identity(4));
}

TEST(Permutation, PaperProductExample)
{
    // Section II: A = (3,0,1,2), B = (0,1,3,2), A o B = (2,0,1,3).
    const Permutation a{3, 0, 1, 2};
    const Permutation b{0, 1, 3, 2};
    EXPECT_EQ(a.then(b), Permutation({2, 0, 1, 3}));
}

TEST(Permutation, ApplyToMovesDataToDestinations)
{
    const Permutation p{2, 0, 1};
    const std::vector<int> data{10, 20, 30};
    const auto out = p.applyTo(data);
    // Element at input i lands at position p[i].
    EXPECT_EQ(out, (std::vector<int>{20, 30, 10}));
}

TEST(Permutation, ApplyToIsInvertedByInverse)
{
    Prng prng(3);
    const auto p = Permutation::random(16, prng);
    std::vector<Word> data(16);
    for (std::size_t i = 0; i < 16; ++i)
        data[i] = 100 + i;
    EXPECT_EQ(p.inverse().applyTo(p.applyTo(data)), data);
}

TEST(Permutation, RandomIsValidAndDeterministic)
{
    Prng a(99), b(99);
    for (int trial = 0; trial < 20; ++trial) {
        const auto pa = Permutation::random(32, a);
        const auto pb = Permutation::random(32, b);
        EXPECT_EQ(pa, pb);
        EXPECT_TRUE(Permutation::isValid(pa.dest()));
    }
}

TEST(Permutation, RandomCoversAllPermutationsOfThree)
{
    // Fisher-Yates should reach every arrangement of a 3-element set.
    Prng prng(5);
    std::set<std::string> seen;
    for (int trial = 0; trial < 300; ++trial)
        seen.insert(Permutation::random(3, prng).toString());
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Permutation, ToString)
{
    EXPECT_EQ(Permutation({1, 0}).toString(), "(1, 0)");
    EXPECT_EQ(Permutation::identity(3).toString(), "(0, 1, 2)");
}

TEST(Permutation, ThenAssociativity)
{
    Prng prng(17);
    const auto a = Permutation::random(16, prng);
    const auto b = Permutation::random(16, prng);
    const auto c = Permutation::random(16, prng);
    EXPECT_EQ(a.then(b).then(c), a.then(b.then(c)));
}

} // namespace
} // namespace srbenes
