/**
 * @file
 * Streaming-engine tests: the lock-free SPSC ring, the 128-bit
 * permutation hash, an 8-thread hammer on the Router's sharded plan
 * cache, and end-to-end StreamEngine runs checked payload-for-payload
 * against Permutation::applyTo and the reference simulator.
 */

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/router.hh"
#include "core/self_routing.hh"
#include "core/stream.hh"
#include "perm/f_class.hh"
#include "perm/permutation.hh"

namespace
{

using namespace srbenes;

std::vector<Word>
iotaPayload(std::size_t size, Word base)
{
    std::vector<Word> v(size);
    for (std::size_t i = 0; i < size; ++i)
        v[i] = base + i;
    return v;
}

// ------------------------------------------------------------ Hash128

TEST(Hash128Test, EqualPermutationsHashEqual)
{
    Prng prng(41);
    const Permutation d = Permutation::random(64, prng);
    const Permutation copy(d.dest());
    EXPECT_EQ(hashPermutation128(d), hashPermutation128(copy));
}

TEST(Hash128Test, DistinctPermutationsHashDistinct)
{
    // Not a collision-resistance proof, just a smoke check that the
    // lanes actually mix: many random and near-identical patterns
    // must produce unique 128-bit values.
    Prng prng(42);
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::vector<Word>>
        seen;
    auto check = [&](const Permutation &d) {
        const Hash128 h = hashPermutation128(d);
        auto [it, inserted] =
            seen.try_emplace({h.lo, h.hi}, d.dest());
        if (!inserted) {
            EXPECT_EQ(it->second, d.dest()) << "128-bit collision";
        }
    };
    for (int rep = 0; rep < 200; ++rep)
        check(Permutation::random(64, prng));
    // Adjacent transpositions of the identity differ in two words.
    std::vector<Word> dest(64);
    for (Word i = 0; i < 64; ++i)
        dest[i] = i;
    check(Permutation(dest));
    for (Word i = 0; i + 1 < 64; ++i) {
        std::swap(dest[i], dest[i + 1]);
        check(Permutation(dest));
        std::swap(dest[i], dest[i + 1]);
    }
    EXPECT_GE(seen.size(), 200u);
}

TEST(Hash128Test, SizeIsPartOfTheHash)
{
    const Permutation a(std::vector<Word>{0, 1});
    const Permutation b(std::vector<Word>{0, 1, 2, 3});
    EXPECT_FALSE(hashPermutation128(a) == hashPermutation128(b));
}

// ----------------------------------------------------------- SpscRing

TEST(SpscRingTest, FillDrainAndWrap)
{
    SpscRing<int> ring(4);
    EXPECT_TRUE(ring.empty());
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(ring.tryPush(round * 10 + i));
        int overflow = 99;
        EXPECT_FALSE(ring.tryPush(std::move(overflow)));
        for (int i = 0; i < 4; ++i) {
            int out = -1;
            ASSERT_TRUE(ring.tryPop(out));
            EXPECT_EQ(out, round * 10 + i);
        }
        int out = -1;
        EXPECT_FALSE(ring.tryPop(out));
        EXPECT_TRUE(ring.empty());
    }
}

TEST(SpscRingTest, FailedPushKeepsValueIntact)
{
    SpscRing<std::vector<int>> ring(2);
    EXPECT_TRUE(ring.tryPush(std::vector<int>{1}));
    EXPECT_TRUE(ring.tryPush(std::vector<int>{2}));
    std::vector<int> v{3, 4, 5};
    EXPECT_FALSE(ring.tryPush(std::move(v)));
    EXPECT_EQ(v, (std::vector<int>{3, 4, 5}));
}

TEST(SpscRingTest, TwoThreadStressPreservesFifo)
{
    // Yield when the ring pushes back: on a single-core host a bare
    // spin burns a whole scheduler quantum per failed attempt.
    constexpr std::uint64_t kCount = 100000;
    SpscRing<std::uint64_t> ring(64);
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount;) {
            std::uint64_t v = i;
            if (ring.tryPush(std::move(v)))
                ++i;
            else
                // srb-lint: allow(SRB005) the bare ring is under
                // test here, deliberately without a Doorbell.
                std::this_thread::yield();
        }
    });
    std::uint64_t expect = 0;
    bool ordered = true;
    while (expect < kCount) {
        std::uint64_t out;
        if (ring.tryPop(out)) {
            ordered = ordered && out == expect;
            ++expect;
        } else {
            // srb-lint: allow(SRB005) see above: ring-only test.
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ordered);
    EXPECT_TRUE(ring.empty());
}

// -------------------------------------------- Router under contention

TEST(RouterConcurrency, EightThreadsHammerThePlanCache)
{
    // 8 threads route a working set larger than the cache through one
    // shared Router: every output must still be exact, and the
    // sharded counters must balance (probes == hits + misses, final
    // size within capacity).
    const unsigned n = 5;
    const Word N = Word{1} << n;
    constexpr unsigned kThreads = 8;
    constexpr int kPatterns = 12;
    constexpr int kIters = 60;
    const Router router(n, false, /*capacity=*/8, /*shards=*/4);

    Prng seed_prng(43);
    std::vector<Permutation> patterns;
    for (int i = 0; i < kPatterns; ++i)
        patterns.push_back(randomFMember(n, seed_prng));

    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Prng prng(100 + t);
            for (int it = 0; it < kIters; ++it) {
                const Permutation &d =
                    patterns[prng.below(kPatterns)];
                const auto plan = router.planCached(d);
                if (plan->perm != d) {
                    ++failures[t];
                    continue;
                }
                if (it % 4 == 0) {
                    std::vector<std::vector<Word>> batch(
                        3, iotaPayload(N, t * 1000));
                    const auto outs =
                        router.executeMany(*plan, batch, 2);
                    for (const auto &out : outs)
                        for (Word i = 0; i < N; ++i)
                            if (out[d[i]] != batch[0][i])
                                ++failures[t];
                } else {
                    const auto out =
                        router.execute(*plan, iotaPayload(N, it));
                    for (Word i = 0; i < N; ++i)
                        if (out[d[i]] != Word(it) + i)
                            ++failures[t];
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(failures[t], 0) << "thread " << t;

    const auto stats = router.cacheStats();
    EXPECT_EQ(stats.size(), router.planCacheShards());
    std::size_t hits = 0, misses = 0, size = 0;
    for (const auto &s : stats) {
        hits += s.hits;
        misses += s.misses;
        size += s.size;
    }
    EXPECT_EQ(hits, router.planCacheHits());
    EXPECT_EQ(misses, router.planCacheMisses());
    EXPECT_EQ(hits + misses,
              std::size_t{kThreads} * kIters);
    EXPECT_LE(size, 8u);
    EXPECT_GT(hits, 0u);
    // 12 patterns can't fit in 8 slots, so evictions must occur.
    EXPECT_GT(router.planCacheEvictions(), 0u);
}

// -------------------------------------------------------- StreamEngine

/**
 * Drives a StreamEngine from this thread: submits @p total requests
 * over @p patterns, polling whenever the ring pushes back, and
 * returns every result received.
 */
std::vector<StreamResult>
pump(StreamEngine &eng, StreamEngine::Producer &prod,
     const std::vector<std::shared_ptr<const Permutation>> &patterns,
     std::uint64_t total, Prng &prng)
{
    const Word N = eng.numLines();
    std::vector<StreamResult> results;
    results.reserve(total);
    StreamResult res;
    std::uint64_t id = 0;
    while (id < total) {
        const auto &perm = patterns[prng.below(patterns.size())];
        std::vector<Word> payload = iotaPayload(N, id * N);
        while (!prod.trySubmit(id, perm, payload))
            if (prod.tryPoll(res))
                results.push_back(std::move(res));
        ++id;
        if (prod.tryPoll(res))
            results.push_back(std::move(res));
    }
    while (prod.received() < prod.submitted())
        if (prod.tryPoll(res))
            results.push_back(std::move(res));
    return results;
}

TEST(StreamEngineTest, RoutesEveryRequestExactly)
{
    const unsigned n = 6;
    const Word N = Word{1} << n;
    StreamOptions opts;
    opts.workers = 2;
    opts.ring_capacity = 32; // small: exercises backpressure
    opts.inline_max_n = 0;   // ring mechanics under test
    StreamEngine eng(n, opts);

    Prng prng(44);
    std::vector<std::shared_ptr<const Permutation>> patterns;
    for (int i = 0; i < 6; ++i)
        patterns.push_back(std::make_shared<const Permutation>(
            randomFMember(n, prng)));
    // Record which pattern each id used so results can be verified
    // after the fact (results may arrive out of order across
    // workers).
    std::vector<std::size_t> pattern_of;

    eng.start();
    auto &prod = eng.producer(0);
    constexpr std::uint64_t kTotal = 500;
    std::vector<StreamResult> results;
    {
        Prng choose(45);
        StreamResult res;
        for (std::uint64_t id = 0; id < kTotal; ++id) {
            const std::size_t pi = choose.below(patterns.size());
            pattern_of.push_back(pi);
            std::vector<Word> payload = iotaPayload(N, id * N);
            while (!prod.trySubmit(id, patterns[pi], payload))
                if (prod.tryPoll(res))
                    results.push_back(std::move(res));
            if (prod.tryPoll(res))
                results.push_back(std::move(res));
        }
        while (prod.received() < prod.submitted())
            if (prod.tryPoll(res))
                results.push_back(std::move(res));
    }
    eng.stop();
    EXPECT_FALSE(eng.running());

    ASSERT_EQ(results.size(), kTotal);
    std::vector<bool> seen(kTotal, false);
    for (const auto &res : results) {
        ASSERT_LT(res.id, kTotal);
        EXPECT_FALSE(seen[res.id]) << "duplicate id " << res.id;
        seen[res.id] = true;
        const Permutation &d = *patterns[pattern_of[res.id]];
        EXPECT_EQ(res.payload, d.applyTo(iotaPayload(N, res.id * N)))
            << "id " << res.id;
        EXPECT_GE(res.complete_ns, res.submit_ns);
    }

    const StreamStats st = eng.stats();
    EXPECT_EQ(st.requests, kTotal);
    EXPECT_EQ(st.payload_words, kTotal * N);
    EXPECT_EQ(st.local_hits + st.shared_lookups, kTotal);
    // Six recurring patterns: nearly everything after warmup is a
    // local hit.
    EXPECT_GE(st.local_hits, kTotal - 64);
    EXPECT_GT(st.perms_per_sec, 0.0);
    EXPECT_GE(st.p99_ns, st.p50_ns);
    EXPECT_EQ(st.shared_shards.size(), eng.router().planCacheShards());
}

TEST(StreamEngineTest, MatchesReferenceSimulatorForFMembers)
{
    // Bit-for-bit parity of streamed payloads against the reference
    // SelfRoutingBenes simulator on every sampled request.
    const unsigned n = 4;
    const Word N = Word{1} << n;
    const SelfRoutingBenes net(n);
    StreamOptions opts;
    opts.inline_max_n = 0; // ring mechanics under test
    StreamEngine eng(n, opts);

    Prng prng(46);
    std::vector<std::shared_ptr<const Permutation>> patterns;
    for (int i = 0; i < 4; ++i)
        patterns.push_back(std::make_shared<const Permutation>(
            randomFMember(n, prng)));

    eng.start();
    Prng choose(47);
    std::vector<std::size_t> pattern_of;
    auto &prod = eng.producer(0);
    std::vector<StreamResult> results;
    StreamResult res;
    constexpr std::uint64_t kTotal = 64;
    for (std::uint64_t id = 0; id < kTotal; ++id) {
        const std::size_t pi = choose.below(patterns.size());
        pattern_of.push_back(pi);
        std::vector<Word> payload = iotaPayload(N, id * 100);
        while (!prod.trySubmit(id, patterns[pi], payload))
            if (prod.tryPoll(res))
                results.push_back(std::move(res));
        if (prod.tryPoll(res))
            results.push_back(std::move(res));
    }
    while (prod.received() < prod.submitted())
        if (prod.tryPoll(res))
            results.push_back(std::move(res));
    eng.stop();

    ASSERT_EQ(results.size(), kTotal);
    for (const auto &r : results) {
        const auto ref = net.permutePayloads(
            *patterns[pattern_of[r.id]], iotaPayload(N, r.id * 100));
        ASSERT_TRUE(ref.has_value());
        EXPECT_EQ(r.payload, *ref) << "id " << r.id;
    }
}

TEST(StreamEngineTest, MultipleProducersAndColdPatterns)
{
    // Two producer threads, each mixing a hot set with freshly drawn
    // cold patterns (forcing shared-tier traffic and evictions).
    const unsigned n = 5;
    const Word N = Word{1} << n;
    StreamOptions opts;
    opts.workers = 2;
    opts.producers = 2;
    opts.shared_cache_capacity = 16;
    opts.local_cache_slots = 8;
    opts.inline_max_n = 0; // ring mechanics under test
    StreamEngine eng(n, opts);
    eng.start();

    constexpr std::uint64_t kPerProducer = 300;
    std::vector<std::vector<StreamResult>> got(2);
    std::vector<std::vector<Permutation>> used(2);
    std::vector<std::thread> pumps;
    for (unsigned p = 0; p < 2; ++p) {
        pumps.emplace_back([&, p] {
            Prng prng(48 + p);
            auto &prod = eng.producer(p);
            std::vector<std::shared_ptr<const Permutation>> hot;
            for (int i = 0; i < 3; ++i)
                hot.push_back(std::make_shared<const Permutation>(
                    randomFMember(n, prng)));
            StreamResult res;
            for (std::uint64_t id = 0; id < kPerProducer; ++id) {
                std::shared_ptr<const Permutation> perm;
                if (prng.below(8) == 0) // cold draw
                    perm = std::make_shared<const Permutation>(
                        randomFMember(n, prng));
                else
                    perm = hot[prng.below(hot.size())];
                used[p].push_back(*perm);
                std::vector<Word> payload = iotaPayload(N, id);
                while (!prod.trySubmit(id, perm, payload))
                    if (prod.tryPoll(res))
                        got[p].push_back(std::move(res));
                if (prod.tryPoll(res))
                    got[p].push_back(std::move(res));
            }
            while (prod.received() < prod.submitted())
                if (prod.tryPoll(res))
                    got[p].push_back(std::move(res));
        });
    }
    for (auto &t : pumps)
        t.join();
    eng.stop();

    for (unsigned p = 0; p < 2; ++p) {
        ASSERT_EQ(got[p].size(), kPerProducer) << "producer " << p;
        for (const auto &r : got[p]) {
            const Permutation &d = used[p][r.id];
            EXPECT_EQ(r.payload, d.applyTo(iotaPayload(N, r.id)));
        }
    }
    const StreamStats st = eng.stats();
    EXPECT_EQ(st.requests, 2 * kPerProducer);
    EXPECT_GT(st.shared_lookups, 0u);
    std::size_t shard_size = 0;
    for (const auto &s : st.shared_shards)
        shard_size += s.size;
    EXPECT_LE(shard_size, opts.shared_cache_capacity);
}

TEST(StreamEngineTest, ResultsRemainPollableAfterStop)
{
    const unsigned n = 3;
    const Word N = Word{1} << n;
    StreamOptions opts;
    opts.inline_max_n = 0; // ring mechanics under test
    StreamEngine eng(n, opts);
    auto perm = std::make_shared<const Permutation>(
        Permutation::identity(N));
    eng.start();
    auto &prod = eng.producer(0);
    for (std::uint64_t id = 0; id < 4; ++id) {
        std::vector<Word> payload = iotaPayload(N, id);
        ASSERT_TRUE(prod.trySubmit(id, perm, payload));
    }
    // Wait for completion without draining the result rings, then
    // stop; the four results must still be pollable.
    while (eng.stats().requests < 4)
        // srb-lint: allow(SRB005) no doorbell signals "processed
        // but undrained"; a bounded test-only poll is fine.
        std::this_thread::yield();
    eng.stop();
    StreamResult res;
    unsigned polled = 0;
    while (prod.tryPoll(res)) {
        EXPECT_EQ(res.payload, iotaPayload(N, res.id));
        ++polled;
    }
    EXPECT_EQ(polled, 4u);
}

TEST(StreamEngineTest, PumpHelperSurvivesRandomMix)
{
    // A denser randomized pass through the shared pump() helper.
    const unsigned n = 7;
    StreamOptions opts;
    opts.workers = 3;
    opts.inline_max_n = 0; // ring mechanics under test
    StreamEngine eng(n, opts);
    Prng prng(49);
    std::vector<std::shared_ptr<const Permutation>> patterns;
    for (int i = 0; i < 8; ++i)
        patterns.push_back(std::make_shared<const Permutation>(
            randomFMember(n, prng)));
    eng.start();
    const auto results =
        pump(eng, eng.producer(0), patterns, 400, prng);
    eng.stop();
    EXPECT_EQ(results.size(), 400u);
    EXPECT_EQ(eng.stats().requests, 400u);
}

TEST(StreamEngineTest, StatsAreSafeAgainstLifecycleTransitions)
{
    // Regression: stats() is documented live at any time, but the
    // elapsed-time stamps (start_ns_/stop_ns_) and lifecycle flags
    // used to be plain fields, so a stats()/running() poll racing
    // with resetStats() or stop() was a data race (caught under
    // tsan). The stamps are atomic now; hammer the exact interleave.
    const unsigned n = 4;
    const Word N = Word{1} << n;
    StreamOptions opts;
    opts.inline_max_n = 0; // worker threads must race stats()
    StreamEngine eng(n, opts);
    auto perm = std::make_shared<const Permutation>(
        Permutation::identity(N));
    eng.start();

    std::atomic<bool> done{false};
    std::thread observer([&] {
        // order: relaxed; the flag only bounds the poll loop, the
        // interesting synchronization is inside stats() itself.
        while (!done.load(std::memory_order_relaxed)) {
            const StreamStats st = eng.stats();
            EXPECT_GE(st.elapsed_sec, 0.0);
            (void)eng.running();
        }
    });

    auto &prod = eng.producer(0);
    StreamResult res;
    for (std::uint64_t id = 0; id < 64; ++id) {
        std::vector<Word> payload = iotaPayload(N, id);
        while (!prod.trySubmit(id, perm, payload))
            prod.tryPoll(res);
        if (id % 16 == 15) {
            while (prod.received() < prod.submitted())
                prod.tryPoll(res);
            eng.resetStats(); // races with the observer's stats()
        }
    }
    while (prod.received() < prod.submitted())
        prod.tryPoll(res);
    eng.stop(); // the stop_ns_/stopped_ publication also races
    // order: relaxed; thread join below is the synchronization.
    done.store(true, std::memory_order_relaxed);
    observer.join();

    EXPECT_FALSE(eng.running());
    EXPECT_GT(eng.stats().elapsed_sec, 0.0);
}

// ------------------------------------------- spillover + shared tier

TEST(StreamEngineTest, SpilloverPromotesSharedCacheHits)
{
    // Regression: pattern-affine dispatch alone sends each pattern
    // to exactly ONE worker, so the shared tier records plans but
    // never a cross-worker hit (shared_hits == 0 in the throughput
    // bench). A full affine ring must now spill to the next worker,
    // whose local miss HITS the shared tier instead of re-planning.
    const unsigned n = 5;
    const Word N = Word{1} << n;
    StreamOptions opts;
    opts.workers = 2;
    opts.ring_capacity = 2; // the clamp floor: 3rd submit spills
    opts.inline_max_n = 0;  // the spill is a ring-path mechanism
    StreamEngine eng(n, opts);

    Prng prng(50);
    auto perm = std::make_shared<const Permutation>(
        randomFMember(n, prng));
    // Warm the pattern into the shared tier from this thread — the
    // stand-in for another worker having planned it earlier.
    (void)eng.router().planCached(*perm);
    const std::size_t hits0 = eng.router().planCacheHits();

    // Pre-start so nothing drains: the affine ring fills at 2 and
    // the next two submissions spill to the second worker.
    auto &prod = eng.producer(0);
    for (std::uint64_t id = 0; id < 4; ++id) {
        std::vector<Word> payload = iotaPayload(N, id);
        ASSERT_TRUE(prod.trySubmit(id, perm, payload)) << "id " << id;
    }
    eng.start();
    StreamResult res;
    std::set<unsigned> served_by;
    for (unsigned got = 0; got < 4; ++got) {
        prod.awaitResult(res);
        EXPECT_EQ(res.payload, perm->applyTo(iotaPayload(N, res.id)));
        served_by.insert(res.worker);
    }
    eng.stop();

    const StreamStats st = eng.stats();
    EXPECT_EQ(st.sheds, 0u);
    EXPECT_EQ(st.requests, 4u);
    EXPECT_EQ(served_by.size(), 2u)
        << "the spill must reach the second worker";
    // Both workers' first-touch local misses consulted the shared
    // tier and HIT the pre-planned entry.
    EXPECT_GE(eng.router().planCacheHits(), hits0 + 2);
    EXPECT_GE(st.shared_lookups, 2u);
}

// ------------------------------------------------- inline small-N path

TEST(StreamEngineTest, InlinePathMatchesRingPathOutcomes)
{
    // The same request sequence through an inline-path engine and a
    // ring-path engine must produce indistinguishable outcomes:
    // payloads, status, tier, and the plan-tier counter identity.
    const unsigned n = 4;
    const Word N = Word{1} << n;
    ASSERT_LE(n, StreamOptions{}.inline_max_n)
        << "n must sit under the default inline threshold";

    Prng prng(51);
    std::vector<std::shared_ptr<const Permutation>> patterns;
    for (int i = 0; i < 4; ++i)
        patterns.push_back(std::make_shared<const Permutation>(
            randomFMember(n, prng)));

    StreamOptions ring_opts;
    ring_opts.inline_max_n = 0;
    StreamEngine ring_eng(n, ring_opts);
    StreamEngine inline_eng(n, {}); // default: inline at n = 4

    constexpr std::uint64_t kTotal = 200;
    Prng choose(52);
    std::vector<std::size_t> pattern_of;
    std::vector<std::uint64_t> deadline_of;
    for (std::uint64_t id = 0; id < kTotal; ++id) {
        pattern_of.push_back(choose.below(patterns.size()));
        // Every 16th request carries a long-expired absolute
        // deadline; both paths must fail it identically.
        deadline_of.push_back(id % 16 == 15 ? 1 : 0);
    }

    auto run = [&](StreamEngine &eng) {
        eng.start();
        auto &prod = eng.producer(0);
        std::vector<StreamResult> results(kTotal);
        StreamResult res;
        for (std::uint64_t id = 0; id < kTotal; ++id) {
            std::vector<Word> payload = iotaPayload(N, id * N);
            while (!prod.trySubmit(id, patterns[pattern_of[id]],
                                   payload, deadline_of[id]))
                if (prod.tryPoll(res))
                    results[res.id] = std::move(res);
            if (prod.tryPoll(res))
                results[res.id] = std::move(res);
        }
        while (prod.received() < prod.submitted())
            if (prod.tryPoll(res))
                results[res.id] = std::move(res);
        eng.stop();
        return results;
    };
    const auto ring_results = run(ring_eng);
    const auto inline_results = run(inline_eng);

    for (std::uint64_t id = 0; id < kTotal; ++id) {
        const StreamResult &a = ring_results[id];
        const StreamResult &b = inline_results[id];
        EXPECT_EQ(a.status, b.status) << "id " << id;
        EXPECT_EQ(a.tier, b.tier) << "id " << id;
        EXPECT_EQ(a.payload, b.payload) << "id " << id;
        if (deadline_of[id] != 0) {
            // Expired before service on both paths: the original
            // payload comes back unrouted.
            EXPECT_EQ(b.status, RouteErrc::DeadlineExceeded);
            EXPECT_EQ(b.tier, ServeTier::Failed);
            EXPECT_EQ(b.payload, iotaPayload(N, id * N));
        } else {
            EXPECT_EQ(b.status, RouteErrc::Ok);
            EXPECT_EQ(b.tier, ServeTier::Primary);
            EXPECT_EQ(b.payload, patterns[pattern_of[id]]->applyTo(
                                     iotaPayload(N, id * N)));
        }
    }

    const StreamStats rs = ring_eng.stats();
    const StreamStats is = inline_eng.stats();
    EXPECT_EQ(rs.inline_served, 0u);
    EXPECT_EQ(is.inline_served, kTotal);
    EXPECT_EQ(is.requests, kTotal);
    // Deadline-expired requests never reach the plan tiers; every
    // other request resolves in exactly one of them — on both paths.
    EXPECT_EQ(is.local_hits + is.shared_lookups + is.deadline_expired,
              is.requests);
    EXPECT_EQ(rs.local_hits + rs.shared_lookups + rs.deadline_expired,
              rs.requests);
    EXPECT_EQ(is.deadline_expired, rs.deadline_expired);
    EXPECT_GT(is.local_hits, 0u);
}

TEST(StreamEngineTest, InlinePathShedsOnFullResultQueue)
{
    // The inline result queue mirrors ring_capacity, preserving the
    // shed-on-full contract: a refused submit leaves the payload
    // untouched and counts a shed, and draining reopens the path.
    const unsigned n = 3;
    const Word N = Word{1} << n;
    StreamOptions opts;
    opts.ring_capacity = 2; // inline queue capacity after the clamp
    StreamEngine eng(n, opts);
    auto perm = std::make_shared<const Permutation>(
        Permutation::identity(N));
    auto &prod = eng.producer(0);

    std::vector<Word> payload = iotaPayload(N, 0);
    ASSERT_TRUE(prod.trySubmit(0, perm, payload));
    payload = iotaPayload(N, 1);
    ASSERT_TRUE(prod.trySubmit(1, perm, payload));
    std::vector<Word> third = iotaPayload(N, 2);
    EXPECT_FALSE(prod.trySubmit(2, perm, third));
    EXPECT_EQ(third, iotaPayload(N, 2)) << "shed must not consume";
    EXPECT_EQ(eng.stats().sheds, 1u);
    EXPECT_EQ(eng.stats().inline_served, 2u);

    StreamResult res;
    ASSERT_TRUE(prod.tryPoll(res));
    EXPECT_EQ(res.payload, iotaPayload(N, res.id));
    ASSERT_TRUE(prod.tryPoll(res));
    EXPECT_FALSE(prod.tryPoll(res));
    EXPECT_TRUE(prod.trySubmit(2, perm, third));
    ASSERT_TRUE(prod.tryPoll(res));
    EXPECT_EQ(res.id, 2u);
    EXPECT_EQ(prod.submitted(), prod.received());
}

TEST(StreamEngineTest, InlinePathServesWithoutWorkerRoundTrip)
{
    // Results are available to tryPoll immediately after trySubmit —
    // no start() and no worker wakeup involved — and the blocking
    // pollers see them too.
    const unsigned n = 5;
    const Word N = Word{1} << n;
    StreamEngine eng(n, {});
    Prng prng(53);
    auto perm = std::make_shared<const Permutation>(
        randomFMember(n, prng));
    eng.start();
    auto &prod = eng.producer(0);
    for (std::uint64_t id = 0; id < 8; ++id) {
        std::vector<Word> payload = iotaPayload(N, id);
        ASSERT_TRUE(prod.trySubmit(id, perm, payload));
        StreamResult res;
        ASSERT_TRUE(prod.awaitResultFor(res, 1'000'000'000ull));
        EXPECT_EQ(res.id, id);
        EXPECT_EQ(res.payload, perm->applyTo(iotaPayload(N, id)));
    }
    eng.stop();
    const StreamStats st = eng.stats();
    EXPECT_EQ(st.inline_served, 8u);
    EXPECT_EQ(st.requests, 8u);
}

} // namespace
