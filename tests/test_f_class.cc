/**
 * @file
 * Tests for F(n), the class realizable by the self-routing network:
 * the Theorem 1 recursive test is cross-validated exhaustively
 * against the full network simulation, and the containment theorems
 * (BPC in F, InverseOmega in F) are property-tested.
 */

#include <algorithm>
#include <numeric>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "perm/bpc.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(FClass, AllOfSizeTwoIsInF)
{
    EXPECT_TRUE(inFClass(Permutation({0, 1})));
    EXPECT_TRUE(inFClass(Permutation({1, 0})));
}

TEST(FClass, PaperFigFiveCounterexample)
{
    // Fig. 5: D = (1, 3, 2, 0) cannot be performed on B(2) by the
    // self-routing scheme.
    EXPECT_FALSE(inFClass(Permutation({1, 3, 2, 0})));
}

TEST(FClass, SplitStageZeroEquations)
{
    // Eqs. (1) and (2) on a hand example: tags (2, 1, 3, 0).
    // Switch 0: upper tag 2 (bit0 = 0) -> straight: U_0 = 2, L_0 = 1.
    // Switch 1: upper tag 3 (bit0 = 1) -> crossed:  U_1 = 0, L_1 = 3.
    const auto [u, l] = splitStageZero({2, 1, 3, 0});
    EXPECT_EQ(u, (std::vector<Word>{2, 0}));
    EXPECT_EQ(l, (std::vector<Word>{1, 3}));
}

TEST(FClass, TheoremOneMatchesNetworkExhaustivelyN4)
{
    const SelfRoutingBenes net(2);
    std::vector<Word> dest(4);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation p(dest);
        ASSERT_EQ(net.route(p).success, inFClass(p)) << p.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(FClass, TheoremOneMatchesNetworkExhaustivelyN8)
{
    // The central cross-check of the reproduction: Theorem 1's
    // recursive characterization agrees with the simulated fabric on
    // all 40320 permutations of 8 elements.
    const SelfRoutingBenes net(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation p(dest);
        ASSERT_EQ(net.route(p).success, inFClass(p)) << p.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class FContainment : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FContainment, TheoremTwoBpcSubsetOfF)
{
    const unsigned n = GetParam();
    Prng prng(n * 7 + 1);
    for (int trial = 0; trial < 60; ++trial) {
        const BpcSpec spec = BpcSpec::random(n, prng);
        EXPECT_TRUE(inFClass(spec.toPermutation()))
            << spec.toString();
    }
}

TEST_P(FContainment, TheoremThreeInverseOmegaSubsetOfF)
{
    const unsigned n = GetParam();
    Prng prng(n * 7 + 2);
    // Random inverse-omega permutations: route a random tag vector
    // backwards is hard to sample directly, so use the generators
    // plus random products of a p-ordering and a cyclic shift.
    for (int trial = 0; trial < 40; ++trial) {
        const Word p = 2 * prng.below(Word{1} << (n - 1)) + 1;
        const Word k = prng.below(Word{1} << n);
        const Permutation d = named::pOrderingShift(n, p, k);
        ASSERT_TRUE(isInverseOmega(d));
        EXPECT_TRUE(inFClass(d)) << d.toString();
    }
}

TEST_P(FContainment, TableOneRowsAreInF)
{
    const unsigned n = GetParam();
    if (n % 2 != 0)
        return;
    for (const auto &row : named::tableOne(n))
        EXPECT_TRUE(inFClass(row.spec.toPermutation())) << row.name;
}

INSTANTIATE_TEST_SUITE_P(Widths, FContainment,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u,
                                           10u));

TEST(FClass, InverseOmegaExhaustivelyInsideFN8)
{
    // Theorem 3 checked exhaustively at N = 8: every inverse-omega
    // permutation is in F, and the containment is strict.
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    std::uint64_t inv_count = 0, f_count = 0;
    do {
        const Permutation p(dest);
        const bool in_f = inFClass(p);
        const bool in_inv = isInverseOmega(p);
        f_count += in_f;
        inv_count += in_inv;
        if (in_inv) {
            ASSERT_TRUE(in_f) << p.toString();
        }
    } while (std::next_permutation(dest.begin(), dest.end()));
    EXPECT_EQ(inv_count, 4096u);
    EXPECT_GT(f_count, inv_count); // strictly richer
}

TEST(FClass, NotClosedUnderProduct)
{
    // Section II closing remark: A, B in F(2) but A o B not in F(2).
    const Permutation a{3, 0, 1, 2};
    const Permutation b{0, 1, 3, 2};
    EXPECT_TRUE(inFClass(a));
    EXPECT_TRUE(inFClass(b));
    EXPECT_FALSE(inFClass(a.then(b)));
}

TEST(FClass, OmegaNotSubsetOfF)
{
    // (1,3,2,0) separates Omega(2) from F(2).
    const Permutation d{1, 3, 2, 0};
    EXPECT_TRUE(isOmega(d));
    EXPECT_FALSE(inFClass(d));
}

TEST(FClass, RejectionComesFromDuplicateHalf)
{
    // For the Fig. 5 counterexample the failure is visible at stage
    // 0: both upper outputs carry tags with high bit 1 (U = {3, 2}),
    // so the upper B(1) would need to deliver two signals to one
    // terminal.
    const auto [u, l] = splitStageZero({1, 3, 2, 0});
    EXPECT_EQ(u[0] >> 1, u[1] >> 1); // the collision
    EXPECT_TRUE(inFClassTags({0, 1, 2, 3}, 2));
}

TEST(FClass, FigFourBitReversalIsInF)
{
    EXPECT_TRUE(inFClass(named::bitReversal(3).toPermutation()));
}

class FSampler : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FSampler, AlwaysProducesMembers)
{
    const unsigned n = GetParam();
    Prng prng(n * 3 + 1);
    for (int trial = 0; trial < 50; ++trial) {
        const Permutation p = randomFMember(n, prng);
        ASSERT_TRUE(inFClass(p)) << p.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, FSampler,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u,
                                           10u));

TEST(FClass, SamplerHasFullSupportAtN4)
{
    // |F(2)| = 20 (exhaustive census); the constructive sampler must
    // be able to reach every member.
    Prng prng(999);
    std::set<std::string> seen;
    for (int trial = 0; trial < 5000; ++trial)
        seen.insert(randomFMember(2, prng).toString());
    EXPECT_EQ(seen.size(), 20u);
}

TEST(FClass, SamplerNeverEmitsFigFiveCounterexample)
{
    // ... and must never emit a non-member such as (1,3,2,0).
    Prng prng(1000);
    const Permutation bad{1, 3, 2, 0};
    for (int trial = 0; trial < 2000; ++trial)
        ASSERT_NE(randomFMember(2, prng), bad);
}

} // namespace
} // namespace srbenes
