/**
 * @file
 * Tests for the perfect-shuffle computer and its Section III
 * algorithm: primitive semantics, exhaustive equivalence with F(n)
 * at N = 8, the 4 lg N - 3 route count, and the omega /
 * inverse-omega schedule variants.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"
#include "simd/permute.hh"

namespace srbenes
{
namespace
{

TEST(Psc, ShuffleMovesRecordAlongSigma)
{
    ShuffleMachine m(3);
    m.loadIota(Permutation::identity(8));
    m.shuffleStep();
    for (Word i = 0; i < 8; ++i)
        EXPECT_EQ(m.pe(shuffle(i, 3)).r, i);
    EXPECT_EQ(m.unitRoutes(), 1u);
}

TEST(Psc, UnshuffleInvertsShuffle)
{
    ShuffleMachine m(4);
    Prng prng(1);
    m.loadIota(Permutation::random(16, prng));
    const auto before = m.payloads();
    m.shuffleStep();
    m.unshuffleStep();
    EXPECT_EQ(m.payloads(), before);
    EXPECT_EQ(m.unitRoutes(), 2u);
}

TEST(Psc, ExchangeSwapsAdjacentPairs)
{
    ShuffleMachine m(2);
    m.loadIota(Permutation::identity(4));
    m.exchange([](Word i) { return i == 2; });
    EXPECT_EQ(m.pe(0).r, 0u);
    EXPECT_EQ(m.pe(2).r, 3u);
    EXPECT_EQ(m.pe(3).r, 2u);
}

TEST(Psc, PermuteMatchesFClassExhaustivelyN8)
{
    ShuffleMachine m(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        m.loadIota(d);
        ASSERT_EQ(pscPermute(m).success, inFClass(d)) << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(Psc, AgreesWithCubeAlgorithm)
{
    // The PSC code is a mechanical simulation of the CCC loop; both
    // must deliver identical data layouts on F permutations.
    Prng prng(31);
    const unsigned n = 6;
    for (int trial = 0; trial < 20; ++trial) {
        const Permutation d = BpcSpec::random(n, prng).toPermutation();
        CubeMachine cube(n);
        ShuffleMachine psc(n);
        cube.loadIota(d);
        psc.loadIota(d);
        ASSERT_TRUE(cccPermute(cube).success);
        ASSERT_TRUE(pscPermute(psc).success);
        for (Word i = 0; i < cube.numPes(); ++i)
            EXPECT_EQ(cube.pe(i).r, psc.pe(i).r);
    }
}

class PscRouteCounts : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PscRouteCounts, GeneralCaseUsesFourLogNMinusThree)
{
    const unsigned n = GetParam();
    ShuffleMachine m(n);
    m.loadIota(named::bitReversal(n).toPermutation());
    const auto stats = pscPermute(m);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(stats.unit_routes, 4 * n - 3);
}

TEST_P(PscRouteCounts, OmegaVariantCheaper)
{
    const unsigned n = GetParam();
    if (n < 2)
        return;
    ShuffleMachine m(n);
    m.loadIota(named::cyclicShift(n, 1));
    const auto stats = pscPermute(m, PermClassHint::Omega);
    EXPECT_TRUE(stats.success);
    // One shuffle replaces the n-1 exchange/unshuffle pairs:
    // 1 + 1 + 2(n-1) = 2n routes.
    EXPECT_EQ(stats.unit_routes, 2u * n);
    EXPECT_LT(stats.unit_routes, 4u * n - 3);
}

TEST_P(PscRouteCounts, InverseOmegaVariantCheaper)
{
    const unsigned n = GetParam();
    if (n < 2)
        return;
    ShuffleMachine m(n);
    m.loadIota(named::pOrdering(n, 3));
    const auto stats = pscPermute(m, PermClassHint::InverseOmega);
    EXPECT_TRUE(stats.success);
    // Exchanges are skipped on the return sweep but the n-1 homing
    // shuffles remain: 2(n-1) + 1 + (n-1) = 3n - 2.
    EXPECT_EQ(stats.unit_routes, 3u * n - 2);
}

INSTANTIATE_TEST_SUITE_P(Widths, PscRouteCounts,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 10u));

TEST(Psc, OmegaVariantMatchesOmegaClassExhaustively)
{
    // With the omega-mode schedule the PSC realizes exactly Omega(3).
    ShuffleMachine m(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        m.loadIota(d);
        ASSERT_EQ(pscPermute(m, PermClassHint::Omega).success,
                  isOmega(d))
            << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(Psc, BpcFixedAxesSaveExchanges)
{
    const unsigned n = 6;
    const BpcSpec spec = named::segmentBitReversal(n, 2);
    ShuffleMachine m(n);
    m.loadIota(spec.toPermutation());
    const auto stats = pscPermute(m, PermClassHint::General, &spec);
    EXPECT_TRUE(stats.success);
    // All 2(n-1) shuffles/unshuffles remain; only 4 of the 2n-1
    // exchanges survive (dims 0, 1, 1, 0).
    EXPECT_EQ(stats.unit_routes, 2u * (n - 1) + 4u);
}

TEST(Psc, DataArrivesWithTags)
{
    ShuffleMachine m(5);
    Prng prng(41);
    for (int trial = 0; trial < 10; ++trial) {
        const Permutation d = BpcSpec::random(5, prng).toPermutation();
        m.loadIota(d);
        ASSERT_TRUE(pscPermute(m).success);
        for (Word i = 0; i < 32; ++i)
            EXPECT_EQ(m.pe(d[i]).r, i);
    }
}

} // namespace
} // namespace srbenes
