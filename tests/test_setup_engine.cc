/**
 * @file
 * Differential proof for the bit-sliced SetupEngine: its
 * word-parallel PackedStates production must be bit-for-bit equal to
 * FastEngine::planPackedStates (the per-switch scalar reference) —
 * exhaustively at n <= 3, randomized at n = 4..12 including non-F
 * permutations rejected identically, across every supported SIMD
 * level and under the SRBENES_DISABLE_SIMD escape hatch. Also covers
 * the batch API (threaded and serial shard paths agree with per-item
 * planning) and construction at larger n.
 */

#include <algorithm>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "rand_iters.hh"

#include "common/prng.hh"
#include "core/fast_engine.hh"
#include "core/fast_kernels.hh"
#include "core/router.hh"
#include "core/self_routing.hh"
#include "core/setup_engine.hh"
#include "perm/f_class.hh"
#include "perm/permutation.hh"

namespace
{

using namespace srbenes;

std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (simdLevelSupported(SimdLevel::Avx2))
        levels.push_back(SimdLevel::Avx2);
    if (simdLevelSupported(SimdLevel::Avx512))
        levels.push_back(SimdLevel::Avx512);
    return levels;
}

/** Restores the startup dispatch choice when a test ends. */
class KernelLevelGuard
{
  public:
    ~KernelLevelGuard() { setSimdLevel(detectSimdLevel()); }
};

void
expectSamePlan(const FastPlan &a, const FastPlan &b, unsigned n,
               const char *what)
{
    EXPECT_EQ(a.n, b.n) << what;
    EXPECT_EQ(a.success, b.success) << what << " n=" << n;
    EXPECT_EQ(a.ctrl, b.ctrl) << what << " n=" << n;
    EXPECT_EQ(a.dest, b.dest) << what << " n=" << n;
    EXPECT_EQ(a.src, b.src) << what << " n=" << n;
    EXPECT_EQ(a.misrouted_outputs, b.misrouted_outputs)
        << what << " n=" << n;
}

void
expectPackedParity(const FastEngine &eng, const SetupEngine &setup,
                   const Permutation &d, RoutingMode mode,
                   const char *what)
{
    const FastPlan plan = setup.plan(d, mode);
    expectSamePlan(plan, eng.routePlan(d, mode), eng.n(), what);

    const PackedStates scalar_ref = eng.planPackedStates(plan);
    const PackedStates sliced = setup.packedStates(plan);
    EXPECT_EQ(sliced.n, scalar_ref.n) << what;
    EXPECT_EQ(sliced.words_per_stage, scalar_ref.words_per_stage)
        << what;
    EXPECT_EQ(sliced.words, scalar_ref.words)
        << what << " n=" << eng.n();

    const SetupResult fused = setup.setupPacked(d, mode);
    EXPECT_EQ(fused.plan.success, plan.success) << what;
    EXPECT_EQ(fused.packed.words, scalar_ref.words) << what;
}

TEST(SetupEngine, ExhaustivePackedParityAtSmallN)
{
    KernelLevelGuard guard;
    for (unsigned n = 1; n <= 3; ++n) {
        const Word N = Word{1} << n;
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        std::vector<Word> dest(N);
        for (Word i = 0; i < N; ++i)
            dest[i] = i;
        do {
            const Permutation d(dest);
            for (SimdLevel level : supportedLevels()) {
                setSimdLevel(level);
                expectPackedParity(eng, setup, d,
                                   RoutingMode::SelfRouting,
                                   simdLevelName(level));
            }
        } while (std::next_permutation(dest.begin(), dest.end()));
    }
}

TEST(SetupEngine, RandomizedPackedParityIncludingMisroutes)
{
    KernelLevelGuard guard;
    Prng prng(91);
    for (unsigned n = 4; n <= 12; ++n) {
        const Word N = Word{1} << n;
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        for (int rep = 0, reps = randIters(n <= 8 ? 6 : 2); rep < reps; ++rep) {
            // An F member self-routes; an arbitrary permutation
            // usually does not — both must plan and pack identically
            // to the scalar reference, rejection included.
            const Permutation f = randomFMember(n, prng);
            const Permutation any = Permutation::random(N, prng);
            for (SimdLevel level : supportedLevels()) {
                setSimdLevel(level);
                expectPackedParity(eng, setup, f,
                                   RoutingMode::SelfRouting,
                                   simdLevelName(level));
                expectPackedParity(eng, setup, any,
                                   RoutingMode::SelfRouting,
                                   simdLevelName(level));
                expectPackedParity(eng, setup, any,
                                   RoutingMode::OmegaBit,
                                   simdLevelName(level));
            }
        }
    }
}

TEST(SetupEngine, NonFMembersAreRejectedIdentically)
{
    Prng prng(92);
    const unsigned n = 6;
    const Word N = Word{1} << n;
    const FastEngine eng(n);
    const SetupEngine setup(eng);
    unsigned rejected = 0;
    for (int rep = 0; rep < randIters(40); ++rep) {
        const Permutation any = Permutation::random(N, prng);
        const FastPlan a = setup.plan(any);
        const FastPlan b = eng.routePlan(any);
        EXPECT_EQ(a.success, b.success);
        EXPECT_EQ(a.misrouted_outputs, b.misrouted_outputs);
        if (!a.success)
            ++rejected;
    }
    // |F(n)| / (2^n)! is vanishing at n = 6: random draws must hit
    // the rejection path.
    EXPECT_GT(rejected, 0u);
}

TEST(SetupEngine, DisableSimdEnvKeepsParity)
{
    KernelLevelGuard guard;
    ASSERT_EQ(setenv("SRBENES_DISABLE_SIMD", "1", 1), 0);
    setSimdLevel(detectSimdLevel());
    ASSERT_EQ(activeSimdLevel(), SimdLevel::Scalar);

    Prng prng(93);
    for (unsigned n : {4u, 7u, 10u}) {
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        for (int rep = 0; rep < randIters(4); ++rep)
            expectPackedParity(eng, setup, randomFMember(n, prng),
                               RoutingMode::SelfRouting,
                               "SRBENES_DISABLE_SIMD");
    }
    ASSERT_EQ(unsetenv("SRBENES_DISABLE_SIMD"), 0);
}

TEST(SetupEngine, SetupManyMatchesPerItemPlansInOrder)
{
    Prng prng(94);
    const unsigned n = 7;
    const Word N = Word{1} << n;
    const FastEngine eng(n);
    const SetupEngine setup(eng);

    std::vector<Permutation> batch;
    for (int i = 0; i < 17; ++i) // odd size: uneven worker shards
        batch.push_back(i % 5 == 4 ? Permutation::random(N, prng)
                                   : randomFMember(n, prng));

    for (unsigned threads : {1u, 4u}) {
        const std::vector<FastPlan> plans =
            setup.setupMany(batch, RoutingMode::SelfRouting, threads);
        ASSERT_EQ(plans.size(), batch.size()) << threads;
        for (std::size_t i = 0; i < batch.size(); ++i)
            expectSamePlan(plans[i], eng.routePlan(batch[i]), n,
                           threads == 1 ? "serial batch"
                                        : "threaded batch");
    }

    EXPECT_TRUE(setup.setupMany({}).empty());
}

/**
 * The tiled differential oracle: setupTiled's arena-resident packed
 * bits must be bit-for-bit what the flat path would have produced
 * (packedStates over setupMany's FastPlans), success flags included.
 */
void
expectTiledMatchesFlat(const SetupEngine &setup,
                       const std::vector<Permutation> &batch,
                       RoutingMode mode, unsigned threads,
                       const std::shared_ptr<PlanArena> &arena,
                       const char *what)
{
    const TiledPlans tiled = setup.setupTiled(batch, mode, threads,
                                              arena);
    const std::vector<FastPlan> flat =
        setup.setupMany(batch, mode, threads);
    ASSERT_EQ(tiled.size(), batch.size()) << what;
    ASSERT_EQ(flat.size(), batch.size()) << what;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(tiled.success(i), flat[i].success)
            << what << " plan " << i;
        const PackedStates a = tiled.packedStates(i);
        const PackedStates b = setup.packedStates(flat[i]);
        EXPECT_EQ(a.n, b.n) << what;
        EXPECT_EQ(a.words_per_stage, b.words_per_stage) << what;
        EXPECT_EQ(a.words, b.words) << what << " plan " << i;
    }
}

TEST(SetupEngine, TiledMatchesFlatExhaustivelyAtSmallN)
{
    for (unsigned n = 1; n <= 3; ++n) {
        const Word N = Word{1} << n;
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        // Every permutation of N lines in ONE batch, against a tiny
        // arena so even this small batch straddles tile boundaries.
        std::vector<Word> dest(N);
        for (Word i = 0; i < N; ++i)
            dest[i] = i;
        std::vector<Permutation> batch;
        do {
            batch.emplace_back(dest);
        } while (std::next_permutation(dest.begin(), dest.end()));
        const auto arena = std::make_shared<PlanArena>(64);
        expectTiledMatchesFlat(setup, batch,
                               RoutingMode::SelfRouting, 1, arena,
                               "exhaustive");
    }
}

TEST(SetupEngine, TiledMatchesFlatRandomizedAcrossTileBoundaries)
{
    Prng prng(97);
    for (unsigned n = 4; n <= 12; n += 2) {
        const Word N = Word{1} << n;
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        // Odd batch sizes so the last tile is partial; a small arena
        // forces several tiles; a mix of F members (success) and
        // arbitrary permutations (mostly misroutes).
        for (const std::size_t B : {1u, 17u, 33u}) {
            std::vector<Permutation> batch;
            for (std::size_t i = 0; i < B; ++i)
                batch.push_back(i % 4 == 3
                                    ? Permutation::random(N, prng)
                                    : randomFMember(n, prng));
            const auto arena = std::make_shared<PlanArena>(
                (2 * n - 1) * (N / 2 / 8 + 8) * 3);
            for (unsigned threads : {1u, 4u}) {
                expectTiledMatchesFlat(setup, batch,
                                       RoutingMode::SelfRouting,
                                       threads, arena, "randomized");
                expectTiledMatchesFlat(setup, batch,
                                       RoutingMode::OmegaBit,
                                       threads, arena, "omega-bit");
            }
        }
    }
    const FastEngine eng(4);
    const SetupEngine setup(eng);
    EXPECT_TRUE(setup.setupTiled({}).empty());
}

TEST(SetupEngine, FusedSetupExecuteMatchesTheSeparatePhases)
{
    Prng prng(98);
    for (unsigned n : {3u, 5u, 8u, 12u}) {
        const Word N = Word{1} << n;
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        // Odd batch straddling tile boundaries under a small arena.
        const std::size_t B = n <= 5 ? 11 : 65;
        std::vector<Permutation> batch;
        std::vector<std::vector<Word>> payloads;
        for (std::size_t i = 0; i < B; ++i) {
            batch.push_back(i % 4 == 3 ? Permutation::random(N, prng)
                                       : randomFMember(n, prng));
            std::vector<Word> payload(N);
            for (Word x = 0; x < N; ++x)
                payload[x] = (i << 20) + x;
            payloads.push_back(std::move(payload));
        }

        // Reference: flat plans, executed one by one.
        const std::vector<FastPlan> plans = setup.setupMany(batch);
        std::vector<std::vector<Word>> want(B);
        for (std::size_t i = 0; i < B; ++i)
            eng.executeInto(plans[i], payloads[i], want[i]);

        const auto arena = std::make_shared<PlanArena>(
            n >= 8 ? PlanArena::kDefaultTileBytes / 4 : 512);
        for (unsigned threads : {1u, 3u}) {
            TiledPlans tiled;
            const std::vector<std::vector<Word>> got =
                setup.setupExecuteMany(batch, payloads,
                                       RoutingMode::SelfRouting,
                                       threads, &tiled, arena);
            ASSERT_EQ(got.size(), B) << "n=" << n;
            for (std::size_t i = 0; i < B; ++i) {
                EXPECT_EQ(got[i], want[i])
                    << "n=" << n << " plan " << i
                    << " threads=" << threads;
                EXPECT_EQ(tiled.success(i), plans[i].success);
            }
        }
    }
}

TEST(SetupEngine, ConstructionVerifiesLargerFabrics)
{
    // The constructor re-derives and VERIFIES the per-stage bit
    // permutation on every switch (it fatal()s on any deviation), so
    // surviving construction at a large n is itself the assertion;
    // one routed spot-check confirms the schedules work end to end.
    Prng prng(95);
    const unsigned n = 16;
    const FastEngine eng(n);
    const SetupEngine setup(eng);
    const Permutation f = randomFMember(n, prng);
    const FastPlan plan = setup.plan(f);
    EXPECT_TRUE(plan.success);
    EXPECT_EQ(setup.packedStates(plan).words,
              eng.planPackedStates(plan).words);
}

TEST(SetupEngine, RouterColdPathUsesTheSetupEngine)
{
    // The Router owns a SetupEngine and cold planning flows through
    // it; exercise both the one-pass and two-pass routes end to end.
    Prng prng(96);
    const unsigned n = 5;
    const Word N = Word{1} << n;
    obs::MetricsRegistry reg;
    const Router router(n, false, 8, 2, &reg);
    (void)router.setupEngine();

    const Permutation f = randomFMember(n, prng);
    const RoutePlan plan = router.plan(f);
    EXPECT_EQ(plan.strategy, RouteStrategy::SelfRouting);
    ASSERT_TRUE(plan.fast);
    EXPECT_TRUE(plan.fast->success);

    // A non-F permutation goes two-pass: both passes still flow
    // through the setup engine and the result stays exact.
    const Permutation any = Permutation::random(N, prng);
    const RoutePlan plan2 = router.plan(any);
    std::vector<Word> data(N);
    for (Word i = 0; i < N; ++i)
        data[i] = 1000 + i;
    EXPECT_EQ(router.execute(plan2, data), any.applyTo(data));
}

} // namespace
