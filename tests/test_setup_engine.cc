/**
 * @file
 * Differential proof for the bit-sliced SetupEngine: its
 * word-parallel PackedStates production must be bit-for-bit equal to
 * FastEngine::planPackedStates (the per-switch scalar reference) —
 * exhaustively at n <= 3, randomized at n = 4..12 including non-F
 * permutations rejected identically, across every supported SIMD
 * level and under the SRBENES_DISABLE_SIMD escape hatch. Also covers
 * the batch API (threaded and serial shard paths agree with per-item
 * planning) and construction at larger n.
 */

#include <algorithm>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/fast_engine.hh"
#include "core/fast_kernels.hh"
#include "core/router.hh"
#include "core/self_routing.hh"
#include "core/setup_engine.hh"
#include "perm/f_class.hh"
#include "perm/permutation.hh"

namespace
{

using namespace srbenes;

std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (simdLevelSupported(SimdLevel::Avx2))
        levels.push_back(SimdLevel::Avx2);
    if (simdLevelSupported(SimdLevel::Avx512))
        levels.push_back(SimdLevel::Avx512);
    return levels;
}

/** Restores the startup dispatch choice when a test ends. */
class KernelLevelGuard
{
  public:
    ~KernelLevelGuard() { setSimdLevel(detectSimdLevel()); }
};

void
expectSamePlan(const FastPlan &a, const FastPlan &b, unsigned n,
               const char *what)
{
    EXPECT_EQ(a.n, b.n) << what;
    EXPECT_EQ(a.success, b.success) << what << " n=" << n;
    EXPECT_EQ(a.ctrl, b.ctrl) << what << " n=" << n;
    EXPECT_EQ(a.dest, b.dest) << what << " n=" << n;
    EXPECT_EQ(a.src, b.src) << what << " n=" << n;
    EXPECT_EQ(a.misrouted_outputs, b.misrouted_outputs)
        << what << " n=" << n;
}

void
expectPackedParity(const FastEngine &eng, const SetupEngine &setup,
                   const Permutation &d, RoutingMode mode,
                   const char *what)
{
    const FastPlan plan = setup.plan(d, mode);
    expectSamePlan(plan, eng.routePlan(d, mode), eng.n(), what);

    const PackedStates scalar_ref = eng.planPackedStates(plan);
    const PackedStates sliced = setup.packedStates(plan);
    EXPECT_EQ(sliced.n, scalar_ref.n) << what;
    EXPECT_EQ(sliced.words_per_stage, scalar_ref.words_per_stage)
        << what;
    EXPECT_EQ(sliced.words, scalar_ref.words)
        << what << " n=" << eng.n();

    const SetupResult fused = setup.setupPacked(d, mode);
    EXPECT_EQ(fused.plan.success, plan.success) << what;
    EXPECT_EQ(fused.packed.words, scalar_ref.words) << what;
}

TEST(SetupEngine, ExhaustivePackedParityAtSmallN)
{
    KernelLevelGuard guard;
    for (unsigned n = 1; n <= 3; ++n) {
        const Word N = Word{1} << n;
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        std::vector<Word> dest(N);
        for (Word i = 0; i < N; ++i)
            dest[i] = i;
        do {
            const Permutation d(dest);
            for (SimdLevel level : supportedLevels()) {
                setSimdLevel(level);
                expectPackedParity(eng, setup, d,
                                   RoutingMode::SelfRouting,
                                   simdLevelName(level));
            }
        } while (std::next_permutation(dest.begin(), dest.end()));
    }
}

TEST(SetupEngine, RandomizedPackedParityIncludingMisroutes)
{
    KernelLevelGuard guard;
    Prng prng(91);
    for (unsigned n = 4; n <= 12; ++n) {
        const Word N = Word{1} << n;
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        for (int rep = 0; rep < (n <= 8 ? 6 : 2); ++rep) {
            // An F member self-routes; an arbitrary permutation
            // usually does not — both must plan and pack identically
            // to the scalar reference, rejection included.
            const Permutation f = randomFMember(n, prng);
            const Permutation any = Permutation::random(N, prng);
            for (SimdLevel level : supportedLevels()) {
                setSimdLevel(level);
                expectPackedParity(eng, setup, f,
                                   RoutingMode::SelfRouting,
                                   simdLevelName(level));
                expectPackedParity(eng, setup, any,
                                   RoutingMode::SelfRouting,
                                   simdLevelName(level));
                expectPackedParity(eng, setup, any,
                                   RoutingMode::OmegaBit,
                                   simdLevelName(level));
            }
        }
    }
}

TEST(SetupEngine, NonFMembersAreRejectedIdentically)
{
    Prng prng(92);
    const unsigned n = 6;
    const Word N = Word{1} << n;
    const FastEngine eng(n);
    const SetupEngine setup(eng);
    unsigned rejected = 0;
    for (int rep = 0; rep < 40; ++rep) {
        const Permutation any = Permutation::random(N, prng);
        const FastPlan a = setup.plan(any);
        const FastPlan b = eng.routePlan(any);
        EXPECT_EQ(a.success, b.success);
        EXPECT_EQ(a.misrouted_outputs, b.misrouted_outputs);
        if (!a.success)
            ++rejected;
    }
    // |F(n)| / (2^n)! is vanishing at n = 6: random draws must hit
    // the rejection path.
    EXPECT_GT(rejected, 0u);
}

TEST(SetupEngine, DisableSimdEnvKeepsParity)
{
    KernelLevelGuard guard;
    ASSERT_EQ(setenv("SRBENES_DISABLE_SIMD", "1", 1), 0);
    setSimdLevel(detectSimdLevel());
    ASSERT_EQ(activeSimdLevel(), SimdLevel::Scalar);

    Prng prng(93);
    for (unsigned n : {4u, 7u, 10u}) {
        const FastEngine eng(n);
        const SetupEngine setup(eng);
        for (int rep = 0; rep < 4; ++rep)
            expectPackedParity(eng, setup, randomFMember(n, prng),
                               RoutingMode::SelfRouting,
                               "SRBENES_DISABLE_SIMD");
    }
    ASSERT_EQ(unsetenv("SRBENES_DISABLE_SIMD"), 0);
}

TEST(SetupEngine, SetupManyMatchesPerItemPlansInOrder)
{
    Prng prng(94);
    const unsigned n = 7;
    const Word N = Word{1} << n;
    const FastEngine eng(n);
    const SetupEngine setup(eng);

    std::vector<Permutation> batch;
    for (int i = 0; i < 17; ++i) // odd size: uneven worker shards
        batch.push_back(i % 5 == 4 ? Permutation::random(N, prng)
                                   : randomFMember(n, prng));

    for (unsigned threads : {1u, 4u}) {
        const std::vector<FastPlan> plans =
            setup.setupMany(batch, RoutingMode::SelfRouting, threads);
        ASSERT_EQ(plans.size(), batch.size()) << threads;
        for (std::size_t i = 0; i < batch.size(); ++i)
            expectSamePlan(plans[i], eng.routePlan(batch[i]), n,
                           threads == 1 ? "serial batch"
                                        : "threaded batch");
    }

    EXPECT_TRUE(setup.setupMany({}).empty());
}

TEST(SetupEngine, ConstructionVerifiesLargerFabrics)
{
    // The constructor re-derives and VERIFIES the per-stage bit
    // permutation on every switch (it fatal()s on any deviation), so
    // surviving construction at a large n is itself the assertion;
    // one routed spot-check confirms the schedules work end to end.
    Prng prng(95);
    const unsigned n = 16;
    const FastEngine eng(n);
    const SetupEngine setup(eng);
    const Permutation f = randomFMember(n, prng);
    const FastPlan plan = setup.plan(f);
    EXPECT_TRUE(plan.success);
    EXPECT_EQ(setup.packedStates(plan).words,
              eng.planPackedStates(plan).words);
}

TEST(SetupEngine, RouterColdPathUsesTheSetupEngine)
{
    // The Router owns a SetupEngine and cold planning flows through
    // it; exercise both the one-pass and two-pass routes end to end.
    Prng prng(96);
    const unsigned n = 5;
    const Word N = Word{1} << n;
    obs::MetricsRegistry reg;
    const Router router(n, false, 8, 2, &reg);
    (void)router.setupEngine();

    const Permutation f = randomFMember(n, prng);
    const RoutePlan plan = router.plan(f);
    EXPECT_EQ(plan.strategy, RouteStrategy::SelfRouting);
    ASSERT_TRUE(plan.fast);
    EXPECT_TRUE(plan.fast->success);

    // A non-F permutation goes two-pass: both passes still flow
    // through the setup engine and the result stays exact.
    const Permutation any = Permutation::random(N, prng);
    const RoutePlan plan2 = router.plan(any);
    std::vector<Word> data(N);
    for (Word i = 0; i < N; ++i)
        data[i] = 1000 + i;
    EXPECT_EQ(router.execute(plan2, data), any.applyTo(data));
}

} // namespace
