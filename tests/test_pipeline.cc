/**
 * @file
 * Tests for the pipelined network (Section IV): fill latency of
 * 2n-1 clocks, one vector per clock afterwards, per-vector
 * permutations, and payload integrity.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/pipeline.hh"
#include "perm/bpc.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

std::vector<Word>
iotaPayload(std::size_t size, Word base)
{
    std::vector<Word> v(size);
    for (std::size_t i = 0; i < size; ++i)
        v[i] = base + i;
    return v;
}

TEST(Pipeline, FirstVectorEmergesAfterLatency)
{
    PipelinedBenes pipe(3);
    EXPECT_EQ(pipe.latency(), 5u);

    pipe.inject(named::bitReversal(3).toPermutation(),
                iotaPayload(8, 100));

    for (unsigned c = 0; c + 1 < pipe.latency(); ++c)
        EXPECT_FALSE(pipe.clockTick().has_value()) << "clock " << c;

    const auto out = pipe.clockTick();
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->success);
}

TEST(Pipeline, OneVectorPerClockAfterFill)
{
    const unsigned n = 4;
    PipelinedBenes pipe(n);
    Prng prng(55);

    constexpr int kVectors = 10;
    std::vector<Permutation> perms;
    for (int v = 0; v < kVectors; ++v) {
        // A different permutation per vector, as Section IV allows.
        perms.push_back(BpcSpec::random(n, prng).toPermutation());
        pipe.inject(perms.back(), iotaPayload(16, 1000 * (v + 1)));
    }

    int received = 0;
    std::uint64_t first_output_cycle = 0, last_output_cycle = 0;
    while (!pipe.drained()) {
        const auto out = pipe.clockTick();
        if (!out)
            continue;
        ASSERT_TRUE(out->success);
        if (received == 0)
            first_output_cycle = pipe.cyclesElapsed();
        last_output_cycle = pipe.cyclesElapsed();

        // Payload integrity: vector v's payload base identifies it,
        // and payloads must sit at their permuted positions.
        const Word base = 1000 * (received + 1);
        const Permutation &d = perms[received];
        for (Word i = 0; i < 16; ++i)
            EXPECT_EQ(out->payloads[d[i]], base + i);
        ++received;
    }

    EXPECT_EQ(received, kVectors);
    EXPECT_EQ(first_output_cycle, pipe.latency());
    // Unit-rate drain: k-th vector at latency + k - 1.
    EXPECT_EQ(last_output_cycle, pipe.latency() + kVectors - 1);
}

TEST(Pipeline, NonFVectorEmergesUnsuccessful)
{
    PipelinedBenes pipe(2);
    pipe.inject(Permutation({1, 3, 2, 0}), iotaPayload(4, 0));
    std::optional<PipelineOutput> out;
    while (!out && pipe.cyclesElapsed() < 100)
        out = pipe.clockTick();
    ASSERT_TRUE(out.has_value());
    EXPECT_FALSE(out->success);
}

TEST(Pipeline, DrainedStateTracksOccupancy)
{
    PipelinedBenes pipe(2);
    EXPECT_TRUE(pipe.drained());
    pipe.inject(Permutation::identity(4), iotaPayload(4, 0));
    EXPECT_FALSE(pipe.drained());
    while (!pipe.drained())
        pipe.clockTick();
    EXPECT_TRUE(pipe.drained());
}

TEST(Pipeline, GapsInInjectionCreateGapsInOutput)
{
    // Inject, idle two clocks, inject again: outputs appear at
    // latency and latency + 3 (the bubble propagates).
    const unsigned n = 3;
    PipelinedBenes pipe(n);
    const auto id = Permutation::identity(8);

    pipe.inject(id, iotaPayload(8, 0));
    std::vector<std::uint64_t> arrivals;
    for (int c = 0; c < 3; ++c)
        if (pipe.clockTick())
            arrivals.push_back(pipe.cyclesElapsed());
    pipe.inject(id, iotaPayload(8, 100));
    while (!pipe.drained())
        if (pipe.clockTick())
            arrivals.push_back(pipe.cyclesElapsed());

    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], pipe.latency());
    // The second vector entered three clocks after the first.
    EXPECT_EQ(arrivals[1], pipe.latency() + 3);
}

TEST(Pipeline, InjectionQueueBuffersBursts)
{
    // Queue three vectors before any clocking; they still enter one
    // per clock.
    PipelinedBenes pipe(2);
    const auto id = Permutation::identity(4);
    for (int v = 0; v < 3; ++v)
        pipe.inject(id, iotaPayload(4, 10 * v));
    int got = 0;
    std::uint64_t last = 0;
    while (!pipe.drained()) {
        if (pipe.clockTick()) {
            ++got;
            last = pipe.cyclesElapsed();
        }
    }
    EXPECT_EQ(got, 3);
    EXPECT_EQ(last, pipe.latency() + 2);
}

TEST(Pipeline, MatchesUnpipelinedResults)
{
    // Back-to-back vectors with different permutations produce the
    // same outputs as one-shot routes.
    const unsigned n = 5;
    PipelinedBenes pipe(n);
    Prng prng(91);
    std::vector<Permutation> perms;
    for (int v = 0; v < 4; ++v) {
        perms.push_back(BpcSpec::random(n, prng).toPermutation());
        pipe.inject(perms.back(), iotaPayload(32, 0));
    }

    int received = 0;
    while (!pipe.drained()) {
        const auto out = pipe.clockTick();
        if (!out)
            continue;
        ASSERT_TRUE(out->success);
        for (Word i = 0; i < 32; ++i)
            EXPECT_EQ(out->payloads[perms[received][i]], i);
        ++received;
    }
    EXPECT_EQ(received, 4);
}

TEST(Pipeline, DrainCollectsEverythingInOrder)
{
    const unsigned n = 3;
    PipelinedBenes pipe(n);
    Prng prng(92);
    std::vector<Permutation> perms;
    for (int v = 0; v < 5; ++v) {
        perms.push_back(BpcSpec::random(n, prng).toPermutation());
        pipe.inject(perms.back(), iotaPayload(8, 10 * v));
    }

    const auto outs = pipe.drain();
    ASSERT_EQ(outs.size(), 5u);
    EXPECT_TRUE(pipe.drained());
    // Vectors emerge in injection order, last one after latency + 4.
    EXPECT_EQ(pipe.cyclesElapsed(), pipe.latency() + 4);
    for (int v = 0; v < 5; ++v) {
        ASSERT_TRUE(outs[v].success);
        for (Word i = 0; i < 8; ++i)
            EXPECT_EQ(outs[v].payloads[perms[v][i]], 10 * v + i);
    }

    // Draining an empty pipeline is a no-op.
    const auto again = pipe.drain();
    EXPECT_TRUE(again.empty());
    EXPECT_EQ(pipe.cyclesElapsed(), pipe.latency() + 4);
}

TEST(Pipeline, SteadyStateReusesInjectionFrames)
{
    // Drained frames are recycled: interleaved inject/tick over many
    // rounds keeps working and produces correct payloads throughout.
    // (The allocation-free claim itself is covered by running this
    // under the sanitizers; here we pin down the recycling logic.)
    const unsigned n = 2;
    PipelinedBenes pipe(n);
    const auto id = Permutation::identity(4);
    int received = 0;
    for (int round = 0; round < 50; ++round) {
        pipe.inject(id, iotaPayload(4, round));
        const auto out = pipe.clockTick();
        if (out) {
            ASSERT_TRUE(out->success);
            EXPECT_EQ(out->payloads, iotaPayload(4, received));
            ++received;
        }
    }
    for (const auto &out : pipe.drain()) {
        EXPECT_EQ(out.payloads, iotaPayload(4, received));
        ++received;
    }
    EXPECT_EQ(received, 50);
    EXPECT_TRUE(pipe.drained());
}

} // namespace
} // namespace srbenes
