/**
 * @file
 * Differential tests for the runtime-dispatched SIMD kernels: every
 * compiled-and-supported level (scalar, AVX2, AVX-512) must agree
 * with the scalar kernel bit-for-bit — on raw kernel invocations
 * with awkward tails, and on whole routes through FastEngine,
 * exhaustively at n <= 3 and randomized at n = 4..10. Also covers
 * the SRBENES_DISABLE_SIMD escape hatch.
 */

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/fast_engine.hh"
#include "core/fast_kernels.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "perm/f_class.hh"
#include "perm/permutation.hh"

namespace
{

using namespace srbenes;

std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (simdLevelSupported(SimdLevel::Avx2))
        levels.push_back(SimdLevel::Avx2);
    if (simdLevelSupported(SimdLevel::Avx512))
        levels.push_back(SimdLevel::Avx512);
    return levels;
}

/** Restores the startup dispatch choice when a test ends. */
class KernelLevelGuard
{
  public:
    ~KernelLevelGuard() { setSimdLevel(detectSimdLevel()); }
};

std::vector<Word>
randomWords(std::size_t count, Prng &prng)
{
    std::vector<Word> v(count);
    for (auto &w : v)
        w = prng();
    return v;
}

TEST(FastKernels, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(simdLevelCompiled(SimdLevel::Scalar));
    EXPECT_TRUE(simdLevelSupported(SimdLevel::Scalar));
    EXPECT_STREQ(kernelsFor(SimdLevel::Scalar).name, "scalar");
}

TEST(FastKernels, GatherMatchesScalarIncludingTails)
{
    Prng prng(71);
    const KernelTable &ref = kernelsFor(SimdLevel::Scalar);
    for (SimdLevel level : supportedLevels()) {
        const KernelTable &k = kernelsFor(level);
        for (std::size_t count :
             {std::size_t{1}, std::size_t{3}, std::size_t{7},
              std::size_t{8}, std::size_t{9}, std::size_t{31},
              std::size_t{64}, std::size_t{70}, std::size_t{255}}) {
            const std::vector<Word> in = randomWords(count, prng);
            std::vector<Word> src(count);
            for (std::size_t j = 0; j < count; ++j)
                src[j] = prng.below(count);
            std::vector<Word> expect(count), got(count, ~Word{0});
            ref.gather(expect.data(), in.data(), src.data(), count);
            k.gather(got.data(), in.data(), src.data(), count);
            EXPECT_EQ(got, expect)
                << k.name << " count=" << count;
        }
    }
}

TEST(FastKernels, DeltaSwapMatchesScalar)
{
    Prng prng(72);
    const KernelTable &ref = kernelsFor(SimdLevel::Scalar);
    for (SimdLevel level : supportedLevels()) {
        const KernelTable &k = kernelsFor(level);
        for (Word words : {Word{1}, Word{3}, Word{4}, Word{7},
                           Word{8}, Word{9}, Word{16}, Word{21}}) {
            for (unsigned dist : {1u, 2u, 4u, 8u, 16u, 32u}) {
                const unsigned nplanes = 5;
                std::vector<Word> expect =
                    randomWords(nplanes * words, prng);
                std::vector<Word> got = expect;
                const std::vector<Word> ctrl =
                    randomWords(words, prng);
                ref.deltaSwap(expect.data(), nplanes, words,
                              ctrl.data(), words, dist);
                k.deltaSwap(got.data(), nplanes, words, ctrl.data(),
                            words, dist);
                EXPECT_EQ(got, expect) << k.name << " words=" << words
                                       << " dist=" << dist;
            }
        }
    }
}

TEST(FastKernels, PairSwapMatchesScalar)
{
    Prng prng(73);
    const KernelTable &ref = kernelsFor(SimdLevel::Scalar);
    for (SimdLevel level : supportedLevels()) {
        const KernelTable &k = kernelsFor(level);
        for (Word dw : {Word{1}, Word{2}, Word{4}, Word{8},
                        Word{16}}) {
            for (Word pairs : {Word{1}, Word{2}, Word{4}}) {
                const Word words = 2 * dw * pairs;
                const unsigned nplanes = 4;
                std::vector<Word> expect =
                    randomWords(nplanes * words, prng);
                std::vector<Word> got = expect;
                const std::vector<Word> ctrl =
                    randomWords(words, prng);
                ref.pairSwap(expect.data(), nplanes, words,
                             ctrl.data(), words, dw);
                k.pairSwap(got.data(), nplanes, words, ctrl.data(),
                           words, dw);
                EXPECT_EQ(got, expect) << k.name << " words=" << words
                                       << " dw=" << dw;
            }
        }
    }
}

TEST(FastKernels, PackTagsMatchesScalarAndNaive)
{
    Prng prng(76);
    const KernelTable &ref = kernelsFor(SimdLevel::Scalar);
    for (SimdLevel level : supportedLevels()) {
        const KernelTable &k = kernelsFor(level);
        for (Word count : {Word{1}, Word{3}, Word{63}, Word{64},
                           Word{65}, Word{100}, Word{256}}) {
            for (unsigned nplanes : {1u, 4u, 9u}) {
                const Word used = (count + 63) / 64;
                const Word stride = used + 2; // canary tail words
                std::vector<Word> tags(count);
                for (auto &t : tags)
                    t = prng() & ((Word{1} << nplanes) - 1);
                constexpr Word kCanary = 0xdeadbeefdeadbeefULL;
                std::vector<Word> expect(nplanes * stride, kCanary);
                std::vector<Word> got = expect;
                ref.packTags(expect.data(), nplanes, stride,
                             tags.data(), count);
                k.packTags(got.data(), nplanes, stride, tags.data(),
                           count);
                ASSERT_EQ(got, expect)
                    << k.name << " count=" << count
                    << " nplanes=" << nplanes;
                // Pin the scalar reference itself to the contract:
                // bit j of plane b is bit b of tags[j], tail bits of
                // the last used word are zero, and words past the
                // used span are untouched.
                for (unsigned b = 0; b < nplanes; ++b) {
                    const Word *row = expect.data() + b * stride;
                    for (Word j = 0; j < count; ++j)
                        ASSERT_EQ((row[j >> 6] >> (j & 63)) & 1,
                                  (tags[j] >> b) & 1)
                            << "plane " << b << " lane " << j;
                    for (Word j = count; j < used * 64; ++j)
                        ASSERT_EQ((row[j >> 6] >> (j & 63)) & 1, 0u)
                            << "tail bit " << j << " plane " << b;
                    for (Word w = used; w < stride; ++w)
                        ASSERT_EQ(row[w], kCanary)
                            << "overwrote word " << w << " plane "
                            << b;
                }
            }
        }
    }
}

void
expectSameRoute(const RouteResult &a, const RouteResult &b,
                const char *what)
{
    EXPECT_EQ(a.success, b.success) << what;
    EXPECT_EQ(a.states, b.states) << what;
    EXPECT_EQ(a.output_tags, b.output_tags) << what;
    EXPECT_EQ(a.realized_dest, b.realized_dest) << what;
    EXPECT_EQ(a.misrouted_outputs, b.misrouted_outputs) << what;
}

TEST(FastKernels, ExhaustiveRouteParityAtSmallN)
{
    KernelLevelGuard guard;
    for (unsigned n = 1; n <= 3; ++n) {
        const Word N = Word{1} << n;
        const SelfRoutingBenes net(n);
        const FastEngine engine(n);
        std::vector<Word> dest(N);
        for (Word i = 0; i < N; ++i)
            dest[i] = i;
        do {
            const Permutation d(dest);
            const RouteResult ref = net.route(d);
            for (SimdLevel level : supportedLevels()) {
                setSimdLevel(level);
                expectSameRoute(engine.route(d), ref,
                                simdLevelName(level));
            }
        } while (std::next_permutation(dest.begin(), dest.end()));
    }
}

TEST(FastKernels, RandomizedRouteParityAcrossLevels)
{
    KernelLevelGuard guard;
    Prng prng(74);
    for (unsigned n = 4; n <= 10; ++n) {
        const Word N = Word{1} << n;
        const SelfRoutingBenes net(n);
        const FastEngine engine(n);
        for (int rep = 0; rep < 3; ++rep) {
            // An F member (self-routes), an arbitrary permutation
            // (usually misroutes), and a Waksman-forced route all
            // must agree with the reference at every level.
            const Permutation f = randomFMember(n, prng);
            const Permutation any = Permutation::random(N, prng);
            const SwitchStates forced =
                waksmanSetup(net.topology(), any);
            const RouteResult ref_f = net.route(f);
            const RouteResult ref_any = net.route(any);
            const RouteResult ref_forced =
                net.routeWithStates(any, forced);
            for (SimdLevel level : supportedLevels()) {
                setSimdLevel(level);
                expectSameRoute(engine.route(f), ref_f,
                                simdLevelName(level));
                expectSameRoute(engine.route(any), ref_any,
                                simdLevelName(level));
                expectSameRoute(engine.routeWithStates(any, forced),
                                ref_forced, simdLevelName(level));
            }
        }
    }
}

TEST(FastKernels, ExecutePayloadParityAcrossLevels)
{
    KernelLevelGuard guard;
    Prng prng(75);
    for (unsigned n : {5u, 8u}) {
        const Word N = Word{1} << n;
        const FastEngine engine(n);
        const Permutation d = randomFMember(n, prng);
        const std::vector<Word> data = randomWords(N, prng);

        setSimdLevel(SimdLevel::Scalar);
        const FastPlan plan = engine.routePlan(d);
        const std::vector<Word> expect = engine.execute(plan, data);
        EXPECT_EQ(expect, d.applyTo(data));

        for (SimdLevel level : supportedLevels()) {
            setSimdLevel(level);
            EXPECT_EQ(engine.execute(plan, data), expect)
                << simdLevelName(level);
        }
    }
}

TEST(FastKernels, DisableSimdEnvForcesScalar)
{
    KernelLevelGuard guard;
    ASSERT_EQ(setenv("SRBENES_DISABLE_SIMD", "1", 1), 0);
    EXPECT_EQ(detectSimdLevel(), SimdLevel::Scalar);
    setSimdLevel(detectSimdLevel());
    EXPECT_EQ(activeSimdLevel(), SimdLevel::Scalar);
    EXPECT_STREQ(activeKernels().name, "scalar");

    // "0" and empty mean "not disabled".
    ASSERT_EQ(setenv("SRBENES_DISABLE_SIMD", "0", 1), 0);
    EXPECT_EQ(detectSimdLevel(), detectSimdLevel());
    ASSERT_EQ(unsetenv("SRBENES_DISABLE_SIMD"), 0);

    // With the variable gone, detection follows cpuid again.
    const SimdLevel host = detectSimdLevel();
    EXPECT_TRUE(simdLevelSupported(host));
}

} // namespace
