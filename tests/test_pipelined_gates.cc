/**
 * @file
 * Tests for the sequential (registered) gate model: flip-flop
 * semantics in the netlist, the one-mux clock path, the 2n-1 cycle
 * fill, cycle-exact agreement with the behavioral pipeline, and
 * per-vector permutations in flight simultaneously.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/pipeline.hh"
#include "gates/pipelined_gates.hh"
#include "perm/bpc.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(SeqNetlist, RegisterDelaysByOneClock)
{
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId r1 = net.addReg(a);
    const NodeId r2 = net.addReg(r1);
    EXPECT_EQ(net.numRegs(), 2u);
    EXPECT_EQ(net.depthOf(r1), 0u); // breaks the path

    std::vector<std::uint8_t> state(2, 0);
    const std::vector<std::uint8_t> stream{1, 0, 1, 1, 0};
    std::vector<std::uint8_t> seen_r1, seen_r2;
    for (std::uint8_t v : stream) {
        const auto values = net.evaluateSeq({v}, state);
        seen_r1.push_back(values[r1]);
        seen_r2.push_back(values[r2]);
    }
    EXPECT_EQ(seen_r1, (std::vector<std::uint8_t>{0, 1, 0, 1, 1}));
    EXPECT_EQ(seen_r2, (std::vector<std::uint8_t>{0, 0, 1, 0, 1}));
}

TEST(SeqNetlist, CombinationalEvaluateTreatsRegsAsCleared)
{
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId r = net.addReg(a);
    const auto values = net.evaluate({1});
    EXPECT_EQ(values[r], 0);
}

TEST(PipelinedGates, ClockPathIsOneMux)
{
    // The headline: the register-to-register combinational path is
    // a single mux level at EVERY size -- constant clock period.
    for (unsigned n = 1; n <= 8; ++n)
        EXPECT_EQ(PipelinedBenesGateModel(n).clockPathDepth(), 1u)
            << n;
}

TEST(PipelinedGates, RegisterCount)
{
    // 2n-1 banks of N lines times n tag bits.
    for (unsigned n : {2u, 3u, 5u}) {
        const PipelinedBenesGateModel model(n);
        EXPECT_EQ(model.numRegisters(),
                  (2 * n - 1) * (std::size_t{1} << n) * n);
    }
}

TEST(PipelinedGates, FirstVectorEmergesAfterLatency)
{
    const unsigned n = 3;
    const PipelinedBenesGateModel model(n);
    const Permutation d = named::bitReversal(n).toPermutation();
    const auto per_cycle =
        model.simulateStream({d}, model.latency() + 1);

    // At the fill cycle the outputs are the sorted tags.
    const auto &tags = per_cycle[model.latency()];
    for (Word j = 0; j < 8; ++j)
        EXPECT_EQ(tags[j], j);
}

TEST(PipelinedGates, MatchesBehavioralPipelineCycleExact)
{
    const unsigned n = 4;
    const PipelinedBenesGateModel model(n);
    Prng prng(67);

    std::vector<Permutation> stream;
    for (int v = 0; v < 6; ++v)
        stream.push_back(BpcSpec::random(n, prng).toPermutation());

    const auto per_cycle =
        model.simulateStream(stream, model.latency() + 2);

    // Vector v's tags appear sorted at cycle v + latency.
    for (std::size_t v = 0; v < stream.size(); ++v) {
        const auto &tags = per_cycle[v + model.latency()];
        for (Word j = 0; j < 16; ++j)
            ASSERT_EQ(tags[j], j) << "vector " << v;
    }

    // Cross-check one vector against the behavioral pipeline's
    // payload transport.
    PipelinedBenes behavioral(n);
    std::vector<Word> payload(16);
    for (Word i = 0; i < 16; ++i)
        payload[i] = i;
    behavioral.inject(stream[0], payload);
    std::optional<PipelineOutput> out;
    while (!out)
        out = behavioral.clockTick();
    EXPECT_TRUE(out->success);
}

TEST(PipelinedGates, DistinctPermutationsCoexistInFlight)
{
    // Back-to-back different permutations must not interfere: the
    // registered control bits belong to each vector's own tags.
    const unsigned n = 3;
    const PipelinedBenesGateModel model(n);
    const std::vector<Permutation> stream{
        named::bitReversal(n).toPermutation(),
        named::vectorReversal(n).toPermutation(),
        Permutation::identity(8),
        named::perfectShuffle(n).toPermutation(),
    };
    const auto per_cycle =
        model.simulateStream(stream, model.latency());
    for (std::size_t v = 0; v < stream.size(); ++v)
        for (Word j = 0; j < 8; ++j)
            ASSERT_EQ(per_cycle[v + model.latency()][j], j)
                << "vector " << v;
}

} // namespace
} // namespace srbenes
