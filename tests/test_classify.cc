/**
 * @file
 * Tests for the class census machinery of experiment E3: exhaustive
 * counts at small n (including the closed-form cardinalities of BPC
 * and omega) and the sampled-census plumbing.
 */

#include <gtest/gtest.h>

#include "perm/classify.hh"

namespace srbenes
{
namespace
{

TEST(Classify, ExhaustiveN1)
{
    const ClassCensus census = censusExhaustive(1);
    EXPECT_EQ(census.total, 2u);
    // Both permutations of (0, 1) are in every class.
    EXPECT_EQ(census.in_f, 2u);
    EXPECT_EQ(census.in_omega, 2u);
    EXPECT_EQ(census.in_inverse, 2u);
    EXPECT_EQ(census.in_bpc, 2u);
}

TEST(Classify, ExhaustiveN2)
{
    const ClassCensus census = censusExhaustive(2);
    EXPECT_EQ(census.total, 24u);
    // |BPC(2)| = 2^2 * 2! = 8; |Omega(2)| = 2^(2*2) = 16.
    EXPECT_EQ(census.in_bpc, 8u);
    EXPECT_EQ(census.in_omega, 16u);
    EXPECT_EQ(census.in_inverse, 16u);
    // F(2) contains all inverse-omega members and not the Fig. 5
    // permutation.
    EXPECT_GE(census.in_f, census.in_inverse);
    EXPECT_LT(census.in_f, census.total);
}

TEST(Classify, ExhaustiveN3)
{
    const ClassCensus census = censusExhaustive(3);
    EXPECT_EQ(census.total, 40320u);
    EXPECT_EQ(census.in_bpc, bpcCardinality(3));   // 48
    EXPECT_EQ(census.in_omega, 4096u);             // 2^(3*4)
    EXPECT_EQ(census.in_inverse, 4096u);
    EXPECT_GE(census.in_f, census.in_inverse);
    EXPECT_GE(census.in_f, census.in_bpc);
    EXPECT_LT(census.in_f, census.total);
}

TEST(Classify, BpcCardinalityFormula)
{
    EXPECT_EQ(bpcCardinality(1), 2u);
    EXPECT_EQ(bpcCardinality(2), 8u);
    EXPECT_EQ(bpcCardinality(3), 48u);
    EXPECT_EQ(bpcCardinality(4), 384u);
    EXPECT_EQ(bpcCardinality(5), 3840u);
}

TEST(Classify, OmegaCardinalityFormula)
{
    EXPECT_DOUBLE_EQ(static_cast<double>(omegaCardinality(1)), 2.0);
    EXPECT_DOUBLE_EQ(static_cast<double>(omegaCardinality(2)), 16.0);
    EXPECT_DOUBLE_EQ(static_cast<double>(omegaCardinality(3)),
                     4096.0);
}

TEST(Classify, Factorial)
{
    EXPECT_DOUBLE_EQ(static_cast<double>(factorial(0)), 1.0);
    EXPECT_DOUBLE_EQ(static_cast<double>(factorial(4)), 24.0);
    EXPECT_DOUBLE_EQ(static_cast<double>(factorial(8)), 40320.0);
}

TEST(Classify, ExactFRecurrenceMatchesBruteForce)
{
    // The transfer-matrix recurrence must reproduce the exhaustive
    // counts before we trust it beyond them.
    EXPECT_DOUBLE_EQ(static_cast<double>(exactFCardinality(1)), 2.0);
    EXPECT_DOUBLE_EQ(static_cast<double>(exactFCardinality(2)),
                     20.0);
    EXPECT_DOUBLE_EQ(static_cast<double>(exactFCardinality(3)),
                     11632.0);
}

TEST(Classify, SampledCensusIsDeterministic)
{
    Prng a(5), b(5);
    const ClassCensus ca = censusSampled(4, 200, a);
    const ClassCensus cb = censusSampled(4, 200, b);
    EXPECT_EQ(ca.total, 200u);
    EXPECT_EQ(ca.in_f, cb.in_f);
    EXPECT_EQ(ca.in_omega, cb.in_omega);
    EXPECT_EQ(ca.in_inverse, cb.in_inverse);
    EXPECT_EQ(ca.in_bpc, cb.in_bpc);
}

TEST(Classify, SampledCensusOfTinySpaceSeesMembers)
{
    // At n = 1 every draw is in every class.
    Prng prng(6);
    const ClassCensus census = censusSampled(1, 50, prng);
    EXPECT_EQ(census.in_f, 50u);
    EXPECT_EQ(census.in_bpc, 50u);
}

TEST(Classify, RandomPermutationsAlmostNeverInFForLargeN)
{
    Prng prng(7);
    const ClassCensus census = censusSampled(6, 300, prng);
    // |F(6)| is astronomically smaller than 64!; a hit would be a
    // bug, not luck.
    EXPECT_EQ(census.in_f, 0u);
    EXPECT_EQ(census.in_bpc, 0u);
}

} // namespace
} // namespace srbenes
