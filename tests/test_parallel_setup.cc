/**
 * @file
 * Tests for the CIC machine and the data-parallel Benes setup:
 * correctness (exhaustive at N = 8, sampled to N = 1024),
 * equivalence of effect with the serial Waksman setup, and the
 * O(log^2 N) parallel step count against O(N log N) serial work.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/parallel_setup.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"

namespace srbenes
{
namespace
{

TEST(Cic, RouteMovesValues)
{
    CicMachine cic(4);
    std::vector<Word> v{10, 11, 12, 13};
    cic.route(Permutation({2, 0, 3, 1}), v);
    EXPECT_EQ(v, (std::vector<Word>{11, 13, 10, 12}));
    EXPECT_EQ(cic.unitRoutes(), 1u);
}

TEST(Cic, ScatterRespectsMask)
{
    CicMachine cic(4);
    std::vector<Word> v{1, 2, 3, 4};
    cic.scatter({3, 0, 0, 0}, {true, false, false, false}, v);
    EXPECT_EQ(v, (std::vector<Word>{1, 2, 3, 1}));
}

TEST(Cic, ScatterCollisionDies)
{
    CicMachine cic(4);
    std::vector<Word> v{1, 2, 3, 4};
    EXPECT_DEATH(cic.scatter({0, 0, 2, 3}, {true, true, true, true},
                             v),
                 "collision");
}

TEST(Cic, GatherAllowsFanout)
{
    CicMachine cic(4);
    std::vector<Word> v{7, 8, 9, 10};
    cic.gather({1, 1, 1, 0}, v);
    EXPECT_EQ(v, (std::vector<Word>{8, 8, 8, 7}));
}

TEST(Cic, CountersAccumulate)
{
    CicMachine cic(2);
    std::vector<Word> v{0, 1};
    cic.route(Permutation({1, 0}), v);
    cic.localStep();
    cic.localStep();
    EXPECT_EQ(cic.unitRoutes(), 1u);
    EXPECT_EQ(cic.computeSteps(), 2u);
    EXPECT_EQ(cic.totalSteps(), 3u);
    cic.resetCounters();
    EXPECT_EQ(cic.totalSteps(), 0u);
}

TEST(ParallelSetup, SingleSwitch)
{
    const SelfRoutingBenes net(1);
    for (const Permutation &d : {Permutation({0, 1}),
                                 Permutation({1, 0})}) {
        const auto states = parallelSetup(net.topology(), d);
        EXPECT_TRUE(net.routeWithStates(d, states).success);
    }
}

TEST(ParallelSetup, AllPermutationsN8)
{
    const SelfRoutingBenes net(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        const auto states = parallelSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success)
            << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class ParallelSetupSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ParallelSetupSweep, RandomPermutationsRealized)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 509);
    for (int trial = 0; trial < 10; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        const auto states = parallelSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success);
    }
}

TEST_P(ParallelSetupSweep, SameEffectAsWaksman)
{
    // The realizations may differ switch-by-switch but must induce
    // the same input-to-output mapping.
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 521);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    const auto par = net.routeWithStates(
        d, parallelSetup(net.topology(), d));
    const auto ser = net.routeWithStates(
        d, waksmanSetup(net.topology(), d));
    ASSERT_TRUE(par.success);
    ASSERT_TRUE(ser.success);
    EXPECT_EQ(par.realized_dest, ser.realized_dest);
}

INSTANTIATE_TEST_SUITE_P(Widths, ParallelSetupSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 10u));

TEST(ParallelSetup, StepCountIsPolylog)
{
    // Parallel steps must grow like n^2, not like N: compare n = 4
    // and n = 8 (N grows 16x, steps should grow ~4x).
    Prng prng(3);
    ParallelSetupStats s4, s8;
    {
        const BenesTopology topo(4);
        parallelSetup(topo, Permutation::random(16, prng), &s4);
    }
    {
        const BenesTopology topo(8);
        parallelSetup(topo, Permutation::random(256, prng), &s8);
    }
    EXPECT_GT(s4.total(), 0u);
    // 16x data, at most ~5x steps if O(log^2 N).
    EXPECT_LT(s8.total(), 6 * s4.total());
}

TEST(ParallelSetupSeeded, EverySeedRealizesThePermutation)
{
    const SelfRoutingBenes net(4);
    Prng prng(51);
    for (int trial = 0; trial < 5; ++trial) {
        const Permutation d = Permutation::random(16, prng);
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            const auto states =
                parallelSetup(net.topology(), d, nullptr, seed);
            EXPECT_TRUE(net.routeWithStates(d, states).success)
                << "seed " << seed;
        }
    }
}

TEST(ParallelSetupSeeded, SeedZeroIsTheCanonicalSetup)
{
    const BenesTopology topo(5);
    Prng prng(52);
    for (int trial = 0; trial < 5; ++trial) {
        const Permutation d = Permutation::random(32, prng);
        EXPECT_EQ(parallelSetup(topo, d, nullptr, 0),
                  parallelSetup(topo, d));
    }
}

TEST(ParallelSetupSeeded, SeedsExerciseDifferentStates)
{
    const BenesTopology topo(4);
    Prng prng(53);
    const Permutation d = Permutation::random(16, prng);
    const auto canonical = parallelSetup(topo, d, nullptr, 0);
    bool varied = false;
    for (std::uint64_t seed = 1; seed < 10 && !varied; ++seed)
        varied = parallelSetup(topo, d, nullptr, seed) != canonical;
    EXPECT_TRUE(varied);
}

TEST(ParallelSetup, StatsReported)
{
    const BenesTopology topo(5);
    Prng prng(9);
    ParallelSetupStats stats;
    parallelSetup(topo, Permutation::random(32, prng), &stats);
    EXPECT_GT(stats.unit_routes, 0u);
    EXPECT_GT(stats.compute_steps, 0u);
}

} // namespace
} // namespace srbenes
