/**
 * @file
 * Tests for the observability layer: instrument primitives (sharded
 * counters, gauges, log2 histograms), the registry's get-or-create
 * identity, the trace ring's bounds, golden-text Prometheus
 * exposition, and a JSON round-trip over a real multithreaded
 * stream run whose StreamStats must be served from the registry.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/router.hh"
#include "core/stream.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "perm/bpc.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

// ------------------------------------------------------ primitives

TEST(ObsCounter, FoldsShardsAcrossThreads)
{
    obs::Counter c;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);

    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.inc(7);
    EXPECT_EQ(c.value(), 7u);
}

TEST(ObsGauge, SetAddReset)
{
    obs::Gauge g;
    g.set(-5);
    EXPECT_EQ(g.value(), -5);
    g.add(12);
    EXPECT_EQ(g.value(), 7);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketBoundsPartitionTheRange)
{
    // Buckets must tile [0, 2^64): each value lands in a bucket
    // whose bounds bracket it, and consecutive buckets are adjacent.
    for (unsigned i = 0; i + 1 < obs::Histogram::kBuckets; ++i) {
        EXPECT_EQ(obs::Histogram::bucketUpper(i) + 1,
                  obs::Histogram::bucketLower(i + 1))
            << "gap after bucket " << i;
    }
    EXPECT_EQ(obs::Histogram::bucketUpper(obs::Histogram::kBuckets - 1),
              ~std::uint64_t{0});

    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{3}, std::uint64_t{4},
                            std::uint64_t{5}, std::uint64_t{1000},
                            std::uint64_t{1} << 40,
                            ~std::uint64_t{0}}) {
        const unsigned idx = obs::Histogram::bucketIndex(v);
        ASSERT_LT(idx, obs::Histogram::kBuckets);
        EXPECT_LE(obs::Histogram::bucketLower(idx), v);
        EXPECT_GE(obs::Histogram::bucketUpper(idx), v);
    }
}

TEST(ObsHistogram, QuantilesAndMerge)
{
    obs::Histogram h;
    // Values 0..3 have exact single-value buckets.
    for (int i = 0; i < 100; ++i)
        h.observe(1);
    for (int i = 0; i < 100; ++i)
        h.observe(3);
    EXPECT_EQ(h.count(), 200u);
    EXPECT_EQ(h.sum(), 400u);
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(1.0), 3u);
    EXPECT_LE(h.quantile(0.50), h.quantile(0.99));

    obs::Histogram other;
    other.observe(3);
    obs::Histogram::Snapshot merged = h.snapshot();
    merged.merge(other.snapshot());
    EXPECT_EQ(merged.count(), 201u);
    EXPECT_EQ(merged.sum, 403u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(ObsHistogram, QuantileResolutionWithinABucket)
{
    // Above 4 a bucket spans [lo, hi] with hi < 2 * lo (quarter
    // octaves), so the estimate is within ~12% of any true value.
    obs::Histogram h;
    constexpr std::uint64_t kValue = 5000;
    for (int i = 0; i < 1000; ++i)
        h.observe(kValue);
    const std::uint64_t est = h.quantile(0.5);
    EXPECT_GE(est, kValue * 85 / 100);
    EXPECT_LE(est, kValue * 115 / 100);
}

// -------------------------------------------------------- registry

TEST(ObsRegistry, GetOrCreateIsIdentityAndLabelOrderInsensitive)
{
    obs::MetricsRegistry reg;
    obs::Counter &a = reg.counter("x_total", {{"a", "1"}, {"b", "2"}});
    obs::Counter &b = reg.counter("x_total", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&a, &b);
    obs::Counter &c = reg.counter("x_total", {{"a", "1"}});
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.size(), 2u);

    a.inc(3);
    reg.resetAll();
    EXPECT_EQ(a.value(), 0u);
}

TEST(ObsRegistry, UniqueInstancesAreDistinct)
{
    obs::MetricsRegistry reg;
    const std::string i0 = reg.uniqueInstance("router");
    const std::string i1 = reg.uniqueInstance("router");
    EXPECT_NE(i0, i1);
    EXPECT_EQ(i0.rfind("router", 0), 0u);
}

// ---------------------------------------------------------- tracer

TEST(ObsTracer, RingStaysBoundedAndKeepsTheTail)
{
    obs::Tracer tracer(100); // rounds up to 128
    EXPECT_EQ(tracer.capacity(), 128u);

    for (std::uint64_t i = 0; i < 3 * 128; ++i) {
        auto span = tracer.span("unit.test");
        span.finish();
    }
    EXPECT_EQ(tracer.recorded(), 3u * 128);
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 128u);
    for (const auto &r : spans)
        EXPECT_STREQ(r.name, "unit.test");

    tracer.clear();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(ObsTracer, NullTracerSpanIsANoOp)
{
    obs::Tracer::Span span(nullptr, "ignored");
    span.finish(); // must not crash or record anywhere
}

// ------------------------------------------------- text exposition

TEST(ObsExport, GoldenTextExposition)
{
    obs::MetricsRegistry reg;
    reg.counter("zz_total", {{"a", "x\"y"}}).inc(3);
    reg.gauge("aa_gauge").set(-7);
    obs::Histogram &h = reg.histogram("mm_hist", {{"k", "v"}});
    h.observe(0);
    h.observe(5);
    h.observe(5);

    // Families sorted by name; histogram emits cumulative non-empty
    // buckets plus +Inf/_sum/_count; the quote in the label value is
    // escaped. Pinned byte-for-byte.
    const std::string expected =
        "# TYPE aa_gauge gauge\n"
        "aa_gauge -7\n"
        "# TYPE mm_hist histogram\n"
        "mm_hist_bucket{k=\"v\",le=\"0\"} 1\n"
        "mm_hist_bucket{k=\"v\",le=\"5\"} 3\n"
        "mm_hist_bucket{k=\"v\",le=\"+Inf\"} 3\n"
        "mm_hist_sum{k=\"v\"} 10\n"
        "mm_hist_count{k=\"v\"} 3\n"
        "# TYPE zz_total counter\n"
        "zz_total{a=\"x\\\"y\"} 3\n";
    EXPECT_EQ(obs::exposeText(reg), expected);
}

TEST(ObsExport, SeriesOfOneFamilyStayContiguous)
{
    // The registry key is name + rendered labels, whose '{' sorts
    // after '_': families must still be grouped under one # TYPE.
    obs::MetricsRegistry reg;
    reg.counter("f_total", {{"w", "1"}}).inc();
    reg.counter("f_total_more").inc();
    reg.counter("f_total", {{"w", "0"}}).inc();

    const std::string text = obs::exposeText(reg);
    const std::string expected =
        "# TYPE f_total counter\n"
        "f_total{w=\"0\"} 1\n"
        "f_total{w=\"1\"} 1\n"
        "# TYPE f_total_more counter\n"
        "f_total_more 1\n";
    EXPECT_EQ(text, expected);
}

// ------------------------------------------------- JSON round-trip

/**
 * Minimal JSON syntax checker (objects, arrays, strings, numbers,
 * bools, null): enough to prove the exporter emits well-formed JSON
 * without a third-party parser.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::string w(word);
        if (s_.compare(pos_, w.size(), w) != 0)
            return false;
        pos_ += w.size();
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                s_[pos_] == '\t' || s_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

TEST(ObsExport, JsonIsWellFormedForMixedRegistry)
{
    obs::MetricsRegistry reg;
    reg.counter("c_total", {{"weird", "a\"b\\c\nd"}}).inc(2);
    reg.gauge("g").set(-3);
    reg.histogram("h").observe(42);

    obs::Tracer tracer(16);
    tracer.span("json.test").finish();

    const std::string json = obs::exportJson(reg, &tracer);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"benchmark\": \"obs_dump\""),
              std::string::npos);
    EXPECT_NE(json.find("\"spans\""), std::string::npos);
    EXPECT_NE(json.find("json.test"), std::string::npos);
}

// ------------------------------- registry-served component stats

TEST(ObsIntegration, RouterCacheStatsAreServedFromTheRegistry)
{
    obs::MetricsRegistry reg;
    Router router(4, false, 32, 4, &reg);

    const Permutation p = named::bitReversal(4).toPermutation();
    router.planCached(p);
    router.planCached(p);
    router.planCached(p);
    EXPECT_EQ(router.planCacheMisses(), 1u);
    EXPECT_EQ(router.planCacheHits(), 2u);

    // cacheStats() must be a view over the registry's counters, not
    // a second implementation: sum the registry series directly.
    std::uint64_t reg_hits = 0, reg_misses = 0;
    reg.visit([&](const obs::MetricsRegistry::View &v) {
        if (v.name == "srbenes_router_plan_cache_hits_total")
            reg_hits += v.counter->value();
        if (v.name == "srbenes_router_plan_cache_misses_total")
            reg_misses += v.counter->value();
    });
    EXPECT_EQ(reg_hits, router.planCacheHits());
    EXPECT_EQ(reg_misses, router.planCacheMisses());

    router.clearPlanCache();
    EXPECT_EQ(router.planCacheHits(), 0u);
    EXPECT_EQ(router.planCacheMisses(), 0u);
}

TEST(ObsIntegration, NullRegistryDisablesInstrumentation)
{
    Router router(3, false, 16, 2, nullptr);
    const Permutation p = named::bitReversal(3).toPermutation();
    router.planCached(p);
    router.planCached(p);
    // Counters are off; introspection reads zeros but routing works.
    EXPECT_EQ(router.planCacheHits(), 0u);
    EXPECT_EQ(router.planCacheMisses(), 0u);
    EXPECT_EQ(router.planCacheSize(), 1u);
}

TEST(ObsIntegration, StreamStatsRoundTripThroughRegistryAndJson)
{
    obs::MetricsRegistry reg;
    const unsigned n = 4;
    const Word N = Word{1} << n;

    StreamOptions opts;
    opts.workers = 2;
    opts.producers = 1;
    opts.metrics = &reg;
    StreamEngine eng(n, opts);

    std::vector<std::shared_ptr<const Permutation>> perms;
    Prng prng(7);
    for (int i = 0; i < 4; ++i)
        perms.push_back(std::make_shared<Permutation>(
            BpcSpec::random(n, prng).toPermutation()));

    eng.start();
    auto &prod = eng.producer(0);
    constexpr std::uint64_t kTotal = 2000;
    StreamResult res;
    for (std::uint64_t i = 0; i < kTotal; ++i) {
        std::vector<Word> payload(N);
        for (Word j = 0; j < N; ++j)
            payload[j] = i * N + j;
        while (!prod.trySubmit(i, perms[i % perms.size()], payload))
            while (prod.tryPoll(res)) {
            }
        while (prod.tryPoll(res)) {
        }
    }
    while (prod.received() < kTotal)
        prod.awaitResult(res);
    eng.stop();

    const StreamStats st = eng.stats();
    EXPECT_EQ(st.requests, kTotal);
    EXPECT_EQ(st.local_hits + st.shared_lookups, kTotal);
    EXPECT_GE(st.p99_ns, st.p50_ns);

    // StreamStats must be the registry's numbers, not a shadow copy.
    std::uint64_t reg_requests = 0, reg_wakes = 0;
    reg.visit([&](const obs::MetricsRegistry::View &v) {
        if (v.name == "srbenes_stream_requests_total")
            reg_requests += v.counter->value();
        if (v.name == "srbenes_stream_doorbell_wakes_total")
            reg_wakes += v.counter->value();
    });
    EXPECT_EQ(reg_requests, st.requests);
    EXPECT_EQ(reg_wakes, st.doorbell_wakes);

    // And the whole run must export as well-formed JSON and text.
    const std::string json = obs::exportJson(reg);
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("srbenes_stream_latency_ns"),
              std::string::npos);

    const std::string text = obs::exposeText(reg);
    EXPECT_NE(text.find("# TYPE srbenes_stream_requests_total "
                        "counter"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE srbenes_stream_latency_ns histogram"),
        std::string::npos);
}

} // namespace
} // namespace srbenes
