/**
 * @file
 * Unit and property tests for the bit-field utilities underlying all
 * index manipulation in the library.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/prng.hh"

namespace srbenes
{
namespace
{

TEST(BitOps, BitExtraction)
{
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 2), 0u);
    EXPECT_EQ(bit(0b1010, 3), 1u);
    EXPECT_EQ(bit(~Word{0}, 63), 1u);
}

TEST(BitOps, SetBit)
{
    EXPECT_EQ(setBit(0b0000, 2, 1), 0b0100u);
    EXPECT_EQ(setBit(0b1111, 2, 0), 0b1011u);
    // Only the low bit of the value argument matters.
    EXPECT_EQ(setBit(0b0000, 1, 0b10), 0b0000u);
    EXPECT_EQ(setBit(0b0000, 1, 0b11), 0b0010u);
}

TEST(BitOps, FlipBit)
{
    EXPECT_EQ(flipBit(0b1010, 1), 0b1000u);
    EXPECT_EQ(flipBit(0b1010, 0), 0b1011u);
    EXPECT_EQ(flipBit(flipBit(12345, 7), 7), 12345u);
}

TEST(BitOps, BitFieldExtraction)
{
    // The paper's example: i = 101101, (i)_{5..3} should drop the low
    // bits -- here we exercise several windows.
    const Word i = 0b101101;
    EXPECT_EQ(bits(i, 5, 3), 0b101u);
    EXPECT_EQ(bits(i, 3, 1), 0b110u);
    EXPECT_EQ(bits(i, 0, 0), 1u);
    EXPECT_EQ(bits(i, 5, 0), i);
}

TEST(BitOps, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(4), 0b1111u);
    EXPECT_EQ(lowMask(64), ~Word{0});
}

TEST(BitOps, ReverseBitsSmall)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    EXPECT_EQ(reverseBits(0b101, 3), 0b101u);
    EXPECT_EQ(reverseBits(0, 8), 0u);
}

TEST(BitOps, ShuffleIsLeftRotation)
{
    // sigma(i_{n-1} ... i_0) = i_{n-2} ... i_0 i_{n-1}.
    EXPECT_EQ(shuffle(0b100, 3), 0b001u);
    EXPECT_EQ(shuffle(0b011, 3), 0b110u);
    EXPECT_EQ(unshuffle(0b001, 3), 0b100u);
    EXPECT_EQ(unshuffle(0b110, 3), 0b011u);
}

TEST(BitOps, RotationComposition)
{
    EXPECT_EQ(rotateLeft(0b0011, 4, 2), 0b1100u);
    EXPECT_EQ(rotateRight(0b1100, 4, 2), 0b0011u);
    EXPECT_EQ(rotateLeft(0b0011, 4, 4), 0b0011u);
    EXPECT_EQ(rotateLeft(0b0011, 4, 6), 0b1100u);
}

TEST(BitOps, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(exactLog2(Word{1} << 20), 20u);
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_FALSE(isPowerOfTwo(0));
}

TEST(BitOps, ExtractDeposit)
{
    EXPECT_EQ(extractBits(0b101101, 0b001111), 0b1101u);
    EXPECT_EQ(extractBits(0b101101, 0b110000), 0b10u);
    EXPECT_EQ(depositBits(0b11, 0b0101), 0b0101u);
    EXPECT_EQ(depositBits(0b10, 0b0101), 0b0100u);
}

TEST(BitOps, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0b1011), 3u);
    EXPECT_EQ(popCount(~Word{0}), 64u);
}

/** Property sweep over widths: structural identities that every later
 *  module relies on. */
class BitOpsProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitOpsProperty, ShuffleUnshuffleInverse)
{
    const unsigned n = GetParam();
    for (Word v = 0; v < (Word{1} << n); ++v) {
        EXPECT_EQ(unshuffle(shuffle(v, n), n), v);
        EXPECT_EQ(shuffle(unshuffle(v, n), n), v);
    }
}

TEST_P(BitOpsProperty, ReverseIsInvolution)
{
    const unsigned n = GetParam();
    for (Word v = 0; v < (Word{1} << n); ++v)
        EXPECT_EQ(reverseBits(reverseBits(v, n), n), v);
}

TEST_P(BitOpsProperty, ShuffleEqualsRotateLeftOne)
{
    const unsigned n = GetParam();
    for (Word v = 0; v < (Word{1} << n); ++v)
        EXPECT_EQ(shuffle(v, n), rotateLeft(v, n, 1));
}

TEST_P(BitOpsProperty, ExtractDepositRoundTrip)
{
    const unsigned n = GetParam();
    Prng prng(n);
    for (int trial = 0; trial < 50; ++trial) {
        const Word mask = prng.below(Word{1} << n);
        const Word v = prng.below(Word{1} << n);
        // Depositing what was extracted reproduces the masked bits.
        EXPECT_EQ(depositBits(extractBits(v, mask), mask), v & mask);
        // Extracting what was deposited reproduces the low field.
        const Word field = prng.below(Word{1} << popCount(mask));
        EXPECT_EQ(extractBits(depositBits(field, mask), mask), field);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitOpsProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

} // namespace
} // namespace srbenes
