/**
 * @file
 * Tests for the omega / inverse-omega classes: the window predicates
 * are cross-validated against the actual omega-network simulation
 * (exhaustively for N <= 8), and every Section II inverse-omega
 * generator is checked for membership and semantics.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "networks/omega_network.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(OmegaClass, IdentityIsInBothClasses)
{
    for (unsigned n = 1; n <= 6; ++n) {
        const auto id = Permutation::identity(std::size_t{1} << n);
        EXPECT_TRUE(isOmega(id));
        EXPECT_TRUE(isInverseOmega(id));
    }
}

TEST(OmegaClass, PaperFigFiveExample)
{
    // D = (1, 3, 2, 0) is an Omega(2) permutation (the paper routes
    // it on an omega network) but, as Fig. 5 shows, not in F(2) --
    // here we check the omega side.
    const Permutation d{1, 3, 2, 0};
    EXPECT_TRUE(isOmega(d));
}

TEST(OmegaClass, PredicateMatchesNetworkExhaustively)
{
    // Ground truth: the simulated omega network. Every permutation
    // of 8 elements agrees with the window predicate.
    const unsigned n = 3;
    const OmegaNetwork net(n);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    std::uint64_t members = 0;
    do {
        const Permutation p(dest);
        const bool sim = net.route(p).success;
        ASSERT_EQ(sim, isOmega(p)) << p.toString();
        members += sim;
    } while (std::next_permutation(dest.begin(), dest.end()));
    // |Omega(3)| = 2^(3 * 4) = 4096 of the 40320.
    EXPECT_EQ(members, 4096u);
}

TEST(OmegaClass, InversePredicateMatchesBackwardNetworkExhaustively)
{
    const unsigned n = 3;
    const OmegaNetwork net(n);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation p(dest);
        ASSERT_EQ(net.routeInverse(p).success, isInverseOmega(p))
            << p.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(OmegaClass, InverseOmegaIsOmegaOfInverse)
{
    Prng prng(123);
    for (unsigned n = 2; n <= 6; ++n) {
        for (int trial = 0; trial < 50; ++trial) {
            const auto p =
                Permutation::random(std::size_t{1} << n, prng);
            EXPECT_EQ(isInverseOmega(p), isOmega(p.inverse()));
        }
    }
}

class OmegaGenerators : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OmegaGenerators, CyclicShiftSemanticsAndMembership)
{
    const unsigned n = GetParam();
    const Word size = Word{1} << n;
    for (Word k : {Word{0}, Word{1}, Word{3}, size - 1}) {
        const Permutation d = named::cyclicShift(n, k);
        for (Word i = 0; i < size; ++i)
            EXPECT_EQ(d[i], (i + k) % size);
        // The paper lists cyclic shifts in InverseOmega(n) and notes
        // they are in Omega(n) too.
        EXPECT_TRUE(isInverseOmega(d));
        EXPECT_TRUE(isOmega(d));
    }
}

TEST_P(OmegaGenerators, POrderingMembership)
{
    const unsigned n = GetParam();
    const Word size = Word{1} << n;
    for (Word p : {Word{1}, Word{3}, Word{5}, Word{7}}) {
        const Permutation d = named::pOrdering(n, p);
        for (Word i = 0; i < size; ++i)
            EXPECT_EQ(d[i], (p * i) % size);
        EXPECT_TRUE(isInverseOmega(d));
        EXPECT_TRUE(isOmega(d));
    }
}

TEST_P(OmegaGenerators, InversePOrderingUnscrambles)
{
    const unsigned n = GetParam();
    for (Word p : {Word{3}, Word{5}, Word{9}}) {
        const Permutation fwd = named::pOrdering(n, p);
        const Permutation inv = named::inversePOrdering(n, p);
        EXPECT_EQ(fwd.then(inv),
                  Permutation::identity(std::size_t{1} << n));
    }
}

TEST_P(OmegaGenerators, FubLambdaMembership)
{
    const unsigned n = GetParam();
    Prng prng(n);
    for (int trial = 0; trial < 10; ++trial) {
        const Word p = 2 * prng.below(Word{1} << (n - 1)) + 1;
        const Word k = prng.below(Word{1} << n);
        const Permutation d = named::pOrderingShift(n, p, k);
        EXPECT_TRUE(isInverseOmega(d)) << d.toString();
        EXPECT_TRUE(isOmega(d)) << d.toString();
    }
}

TEST_P(OmegaGenerators, FubDeltaMembership)
{
    const unsigned n = GetParam();
    for (unsigned seg = 1; seg <= n; ++seg) {
        for (Word k : {Word{1}, Word{2}, (Word{1} << seg) - 1}) {
            const Permutation d = named::segmentCyclicShift(n, seg, k);
            EXPECT_TRUE(isInverseOmega(d)) << d.toString();
        }
    }
}

TEST_P(OmegaGenerators, FubEtaMembership)
{
    const unsigned n = GetParam();
    for (unsigned k = 1; k < n; ++k) {
        const Permutation d = named::conditionalExchange(n, k);
        // Pairs (2i, 2i+1) swap iff bit k of the index is one.
        for (Word i = 0; i < d.size(); i += 2) {
            if (bit(i, k)) {
                EXPECT_EQ(d[i], i + 1);
                EXPECT_EQ(d[i + 1], i);
            } else {
                EXPECT_EQ(d[i], i);
                EXPECT_EQ(d[i + 1], i + 1);
            }
        }
        EXPECT_TRUE(isInverseOmega(d)) << d.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, OmegaGenerators,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u));

TEST(OmegaClass, OddInverseMod2n)
{
    for (unsigned n = 1; n <= 20; ++n)
        for (Word p = 1; p < 32; p += 2)
            EXPECT_EQ((p * named::oddInverseMod2n(p, n)) & lowMask(n),
                      1u);
}

TEST(OmegaClass, SegmentShiftDegenerateCases)
{
    // A whole-vector segment equals a plain cyclic shift; a 1-element
    // shift of 0 is the identity.
    EXPECT_EQ(named::segmentCyclicShift(4, 4, 5),
              named::cyclicShift(4, 5));
    EXPECT_EQ(named::segmentCyclicShift(4, 2, 0),
              Permutation::identity(16));
}

TEST(OmegaClass, RandomPermutationsRarelyOmega)
{
    // Sanity: for n = 4 the omega class has 2^32 of 16! ~ 2 * 10^13
    // members; 200 random draws should essentially never hit it.
    Prng prng(77);
    int hits = 0;
    for (int trial = 0; trial < 200; ++trial)
        hits += isOmega(Permutation::random(16, prng));
    EXPECT_LE(hits, 2);
}

} // namespace
} // namespace srbenes
