/**
 * @file
 * Unit tests for the srb-lint structural analyzer: every rule is
 * driven against embedded good/bad fixture snippets, plus the
 * lexer, inline-allow, and baseline machinery. The snippets live in
 * raw strings, which the analyzer blanks before matching — so this
 * file itself stays clean under the `srb_lint_tree` ctest gate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "srb_lint/lint.hh"

namespace
{

using namespace srbenes::lint;

/** Rule ids of lintText over @p text as a src/ file. */
std::vector<std::string>
rulesIn(const std::string &text, const std::string &path = "src/x.cc")
{
    std::vector<std::string> ids;
    for (const Finding &f : lintText(path, text))
        ids.push_back(f.rule);
    return ids;
}

bool
hasRule(const std::string &text, const std::string &rule,
        const std::string &path = "src/x.cc")
{
    const std::vector<std::string> ids = rulesIn(text, path);
    return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

// ---------------------------------------------------------- scanner

TEST(ScanText, BlanksLineAndBlockComments)
{
    const FileView v = scanText("int a; // volatile\n/* rand( */int b;\n");
    EXPECT_EQ(v.code.size(), 3u); // trailing newline -> empty line
    EXPECT_EQ(v.code[0].find("volatile"), std::string::npos);
    EXPECT_NE(v.comment[0].find("volatile"), std::string::npos);
    EXPECT_EQ(v.code[1].find("rand"), std::string::npos);
    EXPECT_NE(v.code[1].find("int b;"), std::string::npos);
}

TEST(ScanText, BlanksStringAndCharLiterals)
{
    const FileView v =
        scanText("auto s = \"volatile new delete\"; char c = 'v';\n");
    EXPECT_EQ(v.code[0].find("volatile"), std::string::npos);
    EXPECT_EQ(v.code[0].find("new"), std::string::npos);
    EXPECT_NE(v.code[0].find("auto s ="), std::string::npos);
}

TEST(ScanText, BlanksRawStrings)
{
    const FileView v = scanText(
        "auto r = R\"xx(volatile rand( )xx\"; int after;\n");
    EXPECT_EQ(v.code[0].find("volatile"), std::string::npos);
    EXPECT_NE(v.code[0].find("int after;"), std::string::npos);
}

TEST(ScanText, DigitSeparatorIsNotACharLiteral)
{
    const FileView v = scanText("int n = 1'000'000; volatile int q;\n");
    // If 1'000 opened a char literal the volatile would be blanked.
    EXPECT_NE(v.code[0].find("volatile"), std::string::npos);
}

TEST(ScanText, BlockCommentSpansLines)
{
    const FileView v = scanText("/* line one\nvolatile\n*/ int x;\n");
    EXPECT_EQ(v.code[1].find("volatile"), std::string::npos);
    EXPECT_NE(v.comment[1].find("volatile"), std::string::npos);
    EXPECT_NE(v.code[2].find("int x;"), std::string::npos);
}

// -------------------------------------------- SRB001 order-justify

TEST(Srb001, FlagsUnjustifiedRelaxed)
{
    EXPECT_TRUE(hasRule(R"__(
void f(std::atomic<int> &a)
{
    a.store(1, std::memory_order_relaxed);
}
#include <atomic>
)__",
                        "SRB001"));
}

TEST(Srb001, AcceptsTrailingJustification)
{
    EXPECT_FALSE(hasRule(R"__(
#include <atomic>
void f(std::atomic<int> &a)
{
    a.store(1, std::memory_order_relaxed); // order: plain counter
}
)__",
                         "SRB001"));
}

TEST(Srb001, AcceptsJustificationCommentAbove)
{
    EXPECT_FALSE(hasRule(R"__(
#include <atomic>
void f(std::atomic<int> &a)
{
    // order: relaxed; nothing is published through this flag.
    a.store(1, std::memory_order_relaxed);
}
)__",
                         "SRB001"));
}

TEST(Srb001, CoversEveryListedOrderAndScopedForm)
{
    for (const char *ord :
         {"std::memory_order_relaxed", "std::memory_order_acquire",
          "std::memory_order_release", "std::memory_order_acq_rel",
          "std::memory_order::relaxed"}) {
        const std::string text = std::string(R"__(
#include <atomic>
void f(std::atomic<int> &a) { a.store(1, )__") +
                                 ord + "); }\n";
        EXPECT_TRUE(hasRule(text, "SRB001")) << ord;
    }
}

TEST(Srb001, JustificationInCommentViewOnlyCountsAsComment)
{
    // "order:" inside a string literal is not a justification.
    EXPECT_TRUE(hasRule(R"__(
#include <atomic>
void f(std::atomic<int> &a)
{
    log("order: not a comment");
    a.store(1, std::memory_order_relaxed);
}
)__",
                        "SRB001"));
}

// ------------------------------------------------ SRB002 volatile

TEST(Srb002, FlagsVolatile)
{
    EXPECT_TRUE(hasRule("volatile int sink;\n", "SRB002"));
}

TEST(Srb002, IgnoresVolatileInCommentsStringsAndAsm)
{
    EXPECT_FALSE(hasRule("// volatile is discussed here\n", "SRB002"));
    EXPECT_FALSE(hasRule("auto s = \"volatile\";\n", "SRB002"));
    // __volatile__ (the asm qualifier) is a different token.
    EXPECT_FALSE(
        hasRule("__asm__ __volatile__(\"\" : : : \"memory\");\n",
                "SRB002"));
}

// ---------------------------------------------------- SRB003 rand

TEST(Srb003, FlagsRandAndSrand)
{
    EXPECT_TRUE(hasRule("int x = rand();\n", "SRB003"));
    EXPECT_TRUE(hasRule("srand(42);\n", "SRB003"));
}

TEST(Srb003, IgnoresSubstringsAndOtherCalls)
{
    EXPECT_FALSE(hasRule("strand();\n", "SRB003"));
    EXPECT_FALSE(hasRule("auto r = prng.rand;\n", "SRB003"));
}

// ----------------------------------------- SRB004 naked new/delete

TEST(Srb004, FlagsNakedNewAndDelete)
{
    EXPECT_TRUE(hasRule("int *p = new int[4];\n", "SRB004"));
    EXPECT_TRUE(hasRule("delete p;\n", "SRB004"));
}

TEST(Srb004, IgnoresDeletedFunctionsAndOperatorDecls)
{
    EXPECT_FALSE(hasRule("Router(const Router &) = delete;\n",
                         "SRB004"));
    EXPECT_FALSE(
        hasRule("void *operator new(std::size_t n);\n", "SRB004"));
    EXPECT_FALSE(hasRule("auto p = std::make_unique<int>(3);\n",
                         "SRB004"));
}

// ------------------------------------------------ SRB005 spin-yield

TEST(Srb005, FlagsYieldLoops)
{
    EXPECT_TRUE(hasRule(R"__(
#include <thread>
void f() { while (!done) std::this_thread::yield(); }
)__",
                        "SRB005"));
    EXPECT_TRUE(hasRule("while (busy) sched_yield();\n", "SRB005"));
}

// --------------------------------------- SRB006 annotated mutexes

TEST(Srb006, FlagsRawMutexMember)
{
    EXPECT_TRUE(hasRule("struct S { std::mutex mu_; };\n", "SRB006"));
    EXPECT_TRUE(
        hasRule("mutable std::shared_mutex mu;\n", "SRB006"));
}

TEST(Srb006, AcceptsAnnotatedOrWrappedMutexes)
{
    EXPECT_FALSE(hasRule(
        "std::mutex mu_ SRB_CAPABILITY(\"mutex\");\n", "SRB006"));
    EXPECT_FALSE(hasRule("mutable srbenes::Mutex mu_;\n", "SRB006"));
    EXPECT_FALSE(hasRule("mutable SharedMutex mu;\n", "SRB006"));
    // Template arguments are uses, not members.
    EXPECT_FALSE(hasRule("std::lock_guard<std::mutex> lock(mu);\n",
                         "SRB006"));
}

// ------------------------------------------ SRB007 include hygiene

TEST(Srb007, FlagsBitsInclude)
{
    EXPECT_TRUE(
        hasRule("#include <bits/stdc++.h>\n", "SRB007"));
}

TEST(Srb007, RequiresDirectAtomicInclude)
{
    EXPECT_TRUE(hasRule(R"__(
#include "core/stream.hh"
std::atomic<int> g;
)__",
                        "SRB007"));
    EXPECT_FALSE(hasRule(R"__(
#include <atomic>
std::atomic<int> g;
)__",
                         "SRB007"));
}

TEST(Srb007, RequiresDirectThreadInclude)
{
    EXPECT_TRUE(hasRule("std::thread t;\n", "SRB007"));
    EXPECT_TRUE(hasRule("std::this_thread::get_id();\n", "SRB007"));
    EXPECT_FALSE(hasRule(R"__(
#include <thread>
std::thread t;
)__",
                         "SRB007"));
}

// ----------------------------------------- SRB008 bitsliced files

TEST(Srb008, FlagsScalarWalksInTaggedFiles)
{
    EXPECT_TRUE(hasRule(R"__(// srb-lint: bitsliced
void f(const FastEngine &e)
{
    for (Word i = 0; i < e.switchesPerStage(); ++i) {}
}
)__",
                        "SRB008"));
    EXPECT_TRUE(hasRule(R"__(// srb-lint: bitsliced
SwitchStates states = engine.planStates(plan);
)__",
                        "SRB008"));
}

TEST(Srb008, UntaggedFilesAreExempt)
{
    EXPECT_FALSE(hasRule(R"__(
void f(const FastEngine &e)
{
    for (Word i = 0; i < e.switchesPerStage(); ++i) {}
}
)__",
                         "SRB008"));
}

TEST(Srb008, TagOnlyCountsOnTheOpeningLines)
{
    // A doc comment that merely QUOTES the tag deeper in the file
    // does not opt the file in.
    EXPECT_FALSE(hasRule(R"__(
int a;
int b;
int c;
// files tagged srb-lint: bitsliced promise word-parallel states
SwitchStates states;
)__",
                         "SRB008"));
}

TEST(Srb008, AllowSuppressesConstructionTimeUse)
{
    EXPECT_FALSE(hasRule(R"__(// srb-lint: bitsliced
// srb-lint: allow(SRB008) construction-time schedule derivation
const Word S = eng.switchesPerStage();
)__",
                         "SRB008"));
}

// --------------------------------------------- SRB009 arena files

TEST(Srb009, FlagsHeapPlanBytesInTaggedFiles)
{
    EXPECT_TRUE(hasRule(R"__(// srb-lint: arena
std::vector<Word> plan_bytes(words);
)__",
                        "SRB009"));
    EXPECT_TRUE(hasRule(R"__(// srb-lint: arena
auto backing = std::make_unique<Word[]>(words);
)__",
                        "SRB009"));
    EXPECT_TRUE(hasRule(R"__(// srb-lint: arena
Word *raw = new Word[words];
)__",
                        "SRB009"));
}

TEST(Srb009, UntaggedFilesAndNonPlanVectorsAreExempt)
{
    EXPECT_FALSE(hasRule("std::vector<Word> fine(words);\n",
                         "SRB009"));
    // Pointer tables and other element types are not plan bytes.
    EXPECT_FALSE(hasRule(R"__(// srb-lint: arena
std::vector<Word *> tile_base;
std::vector<std::uint8_t> success;
)__",
                         "SRB009"));
}

TEST(Srb009, TagOnlyCountsOnTheOpeningLines)
{
    EXPECT_FALSE(hasRule(R"__(
int a;
int b;
int c;
// files tagged srb-lint: arena must use PlanArena
std::vector<Word> words;
)__",
                         "SRB009"));
}

TEST(Srb009, AllowSuppressesTheCompatForm)
{
    EXPECT_FALSE(hasRule(R"__(// srb-lint: arena
// srb-lint: allow(SRB009) the materialized compat form
std::vector<Word> words;
)__",
                         "SRB009"));
}

// ------------------------------------------- SRB010 modeled files

TEST(Srb010, FlagsRawPrimitivesInTaggedFiles)
{
    EXPECT_TRUE(hasRule(R"__(// srb-lint: modeled
std::atomic<std::uint64_t> seq{0};
)__",
                        "SRB010"));
    EXPECT_TRUE(hasRule(R"__(// srb-lint: modeled
std::mutex mu; // srb-lint: allow(SRB006) fixture
)__",
                        "SRB010"));
    EXPECT_TRUE(hasRule(R"__(// srb-lint: modeled
long r = syscall(SYS_futex, addr, FUTEX_WAIT, v, nullptr);
)__",
                        "SRB010"));
    EXPECT_TRUE(hasRule(R"__(// srb-lint: modeled
std::lock_guard<std::mutex> lk(mu);
)__",
                        "SRB010"));
}

TEST(Srb010, ShimTypesAndUntaggedFilesAreExempt)
{
    // The shim is the sanctioned spelling in modeled files.
    EXPECT_FALSE(hasRule(R"__(// srb-lint: modeled
sync::Atomic<std::uint64_t> seq{0};
sync::Mutex mu;
sync::MutexLock lock(mu);
sync::Cell<int> c;
)__",
                         "SRB010"));
    // Untagged files may use raw primitives freely (SRB010 is
    // opt-in; other rules still apply to them).
    EXPECT_FALSE(hasRule("std::atomic<int> x{0};\n", "SRB010"));
    // memory_order tokens are not std::atomic uses.
    EXPECT_FALSE(hasRule(R"__(// srb-lint: modeled
// order: fixture
seq.load(std::memory_order_acquire);
)__",
                         "SRB010"));
}

TEST(Srb010, TagOnlyCountsOnTheOpeningLines)
{
    EXPECT_FALSE(hasRule(R"__(
int a;
int b;
int c;
// files tagged srb-lint: modeled go through common/sync.hh
std::atomic<int> x{0};
)__",
                         "SRB010"));
}

TEST(Srb010, AllowSuppressesAJustifiedEscape)
{
    EXPECT_FALSE(hasRule(R"__(// srb-lint: modeled
// srb-lint: allow(SRB010) scheduler-internal handshake, not a
// modeled code path.
std::mutex handshake; // srb-lint: allow(SRB006) fixture
)__",
                         "SRB010"));
}

// --------------------------------------------- inline suppressions

TEST(Allow, SameLineSuppresses)
{
    EXPECT_FALSE(hasRule(
        "volatile int x; // srb-lint: allow(SRB002) fixture\n",
        "SRB002"));
}

TEST(Allow, CommentUpToTwoLinesAboveSuppresses)
{
    EXPECT_FALSE(hasRule(R"__(
// srb-lint: allow(SRB002) reason wraps onto a
// second comment line before the code.
volatile int x;
)__",
                         "SRB002"));
}

TEST(Allow, ListsAndOtherRulesDoNotLeak)
{
    // allow(SRB003) does not excuse a volatile.
    EXPECT_TRUE(hasRule(
        "volatile int x; // srb-lint: allow(SRB003)\n", "SRB002"));
    // A comma list suppresses each named rule.
    EXPECT_FALSE(hasRule("volatile int x = rand(); // srb-lint: "
                         "allow(SRB002, SRB003)\n",
                         "SRB002"));
}

// ----------------------------------------------- findings plumbing

TEST(Findings, CarryFileLineAndSortedOrder)
{
    const std::vector<Finding> fs = lintText("src/demo.cc", R"__(
volatile int a;
int b = rand();
)__");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].file, "src/demo.cc");
    EXPECT_EQ(fs[0].rule, "SRB002");
    EXPECT_EQ(fs[0].line, 2u);
    EXPECT_EQ(fs[0].code, "volatile int a;");
    EXPECT_EQ(fs[1].rule, "SRB003");
    EXPECT_EQ(fs[1].line, 3u);
}

TEST(Findings, RuleCatalogMatchesEmittedIds)
{
    const std::vector<RuleInfo> &cat = ruleCatalog();
    ASSERT_EQ(cat.size(), 10u);
    EXPECT_STREQ(cat.front().id, "SRB001");
    EXPECT_STREQ(cat.back().id, "SRB010");
}

// ------------------------------------------------------- baseline

TEST(Baseline, KeySurvivesLineDrift)
{
    const std::vector<Finding> before =
        lintText("src/demo.cc", "volatile int a;\n");
    const std::vector<Finding> after = lintText(
        "src/demo.cc", "// a new comment shifts lines\n\nvolatile int a;\n");
    ASSERT_EQ(before.size(), 1u);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_NE(before[0].line, after[0].line);
    EXPECT_EQ(baselineKey(before[0]), baselineKey(after[0]));
}

TEST(Baseline, ApplyDropsExactlyTheBaselinedFindings)
{
    const std::vector<Finding> fs = lintText("src/demo.cc", R"__(
volatile int a;
int b = rand();
)__");
    ASSERT_EQ(fs.size(), 2u);
    std::set<std::string> baseline{baselineKey(fs[0])};
    std::size_t dropped = 0;
    const std::vector<Finding> kept =
        applyBaseline(fs, baseline, &dropped);
    EXPECT_EQ(dropped, 1u);
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].rule, "SRB003");
}

} // namespace
