/**
 * @file
 * Tests for the baseline fabrics (omega, Batcher, crossbar) and the
 * uniform PermutationNetwork interface: cost formulas of Section I
 * and routing power of each fabric.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "networks/batcher.hh"
#include "networks/benes_adapter.hh"
#include "networks/crossbar.hh"
#include "networks/network_iface.hh"
#include "networks/omega_network.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(Networks, CostFormulas)
{
    for (unsigned n = 1; n <= 10; ++n) {
        const Word size = Word{1} << n;

        const SelfRoutingBenesNet benes(n);
        EXPECT_EQ(benes.numSwitches(), size * n - size / 2);
        EXPECT_EQ(benes.delayStages(), 2 * n - 1);

        const OmegaNetwork omega(n);
        EXPECT_EQ(omega.numSwitches(), n * size / 2);
        EXPECT_EQ(omega.delayStages(), n);

        const BatcherNetwork batcher(n);
        EXPECT_EQ(batcher.delayStages(), n * (n + 1) / 2);
        EXPECT_EQ(batcher.numSwitches(),
                  (size / 2) * n * (n + 1) / 2);

        const Crossbar xbar(n);
        EXPECT_EQ(xbar.numSwitches(), size * size);
        EXPECT_EQ(xbar.delayStages(), 1u);
    }
}

TEST(Networks, BatcherRoutesEverything)
{
    Prng prng(3);
    for (unsigned n = 1; n <= 8; ++n) {
        const BatcherNetwork net(n);
        for (int trial = 0; trial < 10; ++trial)
            EXPECT_TRUE(net.tryRoute(
                Permutation::random(std::size_t{1} << n, prng)));
    }
}

TEST(Networks, CrossbarRoutesEverything)
{
    Prng prng(4);
    const Crossbar net(5);
    for (int trial = 0; trial < 10; ++trial)
        EXPECT_TRUE(net.tryRoute(Permutation::random(32, prng)));
}

TEST(Networks, OmegaRejectsBitReversalButBenesRoutesIt)
{
    // Bit reversal needs the Benes fabric: it conflicts in an omega
    // network for n >= 3 but is a BPC (hence F) permutation.
    for (unsigned n = 3; n <= 8; ++n) {
        const auto d = named::bitReversal(n).toPermutation();
        EXPECT_FALSE(OmegaNetwork(n).tryRoute(d)) << n;
        EXPECT_TRUE(SelfRoutingBenesNet(n).tryRoute(d)) << n;
    }
}

TEST(Networks, OmegaConflictDiagnostics)
{
    const OmegaNetwork net(3);
    const auto res =
        net.route(named::bitReversal(3).toPermutation());
    EXPECT_FALSE(res.success);
    ASSERT_TRUE(res.conflict_stage.has_value());
    EXPECT_LT(*res.conflict_stage, 3u);
    EXPECT_GT(res.conflicts, 0u);
}

TEST(Networks, OmegaRoutesItsOwnClass)
{
    Prng prng(5);
    for (unsigned n = 2; n <= 6; ++n) {
        // Cyclic shifts and p-orderings are omega permutations.
        for (int trial = 0; trial < 10; ++trial) {
            const Word k = prng.below(Word{1} << n);
            EXPECT_TRUE(
                OmegaNetwork(n).tryRoute(named::cyclicShift(n, k)));
        }
    }
}

TEST(Networks, WaksmanAdapterRoutesEverything)
{
    Prng prng(6);
    const WaksmanBenesNet net(6);
    for (int trial = 0; trial < 10; ++trial)
        EXPECT_TRUE(net.tryRoute(Permutation::random(64, prng)));
}

TEST(Networks, SelfRoutingAdapterMatchesFClass)
{
    Prng prng(7);
    const SelfRoutingBenesNet net(4);
    for (int trial = 0; trial < 50; ++trial) {
        const auto d = Permutation::random(16, prng);
        EXPECT_EQ(net.tryRoute(d), inFClass(d));
    }
}

TEST(Networks, AllNetworksFactory)
{
    const auto nets = allNetworks(4);
    ASSERT_EQ(nets.size(), 8u);
    EXPECT_EQ(nets[0]->name(), "benes-self");
    EXPECT_EQ(nets[1]->name(), "benes-waksman");
    EXPECT_EQ(nets[2]->name(), "omega");
    EXPECT_EQ(nets[3]->name(), "batcher");
    EXPECT_EQ(nets[4]->name(), "odd-even-merge");
    EXPECT_EQ(nets[5]->name(), "crossbar");
    EXPECT_EQ(nets[6]->name(), "benes-router");
    EXPECT_EQ(nets[7]->name(), "benes-resilient");
    for (const auto &net : nets) {
        EXPECT_EQ(net->numLines(), 16u);
        EXPECT_TRUE(net->tryRoute(Permutation::identity(16)));
    }
}

TEST(Networks, RouteOutcomeDefaultAdaptsTryRoute)
{
    Prng prng(11);
    for (const auto &net : allNetworks(3)) {
        for (int trial = 0; trial < 20; ++trial) {
            const auto d = Permutation::random(8, prng);
            const RouteOutcome out = net->routeOutcome(d);
            EXPECT_EQ(out.ok(), net->tryRoute(d)) << net->name();
            if (out.ok()) {
                // Canonical payload: input i carries word i.
                for (Word i = 0; i < 8; ++i)
                    EXPECT_EQ(out.value()[d[i]], i) << net->name();
            } else {
                EXPECT_EQ(out.errc(), RouteErrc::NotInF)
                    << net->name();
            }
        }
    }
}

TEST(Networks, RouterAdaptersRouteEverything)
{
    Prng prng(12);
    const RouterNet router_net(4);
    ResilientNet resilient_net(4);
    for (int trial = 0; trial < 20; ++trial) {
        const auto d = Permutation::random(16, prng);
        EXPECT_TRUE(router_net.tryRoute(d));
        EXPECT_TRUE(resilient_net.tryRoute(d));
    }
    // With a stuck switch the resilient adapter still serves.
    resilient_net.resilient().injectFault(StuckFault{0, 0, 1});
    for (int trial = 0; trial < 5; ++trial) {
        const auto d = Permutation::random(16, prng);
        const RouteOutcome out = resilient_net.routeOutcome(d);
        EXPECT_TRUE(out.ok());
        if (out.ok()) {
            for (Word i = 0; i < 16; ++i)
                EXPECT_EQ(out.value()[d[i]], i);
        }
    }
}

TEST(Networks, DelayOrdering)
{
    // The paper's Section I trade-off: crossbar < omega < benes <
    // batcher in delay (strict from n = 3; at n = 2 Benes and
    // Batcher tie at 3 stages).
    for (unsigned n = 3; n <= 10; ++n) {
        EXPECT_LT(Crossbar(n).delayStages(),
                  OmegaNetwork(n).delayStages());
        EXPECT_LT(OmegaNetwork(n).delayStages(),
                  SelfRoutingBenesNet(n).delayStages());
        EXPECT_LT(SelfRoutingBenesNet(n).delayStages(),
                  BatcherNetwork(n).delayStages());
    }
}

} // namespace
} // namespace srbenes
