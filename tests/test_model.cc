/**
 * @file
 * Unit tests for the srb_model checker itself (src/model): the
 * exploration must find classic concurrency bugs (store-buffer
 * reordering, unsynchronized publication, data races, ABBA
 * deadlock, lost futex wakeups, lost updates) and must stay silent
 * on their correctly synchronized twins. Compiled with
 * -DSRBENES_MODEL so sync.hh routes into the checker.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "common/sync.hh"
#include "model/model.hh"

namespace srbenes
{
namespace
{

using model::explore;
using model::joinAll;
using model::modelAssert;
using model::Options;
using model::Result;
using model::spawn;

TEST(ModelCore, SequentialBodyRunsOnce)
{
    int runs = 0;
    const Result res = explore([&runs] {
        sync::Atomic<int> x(0);
        x.store(7);
        modelAssert(x.load() == 7, "sequential readback");
        ++runs;
    });
    EXPECT_TRUE(res.ok) << res.report();
    EXPECT_EQ(res.schedules, 1u);
    EXPECT_EQ(runs, 1);
}

TEST(ModelCore, AtomicIncrementsAreExactInAllInterleavings)
{
    const Result res = explore([] {
        sync::Atomic<int> x(0);
        spawn([&x] {
            // order: RMW atomicity under test
            x.fetch_add(1, std::memory_order_relaxed);
        });
        spawn([&x] {
            // order: RMW atomicity under test
            x.fetch_add(1, std::memory_order_relaxed);
        });
        joinAll();
        modelAssert(x.load() == 2, "both increments must land");
    });
    EXPECT_TRUE(res.ok) << res.report();
    EXPECT_GT(res.schedules, 1u);
}

/** Dekker/store-buffering: both loads may see the initial values
 *  under relaxed ordering — the checker must reach that outcome. */
TEST(ModelCore, StoreBufferingReachableUnderRelaxed)
{
    const Result res = explore([] {
        sync::Atomic<int> x(0);
        sync::Atomic<int> y(0);
        sync::Cell<int> r2(-1);
        spawn([&] {
            // order: litmus under test
            y.store(1, std::memory_order_relaxed);
            // order: litmus under test
            r2.write(x.load(std::memory_order_relaxed));
        });
        // order: litmus under test
        x.store(1, std::memory_order_relaxed);
        // order: litmus under test
        const int r1 = y.load(std::memory_order_relaxed);
        joinAll();
        modelAssert(!(r1 == 0 && r2.read() == 0),
                    "store buffering: both loads stale");
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failure.find("store buffering"), std::string::npos)
        << res.report();
    EXPECT_FALSE(res.decisions.empty());
    EXPECT_FALSE(res.trace.empty());
}

TEST(ModelCore, StoreBufferingForbiddenUnderSeqCst)
{
    const Result res = explore([] {
        sync::Atomic<int> x(0);
        sync::Atomic<int> y(0);
        sync::Cell<int> r2(-1);
        spawn([&] {
            y.store(1);
            r2.write(x.load());
        });
        x.store(1);
        const int r1 = y.load();
        joinAll();
        modelAssert(!(r1 == 0 && r2.read() == 0),
                    "seq_cst forbids the both-stale outcome");
    });
    EXPECT_TRUE(res.ok) << res.report();
}

TEST(ModelCore, MessagePassingReleaseAcquireIsSound)
{
    const Result res = explore([] {
        sync::Atomic<std::uint64_t> data(0);
        sync::Atomic<int> flag(0);
        spawn([&] {
            // order: payload published by the release store below
            data.store(42, std::memory_order_relaxed);
            // order: release publishes data; pairs with acquire
            flag.store(1, std::memory_order_release);
        });
        // order: acquire pairs with the release store of flag
        if (flag.load(std::memory_order_acquire) == 1) {
            // order: certified by the acquire load above
            modelAssert(data.load(std::memory_order_relaxed) == 42,
                        "acquire must certify the payload");
        }
        joinAll();
    });
    EXPECT_TRUE(res.ok) << res.report();
}

TEST(ModelCore, MessagePassingRelaxedPublicationCaught)
{
    const Result res = explore([] {
        sync::Atomic<std::uint64_t> data(0);
        sync::Atomic<int> flag(0);
        spawn([&] {
            // order: deliberately broken publication under test
            data.store(42, std::memory_order_relaxed);
            // order: deliberately broken publication under test
            flag.store(1, std::memory_order_relaxed);
        });
        // order: acquire of a relaxed store synchronizes nothing
        if (flag.load(std::memory_order_acquire) == 1) {
            // order: deliberately broken publication under test
            modelAssert(data.load(std::memory_order_relaxed) == 42,
                        "stale payload behind relaxed flag");
        }
        joinAll();
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failure.find("stale payload"), std::string::npos)
        << res.report();
}

TEST(ModelCore, PlainDataRaceCaught)
{
    const Result res = explore([] {
        sync::Cell<int> c(0);
        spawn([&c] { c.write(1); });
        c.write(2);
        joinAll();
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failure.find("data race"), std::string::npos)
        << res.report();
}

TEST(ModelCore, MutexExcludesPlainDataRace)
{
    const Result res = explore([] {
        sync::Mutex mu;
        sync::Cell<int> c(0);
        spawn([&] {
            sync::MutexLock lk(mu);
            c.write(c.read() + 1);
        });
        {
            sync::MutexLock lk(mu);
            c.write(c.read() + 1);
        }
        joinAll();
        sync::MutexLock lk(mu);
        modelAssert(c.read() == 2, "serialized increments");
    });
    EXPECT_TRUE(res.ok) << res.report();
}

TEST(ModelCore, AbbaDeadlockCaught)
{
    const Result res = explore([] {
        sync::Mutex a;
        sync::Mutex b;
        spawn([&] {
            sync::MutexLock lb(b);
            sync::MutexLock la(a);
        });
        sync::MutexLock la(a);
        sync::MutexLock lb(b);
        joinAll();
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failure.find("deadlock"), std::string::npos)
        << res.report();
}

/** A store without a notify must not wake a futex waiter: the
 *  blocked waiter is reported as a deadlock (lost wakeup). */
TEST(ModelCore, LostFutexWakeupCaught)
{
    const Result res = explore([] {
        sync::Atomic<std::uint64_t> seq(0);
        spawn([&seq] {
            // order: wake-path bug under test: store, no notify
            seq.store(1, std::memory_order_release);
        });
        // order: waiter under test
        seq.wait(0, std::memory_order_acquire);
        joinAll();
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failure.find("deadlock"), std::string::npos)
        << res.report();
    EXPECT_NE(res.failure.find("futex"), std::string::npos)
        << res.report();
}

TEST(ModelCore, NotifyAfterStoreWakesWaiter)
{
    const Result res = explore([] {
        sync::Atomic<std::uint64_t> seq(0);
        spawn([&seq] {
            // order: release publishes work before the wake
            seq.store(1, std::memory_order_release);
            seq.notify_all();
        });
        // order: pairs with the release store above
        seq.wait(0, std::memory_order_acquire);
        modelAssert(seq.load() == 1, "woken waiter sees the store");
        joinAll();
    });
    EXPECT_TRUE(res.ok) << res.report();
}

/** Lost update via a torn seq_cst read-modify-write: seq_cst loads
 *  always see the newest store, so the only way to lose an update
 *  is a context switch between the load and the store — exactly one
 *  preemption. Bound 0 must miss it and bound 1 find it. (A relaxed
 *  version would be reachable at bound 0 through a stale load —
 *  value choices deliberately cost no preemption budget.) */
TEST(ModelCore, LostUpdateRespectsPreemptionBound)
{
    const auto body = [] {
        sync::Atomic<int> x(0);
        const auto bump = [&x] {
            const int r = x.load();
            x.store(r + 1);
        };
        spawn(bump);
        spawn(bump);
        joinAll();
        modelAssert(x.load() == 2, "lost update");
    };

    Options strict;
    strict.preemption_bound = 0;
    EXPECT_TRUE(explore(strict, body).ok);

    Options relaxed;
    relaxed.preemption_bound = 1;
    const Result res = explore(relaxed, body);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failure.find("lost update"), std::string::npos)
        << res.report();
}

TEST(ModelCore, SleepSetsPruneCommutingSchedules)
{
    const auto body = [] {
        sync::Atomic<int> x(0);
        sync::Atomic<int> y(0);
        spawn([&x] {
            // order: independence under test
            x.store(1, std::memory_order_relaxed);
            // order: independence under test
            x.store(2, std::memory_order_relaxed);
        });
        spawn([&y] {
            // order: independence under test
            y.store(1, std::memory_order_relaxed);
            // order: independence under test
            y.store(2, std::memory_order_relaxed);
        });
        joinAll();
    };

    Options with;
    Options without;
    without.sleep_sets = false;
    const Result pruned = explore(with, body);
    const Result full = explore(without, body);
    EXPECT_TRUE(pruned.ok) << pruned.report();
    EXPECT_TRUE(full.ok) << full.report();
    EXPECT_LT(pruned.schedules, full.schedules);
}

TEST(ModelCore, ScheduleBudgetSetsExhausted)
{
    Options opts;
    opts.max_schedules = 1;
    const Result res = explore(opts, [] {
        sync::Atomic<int> x(0);
        spawn([&x] {
            // order: schedule-count fodder
            x.store(1, std::memory_order_relaxed);
        });
        spawn([&x] {
            // order: schedule-count fodder
            x.store(2, std::memory_order_relaxed);
        });
        joinAll();
    });
    EXPECT_TRUE(res.ok) << res.report();
    EXPECT_TRUE(res.exhausted);
    EXPECT_EQ(res.schedules, 1u);
}

TEST(ModelCore, LivelockCaughtByStepBudget)
{
    Options opts;
    opts.max_steps = 20;
    const Result res = explore(opts, [] {
        sync::Atomic<int> x(0);
        for (int i = 0; i < 100; ++i) {
            // order: step fodder for the livelock bound
            x.store(i, std::memory_order_relaxed);
        }
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failure.find("livelock"), std::string::npos)
        << res.report();
}

TEST(ModelCore, ReplayReproducesTheFailingSchedule)
{
    const auto body = [] {
        sync::Atomic<int> x(0);
        sync::Atomic<int> y(0);
        sync::Cell<int> r2(-1);
        spawn([&] {
            // order: litmus under test
            y.store(1, std::memory_order_relaxed);
            // order: litmus under test
            r2.write(x.load(std::memory_order_relaxed));
        });
        // order: litmus under test
        x.store(1, std::memory_order_relaxed);
        // order: litmus under test
        const int r1 = y.load(std::memory_order_relaxed);
        joinAll();
        modelAssert(!(r1 == 0 && r2.read() == 0),
                    "store buffering: both loads stale");
    };

    const Result first = explore(body);
    ASSERT_FALSE(first.ok);
    ASSERT_FALSE(first.decisions.empty());

    Options replay;
    replay.replay = first.decisions;
    const Result again = explore(replay, body);
    EXPECT_FALSE(again.ok);
    EXPECT_EQ(again.schedules, 1u);
    EXPECT_EQ(again.failure, first.failure) << again.report();
}

TEST(ModelCore, PreemptionBoundFromEnv)
{
    ::unsetenv("SRBENES_MODEL_PREEMPTIONS");
    EXPECT_EQ(model::preemptionBoundFromEnv(3), 3u);
    ::setenv("SRBENES_MODEL_PREEMPTIONS", "5", 1);
    EXPECT_EQ(model::preemptionBoundFromEnv(3), 5u);
    ::setenv("SRBENES_MODEL_PREEMPTIONS", "99", 1);
    EXPECT_EQ(model::preemptionBoundFromEnv(3), 8u);
    ::setenv("SRBENES_MODEL_PREEMPTIONS", "junk", 1);
    EXPECT_EQ(model::preemptionBoundFromEnv(3), 3u);
    ::unsetenv("SRBENES_MODEL_PREEMPTIONS");
}

} // namespace
} // namespace srbenes
