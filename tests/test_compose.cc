/**
 * @file
 * Tests for the Theorem 4/5/6 composite constructions: coordinate
 * system sanity, semantics, and -- the theorems themselves -- closure
 * of F(n) under the constructions, verified against both the
 * Theorem 1 test and the simulated fabric.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "perm/bpc.hh"
#include "perm/compose.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

/** Draw an F(r) permutation; r = 0 blocks are singletons. */
Permutation
randomFPermutation(unsigned r, Prng &prng)
{
    if (r == 0)
        return Permutation::identity(1);
    return randomFMember(r, prng);
}

TEST(JPartitionTest, PaperExample)
{
    // n = 3, J = {2}: blocks {0,1,2,3} and {4,5,6,7}.
    // (The paper's J = {1} example gives blocks {0,1,4,5} and
    // {2,3,6,7} -- checked below.)
    const JPartition by_two(3, 0b100);
    EXPECT_EQ(by_two.numBlocks(), 2u);
    EXPECT_EQ(by_two.blockSize(), 4u);
    for (Word i = 0; i < 4; ++i)
        EXPECT_EQ(by_two.blockOf(i), 0u);
    for (Word i = 4; i < 8; ++i)
        EXPECT_EQ(by_two.blockOf(i), 1u);

    const JPartition by_one(3, 0b010);
    for (Word i : {0u, 1u, 4u, 5u})
        EXPECT_EQ(by_one.blockOf(i), 0u);
    for (Word i : {2u, 3u, 6u, 7u})
        EXPECT_EQ(by_one.blockOf(i), 1u);
}

TEST(JPartitionTest, CoordinatesRoundTrip)
{
    Prng prng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const unsigned n = 6;
        const Word mask = prng.below(1u << n);
        const JPartition part(n, mask);
        for (Word i = 0; i < (Word{1} << n); ++i) {
            EXPECT_EQ(part.elementOf(part.blockOf(i), part.rankOf(i)),
                      i);
        }
    }
}

TEST(JPartitionTest, RankPreservesOrderWithinBlock)
{
    const JPartition part(4, 0b0101);
    // Elements of one block in increasing order must have increasing
    // ranks.
    for (Word b = 0; b < part.numBlocks(); ++b) {
        Word prev_elem = 0;
        for (Word q = 0; q < part.blockSize(); ++q) {
            const Word e = part.elementOf(b, q);
            if (q > 0) {
                EXPECT_GT(e, prev_elem);
            }
            prev_elem = e;
        }
    }
}

TEST(TheoremFour, BlockwiseStaysInF)
{
    const SelfRoutingBenes net(5);
    Prng prng(11);
    for (int trial = 0; trial < 15; ++trial) {
        const unsigned n = 5;
        const Word mask = prng.below(1u << n);
        const JPartition part(n, mask);
        std::vector<Permutation> gs;
        for (std::size_t b = 0; b < part.numBlocks(); ++b)
            gs.push_back(randomFPermutation(part.freeBits(), prng));

        const Permutation g = blockwisePermutation(n, mask, gs);
        EXPECT_TRUE(inFClass(g));
        EXPECT_TRUE(net.route(g).success);
    }
}

TEST(TheoremFour, SemanticsKeepBlocksFixed)
{
    const unsigned n = 4;
    const Word mask = 0b1010;
    const JPartition part(n, mask);
    Prng prng(13);
    std::vector<Permutation> gs;
    for (std::size_t b = 0; b < part.numBlocks(); ++b)
        gs.push_back(Permutation::random(part.blockSize(), prng));
    const Permutation g = blockwisePermutation(n, mask, gs);
    for (Word i = 0; i < g.size(); ++i) {
        EXPECT_EQ(part.blockOf(g[i]), part.blockOf(i));
        EXPECT_EQ(part.rankOf(g[i]), gs[part.blockOf(i)][part.rankOf(i)]);
    }
}

TEST(TheoremFour, CannonStyleRowMappings)
{
    // The matrix mappings the paper lists after Theorem 4, e.g.
    // A(i, j) -> A(i, (i + j) mod sqrt(N)): a per-row cyclic shift.
    const unsigned n = 6, m = 3; // 8x8 matrix
    const Word row_mask = lowMask(n) & ~lowMask(m); // J = row bits
    std::vector<Permutation> gs;
    for (Word r = 0; r < 8; ++r)
        gs.push_back(named::cyclicShift(m, r));
    const Permutation g = blockwisePermutation(n, row_mask, gs);
    for (Word r = 0; r < 8; ++r)
        for (Word c = 0; c < 8; ++c)
            EXPECT_EQ(g[8 * r + c], 8 * r + ((r + c) % 8));
    EXPECT_TRUE(inFClass(g));
}

TEST(TheoremFive, BlockMappedStaysInF)
{
    const SelfRoutingBenes net(6);
    Prng prng(17);
    for (int trial = 0; trial < 10; ++trial) {
        const unsigned n = 6;
        const Word mask = prng.below(1u << n);
        const JPartition part(n, mask);
        std::vector<Permutation> gs;
        for (std::size_t b = 0; b < part.numBlocks(); ++b)
            gs.push_back(randomFPermutation(part.freeBits(), prng));
        const Permutation block_perm =
            randomFPermutation(n - part.freeBits(), prng);

        const Permutation g =
            blockMappedPermutation(n, mask, gs, block_perm);
        EXPECT_TRUE(inFClass(g)) << g.toString();
        EXPECT_TRUE(net.route(g).success);
    }
}

TEST(TheoremFive, RowsMapOntoRows)
{
    // Rows permuted among themselves (bit-reversal of the row index)
    // while each row is cyclically shifted.
    const unsigned n = 4, m = 2;
    const Word row_mask = lowMask(n) & ~lowMask(m);
    std::vector<Permutation> gs(4, named::cyclicShift(m, 1));
    const Permutation rows = named::bitReversal(m).toPermutation();
    const Permutation g =
        blockMappedPermutation(n, row_mask, gs, rows);
    for (Word r = 0; r < 4; ++r)
        for (Word c = 0; c < 4; ++c)
            EXPECT_EQ(g[4 * r + c],
                      4 * reverseBits(r, m) + ((c + 1) % 4));
    EXPECT_TRUE(inFClass(g));
}

TEST(TheoremSix, PaperThreeDimensionalExample)
{
    // A(i, j, k) -> A'(i', j', k') with i' = (i + j + k) mod 2^r,
    // j' = (p * j + 1) mod 2^s, k' = j xor k; J_1 = j-bits,
    // J_2 = k-bits, J_3 = i-bits. Each level's map is in F, so the
    // composite is in F(n).
    const unsigned r = 2, s = 2, t = 2, n = r + s + t;
    const Word i_mask = lowMask(r) << (s + t);
    const Word j_mask = lowMask(s) << t;
    const Word k_mask = lowMask(t);

    const auto phi = [&](unsigned level,
                         const std::vector<Word> &anc) -> Permutation {
        switch (level) {
          case 0: // j-field: p-ordering plus shift, p = 3
            return named::pOrderingShift(s, 3, 1);
          case 1: // k-field: xor with the ancestor j value
            return named::bitComplement(t, anc[0]).toPermutation();
          default: { // i-field: cyclic shift by j + k
            return named::cyclicShift(r, anc[0] + anc[1]);
          }
        }
    };

    const Permutation g = hierarchicalPermutation(
        n, {j_mask, k_mask, i_mask}, phi);

    // Check the closed form.
    for (Word i = 0; i < 4; ++i) {
        for (Word j = 0; j < 4; ++j) {
            for (Word k = 0; k < 4; ++k) {
                const Word idx = (i << 4) | (j << 2) | k;
                const Word ii = (i + j + k) % 4;
                const Word jj = (3 * j + 1) % 4;
                const Word kk = j ^ k;
                EXPECT_EQ(g[idx], (ii << 4) | (jj << 2) | kk);
            }
        }
    }
    EXPECT_TRUE(inFClass(g));
    EXPECT_TRUE(SelfRoutingBenes(n).route(g).success);
}

TEST(TheoremSix, RandomHierarchiesStayInF)
{
    Prng prng(19);
    const unsigned n = 6;
    const std::vector<Word> masks{0b110000, 0b001100, 0b000011};
    for (int trial = 0; trial < 10; ++trial) {
        const auto phi = [&](unsigned level,
                             const std::vector<Word> &) {
            return randomFPermutation(popCount(masks[level]), prng);
        };
        const Permutation g = hierarchicalPermutation(n, masks, phi);
        EXPECT_TRUE(inFClass(g)) << g.toString();
    }
}

TEST(TheoremSix, AncestorDependentPhi)
{
    // phi that varies per parent block must still give an F member.
    Prng prng(23);
    const unsigned n = 5;
    const std::vector<Word> masks{0b11000, 0b00111};
    const auto phi = [&](unsigned level, const std::vector<Word> &anc) {
        if (level == 0)
            return randomFPermutation(2, prng);
        return named::cyclicShift(3, anc[0]);
    };
    const Permutation g = hierarchicalPermutation(n, masks, phi);
    EXPECT_TRUE(inFClass(g)) << g.toString();
}

TEST(Compose, NonFBlocksCanLeaveF)
{
    // The theorems REQUIRE the pieces to be in F; feeding a non-F
    // block permutation can produce a non-F composite. With mask = 0
    // the construction degenerates to the block permutation itself.
    const Permutation bad{1, 3, 2, 0};
    ASSERT_FALSE(inFClass(bad));
    const Permutation g = blockwisePermutation(2, 0, {bad});
    EXPECT_EQ(g, bad);
    EXPECT_FALSE(inFClass(g));
}

} // namespace
} // namespace srbenes
