/**
 * @file
 * Tests for Waksman's reduced network: the fixed-switch inventory
 * and count, universality of the constrained setup (exhaustive at
 * N = 8), the guarantee that fixed switches stay straight on every
 * permutation, and the incompatibility with the self-routing rule.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "core/waksman_reduced.hh"
#include "perm/bpc.hh"
#include "perm/f_class.hh"

namespace srbenes
{
namespace
{

TEST(WaksmanReduced, SwitchCountFormula)
{
    // N lg N - N + 1 = Benes count minus the N/2 - 1 fixed
    // switches.
    for (unsigned n = 1; n <= 10; ++n) {
        const BenesTopology topo(n);
        const Word size = Word{1} << n;
        const auto fixed = waksmanFixedSwitches(topo);
        EXPECT_EQ(fixed.size(), size / 2 - 1);
        EXPECT_EQ(waksmanReducedSwitchCount(n),
                  topo.numSwitches() - fixed.size());
        EXPECT_EQ(waksmanReducedSwitchCount(n), size * n - size + 1);
    }
}

TEST(WaksmanReduced, FixedSwitchPositions)
{
    // B(3): the outer closing stage fixes switch 0 of stage 4; the
    // two B(2) subnetworks fix switch 0 (lines 0-3) and switch 2
    // (lines 4-7) of stage 3.
    const BenesTopology topo(3);
    const auto fixed = waksmanFixedSwitches(topo);
    EXPECT_NE(std::find(fixed.begin(), fixed.end(),
                        FixedSwitch{4, 0}),
              fixed.end());
    EXPECT_NE(std::find(fixed.begin(), fixed.end(),
                        FixedSwitch{3, 0}),
              fixed.end());
    EXPECT_NE(std::find(fixed.begin(), fixed.end(),
                        FixedSwitch{3, 2}),
              fixed.end());
    EXPECT_EQ(fixed.size(), 3u);
}

TEST(WaksmanReduced, AllPermutationsN8)
{
    const SelfRoutingBenes net(3);
    const auto fixed = waksmanFixedSwitches(net.topology());
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        const auto states = waksmanReducedSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success)
            << d.toString();
        // Every removed switch really is straight.
        for (const auto &f : fixed)
            ASSERT_EQ(states[f.stage][f.switch_index], 0)
                << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class WaksmanReducedSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WaksmanReducedSweep, RandomPermutationsRealized)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    const auto fixed = waksmanFixedSwitches(net.topology());
    Prng prng(n * 701);
    for (int trial = 0; trial < 10; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        const auto states = waksmanReducedSetup(net.topology(), d);
        ASSERT_TRUE(net.routeWithStates(d, states).success);
        for (const auto &f : fixed)
            ASSERT_EQ(states[f.stage][f.switch_index], 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WaksmanReducedSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 10u));

TEST(WaksmanReduced, SelfRoutingNeedsTheRemovedSwitches)
{
    // The Fig. 3 rule crosses removed switches for common F
    // members: vector reversal crosses the whole opening half AND
    // nothing in the closing half, so look at a member that crosses
    // closing switch 0 of the outer network -- any F member with
    // tag 1 arriving on the upper middle path. Search a seeded
    // stream for a witness.
    const unsigned n = 3;
    const SelfRoutingBenes net(n);
    const auto fixed = waksmanFixedSwitches(net.topology());
    Prng prng(31);
    bool witness = false;
    for (int trial = 0; trial < 200 && !witness; ++trial) {
        const auto res = net.route(randomFMember(n, prng));
        for (const auto &f : fixed)
            witness = witness || res.states[f.stage][f.switch_index];
    }
    EXPECT_TRUE(witness)
        << "self-routing never used a removed switch?";
}

} // namespace
} // namespace srbenes
