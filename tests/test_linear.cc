/**
 * @file
 * Tests for GF(2)-affine permutations: algebra (inverse,
 * composition), named generators (Gray code, butterfly), the BPC
 * embedding, the recognizer, and the relationship with the paper's
 * classes (BPC is strictly inside, and not every affine permutation
 * is in F).
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/f_class.hh"
#include "perm/linear.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(Linear, IdentityActsTrivially)
{
    const LinearSpec id = LinearSpec::identity(5);
    for (Word i = 0; i < 32; ++i)
        EXPECT_EQ(id.apply(i), i);
}

TEST(Linear, SingularMatrixRejected)
{
    // Two equal columns are singular over GF(2).
    EXPECT_FALSE(LinearSpec::invertible({0b01, 0b01}));
    EXPECT_FALSE(LinearSpec::invertible({0b11, 0b10, 0b01}));
    EXPECT_TRUE(LinearSpec::invertible({0b01, 0b11}));
}

TEST(Linear, GrayCodeSemantics)
{
    for (unsigned n = 2; n <= 8; ++n) {
        const LinearSpec gray = LinearSpec::grayCode(n);
        for (Word i = 0; i < (Word{1} << n); ++i)
            EXPECT_EQ(gray.apply(i), i ^ (i >> 1));
    }
}

TEST(Linear, GrayCodeInverseUnscrambles)
{
    for (unsigned n = 2; n <= 8; ++n) {
        const auto round_trip =
            LinearSpec::grayCode(n).then(
                LinearSpec::inverseGrayCode(n));
        EXPECT_EQ(round_trip, LinearSpec::identity(n)) << n;
    }
}

TEST(Linear, ButterflySwapsBits)
{
    const LinearSpec fly = LinearSpec::butterfly(4, 2);
    for (Word i = 0; i < 16; ++i) {
        const Word expect =
            setBit(setBit(i, 0, bit(i, 2)), 2, bit(i, 0));
        EXPECT_EQ(fly.apply(i), expect);
    }
}

TEST(Linear, BpcEmbedding)
{
    Prng prng(3);
    for (unsigned n : {2u, 4u, 6u}) {
        for (int trial = 0; trial < 20; ++trial) {
            const BpcSpec bpc = BpcSpec::random(n, prng);
            EXPECT_EQ(LinearSpec::fromBpc(bpc).toPermutation(),
                      bpc.toPermutation());
        }
    }
}

class LinearAlgebra : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LinearAlgebra, InverseMatchesPermutationInverse)
{
    const unsigned n = GetParam();
    Prng prng(n * 11);
    for (int trial = 0; trial < 20; ++trial) {
        const LinearSpec spec = LinearSpec::random(n, prng);
        EXPECT_EQ(spec.inverse().toPermutation(),
                  spec.toPermutation().inverse());
    }
}

TEST_P(LinearAlgebra, ThenMatchesPermutationThen)
{
    const unsigned n = GetParam();
    Prng prng(n * 13);
    for (int trial = 0; trial < 20; ++trial) {
        const LinearSpec a = LinearSpec::random(n, prng);
        const LinearSpec b = LinearSpec::random(n, prng);
        EXPECT_EQ(a.then(b).toPermutation(),
                  a.toPermutation().then(b.toPermutation()));
    }
}

TEST_P(LinearAlgebra, RecognizerRoundTrip)
{
    const unsigned n = GetParam();
    Prng prng(n * 17);
    for (int trial = 0; trial < 20; ++trial) {
        const LinearSpec spec = LinearSpec::random(n, prng);
        const auto found = recognizeLinear(spec.toPermutation());
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(*found, spec);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, LinearAlgebra,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(Linear, RecognizerRejectsNonLinear)
{
    // Cyclic shift by 1 is affine over Z/2^n but (once carries can
    // propagate two positions, n >= 3) not GF(2)-affine. At n = 2
    // it happens to be affine: +1 mod 4 = A i xor 1 with
    // A = [[1,0],[1,1]].
    EXPECT_TRUE(recognizeLinear(named::cyclicShift(2, 1)));
    for (unsigned n = 3; n <= 6; ++n)
        EXPECT_FALSE(recognizeLinear(named::cyclicShift(n, 1)));
    // A single transposition of a larger identity is not affine.
    std::vector<Word> dest{1, 0, 2, 3, 4, 5, 6, 7};
    EXPECT_FALSE(recognizeLinear(Permutation(dest)));
}

TEST(Linear, AffineStrictlyExtendsBpc)
{
    // Gray code is affine but has no BPC representation.
    const Permutation gray =
        LinearSpec::grayCode(4).toPermutation();
    EXPECT_TRUE(recognizeLinear(gray).has_value());
    EXPECT_FALSE(recognizeBpc(gray).has_value());
}

TEST(Linear, GrayCodeIsInF)
{
    // Empirically the Gray-code reordering self-routes at every
    // size (the lower-bidiagonal matrix meets Theorem 1's recursive
    // condition).
    for (unsigned n = 2; n <= 10; ++n)
        EXPECT_TRUE(
            inFClass(LinearSpec::grayCode(n).toPermutation()))
            << n;
}

TEST(Linear, NotAllAffineInF)
{
    // The richness census (bench_linear_class) rests on this: some
    // affine permutations are not in F. Find one by search over a
    // seeded stream; the exact member is deterministic.
    Prng prng(2029);
    bool found_outside = false;
    for (int trial = 0; trial < 200 && !found_outside; ++trial) {
        const auto p = LinearSpec::random(4, prng).toPermutation();
        found_outside = !inFClass(p);
    }
    EXPECT_TRUE(found_outside);
}

TEST(Linear, RandomSpecDeterministic)
{
    Prng a(7), b(7);
    for (int trial = 0; trial < 10; ++trial)
        EXPECT_EQ(LinearSpec::random(6, a), LinearSpec::random(6, b));
}

} // namespace
} // namespace srbenes
