/**
 * @file
 * Tests for fault injection and diagnosis: zero-fault equivalence,
 * misrouting behavior of stuck switches, full single-fault
 * detection by the generated test set, and localization.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/faults.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(Faults, NoFaultsMatchesHealthyRoute)
{
    const SelfRoutingBenes net(4);
    Prng prng(1);
    for (int trial = 0; trial < 10; ++trial) {
        const auto d = Permutation::random(16, prng);
        const auto healthy = net.route(d);
        const auto faulty = routeWithFaults(net, d, {});
        EXPECT_EQ(healthy.output_tags, faulty.output_tags);
        EXPECT_EQ(healthy.states, faulty.states);
        EXPECT_EQ(healthy.success, faulty.success);
    }
}

TEST(Faults, StuckCrossedBreaksIdentity)
{
    const SelfRoutingBenes net(3);
    const auto id = Permutation::identity(8);
    const StuckFault fault{2, 1, 1};
    const auto res = routeWithFaults(net, id, {fault});
    EXPECT_FALSE(res.success);
    // A single binary switch misroutes exactly two signals.
    EXPECT_EQ(res.misrouted_outputs.size(), 2u);
    EXPECT_EQ(res.states[2][1], 1);
}

TEST(Faults, OpeningHalfFaultsAreMaskedOnPairAlignedTests)
{
    // The key testability finding: stages 0..n-2 make free
    // decisions that the closing half corrects. Vector reversal
    // maps every input pair onto one output pair, so a stuck
    // stage-0 switch merely picks the other (equally valid)
    // decomposition -- the route still succeeds.
    const SelfRoutingBenes net(4);
    const auto rev = named::vectorReversal(4).toPermutation();
    const auto id = Permutation::identity(16);
    for (std::uint8_t v : {std::uint8_t{0}, std::uint8_t{1}}) {
        EXPECT_TRUE(
            routeWithFaults(net, rev, {StuckFault{0, 3, v}})
                .success);
        EXPECT_TRUE(
            routeWithFaults(net, id, {StuckFault{0, 3, v}})
                .success);
    }
}

TEST(Faults, OpeningHalfFaultsDetectedByGenericMembers)
{
    // ... but a random F member whose input pairs split across
    // output pairs exposes the same fault: the flipped
    // decomposition leaves F and the route breaks.
    const SelfRoutingBenes net(4);
    Prng prng(99);
    bool exposed = false;
    for (int trial = 0; trial < 50 && !exposed; ++trial) {
        const auto member = randomFMember(4, prng);
        const auto healthy = net.route(member).output_tags;
        const auto faulty =
            routeWithFaults(net, member, {StuckFault{0, 3, 0}});
        exposed = faulty.output_tags != healthy;
    }
    EXPECT_TRUE(exposed);
}

TEST(Faults, ClosingHalfFaultsMisrouteImmediately)
{
    // Closing-half states are forced by the tags; a flip there
    // always swaps two outputs.
    const SelfRoutingBenes net(4);
    const auto id = Permutation::identity(16);
    for (unsigned s = 4; s < 7; ++s) {
        const auto res =
            routeWithFaults(net, id, {StuckFault{s, 2, 1}});
        EXPECT_FALSE(res.success) << "stage " << s;
        EXPECT_EQ(res.misrouted_outputs.size(), 2u);
    }
}

TEST(Faults, FaultMatchingStateIsInvisible)
{
    // A stuck value that agrees with what self-routing would pick
    // anyway changes nothing for that permutation.
    const SelfRoutingBenes net(3);
    const auto d = named::bitReversal(3).toPermutation();
    const auto healthy = net.route(d);
    const StuckFault agree{0, 0,
                           healthy.states[0][0]};
    const auto res = routeWithFaults(net, d, {agree});
    EXPECT_TRUE(res.success);
    EXPECT_EQ(res.output_tags, healthy.output_tags);
}

TEST(Faults, TestSetStartsWithIdentity)
{
    const SelfRoutingBenes net(3);
    Prng prng(5);
    const auto tests = faultTestSet(net, prng);
    ASSERT_GE(tests.size(), 2u);
    EXPECT_EQ(tests.front(), Permutation::identity(8));
    // Every member must itself be routable (otherwise a failed test
    // says nothing about faults).
    for (const auto &t : tests)
        EXPECT_TRUE(net.route(t).success);
}

class FaultSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FaultSweep, EverySingleFaultDetected)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 601);
    const auto tests = faultTestSet(net, prng);

    const auto &topo = net.topology();
    for (unsigned s = 0; s < topo.numStages(); ++s) {
        for (Word i = 0; i < topo.switchesPerStage(); ++i) {
            for (std::uint8_t v : {std::uint8_t{0},
                                   std::uint8_t{1}}) {
                EXPECT_TRUE(testSetDetects(net, tests,
                                           StuckFault{s, i, v}))
                    << "stage " << s << " switch " << i
                    << " stuck " << int(v);
            }
        }
    }
}

TEST_P(FaultSweep, DiagnosisFindsTheInjectedFault)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 607);
    const auto tests = faultTestSet(net, prng);

    const auto &topo = net.topology();
    for (int trial = 0; trial < 8; ++trial) {
        const StuckFault fault{
            static_cast<unsigned>(prng.below(topo.numStages())),
            prng.below(topo.switchesPerStage()),
            static_cast<std::uint8_t>(prng.below(2))};

        std::vector<std::vector<Word>> observed;
        for (const auto &t : tests)
            observed.push_back(
                routeWithFaults(net, t, {fault}).output_tags);

        const auto candidates =
            diagnoseSingleFault(net, tests, observed);
        // The injected fault must be among the behaviorally
        // consistent candidates.
        EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                            fault),
                  candidates.end())
            << "stage " << fault.stage << " switch "
            << fault.switch_index;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, FaultSweep,
                         ::testing::Values(2u, 3u, 4u));

TEST(Faults, MultipleFaultsCompose)
{
    const SelfRoutingBenes net(3);
    const auto id = Permutation::identity(8);
    const std::vector<StuckFault> faults{{0, 0, 1}, {4, 3, 1}};
    const auto res = routeWithFaults(net, id, faults);
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.states[0][0], 1);
    EXPECT_EQ(res.states[4][3], 1);
    // The stage-0 fault is masked (free half); only the closing
    // stage fault misroutes, swapping outputs 6 and 7.
    EXPECT_EQ(res.misrouted_outputs, (std::vector<Word>{6, 7}));
}

TEST(Faults, OutOfRangeFaultDies)
{
    const SelfRoutingBenes net(2);
    EXPECT_DEATH(routeWithFaults(net, Permutation::identity(4),
                                 {StuckFault{9, 0, 1}}),
                 "out of range");
}

} // namespace
} // namespace srbenes
