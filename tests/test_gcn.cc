/**
 * @file
 * Tests for the generalized connection network: arbitrary mappings
 * with fanout, the permutation special case, degenerate broadcast
 * patterns, and the cost model -- exhaustive over all N^N mappings
 * at N = 4.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "networks/gcn.hh"

namespace srbenes
{
namespace
{

std::vector<Word>
iotaData(Word size, Word base)
{
    std::vector<Word> v(size);
    for (Word i = 0; i < size; ++i)
        v[i] = base + i;
    return v;
}

TEST(Gcn, IdentityMapping)
{
    const GcnNetwork gcn(3);
    const auto data = iotaData(8, 100);
    std::vector<Word> src(8);
    for (Word j = 0; j < 8; ++j)
        src[j] = j;
    EXPECT_EQ(gcn.routeMapping(src, data), data);
}

TEST(Gcn, FullBroadcast)
{
    const GcnNetwork gcn(3);
    const auto data = iotaData(8, 100);
    const std::vector<Word> src(8, 5); // everyone wants input 5
    EXPECT_EQ(gcn.routeMapping(src, data),
              std::vector<Word>(8, 105));
}

TEST(Gcn, ExhaustiveAllMappingsN4)
{
    // All 4^4 = 256 mappings of a 4-terminal GCN.
    const GcnNetwork gcn(2);
    const auto data = iotaData(4, 50);
    for (unsigned code = 0; code < 256; ++code) {
        std::vector<Word> src(4);
        unsigned c = code;
        for (Word j = 0; j < 4; ++j) {
            src[j] = c % 4;
            c /= 4;
        }
        const auto out = gcn.routeMapping(src, data);
        for (Word j = 0; j < 4; ++j)
            ASSERT_EQ(out[j], data[src[j]]) << "code " << code;
    }
}

class GcnSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GcnSweep, RandomMappings)
{
    const unsigned n = GetParam();
    const GcnNetwork gcn(n);
    const Word size = Word{1} << n;
    const auto data = iotaData(size, 1000);
    Prng prng(n * 401);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<Word> src(size);
        for (Word j = 0; j < size; ++j)
            src[j] = prng.below(size);
        const auto out = gcn.routeMapping(src, data);
        for (Word j = 0; j < size; ++j)
            ASSERT_EQ(out[j], data[src[j]]);
    }
}

TEST_P(GcnSweep, RandomPermutationsAsMappings)
{
    const unsigned n = GetParam();
    const GcnNetwork gcn(n);
    const Word size = Word{1} << n;
    const auto data = iotaData(size, 2000);
    Prng prng(n * 409);
    for (int trial = 0; trial < 10; ++trial) {
        // src = inverse destination vector of a random permutation.
        const auto d = Permutation::random(size, prng);
        const auto out = gcn.routeMapping(d.inverse().dest(), data);
        for (Word i = 0; i < size; ++i)
            EXPECT_EQ(out[d[i]], data[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, GcnSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(Gcn, SkewedFanout)
{
    // Input 0 feeds half the outputs, input 1 a quarter, etc.
    const unsigned n = 4;
    const GcnNetwork gcn(n);
    const Word size = 16;
    const auto data = iotaData(size, 300);
    std::vector<Word> src(size);
    for (Word j = 0; j < size; ++j) {
        Word s = 0;
        while (s < n && bit(j, n - 1 - s))
            ++s;
        src[j] = s;
    }
    const auto out = gcn.routeMapping(src, data);
    for (Word j = 0; j < size; ++j)
        EXPECT_EQ(out[j], data[src[j]]);
}

TEST(Gcn, CostModel)
{
    const GcnNetwork gcn(4);
    const GcnCosts costs = gcn.costs();
    // Two B(4) fabrics: 2 * (16*4 - 8) = 112 switches.
    EXPECT_EQ(costs.binary_switches, 112u);
    // 4 copy stages of 16 selectors.
    EXPECT_EQ(costs.copy_selectors, 64u);
    // 2 * 7 Benes stages + 4 copy stages.
    EXPECT_EQ(costs.delay_stages, 18u);
}

TEST(Gcn, OutOfRangeRequestDies)
{
    const GcnNetwork gcn(2);
    const auto data = iotaData(4, 0);
    EXPECT_DEATH(
        { gcn.routeMapping({0, 1, 2, 7}, data); }, "out of range");
}

} // namespace
} // namespace srbenes
