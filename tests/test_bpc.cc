/**
 * @file
 * Tests for the BPC permutation class: the paper's eq. (3) example,
 * the +0/-0 notation, algebraic closure, the Lemma 1 / Theorem 2
 * decomposition against the stage-0 switch equations, and the
 * recognizer.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/bpc.hh"
#include "perm/f_class.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(Bpc, PaperSectionTwoExample)
{
    // A = (0, -1, -2): D_i = complement of i's bits 2 and 1, then bit
    // j goes to position |A_j|. Paper gives D = 6,2,4,0,7,3,5,1.
    const BpcSpec spec = BpcSpec::fromPaper({"0", "-1", "-2"});
    const Permutation d = spec.toPermutation();
    EXPECT_EQ(d, Permutation({6, 2, 4, 0, 7, 3, 5, 1}));
}

TEST(Bpc, FromPaperParsesSigns)
{
    const BpcSpec spec = BpcSpec::fromPaper({"-0", "+2", "1"});
    // Listed (A_2, A_1, A_0): A_2 = -0, A_1 = +2, A_0 = 1.
    EXPECT_EQ(spec.axis(2), (BpcAxis{0, true}));
    EXPECT_EQ(spec.axis(1), (BpcAxis{2, false}));
    EXPECT_EQ(spec.axis(0), (BpcAxis{1, false}));
}

TEST(Bpc, ToStringRoundTripsNotation)
{
    const std::vector<std::string> entries{"-0", "2", "-1"};
    EXPECT_EQ(BpcSpec::fromPaper(entries).toString(), "(-0, 2, -1)");
}

TEST(Bpc, IdentitySpec)
{
    EXPECT_EQ(BpcSpec::identity(3).toPermutation(),
              Permutation::identity(8));
}

TEST(Bpc, DestinationMatchesEquationThree)
{
    // Hand-computed case: A_0 = +1, A_1 = -0 on n = 2.
    std::vector<BpcAxis> axes{{1, false}, {0, true}};
    const BpcSpec spec(axes);
    // i = 00 -> D bits: pos1 = i0 = 0, pos0 = !i1 = 1 -> D = 01.
    EXPECT_EQ(spec.destinationOf(0), 1u);
    EXPECT_EQ(spec.destinationOf(1), 3u);
    EXPECT_EQ(spec.destinationOf(2), 0u);
    EXPECT_EQ(spec.destinationOf(3), 2u);
}

class BpcProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BpcProperty, InverseSpecMatchesPermutationInverse)
{
    const unsigned n = GetParam();
    Prng prng(n * 31 + 1);
    for (int trial = 0; trial < 25; ++trial) {
        const BpcSpec spec = BpcSpec::random(n, prng);
        EXPECT_EQ(spec.inverse().toPermutation(),
                  spec.toPermutation().inverse());
    }
}

TEST_P(BpcProperty, ThenMatchesPermutationThen)
{
    const unsigned n = GetParam();
    Prng prng(n * 31 + 2);
    for (int trial = 0; trial < 25; ++trial) {
        const BpcSpec a = BpcSpec::random(n, prng);
        const BpcSpec b = BpcSpec::random(n, prng);
        EXPECT_EQ(a.then(b).toPermutation(),
                  a.toPermutation().then(b.toPermutation()));
    }
}

TEST_P(BpcProperty, DecomposeMatchesStageZeroEquations)
{
    // Lemma 1 / Theorem 2: the BPC specs predicted for U and L must
    // equal the actual tag sequences produced by the stage-0
    // switches (eqs. (1), (2)) with the low bit dropped.
    const unsigned n = GetParam();
    if (n < 2)
        return;
    Prng prng(n * 31 + 3);
    for (int trial = 0; trial < 40; ++trial) {
        const BpcSpec spec = BpcSpec::random(n, prng);
        const auto [pred_u, pred_l] = spec.decompose();

        const Permutation d = spec.toPermutation();
        const auto [u_full, l_full] = splitStageZero(d.dest());

        std::vector<Word> u(u_full.size()), l(l_full.size());
        for (std::size_t i = 0; i < u_full.size(); ++i) {
            u[i] = u_full[i] >> 1;
            l[i] = l_full[i] >> 1;
        }
        EXPECT_EQ(Permutation(u), pred_u.toPermutation());
        EXPECT_EQ(Permutation(l), pred_l.toPermutation());
    }
}

TEST_P(BpcProperty, RecognizerRoundTrip)
{
    const unsigned n = GetParam();
    Prng prng(n * 31 + 4);
    for (int trial = 0; trial < 25; ++trial) {
        const BpcSpec spec = BpcSpec::random(n, prng);
        const auto found = recognizeBpc(spec.toPermutation());
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(*found, spec);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BpcProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(Bpc, RecognizerRejectsCyclicShift)
{
    // Cyclic shift by 1 is not a BPC permutation for n >= 2 (the
    // paper notes this when separating BPC from inverse omega).
    for (unsigned n = 2; n <= 6; ++n)
        EXPECT_FALSE(recognizeBpc(named::cyclicShift(n, 1)));
}

TEST(Bpc, RecognizerRejectsNonBpcSwap)
{
    // Swapping a single pair of a 8-element identity breaks the
    // bit-linearity BPC requires.
    std::vector<Word> dest{1, 0, 2, 3, 4, 5, 6, 7};
    EXPECT_FALSE(recognizeBpc(Permutation(dest)));
}

TEST(Bpc, DecomposeCaseOnePlainDrop)
{
    // |A_0| = 0 with positive sign: both halves carry A' with
    // A'_j = LMAG(A_{j+1}).
    const BpcSpec spec = BpcSpec::fromPaper({"-2", "1", "0"});
    const auto [u, l] = spec.decompose();
    EXPECT_EQ(u, l);
    EXPECT_EQ(u.toString(), "(-1, 0)");
}

TEST(Bpc, RandomSpecIsDeterministic)
{
    Prng a(5), b(5);
    for (int trial = 0; trial < 10; ++trial)
        EXPECT_EQ(BpcSpec::random(5, a), BpcSpec::random(5, b));
}

} // namespace
} // namespace srbenes
