/**
 * @file
 * Semantic tests for every named BPC permutation of Table I plus the
 * FUB representatives: each generator is checked against its
 * first-principles definition, not against another generator.
 */

#include <gtest/gtest.h>

#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(NamedBpc, MatrixTransposeOn4x4)
{
    // n = 4: a 4x4 row-major matrix; element (r, c) at index 4r + c
    // must move to index 4c + r.
    const Permutation d = named::matrixTranspose(4).toPermutation();
    for (Word r = 0; r < 4; ++r)
        for (Word c = 0; c < 4; ++c)
            EXPECT_EQ(d[4 * r + c], 4 * c + r);
}

TEST(NamedBpc, BitReversalDefinition)
{
    for (unsigned n = 1; n <= 6; ++n) {
        const Permutation d = named::bitReversal(n).toPermutation();
        for (Word i = 0; i < d.size(); ++i)
            EXPECT_EQ(d[i], reverseBits(i, n));
    }
}

TEST(NamedBpc, BitReversalFigFourValues)
{
    // The Fig. 4 permutation on B(3).
    EXPECT_EQ(named::bitReversal(3).toPermutation(),
              Permutation({0, 4, 2, 6, 1, 5, 3, 7}));
}

TEST(NamedBpc, VectorReversal)
{
    for (unsigned n = 1; n <= 6; ++n) {
        const Permutation d = named::vectorReversal(n).toPermutation();
        for (Word i = 0; i < d.size(); ++i)
            EXPECT_EQ(d[i], d.size() - 1 - i);
    }
}

TEST(NamedBpc, PerfectShuffleInterleavesHalves)
{
    // The perfect shuffle of a deck: element i of the bottom half
    // (i < N/2) goes to 2i; element N/2 + i of the top half goes to
    // 2i + 1.
    for (unsigned n = 2; n <= 6; ++n) {
        const Permutation d = named::perfectShuffle(n).toPermutation();
        const Word half = d.size() / 2;
        for (Word i = 0; i < half; ++i) {
            EXPECT_EQ(d[i], 2 * i);
            EXPECT_EQ(d[half + i], 2 * i + 1);
        }
    }
}

TEST(NamedBpc, UnshuffleInvertsShuffle)
{
    for (unsigned n = 1; n <= 6; ++n)
        EXPECT_EQ(named::unshuffle(n).toPermutation(),
                  named::perfectShuffle(n).toPermutation().inverse());
}

TEST(NamedBpc, ShuffledRowMajorInterleavesRowColBits)
{
    // (r, c) with m-bit coordinates maps to the index whose bit 2t is
    // c_t and bit 2t+1 is r_t.
    const unsigned n = 6, m = 3;
    const Permutation d = named::shuffledRowMajor(n).toPermutation();
    for (Word r = 0; r < (Word{1} << m); ++r) {
        for (Word c = 0; c < (Word{1} << m); ++c) {
            Word expect = 0;
            for (unsigned t = 0; t < m; ++t) {
                expect |= bit(c, t) << (2 * t);
                expect |= bit(r, t) << (2 * t + 1);
            }
            EXPECT_EQ(d[(r << m) | c], expect);
        }
    }
}

TEST(NamedBpc, BitShuffleInvertsShuffledRowMajor)
{
    for (unsigned n = 2; n <= 8; n += 2) {
        EXPECT_EQ(
            named::shuffledRowMajor(n)
                .then(named::bitShuffle(n))
                .toPermutation(),
            Permutation::identity(std::size_t{1} << n));
    }
}

TEST(NamedBpc, TableOneVectorNotation)
{
    // The A-vectors for n = 4, written in the paper's notation.
    const auto rows = named::tableOne(4);
    ASSERT_EQ(rows.size(), 7u);
    EXPECT_EQ(rows[0].name, "Matrix Transpose");
    EXPECT_EQ(rows[0].spec.toString(), "(1, 0, 3, 2)");
    EXPECT_EQ(rows[1].spec.toString(), "(0, 1, 2, 3)"); // bit reversal
    EXPECT_EQ(rows[2].spec.toString(),
              "(-3, -2, -1, -0)"); // vector reversal
    EXPECT_EQ(rows[3].spec.toString(),
              "(0, 3, 2, 1)"); // perfect shuffle: j -> j+1 mod n
    EXPECT_EQ(rows[4].spec.toString(), "(2, 1, 0, 3)"); // unshuffle
    EXPECT_EQ(rows[5].spec.toString(),
              "(3, 1, 2, 0)"); // shuffled row major
    EXPECT_EQ(rows[6].spec.toString(), "(3, 1, 2, 0)"); // bit shuffle
}

TEST(NamedBpc, ShuffledRowMajorAndBitShuffleDifferBeyondFourBits)
{
    // They coincide at n = 4 (self-inverse there) but not at n = 6.
    EXPECT_EQ(named::shuffledRowMajor(4), named::bitShuffle(4));
    EXPECT_NE(named::shuffledRowMajor(6), named::bitShuffle(6));
}

TEST(NamedBpc, SegmentBitReversalOnlyTouchesLowBits)
{
    const unsigned n = 5, k = 3;
    const Permutation d =
        named::segmentBitReversal(n, k).toPermutation();
    for (Word i = 0; i < d.size(); ++i) {
        EXPECT_EQ(d[i] >> k, i >> k);
        EXPECT_EQ(d[i] & lowMask(k), reverseBits(i & lowMask(k), k));
    }
}

TEST(NamedBpc, SegmentPerfectShuffle)
{
    const unsigned n = 5, k = 3;
    const Permutation d =
        named::segmentPerfectShuffle(n, k).toPermutation();
    for (Word i = 0; i < d.size(); ++i) {
        EXPECT_EQ(d[i] >> k, i >> k);
        EXPECT_EQ(d[i] & lowMask(k), shuffle(i & lowMask(k), k));
    }
}

TEST(NamedBpc, BitComplementXors)
{
    const unsigned n = 4;
    for (Word mask = 0; mask < 16; ++mask) {
        const Permutation d =
            named::bitComplement(n, mask).toPermutation();
        for (Word i = 0; i < d.size(); ++i)
            EXPECT_EQ(d[i], i ^ mask);
    }
}

TEST(NamedBpc, BitComplementFullMaskIsVectorReversal)
{
    EXPECT_EQ(named::bitComplement(5, lowMask(5)),
              named::vectorReversal(5));
}

} // namespace
} // namespace srbenes
