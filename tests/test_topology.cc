/**
 * @file
 * Tests for the flattened B(n) topology: counts, control bits, and
 * the recursive wiring of Fig. 1.
 */

#include <gtest/gtest.h>

#include "core/topology.hh"

namespace srbenes
{
namespace
{

TEST(Topology, CountsMatchPaperFormulas)
{
    for (unsigned n = 1; n <= 10; ++n) {
        const BenesTopology topo(n);
        const Word size = Word{1} << n;
        EXPECT_EQ(topo.numLines(), size);
        EXPECT_EQ(topo.numStages(), 2 * n - 1);
        EXPECT_EQ(topo.switchesPerStage(), size / 2);
        // "The total number of binary switches in the network is
        // N log N - N/2."
        EXPECT_EQ(topo.numSwitches(), size * n - size / 2);
    }
}

TEST(Topology, ControlBitsPalindrome)
{
    // Stage b and stage 2n-2-b use bit b; B(3) reads 0 1 2 1 0.
    const BenesTopology topo(3);
    const std::vector<unsigned> expect{0, 1, 2, 1, 0};
    for (unsigned s = 0; s < topo.numStages(); ++s)
        EXPECT_EQ(topo.controlBit(s), expect[s]);
}

TEST(Topology, ControlBitsGeneral)
{
    for (unsigned n = 1; n <= 8; ++n) {
        const BenesTopology topo(n);
        for (unsigned s = 0; s < topo.numStages(); ++s) {
            EXPECT_EQ(topo.controlBit(s),
                      topo.controlBit(2 * n - 2 - s));
            EXPECT_LE(topo.controlBit(s), n - 1);
        }
        EXPECT_EQ(topo.controlBit(n - 1), n - 1); // middle stage
    }
}

TEST(Topology, WiringIsAPermutationAtEveryBoundary)
{
    for (unsigned n = 2; n <= 8; ++n) {
        const BenesTopology topo(n);
        for (unsigned s = 0; s + 1 < topo.numStages(); ++s) {
            std::vector<bool> hit(topo.numLines(), false);
            for (Word line = 0; line < topo.numLines(); ++line) {
                const Word to = topo.wireToNext(s, line);
                ASSERT_LT(to, topo.numLines());
                ASSERT_FALSE(hit[to])
                    << "boundary " << s << " line " << line;
                hit[to] = true;
            }
        }
    }
}

TEST(Topology, B2WiringMatchesFigOne)
{
    // B(2): the two middle switches are the B(1) subnetworks; the
    // opening stage's upper outputs (lines 0, 2) must reach lines
    // 0 and 1 (upper B(1)), the lower outputs lines 2 and 3.
    const BenesTopology topo(2);
    EXPECT_EQ(topo.wireToNext(0, 0), 0u); // switch0 upper -> Bu in 0
    EXPECT_EQ(topo.wireToNext(0, 1), 2u); // switch0 lower -> Bl in 0
    EXPECT_EQ(topo.wireToNext(0, 2), 1u); // switch1 upper -> Bu in 1
    EXPECT_EQ(topo.wireToNext(0, 3), 3u); // switch1 lower -> Bl in 1
    // Closing boundary is the mirror image.
    EXPECT_EQ(topo.wireToNext(1, 0), 0u); // Bu out 0 -> switch0 upper
    EXPECT_EQ(topo.wireToNext(1, 1), 2u); // Bu out 1 -> switch1 upper
    EXPECT_EQ(topo.wireToNext(1, 2), 1u); // Bl out 0 -> switch0 lower
    EXPECT_EQ(topo.wireToNext(1, 3), 3u); // Bl out 1 -> switch1 lower
}

TEST(Topology, FirstBoundarySplitsParityHalves)
{
    // In B(n) the opening stage must send even lines of each switch
    // pair into the upper half [0, N/2) and odd lines into the lower
    // half [N/2, N).
    for (unsigned n = 2; n <= 6; ++n) {
        const BenesTopology topo(n);
        const Word half = topo.numLines() / 2;
        for (Word line = 0; line < topo.numLines(); ++line) {
            const Word to = topo.wireToNext(0, line);
            if (line % 2 == 0)
                EXPECT_LT(to, half);
            else
                EXPECT_GE(to, half);
        }
    }
}

TEST(Topology, SubnetworkBoundariesStayInTheirHalf)
{
    // Boundaries strictly inside the two B(n-1) halves never cross
    // the midline.
    for (unsigned n = 3; n <= 6; ++n) {
        const BenesTopology topo(n);
        const Word half = topo.numLines() / 2;
        for (unsigned s = 1; s + 2 < topo.numStages(); ++s) {
            for (Word line = 0; line < topo.numLines(); ++line) {
                const Word to = topo.wireToNext(s, line);
                EXPECT_EQ(line < half, to < half)
                    << "boundary " << s << " line " << line;
            }
        }
    }
}

TEST(Topology, MakeStatesShape)
{
    const BenesTopology topo(4);
    const SwitchStates states = topo.makeStates();
    ASSERT_EQ(states.size(), topo.numStages());
    for (const auto &stage : states) {
        ASSERT_EQ(stage.size(), topo.switchesPerStage());
        for (auto s : stage)
            EXPECT_EQ(s, 0);
    }
}

TEST(Topology, B1HasSingleSwitchNoWiring)
{
    const BenesTopology topo(1);
    EXPECT_EQ(topo.numStages(), 1u);
    EXPECT_EQ(topo.numSwitches(), 1u);
}

} // namespace
} // namespace srbenes
