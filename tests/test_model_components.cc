/**
 * @file
 * Model-checked invariants for the production components ported onto
 * the common/sync.hh shim (layer 3 of the srb_model subsystem):
 * SpscRing and Doorbell (core/stream.hh), PlanArena free lists
 * (core/plan_arena.hh), the plan cache's recency stamps
 * (core/cache_recency.hh), the metrics instruments (obs/metrics.hh),
 * and the LifecycleStamps publication protocol. Each test explores
 * ALL schedules at 2-3 lanes under the configured preemption bound
 * (SRBENES_MODEL_PREEMPTIONS overrides for the nightly sweep), so a
 * green run is an exhaustive bounded proof, not a lucky interleaving.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cache_recency.hh"
#include "core/plan_arena.hh"
#include "core/stream.hh"
#include "model/model.hh"
#include "obs/metrics.hh"

namespace srbenes
{
namespace
{

using model::explore;
using model::joinAll;
using model::modelAssert;
using model::Options;
using model::Result;
using model::spawn;

Options
boundedOpts(const char *name)
{
    Options opts;
    opts.name = name;
    opts.preemption_bound = model::preemptionBoundFromEnv(3);
    return opts;
}

/** Producer pushes 3 values through a capacity-4 ring while the
 *  consumer drains concurrently: nothing lost, nothing duplicated,
 *  FIFO order survives every interleaving. */
TEST(ModelComponents, SpscRingNoLostOrDuplicatedSlots)
{
    const Result res = explore(boundedOpts("spsc-no-loss"), [] {
        SpscRing<int> ring(4);
        std::vector<int> got;
        spawn([&] {
            int v = 0;
            for (int i = 0; i < 3; ++i)
                if (ring.tryPop(v))
                    got.push_back(v);
        });
        for (int i = 1; i <= 3; ++i)
            modelAssert(ring.tryPush(i + 0),
                        "capacity 4 never refuses 3 pushes");
        joinAll();
        int v = 0;
        while (ring.tryPop(v))
            got.push_back(v);
        modelAssert(got.size() == 3, "slot lost or duplicated");
        for (int i = 0; i < 3; ++i)
            modelAssert(got[static_cast<std::size_t>(i)] == i + 1,
                        "FIFO order broken");
    });
    EXPECT_TRUE(res.ok) << res.report();
    EXPECT_GT(res.schedules, 1u);
}

/** Full-ring wraparound at capacity 2: producer retries (bounded)
 *  against a concurrently draining consumer; every successfully
 *  pushed value comes back exactly once, in order, across the index
 *  wrap. */
TEST(ModelComponents, SpscRingFullRingWrap)
{
    const Result res = explore(boundedOpts("spsc-wrap"), [] {
        SpscRing<int> ring(2);
        std::vector<int> got;
        spawn([&] {
            int v = 0;
            for (int attempt = 0; attempt < 3; ++attempt)
                if (ring.tryPop(v))
                    got.push_back(v);
        });
        int pushed = 0;
        for (int i = 1; i <= 3; ++i) {
            bool ok = false;
            for (int attempt = 0; attempt < 2 && !ok; ++attempt)
                ok = ring.tryPush(i + 0);
            if (!ok)
                break;
            ++pushed;
        }
        joinAll();
        int v = 0;
        while (ring.tryPop(v))
            got.push_back(v);
        modelAssert(static_cast<int>(got.size()) == pushed,
                    "wrap lost or duplicated a slot");
        for (int i = 0; i < pushed; ++i)
            modelAssert(got[static_cast<std::size_t>(i)] == i + 1,
                        "wrap broke FIFO order");
        // The ring is capacity 2, so reaching 3+ pushes means the
        // indices wrapped at least once in this schedule.
        modelAssert(pushed >= 2, "bounded retries too tight");
    });
    EXPECT_TRUE(res.ok) << res.report();
}

/** The eventcount race: a consumer registering on the doorbell
 *  while the producer publishes-then-rings must never miss the wake
 *  (a miss would strand the futex waiter = deadlock failure). */
TEST(ModelComponents, DoorbellNeverLosesAWake)
{
    const Result res = explore(boundedOpts("doorbell-wake"), [] {
        Doorbell bell;
        sync::Atomic<int> work(0);
        spawn([&] {
            bell.waitUntil([&] {
                // order: acquire pairs with the producer's release
                // store of work below.
                return work.load(std::memory_order_acquire) != 0;
            });
            modelAssert(work.load() == 1,
                        "woken consumer must see the work");
        });
        // order: release publishes the work before the ring.
        work.store(1, std::memory_order_release);
        bell.ring();
        joinAll();
    });
    EXPECT_TRUE(res.ok) << res.report();
}

/** Wake ordering when the ring arrives before any waiter exists:
 *  the early ring must not be required, and the late registration
 *  must still see the published state instead of sleeping. */
TEST(ModelComponents, DoorbellEmptyRingWakeOrdering)
{
    const Result res = explore(boundedOpts("doorbell-early"), [] {
        Doorbell bell;
        sync::Atomic<int> work(0);
        // Ring with nobody registered: must be a harmless no-wake.
        bell.ring();
        spawn([&] {
            bell.waitUntil([&] {
                // order: acquire; see DoorbellNeverLosesAWake.
                return work.load(std::memory_order_acquire) != 0;
            });
        });
        // order: release publishes the work before the ring.
        work.store(1, std::memory_order_release);
        bell.ring();
        joinAll();
    });
    EXPECT_TRUE(res.ok) << res.report();
}

/** Sequence-epoch wraparound: with seq_ starting at UINT64_MAX - 1
 *  (test-only constructor), rings step it across zero while a
 *  waiter is in flight — the wake must still land. */
TEST(ModelComponents, DoorbellEpochWraparound)
{
    const Result res = explore(boundedOpts("doorbell-wrap"), [] {
        Doorbell bell(~std::uint64_t{0} - 1);
        sync::Atomic<int> work(0);
        spawn([&] {
            bell.waitUntil([&] {
                // order: acquire; see DoorbellNeverLosesAWake.
                return work.load(std::memory_order_acquire) != 0;
            });
            modelAssert(work.load() == 1,
                        "wake lost across the seq wrap");
        });
        // order: release publishes the work before the rings.
        work.store(1, std::memory_order_release);
        bell.ring(); // seq_: UINT64_MAX - 1 -> UINT64_MAX
        bell.ring(); // seq_: UINT64_MAX -> 0 (the wrap)
        joinAll();
    });
    EXPECT_TRUE(res.ok) << res.report();
}

/** Two lanes allocating concurrently must never receive overlapping
 *  blocks, and released blocks recycle exactly (free-list hit). */
TEST(ModelComponents, PlanArenaNoDoubleAllocatedBlocks)
{
    const Result res = explore(boundedOpts("arena-alloc"), [] {
        PlanArena arena(256);
        Word *a = nullptr;
        Word *b = nullptr;
        spawn([&] { a = arena.alloc(4); });
        spawn([&] { b = arena.alloc(4); });
        joinAll();
        modelAssert(a != nullptr && b != nullptr, "alloc failed");
        modelAssert(a + 4 <= b || b + 4 <= a,
                    "double-allocated (overlapping) blocks");
        modelAssert(arena.stats().live_blocks == 2,
                    "live-block accounting drifted");
        arena.release(a, 4);
        arena.release(b, 4);
        modelAssert(arena.residentBytes() == 0,
                    "resident bytes leaked");
        // Recycling: the free list must hand the same storage back.
        Word *c = arena.alloc(4);
        Word *d = arena.alloc(4);
        modelAssert((c == a && d == b) || (c == b && d == a),
                    "free list failed to recycle exactly");
    });
    EXPECT_TRUE(res.ok) << res.report();
}

/** LRU recency ticks drawn by concurrent hits are unique and
 *  per-lane strictly increasing — the property the Router's
 *  eviction scan assumes. */
TEST(ModelComponents, RecencyStampsMonotoneAndUnique)
{
    const Result res = explore(boundedOpts("lru-stamps"), [] {
        RecencyClock clock;
        RecencyStamp s1(0);
        RecencyStamp s2(0);
        std::uint64_t a1 = 0, a2 = 0, b1 = 0, b2 = 0;
        spawn([&] {
            s1.touch(clock);
            a1 = s1.value();
            s1.touch(clock);
            a2 = s1.value();
        });
        spawn([&] {
            s2.touch(clock);
            b1 = s2.value();
            s2.touch(clock);
            b2 = s2.value();
        });
        joinAll();
        modelAssert(a1 < a2 && b1 < b2,
                    "a lane's stamps must be strictly increasing");
        modelAssert(a1 != b1 && a1 != b2 && a2 != b1 && a2 != b2,
                    "two hits shared a recency tick");
        modelAssert(clock.issued() == 4,
                    "clock lost or double-issued a tick");
        const std::uint64_t hi = a2 > b2 ? a2 : b2;
        modelAssert(hi == 4, "ticks are not dense 1..4");
    });
    EXPECT_TRUE(res.ok) << res.report();
}

/** Sharded counter folds are exact: concurrent inc()s from distinct
 *  lanes (distinct shards via the model's laneIndex seam) never
 *  lose an increment. Gauge add() likewise. */
TEST(ModelComponents, MetricsCounterFoldIsExact)
{
    const Result res = explore(boundedOpts("counter-fold"), [] {
        obs::Counter c;
        obs::Gauge g;
        spawn([&] {
            c.inc();
            c.inc(2);
            g.add(1);
        });
        spawn([&] {
            c.inc();
            g.add(-3);
        });
        c.inc();
        joinAll();
        modelAssert(c.value() == 5, "counter fold lost an inc");
        modelAssert(g.value() == -2, "gauge add lost a delta");
    });
    EXPECT_TRUE(res.ok) << res.report();
}

/** The stamp-before-flag publication protocol (LifecycleStamps):
 *  any reader that observes started() == true must see the stamp
 *  that transition certified. test_model_mutation re-breaks this
 *  under SRBENES_MODEL_MUTATE and asserts the checker catches it. */
TEST(ModelComponents, LifecycleStampPublicationIsSound)
{
    const Result res = explore(boundedOpts("lifecycle"), [] {
        LifecycleStamps life;
        spawn([&] {
            if (life.started())
                modelAssert(life.startNs() == 7,
                            "started() certified a stale stamp");
        });
        life.markStarted(7);
        joinAll();
        modelAssert(life.started() && !life.stopped(),
                    "flag state after markStarted");
        life.markStopped(9);
        modelAssert(life.stopNs() == 9, "stop stamp readback");
    });
    EXPECT_TRUE(res.ok) << res.report();
}

} // namespace
} // namespace srbenes
