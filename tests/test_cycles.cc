/**
 * @file
 * Tests for the cycle-structure utilities: decomposition,
 * construction from cycle notation, order, parity, and powers --
 * including the algebraic identities that relate them.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/cycles.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(Cycles, IdentityHasNoCycles)
{
    const auto id = Permutation::identity(8);
    EXPECT_TRUE(cycleDecomposition(id).empty());
    EXPECT_EQ(permutationOrder(id), 1u);
    EXPECT_TRUE(isEvenPermutation(id));
    EXPECT_EQ(countFixedPoints(id), 8u);
    EXPECT_EQ(toCycleString(id), "()");
}

TEST(Cycles, HandDecomposition)
{
    // (0 2 3)(4 5) with 1 fixed.
    const Permutation p{2, 1, 3, 0, 5, 4};
    const auto cycles = cycleDecomposition(p);
    ASSERT_EQ(cycles.size(), 2u);
    EXPECT_EQ(cycles[0], (std::vector<Word>{0, 2, 3}));
    EXPECT_EQ(cycles[1], (std::vector<Word>{4, 5}));
    EXPECT_EQ(toCycleString(p), "(0 2 3)(4 5)");
    EXPECT_EQ(countFixedPoints(p), 1u);
    EXPECT_EQ(permutationOrder(p), 6u); // lcm(3, 2)
    // 2 + 1 transpositions: odd.
    EXPECT_FALSE(isEvenPermutation(p));
}

TEST(Cycles, FromCyclesRoundTrip)
{
    Prng prng(83);
    for (int trial = 0; trial < 30; ++trial) {
        const auto p = Permutation::random(32, prng);
        EXPECT_EQ(fromCycles(32, cycleDecomposition(p)), p);
    }
}

TEST(Cycles, FromCyclesRejectsOverlap)
{
    EXPECT_DEATH(fromCycles(4, {{0, 1}, {1, 2}}), "two cycles");
    EXPECT_DEATH(fromCycles(4, {{0, 9}}), "out of range");
}

TEST(Cycles, OrderAnnihilates)
{
    Prng prng(89);
    for (int trial = 0; trial < 20; ++trial) {
        const auto p = Permutation::random(16, prng);
        const auto k = permutationOrder(p);
        EXPECT_EQ(permutationPower(p, k),
                  Permutation::identity(16));
        // No smaller positive power may be the identity if k is
        // prime; in general check a strict divisor.
        if (k > 1) {
            EXPECT_NE(permutationPower(p, k - 1),
                      Permutation::identity(16));
        }
    }
}

TEST(Cycles, PowerMatchesRepeatedComposition)
{
    Prng prng(97);
    const auto p = Permutation::random(16, prng);
    Permutation acc = Permutation::identity(16);
    for (std::uint64_t k = 0; k <= 6; ++k) {
        EXPECT_EQ(permutationPower(p, k), acc);
        acc = acc.then(p);
    }
}

TEST(Cycles, ParityIsMultiplicative)
{
    Prng prng(101);
    for (int trial = 0; trial < 30; ++trial) {
        const auto a = Permutation::random(16, prng);
        const auto b = Permutation::random(16, prng);
        EXPECT_EQ(isEvenPermutation(a.then(b)),
                  isEvenPermutation(a) == isEvenPermutation(b));
    }
}

TEST(Cycles, NamedPermutationStructure)
{
    // Vector reversal on 8 elements: four transpositions, even,
    // order 2.
    const auto rev = named::vectorReversal(3).toPermutation();
    EXPECT_EQ(cycleDecomposition(rev).size(), 4u);
    EXPECT_EQ(permutationOrder(rev), 2u);
    EXPECT_TRUE(isEvenPermutation(rev));

    // The perfect shuffle on 2^n elements has order n (bit
    // rotation).
    for (unsigned n = 2; n <= 8; ++n)
        EXPECT_EQ(permutationOrder(
                      named::perfectShuffle(n).toPermutation()),
                  n);
}

TEST(Cycles, OrderOfInverseEqualsOrder)
{
    Prng prng(103);
    const auto p = Permutation::random(64, prng);
    EXPECT_EQ(permutationOrder(p), permutationOrder(p.inverse()));
}

} // namespace
} // namespace srbenes
