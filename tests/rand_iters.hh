/**
 * @file
 * SRBENES_RAND_ITERS: the nightly-CI knob for the randomized
 * differential suites. The env var is an integer multiplier applied
 * to each suite's baseline trial count — unset (or <= 1) leaves the
 * fast PR-lane counts untouched; the scheduled nightly sets it to
 * widen the random search without forking the test code.
 */

#ifndef SRBENES_TESTS_RAND_ITERS_HH
#define SRBENES_TESTS_RAND_ITERS_HH

#include <cstdlib>

namespace srbenes
{

inline int
randIters(int base)
{
    const char *env = std::getenv("SRBENES_RAND_ITERS");
    if (env == nullptr || *env == '\0')
        return base;
    const int mult = std::atoi(env);
    return mult > 1 ? base * mult : base;
}

} // namespace srbenes

#endif // SRBENES_TESTS_RAND_ITERS_HH
