/**
 * @file
 * Tests for switch-state packing: sizes, roundtrips (bytes and
 * hex), padding validation, and end-to-end "store the setup, load
 * it later, route with it".
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "core/state_io.hh"
#include "core/waksman.hh"

namespace srbenes
{
namespace
{

TEST(StateIo, PackedSize)
{
    // B(3): 20 switches -> 3 bytes; B(4): 56 -> 7 bytes.
    EXPECT_EQ(packedStateSize(BenesTopology(3)), 3u);
    EXPECT_EQ(packedStateSize(BenesTopology(4)), 7u);
    EXPECT_EQ(packedStateSize(BenesTopology(1)), 1u);
}

TEST(StateIo, RoundTripBytes)
{
    Prng prng(11);
    for (unsigned n : {1u, 2u, 3u, 5u, 8u}) {
        const BenesTopology topo(n);
        const auto d =
            Permutation::random(std::size_t{1} << n, prng);
        const auto states = waksmanSetup(topo, d);
        EXPECT_EQ(unpackStates(topo, packStates(topo, states)),
                  states)
            << n;
    }
}

TEST(StateIo, RoundTripHex)
{
    Prng prng(13);
    const BenesTopology topo(6);
    const auto states =
        waksmanSetup(topo, Permutation::random(64, prng));
    const std::string hex = statesToHex(topo, states);
    EXPECT_EQ(hex.size(), 2 * packedStateSize(topo));
    EXPECT_EQ(statesFromHex(topo, hex), states);
}

TEST(StateIo, AllZeroAndAllOne)
{
    const BenesTopology topo(3);
    const SwitchStates zeros = topo.makeStates();
    const auto zero_bytes = packStates(topo, zeros);
    for (auto b : zero_bytes)
        EXPECT_EQ(b, 0);

    SwitchStates ones = topo.makeStates();
    for (auto &stage : ones)
        for (auto &s : stage)
            s = 1;
    const auto one_bytes = packStates(topo, ones);
    // 20 switches: two full bytes then 4 bits.
    EXPECT_EQ(one_bytes[0], 0xff);
    EXPECT_EQ(one_bytes[1], 0xff);
    EXPECT_EQ(one_bytes[2], 0x0f);
}

TEST(StateIo, RejectsBadPadding)
{
    const BenesTopology topo(3);
    auto bytes = packStates(topo, topo.makeStates());
    bytes.back() = 0x80; // bit 23: beyond the 20 switches
    EXPECT_DEATH(unpackStates(topo, bytes), "padding");
}

TEST(StateIo, RejectsWrongSizes)
{
    const BenesTopology topo(3);
    EXPECT_DEATH(unpackStates(topo, std::vector<std::uint8_t>(2)),
                 "expected");
    EXPECT_DEATH(statesFromHex(topo, "ab"), "expected");
    EXPECT_DEATH(statesFromHex(topo, "zzzzzz"), "hex digit");
}

TEST(StateIo, StoredSetupStillRoutes)
{
    // The deployment flow: compute once, serialize, load, route.
    const SelfRoutingBenes net(5);
    Prng prng(17);
    const auto d = Permutation::random(32, prng);
    const std::string blob =
        statesToHex(net.topology(), waksmanSetup(net.topology(), d));

    const auto loaded = statesFromHex(net.topology(), blob);
    EXPECT_TRUE(net.routeWithStates(d, loaded).success);
}

} // namespace
} // namespace srbenes
