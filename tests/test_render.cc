/**
 * @file
 * Tests for the route renderer backing the Fig. 4 / Fig. 5 benches.
 */

#include <gtest/gtest.h>

#include "core/render.hh"
#include "perm/named_bpc.hh"

namespace srbenes
{
namespace
{

TEST(Render, ToBinary)
{
    EXPECT_EQ(toBinary(0, 3), "000");
    EXPECT_EQ(toBinary(5, 3), "101");
    EXPECT_EQ(toBinary(6, 3), "110");
    EXPECT_EQ(toBinary(1, 1), "1");
}

TEST(Render, FigFourRenderContainsTagsAndVerdict)
{
    const SelfRoutingBenes net(3);
    RouteTrace trace;
    const auto res = net.route(named::bitReversal(3).toPermutation(),
                               RoutingMode::SelfRouting, &trace);
    const std::string art =
        renderRoute(net.topology(), trace, res);

    EXPECT_NE(art.find("B(3), N = 8, 5 stages"), std::string::npos);
    // Stage headers carry the control bit (0 1 2 1 0).
    EXPECT_NE(art.find("s2(b2)"), std::string::npos);
    EXPECT_NE(art.find("s4(b0)"), std::string::npos);
    // Input tag column includes 110 (input 3's destination).
    EXPECT_NE(art.find("110"), std::string::npos);
    EXPECT_NE(art.find("verdict: permutation realized"),
              std::string::npos);
}

TEST(Render, FigFiveRenderReportsMisroute)
{
    const SelfRoutingBenes net(2);
    RouteTrace trace;
    const auto res = net.route(Permutation({1, 3, 2, 0}),
                               RoutingMode::SelfRouting, &trace);
    const std::string art =
        renderRoute(net.topology(), trace, res);
    EXPECT_NE(art.find("NOT realized"), std::string::npos);
    EXPECT_NE(art.find("misrouted outputs"), std::string::npos);
}

TEST(Render, CompactStateDiagram)
{
    const SelfRoutingBenes net(3);
    const auto res =
        net.route(named::vectorReversal(3).toPermutation());
    const std::string art = renderStates(net.topology(), res.states);
    // Vector reversal: stages 0..2 fully crossed, 3..4 straight
    // (see test_stats); every switch row reads XXX==.
    EXPECT_NE(art.find("XXX=="), std::string::npos);
    EXPECT_NE(art.find("switch  stages 0..4"), std::string::npos);
    // Four switch rows.
    EXPECT_NE(art.find(" 3      XXX=="), std::string::npos);
}

TEST(Render, CompactDiagramIdentityAllStraight)
{
    const SelfRoutingBenes net(2);
    const auto res = net.route(Permutation::identity(4));
    const std::string art = renderStates(net.topology(), res.states);
    EXPECT_NE(art.find("==="), std::string::npos);
    EXPECT_EQ(art.find('X'), std::string::npos);
}

TEST(Render, SwitchStateMatrixPrinted)
{
    const SelfRoutingBenes net(2);
    RouteTrace trace;
    const auto res = net.route(Permutation::identity(4),
                               RoutingMode::SelfRouting, &trace);
    const std::string art =
        renderRoute(net.topology(), trace, res);
    EXPECT_NE(art.find("stage 0: 0 0"), std::string::npos);
    EXPECT_NE(art.find("stage 2: 0 0"), std::string::npos);
}

} // namespace
} // namespace srbenes
