/**
 * @file
 * Tests for the mesh-connected computer and its Section III
 * algorithm: interchange distances, the 7 N^1/2 - 8 route count,
 * exhaustive equivalence with F(n) at N = 4, and data delivery.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "simd/permute.hh"

namespace srbenes
{
namespace
{

TEST(Mcc, InterchangeDistances)
{
    // n = 6: 8x8 mesh. Column distances for bits 0..2, row distances
    // for bits 3..5.
    MeshMachine m(6);
    EXPECT_EQ(m.side(), 8u);
    EXPECT_EQ(m.interchangeDistance(0), 1u);
    EXPECT_EQ(m.interchangeDistance(1), 2u);
    EXPECT_EQ(m.interchangeDistance(2), 4u);
    EXPECT_EQ(m.interchangeDistance(3), 1u);
    EXPECT_EQ(m.interchangeDistance(4), 2u);
    EXPECT_EQ(m.interchangeDistance(5), 4u);
}

TEST(Mcc, InterchangeCostsTwiceTheDistance)
{
    MeshMachine m(4);
    m.loadIota(Permutation::identity(16));
    m.interchange(1, [](Word) { return true; });
    EXPECT_EQ(m.unitRoutes(), 4u); // distance 2, both directions
    m.interchange(3, [](Word) { return true; });
    EXPECT_EQ(m.unitRoutes(), 4u + 4u); // row distance 2
}

TEST(Mcc, PermuteMatchesFClassExhaustivelyN4)
{
    MeshMachine m(2);
    std::vector<Word> dest(4);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        const Permutation d(dest);
        m.loadIota(d);
        ASSERT_EQ(mccPermute(m).success, inFClass(d)) << d.toString();
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(Mcc, AgreesWithCubeAlgorithm)
{
    Prng prng(47);
    const unsigned n = 6;
    for (int trial = 0; trial < 20; ++trial) {
        const Permutation d = BpcSpec::random(n, prng).toPermutation();
        CubeMachine cube(n);
        MeshMachine mesh(n);
        cube.loadIota(d);
        mesh.loadIota(d);
        ASSERT_TRUE(cccPermute(cube).success);
        ASSERT_TRUE(mccPermute(mesh).success);
        for (Word i = 0; i < cube.numPes(); ++i)
            EXPECT_EQ(cube.pe(i).r, mesh.pe(i).r);
    }
}

class MccRouteCounts : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MccRouteCounts, GeneralCaseUsesSevenRootNMinusEight)
{
    const unsigned n = GetParam();
    MeshMachine m(n);
    m.loadIota(named::bitReversal(n).toPermutation());
    const auto stats = mccPermute(m);
    EXPECT_TRUE(stats.success);
    const Word root = Word{1} << (n / 2);
    EXPECT_EQ(stats.unit_routes, 7 * root - 8);
}

INSTANTIATE_TEST_SUITE_P(EvenWidths, MccRouteCounts,
                         ::testing::Values(2u, 4u, 6u, 8u, 10u, 12u));

TEST(Mcc, DataArrivesWithTags)
{
    MeshMachine m(6);
    Prng prng(53);
    for (int trial = 0; trial < 10; ++trial) {
        const Permutation d = BpcSpec::random(6, prng).toPermutation();
        m.loadIota(d);
        ASSERT_TRUE(mccPermute(m).success);
        for (Word i = 0; i < 64; ++i)
            EXPECT_EQ(m.pe(d[i]).r, i);
    }
}

TEST(Mcc, StepwiseInterchangeValidatesCostModel)
{
    // The literal neighbor-hop realization must agree with the
    // accounted teleport in both result and unit-route count, for
    // every dimension.
    Prng prng(59);
    const unsigned n = 6;
    for (unsigned b = 0; b < n; ++b) {
        MeshMachine direct(n), literal(n);
        const Permutation d = Permutation::random(64, prng);
        direct.loadIota(d);
        literal.loadIota(d);

        auto pred = [&d](Word i) { return bit(d[i], 0) == 1; };
        direct.interchange(b, pred);
        literal.interchangeStepwise(b, pred);

        EXPECT_EQ(direct.unitRoutes(), literal.unitRoutes())
            << "dim " << b;
        for (Word i = 0; i < 64; ++i) {
            EXPECT_EQ(direct.pe(i).r, literal.pe(i).r)
                << "dim " << b << " pe " << i;
            EXPECT_EQ(direct.pe(i).d, literal.pe(i).d);
        }
    }
}

TEST(Mcc, StepwisePermuteDeliversLikeAccounted)
{
    // Run the whole Section III schedule with literal hops.
    const unsigned n = 4;
    MeshMachine m(n);
    const Permutation d = named::bitReversal(n).toPermutation();
    m.loadIota(d);
    for (unsigned b : benesSchedule(n))
        m.interchangeStepwise(
            b, [&m, b](Word i) { return bit(m.pe(i).d, b) == 1; });
    EXPECT_TRUE(m.permutationComplete());
    EXPECT_EQ(m.unitRoutes(), 7u * 4 - 8); // 7 sqrt(N) - 8
}

TEST(Mcc, OddWidthRejected)
{
    EXPECT_DEATH(
        {
            MeshMachine m(3);
            (void)m;
        },
        "even");
}

TEST(Mcc, TransposeCheaperWithBpcHint)
{
    // Matrix transpose fixes no axis, but p-ordering-style BPC
    // hints can skip: use a spec fixing the row bits.
    const unsigned n = 6;
    const BpcSpec spec = named::segmentBitReversal(n, n / 2);
    MeshMachine with_hint(n), without(n);
    with_hint.loadIota(spec.toPermutation());
    without.loadIota(spec.toPermutation());
    const auto hinted =
        mccPermute(with_hint, PermClassHint::General, &spec);
    const auto plain = mccPermute(without);
    EXPECT_TRUE(hinted.success);
    EXPECT_TRUE(plain.success);
    EXPECT_LT(hinted.unit_routes, plain.unit_routes);
}

} // namespace
} // namespace srbenes
