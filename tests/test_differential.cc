/**
 * @file
 * Differential suite: the library contains SIX independent
 * realizations of "route permutation D through the self-routing
 * Benes network" --
 *
 *   1. the Theorem 1 recursive membership test (perm/f_class),
 *   2. the behavioral fabric simulator (core/self_routing),
 *   3. the gate-level netlist (gates/benes_gates),
 *   4. the CCC simulation (simd/permute),
 *   5. the PSC simulation,
 *   6. the MCC simulation,
 *
 * plus two universal paths (Waksman single pass, two-pass plan).
 * This suite drives all of them with shared workload streams and
 * requires bitwise agreement, catching any drift between the
 * theory, the behavioral model, and the hardware model.
 */

#include <gtest/gtest.h>

#include "rand_iters.hh"

#include "common/prng.hh"
#include "core/self_routing.hh"
#include "core/two_pass.hh"
#include "core/waksman.hh"
#include "gates/benes_gates.hh"
#include "perm/f_class.hh"
#include "perm/linear.hh"
#include "perm/omega_class.hh"
#include "simd/permute.hh"

namespace srbenes
{
namespace
{

/** One shared workload stream: a mix of F members, affine, omega
 *  and uniform permutations. */
std::vector<Permutation>
workloads(unsigned n, Prng &prng, int count)
{
    std::vector<Permutation> out;
    const std::size_t size = std::size_t{1} << n;
    for (int k = 0; k < count; ++k) {
        switch (k % 4) {
          case 0:
            out.push_back(randomFMember(n, prng));
            break;
          case 1:
            out.push_back(
                LinearSpec::random(n, prng).toPermutation());
            break;
          case 2:
            out.push_back(named::pOrderingShift(
                n, 2 * prng.below(size / 2) + 1,
                prng.below(size)));
            break;
          default:
            out.push_back(Permutation::random(size, prng));
            break;
        }
    }
    return out;
}

class Differential : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Differential, SixWayAgreementOnSuccess)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    const BenesGateModel gates(n, false);
    Prng prng(n * 1013);

    for (const auto &d : workloads(n, prng, randIters(24))) {
        const bool theory = inFClass(d);
        const bool behavioral = net.route(d).success;

        const auto gate_tags = gates.simulate(d);
        bool gate_ok = true;
        for (Word j = 0; j < gate_tags.size(); ++j)
            gate_ok = gate_ok && gate_tags[j] == j;

        CubeMachine ccc(n);
        ccc.loadIota(d);
        const bool cube = cccPermute(ccc).success;

        ShuffleMachine psc(n);
        psc.loadIota(d);
        const bool shuf = pscPermute(psc).success;

        ASSERT_EQ(behavioral, theory) << d.toString();
        ASSERT_EQ(gate_ok, theory) << d.toString();
        ASSERT_EQ(cube, theory) << d.toString();
        ASSERT_EQ(shuf, theory) << d.toString();

        if (n % 2 == 0) {
            MeshMachine mcc(n);
            mcc.loadIota(d);
            ASSERT_EQ(mccPermute(mcc).success, theory)
                << d.toString();
        }
    }
}

TEST_P(Differential, DataAgreementOnMembers)
{
    // For F members, all data-carrying paths must deliver the same
    // layout.
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 1019);
    const std::size_t size = std::size_t{1} << n;

    std::vector<Word> data(size);
    for (std::size_t i = 0; i < size; ++i)
        data[i] = 7000 + i;

    for (int trial = 0; trial < randIters(10); ++trial) {
        const Permutation d = randomFMember(n, prng);
        const auto net_out = net.permutePayloads(d, data);
        ASSERT_TRUE(net_out.has_value());

        CubeMachine ccc(n);
        ccc.load(d, data);
        ASSERT_TRUE(cccPermute(ccc).success);
        EXPECT_EQ(ccc.payloads(), *net_out);

        ShuffleMachine psc(n);
        psc.load(d, data);
        ASSERT_TRUE(pscPermute(psc).success);
        EXPECT_EQ(psc.payloads(), *net_out);
    }
}

TEST_P(Differential, UniversalPathsAgreeOnEverything)
{
    // Waksman single pass and the two-pass plan must both realize
    // arbitrary permutations identically.
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 1021);
    const std::size_t size = std::size_t{1} << n;

    std::vector<Word> data(size);
    for (std::size_t i = 0; i < size; ++i)
        data[i] = 9000 + i;

    for (const auto &d : workloads(n, prng, randIters(12))) {
        // Reference layout.
        const auto expect = d.applyTo(data);

        const auto states = waksmanSetup(net.topology(), d);
        const auto wak = net.routeWithStates(d, states);
        ASSERT_TRUE(wak.success);
        std::vector<Word> wak_out(size);
        for (std::size_t i = 0; i < size; ++i)
            wak_out[wak.realized_dest[i]] = data[i];
        EXPECT_EQ(wak_out, expect);

        const auto plan = twoPassPlan(net, d);
        EXPECT_EQ(twoPassPermute(net, plan, data), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, Differential,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u));

} // namespace
} // namespace srbenes
