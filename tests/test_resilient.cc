/**
 * @file
 * Fault-tolerant serving tests: the RouteOutcome taxonomy, the
 * ResilientRouter fallback chain, health probing and diagnosis, and
 * the StreamEngine deadline/shed integration.
 *
 * The load-bearing test is the exhaustive n = 3 single-fault sweep:
 * every stuck-at fault on every switch, against F members and
 * general permutations alike, must either serve a bit-exact payload
 * or report fault_detected — never a silent misroute. That is the
 * serving-layer restatement of the paper's Section IV testability
 * claim.
 */

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/resilient.hh"
#include "core/stream.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/permutation.hh"

namespace
{

using namespace srbenes;

std::vector<Word>
iotaPayload(std::size_t size, Word base = 0)
{
    std::vector<Word> v(size);
    for (std::size_t i = 0; i < size; ++i)
        v[i] = base + i;
    return v;
}

/** Options with instrumentation off: these tests assert on the
 *  built-in stats() counters, not on a shared registry. */
ResilientOptions
quietOptions()
{
    ResilientOptions opts;
    opts.metrics = nullptr;
    return opts;
}

// -------------------------------------------------------- RouteOutcome

TEST(RouteOutcomeTest, SuccessCarriesPayloadAndTier)
{
    auto out = RouteOutcome::success({3, 1, 2}, ServeTier::Reroute);
    EXPECT_TRUE(out.ok());
    EXPECT_TRUE(static_cast<bool>(out));
    EXPECT_EQ(out.errc(), RouteErrc::Ok);
    EXPECT_EQ(out.tier(), ServeTier::Reroute);
    EXPECT_EQ(out.value(), (std::vector<Word>{3, 1, 2}));
    EXPECT_EQ(out.takeValue(), (std::vector<Word>{3, 1, 2}));
}

TEST(RouteOutcomeTest, FailureCarriesTaxonomy)
{
    RouteError err;
    err.code = RouteErrc::FaultDetected;
    err.tier = ServeTier::TwoPass;
    err.suspects = {StuckFault{1, 2, 1}};
    err.detail = "boom";
    const auto out = RouteOutcome::failure(std::move(err));
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.errc(), RouteErrc::FaultDetected);
    EXPECT_EQ(out.tier(), ServeTier::TwoPass);
    ASSERT_EQ(out.error().suspects.size(), 1u);
    EXPECT_EQ(out.error().suspects[0], (StuckFault{1, 2, 1}));
    EXPECT_EQ(out.error().detail, "boom");
}

TEST(RouteOutcomeTest, FailureWithOkCodeIsCoerced)
{
    // An "error" whose code still says Ok would make ok() lie; the
    // constructor coerces it to the generic fault code.
    RouteError err;
    err.code = RouteErrc::Ok;
    const auto out = RouteOutcome::failure(std::move(err));
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.errc(), RouteErrc::FaultDetected);
}

TEST(RouteOutcomeTest, Names)
{
    EXPECT_STREQ(routeErrcName(RouteErrc::Ok), "ok");
    EXPECT_STREQ(routeErrcName(RouteErrc::NotInF), "not_in_F");
    EXPECT_STREQ(routeErrcName(RouteErrc::FaultDetected),
                 "fault_detected");
    EXPECT_STREQ(routeErrcName(RouteErrc::DeadlineExceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(routeErrcName(RouteErrc::Shed), "shed");
    EXPECT_STREQ(serveTierName(ServeTier::Primary), "primary");
    EXPECT_STREQ(serveTierName(ServeTier::Reroute), "reroute");
    EXPECT_STREQ(serveTierName(ServeTier::TwoPass), "two_pass");
    EXPECT_STREQ(serveTierName(ServeTier::Failed), "failed");
    EXPECT_STREQ(switchHealthName(SwitchHealth::Healthy), "healthy");
    EXPECT_STREQ(switchHealthName(SwitchHealth::Suspect), "suspect");
}

// ------------------------------------------------- deprecated shims

TEST(DeprecatedShims, OldRouterRouteStillWorks)
{
    // The pre-taxonomy signature must keep compiling and returning
    // the routed payload (release-note promise for one cycle).
    const unsigned n = 4;
    const Word N = Word{1} << n;
    const Router router(n);
    Prng prng(71);
    const Permutation d = Permutation::random(N, prng);
    const auto out = router.route(d, iotaPayload(N));
    for (Word i = 0; i < N; ++i)
        EXPECT_EQ(out[d[i]], i);
}

TEST(DeprecatedShims, RouterRouteOutcomeMatchesShim)
{
    const unsigned n = 4;
    const Word N = Word{1} << n;
    const Router router(n);
    Prng prng(72);
    for (int trial = 0; trial < 10; ++trial) {
        const Permutation d = Permutation::random(N, prng);
        const auto outcome = router.routeOutcome(d, iotaPayload(N));
        ASSERT_TRUE(outcome.ok());
        EXPECT_EQ(outcome.tier(), ServeTier::Primary);
        EXPECT_EQ(outcome.value(), router.route(d, iotaPayload(N)));
    }
}

// --------------------------------------------------- healthy serving

TEST(ResilientRouterTest, HealthyFabricServesPrimaryExactly)
{
    const unsigned n = 4;
    const Word N = Word{1} << n;
    ResilientRouter rr(n, quietOptions());
    EXPECT_TRUE(rr.believedHealthy());

    Prng prng(73);
    for (int trial = 0; trial < 20; ++trial) {
        const Permutation d = trial % 2 == 0
                                  ? Permutation::random(N, prng)
                                  : randomFMember(n, prng);
        const auto payload = iotaPayload(N, trial * 100);
        const auto out = rr.route(d, payload);
        ASSERT_TRUE(out.ok()) << "trial " << trial;
        EXPECT_EQ(out.tier(), ServeTier::Primary);
        EXPECT_EQ(out.value(), d.applyTo(payload));
    }
    const ResilientStats st = rr.stats();
    EXPECT_EQ(st.serves_primary, 20u);
    EXPECT_EQ(st.serves_reroute + st.serves_two_pass, 0u);
    EXPECT_EQ(st.failures_fault + st.failures_deadline, 0u);
    // Healthy serving never needed a probe.
    EXPECT_EQ(st.probes, 0u);
}

TEST(ResilientRouterTest, ProbeOnHealthyFabricFindsNothing)
{
    ResilientRouter rr(3, quietOptions());
    const ProbeReport report = rr.probe();
    EXPECT_TRUE(report.healthy);
    EXPECT_GT(report.tests_run, 0u);
    EXPECT_EQ(report.tests_mismatched, 0u);
    EXPECT_TRUE(report.suspects.empty());
    EXPECT_TRUE(rr.believedHealthy());
    EXPECT_TRUE(rr.suspects().empty());
}

// ------------------------------------------- exhaustive fault sweep

/**
 * The permutation battery for the fault sweeps: identity and bit
 * reversal (the classic witnesses), plus random F members (Primary
 * self-routes them) and random general permutations (Primary needs
 * two passes or Waksman).
 */
std::vector<Permutation>
sweepBattery(unsigned n, Prng &prng)
{
    const Word N = Word{1} << n;
    std::vector<Permutation> battery;
    battery.push_back(Permutation::identity(N));
    battery.push_back(named::bitReversal(n).toPermutation());
    for (int i = 0; i < 3; ++i)
        battery.push_back(randomFMember(n, prng));
    for (int i = 0; i < 3; ++i)
        battery.push_back(Permutation::random(N, prng));
    return battery;
}

TEST(FaultSweep, EverySingleFaultIsRoutedAroundOrReported)
{
    // Exhaustive at n = 3: all 5 stages x 4 switches x 2 stuck
    // values, against the full battery. The acceptance bar: a serve
    // either returns the bit-exact payload or fails with
    // fault_detected; a wrong payload is an instant failure. The
    // fallback chain should also actually engage (nonzero degraded
    // serves across the sweep).
    const unsigned n = 3;
    const Word N = Word{1} << n;
    ResilientOptions opts = quietOptions();
    opts.max_retries = 1;
    ResilientRouter rr(n, opts);
    const BenesTopology &topo = rr.fabric().topology();

    Prng prng(74);
    const auto battery = sweepBattery(n, prng);
    const auto payload = iotaPayload(N);

    std::uint64_t degraded = 0, failed = 0, total = 0;
    for (unsigned s = 0; s < topo.numStages(); ++s) {
        for (Word sw = 0; sw < topo.switchesPerStage(); ++sw) {
            for (std::uint8_t v : {std::uint8_t{0}, std::uint8_t{1}}) {
                rr.clearFaults();
                rr.injectFault(StuckFault{s, sw, v});
                for (const Permutation &d : battery) {
                    ++total;
                    const auto out = rr.route(d, payload);
                    if (out.ok()) {
                        // The whole point: a success is BIT-EXACT.
                        ASSERT_EQ(out.value(), d.applyTo(payload))
                            << "silent misroute under fault ("
                            << s << ", " << sw << ", " << int(v)
                            << ")";
                        if (out.tier() != ServeTier::Primary)
                            ++degraded;
                    } else {
                        EXPECT_EQ(out.errc(),
                                  RouteErrc::FaultDetected);
                        ++failed;
                    }
                }
            }
        }
    }
    // Sanity on scale: 5 stages x 4 switches x 2 values x battery.
    EXPECT_EQ(total, 5u * 4u * 2u * battery.size());
    // Faults must have actually bitten (a sweep where every serve
    // stayed Primary would mean the overlay is inert) ...
    EXPECT_GT(degraded, 0u);
    // ... and the chain must rescue the overwhelming majority. The
    // sweep is useless if everything just fails "honestly".
    EXPECT_LT(failed, total / 10);
    EXPECT_GT(rr.stats().serves_reroute, 0u);
}

TEST(FaultSweep, TwoPassTierServesWhenRerouteIsDisabled)
{
    // Force the chain past Reroute (zero pinned attempts) so the
    // seeded re-factorization tier has to do the rescuing.
    const unsigned n = 3;
    const Word N = Word{1} << n;
    ResilientOptions opts = quietOptions();
    opts.reroute_seeds = 0;
    opts.two_pass_seeds = 16;
    ResilientRouter rr(n, opts);
    const BenesTopology &topo = rr.fabric().topology();

    Prng prng(75);
    const auto battery = sweepBattery(n, prng);
    const auto payload = iotaPayload(N);

    for (unsigned s = 0; s < topo.numStages(); ++s)
        for (Word sw = 0; sw < topo.switchesPerStage(); ++sw)
            for (std::uint8_t v :
                 {std::uint8_t{0}, std::uint8_t{1}}) {
                rr.clearFaults();
                rr.injectFault(StuckFault{s, sw, v});
                for (const Permutation &d : battery) {
                    const auto out = rr.route(d, payload);
                    if (out.ok())
                        ASSERT_EQ(out.value(), d.applyTo(payload));
                    else
                        EXPECT_EQ(out.errc(),
                                  RouteErrc::FaultDetected);
                }
            }
    EXPECT_GT(rr.stats().serves_two_pass, 0u);
    EXPECT_EQ(rr.stats().serves_reroute, 0u);
}

TEST(FaultSweep, ProbeDetectsAndLocalizesEveryFault)
{
    // Section IV, as a service: the probe must flag every single
    // stuck-at fault (the test set is a detection cover by
    // construction) and the diagnosis must keep the true fault in
    // its behaviorally-equivalent candidate set.
    const unsigned n = 3;
    ResilientRouter rr(n, quietOptions());
    const BenesTopology &topo = rr.fabric().topology();

    for (unsigned s = 0; s < topo.numStages(); ++s)
        for (Word sw = 0; sw < topo.switchesPerStage(); ++sw)
            for (std::uint8_t v :
                 {std::uint8_t{0}, std::uint8_t{1}}) {
                const StuckFault fault{s, sw, v};
                rr.clearFaults();
                rr.injectFault(fault);
                const ProbeReport report = rr.probe();
                EXPECT_FALSE(report.healthy)
                    << "undetected fault (" << s << ", " << sw
                    << ", " << int(v) << ")";
                EXPECT_NE(std::find(report.suspects.begin(),
                                    report.suspects.end(), fault),
                          report.suspects.end())
                    << "true fault missing from diagnosis";
                EXPECT_FALSE(rr.believedHealthy());
                EXPECT_EQ(rr.switchHealth(s, sw),
                          SwitchHealth::Suspect);
            }

    // Repair: clearing the fault and re-probing restores the
    // scoreboard to healthy.
    rr.clearFaults();
    const ProbeReport healed = rr.probe();
    EXPECT_TRUE(healed.healthy);
    EXPECT_TRUE(rr.believedHealthy());
    EXPECT_TRUE(rr.suspects().empty());
}

TEST(ResilientRouterTest, EpochAdvancesOnlyWhenTheScoreboardChanges)
{
    // Epoch churn would invalidate the degraded-plan cache on every
    // re-probe of a stable fault, so same picture => same epoch.
    ResilientRouter rr(3, quietOptions());
    const std::uint64_t e0 = rr.probeEpoch();
    rr.probe(); // healthy fabric, nothing changes
    rr.probe();
    EXPECT_EQ(rr.probeEpoch(), e0);

    rr.injectFault(StuckFault{0, 0, 1});
    rr.probe(); // scoreboard flips to suspect
    const std::uint64_t e1 = rr.probeEpoch();
    EXPECT_GT(e1, e0);
    rr.probe(); // same stable fault: no new generation
    EXPECT_EQ(rr.probeEpoch(), e1);

    rr.clearFaults();
    rr.probe(); // repaired: a new generation again
    EXPECT_GT(rr.probeEpoch(), e1);
}

TEST(ResilientRouterTest, DegradedPlanCacheShortCircuitsTheSearch)
{
    const unsigned n = 4;
    const Word N = Word{1} << n;
    ResilientRouter rr(n, quietOptions());
    rr.injectFault(StuckFault{0, 1, 1});

    Prng prng(76);
    Permutation d = Permutation::random(N, prng);
    // Find a permutation the fault actually disturbs, so the serve
    // goes degraded and caches a plan.
    for (int guard = 0; rr.route(d, iotaPayload(N)).tier() ==
                        ServeTier::Primary &&
                        guard < 50;
         ++guard)
        d = Permutation::random(N, prng);
    ASSERT_NE(rr.route(d, iotaPayload(N)).tier(),
              ServeTier::Primary);

    const std::uint64_t hits_before = rr.stats().degraded_cache_hits;
    const auto out = rr.route(d, iotaPayload(N, 500));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value(), d.applyTo(iotaPayload(N, 500)));
    EXPECT_GT(rr.stats().degraded_cache_hits, hits_before);
}

TEST(ResilientRouterTest, ExpiredDeadlineFailsFast)
{
    const unsigned n = 4;
    const Word N = Word{1} << n;
    ResilientRouter rr(n, quietOptions());
    const Permutation d = Permutation::identity(N);
    // An already-passed (but nonzero) absolute deadline.
    const auto out = rr.route(d, iotaPayload(N), 1);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.errc(), RouteErrc::DeadlineExceeded);
    EXPECT_EQ(rr.stats().failures_deadline, 1u);
}

TEST(ResilientRouterTest, RetryProbesBetweenAttempts)
{
    // With retries enabled, a degraded serve on a believed-healthy
    // fabric triggers the on-failure probe, so the scoreboard
    // reflects the fault after the first affected serve.
    const unsigned n = 3;
    ResilientRouter rr(n, quietOptions());
    rr.injectFault(StuckFault{2, 1, 1});
    EXPECT_TRUE(rr.believedHealthy()); // not yet probed

    Prng prng(77);
    const auto payload = iotaPayload(Word{1} << n);
    for (int trial = 0; trial < 20; ++trial) {
        const Permutation d =
            Permutation::random(Word{1} << n, prng);
        const auto out = rr.route(d, payload);
        if (out.ok()) {
            EXPECT_EQ(out.value(), d.applyTo(payload));
        }
    }
    // The center-stage fault disturbs some serve in 20 random draws;
    // by then the failure path has probed and localized it.
    EXPECT_FALSE(rr.believedHealthy());
    EXPECT_GT(rr.stats().probes, 0u);
}

// ------------------------------------------------ stream integration

TEST(ResilientStream, ServesThroughFaultsWithTierStamps)
{
    const unsigned n = 4;
    const Word N = Word{1} << n;
    ResilientRouter rr(n, quietOptions());
    rr.injectFault(StuckFault{0, 1, 1});

    StreamOptions opts;
    opts.workers = 2;
    opts.resilient = &rr;
    opts.inline_max_n = 0; // worker-thread serving under test
    StreamEngine eng(n, opts);
    eng.start();

    Prng prng(78);
    std::vector<std::shared_ptr<const Permutation>> patterns;
    for (int i = 0; i < 4; ++i)
        patterns.push_back(std::make_shared<const Permutation>(
            Permutation::random(N, prng)));

    auto &prod = eng.producer(0);
    constexpr std::uint64_t kTotal = 120;
    std::vector<StreamResult> results;
    std::vector<std::size_t> pattern_of;
    StreamResult res;
    Prng choose(79);
    for (std::uint64_t id = 0; id < kTotal; ++id) {
        const std::size_t pi = choose.below(patterns.size());
        pattern_of.push_back(pi);
        std::vector<Word> payload = iotaPayload(N, id * N);
        while (!prod.trySubmit(id, patterns[pi], payload))
            if (prod.tryPoll(res))
                results.push_back(std::move(res));
        if (prod.tryPoll(res))
            results.push_back(std::move(res));
    }
    while (prod.received() < prod.submitted())
        if (prod.tryPoll(res))
            results.push_back(std::move(res));
    eng.stop();

    ASSERT_EQ(results.size(), kTotal);
    std::uint64_t degraded = 0;
    for (const auto &r : results) {
        ASSERT_TRUE(r.ok()) << "id " << r.id << " status "
                            << routeErrcName(r.status);
        const Permutation &d = *patterns[pattern_of[r.id]];
        EXPECT_EQ(r.payload, d.applyTo(iotaPayload(N, r.id * N)));
        if (r.tier != ServeTier::Primary)
            ++degraded;
    }
    EXPECT_GT(degraded, 0u);
    const StreamStats st = eng.stats();
    EXPECT_EQ(st.requests, kTotal);
    EXPECT_EQ(st.degraded, degraded);
    EXPECT_EQ(st.route_failures, 0u);
}

TEST(ResilientStream, ExpiredDeadlineComesBackStructured)
{
    const unsigned n = 3;
    const Word N = Word{1} << n;
    ResilientRouter rr(n, quietOptions());
    StreamOptions opts;
    opts.resilient = &rr;
    opts.inline_max_n = 0; // the queued-expiry path under test
    StreamEngine eng(n, opts);
    eng.start();

    auto perm = std::make_shared<const Permutation>(
        Permutation::identity(N));
    auto &prod = eng.producer(0);
    std::vector<Word> payload = iotaPayload(N, 40);
    // Absolute deadline of 1 ns after boot: long expired.
    ASSERT_TRUE(prod.trySubmit(7, perm, payload, 1));
    StreamResult res;
    ASSERT_TRUE(prod.awaitResultFor(res, 2'000'000'000ull));
    eng.stop();

    EXPECT_EQ(res.id, 7u);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.status, RouteErrc::DeadlineExceeded);
    EXPECT_EQ(res.tier, ServeTier::Failed);
    // The unrouted payload comes back with the failure.
    EXPECT_EQ(res.payload, iotaPayload(N, 40));
    EXPECT_EQ(eng.stats().deadline_expired, 1u);
}

TEST(ResilientStream, InlinePathWalksTheFallbackChainIdentically)
{
    // The small-N inline path must serve through the resilient
    // chain exactly like a worker: tier stamps (including degraded
    // fallbacks under a fault), structured deadline failures, and
    // the degraded/deadline counters.
    const unsigned n = 4;
    const Word N = Word{1} << n;
    ResilientRouter rr(n, quietOptions());
    rr.injectFault(StuckFault{0, 1, 1});

    StreamOptions opts;
    opts.resilient = &rr;
    StreamEngine eng(n, opts); // default inline_max_n covers n = 4
    eng.start();

    Prng prng(82);
    auto &prod = eng.producer(0);
    StreamResult res;
    std::uint64_t degraded = 0;
    for (std::uint64_t id = 0; id < 40; ++id) {
        const Permutation d = Permutation::random(N, prng);
        auto perm = std::make_shared<const Permutation>(d);
        std::vector<Word> payload = iotaPayload(N, id);
        ASSERT_TRUE(prod.trySubmit(id, perm, payload));
        ASSERT_TRUE(prod.tryPoll(res)) << "inline result is instant";
        ASSERT_TRUE(res.ok()) << routeErrcName(res.status);
        EXPECT_EQ(res.payload, d.applyTo(iotaPayload(N, id)));
        if (res.tier != ServeTier::Primary)
            ++degraded;
    }
    // A long-expired deadline fails structured, same as the ring.
    auto perm = std::make_shared<const Permutation>(
        Permutation::identity(N));
    std::vector<Word> payload = iotaPayload(N, 7);
    ASSERT_TRUE(prod.trySubmit(99, perm, payload, 1));
    ASSERT_TRUE(prod.tryPoll(res));
    EXPECT_EQ(res.status, RouteErrc::DeadlineExceeded);
    EXPECT_EQ(res.tier, ServeTier::Failed);
    EXPECT_EQ(res.payload, iotaPayload(N, 7));
    eng.stop();

    EXPECT_GT(degraded, 0u) << "the stuck switch must force a "
                               "fallback tier on some request";
    const StreamStats st = eng.stats();
    EXPECT_EQ(st.inline_served, 41u);
    EXPECT_EQ(st.degraded, degraded);
    EXPECT_EQ(st.deadline_expired, 1u);
    EXPECT_EQ(st.route_failures, 0u);
}

TEST(ResilientStream, FullRingShedsInsteadOfBlocking)
{
    const unsigned n = 3;
    const Word N = Word{1} << n;
    StreamOptions opts;
    opts.ring_capacity = 4;
    opts.inline_max_n = 0; // ring shed (not inline shed) under test
    StreamEngine eng(n, opts);
    // Deliberately NOT started: the rings fill and stay full. One
    // pattern targets one affine worker, whose full ring spills once
    // to the neighbour — so 2 rings' worth are accepted, then sheds.
    auto perm = std::make_shared<const Permutation>(
        Permutation::identity(N));
    auto &prod = eng.producer(0);
    std::uint64_t accepted = 0;
    for (std::uint64_t id = 0; id < 16; ++id) {
        std::vector<Word> payload = iotaPayload(N);
        if (prod.trySubmit(id, perm, payload, 0))
            ++accepted;
    }
    EXPECT_EQ(accepted, 8u);
    EXPECT_EQ(eng.stats().sheds, 8u);
}

TEST(ResilientStream, AwaitResultForTimesOutEmpty)
{
    const unsigned n = 3;
    StreamOptions opts;
    StreamEngine eng(n, opts);
    eng.start();
    StreamResult res;
    // Nothing submitted: a short relative timeout must return false
    // (and promptly enough for a unit test).
    EXPECT_FALSE(eng.producer(0).awaitResultFor(res, 2'000'000ull));
    eng.stop();
}

// --------------------------------------------------- concurrency

TEST(ResilientConcurrency, ProbesRaceInjectionAndServing)
{
    // tsan-targeted hammer: one thread flaps the fault overlay, one
    // probes, two serve through a shared engine. Every completed
    // result must still be exact-or-flagged.
    const unsigned n = 3;
    const Word N = Word{1} << n;
    ResilientOptions ropts = quietOptions();
    ropts.max_retries = 0; // keep the hammer fast
    ResilientRouter rr(n, ropts);

    StreamOptions opts;
    opts.workers = 2;
    opts.producers = 2;
    opts.resilient = &rr;
    opts.inline_max_n = 0; // worker threads must race the chaos
    StreamEngine eng(n, opts);
    eng.start();

    std::atomic<bool> done{false};
    std::thread chaos([&] {
        Prng prng(80);
        // order: relaxed; the flag only bounds the loop.
        while (!done.load(std::memory_order_relaxed)) {
            rr.injectFault(StuckFault{
                static_cast<unsigned>(prng.below(5)),
                prng.below(4),
                static_cast<std::uint8_t>(prng.below(2))});
            rr.clearFaults();
        }
    });
    std::thread prober([&] {
        // order: relaxed; see above.
        while (!done.load(std::memory_order_relaxed))
            rr.probe();
    });

    std::vector<std::thread> pumps;
    std::vector<int> bad(2, 0);
    for (unsigned p = 0; p < 2; ++p) {
        pumps.emplace_back([&, p] {
            Prng prng(81 + p);
            auto &prod = eng.producer(p);
            std::vector<std::shared_ptr<const Permutation>> pats;
            std::vector<Permutation> plain;
            for (int i = 0; i < 3; ++i) {
                plain.push_back(Permutation::random(N, prng));
                pats.push_back(std::make_shared<const Permutation>(
                    plain.back()));
            }
            StreamResult res;
            for (std::uint64_t id = 0; id < 200; ++id) {
                const std::size_t pi = prng.below(pats.size());
                std::vector<Word> payload = iotaPayload(N, id);
                while (!prod.trySubmit(id * 4 + pi, pats[pi],
                                       payload))
                    prod.tryPoll(res);
            }
            while (prod.received() < prod.submitted()) {
                if (!prod.tryPoll(res))
                    continue;
                if (res.ok()) {
                    const Permutation &d = plain[res.id % 4];
                    if (res.payload !=
                        d.applyTo(iotaPayload(N, res.id / 4)))
                        ++bad[p];
                } else if (res.status != RouteErrc::FaultDetected &&
                           res.status !=
                               RouteErrc::DeadlineExceeded) {
                    ++bad[p];
                }
            }
        });
    }
    for (auto &t : pumps)
        t.join();
    // order: relaxed; thread join below is the synchronization.
    done.store(true, std::memory_order_relaxed);
    chaos.join();
    prober.join();
    eng.stop();

    EXPECT_EQ(bad[0], 0);
    EXPECT_EQ(bad[1], 0);
    EXPECT_EQ(eng.stats().requests, 400u);
}

} // namespace
