/**
 * @file
 * Tests for two-pass universal routing: the factorization
 * D = P1 o P2 with P1 in InverseOmega(n) and P2 in Omega(n), and its
 * execution as two self-routed passes (pass 2 with the omega bit).
 * Checked exhaustively for N <= 8 and sampled to N = 1024.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/two_pass.hh"
#include "perm/f_class.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

void
checkPlan(const SelfRoutingBenes &net, const Permutation &d)
{
    const TwoPassPlan plan = twoPassPlan(net, d);

    // Factorization identity.
    ASSERT_EQ(plan.first.then(plan.second), d) << d.toString();

    // Class memberships that make the two passes self-routable.
    EXPECT_TRUE(isInverseOmega(plan.first))
        << "P1 = " << plan.first.toString();
    EXPECT_TRUE(isOmega(plan.second))
        << "P2 = " << plan.second.toString();
    EXPECT_TRUE(inFClass(plan.first));

    // Operational check: both passes actually route.
    EXPECT_TRUE(net.route(plan.first).success);
    EXPECT_TRUE(
        net.route(plan.second, RoutingMode::OmegaBit).success);
}

TEST(TwoPass, ExhaustiveN4)
{
    const SelfRoutingBenes net(2);
    std::vector<Word> dest(4);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        checkPlan(net, Permutation(dest));
    } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(TwoPass, ExhaustiveN8)
{
    const SelfRoutingBenes net(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        checkPlan(net, Permutation(dest));
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class TwoPassSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TwoPassSweep, RandomPermutations)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 211);
    for (int trial = 0; trial < 10; ++trial)
        checkPlan(net,
                  Permutation::random(std::size_t{1} << n, prng));
}

TEST_P(TwoPassSweep, PayloadsDelivered)
{
    const unsigned n = GetParam();
    const SelfRoutingBenes net(n);
    Prng prng(n * 223);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    const TwoPassPlan plan = twoPassPlan(net, d);

    std::vector<Word> data(d.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = 5000 + i;
    const auto out = twoPassPermute(net, plan, data);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(out[d[i]], 5000 + i);
}

INSTANTIATE_TEST_SUITE_P(Widths, TwoPassSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u,
                                           10u));

TEST(TwoPass, FigFiveCounterexampleNowRoutes)
{
    // The permutation that defeats single-pass self-routing.
    const SelfRoutingBenes net(2);
    const Permutation d{1, 3, 2, 0};
    ASSERT_FALSE(net.route(d).success);
    const TwoPassPlan plan = twoPassPlan(net, d);
    const auto out =
        twoPassPermute(net, plan, {Word{10}, 11, 12, 13});
    EXPECT_EQ(out, (std::vector<Word>{13, 10, 12, 11}));
}

TEST(TwoPass, IdentityFactorsTrivially)
{
    const SelfRoutingBenes net(4);
    const auto id = Permutation::identity(16);
    const TwoPassPlan plan = twoPassPlan(net, id);
    EXPECT_EQ(plan.first.then(plan.second), id);
}

TEST(TwoPassSeeded, EverySeedIsAValidFactorization)
{
    // The factorization's loop colorings are free choices, so every
    // seed must produce class-correct factors that compose to d.
    const SelfRoutingBenes net(4);
    Prng prng(61);
    for (int trial = 0; trial < 5; ++trial) {
        const Permutation d = Permutation::random(16, prng);
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            const TwoPassPlan plan = twoPassPlanSeeded(net, d, seed);
            ASSERT_EQ(plan.first.then(plan.second), d)
                << "seed " << seed;
            EXPECT_TRUE(isInverseOmega(plan.first));
            EXPECT_TRUE(isOmega(plan.second));
            const auto out = twoPassPermute(
                net, plan, {Word{0}, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                            11, 12, 13, 14, 15});
            for (Word i = 0; i < 16; ++i)
                EXPECT_EQ(out[d[i]], i);
        }
    }
}

TEST(TwoPassSeeded, SeedZeroIsTheCanonicalPlan)
{
    const SelfRoutingBenes net(5);
    Prng prng(62);
    for (int trial = 0; trial < 5; ++trial) {
        const Permutation d = Permutation::random(32, prng);
        const TwoPassPlan canonical = twoPassPlan(net, d);
        const TwoPassPlan seeded = twoPassPlanSeeded(net, d, 0);
        EXPECT_EQ(seeded.first, canonical.first);
        EXPECT_EQ(seeded.second, canonical.second);
    }
}

TEST(TwoPassSeeded, SeedsExerciseDifferentFactors)
{
    // Reseeding must actually change the factorization, or the
    // resilient TwoPass tier would retry the same failing plan.
    const SelfRoutingBenes net(4);
    Prng prng(63);
    const Permutation d = Permutation::random(16, prng);
    const TwoPassPlan canonical = twoPassPlanSeeded(net, d, 0);
    bool varied = false;
    for (std::uint64_t seed = 1; seed < 10 && !varied; ++seed) {
        const TwoPassPlan plan = twoPassPlanSeeded(net, d, seed);
        varied = !(plan.first == canonical.first);
    }
    EXPECT_TRUE(varied);
}

TEST(TwoPass, FMembersStillWorkInOnePassButPlanIsValid)
{
    // Two-pass is universal, so it must also handle F members.
    const SelfRoutingBenes net(5);
    Prng prng(5);
    const Permutation d = randomFMember(5, prng);
    checkPlan(net, d);
}

} // namespace
} // namespace srbenes
