/**
 * @file
 * Tests for the tiled plan arena (core/plan_arena.hh): bump
 * allocation, exact-size free-list recycling, oversize tiles, byte
 * accounting and gauges, and the TiledPlans handle's ownership
 * semantics (moves transfer the blocks; destruction returns them).
 */

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "core/fast_engine.hh"
#include "core/plan_arena.hh"
#include "core/setup_engine.hh"
#include "obs/metrics.hh"
#include "perm/f_class.hh"
#include "perm/permutation.hh"

namespace srbenes
{
namespace
{

TEST(PlanArena, BumpAllocationAndAccounting)
{
    PlanArena arena(/*tile_bytes=*/1024); // 128 words per tile
    EXPECT_EQ(arena.tileWords(), 128u);
    EXPECT_EQ(arena.residentBytes(), 0u);
    EXPECT_EQ(arena.capacityBytes(), 0u);

    Word *a = arena.alloc(16);
    Word *b = arena.alloc(16);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    // Same open tile: the second block bumps right past the first.
    EXPECT_EQ(b, a + 16);

    const PlanArenaStats st = arena.stats();
    EXPECT_EQ(st.resident_bytes, 2 * 16 * sizeof(Word));
    EXPECT_EQ(st.capacity_bytes, 128 * sizeof(Word));
    EXPECT_EQ(st.tiles, 1u);
    EXPECT_EQ(st.live_blocks, 2u);
    EXPECT_GT(st.occupancy, 0.0);

    arena.release(a, 16);
    arena.release(b, 16);
    EXPECT_EQ(arena.residentBytes(), 0u);
    // The arena never shrinks: capacity (the tile) persists.
    EXPECT_EQ(arena.capacityBytes(), 128 * sizeof(Word));
}

TEST(PlanArena, FreeListRecyclesExactSizes)
{
    PlanArena arena(1024);
    Word *a = arena.alloc(32);
    arena.release(a, 32);
    // Same size comes back off the free list: identical pointer, no
    // new capacity.
    const std::size_t cap = arena.capacityBytes();
    Word *b = arena.alloc(32);
    EXPECT_EQ(b, a);
    EXPECT_EQ(arena.capacityBytes(), cap);
    // A different size must NOT reuse the freed 32-word block.
    arena.release(b, 32);
    Word *c = arena.alloc(16);
    EXPECT_NE(c, a);
    arena.release(c, 16);
}

TEST(PlanArena, OversizeRequestsGetDedicatedTiles)
{
    PlanArena arena(/*tile_bytes=*/256); // 32 words per tile
    Word *big = arena.alloc(100);        // > tileWords()
    ASSERT_NE(big, nullptr);
    const PlanArenaStats st = arena.stats();
    EXPECT_EQ(st.resident_bytes, 100 * sizeof(Word));
    EXPECT_GE(st.capacity_bytes, 100 * sizeof(Word));
    // Writes across the whole block must be in-bounds (asan-checked).
    for (int i = 0; i < 100; ++i)
        big[i] = Word(i);
    arena.release(big, 100);
    // And the oversize block recycles like any other size class.
    EXPECT_EQ(arena.alloc(100), big);
    arena.release(big, 100);
}

TEST(PlanArena, TilesOpenAsNeeded)
{
    PlanArena arena(/*tile_bytes=*/256); // 32 words per tile
    std::vector<Word *> blocks;
    for (int i = 0; i < 8; ++i)
        blocks.push_back(arena.alloc(24)); // one 24-word fit per tile
    const PlanArenaStats st = arena.stats();
    EXPECT_EQ(st.tiles, 8u);
    EXPECT_EQ(st.live_blocks, 8u);
    EXPECT_EQ(st.resident_bytes, 8 * 24 * sizeof(Word));
    for (Word *b : blocks)
        arena.release(b, 24);
    EXPECT_EQ(arena.residentBytes(), 0u);
    EXPECT_EQ(arena.stats().tiles, 8u); // capacity persists
}

TEST(PlanArena, GaugesFollowResidency)
{
    obs::MetricsRegistry reg;
    obs::Gauge &resident = reg.gauge("arena_resident");
    obs::Gauge &capacity = reg.gauge("arena_capacity");
    PlanArena arena(1024);
    arena.attachGauges(&resident, &capacity);
    EXPECT_EQ(resident.value(), 0);

    Word *a = arena.alloc(10);
    EXPECT_EQ(resident.value(),
              static_cast<std::int64_t>(10 * sizeof(Word)));
    EXPECT_EQ(capacity.value(),
              static_cast<std::int64_t>(arena.capacityBytes()));
    arena.release(a, 10);
    EXPECT_EQ(resident.value(), 0);
    EXPECT_EQ(capacity.value(),
              static_cast<std::int64_t>(arena.capacityBytes()));
}

TEST(PlanArena, ZeroWordAllocDies)
{
    PlanArena arena;
    EXPECT_DEATH(arena.alloc(0), "");
}

/** setupTiled batches against a deliberately tiny arena, so a small
 *  batch still spans several tiles. */
TiledPlans
tinyTiledBatch(const SetupEngine &setup, unsigned n,
               std::size_t count,
               const std::shared_ptr<PlanArena> &arena, Prng &prng)
{
    std::vector<Permutation> batch;
    for (std::size_t i = 0; i < count; ++i)
        batch.push_back(randomFMember(n, prng));
    return setup.setupTiled(batch, RoutingMode::SelfRouting, 1,
                            arena);
}

TEST(TiledPlans, DestructionReturnsBlocksToTheArena)
{
    Prng prng(41);
    const FastEngine eng(5);
    const SetupEngine setup(eng);
    auto arena = std::make_shared<PlanArena>(/*tile_bytes=*/512);
    {
        const TiledPlans plans =
            tinyTiledBatch(setup, 5, 13, arena, prng);
        EXPECT_EQ(plans.size(), 13u);
        EXPECT_GT(plans.tiles(), 1u); // tiny tiles: batch spans many
        EXPECT_EQ(plans.planBytes(), arena->residentBytes());
        EXPECT_GT(plans.planBytes(), 0u);
    }
    EXPECT_EQ(arena->residentBytes(), 0u);
}

TEST(TiledPlans, MovesTransferOwnership)
{
    Prng prng(42);
    const FastEngine eng(4);
    const SetupEngine setup(eng);
    auto arena = std::make_shared<PlanArena>(512);

    TiledPlans a = tinyTiledBatch(setup, 4, 7, arena, prng);
    const std::size_t bytes = a.planBytes();
    const PackedStates want = a.packedStates(6);

    TiledPlans b = std::move(a);
    EXPECT_TRUE(a.empty()); // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(b.size(), 7u);
    EXPECT_EQ(b.planBytes(), bytes);
    EXPECT_EQ(arena->residentBytes(), bytes);
    EXPECT_EQ(b.packedStates(6).words, want.words);

    TiledPlans c;
    c = std::move(b);
    EXPECT_EQ(c.size(), 7u);
    EXPECT_EQ(arena->residentBytes(), bytes);
    EXPECT_EQ(c.packedStates(6).words, want.words);

    // Move-assign over a non-empty handle releases ITS blocks first.
    c = tinyTiledBatch(setup, 4, 3, arena, prng);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(arena->residentBytes(), c.planBytes());
}

TEST(TiledPlans, BitsViewMatchesMaterializedStates)
{
    Prng prng(43);
    const unsigned n = 6;
    const FastEngine eng(n);
    const SetupEngine setup(eng);
    auto arena = std::make_shared<PlanArena>(512);
    const TiledPlans plans = tinyTiledBatch(setup, n, 9, arena, prng);

    const Word switches = (Word{1} << n) / 2;
    for (std::size_t i = 0; i < plans.size(); ++i) {
        const PackedPlanBits view = plans.bits(i);
        const PackedStates flat = plans.packedStates(i);
        ASSERT_EQ(view.n, n);
        ASSERT_EQ(view.words_per_stage, flat.words_per_stage);
        for (unsigned s = 0; s < 2 * n - 1; ++s)
            for (Word sw = 0; sw < switches; ++sw)
                ASSERT_EQ(view.get(s, sw), flat.get(s, sw))
                    << "plan " << i << " stage " << s << " sw " << sw;
    }
}

} // namespace
} // namespace srbenes
