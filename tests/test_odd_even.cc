/**
 * @file
 * Tests for the odd-even merge sorting network: comparator count
 * and depth formulas, universal routing (exhaustive at N = 8), and
 * the cost advantage over the bitonic construction.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "networks/batcher.hh"
#include "networks/odd_even.hh"

namespace srbenes
{
namespace
{

TEST(OddEven, ComparatorCountFormula)
{
    // C(N) = N/4 (lg^2 N - lg N + 4) - 1.
    for (unsigned n = 1; n <= 12; ++n) {
        const OddEvenMergeNetwork net(n);
        const Word size = Word{1} << n;
        EXPECT_EQ(net.numSwitches(),
                  size * (n * n - n + 4) / 4 - 1)
            << n;
    }
}

TEST(OddEven, DepthMatchesBitonic)
{
    for (unsigned n = 1; n <= 12; ++n) {
        const OddEvenMergeNetwork net(n);
        EXPECT_EQ(net.delayStages(), n * (n + 1) / 2) << n;
    }
}

TEST(OddEven, FewerComparatorsThanBitonic)
{
    for (unsigned n = 2; n <= 12; ++n) {
        const OddEvenMergeNetwork oem(n);
        const BatcherNetwork bitonic(n);
        EXPECT_LT(oem.numSwitches(), bitonic.numSwitches()) << n;
    }
}

TEST(OddEven, SortsAllPermutationsN8)
{
    const OddEvenMergeNetwork net(3);
    std::vector<Word> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    do {
        ASSERT_TRUE(net.tryRoute(Permutation(dest)));
    } while (std::next_permutation(dest.begin(), dest.end()));
}

class OddEvenSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OddEvenSweep, SortsRandomPermutations)
{
    const unsigned n = GetParam();
    const OddEvenMergeNetwork net(n);
    Prng prng(n * 907);
    for (int trial = 0; trial < 10; ++trial)
        EXPECT_TRUE(net.tryRoute(
            Permutation::random(std::size_t{1} << n, prng)));
}

INSTANTIATE_TEST_SUITE_P(Widths, OddEvenSweep,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u, 10u));

TEST(OddEven, ComparatorsAreWellFormed)
{
    const OddEvenMergeNetwork net(4);
    for (const auto &c : net.comparators()) {
        EXPECT_LT(c.low, c.high);
        EXPECT_LT(c.high, net.numLines());
    }
}

TEST(OddEven, KnownSmallCounts)
{
    EXPECT_EQ(OddEvenMergeNetwork(1).numSwitches(), 1u);
    EXPECT_EQ(OddEvenMergeNetwork(2).numSwitches(), 5u);
    EXPECT_EQ(OddEvenMergeNetwork(3).numSwitches(), 19u);
    EXPECT_EQ(OddEvenMergeNetwork(4).numSwitches(), 63u);
}

} // namespace
} // namespace srbenes
