/**
 * @file
 * Tests for the SIMD machine base class behaviors shared by all
 * models: record loading, payload extraction, completion predicate,
 * counter semantics, and lock-step mask evaluation (masks read the
 * pre-step state even when the predicate inspects neighbors).
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "simd/ccc.hh"
#include "simd/psc.hh"

namespace srbenes
{
namespace
{

TEST(SimdMachine, LoadValidatesSizes)
{
    CubeMachine m(3);
    EXPECT_DEATH(m.load(Permutation::identity(4), {0, 1, 2, 3}),
                 "PE count");
    EXPECT_DEATH(m.load(Permutation::identity(8), {0, 1}),
                 "payload count");
}

TEST(SimdMachine, LoadIotaSetsPayloadToOrigin)
{
    CubeMachine m(3);
    m.loadIota(Permutation::identity(8));
    for (Word i = 0; i < 8; ++i) {
        EXPECT_EQ(m.pe(i).r, i);
        EXPECT_EQ(m.pe(i).d, i);
    }
    EXPECT_TRUE(m.permutationComplete());
}

TEST(SimdMachine, LoadResetsCounters)
{
    CubeMachine m(3);
    m.loadIota(Permutation::identity(8));
    m.interchange(0, [](Word) { return true; });
    EXPECT_EQ(m.unitRoutes(), 1u);
    m.loadIota(Permutation::identity(8));
    EXPECT_EQ(m.unitRoutes(), 0u);
    EXPECT_EQ(m.interchangeSteps(), 0u);
}

TEST(SimdMachine, PayloadsVectorMatchesPes)
{
    CubeMachine m(2);
    m.load(Permutation::identity(4), {9, 8, 7, 6});
    EXPECT_EQ(m.payloads(), (std::vector<Word>{9, 8, 7, 6}));
}

TEST(SimdMachine, CompletionIsDestinationBased)
{
    CubeMachine m(2);
    m.load(Permutation({1, 0, 2, 3}), {0, 0, 0, 0});
    EXPECT_FALSE(m.permutationComplete());
    m.interchange(0, [&m](Word i) { return m.pe(i).d != i; });
    EXPECT_TRUE(m.permutationComplete());
}

TEST(SimdMachine, MaskReadsPreStepState)
{
    // A predicate that inspects the PARTNER's record must see the
    // pre-step value for every pair, even those processed later in
    // the sweep.
    CubeMachine m(2);
    m.load(Permutation::identity(4), {1, 0, 1, 0});
    // Swap pair (i, i^1) iff the partner's payload is 1. Both
    // partners (PEs 1 and 3) hold payload 0 before the step, so
    // nothing may move -- even though a naive in-place sweep that
    // swapped pair (0,1) mid-scan would not change that here, the
    // two-phase select-then-swap implementation guarantees it in
    // general.
    m.interchange(0, [&m](Word i) {
        return m.pe(flipBit(i, 0)).r == 1;
    });
    EXPECT_EQ(m.payloads(), (std::vector<Word>{1, 0, 1, 0}));
}

TEST(SimdMachine, TwoRouteInterchangeAccounting)
{
    CubeMachine m(3, 2);
    m.loadIota(Permutation::identity(8));
    m.interchange(1, [](Word) { return true; });
    EXPECT_EQ(m.interchangeSteps(), 1u);
    EXPECT_EQ(m.unitRoutes(), 2u);
    EXPECT_EQ(m.routesPerInterchange(), 2u);
}

TEST(SimdMachine, ShuffleCountersPerPrimitive)
{
    ShuffleMachine m(3);
    m.loadIota(Permutation::identity(8));
    m.shuffleStep();
    m.unshuffleStep();
    m.exchange([](Word) { return false; });
    EXPECT_EQ(m.unitRoutes(), 3u);
}

TEST(SimdMachine, DimensionRangeChecked)
{
    CubeMachine m(3);
    m.loadIota(Permutation::identity(8));
    EXPECT_DEATH(m.interchange(3, [](Word) { return true; }),
                 "out of range");
}

} // namespace
} // namespace srbenes
