/**
 * @file
 * Tests for the switch-state instrumentation, including the
 * identities that link it to the routing semantics: identity routes
 * leave every switch straight; the omega-bit mode idles exactly the
 * first n-1 stages; vector reversal crosses every switch.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/self_routing.hh"
#include "core/stats.hh"
#include "core/waksman.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace srbenes
{
namespace
{

TEST(Stats, IdentityRouteIsAllStraight)
{
    const SelfRoutingBenes net(4);
    const auto res = net.route(Permutation::identity(16));
    EXPECT_EQ(countCrossed(res.states), 0u);
    EXPECT_DOUBLE_EQ(crossedFraction(res.states), 0.0);
    EXPECT_EQ(idleStages(res.states).size(), 7u);
}

TEST(Stats, VectorReversalCrossesExactlyTheOpeningStages)
{
    // Vector reversal decomposes into itself (Theorem 2 case 1 with
    // A_0 = -0): the opening stage of every recursion level is
    // fully crossed, while every closing stage is straight (the
    // upper input there always carries the even tag). Crossed
    // stages are therefore 0..n-1, fraction n / (2n-1).
    for (unsigned n = 2; n <= 6; ++n) {
        const SelfRoutingBenes net(n);
        const auto res =
            net.route(named::vectorReversal(n).toPermutation());
        ASSERT_TRUE(res.success);
        const auto util = stageUtilization(res.states);
        for (unsigned s = 0; s < 2 * n - 1; ++s)
            EXPECT_DOUBLE_EQ(util[s], s < n ? 1.0 : 0.0)
                << "n " << n << " stage " << s;
        EXPECT_DOUBLE_EQ(crossedFraction(res.states),
                         static_cast<double>(n) / (2 * n - 1));
    }
}

TEST(Stats, OmegaBitIdlesFirstStages)
{
    const SelfRoutingBenes net(4);
    const auto res =
        net.route(named::cyclicShift(4, 7), RoutingMode::OmegaBit);
    ASSERT_TRUE(res.success);
    const auto idle = idleStages(res.states);
    // Stages 0..n-2 forced straight; possibly more idle by chance.
    for (unsigned s = 0; s + 1 < 4; ++s)
        EXPECT_NE(std::find(idle.begin(), idle.end(), s), idle.end());
}

TEST(Stats, StageUtilizationShape)
{
    const SelfRoutingBenes net(3);
    const auto res =
        net.route(named::bitReversal(3).toPermutation());
    const auto util = stageUtilization(res.states);
    ASSERT_EQ(util.size(), 5u);
    // From the Fig. 4 reproduction: stages 0, 2, 4 cross half their
    // switches; stages 1, 3 are straight.
    EXPECT_DOUBLE_EQ(util[0], 0.5);
    EXPECT_DOUBLE_EQ(util[1], 0.0);
    EXPECT_DOUBLE_EQ(util[2], 0.5);
    EXPECT_DOUBLE_EQ(util[3], 0.0);
    EXPECT_DOUBLE_EQ(util[4], 0.5);
}

TEST(Stats, HammingDistanceBetweenDriveStyles)
{
    // Self-routing and Waksman may legitimately pick different
    // realizations; the distance is well defined and zero against
    // itself.
    const SelfRoutingBenes net(4);
    const Permutation d = named::bitReversal(4).toPermutation();
    const auto self_res = net.route(d);
    const auto wak = waksmanSetup(net.topology(), d);
    EXPECT_EQ(statesHammingDistance(self_res.states,
                                    self_res.states),
              0u);
    const Word dist = statesHammingDistance(self_res.states, wak);
    EXPECT_LE(dist, net.topology().numSwitches());
}

TEST(Stats, IdleStagesMatchBpcFixedAxes)
{
    // A BPC permutation fixing axis j never routes across dimension
    // j, so the stages controlled by bit j stay straight.
    const SelfRoutingBenes net(5);
    const BpcSpec spec = named::segmentBitReversal(5, 2);
    const auto res = net.route(spec.toPermutation());
    ASSERT_TRUE(res.success);
    const auto idle = idleStages(res.states);
    // Bits 2..4 fixed: stages with controlBit in {2,3,4} are idle.
    for (unsigned s = 0; s < net.topology().numStages(); ++s) {
        if (net.topology().controlBit(s) >= 2) {
            EXPECT_NE(std::find(idle.begin(), idle.end(), s),
                      idle.end())
                << "stage " << s;
        }
    }
}

} // namespace
} // namespace srbenes
