/**
 * @file
 * Tests for the traffic-matrix library (packet/traffic.hh):
 * determinism under reset (equal seeds replay equal streams), the
 * offered-load calibration of every generator, matrix-specific
 * shape (hot-spot skew, burstiness, partial injectivity, multicast
 * fanout), and the ScheduleTraffic playback used by the PacketBenes
 * shim.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "packet/traffic.hh"
#include "perm/named_bpc.hh"
#include "perm/permutation.hh"
#include "rand_iters.hh"

namespace srbenes
{
namespace
{

using packet::Arrival;

std::vector<Arrival>
collect(packet::TrafficSource &src, std::uint64_t cycles)
{
    std::vector<Arrival> all;
    for (std::uint64_t c = 0; c < cycles; ++c)
        src.arrivals(c, all);
    return all;
}

bool
sameArrivals(const std::vector<Arrival> &a,
             const std::vector<Arrival> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].src != b[i].src || a[i].dst != b[i].dst)
            return false;
    return true;
}

std::vector<std::unique_ptr<packet::TrafficSource>>
allRandomMatrices(unsigned n, double load, std::uint64_t seed)
{
    std::vector<std::unique_ptr<packet::TrafficSource>> out;
    out.push_back(
        std::make_unique<packet::UniformTraffic>(n, load, seed));
    out.push_back(std::make_unique<packet::HotSpotTraffic>(
        n, load, 0.3, 2, seed));
    out.push_back(std::make_unique<packet::BurstyTraffic>(
        n, std::min(load, 0.8), 8.0, seed));
    out.push_back(std::make_unique<packet::PartialTraffic>(
        n, load, 0.5, seed));
    out.push_back(std::make_unique<packet::MulticastTraffic>(
        n, load, 4, seed));
    out.push_back(std::make_unique<packet::PermutationTraffic>(
        n, load, named::bitReversal(n).toPermutation(), seed));
    return out;
}

TEST(Traffic, ResetReplaysTheExactSameStream)
{
    for (auto &src : allRandomMatrices(5, 0.6, 77)) {
        const auto first = collect(*src, 200);
        src->reset();
        const auto second = collect(*src, 200);
        EXPECT_TRUE(sameArrivals(first, second)) << src->name();
        EXPECT_FALSE(first.empty()) << src->name();
    }
}

TEST(Traffic, DifferentSeedsDifferentStreams)
{
    for (std::size_t i = 0; i < allRandomMatrices(5, 0.6, 1).size();
         ++i) {
        auto a = std::move(allRandomMatrices(5, 0.6, 1)[i]);
        auto b = std::move(allRandomMatrices(5, 0.6, 2)[i]);
        EXPECT_FALSE(
            sameArrivals(collect(*a, 200), collect(*b, 200)))
            << a->name();
    }
}

TEST(Traffic, ArrivalsStayInRange)
{
    const unsigned n = 4;
    const Word size = Word{1} << n;
    for (auto &src : allRandomMatrices(n, 0.9, 131))
        for (const Arrival &a : collect(*src, 300)) {
            ASSERT_LT(a.src, size) << src->name();
            ASSERT_LT(a.dst, size) << src->name();
        }
}

TEST(Traffic, OfferedLoadIsCalibrated)
{
    // Long-run arrival rate per SENDING port tracks the load knob.
    // (Partial: half the ports send; multicast: fanout arrivals per
    // event at load/fanout events -- both normalize back to load.)
    const unsigned n = 6;
    const double size = static_cast<double>(Word{1} << n);
    const std::uint64_t cycles =
        static_cast<std::uint64_t>(randIters(3000));
    const double load = 0.5;
    for (auto &src : allRandomMatrices(n, load, 211)) {
        const double ports =
            std::string(src->name()) == "partial" ? size / 2 : size;
        const double rate =
            static_cast<double>(collect(*src, cycles).size()) /
            (static_cast<double>(cycles) * ports);
        EXPECT_NEAR(rate, load, 0.05) << src->name();
    }
}

TEST(Traffic, HotSpotConcentratesOnTheHotLine)
{
    const unsigned n = 6;
    const double hot_fraction = 0.3;
    packet::HotSpotTraffic src(n, 0.5, hot_fraction, 9, 307);
    const auto all = collect(src, 2000);
    std::uint64_t hot = 0;
    for (const Arrival &a : all)
        hot += a.dst == 9 ? 1 : 0;
    // hot_fraction aimed shots plus the uniform background's share.
    const double expect =
        hot_fraction +
        (1.0 - hot_fraction) / static_cast<double>(Word{1} << n);
    const double got = static_cast<double>(hot) /
                       static_cast<double>(all.size());
    EXPECT_NEAR(got, expect, 0.05);
}

TEST(Traffic, BurstySourcesSendInRuns)
{
    // A source that sent last cycle sends again with probability
    // 1 - 1/B, far above its stationary load -- that correlation IS
    // the burstiness (uniform traffic shows none).
    const unsigned n = 5;
    const Word size = Word{1} << n;
    const double load = 0.5, mean_burst = 8.0;
    packet::BurstyTraffic src(n, load, mean_burst, 401);
    const std::uint64_t cycles = 4000;
    std::vector<std::vector<std::uint8_t>> sent(
        cycles, std::vector<std::uint8_t>(size, 0));
    std::vector<Arrival> buf;
    for (std::uint64_t c = 0; c < cycles; ++c) {
        buf.clear();
        src.arrivals(c, buf);
        for (const Arrival &a : buf)
            sent[c][a.src] = 1;
    }
    std::uint64_t repeats = 0, prev_sends = 0;
    for (std::uint64_t c = 1; c < cycles; ++c)
        for (Word s = 0; s < size; ++s)
            if (sent[c - 1][s]) {
                ++prev_sends;
                repeats += sent[c][s];
            }
    const double cond = static_cast<double>(repeats) /
                        static_cast<double>(prev_sends);
    EXPECT_NEAR(cond, 1.0 - 1.0 / mean_burst, 0.05);
    EXPECT_GT(cond, load + 0.2); // visibly burstier than Bernoulli
}

TEST(Traffic, PartialIsAnInjectivePartialPermutation)
{
    const unsigned n = 5;
    const Word size = Word{1} << n;
    packet::PartialTraffic src(n, 1.0, 0.5, 503);
    EXPECT_EQ(src.activeSources(), size / 2);
    const auto all = collect(src, 50);
    std::set<Word> senders;
    std::vector<std::set<Word>> dsts_of(size);
    for (const Arrival &a : all) {
        senders.insert(a.src);
        dsts_of[a.src].insert(a.dst);
    }
    // At load 1.0 exactly the active half sends, each to ONE
    // destination, and no two sources share a destination.
    EXPECT_EQ(senders.size(), size / 2);
    std::set<Word> used;
    for (const Word s : senders) {
        ASSERT_EQ(dsts_of[s].size(), 1u);
        EXPECT_TRUE(used.insert(*dsts_of[s].begin()).second);
    }
}

TEST(Traffic, MulticastEmitsDistinctFanout)
{
    const unsigned n = 5;
    const Word fanout = 4;
    packet::MulticastTraffic src(n, 0.6, fanout, 601);
    std::vector<Arrival> buf;
    for (std::uint64_t c = 0; c < 500; ++c) {
        buf.clear();
        src.arrivals(c, buf);
        // Arrivals come in per-event groups of exactly fanout with
        // distinct destinations.
        ASSERT_EQ(buf.size() % fanout, 0u);
        for (std::size_t g = 0; g < buf.size(); g += fanout) {
            std::set<Word> dsts;
            for (Word k = 0; k < fanout; ++k) {
                EXPECT_EQ(buf[g + k].src, buf[g].src);
                dsts.insert(buf[g + k].dst);
            }
            EXPECT_EQ(dsts.size(), fanout);
        }
    }
}

TEST(Traffic, PermutationTrafficFollowsD)
{
    const unsigned n = 4;
    const Permutation d = named::bitReversal(n).toPermutation();
    packet::PermutationTraffic src(n, 0.7, d, 701);
    for (const Arrival &a : collect(src, 300))
        ASSERT_EQ(a.dst, d[a.src]);
}

TEST(Traffic, ScheduleReplaysVerbatimThenGoesQuiet)
{
    std::vector<std::vector<Arrival>> sched{
        {{0, 3}, {1, 2}},
        {},
        {{2, 0}},
    };
    packet::ScheduleTraffic src(sched);
    EXPECT_EQ(src.length(), 3u);
    std::vector<Arrival> buf;
    src.arrivals(0, buf);
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf[1].dst, 2u);
    buf.clear();
    src.arrivals(1, buf);
    EXPECT_TRUE(buf.empty());
    src.arrivals(2, buf);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].src, 2u);
    buf.clear();
    src.arrivals(3, buf); // exhausted
    EXPECT_TRUE(buf.empty());
    src.reset();
    src.arrivals(0, buf);
    EXPECT_EQ(buf.size(), 2u); // rewound
}

TEST(Traffic, RejectsBadParameters)
{
    EXPECT_DEATH(packet::UniformTraffic(4, 1.5), "load");
    EXPECT_DEATH(packet::HotSpotTraffic(4, 0.5, 2.0), "fraction");
    EXPECT_DEATH(packet::BurstyTraffic(4, 0.95, 8.0), "bursty");
    EXPECT_DEATH(packet::MulticastTraffic(4, 0.5, 0), "fanout");
}

} // namespace
} // namespace srbenes
