/**
 * @file
 * Tests for the sorting-based permutation baselines: they must
 * realize arbitrary permutations (not only F) on all three machines,
 * with the expected route counts.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "perm/f_class.hh"
#include "simd/bitonic.hh"

namespace srbenes
{
namespace
{

class BitonicSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitonicSweep, CubeSortsArbitraryPermutations)
{
    const unsigned n = GetParam();
    CubeMachine m(n);
    Prng prng(n * 61);
    for (int trial = 0; trial < 10; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        m.loadIota(d);
        const auto stats = bitonicPermuteCube(m);
        ASSERT_TRUE(stats.success);
        EXPECT_EQ(stats.interchanges, n * (n + 1) / 2);
        for (Word i = 0; i < m.numPes(); ++i)
            EXPECT_EQ(m.pe(d[i]).r, i);
    }
}

TEST_P(BitonicSweep, ShuffleSortsArbitraryPermutations)
{
    const unsigned n = GetParam();
    ShuffleMachine m(n);
    Prng prng(n * 67);
    for (int trial = 0; trial < 10; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        m.loadIota(d);
        const auto stats = bitonicPermuteShuffle(m);
        ASSERT_TRUE(stats.success);
        for (Word i = 0; i < m.numPes(); ++i)
            EXPECT_EQ(m.pe(d[i]).r, i);
    }
}

TEST_P(BitonicSweep, MeshSortsArbitraryPermutations)
{
    const unsigned n = GetParam();
    if (n % 2 != 0)
        return;
    MeshMachine m(n);
    Prng prng(n * 71);
    for (int trial = 0; trial < 10; ++trial) {
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        m.loadIota(d);
        const auto stats = bitonicPermuteMesh(m);
        ASSERT_TRUE(stats.success);
        for (Word i = 0; i < m.numPes(); ++i)
            EXPECT_EQ(m.pe(d[i]).r, i);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitonicSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(Bitonic, HandlesNonFPermutations)
{
    // The very permutation that defeats self-routing (Fig. 5) sorts
    // fine.
    const Permutation d{1, 3, 2, 0};
    ASSERT_FALSE(inFClass(d));

    CubeMachine cube(2);
    cube.loadIota(d);
    EXPECT_TRUE(bitonicPermuteCube(cube).success);

    ShuffleMachine psc(2);
    psc.loadIota(d);
    EXPECT_TRUE(bitonicPermuteShuffle(psc).success);

    MeshMachine mesh(2);
    mesh.loadIota(d);
    EXPECT_TRUE(bitonicPermuteMesh(mesh).success);
}

TEST(Bitonic, CubeCostIsQuadraticInLogN)
{
    // Bench E5's claim in miniature: the sort costs
    // Theta(log^2 N) interchanges vs 2 log N - 1 for the F
    // algorithm.
    CubeMachine m(10);
    Prng prng(73);
    m.loadIota(Permutation::random(1024, prng));
    const auto stats = bitonicPermuteCube(m);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(stats.interchanges, 55u); // 10 * 11 / 2
    EXPECT_GT(stats.interchanges, 2u * 10 - 1);
}

TEST(Bitonic, ShuffleRouteCountNearStoneBound)
{
    // Stone's perfect-shuffle bitonic sort runs in O(log^2 N)
    // routes; our rotation-tracking embedding must stay within a
    // small constant of n^2 + n(n+1)/2.
    for (unsigned n : {4u, 6u, 8u, 10u}) {
        ShuffleMachine m(n);
        Prng prng(n);
        m.loadIota(Permutation::random(std::size_t{1} << n, prng));
        const auto stats = bitonicPermuteShuffle(m);
        ASSERT_TRUE(stats.success);
        EXPECT_LE(stats.unit_routes, 3ull * n * n);
    }
}

TEST(Bitonic, SortIsStableUnderReload)
{
    // Running twice from the same load gives identical layouts
    // (pure determinism check).
    CubeMachine a(5), b(5);
    Prng prng(79);
    const auto d = Permutation::random(32, prng);
    a.loadIota(d);
    b.loadIota(d);
    bitonicPermuteCube(a);
    bitonicPermuteCube(b);
    for (Word i = 0; i < 32; ++i)
        EXPECT_EQ(a.pe(i).r, b.pe(i).r);
}

} // namespace
} // namespace srbenes
