#include "networks/network_iface.hh"

#include "networks/batcher.hh"
#include "networks/benes_adapter.hh"
#include "networks/crossbar.hh"
#include "networks/odd_even.hh"
#include "networks/omega_network.hh"

namespace srbenes
{

std::vector<std::unique_ptr<PermutationNetwork>>
allNetworks(unsigned n)
{
    std::vector<std::unique_ptr<PermutationNetwork>> nets;
    nets.push_back(std::make_unique<SelfRoutingBenesNet>(n));
    nets.push_back(std::make_unique<WaksmanBenesNet>(n));
    nets.push_back(std::make_unique<OmegaNetwork>(n));
    nets.push_back(std::make_unique<BatcherNetwork>(n));
    nets.push_back(std::make_unique<OddEvenMergeNetwork>(n));
    nets.push_back(std::make_unique<Crossbar>(n));
    return nets;
}

} // namespace srbenes
