#include "networks/network_iface.hh"

#include "networks/batcher.hh"
#include "networks/benes_adapter.hh"
#include "networks/crossbar.hh"
#include "networks/odd_even.hh"
#include "networks/omega_network.hh"

namespace srbenes
{

RouteOutcome
PermutationNetwork::routeOutcome(const Permutation &d) const
{
    if (!tryRoute(d)) {
        RouteError err;
        err.code = RouteErrc::NotInF;
        err.detail =
            name() + " cannot realize this permutation by itself";
        return RouteOutcome::failure(std::move(err));
    }
    // tryRoute() verified every input reached its tagged output, so
    // the canonical payload lands exactly where d sends it.
    std::vector<Word> out(d.size());
    for (Word i = 0; i < d.size(); ++i)
        out[d[i]] = i;
    return RouteOutcome::success(std::move(out));
}

std::vector<std::unique_ptr<PermutationNetwork>>
allNetworks(unsigned n)
{
    std::vector<std::unique_ptr<PermutationNetwork>> nets;
    nets.push_back(std::make_unique<SelfRoutingBenesNet>(n));
    nets.push_back(std::make_unique<WaksmanBenesNet>(n));
    nets.push_back(std::make_unique<OmegaNetwork>(n));
    nets.push_back(std::make_unique<BatcherNetwork>(n));
    nets.push_back(std::make_unique<OddEvenMergeNetwork>(n));
    nets.push_back(std::make_unique<Crossbar>(n));
    nets.push_back(std::make_unique<RouterNet>(n));
    nets.push_back(std::make_unique<ResilientNet>(n));
    return nets;
}

} // namespace srbenes
