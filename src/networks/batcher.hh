/**
 * @file
 * Batcher's bitonic sorting network used as a permutation network
 * (the paper's Section I comparison: self-routing, but O(log^2 N)
 * delay and O(N log^2 N) comparators).
 *
 * Routing is sorting: each comparator orders its two destination tags,
 * so ANY of the N! permutations is realized -- the richness/delay
 * trade-off against the Benes fabric measured in bench E1.
 */

#ifndef SRBENES_NETWORKS_BATCHER_HH
#define SRBENES_NETWORKS_BATCHER_HH

#include "networks/network_iface.hh"

namespace srbenes
{

class BatcherNetwork : public PermutationNetwork
{
  public:
    explicit BatcherNetwork(unsigned n);

    std::string name() const override { return "batcher"; }
    Word numLines() const override { return Word{1} << n_; }
    Word
    numSwitches() const override
    {
        return (numLines() / 2) * delayStages();
    }
    /** n(n+1)/2 comparator stages. */
    unsigned delayStages() const override { return n_ * (n_ + 1) / 2; }
    bool tryRoute(const Permutation &d) const override;

    unsigned n() const { return n_; }

    /**
     * Sort @p keys (and mirror every exchange on @p values) with the
     * bitonic network; exposed so the SIMD baselines can reuse the
     * comparator schedule.
     */
    static void sortPairs(std::vector<Word> &keys,
                          std::vector<Word> &values);

  private:
    unsigned n_;
};

} // namespace srbenes

#endif // SRBENES_NETWORKS_BATCHER_HH
