/**
 * @file
 * Lawrie's omega network, the self-routing baseline of Section I.
 *
 * The N = 2^n line omega network is n identical stages; each stage is
 * a perfect shuffle of the line positions followed by N/2 two-state
 * switches. A switch routes each of its inputs to the output port
 * selected by bit n-1-s of the input's destination tag (most
 * significant bit first); if both inputs request the same port the
 * permutation is not realizable (a conflict).
 *
 * Half the delay and half the switches of B(n), but a much smaller
 * permutation class: 2^(n N/2) members versus the paper's F(n).
 */

#ifndef SRBENES_NETWORKS_OMEGA_NETWORK_HH
#define SRBENES_NETWORKS_OMEGA_NETWORK_HH

#include <optional>

#include "networks/network_iface.hh"

namespace srbenes
{

/** Outcome of an omega-network routing attempt. */
struct OmegaRouteResult
{
    bool success = false;
    /** Stage of the first port conflict (set iff !success). */
    std::optional<unsigned> conflict_stage;
    /** Total conflicting switch pairs encountered. */
    unsigned conflicts = 0;
    /** Tag at each output terminal (valid iff success). */
    std::vector<Word> output_tags;
};

class OmegaNetwork : public PermutationNetwork
{
  public:
    explicit OmegaNetwork(unsigned n);

    std::string name() const override { return "omega"; }
    Word numLines() const override { return Word{1} << n_; }
    Word numSwitches() const override { return n_ * (numLines() / 2); }
    unsigned delayStages() const override { return n_; }
    bool tryRoute(const Permutation &d) const override;

    unsigned n() const { return n_; }

    /** Route with full diagnostics. */
    OmegaRouteResult route(const Permutation &d) const;

    /**
     * Route through the network backwards (output side in, input
     * side out): realizes exactly the inverse-omega permutations.
     */
    OmegaRouteResult routeInverse(const Permutation &d) const;

  private:
    unsigned n_;
};

} // namespace srbenes

#endif // SRBENES_NETWORKS_OMEGA_NETWORK_HH
