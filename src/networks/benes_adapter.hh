/**
 * @file
 * PermutationNetwork adapters over the Benes fabric of src/core, so
 * the comparison benches can treat all fabrics uniformly:
 *
 *  - SelfRoutingBenesNet: the paper's contribution (class F);
 *  - WaksmanBenesNet: the same fabric with self-setting disabled and
 *    states computed externally (all N! permutations, O(N log N)
 *    setup);
 *  - RouterNet: the planning facade (cheapest-strategy selection
 *    with plan caching — every permutation routes, 1-2 passes);
 *  - ResilientNet: the degraded-mode serving layer (RouterNet plus
 *    health probing and fault fallback).
 */

#ifndef SRBENES_NETWORKS_BENES_ADAPTER_HH
#define SRBENES_NETWORKS_BENES_ADAPTER_HH

#include <numeric>

#include "core/resilient.hh"
#include "core/router.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "networks/network_iface.hh"

namespace srbenes
{

class SelfRoutingBenesNet : public PermutationNetwork
{
  public:
    explicit SelfRoutingBenesNet(unsigned n) : net_(n) {}

    std::string name() const override { return "benes-self"; }
    Word numLines() const override { return net_.numLines(); }
    Word
    numSwitches() const override
    {
        return net_.topology().numSwitches();
    }
    unsigned
    delayStages() const override
    {
        return net_.topology().numStages();
    }
    bool
    tryRoute(const Permutation &d) const override
    {
        return net_.route(d).success;
    }

    const SelfRoutingBenes &fabric() const { return net_; }

  private:
    SelfRoutingBenes net_;
};

class WaksmanBenesNet : public PermutationNetwork
{
  public:
    explicit WaksmanBenesNet(unsigned n) : net_(n) {}

    std::string name() const override { return "benes-waksman"; }
    Word numLines() const override { return net_.numLines(); }
    Word
    numSwitches() const override
    {
        return net_.topology().numSwitches();
    }
    unsigned
    delayStages() const override
    {
        return net_.topology().numStages();
    }
    bool
    tryRoute(const Permutation &d) const override
    {
        const SwitchStates states = waksmanSetup(net_.topology(), d);
        return net_.routeWithStates(d, states).success;
    }

  private:
    SelfRoutingBenes net_;
};

/**
 * The planning facade as a comparison network: every permutation
 * routes (self-routing when D is in F, omega-bit, then the two-pass
 * or Waksman fallback), with plan caching across calls.
 */
class RouterNet : public PermutationNetwork
{
  public:
    explicit RouterNet(unsigned n) : router_(n) {}

    std::string name() const override { return "benes-router"; }
    Word numLines() const override
    {
        return router_.fabric().numLines();
    }
    Word
    numSwitches() const override
    {
        return router_.fabric().topology().numSwitches();
    }
    /** Worst case of the strategy menu: two self-routed passes. */
    unsigned
    delayStages() const override
    {
        return 2 * router_.fabric().topology().numStages();
    }
    bool
    tryRoute(const Permutation &d) const override
    {
        return routeOutcome(d).ok();
    }
    RouteOutcome
    routeOutcome(const Permutation &d) const override
    {
        std::vector<Word> data(d.size());
        std::iota(data.begin(), data.end(), Word{0});
        return router_.routeOutcome(d, data);
    }

    const Router &router() const { return router_; }

  private:
    Router router_;
};

/**
 * The degraded-mode serving layer as a comparison network: RouterNet
 * semantics plus health probing and the fault-fallback chain. On a
 * healthy fabric it behaves exactly like RouterNet.
 */
class ResilientNet : public PermutationNetwork
{
  public:
    explicit ResilientNet(unsigned n) : resilient_(n) {}

    std::string name() const override { return "benes-resilient"; }
    Word numLines() const override { return resilient_.numLines(); }
    Word
    numSwitches() const override
    {
        return resilient_.fabric().topology().numSwitches();
    }
    /** Worst case of the fallback chain: two self-routed passes. */
    unsigned
    delayStages() const override
    {
        return 2 * resilient_.fabric().topology().numStages();
    }
    bool
    tryRoute(const Permutation &d) const override
    {
        return routeOutcome(d).ok();
    }
    RouteOutcome
    routeOutcome(const Permutation &d) const override
    {
        std::vector<Word> data(d.size());
        std::iota(data.begin(), data.end(), Word{0});
        return resilient_.route(d, data);
    }

    ResilientRouter &resilient() { return resilient_; }

  private:
    ResilientRouter resilient_;
};

} // namespace srbenes

#endif // SRBENES_NETWORKS_BENES_ADAPTER_HH
