/**
 * @file
 * PermutationNetwork adapters over the Benes fabric of src/core, so
 * the comparison benches can treat all fabrics uniformly:
 *
 *  - SelfRoutingBenesNet: the paper's contribution (class F);
 *  - WaksmanBenesNet: the same fabric with self-setting disabled and
 *    states computed externally (all N! permutations, O(N log N)
 *    setup).
 */

#ifndef SRBENES_NETWORKS_BENES_ADAPTER_HH
#define SRBENES_NETWORKS_BENES_ADAPTER_HH

#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "networks/network_iface.hh"

namespace srbenes
{

class SelfRoutingBenesNet : public PermutationNetwork
{
  public:
    explicit SelfRoutingBenesNet(unsigned n) : net_(n) {}

    std::string name() const override { return "benes-self"; }
    Word numLines() const override { return net_.numLines(); }
    Word
    numSwitches() const override
    {
        return net_.topology().numSwitches();
    }
    unsigned
    delayStages() const override
    {
        return net_.topology().numStages();
    }
    bool
    tryRoute(const Permutation &d) const override
    {
        return net_.route(d).success;
    }

    const SelfRoutingBenes &fabric() const { return net_; }

  private:
    SelfRoutingBenes net_;
};

class WaksmanBenesNet : public PermutationNetwork
{
  public:
    explicit WaksmanBenesNet(unsigned n) : net_(n) {}

    std::string name() const override { return "benes-waksman"; }
    Word numLines() const override { return net_.numLines(); }
    Word
    numSwitches() const override
    {
        return net_.topology().numSwitches();
    }
    unsigned
    delayStages() const override
    {
        return net_.topology().numStages();
    }
    bool
    tryRoute(const Permutation &d) const override
    {
        const SwitchStates states = waksmanSetup(net_.topology(), d);
        return net_.routeWithStates(d, states).success;
    }

  private:
    SelfRoutingBenes net_;
};

} // namespace srbenes

#endif // SRBENES_NETWORKS_BENES_ADAPTER_HH
