/**
 * @file
 * A generalized connection network (GCN) built around the Benes
 * fabric -- the paper's opening application: "The network finds
 * application as a subnetwork of a generalized connection network".
 *
 * A GCN realizes arbitrary MAPPINGS, not just permutations: output
 * j receives the data of input src[j], and one input may feed many
 * outputs (broadcast). The classical sandwich construction is used:
 *
 *   1. concentrate: a Benes permutation delivers each requested
 *      input's data to the leader slot of its (sorted) request
 *      group;
 *   2. fan out: lg N segmented-copy stages replicate each leader's
 *      data across its contiguous group (step k copies across
 *      distance 2^k within equal-source runs);
 *   3. distribute: a second Benes permutation moves the filled
 *      requests to their output terminals.
 *
 * Total hardware: two B(n) fabrics plus n copy stages of N
 * two-input selectors -- O(N log N) switches and O(log N) delay,
 * against the O(N^2) crossbar. The permutation passes use Waksman
 * setup (the request pattern is arbitrary, so self-routing alone
 * cannot carry a GCN; see DESIGN.md).
 */

#ifndef SRBENES_NETWORKS_GCN_HH
#define SRBENES_NETWORKS_GCN_HH

#include "core/self_routing.hh"

namespace srbenes
{

/** Cost inventory of the GCN sandwich for one fabric size. */
struct GcnCosts
{
    Word binary_switches;  //!< two Benes fabrics
    Word copy_selectors;   //!< n stages of N two-input selectors
    unsigned delay_stages; //!< end-to-end stage count
};

class GcnNetwork
{
  public:
    explicit GcnNetwork(unsigned n);

    unsigned n() const { return benes_.n(); }
    Word numTerminals() const { return benes_.numLines(); }

    GcnCosts costs() const;

    /**
     * Realize the mapping: result[j] = data[src[j]] for every
     * output j. @p src entries must be < N; repeats (fanout) and
     * unused inputs are fine.
     */
    std::vector<Word> routeMapping(const std::vector<Word> &src,
                                   const std::vector<Word> &data) const;

  private:
    SelfRoutingBenes benes_;
};

} // namespace srbenes

#endif // SRBENES_NETWORKS_GCN_HH
