#include "networks/gcn.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "core/waksman.hh"

namespace srbenes
{

GcnNetwork::GcnNetwork(unsigned n)
    : benes_(n)
{
}

GcnCosts
GcnNetwork::costs() const
{
    const unsigned width = n();
    const Word size = numTerminals();
    return GcnCosts{
        2 * benes_.topology().numSwitches(),
        static_cast<Word>(width) * size,
        2 * benes_.topology().numStages() + width,
    };
}

std::vector<Word>
GcnNetwork::routeMapping(const std::vector<Word> &src,
                         const std::vector<Word> &data) const
{
    const Word size = numTerminals();
    if (src.size() != size || data.size() != size)
        fatal("GCN mapping/data size mismatch (N = %llu)",
              static_cast<unsigned long long>(size));
    for (Word s : src)
        if (s >= size)
            fatal("GCN request for input %llu out of range",
                  static_cast<unsigned long long>(s));

    // Sorted request order: group the output requests by source
    // (ties by output index keep the order canonical). `order[p]`
    // is the output index served by sorted slot p.
    std::vector<Word> order(size);
    std::iota(order.begin(), order.end(), Word{0});
    std::sort(order.begin(), order.end(), [&](Word a, Word b) {
        return src[a] != src[b] ? src[a] < src[b] : a < b;
    });

    // --- pass 1: concentrate leaders through the Benes fabric ----
    // Each requested input goes to the first sorted slot of its
    // group; unrequested inputs fill the remaining slots in order
    // (any completion works -- they carry dead data).
    std::vector<Word> to_slot(size, size);
    std::vector<bool> slot_used(size, false);
    for (Word p = 0; p < size; ++p) {
        const Word s = src[order[p]];
        if (to_slot[s] == size) { // leader slot of this group
            to_slot[s] = p;
            slot_used[p] = true;
        }
    }
    Word fill = 0;
    for (Word i = 0; i < size; ++i) {
        if (to_slot[i] != size)
            continue;
        while (slot_used[fill])
            ++fill;
        to_slot[i] = fill;
        slot_used[fill] = true;
    }
    const Permutation concentrate{std::vector<Word>(to_slot)};
    const auto states1 =
        waksmanSetup(benes_.topology(), concentrate);
    const auto pass1 =
        benes_.routeWithStates(concentrate, states1);
    if (!pass1.success)
        panic("GCN concentrate pass failed");
    std::vector<Word> lane(size);
    for (Word i = 0; i < size; ++i)
        lane[to_slot[i]] = data[i];

    // --- fan-out: lg N segmented-copy stages -----------------------
    // Stage k: slot p copies from slot p - 2^k when both belong to
    // the same source group and the source slot is already filled.
    // Leaders are filled; after stage k every slot within 2^(k+1)
    // of its leader is filled, so lg N stages fill all groups.
    std::vector<bool> filled(size);
    for (Word p = 0; p < size; ++p)
        filled[p] = (to_slot[src[order[p]]] == p); // group leaders

    for (unsigned k = 0; k < n(); ++k) {
        const Word dist = Word{1} << k;
        std::vector<Word> next_lane = lane;
        std::vector<bool> next_filled = filled;
        for (Word p = dist; p < size; ++p) {
            if (!filled[p] && filled[p - dist] &&
                src[order[p]] == src[order[p - dist]]) {
                next_lane[p] = lane[p - dist];
                next_filled[p] = true;
            }
        }
        lane.swap(next_lane);
        filled.swap(next_filled);
    }
    for (Word p = 0; p < size; ++p)
        if (!filled[p])
            panic("GCN fan-out left slot %llu empty",
                  static_cast<unsigned long long>(p));

    // --- pass 2: distribute to the output terminals ----------------
    std::vector<Word> to_output(size);
    for (Word p = 0; p < size; ++p)
        to_output[p] = order[p];
    const Permutation distribute{std::move(to_output)};
    const auto states2 =
        waksmanSetup(benes_.topology(), distribute);
    const auto pass2 =
        benes_.routeWithStates(distribute, states2);
    if (!pass2.success)
        panic("GCN distribute pass failed");

    std::vector<Word> out(size);
    for (Word p = 0; p < size; ++p)
        out[distribute[p]] = lane[p];
    return out;
}

} // namespace srbenes
