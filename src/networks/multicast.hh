/**
 * @file
 * A broadcast-capable Benes fabric: four-state switches.
 *
 * The GCN sandwich (networks/gcn) realizes every fanout mapping
 * with two Benes passes plus copy stages. A cheaper folk proposal
 * gives each switch two extra states -- broadcast-upper (the upper
 * input drives both outputs) and broadcast-lower -- and asks one
 * fabric to do the whole job. This module implements that fabric
 * and a backtracking setup, so the question "which multicasts fit
 * in ONE broadcast-Benes pass?" is answered by measurement
 * (bench_multicast): all of them at N = 4; a shrinking fraction as
 * N and fanout grow -- single-fabric broadcast Benes is NOT a full
 * GCN, which is exactly why Thompson-style GCNs spend a second
 * fabric.
 *
 * Setup feasibility at each recursion level is a pair-splitting
 * constraint: a subnetwork may consume at most one input of each
 * opening switch, while an output pair wanting two DIFFERENT values
 * must draw from both subnetworks. The backtracking explores the
 * per-output-pair subnetwork assignments with that pruning.
 */

#ifndef SRBENES_NETWORKS_MULTICAST_HH
#define SRBENES_NETWORKS_MULTICAST_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/topology.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** Four switch states of the broadcast fabric. */
enum class McState : std::uint8_t
{
    Through,    //!< upper->upper, lower->lower
    Cross,      //!< upper->lower, lower->upper
    BcastUpper, //!< upper input drives both outputs
    BcastLower, //!< lower input drives both outputs
};

using McStates = std::vector<std::vector<McState>>;

class MulticastBenes
{
  public:
    explicit MulticastBenes(unsigned n);

    const BenesTopology &topology() const { return topo_; }
    Word numLines() const { return topo_.numLines(); }

    /**
     * Drive the fabric with the given 4-state settings; returns the
     * input index arriving at each output terminal.
     */
    std::vector<Word> routeWithStates(const McStates &states) const;

    /**
     * Find settings delivering input src[j] to output j for every
     * j (fanout allowed). Backtracking; std::nullopt iff no
     * single-pass realization exists.
     */
    std::optional<McStates>
    setupMapping(const std::vector<Word> &src) const;

  private:
    BenesTopology topo_;
};

} // namespace srbenes

#endif // SRBENES_NETWORKS_MULTICAST_HH
