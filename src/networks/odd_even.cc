#include "networks/odd_even.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srbenes
{

OddEvenMergeNetwork::OddEvenMergeNetwork(unsigned n)
    : n_(n)
{
    if (n < 1 || n > 24)
        fatal("odd-even merge network size n = %u out of supported "
              "range", n);
    line_depth_.assign(numLines(), 0);
    buildSort(0, numLines());
    line_depth_.clear();
    line_depth_.shrink_to_fit();
}

void
OddEvenMergeNetwork::addComparator(Word a, Word b)
{
    comparators_.push_back(Comparator{a, b});
    const unsigned d =
        std::max(line_depth_[a], line_depth_[b]) + 1;
    line_depth_[a] = d;
    line_depth_[b] = d;
    depth_ = std::max(depth_, d);
}

void
OddEvenMergeNetwork::buildSort(Word lo, Word count)
{
    if (count <= 1)
        return;
    const Word half = count / 2;
    buildSort(lo, half);
    buildSort(lo + half, half);
    buildMerge(lo, count, 1);
}

void
OddEvenMergeNetwork::buildMerge(Word lo, Word count, Word stride)
{
    // Batcher's odd-even merge of two sorted halves interleaved at
    // @p stride within [lo, lo + count).
    const Word next = stride * 2;
    if (next < count) {
        buildMerge(lo, count, next);          // even subsequence
        buildMerge(lo + stride, count, next); // odd subsequence
        for (Word i = lo + stride; i + stride < lo + count;
             i += next)
            addComparator(i, i + stride);
    } else {
        addComparator(lo, lo + stride);
    }
}

bool
OddEvenMergeNetwork::tryRoute(const Permutation &d) const
{
    std::vector<Word> tags(d.dest());
    for (const auto &c : comparators_)
        if (tags[c.low] > tags[c.high])
            std::swap(tags[c.low], tags[c.high]);
    for (Word j = 0; j < tags.size(); ++j)
        if (tags[j] != j)
            panic("odd-even merge sort failed to deliver tag %llu",
                  static_cast<unsigned long long>(j));
    return true;
}

} // namespace srbenes
