#include "networks/crossbar.hh"

#include "common/logging.hh"

namespace srbenes
{

Crossbar::Crossbar(unsigned n)
    : n_(n)
{
    if (n < 1 || n > 30)
        fatal("crossbar size n = %u out of supported range", n);
}

bool
Crossbar::tryRoute(const Permutation &d) const
{
    if (d.size() != numLines())
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(numLines()));
    // Close crosspoint (i, d[i]) for every i; a valid permutation
    // never contends for an output, so every route succeeds.
    return true;
}

} // namespace srbenes
