/**
 * @file
 * Common interface over the permutation fabrics the paper compares
 * (Section I): the self-routing Benes network, Lawrie's omega
 * network, Batcher's bitonic sorting network, and a full crossbar.
 * Each exposes its hardware cost (binary-switch count), its
 * transmission delay in switch stages, and a self-routing attempt.
 */

#ifndef SRBENES_NETWORKS_NETWORK_IFACE_HH
#define SRBENES_NETWORKS_NETWORK_IFACE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/route_outcome.hh"
#include "perm/permutation.hh"

namespace srbenes
{

class PermutationNetwork
{
  public:
    virtual ~PermutationNetwork() = default;

    virtual std::string name() const = 0;
    /** Number of input/output terminals. */
    virtual Word numLines() const = 0;
    /** Hardware cost in binary switches (crosspoints for the
     *  crossbar, comparators for Batcher). */
    virtual Word numSwitches() const = 0;
    /** Transmission delay in switch stages. */
    virtual unsigned delayStages() const = 0;
    /**
     * Attempt to realize @p d with the fabric's own (self-)routing;
     * true iff every input reached its tagged output.
     */
    virtual bool tryRoute(const Permutation &d) const = 0;
    /**
     * Route the canonical payload (input i carries word i) along
     * @p d, answering in the unified taxonomy of
     * core/route_outcome.hh. The default adapts tryRoute(): the
     * routed payload on success, not_in_F when the fabric's own
     * routing cannot realize @p d. Service-grade fabrics (the
     * Router- and ResilientRouter-backed adapters) override it with
     * their full fallback semantics.
     */
    virtual RouteOutcome routeOutcome(const Permutation &d) const;
};

/** All comparison fabrics for N = 2^n lines, in presentation order. */
std::vector<std::unique_ptr<PermutationNetwork>>
allNetworks(unsigned n);

} // namespace srbenes

#endif // SRBENES_NETWORKS_NETWORK_IFACE_HH
