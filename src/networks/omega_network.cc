#include "networks/omega_network.hh"

#include "common/logging.hh"

namespace srbenes
{

OmegaNetwork::OmegaNetwork(unsigned n)
    : n_(n)
{
    if (n < 1 || n > 30)
        fatal("omega network size n = %u out of supported range", n);
}

OmegaRouteResult
OmegaNetwork::route(const Permutation &d) const
{
    const Word size = numLines();
    if (d.size() != size)
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(size));

    OmegaRouteResult res;
    std::vector<Word> cur(d.dest());
    std::vector<Word> next(size);

    for (unsigned s = 0; s < n_; ++s) {
        // Perfect shuffle of the line positions.
        for (Word line = 0; line < size; ++line)
            next[shuffle(line, n_)] = cur[line];

        // Each input selects the output port matching bit n-1-s of
        // its tag; equal requests are a conflict.
        const unsigned b = n_ - 1 - s;
        for (Word i = 0; i < size / 2; ++i) {
            const Word pa = bit(next[2 * i], b);
            const Word pb = bit(next[2 * i + 1], b);
            if (pa == pb) {
                ++res.conflicts;
                if (!res.conflict_stage)
                    res.conflict_stage = s;
                // Leave the pair as is; the route is already lost.
            } else if (pa == 1) {
                std::swap(next[2 * i], next[2 * i + 1]);
            }
        }
        cur.swap(next);
    }

    res.success = (res.conflicts == 0);
    if (res.success) {
        for (Word j = 0; j < size; ++j) {
            if (cur[j] != j)
                panic("conflict-free omega route misdelivered tag "
                      "%llu to output %llu",
                      static_cast<unsigned long long>(cur[j]),
                      static_cast<unsigned long long>(j));
        }
        res.output_tags = std::move(cur);
    }
    return res;
}

OmegaRouteResult
OmegaNetwork::routeInverse(const Permutation &d) const
{
    // Running the fabric backwards realizes D exactly when the
    // forward fabric realizes D^-1: reversing every switch setting
    // and traversing the stages right to left inverts the realized
    // mapping.
    OmegaRouteResult res = route(d.inverse());
    if (res.success) {
        // In the backward direction every tag still arrives at its
        // own terminal.
        for (Word j = 0; j < numLines(); ++j)
            res.output_tags[j] = j;
    }
    return res;
}

bool
OmegaNetwork::tryRoute(const Permutation &d) const
{
    return route(d).success;
}

} // namespace srbenes
