/**
 * @file
 * Batcher's odd-even merge sorting network -- the second network of
 * the paper's reference [11], and the cheaper of the two Batcher
 * constructions: same n(n+1)/2 stage delay as bitonic but about 25%
 * fewer comparators for large N (N/4 (lg^2 N - lg N + 4) - 1
 * exactly).
 *
 * Like the bitonic fabric it is self-routing for ALL permutations
 * (routing = sorting the destination tags); it joins the E1 cost
 * comparison as the best sorting-based rival to the Benes fabric.
 */

#ifndef SRBENES_NETWORKS_ODD_EVEN_HH
#define SRBENES_NETWORKS_ODD_EVEN_HH

#include "networks/network_iface.hh"

namespace srbenes
{

/** One comparator: orders lines (low, high) ascending. */
struct Comparator
{
    Word low;
    Word high;
};

class OddEvenMergeNetwork : public PermutationNetwork
{
  public:
    explicit OddEvenMergeNetwork(unsigned n);

    std::string name() const override { return "odd-even-merge"; }
    Word numLines() const override { return Word{1} << n_; }
    Word numSwitches() const override { return comparators_.size(); }
    unsigned delayStages() const override { return depth_; }
    bool tryRoute(const Permutation &d) const override;

    unsigned n() const { return n_; }

    /** The comparator list in evaluation order. */
    const std::vector<Comparator> &comparators() const
    {
        return comparators_;
    }

  private:
    void buildSort(Word lo, Word count);
    void buildMerge(Word lo, Word count, Word stride);
    void addComparator(Word a, Word b);

    unsigned n_;
    std::vector<Comparator> comparators_;
    /** Per-line depth while building; max = network depth. */
    std::vector<unsigned> line_depth_;
    unsigned depth_ = 0;
};

} // namespace srbenes

#endif // SRBENES_NETWORKS_ODD_EVEN_HH
