#include "networks/multicast.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

constexpr Word kNone = ~Word{0};

/** One level of the backtracking setup. */
class LevelSolver
{
  public:
    LevelSolver(const BenesTopology &topo, McStates &states,
                unsigned m, Word base_line, unsigned base_stage,
                const std::vector<Word> &requests)
        : topo_(topo), states_(states), m_(m),
          base_line_(base_line), base_stage_(base_stage),
          requests_(requests), half_(Word{1} << (m - 1)),
          need_u_(half_ / 2 ? half_ / 2 : 1, kNone),
          need_l_(half_ / 2 ? half_ / 2 : 1, kNone),
          uval_(half_, kNone), lval_(half_, kNone)
    {
        need_u_.assign(half_, kNone);
        need_l_.assign(half_, kNone);
    }

    bool
    solve()
    {
        if (m_ == 1)
            return solveSwitch();
        return choosePair(0);
    }

  private:
    bool solveSwitch();
    bool choosePair(Word j);
    bool finish();

    const BenesTopology &topo_;
    McStates &states_;
    unsigned m_;
    Word base_line_;
    unsigned base_stage_;
    const std::vector<Word> &requests_;
    Word half_;
    /** need_x_[i]: the (single) value subnet x must receive from
     *  opening switch i; kNone if unconstrained so far. */
    std::vector<Word> need_u_, need_l_;
    /** Chosen per-closing-pair values each subnet must present. */
    std::vector<Word> uval_, lval_;
};

bool
LevelSolver::solveSwitch()
{
    const Word a = requests_[0], b = requests_[1];
    const Word sw = base_line_ / 2;
    auto ok0 = [&](Word r) { return r == kNone || r == 0; };
    auto ok1 = [&](Word r) { return r == kNone || r == 1; };

    McState state;
    if (ok0(a) && ok1(b))
        state = McState::Through;
    else if (ok1(a) && ok0(b))
        state = McState::Cross;
    else if (ok0(a) && ok0(b))
        state = McState::BcastUpper;
    else if (ok1(a) && ok1(b))
        state = McState::BcastLower;
    else
        return false; // unreachable for well-formed requests
    states_[base_stage_][sw] = state;
    return true;
}

bool
LevelSolver::choosePair(Word j)
{
    if (j == half_)
        return finish();

    const Word a = requests_[2 * j], b = requests_[2 * j + 1];

    // Try a closing-switch state; on success recurse to the next
    // pair, undoing the need[] bookkeeping on backtrack.
    auto attempt = [&](McState state, Word uv, Word lv) -> bool {
        Word saved_u = kNone, saved_l = kNone;
        Word ui = kNone, li = kNone;
        if (uv != kNone) {
            ui = uv >> 1;
            saved_u = need_u_[ui];
            if (saved_u != kNone && saved_u != uv)
                return false;
            need_u_[ui] = uv;
        }
        if (lv != kNone) {
            li = lv >> 1;
            saved_l = need_l_[li];
            if (saved_l != kNone && saved_l != lv) {
                if (ui != kNone)
                    need_u_[ui] = saved_u;
                return false;
            }
            need_l_[li] = lv;
        }
        uval_[j] = uv;
        lval_[j] = lv;
        states_[base_stage_ + 2 * m_ - 2][base_line_ / 2 + j] = state;
        if (choosePair(j + 1))
            return true;
        if (ui != kNone)
            need_u_[ui] = saved_u;
        if (li != kNone)
            need_l_[li] = saved_l;
        return false;
    };

    // Orders chosen so permutation-like cases resolve first.
    if (attempt(McState::Through, a, b))
        return true;
    if (attempt(McState::Cross, b, a))
        return true;
    const bool compat = a == kNone || b == kNone || a == b;
    if (compat) {
        const Word v = a != kNone ? a : b;
        if (v != kNone) {
            if (attempt(McState::BcastUpper, v, kNone))
                return true;
            if (attempt(McState::BcastLower, kNone, v))
                return true;
        }
    }
    return false;
}

bool
LevelSolver::finish()
{
    // Opening-stage states from the need[] assignments.
    for (Word i = 0; i < half_; ++i) {
        const Word u = need_u_[i], l = need_l_[i];
        McState state;
        if (u == 2 * i && l == 2 * i)
            state = McState::BcastUpper;
        else if (u == 2 * i + 1 && l == 2 * i + 1)
            state = McState::BcastLower;
        else if ((u == kNone || u == 2 * i) &&
                 (l == kNone || l == 2 * i + 1))
            state = McState::Through;
        else
            state = McState::Cross;
        states_[base_stage_][base_line_ / 2 + i] = state;
    }

    // Sub-requests: the sub-input index carrying each needed value.
    std::vector<Word> sub_u(half_), sub_l(half_);
    for (Word j = 0; j < half_; ++j) {
        sub_u[j] = uval_[j] == kNone ? kNone : uval_[j] >> 1;
        sub_l[j] = lval_[j] == kNone ? kNone : lval_[j] >> 1;
    }
    LevelSolver upper(topo_, states_, m_ - 1, base_line_,
                      base_stage_ + 1, sub_u);
    if (!upper.solve())
        return false;
    LevelSolver lower(topo_, states_, m_ - 1, base_line_ + half_,
                      base_stage_ + 1, sub_l);
    return lower.solve();
}

} // namespace

MulticastBenes::MulticastBenes(unsigned n)
    : topo_(n)
{
}

std::vector<Word>
MulticastBenes::routeWithStates(const McStates &states) const
{
    if (states.size() != topo_.numStages())
        fatal("state array has %zu stages, network has %u",
              states.size(), topo_.numStages());
    const Word size = topo_.numLines();

    std::vector<Word> cur(size), next(size);
    for (Word i = 0; i < size; ++i)
        cur[i] = i; // each line carries its source input index

    for (unsigned s = 0; s < topo_.numStages(); ++s) {
        for (Word i = 0; i < topo_.switchesPerStage(); ++i) {
            const Word up = cur[2 * i], lo = cur[2 * i + 1];
            switch (states[s][i]) {
              case McState::Through:
                break;
              case McState::Cross:
                cur[2 * i] = lo;
                cur[2 * i + 1] = up;
                break;
              case McState::BcastUpper:
                cur[2 * i + 1] = up;
                break;
              case McState::BcastLower:
                cur[2 * i] = lo;
                break;
            }
        }
        if (s + 1 < topo_.numStages()) {
            for (Word line = 0; line < size; ++line)
                next[topo_.wireToNext(s, line)] = cur[line];
            cur.swap(next);
        }
    }
    return cur;
}

std::optional<McStates>
MulticastBenes::setupMapping(const std::vector<Word> &src) const
{
    const Word size = topo_.numLines();
    if (src.size() != size)
        fatal("mapping size %zu != N = %llu", src.size(),
              static_cast<unsigned long long>(size));
    for (Word s : src)
        if (s >= size)
            fatal("multicast request for input %llu out of range",
                  static_cast<unsigned long long>(s));

    McStates states(topo_.numStages(),
                    std::vector<McState>(topo_.switchesPerStage(),
                                         McState::Through));
    LevelSolver solver(topo_, states, topo_.n(), 0, 0, src);
    if (!solver.solve())
        return std::nullopt;

    // The solver is conservative-complete within its choice space;
    // verify the realization before handing it out.
    const auto delivered = routeWithStates(states);
    for (Word j = 0; j < size; ++j)
        if (delivered[j] != src[j])
            panic("multicast setup verified false at output %llu",
                  static_cast<unsigned long long>(j));
    return states;
}

} // namespace srbenes
