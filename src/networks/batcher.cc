#include "networks/batcher.hh"

#include "common/logging.hh"

namespace srbenes
{

BatcherNetwork::BatcherNetwork(unsigned n)
    : n_(n)
{
    if (n < 1 || n > 30)
        fatal("Batcher network size n = %u out of supported range", n);
}

void
BatcherNetwork::sortPairs(std::vector<Word> &keys,
                          std::vector<Word> &values)
{
    const std::size_t size = keys.size();
    if (values.size() != size)
        panic("key/value size mismatch in bitonic sort");

    // Standard iterative bitonic sorting network: merge size k
    // doubles outward, comparator span j halves inward; each (k, j)
    // pair is one stage of N/2 parallel comparators.
    for (std::size_t k = 2; k <= size; k <<= 1) {
        for (std::size_t j = k >> 1; j > 0; j >>= 1) {
            for (std::size_t i = 0; i < size; ++i) {
                const std::size_t l = i ^ j;
                if (l <= i)
                    continue;
                const bool ascending = (i & k) == 0;
                if ((keys[i] > keys[l]) == ascending) {
                    std::swap(keys[i], keys[l]);
                    std::swap(values[i], values[l]);
                }
            }
        }
    }
}

bool
BatcherNetwork::tryRoute(const Permutation &d) const
{
    std::vector<Word> keys(d.dest());
    std::vector<Word> origins(keys.size());
    for (std::size_t i = 0; i < origins.size(); ++i)
        origins[i] = static_cast<Word>(i);

    sortPairs(keys, origins);

    // Sorting the tags delivers tag j to output j; verify the
    // invariant rather than assume it.
    for (std::size_t j = 0; j < keys.size(); ++j)
        if (keys[j] != j)
            panic("bitonic sort failed to deliver tag %zu", j);
    return true;
}

} // namespace srbenes
