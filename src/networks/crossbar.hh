/**
 * @file
 * Full N x N crossbar: the trivial-to-set-up endpoint of the paper's
 * Section I comparison. One crosspoint per (input, output) pair, unit
 * delay, all N! permutations -- at O(N^2) hardware cost.
 */

#ifndef SRBENES_NETWORKS_CROSSBAR_HH
#define SRBENES_NETWORKS_CROSSBAR_HH

#include "networks/network_iface.hh"

namespace srbenes
{

class Crossbar : public PermutationNetwork
{
  public:
    explicit Crossbar(unsigned n);

    std::string name() const override { return "crossbar"; }
    Word numLines() const override { return Word{1} << n_; }
    Word
    numSwitches() const override
    {
        return numLines() * numLines();
    }
    unsigned delayStages() const override { return 1; }
    bool tryRoute(const Permutation &d) const override;

  private:
    unsigned n_;
};

} // namespace srbenes

#endif // SRBENES_NETWORKS_CROSSBAR_HH
