/**
 * @file
 * Perfect Shuffle Computer (PSC): N = 2^n PEs, PE(i) connected to
 * PE(i^(0)) (exchange), PE(sigma(i)) (shuffle) and PE(sigma^-1(i))
 * (unshuffle), Section I model 4. Every primitive is one unit route.
 */

#ifndef SRBENES_SIMD_PSC_HH
#define SRBENES_SIMD_PSC_HH

#include <functional>

#include "simd/machine.hh"

namespace srbenes
{

class ShuffleMachine : public SimdMachine
{
  public:
    explicit ShuffleMachine(unsigned n);

    unsigned n() const { return n_; }

    /**
     * EXCHANGE: for every PE pair (2i, 2i+1), swap records iff
     * @p enabled (2i) is true (mask evaluated on the even PE against
     * the pre-step state). One unit route.
     */
    void exchange(const std::function<bool(Word i)> &enabled);

    /**
     * Compare-exchange for the sorting baseline: every pair
     * (2i, 2i+1) orders its records by destination tag, smaller tag
     * on the even PE iff @p ascending (2i). One unit route.
     */
    void
    compareExchange(const std::function<bool(Word i)> &ascending);

    /** SHUFFLE: record of PE(i) moves to PE(sigma(i)). One unit
     *  route. */
    void shuffleStep();

    /** UNSHUFFLE: record of PE(i) moves to PE(sigma^-1(i)). One unit
     *  route. */
    void unshuffleStep();

  private:
    unsigned n_;
};

} // namespace srbenes

#endif // SRBENES_SIMD_PSC_HH
