#include "simd/cic.hh"

#include "common/logging.hh"

namespace srbenes
{

CicMachine::CicMachine(std::size_t num_pes)
    : num_pes_(num_pes)
{
    if (num_pes == 0)
        fatal("CIC needs at least one PE");
}

void
CicMachine::route(const Permutation &dest, std::vector<Word> &v)
{
    if (dest.size() != num_pes_ || v.size() != num_pes_)
        fatal("CIC route size mismatch");
    std::vector<Word> next(num_pes_);
    for (std::size_t i = 0; i < num_pes_; ++i)
        next[dest[i]] = v[i];
    v.swap(next);
    ++unit_routes_;
}

void
CicMachine::scatter(const std::vector<Word> &dest,
                    const std::vector<bool> &enabled,
                    std::vector<Word> &v)
{
    if (dest.size() != num_pes_ || enabled.size() != num_pes_ ||
        v.size() != num_pes_)
        fatal("CIC scatter size mismatch");
    std::vector<Word> next(v);
    std::vector<bool> hit(num_pes_, false);
    for (std::size_t i = 0; i < num_pes_; ++i) {
        if (!enabled[i])
            continue;
        if (dest[i] >= num_pes_)
            fatal("CIC scatter destination out of range");
        if (hit[dest[i]])
            fatal("CIC scatter destination collision at %llu",
                  static_cast<unsigned long long>(dest[i]));
        hit[dest[i]] = true;
        next[dest[i]] = v[i];
    }
    v.swap(next);
    ++unit_routes_;
}

void
CicMachine::gather(const std::vector<Word> &from, std::vector<Word> &v)
{
    if (from.size() != num_pes_ || v.size() != num_pes_)
        fatal("CIC gather size mismatch");
    std::vector<Word> next(num_pes_);
    for (std::size_t i = 0; i < num_pes_; ++i) {
        if (from[i] >= num_pes_)
            fatal("CIC gather source out of range");
        next[i] = v[from[i]];
    }
    v.swap(next);
    ++unit_routes_;
}

} // namespace srbenes
