/**
 * @file
 * The Section III permutation algorithms: simulate the self-routing
 * Benes network on a CCC, PSC or MCC with NO preprocessing.
 *
 * The core loop visits cube dimensions b = 0, 1, ..., n-2, n-1,
 * n-2, ..., 0 (one per Benes stage) and, at each, interchanges the
 * records of PE pairs (i, i^(b)) with (i)_b = 0 and (D(i))_b = 1 --
 * exactly the Fig. 3 switch rule. A permutation succeeds iff it is
 * in F(n).
 *
 * Class hints shorten the schedule:
 *  - Omega:        skip the first n-1 iterations (switches forced
 *                  straight in the fabric);
 *  - InverseOmega: skip the last n-1 iterations;
 *  - a BPC A-vector with A_j = +j: skip both visits of dimension j.
 */

#ifndef SRBENES_SIMD_PERMUTE_HH
#define SRBENES_SIMD_PERMUTE_HH

#include <cstdint>
#include <vector>

#include "perm/bpc.hh"
#include "simd/ccc.hh"
#include "simd/mcc.hh"
#include "simd/psc.hh"

namespace srbenes
{

/** Which class shortcut to apply to the Section III loop. */
enum class PermClassHint
{
    General,      //!< any F(n) permutation; full 2n-1 schedule
    Omega,        //!< Omega(n) permutation (with the omega bit)
    InverseOmega, //!< InverseOmega(n) permutation
};

/** Outcome of a SIMD permutation run. */
struct SimdPermuteStats
{
    bool success = false;           //!< D(i) = i everywhere at the end
    std::uint64_t unit_routes = 0;  //!< total unit routes consumed
    std::uint64_t interchanges = 0; //!< interchange steps performed
};

/**
 * The dimension schedule 0..n-2, n-1, n-2..0, shortened by @p hint
 * and by +j fixed axes of @p bpc (may be null).
 */
std::vector<unsigned>
benesSchedule(unsigned n, PermClassHint hint = PermClassHint::General,
              const BpcSpec *bpc = nullptr);

/** CCC algorithm: one interchange step per schedule entry. */
SimdPermuteStats
cccPermute(CubeMachine &m, PermClassHint hint = PermClassHint::General,
           const BpcSpec *bpc = nullptr);

/**
 * PSC algorithm: exchange/unshuffle first sweep, middle exchange,
 * shuffle/exchange return sweep; 4 lg N - 3 unit routes for the
 * general case.
 */
SimdPermuteStats
pscPermute(ShuffleMachine &m,
           PermClassHint hint = PermClassHint::General,
           const BpcSpec *bpc = nullptr);

/**
 * MCC algorithm: the CCC schedule with mesh interchange costs;
 * 7 N^1/2 - 8 unit routes for the general case.
 */
SimdPermuteStats
mccPermute(MeshMachine &m, PermClassHint hint = PermClassHint::General,
           const BpcSpec *bpc = nullptr);

} // namespace srbenes

#endif // SRBENES_SIMD_PERMUTE_HH
