#include "simd/psc.hh"

#include "common/logging.hh"

namespace srbenes
{

ShuffleMachine::ShuffleMachine(unsigned n)
    : SimdMachine(std::size_t{1} << n), n_(n)
{
    if (n < 1 || n > 30)
        fatal("shuffle machine size n = %u out of supported range", n);
}

void
ShuffleMachine::exchange(const std::function<bool(Word i)> &enabled)
{
    std::vector<Word> selected;
    for (Word i = 0; i < numPes(); i += 2)
        if (enabled(i))
            selected.push_back(i);
    for (Word i : selected)
        std::swap(pes_[i], pes_[i + 1]);
    countUnitRoutes(1);
}

void
ShuffleMachine::compareExchange(
    const std::function<bool(Word i)> &ascending)
{
    for (Word i = 0; i < numPes(); i += 2)
        if ((pes_[i].d > pes_[i + 1].d) == ascending(i))
            std::swap(pes_[i], pes_[i + 1]);
    countUnitRoutes(1);
}

void
ShuffleMachine::shuffleStep()
{
    std::vector<PeRecord> next(pes_.size());
    for (Word i = 0; i < numPes(); ++i)
        next[shuffle(i, n_)] = pes_[i];
    pes_.swap(next);
    countUnitRoutes(1);
}

void
ShuffleMachine::unshuffleStep()
{
    std::vector<PeRecord> next(pes_.size());
    for (Word i = 0; i < numPes(); ++i)
        next[unshuffle(i, n_)] = pes_[i];
    pes_.swap(next);
    countUnitRoutes(1);
}

} // namespace srbenes
