/**
 * @file
 * Base class for the SIMD machine models of Section III.
 *
 * Each PE i holds a record <R(i), D(i)>: payload R and destination
 * tag D. A permutation algorithm moves records between directly
 * connected PEs until D(i) = i everywhere. The machines differ only
 * in their interconnection (cube, perfect shuffle, mesh); this base
 * class provides the PE array, record loading, and the unit-route
 * accounting that experiment E5 reports.
 *
 * A "unit route" is one synchronous register transfer between
 * directly connected PEs across the whole machine (the paper's cost
 * unit); an "interchange" (bidirectional swap across one connection)
 * costs one or two unit routes depending on whether <R, D> fits the
 * routing register -- both accountings are supported via
 * routes_per_interchange.
 */

#ifndef SRBENES_SIMD_MACHINE_HH
#define SRBENES_SIMD_MACHINE_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** One PE's registers. */
struct PeRecord
{
    Word r = 0; //!< payload
    Word d = 0; //!< destination tag
};

class SimdMachine
{
  public:
    explicit SimdMachine(std::size_t num_pes,
                         unsigned routes_per_interchange = 1);
    virtual ~SimdMachine() = default;

    std::size_t numPes() const { return pes_.size(); }

    /** Load R(i) = data[i], D(i) = d[i]. */
    void load(const Permutation &d, const std::vector<Word> &data);

    /** Load with R(i) = i (payload equals origin). */
    void loadIota(const Permutation &d);

    const PeRecord &pe(std::size_t i) const { return pes_[i]; }

    /** Current payloads in PE order. */
    std::vector<Word> payloads() const;

    /** True iff every record has reached its destination PE. */
    bool permutationComplete() const;

    std::uint64_t unitRoutes() const { return unit_routes_; }
    std::uint64_t interchangeSteps() const { return interchanges_; }
    void
    resetCounters()
    {
        unit_routes_ = 0;
        interchanges_ = 0;
    }

    unsigned
    routesPerInterchange() const
    {
        return routes_per_interchange_;
    }

  protected:
    /** Account one machine-wide interchange step. */
    void
    countInterchange()
    {
        ++interchanges_;
        unit_routes_ += routes_per_interchange_;
    }

    /** Account @p k raw unit routes (mesh distance steps, shuffles). */
    void countUnitRoutes(std::uint64_t k) { unit_routes_ += k; }

    std::vector<PeRecord> pes_;

  private:
    unsigned routes_per_interchange_;
    std::uint64_t unit_routes_ = 0;
    std::uint64_t interchanges_ = 0;
};

} // namespace srbenes

#endif // SRBENES_SIMD_MACHINE_HH
