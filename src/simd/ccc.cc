#include "simd/ccc.hh"

#include "common/logging.hh"

namespace srbenes
{

CubeMachine::CubeMachine(unsigned n, unsigned routes_per_interchange)
    : SimdMachine(std::size_t{1} << n, routes_per_interchange), n_(n)
{
    if (n < 1 || n > 30)
        fatal("cube dimension n = %u out of supported range", n);
}

void
CubeMachine::interchange(unsigned b,
                         const std::function<bool(Word i)> &enabled)
{
    if (b >= n_)
        fatal("cube dimension %u out of range for n = %u", b, n_);

    // Lock-step: decide every pair from the pre-step state, then
    // swap. Evaluating the mask before any movement keeps this
    // faithful even if the predicate reads neighboring PEs.
    std::vector<Word> selected;
    for (Word i = 0; i < numPes(); ++i)
        if (bit(i, b) == 0 && enabled(i))
            selected.push_back(i);
    for (Word i : selected)
        std::swap(pes_[i], pes_[flipBit(i, b)]);
    countInterchange();
}

void
CubeMachine::compareExchange(
    unsigned b, const std::function<bool(Word i)> &ascending)
{
    if (b >= n_)
        fatal("cube dimension %u out of range for n = %u", b, n_);

    for (Word i = 0; i < numPes(); ++i) {
        if (bit(i, b) != 0)
            continue;
        const Word j = flipBit(i, b);
        if ((pes_[i].d > pes_[j].d) == ascending(i))
            std::swap(pes_[i], pes_[j]);
    }
    countInterchange();
}

} // namespace srbenes
