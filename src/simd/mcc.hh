/**
 * @file
 * Mesh Connected Computer (MCC): N = 2^n PEs arranged as an
 * N^1/2 x N^1/2 array in row-major order, nearest-neighbor connected
 * without wraparound (Section I, model 2). Requires even n.
 *
 * The Section III algorithm interchanges records of PEs whose
 * row-major indices differ in one bit b; such PEs are 2^b columns
 * apart when b < n/2 and 2^(b - n/2) rows apart otherwise. An
 * interchange across distance 2^k costs 2^(k+1) unit routes (2^k in
 * each direction) -- accounted exactly that way here.
 */

#ifndef SRBENES_SIMD_MCC_HH
#define SRBENES_SIMD_MCC_HH

#include <functional>

#include "simd/machine.hh"

namespace srbenes
{

class MeshMachine : public SimdMachine
{
  public:
    /** @param n index width; the mesh is 2^(n/2) x 2^(n/2). */
    explicit MeshMachine(unsigned n);

    unsigned n() const { return n_; }
    Word side() const { return Word{1} << (n_ / 2); }

    /**
     * Mesh distance 2^k of a dimension-b interchange, in unit
     * routes per direction: k = b for column moves (b < n/2), else
     * b - n/2 for row moves.
     */
    unsigned
    interchangeDistance(unsigned b) const
    {
        return 1u << (b < n_ / 2 ? b : b - n_ / 2);
    }

    /**
     * Interchange across index bit @p b: for every PE pair
     * (i, i^(b)) with (i)_b = 0, swap records iff @p enabled (i).
     * Costs 2 * interchangeDistance(b) unit routes.
     */
    void interchange(unsigned b,
                     const std::function<bool(Word i)> &enabled);

    /** Compare-exchange across bit @p b for the sorting baseline;
     *  same route cost as interchange. */
    void compareExchange(unsigned b,
                         const std::function<bool(Word i)> &ascending);

    /**
     * The same interchange performed LITERALLY: records hop through
     * the 2^k - 1 intermediate PEs one neighbor link per step, both
     * directions concurrently, using transit registers. Exists to
     * validate the cost model: the result equals interchange() and
     * the unit-route count is the same 2^(k+1).
     */
    void interchangeStepwise(unsigned b,
                             const std::function<bool(Word i)> &enabled);

  private:
    unsigned n_;
};

} // namespace srbenes

#endif // SRBENES_SIMD_MCC_HH
