#include "simd/mcc.hh"

#include "common/logging.hh"

namespace srbenes
{

MeshMachine::MeshMachine(unsigned n)
    : SimdMachine(std::size_t{1} << n), n_(n)
{
    if (n < 2 || n > 30 || n % 2 != 0)
        fatal("mesh machine needs even n in [2, 30], got %u", n);
}

void
MeshMachine::interchange(unsigned b,
                         const std::function<bool(Word i)> &enabled)
{
    if (b >= n_)
        fatal("mesh index bit %u out of range for n = %u", b, n_);

    std::vector<Word> selected;
    for (Word i = 0; i < numPes(); ++i)
        if (bit(i, b) == 0 && enabled(i))
            selected.push_back(i);
    for (Word i : selected)
        std::swap(pes_[i], pes_[flipBit(i, b)]);
    // 2^k steps to ship each record toward its partner, in both
    // directions.
    countUnitRoutes(2ull * interchangeDistance(b));
}

void
MeshMachine::interchangeStepwise(
    unsigned b, const std::function<bool(Word i)> &enabled)
{
    if (b >= n_)
        fatal("mesh index bit %u out of range for n = %u", b, n_);

    // Row-major distance of one hop along this dimension: columns
    // are adjacent indices, rows are side() apart.
    const Word hop = (b < n_ / 2) ? Word{1} : side();
    const Word hops = interchangeDistance(b);

    std::vector<Word> selected;
    for (Word i = 0; i < numPes(); ++i)
        if (bit(i, b) == 0 && enabled(i))
            selected.push_back(i);

    // Transit registers: fwd travels low -> high partner, bwd the
    // other way; each unit step advances every in-flight record one
    // neighbor link in both directions (two unit routes per step).
    std::vector<PeRecord> fwd(numPes()), bwd(numPes());
    std::vector<bool> fwd_live(numPes(), false),
        bwd_live(numPes(), false);
    for (Word i : selected) {
        fwd[i] = pes_[i];
        fwd_live[i] = true;
        const Word j = flipBit(i, b);
        bwd[j] = pes_[j];
        bwd_live[j] = true;
    }

    for (Word step = 0; step < hops; ++step) {
        std::vector<PeRecord> nf(numPes()), nb(numPes());
        std::vector<bool> nfl(numPes(), false), nbl(numPes(), false);
        for (Word p = 0; p < numPes(); ++p) {
            if (fwd_live[p]) {
                nf[p + hop] = fwd[p];
                nfl[p + hop] = true;
            }
            if (bwd_live[p]) {
                nb[p - hop] = bwd[p];
                nbl[p - hop] = true;
            }
        }
        fwd.swap(nf);
        bwd.swap(nb);
        fwd_live.swap(nfl);
        bwd_live.swap(nbl);
        countUnitRoutes(2);
    }

    for (Word i : selected) {
        const Word j = flipBit(i, b);
        if (!fwd_live[j] || !bwd_live[i])
            panic("stepwise interchange lost a record in transit");
        pes_[j] = fwd[j];
        pes_[i] = bwd[i];
    }
}

void
MeshMachine::compareExchange(
    unsigned b, const std::function<bool(Word i)> &ascending)
{
    if (b >= n_)
        fatal("mesh index bit %u out of range for n = %u", b, n_);

    for (Word i = 0; i < numPes(); ++i) {
        if (bit(i, b) != 0)
            continue;
        const Word j = flipBit(i, b);
        if ((pes_[i].d > pes_[j].d) == ascending(i))
            std::swap(pes_[i], pes_[j]);
    }
    countUnitRoutes(2ull * interchangeDistance(b));
}

} // namespace srbenes
