#include "simd/bitonic.hh"

namespace srbenes
{

namespace
{

/**
 * Visit the bitonic comparator schedule: for every merge size
 * k = 2, 4, ..., N and span j = k/2, ..., 1, emit one stage that
 * compare-exchanges across dimension lg j with ascending direction
 * for sequence indices with (index & k) = 0.
 */
template <typename StageFn>
void
forBitonicStages(unsigned n, StageFn stage)
{
    for (unsigned merge = 1; merge <= n; ++merge) {
        const Word k = Word{1} << merge;
        for (unsigned b = merge; b-- > 0;)
            stage(b, k);
    }
}

} // namespace

SimdPermuteStats
bitonicPermuteCube(CubeMachine &m)
{
    m.resetCounters();
    forBitonicStages(m.n(), [&m](unsigned b, Word k) {
        m.compareExchange(b,
                          [k](Word i) { return (i & k) == 0; });
    });
    return {m.permutationComplete(), m.unitRoutes(),
            m.interchangeSteps()};
}

SimdPermuteStats
bitonicPermuteShuffle(ShuffleMachine &m)
{
    m.resetCounters();
    const unsigned n = m.n();

    // rot: the record of sequence index x currently sits at
    // PE rotr(x, rot), so bit `rot` of the sequence index is the
    // current exchange (low-order) bit.
    unsigned rot = 0;
    auto align_to = [&m, &rot, n](unsigned b) {
        const unsigned fwd = (b + n - rot) % n;  // unshuffles
        const unsigned back = (rot + n - b) % n; // shuffles
        if (fwd <= back) {
            for (unsigned s = 0; s < fwd; ++s)
                m.unshuffleStep();
        } else {
            for (unsigned s = 0; s < back; ++s)
                m.shuffleStep();
        }
        rot = b;
    };

    forBitonicStages(n, [&](unsigned b, Word k) {
        align_to(b);
        // PE pair (p, p+1) holds sequence indices rotl(p, rot) and
        // rotl(p+1, rot); direction comes from the sequence index.
        m.compareExchange([&m, &rot, k](Word p) {
            return (rotateLeft(p, m.n(), rot) & k) == 0;
        });
    });
    align_to(0); // bring every record back to its home alignment
    return {m.permutationComplete(), m.unitRoutes(),
            m.interchangeSteps()};
}

SimdPermuteStats
bitonicPermuteMesh(MeshMachine &m)
{
    m.resetCounters();
    forBitonicStages(m.n(), [&m](unsigned b, Word k) {
        m.compareExchange(b,
                          [k](Word i) { return (i & k) == 0; });
    });
    return {m.permutationComplete(), m.unitRoutes(),
            m.interchangeSteps()};
}

} // namespace srbenes
