/**
 * @file
 * Sorting-based permutation baselines (Section III comparison).
 *
 * Before the self-routing simulation, the asymptotically best way to
 * realize an ARBITRARY permutation on these machines was to sort the
 * records by destination tag with Batcher's bitonic network:
 * O(log^2 N) steps on a CCC or PSC, O(N^1/2 log N) with this direct
 * embedding on an MCC. These routines implement that baseline with
 * full unit-route accounting so bench E5 can report the crossover
 * against the F(n) algorithms.
 */

#ifndef SRBENES_SIMD_BITONIC_HH
#define SRBENES_SIMD_BITONIC_HH

#include "simd/ccc.hh"
#include "simd/mcc.hh"
#include "simd/permute.hh"
#include "simd/psc.hh"

namespace srbenes
{

/** Bitonic sort by destination tag on the cube: n(n+1)/2
 *  compare-exchange steps. */
SimdPermuteStats bitonicPermuteCube(CubeMachine &m);

/**
 * Bitonic sort on the perfect-shuffle machine: the comparator
 * schedule of the cube algorithm, with shuffles/unshuffles rotating
 * the needed index bit into the exchange position (Stone's method;
 * about lg^2 N routes).
 */
SimdPermuteStats bitonicPermuteShuffle(ShuffleMachine &m);

/** Bitonic sort on the mesh with row-major bit embedding. */
SimdPermuteStats bitonicPermuteMesh(MeshMachine &m);

} // namespace srbenes

#endif // SRBENES_SIMD_BITONIC_HH
