/**
 * @file
 * Cube Connected Computer (CCC): N = 2^n PEs, PE(i) directly
 * connected to PE(i^(b)) for every dimension b (Section I, model 3).
 */

#ifndef SRBENES_SIMD_CCC_HH
#define SRBENES_SIMD_CCC_HH

#include <functional>

#include "simd/machine.hh"

namespace srbenes
{

class CubeMachine : public SimdMachine
{
  public:
    /** @param n number of cube dimensions; N = 2^n PEs. */
    explicit CubeMachine(unsigned n,
                         unsigned routes_per_interchange = 1);

    unsigned n() const { return n_; }

    /**
     * One SIMD interchange step across dimension @p b: for every PE
     * pair (i, i^(b)) with (i)_b = 0, swap the two records iff
     * @p enabled (i) is true. The mask is evaluated against the
     * machine state BEFORE any swap of the step, matching lock-step
     * SIMD semantics. Costs one interchange regardless of how many
     * pairs are enabled.
     */
    void interchange(unsigned b,
                     const std::function<bool(Word i)> &enabled);

    /**
     * Compare-exchange step across dimension @p b for the sorting
     * baseline: for every pair (i, i^(b)) with (i)_b = 0, order the
     * records by destination tag, smaller tag at PE i when
     * @p ascending (i) is true.
     */
    void compareExchange(unsigned b,
                         const std::function<bool(Word i)> &ascending);

  private:
    unsigned n_;
};

} // namespace srbenes

#endif // SRBENES_SIMD_CCC_HH
