#include "simd/permute.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/** Axes j with A_j = +j need no routing across dimension j. */
std::vector<bool>
fixedAxes(unsigned n, const BpcSpec *bpc)
{
    std::vector<bool> fixed(n, false);
    if (!bpc) {
        return fixed;
    }
    if (bpc->n() != n)
        fatal("BPC hint width %u does not match machine n = %u",
              bpc->n(), n);
    for (unsigned j = 0; j < n; ++j)
        fixed[j] = (bpc->axis(j) == BpcAxis{j, false});
    return fixed;
}

} // namespace

std::vector<unsigned>
benesSchedule(unsigned n, PermClassHint hint, const BpcSpec *bpc)
{
    std::vector<unsigned> full;
    for (unsigned b = 0; b + 1 < n; ++b)
        full.push_back(b);
    full.push_back(n - 1);
    for (unsigned b = n - 1; b-- > 0;)
        full.push_back(b);

    std::size_t lo = 0, hi = full.size();
    if (hint == PermClassHint::Omega)
        lo = n - 1; // first n-1 stages forced straight
    else if (hint == PermClassHint::InverseOmega)
        hi = n; // last n-1 stages unnecessary

    const std::vector<bool> fixed = fixedAxes(n, bpc);
    std::vector<unsigned> schedule;
    for (std::size_t k = lo; k < hi; ++k)
        if (!fixed[full[k]])
            schedule.push_back(full[k]);
    return schedule;
}

SimdPermuteStats
cccPermute(CubeMachine &m, PermClassHint hint, const BpcSpec *bpc)
{
    m.resetCounters();
    for (unsigned b : benesSchedule(m.n(), hint, bpc))
        m.interchange(b, [&m, b](Word i) {
            return bit(m.pe(i).d, b) == 1;
        });
    return {m.permutationComplete(), m.unitRoutes(),
            m.interchangeSteps()};
}

SimdPermuteStats
mccPermute(MeshMachine &m, PermClassHint hint, const BpcSpec *bpc)
{
    m.resetCounters();
    for (unsigned b : benesSchedule(m.n(), hint, bpc))
        m.interchange(b, [&m, b](Word i) {
            return bit(m.pe(i).d, b) == 1;
        });
    return {m.permutationComplete(), m.unitRoutes(),
            m.interchangeSteps()};
}

SimdPermuteStats
pscPermute(ShuffleMachine &m, PermClassHint hint, const BpcSpec *bpc)
{
    m.resetCounters();
    const unsigned n = m.n();
    const std::vector<bool> fixed = fixedAxes(n, bpc);

    auto exchange_bit = [&m](unsigned b) {
        m.exchange(
            [&m, b](Word i) { return bit(m.pe(i).d, b) == 1; });
    };

    if (hint == PermClassHint::Omega) {
        // The whole first sweep only rotates the records; one
        // shuffle produces the same alignment (paper, Section III).
        if (n > 1)
            m.shuffleStep();
    } else {
        for (unsigned b = 0; b + 1 < n; ++b) {
            if (!fixed[b])
                exchange_bit(b);
            m.unshuffleStep();
        }
    }

    if (!fixed[n - 1])
        exchange_bit(n - 1);

    for (unsigned b = n - 1; b-- > 0;) {
        m.shuffleStep();
        if (hint != PermClassHint::InverseOmega && !fixed[b])
            exchange_bit(b);
    }

    return {m.permutationComplete(), m.unitRoutes(),
            m.interchangeSteps()};
}

} // namespace srbenes
