/**
 * @file
 * Completely Interconnected Computer (CIC), model 1 of Section I:
 * every pair of PEs is directly connected, so ANY permutation of the
 * routing registers is a single unit route. The model exists to
 * give the parallel setup algorithm (core/parallel_setup) an honest
 * cost accounting: one counter for unit routes (inter-PE register
 * permutations / scatters) and one for lock-step local compute
 * steps.
 *
 * Data lives in caller-held vectors (one Word per PE); the machine
 * only moves them and counts.
 */

#ifndef SRBENES_SIMD_CIC_HH
#define SRBENES_SIMD_CIC_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "perm/permutation.hh"

namespace srbenes
{

class CicMachine
{
  public:
    explicit CicMachine(std::size_t num_pes);

    std::size_t numPes() const { return num_pes_; }

    /** Route: value at PE i moves to PE dest[i]; one unit route. */
    void route(const Permutation &dest, std::vector<Word> &v);

    /**
     * Masked scatter: enabled PEs send their value to PE dest[i]
     * (destinations must be distinct among enabled PEs); other
     * targets keep their old value. One unit route.
     */
    void scatter(const std::vector<Word> &dest,
                 const std::vector<bool> &enabled,
                 std::vector<Word> &v);

    /**
     * Gather: every PE i fetches the value at PE from[i] (fan-out
     * allowed -- on a CIC each PE reads its direct link). One unit
     * route.
     */
    void gather(const std::vector<Word> &from, std::vector<Word> &v);

    /** Account one lock-step local operation over all PEs. */
    void localStep() { ++compute_steps_; }

    std::uint64_t unitRoutes() const { return unit_routes_; }
    std::uint64_t computeSteps() const { return compute_steps_; }
    std::uint64_t
    totalSteps() const
    {
        return unit_routes_ + compute_steps_;
    }
    void
    resetCounters()
    {
        unit_routes_ = 0;
        compute_steps_ = 0;
    }

  private:
    std::size_t num_pes_;
    std::uint64_t unit_routes_ = 0;
    std::uint64_t compute_steps_ = 0;
};

} // namespace srbenes

#endif // SRBENES_SIMD_CIC_HH
