#include "simd/machine.hh"

#include "common/logging.hh"

namespace srbenes
{

SimdMachine::SimdMachine(std::size_t num_pes,
                         unsigned routes_per_interchange)
    : pes_(num_pes), routes_per_interchange_(routes_per_interchange)
{
    if (num_pes == 0)
        fatal("SIMD machine needs at least one PE");
    if (routes_per_interchange < 1 || routes_per_interchange > 2)
        fatal("an interchange costs one or two unit routes, not %u",
              routes_per_interchange);
}

void
SimdMachine::load(const Permutation &d, const std::vector<Word> &data)
{
    if (d.size() != pes_.size())
        fatal("permutation size %zu != PE count %zu", d.size(),
              pes_.size());
    if (data.size() != pes_.size())
        fatal("payload count %zu != PE count %zu", data.size(),
              pes_.size());
    for (std::size_t i = 0; i < pes_.size(); ++i)
        pes_[i] = PeRecord{data[i], d[i]};
    resetCounters();
}

void
SimdMachine::loadIota(const Permutation &d)
{
    std::vector<Word> data(pes_.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<Word>(i);
    load(d, data);
}

std::vector<Word>
SimdMachine::payloads() const
{
    std::vector<Word> out(pes_.size());
    for (std::size_t i = 0; i < pes_.size(); ++i)
        out[i] = pes_[i].r;
    return out;
}

bool
SimdMachine::permutationComplete() const
{
    for (std::size_t i = 0; i < pes_.size(); ++i)
        if (pes_[i].d != i)
            return false;
    return true;
}

} // namespace srbenes
