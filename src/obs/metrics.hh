// srb-lint: modeled — SRB010: instrument atomics go through the
// common/sync.hh shim and are exercised by the srb_model suite.
/**
 * @file
 * Zero-dependency metrics registry for the routing runtime.
 *
 * A deployed fabric needs the same visibility a hardware switch
 * exposes through its management plane: per-stage activity, setup
 * latency, queue occupancy. This registry is the software analogue —
 * one process-wide (or per-component) table of named instruments
 * that the hot paths update lock-free and exporters snapshot on
 * demand (Prometheus text or JSON; see obs/export.hh).
 *
 * Three instrument kinds, all atomic (via common/sync.hh, plain
 * std::atomic in production builds) on the update path:
 *
 *  - Counter: monotonic, sharded over cacheline-padded per-thread
 *    cells so concurrent stream workers never contend on one line;
 *    value() folds the shards.
 *  - Gauge: a single signed value, set/add semantics (ring
 *    occupancy, active SIMD level).
 *  - Histogram: fixed log2-structured buckets (4 sub-buckets per
 *    octave, so quantile estimates carry ~12% resolution) with a
 *    running sum; observation is two relaxed atomic adds.
 *
 * Registration (counter()/gauge()/histogram()) is get-or-create
 * under a mutex — a cold operation done at component construction.
 * The returned references are stable for the registry's lifetime, so
 * instrumented code holds plain pointers and pays only the atomic op
 * per event. Instrumented components take a `MetricsRegistry *`;
 * passing nullptr compiles the call sites down to a predictable
 * untaken branch (the overhead bench's baseline), and the default is
 * the process-global registry().
 */

#ifndef SRBENES_OBS_METRICS_HH
#define SRBENES_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.hh"
#include "common/thread_annotations.hh"

namespace srbenes
{
namespace obs
{

/** Sorted (key, value) label pairs identifying one series. */
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType
{
    Counter,
    Gauge,
    Histogram,
};

const char *metricTypeName(MetricType t) noexcept;

/**
 * Small dense thread index for counter sharding: each thread gets
 * the next id on first use. Callers fold it modulo their shard
 * count.
 */
unsigned threadIndex();

/** Steady-clock nanoseconds (the registry's only notion of time). */
std::uint64_t monotonicNs();

/**
 * Monotonic counter, sharded across cacheline-padded atomic cells
 * indexed by threadIndex() so stream workers on different cores
 * update disjoint lines.
 */
class Counter
{
  public:
    static constexpr unsigned kShards = 8;

    void
    inc(std::uint64_t delta = 1) noexcept
    {
        // order: relaxed; counter events are independent and only
        // folded into a statistical total at read time.
        cells_[threadIndex() & (kShards - 1)].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const noexcept
    {
        std::uint64_t total = 0;
        for (const Cell &c : cells_)
            // order: relaxed; value() is a statistical snapshot,
            // shards may be mid-update while we fold.
            total += c.v.load(std::memory_order_relaxed);
        return total;
    }

    /**
     * Zero every shard. Counters are monotonic for exporters;
     * reset() exists for cache-clear style test hooks
     * (Router::clearPlanCache) and benchmark warmup exclusion.
     */
    void
    reset() noexcept
    {
        for (Cell &c : cells_)
            // order: relaxed; reset() is a quiescent test hook.
            c.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Cell
    {
        sync::Atomic<std::uint64_t> v{0};
    };
    Cell cells_[kShards];
};

/** A single settable signed value. */
class Gauge
{
  public:
    void
    set(std::int64_t v) noexcept
    {
        // order: relaxed; a gauge is a standalone sampled value,
        // never a synchronization edge.
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta) noexcept
    {
        // order: relaxed; see set().
        v_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const noexcept
    {
        // order: relaxed; see set().
        return v_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { set(0); }

  private:
    sync::Atomic<std::int64_t> v_{0};
};

/**
 * Fixed-bucket log2 histogram: values 0..3 get their own buckets,
 * every higher octave [2^e, 2^(e+1)) is split into 4 sub-buckets by
 * the two bits below the leading one. 252 buckets cover the full
 * uint64 range; quantile() interpolates linearly inside a bucket,
 * so estimates are exact below 4 and within ~12% above.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 252;

    /** Bucket index of @p v (0 <= result < kBuckets). */
    static unsigned bucketIndex(std::uint64_t v) noexcept;
    /** Inclusive upper bound of bucket @p idx. */
    static std::uint64_t bucketUpper(unsigned idx) noexcept;
    /** Inclusive lower bound of bucket @p idx. */
    static std::uint64_t bucketLower(unsigned idx) noexcept;

    void
    observe(std::uint64_t v) noexcept
    {
        // order: relaxed on bucket and sum; snapshots tolerate the
        // pair being momentarily inconsistent by design.
        buckets_[bucketIndex(v)].fetch_add(1,
                                           std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    /** A coherent-enough copy for export and merging. */
    struct Snapshot
    {
        std::uint64_t buckets[kBuckets] = {};
        std::uint64_t sum = 0;

        std::uint64_t count() const noexcept;
        /** Merge another snapshot in (per-worker -> aggregate). */
        void merge(const Snapshot &other) noexcept;
        /**
         * Estimated q-quantile (0 <= q <= 1) with linear
         * interpolation inside the landing bucket; 0 when empty.
         */
        std::uint64_t quantile(double q) const noexcept;
    };

    Snapshot snapshot() const noexcept;
    std::uint64_t count() const noexcept { return snapshot().count(); }
    std::uint64_t sum() const noexcept
    {
        // order: relaxed; statistical read, see observe().
        return sum_.load(std::memory_order_relaxed);
    }
    std::uint64_t quantile(double q) const
    {
        return snapshot().quantile(q);
    }

    void reset() noexcept;

  private:
    sync::Atomic<std::uint64_t> buckets_[kBuckets];
    sync::Atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-global registry (what defaultRegistry() hands out). */
    static MetricsRegistry &global();

    /**
     * Get-or-create; fatal()s if @p name+labels already exists with
     * a different type. References stay valid for the registry's
     * lifetime.
     */
    Counter &counter(const std::string &name, Labels labels = {});
    Gauge &gauge(const std::string &name, Labels labels = {});
    Histogram &histogram(const std::string &name, Labels labels = {});

    /**
     * A fresh instance-label value ("router0", "router1", ...) so
     * multiple instances of one component register disjoint series.
     */
    std::string uniqueInstance(const char *prefix);

    /** One registered series, as exporters see it. */
    struct View
    {
        const std::string &name;
        const Labels &labels;
        MetricType type;
        const Counter *counter = nullptr;
        const Gauge *gauge = nullptr;
        const Histogram *histogram = nullptr;
    };

    /**
     * Visit every series in deterministic order (name, then
     * rendered labels). Holds the registration mutex: updates stay
     * lock-free, but do not register new series from inside @p fn.
     */
    void visit(const std::function<void(const View &)> &fn) const
        SRB_EXCLUDES(mu_);

    std::size_t size() const SRB_EXCLUDES(mu_);

    /** Zero every instrument (test isolation). */
    void resetAll() SRB_EXCLUDES(mu_);

  private:
    struct Entry
    {
        std::string name;
        Labels labels;
        MetricType type;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &getOrCreate(const std::string &name, Labels &&labels,
                       MetricType type) SRB_EXCLUDES(mu_);

    mutable sync::Mutex mu_;
    /** Keyed by name + rendered labels; std::map for sorted visits. */
    std::map<std::string, Entry> entries_ SRB_GUARDED_BY(mu_);
    sync::Atomic<std::uint64_t> instance_seq_{0};
};

/**
 * The registry instrumented components attach to when the caller
 * does not pick one: the process-global registry. Components accept
 * nullptr as "observability off".
 */
inline MetricsRegistry *
defaultRegistry()
{
    return &MetricsRegistry::global();
}

/** Render labels as {a="x",b="y"} with Prometheus escaping. */
std::string renderLabels(const Labels &labels);

/** Escape a label value: backslash, double quote, newline. */
std::string escapeLabelValue(const std::string &v);

} // namespace obs
} // namespace srbenes

#endif // SRBENES_OBS_METRICS_HH
