/**
 * @file
 * Lightweight trace spans over a bounded in-memory ring.
 *
 * A TraceSpan brackets one interesting operation (a cold plan, a
 * pipeline drain) with steady-clock timestamps; finishing the span
 * claims one slot of the tracer's power-of-two ring with a relaxed
 * fetch_add and writes the record in place. Recording therefore
 * costs two clock reads and one atomic op — cheap enough for paths
 * in the tens of microseconds — and the ring never grows: old spans
 * are overwritten, which is exactly what an always-on flight
 * recorder wants.
 *
 * Span names must be string literals (the ring stores the pointer).
 * snapshot() is meant for quiescent readers — exporters after a run,
 * a debugger mid-flight; a record being overwritten concurrently can
 * read torn, which a flight recorder tolerates by design.
 */

#ifndef SRBENES_OBS_TRACE_HH
#define SRBENES_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <vector>

namespace srbenes
{
namespace obs
{

/** One finished span. */
struct SpanRecord
{
    const char *name = nullptr; //!< string literal
    std::uint64_t start_ns = 0; //!< steady clock
    std::uint64_t dur_ns = 0;
    unsigned thread = 0; //!< threadIndex() of the recorder
};

class Tracer
{
  public:
    /** @param capacity ring slots, rounded up to a power of two. */
    explicit Tracer(std::size_t capacity = 4096);

    /** The process-global flight recorder. */
    static Tracer &global();

    /**
     * RAII scope: records on destruction (or finish()). A Span built
     * with a null tracer is a no-op — instrumented code passes
     * nullptr when observability is off.
     */
    class Span
    {
      public:
        Span(Tracer *tracer, const char *name);
        ~Span() { finish(); }

        Span(const Span &) = delete;
        Span &operator=(const Span &) = delete;
        Span(Span &&other) noexcept;

        /** Record now; further finish() calls are no-ops. */
        void finish();

      private:
        Tracer *tracer_;
        const char *name_;
        std::uint64_t start_ns_;
    };

    Span span(const char *name) { return Span(this, name); }

    void record(const char *name, std::uint64_t start_ns,
                std::uint64_t dur_ns);

    std::size_t capacity() const noexcept { return ring_.size(); }

    /** Spans ever recorded (including overwritten ones). */
    std::uint64_t recorded() const noexcept
    {
        // order: relaxed; a statistical telemetry read.
        return widx_.load(std::memory_order_relaxed);
    }

    /**
     * The last min(recorded, capacity) records, oldest first. Meant
     * for quiescent readers; see the file comment.
     */
    std::vector<SpanRecord> snapshot() const;

    /** Forget everything (test isolation). */
    void clear();

  private:
    std::vector<SpanRecord> ring_;
    std::size_t mask_;
    std::atomic<std::uint64_t> widx_{0};
};

} // namespace obs
} // namespace srbenes

#endif // SRBENES_OBS_TRACE_HH
