// srb-lint: modeled — SRB010: instrument atomics go through the
// common/sync.hh shim and are exercised by the srb_model suite.
#include "obs/metrics.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>

#include "common/logging.hh"

namespace srbenes
{
namespace obs
{

const char *
metricTypeName(MetricType t) noexcept
{
    switch (t) {
      case MetricType::Counter:
        return "counter";
      case MetricType::Gauge:
        return "gauge";
      case MetricType::Histogram:
        return "histogram";
    }
    return "?";
}

unsigned
threadIndex()
{
#ifdef SRBENES_MODEL
    // Virtual lanes are re-run on recycled OS threads, so the
    // thread_local below would be stale (and nondeterministic)
    // across schedules; inside a model run the checker's dense lane
    // index is the sharding key instead.
    if (model::active())
        return model::laneIndex();
#endif
    static sync::Atomic<unsigned> next{0};
    // order: relaxed; ids only need to be unique, not ordered.
    thread_local const unsigned mine =
        next.fetch_add(1, std::memory_order_relaxed);
    return mine;
}

std::uint64_t
monotonicNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

unsigned
Histogram::bucketIndex(std::uint64_t v) noexcept
{
    if (v < 4)
        return static_cast<unsigned>(v);
    const unsigned e = std::bit_width(v) - 1; // 2..63
    const unsigned sub =
        static_cast<unsigned>((v >> (e - 2)) & 3); // bits below MSB
    return 4 * (e - 1) + sub;
}

std::uint64_t
Histogram::bucketLower(unsigned idx) noexcept
{
    if (idx < 4)
        return idx;
    const unsigned e = idx / 4 + 1;
    const unsigned sub = idx % 4;
    return (std::uint64_t{4} + sub) << (e - 2);
}

std::uint64_t
Histogram::bucketUpper(unsigned idx) noexcept
{
    if (idx < 4)
        return idx;
    const unsigned e = idx / 4 + 1;
    const unsigned sub = idx % 4;
    if (idx == kBuckets - 1)
        return ~std::uint64_t{0};
    return ((std::uint64_t{4} + sub + 1) << (e - 2)) - 1;
}

std::uint64_t
Histogram::Snapshot::count() const noexcept
{
    std::uint64_t total = 0;
    for (std::uint64_t b : buckets)
        total += b;
    return total;
}

void
Histogram::Snapshot::merge(const Snapshot &other) noexcept
{
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
    sum += other.sum;
}

std::uint64_t
Histogram::Snapshot::quantile(double q) const noexcept
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-quantile observation, 0-based.
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        if (seen + buckets[i] > rank) {
            const std::uint64_t lo = bucketLower(i);
            const std::uint64_t hi = bucketUpper(i);
            // Interpolate by the rank's position inside the bucket.
            const double frac =
                buckets[i] == 1
                    ? 0.0
                    : static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[i] - 1);
            return lo + static_cast<std::uint64_t>(
                            frac * static_cast<double>(hi - lo));
        }
        seen += buckets[i];
    }
    return bucketUpper(kBuckets - 1);
}

Histogram::Snapshot
Histogram::snapshot() const noexcept
{
    Snapshot s;
    // order: relaxed; a snapshot is coherent-enough by contract —
    // buckets and sum may tear against concurrent observes.
    for (unsigned i = 0; i < kBuckets; ++i)
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
}

void
Histogram::reset() noexcept
{
    // order: relaxed; reset() is a quiescent test/warmup hook.
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    return reg;
}

std::string
escapeLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ',';
        out += labels[i].first;
        out += "=\"";
        out += escapeLabelValue(labels[i].second);
        out += '"';
    }
    out += '}';
    return out;
}

MetricsRegistry::Entry &
MetricsRegistry::getOrCreate(const std::string &name, Labels &&labels,
                             MetricType type)
{
    std::sort(labels.begin(), labels.end());
    const std::string key = name + renderLabels(labels);

    sync::MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        if (it->second.type != type)
            fatal("metric %s re-registered as %s (was %s)",
                  key.c_str(), metricTypeName(type),
                  metricTypeName(it->second.type));
        return it->second;
    }

    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.type = type;
    switch (type) {
      case MetricType::Counter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricType::Gauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::Histogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    return entries_.emplace(key, std::move(e)).first->second;
}

Counter &
MetricsRegistry::counter(const std::string &name, Labels labels)
{
    return *getOrCreate(name, std::move(labels), MetricType::Counter)
                .counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, Labels labels)
{
    return *getOrCreate(name, std::move(labels), MetricType::Gauge)
                .gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, Labels labels)
{
    return *getOrCreate(name, std::move(labels),
                        MetricType::Histogram)
                .histogram;
}

std::string
MetricsRegistry::uniqueInstance(const char *prefix)
{
    return std::string(prefix) +
           // order: relaxed; instance ids only need uniqueness.
           std::to_string(
               instance_seq_.fetch_add(1, std::memory_order_relaxed));
}

void
MetricsRegistry::visit(
    const std::function<void(const View &)> &fn) const
{
    sync::MutexLock lock(mu_);
    for (const auto &[key, e] : entries_) {
        View v{e.name, e.labels, e.type, e.counter.get(),
               e.gauge.get(), e.histogram.get()};
        fn(v);
    }
}

std::size_t
MetricsRegistry::size() const
{
    sync::MutexLock lock(mu_);
    return entries_.size();
}

void
MetricsRegistry::resetAll()
{
    sync::MutexLock lock(mu_);
    for (auto &[key, e] : entries_) {
        switch (e.type) {
          case MetricType::Counter:
            e.counter->reset();
            break;
          case MetricType::Gauge:
            e.gauge->reset();
            break;
          case MetricType::Histogram:
            e.histogram->reset();
            break;
        }
    }
}

} // namespace obs
} // namespace srbenes
