#include "obs/trace.hh"

#include "obs/metrics.hh"

namespace srbenes
{
namespace obs
{

namespace
{

std::size_t
ceilPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Tracer::Tracer(std::size_t capacity)
    : ring_(ceilPow2(capacity < 2 ? 2 : capacity)),
      mask_(ring_.size() - 1)
{
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

Tracer::Span::Span(Tracer *tracer, const char *name)
    : tracer_(tracer), name_(name),
      start_ns_(tracer ? monotonicNs() : 0)
{
}

Tracer::Span::Span(Span &&other) noexcept
    : tracer_(other.tracer_), name_(other.name_),
      start_ns_(other.start_ns_)
{
    other.tracer_ = nullptr;
}

void
Tracer::Span::finish()
{
    if (!tracer_)
        return;
    const std::uint64_t now = monotonicNs();
    tracer_->record(name_, start_ns_, now - start_ns_);
    tracer_ = nullptr;
}

void
Tracer::record(const char *name, std::uint64_t start_ns,
               std::uint64_t dur_ns)
{
    // order: relaxed; the claim only needs atomicity. Records are
    // written non-atomically after it and may tear under a
    // concurrent snapshot — the flight-recorder contract.
    const std::uint64_t i =
        widx_.fetch_add(1, std::memory_order_relaxed);
    SpanRecord &slot = ring_[i & mask_];
    slot.name = name;
    slot.start_ns = start_ns;
    slot.dur_ns = dur_ns;
    slot.thread = threadIndex();
}

std::vector<SpanRecord>
Tracer::snapshot() const
{
    // order: acquire bounds the scan window; it cannot make the
    // record writes themselves visible (they are plain stores), so
    // snapshot() is for quiescent readers — see the file comment.
    const std::uint64_t w = widx_.load(std::memory_order_acquire);
    const std::uint64_t count =
        w < ring_.size() ? w : ring_.size();
    std::vector<SpanRecord> out;
    out.reserve(count);
    for (std::uint64_t i = w - count; i < w; ++i) {
        const SpanRecord &rec = ring_[i & mask_];
        if (rec.name)
            out.push_back(rec);
    }
    return out;
}

void
Tracer::clear()
{
    for (SpanRecord &rec : ring_)
        rec = SpanRecord{};
    // order: relaxed; clear() is a quiescent test hook.
    widx_.store(0, std::memory_order_relaxed);
}

} // namespace obs
} // namespace srbenes
