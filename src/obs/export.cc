#include "obs/export.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/logging.hh"

namespace srbenes
{
namespace obs
{

namespace
{

/** One series copied out of the registry for sorting/formatting. */
struct Series
{
    std::string name;
    Labels labels;
    std::string rendered; //!< renderLabels(labels)
    MetricType type;
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    Histogram::Snapshot hist;
};

std::vector<Series>
collect(const MetricsRegistry &reg)
{
    std::vector<Series> out;
    reg.visit([&](const MetricsRegistry::View &v) {
        Series s;
        s.name = v.name;
        s.labels = v.labels;
        s.rendered = renderLabels(v.labels);
        s.type = v.type;
        switch (v.type) {
          case MetricType::Counter:
            s.counter = v.counter->value();
            break;
          case MetricType::Gauge:
            s.gauge = v.gauge->value();
            break;
          case MetricType::Histogram:
            s.hist = v.histogram->snapshot();
            break;
        }
        out.push_back(std::move(s));
    });
    std::sort(out.begin(), out.end(),
              [](const Series &a, const Series &b) {
                  if (a.name != b.name)
                      return a.name < b.name;
                  return a.rendered < b.rendered;
              });
    return out;
}

void
append(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
append(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    const int need = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (need < static_cast<int>(sizeof(buf))) {
        out += buf;
        return;
    }
    std::vector<char> big(need + 1);
    va_start(args, fmt);
    std::vsnprintf(big.data(), big.size(), fmt, args);
    va_end(args);
    out += big.data();
}

/** Rendered labels with an `le` pair appended (histogram buckets). */
std::string
labelsWithLe(const Labels &labels, const std::string &le)
{
    std::string out = "{";
    for (const auto &[k, v] : labels) {
        out += k;
        out += "=\"";
        out += escapeLabelValue(v);
        out += "\",";
    }
    out += "le=\"";
    out += le;
    out += "\"}";
    return out;
}

unsigned
highestNonEmptyBucket(const Histogram::Snapshot &h)
{
    unsigned hi = 0;
    for (unsigned i = 0; i < Histogram::kBuckets; ++i)
        if (h.buckets[i])
            hi = i;
    return hi;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                append(out, "\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
exposeText(const MetricsRegistry &reg)
{
    const std::vector<Series> series = collect(reg);
    std::string out;
    const std::string *family = nullptr;
    for (const Series &s : series) {
        if (!family || *family != s.name) {
            append(out, "# TYPE %s %s\n", s.name.c_str(),
                   metricTypeName(s.type));
            family = &s.name;
        }
        switch (s.type) {
          case MetricType::Counter:
            append(out, "%s%s %" PRIu64 "\n", s.name.c_str(),
                   s.rendered.c_str(), s.counter);
            break;
          case MetricType::Gauge:
            append(out, "%s%s %" PRId64 "\n", s.name.c_str(),
                   s.rendered.c_str(), s.gauge);
            break;
          case MetricType::Histogram: {
            const unsigned hi = highestNonEmptyBucket(s.hist);
            std::uint64_t cum = 0;
            for (unsigned i = 0; i <= hi; ++i) {
                if (s.hist.buckets[i] == 0 && i != hi)
                    continue;
                cum += s.hist.buckets[i];
                char le[32];
                std::snprintf(le, sizeof(le), "%" PRIu64,
                              Histogram::bucketUpper(i));
                append(out, "%s_bucket%s %" PRIu64 "\n",
                       s.name.c_str(),
                       labelsWithLe(s.labels, le).c_str(), cum);
            }
            append(out, "%s_bucket%s %" PRIu64 "\n", s.name.c_str(),
                   labelsWithLe(s.labels, "+Inf").c_str(),
                   s.hist.count());
            append(out, "%s_sum%s %" PRIu64 "\n", s.name.c_str(),
                   s.rendered.c_str(), s.hist.sum);
            append(out, "%s_count%s %" PRIu64 "\n", s.name.c_str(),
                   s.rendered.c_str(), s.hist.count());
            break;
          }
        }
    }
    return out;
}

std::string
exportJson(const MetricsRegistry &reg, const Tracer *tracer)
{
    const std::vector<Series> series = collect(reg);
    std::string out = "{\n  \"benchmark\": \"obs_dump\",\n"
                      "  \"unit\": \"mixed\",\n";
    append(out, "  \"series\": %zu,\n  \"metrics\": [\n",
           series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        const Series &s = series[i];
        out += "    {\"name\": \"" + jsonEscape(s.name) +
               "\", \"labels\": {";
        for (std::size_t l = 0; l < s.labels.size(); ++l) {
            if (l)
                out += ", ";
            out += "\"" + jsonEscape(s.labels[l].first) + "\": \"" +
                   jsonEscape(s.labels[l].second) + "\"";
        }
        append(out, "}, \"type\": \"%s\", ", metricTypeName(s.type));
        switch (s.type) {
          case MetricType::Counter:
            append(out, "\"value\": %" PRIu64 "}", s.counter);
            break;
          case MetricType::Gauge:
            append(out, "\"value\": %" PRId64 "}", s.gauge);
            break;
          case MetricType::Histogram: {
            append(out,
                   "\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                   ", \"p50\": %" PRIu64 ", \"p99\": %" PRIu64
                   ", \"buckets\": [",
                   s.hist.count(), s.hist.sum, s.hist.quantile(0.50),
                   s.hist.quantile(0.99));
            bool first = true;
            for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
                if (s.hist.buckets[b] == 0)
                    continue;
                if (!first)
                    out += ", ";
                first = false;
                append(out, "{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}",
                       Histogram::bucketUpper(b), s.hist.buckets[b]);
            }
            out += "]}";
            break;
          }
        }
        out += i + 1 < series.size() ? ",\n" : "\n";
    }
    out += "  ]";
    if (tracer) {
        const std::vector<SpanRecord> spans = tracer->snapshot();
        append(out, ",\n  \"spans\": [\n");
        for (std::size_t i = 0; i < spans.size(); ++i) {
            const SpanRecord &r = spans[i];
            append(out,
                   "    {\"name\": \"%s\", \"start_ns\": %" PRIu64
                   ", \"dur_ns\": %" PRIu64 ", \"thread\": %u}%s\n",
                   jsonEscape(r.name ? r.name : "").c_str(),
                   r.start_ns, r.dur_ns, r.thread,
                   i + 1 < spans.size() ? "," : "");
        }
        out += "  ]";
    }
    out += "\n}\n";
    return out;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open %s for writing", path.c_str());
        return false;
    }
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    std::fclose(f);
    if (!ok)
        warn("short write to %s", path.c_str());
    return ok;
}

} // namespace obs
} // namespace srbenes
