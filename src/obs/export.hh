/**
 * @file
 * Exposition for the metrics registry and trace ring: Prometheus
 * text format and a JSON dump in the BENCH_*.json house shape, both
 * endpoint-less — callers embed the string in their own transport or
 * write it to a file a scraper/collector picks up.
 *
 * Both exporters walk a point-in-time visit of the registry sorted
 * by (family name, rendered labels), so output is deterministic for
 * a deterministic workload — the golden tests pin the exact bytes.
 * Histograms emit cumulative buckets up to the highest non-empty one
 * plus +Inf (empty trailing buckets carry no information), with the
 * standard _sum/_count companions.
 */

#ifndef SRBENES_OBS_EXPORT_HH
#define SRBENES_OBS_EXPORT_HH

#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace srbenes
{
namespace obs
{

/**
 * Prometheus text exposition (version 0.0.4): one `# TYPE` line per
 * family, series sorted by name then labels, label values escaped.
 */
std::string exposeText(const MetricsRegistry &reg);

/**
 * JSON dump shaped like the repo's BENCH_*.json files: a top-level
 * object with a "metrics" array (one element per series; histograms
 * carry count/sum/p50/p99 and their non-empty buckets) and, when
 * @p tracer is given, a "spans" array of its snapshot.
 */
std::string exportJson(const MetricsRegistry &reg,
                       const Tracer *tracer = nullptr);

/** Write @p content to @p path; false (plus a warn) on failure. */
bool writeFile(const std::string &path, const std::string &content);

} // namespace obs
} // namespace srbenes

#endif // SRBENES_OBS_EXPORT_HH
