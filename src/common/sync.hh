/**
 * @file
 * srbenes::sync — the production/model seam for every lock-free
 * kernel in the tree (layer 1 of the srb_model subsystem; see
 * docs/model-checking.md).
 *
 * Production builds (no SRBENES_MODEL): every type here is a
 * zero-overhead inline forward — sync::Atomic<T> IS std::atomic<T>
 * plus nothing, sync::Mutex is the annotated srbenes::Mutex, and
 * sync::Cell<T> is a bare T. The throughput benches gate that this
 * stays true.
 *
 * Model builds (-DSRBENES_MODEL, model test targets only): the same
 * API routes into the srb_model checker runtime (src/model), which
 * turns every operation into a scheduling point, explores all
 * bounded interleavings, models relaxed/acquire/release/seq_cst
 * visibility with per-location store buffers, and race-checks Cell
 * accesses with vector clocks.
 *
 * Files ported onto this shim are tagged `// srb-lint: modeled` on
 * one of their first three lines; srb_lint rule SRB010 then bans
 * raw std::atomic / std::mutex / SYS_futex in them, so a hot-path
 * edit cannot silently bypass the checker.
 *
 * Model-mode API subset (deliberate): integral/bool/enum atomics
 * with load/store/fetch_add/fetch_sub/exchange/wait/notify, plain
 * Mutex, and Cell. compare_exchange and SharedMutex are not modeled
 * — code that needs them either stays unported or grows checker
 * support first. SharedMutex/ReaderLock/WriterLock alias the
 * production types in both modes so modeled files can still name
 * them outside model-tested paths.
 */

#ifndef SRBENES_COMMON_SYNC_HH
#define SRBENES_COMMON_SYNC_HH

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "common/thread_annotations.hh"

#ifdef SRBENES_MODEL
#include "model/model.hh"
#endif

namespace srbenes
{
namespace sync
{

#ifndef SRBENES_MODEL

// ------------------------------------------------------- production

/** std::atomic<T> with the futex wait/wake hook; zero overhead. */
template <typename T>
class Atomic
{
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                  "sync::Atomic models integral-like values only");

  public:
    constexpr Atomic() noexcept : v_(T{}) {}
    constexpr Atomic(T init) noexcept : v_(init) {}
    Atomic(const Atomic &) = delete;
    Atomic &operator=(const Atomic &) = delete;

    T
    load(std::memory_order o = std::memory_order_seq_cst) const
        noexcept
    {
        return v_.load(o);
    }

    void
    store(T v,
          std::memory_order o = std::memory_order_seq_cst) noexcept
    {
        v_.store(v, o);
    }

    T
    fetch_add(T d,
              std::memory_order o = std::memory_order_seq_cst)
        noexcept
    {
        return v_.fetch_add(d, o);
    }

    T
    fetch_sub(T d,
              std::memory_order o = std::memory_order_seq_cst)
        noexcept
    {
        return v_.fetch_sub(d, o);
    }

    T
    exchange(T v,
             std::memory_order o = std::memory_order_seq_cst)
        noexcept
    {
        return v_.exchange(v, o);
    }

    /** Futex wait: blocks while the value equals @p old. */
    void
    wait(T old, std::memory_order o = std::memory_order_seq_cst)
        const noexcept
    {
        v_.wait(old, o);
    }

    void
    notify_one() noexcept
    {
        v_.notify_one();
    }

    void
    notify_all() noexcept
    {
        v_.notify_all();
    }

    operator T() const noexcept { return load(); }

  private:
    std::atomic<T> v_;
};

/** Plain data in production; race-checked under the model. */
template <typename T>
class Cell
{
  public:
    Cell() = default;
    explicit Cell(T v) : v_(v) {}

    T
    read() const
    {
        return v_;
    }

    void
    write(T v)
    {
        v_ = v;
    }

  private:
    T v_{};
};

using Mutex = srbenes::Mutex;
using MutexLock = srbenes::MutexLock;

#else // SRBENES_MODEL

// ------------------------------------------------------- model mode

namespace detail
{

inline model::Order
toOrder(std::memory_order o)
{
    switch (o) {
      case std::memory_order_relaxed: // order: shim order mapping
        return model::Order::Relaxed;
      case std::memory_order_consume: // order: shim order mapping
      case std::memory_order_acquire: // order: shim order mapping
        return model::Order::Acquire;
      case std::memory_order_release: // order: shim order mapping
        return model::Order::Release;
      case std::memory_order_acq_rel: // order: shim order mapping
        return model::Order::AcqRel;
      default:
        return model::Order::SeqCst;
    }
}

} // namespace detail

/** sync::Atomic routed into the checker's store-buffer model. */
template <typename T>
class Atomic
{
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                  "sync::Atomic models integral-like values only");

  public:
    Atomic() noexcept : st_(toWord(T{})) {}
    Atomic(T init) noexcept : st_(toWord(init)) {}
    Atomic(const Atomic &) = delete;
    Atomic &operator=(const Atomic &) = delete;

    T
    load(std::memory_order o = std::memory_order_seq_cst) const
    {
        return fromWord(model::atomicLoad(st_, detail::toOrder(o)));
    }

    void
    store(T v, std::memory_order o = std::memory_order_seq_cst)
    {
        model::atomicStore(st_, toWord(v), detail::toOrder(o));
    }

    T
    fetch_add(T d, std::memory_order o = std::memory_order_seq_cst)
    {
        return fromWord(model::atomicRmw(st_, model::Rmw::Add,
                                         toWord(d),
                                         detail::toOrder(o)));
    }

    T
    fetch_sub(T d, std::memory_order o = std::memory_order_seq_cst)
    {
        return fromWord(model::atomicRmw(st_, model::Rmw::Sub,
                                         toWord(d),
                                         detail::toOrder(o)));
    }

    T
    exchange(T v, std::memory_order o = std::memory_order_seq_cst)
    {
        return fromWord(model::atomicRmw(st_, model::Rmw::Exchange,
                                         toWord(v),
                                         detail::toOrder(o)));
    }

    void
    wait(T old,
         std::memory_order o = std::memory_order_seq_cst) const
    {
        model::atomicWait(st_, toWord(old), detail::toOrder(o));
    }

    void
    notify_one()
    {
        model::atomicNotify(st_, false);
    }

    void
    notify_all()
    {
        model::atomicNotify(st_, true);
    }

    operator T() const { return load(); }

  private:
    static std::uint64_t
    toWord(T v)
    {
        return static_cast<std::uint64_t>(v);
    }

    static T
    fromWord(std::uint64_t w)
    {
        return static_cast<T>(w);
    }

    mutable model::AtomicState st_;
};

/** Race-checked plain data: every read/write is vector-clocked. */
template <typename T>
class Cell
{
  public:
    Cell() = default;
    explicit Cell(T v) : v_(v) {}

    T
    read() const
    {
        if (!model::cellRead(st_))
            return T{}; // aborting: v_ may be in a destroyed frame
        return v_;
    }

    void
    write(T v)
    {
        if (!model::cellWrite(st_))
            return; // aborting: v_ may be in a destroyed frame
        v_ = v;
    }

  private:
    mutable model::CellState st_;
    T v_{};
};

/**
 * Model-scheduled mutex. Carries the same capability annotations as
 * srbenes::Mutex so SRB_GUARDED_BY members and the tidy preset's
 * -Wthread-safety analysis keep working in model targets.
 */
class SRB_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SRB_ACQUIRE() { model::mutexLock(st_); }
    void unlock() SRB_RELEASE() { model::mutexUnlock(st_); }

    bool
    try_lock() SRB_TRY_ACQUIRE(true)
    {
        return model::mutexTryLock(st_);
    }

  private:
    model::MutexState st_;
};

/** Scoped lock over the model Mutex, analysis-visible. */
class SRB_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SRB_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() SRB_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

#endif // SRBENES_MODEL

// Reader/writer locking is not modeled; modeled files may still name
// these for paths outside their model tests.
using SharedMutex = srbenes::SharedMutex;
using ReaderLock = srbenes::ReaderLock;
using WriterLock = srbenes::WriterLock;

} // namespace sync
} // namespace srbenes

#endif // SRBENES_COMMON_SYNC_HH
