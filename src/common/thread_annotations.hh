/**
 * @file
 * Clang thread-safety capability annotations and annotated lock
 * types — the compile-time half of the concurrency-correctness wall
 * (the runtime half is the asan/tsan presets).
 *
 * The macros wrap clang's `-Wthread-safety` attributes and expand to
 * nothing on other compilers, so the default gcc build is untouched
 * while the `tidy` preset (clang, `-Wthread-safety
 * -Wthread-safety-beta -Werror`) proves every annotated invariant:
 * which mutex guards which member, which methods must (or must not)
 * hold which lock, and that every acquire has a matching release on
 * all paths.
 *
 * std::mutex / std::shared_mutex carry no capability attributes
 * under libstdc++, so annotating a member alone teaches the analysis
 * nothing. The Mutex / SharedMutex wrappers below are the annotated
 * equivalents, and MutexLock / ReaderLock / WriterLock replace
 * std::lock_guard / std::shared_lock / std::unique_lock at the use
 * sites. They are zero-overhead: every method is an inline forward
 * to the standard type.
 *
 * Conventions (enforced by srb-lint rule SRB006):
 *  - no raw std::mutex / std::shared_mutex members outside this
 *    shim — use Mutex / SharedMutex;
 *  - every member a lock protects is tagged SRB_GUARDED_BY(mu);
 *  - methods that run with the lock held take SRB_REQUIRES(mu),
 *    methods that take it themselves get SRB_EXCLUDES(mu).
 */

#ifndef SRBENES_COMMON_THREAD_ANNOTATIONS_HH
#define SRBENES_COMMON_THREAD_ANNOTATIONS_HH

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SRB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SRB_THREAD_ANNOTATION
#define SRB_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Marks a type as a lockable capability ("mutex", "shared_mutex"). */
#define SRB_CAPABILITY(x) SRB_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime equals a critical section. */
#define SRB_SCOPED_CAPABILITY SRB_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with @p x held. */
#define SRB_GUARDED_BY(x) SRB_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define SRB_PT_GUARDED_BY(x) SRB_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the capability exclusively. */
#define SRB_ACQUIRE(...) \
    SRB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function acquires the capability shared (reader side). */
#define SRB_ACQUIRE_SHARED(...) \
    SRB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability (exclusive or shared). */
#define SRB_RELEASE(...) \
    SRB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function releases a shared hold of the capability. */
#define SRB_RELEASE_SHARED(...) \
    SRB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function may acquire exclusively; the bool is the success value. */
#define SRB_TRY_ACQUIRE(...) \
    SRB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must hold the capability exclusively. */
#define SRB_REQUIRES(...) \
    SRB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared. */
#define SRB_REQUIRES_SHARED(...) \
    SRB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock guard). */
#define SRB_EXCLUDES(...) \
    SRB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define SRB_RETURN_CAPABILITY(x) \
    SRB_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use needs a comment saying why. */
#define SRB_NO_THREAD_SAFETY_ANALYSIS \
    SRB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace srbenes
{

/**
 * std::mutex with capability annotations. Drop-in where the lock is
 * taken through MutexLock; exposes lock()/unlock() for the analysis.
 */
class SRB_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SRB_ACQUIRE() { mu_.lock(); }
    void unlock() SRB_RELEASE() { mu_.unlock(); }

    bool
    try_lock() SRB_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    std::mutex mu_; // srb-lint: allow(SRB006) the annotated shim itself
};

/** std::shared_mutex with capability annotations. */
class SRB_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() SRB_ACQUIRE() { mu_.lock(); }
    void unlock() SRB_RELEASE() { mu_.unlock(); }
    void lock_shared() SRB_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() SRB_RELEASE_SHARED() { mu_.unlock_shared(); }

    bool
    try_lock() SRB_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    // srb-lint: allow(SRB006) the annotated shim itself
    std::shared_mutex mu_;
};

/** std::lock_guard equivalent over Mutex, visible to the analysis. */
class SRB_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SRB_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() SRB_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/** std::unique_lock-style exclusive hold of a SharedMutex. */
class SRB_SCOPED_CAPABILITY WriterLock
{
  public:
    explicit WriterLock(SharedMutex &mu) SRB_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~WriterLock() SRB_RELEASE() { mu_.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mu_;
};

/** std::shared_lock-style reader hold of a SharedMutex. */
class SRB_SCOPED_CAPABILITY ReaderLock
{
  public:
    explicit ReaderLock(SharedMutex &mu) SRB_ACQUIRE_SHARED(mu)
        : mu_(mu)
    {
        mu_.lock_shared();
    }
    ~ReaderLock() SRB_RELEASE() { mu_.unlock_shared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mu_;
};

} // namespace srbenes

#endif // SRBENES_COMMON_THREAD_ANNOTATIONS_HH
