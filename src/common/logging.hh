/**
 * @file
 * Status-message and error-exit helpers in the spirit of gem5's
 * logging.hh.
 *
 * panic()  -- programmer error; something that must never happen
 *             regardless of user input. Calls std::abort().
 * fatal()  -- user error; the run cannot continue (bad size, bad
 *             permutation vector, ...). Calls std::exit(1).
 * warn()   -- suspicious but survivable condition.
 * inform() -- plain status output.
 */

#ifndef SRBENES_COMMON_LOGGING_HH
#define SRBENES_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace srbenes
{

/** Print a formatted message and abort; use for internal invariant
 *  violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for invalid user input. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace srbenes

#endif // SRBENES_COMMON_LOGGING_HH
