#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace srbenes
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("TextTable requires at least one column");
}

void
TextTable::newRow()
{
    rows_.emplace_back();
}

void
TextTable::addCell(std::string value)
{
    if (rows_.empty())
        newRow();
    if (rows_.back().size() >= headers_.size())
        panic("TextTable row has more cells than headers");
    rows_.back().push_back(std::move(value));
}

void
TextTable::addCell(const char *value)
{
    addCell(std::string(value));
}

void
TextTable::addCell(std::uint64_t value)
{
    addCell(std::to_string(value));
}

void
TextTable::addCell(long long value)
{
    addCell(std::to_string(value));
}

void
TextTable::addCell(int value)
{
    addCell(std::to_string(value));
}

void
TextTable::addCell(unsigned value)
{
    addCell(std::to_string(value));
}

void
TextTable::addCell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    addCell(os.str());
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    newRow();
    for (auto &c : cells)
        addCell(std::move(c));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            if (c + 1 < cells.size())
                os << "  ";
        }
        os << "\n";
    };

    emit(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 < headers_.size())
            rule.append("  ");
    }
    os << rule << "\n";
    for (const auto &row : rows_)
        emit(row);
}

} // namespace srbenes
