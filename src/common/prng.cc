#include "common/prng.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Prng::Prng(std::uint64_t seed)
{
    for (auto &s : state_)
        s = splitmix64(seed);
}

Prng::result_type
Prng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Prng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Prng::below called with zero bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return v % bound;
}

} // namespace srbenes
