/**
 * @file
 * Minimal fixed-width text-table formatter.
 *
 * The benchmark binaries reproduce the paper's tables and figures as
 * aligned text; this helper keeps the output format consistent across
 * all of them. Columns auto-size to their widest cell.
 */

#ifndef SRBENES_COMMON_TABLE_HH
#define SRBENES_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace srbenes
{

/**
 * A text table with a header row, built cell by cell and rendered to
 * any std::ostream. Cell values are strings; use the convenience
 * overloads of addCell for numeric data.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Start a new row. */
    void newRow();

    /** Append a cell to the current row. */
    void addCell(std::string value);
    void addCell(const char *value);
    void addCell(std::uint64_t value);
    void addCell(long long value);
    void addCell(int value);
    void addCell(unsigned value);
    /** Fixed-precision floating-point cell. */
    void addCell(double value, int precision = 3);

    /** Append a full row at once. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render with a header underline and two-space column gaps. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace srbenes

#endif // SRBENES_COMMON_TABLE_HH
