/**
 * @file
 * Bit-field utilities used throughout the library.
 *
 * The paper manipulates indices at the level of individual bits of
 * their binary representation: @c (i)_j is bit j of i (bit 0 the least
 * significant), and @c (i)_{j..k} is the integer formed by bits
 * j down to k. These helpers implement that notation plus the
 * bit-rotations behind the perfect shuffle / unshuffle and the bit
 * reversal of Fig. 4.
 *
 * All values are unsigned 64-bit; a "width" argument n means the value
 * is interpreted as an n-bit string, supporting networks up to
 * N = 2^63 inputs (far beyond anything simulated here).
 */

#ifndef SRBENES_COMMON_BITOPS_HH
#define SRBENES_COMMON_BITOPS_HH

#include <cstdint>

namespace srbenes
{

/** Index/tag type used for network lines and destination tags. */
using Word = std::uint64_t;

/** Extract bit @p b of @p v, i.e.\ the paper's (v)_b. */
constexpr Word
bit(Word v, unsigned b)
{
    return (v >> b) & 1u;
}

/** Return @p v with bit @p b set to the low bit of @p x. */
constexpr Word
setBit(Word v, unsigned b, Word x)
{
    return (v & ~(Word{1} << b)) | ((x & 1u) << b);
}

/** Return @p v with bit @p b complemented, the paper's v^(b). */
constexpr Word
flipBit(Word v, unsigned b)
{
    return v ^ (Word{1} << b);
}

/** Extract the bit field (v)_{hi..lo} as an integer (hi >= lo). */
constexpr Word
bits(Word v, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const Word mask = (width >= 64) ? ~Word{0} : ((Word{1} << width) - 1);
    return (v >> lo) & mask;
}

/** A mask with the low @p n bits set. */
constexpr Word
lowMask(unsigned n)
{
    return (n >= 64) ? ~Word{0} : ((Word{1} << n) - 1);
}

/** Reverse the low @p n bits of @p v (bits above n are dropped). */
Word reverseBits(Word v, unsigned n);

/**
 * Rotate the low @p n bits of @p v left by one position: the perfect
 * shuffle sigma of the paper, i_{n-1} i_{n-2} ... i_0 ->
 * i_{n-2} ... i_0 i_{n-1}.
 */
constexpr Word
shuffle(Word v, unsigned n)
{
    return ((v << 1) & lowMask(n)) | bit(v, n - 1);
}

/** Rotate the low @p n bits right by one: the unshuffle sigma^-1. */
constexpr Word
unshuffle(Word v, unsigned n)
{
    return (v >> 1) | (bit(v, 0) << (n - 1));
}

/** Rotate the low @p n bits of @p v left by @p k positions. */
Word rotateLeft(Word v, unsigned n, unsigned k);

/** Rotate the low @p n bits of @p v right by @p k positions. */
Word rotateRight(Word v, unsigned n, unsigned k);

/**
 * Gather the bits of @p v selected by @p mask into a contiguous
 * low-order field, preserving their relative order (software PEXT).
 * Used by the J-partition machinery of Theorems 4-6.
 */
Word extractBits(Word v, Word mask);

/**
 * Scatter the low-order bits of @p v into the positions selected by
 * @p mask, preserving order (software PDEP). Inverse of extractBits
 * on the masked field.
 */
Word depositBits(Word v, Word mask);

/** Number of set bits in @p v. */
unsigned popCount(Word v);

/** Floor of log2(v); v must be nonzero. */
unsigned floorLog2(Word v);

/** True iff @p v is a power of two (v != 0). */
constexpr bool
isPowerOfTwo(Word v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Exact log2 of a power of two; calls panic() if @p v is not a power
 * of two. Used to recover n from N = 2^n network sizes.
 */
unsigned exactLog2(Word v);

/**
 * Hint the cache hierarchy to start pulling in the first stretch of
 * a Word stream the caller is about to read — the tile pipelines use
 * this to overlap the next tile's permutation/payload fetch with the
 * current tile's compute. Bounded to a ~4 KiB lead (a longer one
 * just evicts what the current tile is using); a no-op where the
 * builtin is unavailable.
 */
inline void
prefetchWords(const Word *p, Word words)
{
#if defined(__GNUC__) || defined(__clang__)
    const Word lim = words < Word{512} ? words : Word{512};
    for (Word w = 0; w < lim; w += 8)
        __builtin_prefetch(p + w, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
    (void)words;
#endif
}

} // namespace srbenes

#endif // SRBENES_COMMON_BITOPS_HH
