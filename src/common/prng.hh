/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Experiments sample uniform random permutations (class-density
 * estimates, property sweeps), so reproducibility across runs and
 * platforms matters. We use our own xoshiro256** implementation
 * rather than std::mt19937 so that seeds give identical streams
 * everywhere, independent of standard-library internals.
 */

#ifndef SRBENES_COMMON_PRNG_HH
#define SRBENES_COMMON_PRNG_HH

#include <array>
#include <cstdint>

namespace srbenes
{

/**
 * xoshiro256** generator (Blackman & Vigna), seeded via splitmix64.
 * Satisfies std::uniform_random_bit_generator.
 */
class Prng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the stream; equal seeds give equal streams. */
    explicit Prng(std::uint64_t seed = 0x5eed5eed5eedULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace srbenes

#endif // SRBENES_COMMON_PRNG_HH
