#include "common/bitops.hh"

#include <bit>

#include "common/logging.hh"

namespace srbenes
{

Word
reverseBits(Word v, unsigned n)
{
    Word r = 0;
    for (unsigned b = 0; b < n; ++b)
        r |= bit(v, b) << (n - 1 - b);
    return r;
}

Word
rotateLeft(Word v, unsigned n, unsigned k)
{
    k %= n;
    if (k == 0)
        return v & lowMask(n);
    return ((v << k) & lowMask(n)) | ((v & lowMask(n)) >> (n - k));
}

Word
rotateRight(Word v, unsigned n, unsigned k)
{
    k %= n;
    return rotateLeft(v, n, n - k);
}

Word
extractBits(Word v, Word mask)
{
    Word out = 0;
    unsigned k = 0;
    for (Word m = mask; m != 0; m &= m - 1) {
        const unsigned b = std::countr_zero(m);
        out |= bit(v, b) << k;
        ++k;
    }
    return out;
}

Word
depositBits(Word v, Word mask)
{
    Word out = 0;
    unsigned k = 0;
    for (Word m = mask; m != 0; m &= m - 1) {
        const unsigned b = std::countr_zero(m);
        out |= bit(v, k) << b;
        ++k;
    }
    return out;
}

unsigned
popCount(Word v)
{
    return static_cast<unsigned>(std::popcount(v));
}

unsigned
floorLog2(Word v)
{
    if (v == 0)
        panic("floorLog2 of zero");
    return 63 - std::countl_zero(v);
}

unsigned
exactLog2(Word v)
{
    if (!isPowerOfTwo(v))
        panic("exactLog2: %llu is not a power of two",
              static_cast<unsigned long long>(v));
    return floorLog2(v);
}

} // namespace srbenes
