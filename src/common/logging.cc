#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace srbenes
{

namespace
{

void
vreport(const char *prefix, FILE *stream, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s: ", prefix);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", stderr, fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", stderr, fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", stderr, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", stdout, fmt, args);
    va_end(args);
}

} // namespace srbenes
