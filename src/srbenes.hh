/**
 * @file
 * Umbrella header: the public surface of the self-routing Benes
 * library in one include. Applications (and the examples/ tree)
 * should prefer this over reaching into subdirectory headers.
 *
 * Stability tiers:
 *
 *  STABLE -- covered by the deprecation policy (old signatures keep
 *  compiling for one release behind SRB_DEPRECATED_API shims):
 *
 *   - perm/       Permutation, BPC/linear/omega/F classification,
 *                 composition, cycle structure, named families;
 *   - core/       SelfRoutingBenes (the paper's fabric) and the
 *                 setup algorithms (waksman, two_pass,
 *                 parallel_setup), the fault model (faults.hh), the
 *                 unified outcome taxonomy (route_outcome.hh), the
 *                 planning Router, the batched SetupEngine, the
 *                 ResilientRouter serving layer, and the
 *                 StreamEngine;
 *   - networks/   the PermutationNetwork comparison interface and
 *                 every adapter behind allNetworks();
 *   - packet/     the packet-switched Fabric, the TrafficSource
 *                 matrices, and the deprecated PacketBenes shim;
 *   - obs/        metrics registry, exporters, tracing.
 *
 *  INTERNAL -- reachable but NOT part of the stable surface; shapes
 *  may change without deprecation: core/fast_engine.hh and
 *  core/fast_kernels.hh (bit-sliced engine internals),
 *  core/half_network.hh, simd/ machine models, gates/, and
 *  everything under common/. Include those headers directly when you
 *  opt into the churn.
 */

#ifndef SRBENES_SRBENES_HH
#define SRBENES_SRBENES_HH

// Permutations and their classification.
#include "perm/bpc.hh"
#include "perm/classify.hh"
#include "perm/compose.hh"
#include "perm/cycles.hh"
#include "perm/f_class.hh"
#include "perm/f_diagnosis.hh"
#include "perm/linear.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"
#include "perm/permutation.hh"

// The fabric, its setup algorithms, and the serving layers.
#include "core/faults.hh"
#include "core/parallel_setup.hh"
#include "core/partial.hh"
#include "core/pipeline.hh"
#include "core/plan_arena.hh"
#include "core/render.hh"
#include "core/resilient.hh"
#include "core/route_outcome.hh"
#include "core/router.hh"
#include "core/self_routing.hh"
#include "core/setup_engine.hh"
#include "core/state_io.hh"
#include "core/stats.hh"
#include "core/stream.hh"
#include "core/topology.hh"
#include "core/two_pass.hh"
#include "core/waksman.hh"
#include "core/waksman_reduced.hh"

// Comparison fabrics behind the uniform interface.
#include "networks/batcher.hh"
#include "networks/benes_adapter.hh"
#include "networks/crossbar.hh"
#include "networks/gcn.hh"
#include "networks/multicast.hh"
#include "networks/network_iface.hh"
#include "networks/odd_even.hh"
#include "networks/omega_network.hh"

// Packet-switched operation under non-permutation traffic.
#include "packet/fabric.hh"
#include "packet/packet_benes.hh"
#include "packet/traffic.hh"

// Observability.
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

// Supporting utilities the public headers already lean on.
#include "common/prng.hh"
#include "common/table.hh"

#endif // SRBENES_SRBENES_HH
