/**
 * @file
 * srb_model implementation: cooperative virtual scheduler, DFS
 * interleaving explorer with preemption bounding and sleep sets,
 * store-buffer memory model with vector clocks, and the failure
 * machinery (trace, decisions, replay).
 *
 * Concurrency discipline of the checker itself: exactly one thread
 * of the exploration is ever executing — either the scheduler (the
 * explore() caller) or the single granted lane. All checker state
 * (store histories, clocks, the decision path, the trace) is
 * therefore owned by whoever holds the baton; the baton passes
 * through a per-lane mutex + condition_variable handshake, which
 * also provides the happens-before every handover needs. There are
 * no atomics in this file at all.
 */

#include "model/model.hh"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>

namespace srbenes
{
namespace model
{

namespace
{

/** Thrown through a lane to unwind an aborted schedule. */
struct AbortSchedule
{
};

constexpr unsigned kNoLane = std::numeric_limits<unsigned>::max();
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/** Stable location-id kind tags (high byte of OpSig::loc). */
constexpr std::uint32_t kLocAtomic = 1u << 24;
constexpr std::uint32_t kLocCell = 2u << 24;
constexpr std::uint32_t kLocMutex = 3u << 24;

bool
dependentOps(const OpSig &a, const OpSig &b)
{
    if (a.global || b.global)
        return true;
    if (a.loc != b.loc)
        return false;
    return a.write || b.write;
}

bool
acquiring(Order o)
{
    return o == Order::Acquire || o == Order::AcqRel ||
           o == Order::SeqCst;
}

bool
releasing(Order o)
{
    return o == Order::Release || o == Order::AcqRel ||
           o == Order::SeqCst;
}

const char *
ordName(Order o)
{
    switch (o) {
      case Order::Relaxed:
        return "rlx";
      case Order::Acquire:
        return "acq";
      case Order::Release:
        return "rel";
      case Order::AcqRel:
        return "acq_rel";
      case Order::SeqCst:
        return "sc";
    }
    return "?";
}

const char *
rmwName(Rmw op)
{
    switch (op) {
      case Rmw::Add:
        return "fetch_add";
      case Rmw::Sub:
        return "fetch_sub";
      case Rmw::Exchange:
        return "exchange";
    }
    return "?";
}

std::uint64_t
applyRmw(Rmw op, std::uint64_t old, std::uint64_t operand)
{
    switch (op) {
      case Rmw::Add:
        return old + operand;
      case Rmw::Sub:
        return old - operand;
      case Rmw::Exchange:
        return operand;
    }
    return old;
}

std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

bool
parseReplay(const std::string &s,
            std::vector<std::pair<char, unsigned>> *out)
{
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        const std::size_t b = tok.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        tok = tok.substr(b, tok.find_last_not_of(" \t") - b + 1);
        if (tok.size() < 2 || (tok[0] != 'T' && tok[0] != 'V'))
            return false;
        unsigned v = 0;
        for (std::size_t i = 1; i < tok.size(); ++i) {
            if (tok[i] < '0' || tok[i] > '9')
                return false;
            v = v * 10 + static_cast<unsigned>(tok[i] - '0');
        }
        out->push_back({tok[0], v});
    }
    return true;
}

struct Impl;

thread_local Impl *tls_impl = nullptr;
thread_local unsigned tls_lane = 0;

/**
 * The whole exploration state. Lives on the explore() caller's
 * stack; lane threads are created lazily and joined before explore
 * returns.
 */
struct Impl
{
    // ------------------------------------------------------- lanes

    struct Lane
    {
        enum class Phase
        {
            Idle,
            Ready,   //!< parked with a pending op, schedulable
            Running, //!< the one granted lane
            Done,    //!< body finished (or unwound) this schedule
        };
        enum class Block
        {
            None,
            Futex,
            Mutex,
            Join,
        };

        std::thread th;
        std::mutex m; // srb-lint: allow(SRB006) scheduler handshake
        std::condition_variable cv;
        Phase phase = Phase::Idle;
        bool quit = false;
        bool live = false;    //!< participates in current schedule
        bool blocked = false; //!< Ready but not runnable
        Block cause = Block::None;
        MutexState *wait_mutex = nullptr;
        std::function<void()> body;
        OpSig pending{};
        std::string pending_desc;
    };

    Options opts;
    std::function<void()> main_body;

    std::array<Lane, kMaxThreads> lanes;
    unsigned nlanes = 0;

    // -------------------------------------- per-schedule dynamics

    std::uint64_t epoch = 0;
    std::array<Clock, kMaxThreads> clk{};
    unsigned running = 0;
    unsigned steps = 0;
    unsigned preemptions = 0;
    bool aborting = false;
    bool failed = false;
    std::string failure;
    std::string fail_decisions;
    std::string fail_trace;
    unsigned names_atomic = 0;
    unsigned names_cell = 0;
    unsigned names_mutex = 0;

    struct Event
    {
        unsigned lane;
        std::string desc;
    };
    std::vector<Event> events;

    // --------------------------------------------- decision tree

    /**
     * One decision on the current DFS path. The path is persistent
     * across re-executions: the prefix below the deepest advanced
     * node replays stored choices (verified against recomputed
     * options — any mismatch means the body is nondeterministic and
     * is reported as a failure, not silently mis-explored).
     */
    struct Node
    {
        bool thread_node = true;
        std::vector<unsigned> options; //!< lane ids / value indices
        std::vector<OpSig> sigs;       //!< thread nodes only
        std::size_t chosen = 0;        //!< index into options
        unsigned running_before = 0;
        bool running_enabled = false;
        unsigned preemptions_before = 0;
        /** Sleep set at this node: (lane, its pending op). */
        std::vector<std::pair<unsigned, OpSig>> slept;
    };
    std::vector<Node> path;
    std::size_t depth = 0; //!< decision cursor of the current run

    std::vector<std::pair<char, unsigned>> forced;
    bool replay_mode = false;

    std::uint64_t schedules = 0;
    std::uint64_t total_steps = 0;

    // -------------------------------------------------- formatting

    static std::string
    atomicName(const AtomicState &a)
    {
        return "a" + std::to_string(a.id);
    }

    static std::string
    cellName(const CellState &c)
    {
        return "c" + std::to_string(c.id);
    }

    static std::string
    mutexName(const MutexState &m)
    {
        return "m" + std::to_string(m.id);
    }

    static const char *
    blockName(Lane::Block b)
    {
        switch (b) {
          case Lane::Block::Futex:
            return "futex wait (possible lost wakeup)";
          case Lane::Block::Mutex:
            return "mutex";
          case Lane::Block::Join:
            return "join";
          case Lane::Block::None:
            return "nothing (runnable)";
        }
        return "?";
    }

    std::string
    formatDecisions() const
    {
        std::string s;
        const std::size_t n = std::min(depth, path.size());
        for (std::size_t i = 0; i < n; ++i) {
            const Node &nd = path[i];
            if (i)
                s += ',';
            s += nd.thread_node ? 'T' : 'V';
            s += std::to_string(nd.options[nd.chosen]);
        }
        return s;
    }

    std::string
    formatTrace() const
    {
        std::ostringstream os;
        for (std::size_t i = 0; i < events.size(); ++i)
            os << "  #" << i << " t" << events[i].lane << " "
               << events[i].desc << "\n";
        return os.str();
    }

    std::string
    deadlockReport() const
    {
        std::string s = "deadlock: no runnable thread;";
        for (unsigned t = 0; t < nlanes; ++t) {
            const Lane &ln = lanes[t];
            if (!ln.live || ln.phase == Lane::Phase::Done)
                continue;
            s += " t" + std::to_string(t) + " blocked on " +
                 blockName(ln.cause) + " at [" + ln.pending_desc +
                 "];";
        }
        return s;
    }

    // ----------------------------------------------- fail machinery

    void
    fail(std::string what)
    {
        if (failed)
            return;
        failed = true;
        failure = std::move(what);
        fail_decisions = formatDecisions();
        fail_trace = formatTrace();
        aborting = true;
    }

    [[noreturn]] void
    failAndUnwind(std::string what)
    {
        fail(std::move(what));
        throw AbortSchedule{};
    }

    // ------------------------------------------------ lane plumbing

    static void
    laneMain(Impl *self, unsigned id)
    {
        tls_impl = self;
        tls_lane = id;
        Lane &ln = self->lanes[id];
        std::unique_lock<std::mutex> lk(ln.m);
        for (;;) {
            ln.cv.wait(lk, [&ln] {
                return ln.quit || ln.phase == Lane::Phase::Running;
            });
            if (ln.quit)
                return;
            lk.unlock();
            if (!self->aborting) {
                self->onResume(id);
                try {
                    ln.body();
                } catch (const AbortSchedule &) {
                }
            }
            lk.lock();
            ln.phase = Lane::Phase::Done;
            ln.cv.notify_all();
        }
    }

    void
    ensureThread(unsigned id)
    {
        if (!lanes[id].th.joinable())
            lanes[id].th = std::thread(&Impl::laneMain, this, id);
    }

    void
    armLane(unsigned id, std::function<void()> fn)
    {
        Lane &ln = lanes[id];
        ln.body = std::move(fn);
        ln.live = true;
        ln.blocked = false;
        ln.cause = Lane::Block::None;
        ln.wait_mutex = nullptr;
        ln.pending = OpSig{0, false, true};
        ln.pending_desc = "start";
        ensureThread(id);
        std::lock_guard<std::mutex> lk(ln.m);
        ln.phase = Lane::Phase::Ready;
    }

    /** Book-keeping on becoming the granted lane: clock + trace. */
    void
    onResume(unsigned id)
    {
        clk[id][id] += 1;
        events.push_back(Event{id, lanes[id].pending_desc});
    }

    enum class OnAbort
    {
        Throw, //!< blocking ops: unwind the lane
        Plain, //!< non-blocking ops: degrade to the plain value
    };

    /**
     * Yield the baton back to the scheduler with @p sig pending;
     * returns once this lane is granted again. A false return (only
     * with OnAbort::Plain) means the schedule is being aborted and
     * the caller must fall back to its plain-mode behavior — that
     * keeps destructors (mutex unlocks, stores) from throwing
     * during unwind.
     */
    bool
    park(const OpSig &sig, std::string desc, OnAbort mode)
    {
        if (aborting) {
            if (mode == OnAbort::Throw)
                throw AbortSchedule{};
            return false;
        }
        Lane &ln = lanes[tls_lane];
        {
            std::unique_lock<std::mutex> lk(ln.m);
            ln.pending = sig;
            ln.pending_desc = std::move(desc);
            ln.phase = Lane::Phase::Ready;
            ln.cv.notify_all();
            ln.cv.wait(lk, [&ln] {
                return ln.phase == Lane::Phase::Running;
            });
        }
        if (aborting) {
            if (mode == OnAbort::Throw)
                throw AbortSchedule{};
            return false;
        }
        onResume(tls_lane);
        return true;
    }

    /** Append detail to the current trace event. */
    void
    note(const std::string &s)
    {
        if (!events.empty())
            events.back().desc += s;
    }

    void
    grant(unsigned t)
    {
        Lane &ln = lanes[t];
        std::unique_lock<std::mutex> lk(ln.m);
        ln.phase = Lane::Phase::Running;
        ln.cv.notify_all();
        ln.cv.wait(lk, [&ln] {
            return ln.phase != Lane::Phase::Running;
        });
    }

    /**
     * Resume every live lane so it can unwind (or finish in plain
     * mode). Highest lane first: spawned workers reference objects
     * owned by the main body's frame (lane 0), so lane 0 — whose
     * unwind destroys those objects — must tear down last.
     */
    void
    abortAll()
    {
        aborting = true;
        for (unsigned t = nlanes; t-- > 0;) {
            Lane &ln = lanes[t];
            if (ln.live && ln.phase != Lane::Phase::Done)
                grant(t);
        }
    }

    void
    shutdownLanes()
    {
        for (Lane &ln : lanes) {
            if (!ln.th.joinable())
                continue;
            {
                std::lock_guard<std::mutex> lk(ln.m);
                ln.quit = true;
                ln.cv.notify_all();
            }
            ln.th.join();
        }
    }

    // ------------------------------------------------ DFS explorer

    /** Enabled lanes with the previously running lane first, so the
     *  default DFS path is the natural preemption-free schedule. */
    std::vector<unsigned>
    ordered(std::vector<unsigned> e) const
    {
        auto it = std::find(e.begin(), e.end(), running);
        if (it != e.end())
            std::rotate(e.begin(), it, it + 1);
        return e;
    }

    bool
    allowedOption(const Node &n, std::size_t j) const
    {
        const unsigned t = n.options[j];
        if (opts.sleep_sets)
            for (const auto &s : n.slept)
                if (s.first == t)
                    return false;
        const unsigned cost =
            (t != n.running_before && n.running_enabled) ? 1u : 0u;
        return n.preemptions_before + cost <= opts.preemption_bound;
    }

    std::size_t
    firstAllowed(const Node &n, std::size_t from) const
    {
        for (std::size_t j = from; j < n.options.size(); ++j)
            if (allowedOption(n, j))
                return j;
        return kNpos;
    }

    /** Sleep set a fresh node inherits: the previous thread node's
     *  set minus entries dependent with the op just executed. */
    void
    inheritSleep(Node &n) const
    {
        if (!opts.sleep_sets)
            return;
        for (std::size_t i = depth; i-- > 0;) {
            const Node &p = path[i];
            if (!p.thread_node)
                continue;
            const OpSig &executed = p.sigs[p.chosen];
            for (const auto &s : p.slept)
                if (!dependentOps(s.second, executed))
                    n.slept.push_back(s);
            return;
        }
    }

    /**
     * Pick the lane to grant. Returns kNoLane when the schedule is
     * abandoned: either every enabled lane is slept (the subtree is
     * a commutation of one already explored — prune) or a replay
     * mismatch failed the run (failed is set).
     */
    unsigned
    pickThread(const std::vector<unsigned> &enabled_ordered)
    {
        if (depth < path.size()) {
            Node &n = path[depth];
            if (!n.thread_node || n.options != enabled_ordered) {
                fail("nondeterministic replay: thread choices "
                     "diverged between executions — the test body "
                     "must be deterministic (no wall clock, no "
                     "unseeded randomness, state constructed inside "
                     "the body)");
                return kNoLane;
            }
            if (n.options[n.chosen] != n.running_before &&
                n.running_enabled)
                ++preemptions;
            ++depth;
            return n.options[n.chosen];
        }

        Node n;
        n.thread_node = true;
        n.running_before = running;
        n.preemptions_before = preemptions;
        n.options = enabled_ordered;
        n.running_enabled =
            std::find(n.options.begin(), n.options.end(), running) !=
            n.options.end();
        for (unsigned t : n.options)
            n.sigs.push_back(lanes[t].pending);
        inheritSleep(n);

        std::size_t pick = kNpos;
        if (replay_mode && depth < forced.size()) {
            if (forced[depth].first != 'T') {
                fail("replay: decision " + std::to_string(depth) +
                     " is a thread choice, replay says value");
                return kNoLane;
            }
            auto it = std::find(n.options.begin(), n.options.end(),
                                forced[depth].second);
            if (it == n.options.end()) {
                fail("replay: t" +
                     std::to_string(forced[depth].second) +
                     " not enabled at decision " +
                     std::to_string(depth));
                return kNoLane;
            }
            pick = static_cast<std::size_t>(it - n.options.begin());
        } else {
            pick = firstAllowed(n, 0);
            if (pick == kNpos)
                return kNoLane; // pruned: redundant interleaving
        }
        n.chosen = pick;
        if (n.options[pick] != n.running_before && n.running_enabled)
            ++preemptions;
        path.push_back(std::move(n));
        ++depth;
        return path.back().options[path.back().chosen];
    }

    /**
     * Fork the exploration over @p count alternatives of the op the
     * calling lane is executing (load visibility). Choice 0 is the
     * newest store; value choices cost no preemption budget.
     */
    unsigned
    choose(unsigned count)
    {
        if (count <= 1)
            return 0;
        if (depth < path.size()) {
            Node &n = path[depth];
            if (n.thread_node || n.options.size() != count)
                failAndUnwind(
                    "nondeterministic replay: value choices "
                    "diverged between executions");
            ++depth;
            return n.options[n.chosen];
        }
        Node n;
        n.thread_node = false;
        n.options.resize(count);
        for (unsigned i = 0; i < count; ++i)
            n.options[i] = i;
        n.chosen = 0;
        if (replay_mode && depth < forced.size()) {
            if (forced[depth].first != 'V' ||
                forced[depth].second >= count)
                failAndUnwind("replay: bad value decision " +
                              std::to_string(depth));
            n.chosen = forced[depth].second;
        }
        path.push_back(std::move(n));
        ++depth;
        return path.back().options[path.back().chosen];
    }

    /**
     * Backtrack after a completed (or pruned) schedule: sleep the
     * explored branch, advance the deepest node with an allowed
     * unexplored sibling, drop exhausted nodes. False = done.
     */
    bool
    advance()
    {
        while (!path.empty()) {
            Node &n = path.back();
            if (n.thread_node) {
                if (opts.sleep_sets)
                    n.slept.emplace_back(n.options[n.chosen],
                                         n.sigs[n.chosen]);
                const std::size_t j = firstAllowed(n, n.chosen + 1);
                if (j != kNpos) {
                    n.chosen = j;
                    return true;
                }
            } else if (n.chosen + 1 < n.options.size()) {
                ++n.chosen;
                return true;
            }
            path.pop_back();
        }
        return false;
    }

    // --------------------------------------------- schedule driver

    /** Clear Mutex/Join blocks whose condition now holds (futex
     *  blocks are cleared only by an explicit notify). */
    void
    refreshBlocked()
    {
        for (unsigned t = 0; t < nlanes; ++t) {
            Lane &ln = lanes[t];
            if (!ln.live || !ln.blocked)
                continue;
            bool wake = false;
            if (ln.cause == Lane::Block::Join) {
                wake = true;
                for (unsigned u = 0; u < nlanes && wake; ++u)
                    if (u != t && lanes[u].live &&
                        lanes[u].phase != Lane::Phase::Done)
                        wake = false;
            } else if (ln.cause == Lane::Block::Mutex) {
                wake = ln.wait_mutex && ln.wait_mutex->locked_by < 0;
            }
            if (wake) {
                ln.blocked = false;
                ln.cause = Lane::Block::None;
                ln.wait_mutex = nullptr;
            }
        }
    }

    /** Run one schedule to completion; false = it failed. */
    bool
    runOne()
    {
        ++epoch;
        ++schedules;
        steps = 0;
        preemptions = 0;
        depth = 0;
        running = 0;
        aborting = false;
        names_atomic = names_cell = names_mutex = 0;
        for (Clock &c : clk)
            c.fill(0);
        events.clear();
        for (Lane &ln : lanes) {
            ln.live = false;
            ln.blocked = false;
            ln.cause = Lane::Block::None;
            ln.wait_mutex = nullptr;
        }
        nlanes = 1;
        armLane(0, main_body);

        for (;;) {
            refreshBlocked();
            std::vector<unsigned> enabled;
            bool alive = false;
            for (unsigned t = 0; t < nlanes; ++t) {
                Lane &ln = lanes[t];
                if (!ln.live || ln.phase == Lane::Phase::Done)
                    continue;
                alive = true;
                if (!ln.blocked)
                    enabled.push_back(t);
            }
            if (!alive)
                break; // schedule ran to completion
            if (enabled.empty()) {
                fail(deadlockReport());
                abortAll();
                break;
            }
            if (steps >= opts.max_steps) {
                fail("livelock: schedule exceeded " +
                     std::to_string(opts.max_steps) +
                     " steps without completing");
                abortAll();
                break;
            }
            const unsigned t = pickThread(ordered(enabled));
            if (t == kNoLane) {
                abortAll(); // pruned, or failed replay verification
                break;
            }
            ++steps;
            running = t;
            grant(t);
            if (failed) {
                abortAll();
                break;
            }
        }
        total_steps += steps;
        return !failed;
    }

    // --------------------------------------------- memory model

    void
    ensure(AtomicState &a)
    {
        if (a.epoch == epoch)
            return;
        a.epoch = epoch;
        a.id = ++names_atomic;
        a.stores.clear();
        a.stores.push_back(AtomicState::Store{a.plain, kMaxThreads,
                                              0, false, Clock{}});
        a.base = 0;
        a.floor = 0;
        a.last_read.fill(0);
        a.waiters.clear();
    }

    void
    ensure(CellState &c)
    {
        if (c.epoch == epoch)
            return;
        c.epoch = epoch;
        c.id = ++names_cell;
        c.written = false;
        c.last_writer = 0;
        c.write_stamp = 0;
        c.read_stamps.fill(0);
    }

    void
    ensure(MutexState &m)
    {
        if (m.epoch == epoch)
            return;
        m.epoch = epoch;
        m.id = ++names_mutex;
        m.locked_by = -1;
        m.has_sync = false;
        m.sync_clock.fill(0);
    }

    static OpSig
    sigOf(const AtomicState &a, bool write)
    {
        return OpSig{kLocAtomic | a.id, write, false};
    }

    static OpSig
    sigOf(const CellState &c, bool write)
    {
        return OpSig{kLocCell | c.id, write, false};
    }

    static OpSig
    sigOf(const MutexState &m)
    {
        return OpSig{kLocMutex | m.id, true, false};
    }

    AtomicState::Store &
    storeAt(AtomicState &a, std::size_t abs)
    {
        return a.stores[abs - a.base];
    }

    std::size_t
    latestIndex(const AtomicState &a) const
    {
        return a.base + a.stores.size() - 1;
    }

    void
    joinClock(const Clock &other)
    {
        Clock &mine = clk[tls_lane];
        for (unsigned i = 0; i < kMaxThreads; ++i)
            mine[i] = std::max(mine[i], other[i]);
    }

    void
    pushStore(AtomicState &a, std::uint64_t v, bool rel, bool chain)
    {
        AtomicState::Store s;
        s.value = v;
        s.thread = tls_lane;
        s.self_stamp = clk[tls_lane][tls_lane];
        if (rel) {
            s.has_sync = true;
            s.sync_clock = clk[tls_lane];
            // An RMW continues the release sequence of the store it
            // replaced: an acquire reader syncs with both.
            if (chain && a.stores.back().has_sync) {
                const Clock &head = a.stores.back().sync_clock;
                for (unsigned i = 0; i < kMaxThreads; ++i)
                    s.sync_clock[i] =
                        std::max(s.sync_clock[i], head[i]);
            }
        } else if (chain) {
            s.has_sync = a.stores.back().has_sync;
            s.sync_clock = a.stores.back().sync_clock;
        }
        a.stores.push_back(s);
        a.plain = v;
    }

    /** Drop stores no load may read anymore (below the floor). */
    void
    trim(AtomicState &a)
    {
        while (a.base < a.floor && a.stores.size() > 1) {
            a.stores.erase(a.stores.begin());
            ++a.base;
        }
    }

    std::uint64_t
    atomicLoad(AtomicState &a, Order o)
    {
        // On abort the result is dead and @p a may be a destroyed
        // stack object of an already-unwound lane — don't touch it
        // (not even ensure()).
        if (aborting)
            return 0;
        ensure(a);
        if (!park(sigOf(a, false),
                  atomicName(a) + ".load(" + ordName(o) + ")",
                  OnAbort::Plain))
            return 0;
        const std::size_t latest = latestIndex(a);
        // Staleness window: bounded below by the write-through
        // floor, this thread's own coherence floor, and the newest
        // store that already happens-before the reader.
        std::size_t lo =
            std::max(a.floor, a.last_read[tls_lane]);
        std::size_t hb = a.base;
        for (std::size_t i = latest;; --i) {
            const AtomicState::Store &s = storeAt(a, i);
            if (s.thread >= kMaxThreads ||
                s.self_stamp <= clk[tls_lane][s.thread]) {
                hb = i;
                break;
            }
            if (i == a.base)
                break;
        }
        lo = std::max(lo, hb);
        const unsigned span = static_cast<unsigned>(latest - lo) + 1;
        const unsigned back = choose(span); // 0 = newest
        const std::size_t idx = latest - back;
        const AtomicState::Store &s = storeAt(a, idx);
        a.last_read[tls_lane] =
            std::max(a.last_read[tls_lane], idx);
        if (acquiring(o) && s.has_sync)
            joinClock(s.sync_clock);
        note(" = " + num(s.value) +
             (back ? " [stale, " + std::to_string(back) + " behind]"
                   : ""));
        return s.value;
    }

    void
    atomicStore(AtomicState &a, std::uint64_t v, Order o)
    {
        if (aborting)
            return; // @p a may already be destroyed
        ensure(a);
        if (!park(sigOf(a, true),
                  atomicName(a) + ".store(" + num(v) + ", " +
                      ordName(o) + ")",
                  OnAbort::Plain))
            return; // aborting: @p a may already be destroyed
        pushStore(a, v, releasing(o), false);
        if (o == Order::SeqCst)
            a.floor = latestIndex(a);
        trim(a);
    }

    std::uint64_t
    atomicRmw(AtomicState &a, Rmw op, std::uint64_t operand, Order o)
    {
        if (aborting)
            return 0; // @p a may already be destroyed
        ensure(a);
        if (!park(sigOf(a, true),
                  atomicName(a) + "." + rmwName(op) + "(" +
                      num(operand) + ", " + ordName(o) + ")",
                  OnAbort::Plain))
            return 0; // aborting: @p a may already be destroyed
        const std::uint64_t old = a.stores.back().value;
        if (acquiring(o) && a.stores.back().has_sync)
            joinClock(a.stores.back().sync_clock);
        pushStore(a, applyRmw(op, old, operand), releasing(o), true);
        a.floor = latestIndex(a); // RMWs write through (TSO approx)
        trim(a);
        note(" -> " + num(old));
        return old;
    }

    void
    atomicWait(AtomicState &a, std::uint64_t old, Order o)
    {
        if (aborting)
            throw AbortSchedule{}; // @p a may already be destroyed
        ensure(a);
        park(sigOf(a, true),
             atomicName(a) + ".wait(" + num(old) + ")",
             OnAbort::Throw);
        for (;;) {
            const AtomicState::Store &latest = a.stores.back();
            if (latest.value != old) {
                a.last_read[tls_lane] = std::max(
                    a.last_read[tls_lane], latestIndex(a));
                if (acquiring(o) && latest.has_sync)
                    joinClock(latest.sync_clock);
                note(" -> saw " + num(latest.value));
                return;
            }
            a.waiters.push_back(tls_lane);
            Lane &ln = lanes[tls_lane];
            ln.blocked = true;
            ln.cause = Lane::Block::Futex;
            park(sigOf(a, true),
                 atomicName(a) + ".wait(" + num(old) +
                     ") [recheck]",
                 OnAbort::Throw);
        }
    }

    void
    atomicNotify(AtomicState &a, bool all)
    {
        if (aborting)
            return; // @p a may already be destroyed
        ensure(a);
        if (!park(sigOf(a, true),
                  atomicName(a) +
                      (all ? ".notify_all()" : ".notify_one()"),
                  OnAbort::Plain))
            return;
        unsigned woken = 0;
        while (!a.waiters.empty()) {
            const unsigned t = a.waiters.front();
            a.waiters.erase(a.waiters.begin());
            lanes[t].blocked = false;
            lanes[t].cause = Lane::Block::None;
            ++woken;
            if (!all)
                break;
        }
        note(" -> woke " + std::to_string(woken));
    }

    void
    mutexLock(MutexState &m)
    {
        if (aborting)
            throw AbortSchedule{}; // @p m may already be destroyed
        ensure(m);
        park(sigOf(m), mutexName(m) + ".lock()", OnAbort::Throw);
        for (;;) {
            if (m.locked_by < 0) {
                m.locked_by = static_cast<int>(tls_lane);
                if (m.has_sync)
                    joinClock(m.sync_clock);
                note(" -> acquired");
                return;
            }
            if (m.locked_by == static_cast<int>(tls_lane))
                failAndUnwind("deadlock: t" +
                              std::to_string(tls_lane) +
                              " re-locks " + mutexName(m) +
                              " it already holds");
            Lane &ln = lanes[tls_lane];
            ln.blocked = true;
            ln.cause = Lane::Block::Mutex;
            ln.wait_mutex = &m;
            park(sigOf(m), mutexName(m) + ".lock() [retry]",
                 OnAbort::Throw);
        }
    }

    bool
    mutexTryLock(MutexState &m)
    {
        // Pretend success during abort: the caller proceeds into its
        // critical section (whose unlock also no-ops) instead of
        // spinning on retries that will never be scheduled.
        if (aborting)
            return true;
        ensure(m);
        if (!park(sigOf(m), mutexName(m) + ".try_lock()",
                  OnAbort::Plain))
            return true;
        if (m.locked_by < 0) {
            m.locked_by = static_cast<int>(tls_lane);
            if (m.has_sync)
                joinClock(m.sync_clock);
            note(" -> true");
            return true;
        }
        note(" -> false");
        return false;
    }

    void
    mutexUnlock(MutexState &m)
    {
        if (aborting)
            return; // @p m may already be destroyed
        ensure(m);
        if (!park(sigOf(m), mutexName(m) + ".unlock()",
                  OnAbort::Plain))
            return;
        if (m.locked_by != static_cast<int>(tls_lane))
            failAndUnwind("unlock of " + mutexName(m) +
                          " by t" + std::to_string(tls_lane) +
                          ", which does not hold it");
        m.locked_by = -1;
        m.has_sync = true;
        m.sync_clock = clk[tls_lane];
    }

    // ------------------------------------------- race detection

    bool
    cellRead(CellState &c)
    {
        // False = aborting: the caller must not touch the guarded
        // data either — the cell may live in a destroyed frame.
        if (aborting)
            return false;
        ensure(c);
        if (!park(sigOf(c, false), cellName(c) + ".read",
                  OnAbort::Plain))
            return false;
        const Clock &me = clk[tls_lane];
        if (c.written && c.last_writer != tls_lane &&
            c.write_stamp > me[c.last_writer])
            failAndUnwind("data race on " + cellName(c) + ": t" +
                          std::to_string(tls_lane) +
                          " reads concurrently with t" +
                          std::to_string(c.last_writer) +
                          "'s write");
        c.read_stamps[tls_lane] = me[tls_lane];
        return true;
    }

    bool
    cellWrite(CellState &c)
    {
        if (aborting)
            return false; // see cellRead
        ensure(c);
        if (!park(sigOf(c, true), cellName(c) + ".write",
                  OnAbort::Plain))
            return false;
        const Clock &me = clk[tls_lane];
        if (c.written && c.last_writer != tls_lane &&
            c.write_stamp > me[c.last_writer])
            failAndUnwind("data race on " + cellName(c) + ": t" +
                          std::to_string(tls_lane) +
                          " writes concurrently with t" +
                          std::to_string(c.last_writer) +
                          "'s write");
        for (unsigned u = 0; u < kMaxThreads; ++u)
            if (u != tls_lane && c.read_stamps[u] > me[u])
                failAndUnwind("data race on " + cellName(c) +
                              ": t" + std::to_string(tls_lane) +
                              " writes concurrently with t" +
                              std::to_string(u) + "'s read");
        c.written = true;
        c.last_writer = tls_lane;
        c.write_stamp = me[tls_lane];
        return true;
    }

    // ------------------------------------------- body-level verbs

    void
    spawnLane(std::function<void()> fn)
    {
        park(OpSig{0, false, true}, "spawn", OnAbort::Throw);
        if (nlanes >= kMaxThreads)
            failAndUnwind("spawn: more than " +
                          std::to_string(kMaxThreads) +
                          " virtual threads");
        const unsigned id = nlanes++;
        armLane(id, std::move(fn));
        clk[id] = clk[tls_lane]; // thread-start edge
        note(" -> t" + std::to_string(id));
    }

    void
    joinLanes()
    {
        park(OpSig{0, false, true}, "join", OnAbort::Throw);
        for (;;) {
            bool all_done = true;
            for (unsigned u = 0; u < nlanes; ++u)
                if (u != tls_lane && lanes[u].live &&
                    lanes[u].phase != Lane::Phase::Done)
                    all_done = false;
            if (all_done) {
                for (unsigned u = 0; u < nlanes; ++u)
                    if (u != tls_lane && lanes[u].live)
                        joinClock(clk[u]); // thread-join edge
                note(" -> all done");
                return;
            }
            Lane &ln = lanes[tls_lane];
            ln.blocked = true;
            ln.cause = Lane::Block::Join;
            park(OpSig{0, false, true}, "join [wait]",
                 OnAbort::Throw);
        }
    }
};

} // namespace

// ------------------------------------------------------ public API

std::string
Result::report() const
{
    std::ostringstream os;
    if (ok) {
        os << "ok: " << schedules << " schedules, " << steps
           << " steps" << (exhausted ? " (budget exhausted)" : "");
    } else {
        os << "FAILED: " << failure << "\n  decisions: ["
           << decisions << "]\n  trace:\n"
           << trace;
    }
    return os.str();
}

Result
explore(const Options &opts, const std::function<void()> &body)
{
    if (tls_impl != nullptr) {
        std::fprintf(stderr,
                     "srb_model: nested explore() is unsupported\n");
        std::abort();
    }
    Impl impl;
    impl.opts = opts;
    impl.main_body = body;
    Result res;
    if (!opts.replay.empty()) {
        impl.replay_mode = true;
        if (!parseReplay(opts.replay, &impl.forced)) {
            res.ok = false;
            res.failure = "unparsable replay string: " + opts.replay;
            return res;
        }
    }
    for (;;) {
        if (impl.schedules >= opts.max_schedules) {
            res.exhausted = true;
            break;
        }
        const bool good = impl.runOne();
        if (!good) {
            res.ok = false;
            res.failure = impl.failure;
            res.decisions = impl.fail_decisions;
            res.trace = impl.fail_trace;
            break;
        }
        if (impl.replay_mode)
            break;
        if (!impl.advance())
            break;
    }
    res.schedules = impl.schedules;
    res.steps = impl.total_steps;
    impl.shutdownLanes();
    return res;
}

Result
explore(const std::function<void()> &body)
{
    return explore(Options{}, body);
}

void
spawn(std::function<void()> fn)
{
    if (tls_impl == nullptr) {
        std::fprintf(stderr,
                     "srb_model: spawn() outside explore()\n");
        std::abort();
    }
    tls_impl->spawnLane(std::move(fn));
}

void
joinAll()
{
    if (tls_impl == nullptr) {
        std::fprintf(stderr,
                     "srb_model: joinAll() outside explore()\n");
        std::abort();
    }
    tls_impl->joinLanes();
}

void
modelAssert(bool ok, const char *msg)
{
    Impl *impl = tls_impl;
    if (impl == nullptr) {
        if (!ok) {
            std::fprintf(stderr, "srb_model: assert failed: %s\n",
                         msg);
            std::abort();
        }
        return;
    }
    if (ok || impl->aborting)
        return;
    impl->fail(std::string("assertion failed: ") + msg);
    throw AbortSchedule{};
}

bool
active()
{
    return tls_impl != nullptr;
}

unsigned
laneIndex()
{
    return tls_impl != nullptr ? tls_lane : 0u;
}

unsigned
preemptionBoundFromEnv(unsigned fallback)
{
    const char *env = std::getenv("SRBENES_MODEL_PREEMPTIONS");
    if (env == nullptr || *env == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0')
        return fallback;
    return static_cast<unsigned>(std::min(8ul, std::max(1ul, v)));
}

// --------------------------------------------------- shim surface

std::uint64_t
atomicLoad(AtomicState &a, Order o)
{
    if (tls_impl == nullptr)
        return a.plain;
    return tls_impl->atomicLoad(a, o);
}

void
atomicStore(AtomicState &a, std::uint64_t v, Order o)
{
    if (tls_impl == nullptr) {
        a.plain = v;
        return;
    }
    tls_impl->atomicStore(a, v, o);
}

std::uint64_t
atomicRmw(AtomicState &a, Rmw op, std::uint64_t operand, Order o)
{
    if (tls_impl == nullptr) {
        const std::uint64_t old = a.plain;
        a.plain = applyRmw(op, old, operand);
        return old;
    }
    return tls_impl->atomicRmw(a, op, operand, o);
}

void
atomicWait(AtomicState &a, std::uint64_t old, Order o)
{
    if (tls_impl == nullptr)
        return; // sequential: nobody can change the value
    tls_impl->atomicWait(a, old, o);
}

void
atomicNotify(AtomicState &a, bool all)
{
    if (tls_impl != nullptr)
        tls_impl->atomicNotify(a, all);
}

void
mutexLock(MutexState &m)
{
    if (tls_impl != nullptr)
        tls_impl->mutexLock(m);
}

bool
mutexTryLock(MutexState &m)
{
    if (tls_impl == nullptr)
        return true;
    return tls_impl->mutexTryLock(m);
}

void
mutexUnlock(MutexState &m)
{
    if (tls_impl != nullptr)
        tls_impl->mutexUnlock(m);
}

bool
cellRead(CellState &c)
{
    if (tls_impl == nullptr)
        return true;
    return tls_impl->cellRead(c);
}

bool
cellWrite(CellState &c)
{
    if (tls_impl == nullptr)
        return true;
    return tls_impl->cellWrite(c);
}

} // namespace model
} // namespace srbenes
