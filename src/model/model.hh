/**
 * @file
 * srb_model: a loom/relacy-style deterministic concurrency model
 * checker for the repo's lock-free kernels — the runtime half of the
 * concurrency-correctness wall (clang thread-safety and srb-lint are
 * the static half, tsan the sampled-schedule half).
 *
 * tsan can only condemn the interleavings the OS happens to run;
 * this checker OWNS the scheduler. Code under test runs on virtual
 * threads (real std::threads coordinated so exactly one executes at
 * a time), every synchronization operation is a scheduling point,
 * and a DFS explorer re-executes the test body over all bounded
 * interleavings:
 *
 *  - thread schedules, enumerated with PREEMPTION BOUNDING (a
 *    context switch while the running thread is still enabled costs
 *    one unit of a configurable budget) and SLEEP-SET pruning
 *    (a sibling schedule that merely commutes independent operations
 *    is never re-executed);
 *  - load visibility, via per-location STORE BUFFERS: a relaxed or
 *    acquire load may read any coherence-allowed stale store, and
 *    each choice forks the exploration. RMWs and seq_cst stores
 *    write through (x86-TSO-flavored; a documented approximation of
 *    the full C++11 model — see docs/model-checking.md);
 *  - release/acquire edges and mutexes maintain VECTOR CLOCKS, which
 *    drive both staleness (what a load may legally return) and data
 *    race detection on plain `sync::Cell` data;
 *  - DEADLOCKS (including lost futex wakeups: a waiter that nobody
 *    will ever notify) and LIVELOCKS (step-budget exhaustion) are
 *    reported with the failing schedule.
 *
 * On failure the checker prints a replayable trace: the decision
 * vector (thread picks and load choices, replayable via
 * Options::replay) plus the per-step operation log.
 *
 * Code is ported onto the checker through `srbenes::sync`
 * (common/sync.hh): `sync::Atomic`, `sync::Mutex`, `sync::Cell`
 * compile to plain std::atomic/std::mutex/T in production and route
 * here under -DSRBENES_MODEL. Model test targets recompile the
 * component sources with that define; production targets never see
 * this header.
 *
 * Limits (all documented, all deliberate): at most kMaxThreads
 * virtual threads; test bodies must be deterministic (no wall
 * clock, no unseeded randomness); objects under test must be
 * constructed inside the body so each schedule starts fresh (state
 * constructed outside is reset to its current plain value on first
 * touch of a new schedule).
 */

#ifndef SRBENES_MODEL_MODEL_HH
#define SRBENES_MODEL_MODEL_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace srbenes
{
namespace model
{

/** Virtual threads per exploration (main body + spawned). */
constexpr unsigned kMaxThreads = 4;

/** One vector clock: component t counts thread t's executed steps. */
using Clock = std::array<std::uint32_t, kMaxThreads>;

/** Memory orders the shim forwards (seq_cst covers consume too). */
enum class Order
{
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
};

/** Read-modify-write flavors of Runtime::atomicRmw. */
enum class Rmw
{
    Add,
    Sub,
    Exchange,
};

/**
 * Dependence signature of a pending operation, for sleep sets: two
 * ops commute iff neither is global and they touch different
 * locations or are both reads. Locations are stable per-schedule
 * ids (kind tag | first-touch index), not raw pointers, so sleep
 * entries stay meaningful across re-executions.
 */
struct OpSig
{
    std::uint32_t loc = 0;
    bool write = false;
    bool global = false;
};

/**
 * Model-side state of one sync::Atomic. Holds the full store
 * history of the current schedule; `plain` is the authoritative
 * value outside a model run (and mirrors the newest store inside
 * one). Reset lazily when touched under a new schedule epoch.
 */
struct AtomicState
{
    struct Store
    {
        std::uint64_t value = 0;
        /** Writing thread; kMaxThreads = the initial value. */
        unsigned thread = kMaxThreads;
        /** Writer's own clock component at the store (hb floor). */
        std::uint32_t self_stamp = 0;
        /** True when an acquire load of this store synchronizes. */
        bool has_sync = false;
        /** Clock an acquire reader joins (release/RMW chain). */
        Clock sync_clock{};
    };

    explicit AtomicState(std::uint64_t init) : plain(init) {}

    std::uint64_t plain;
    std::uint64_t epoch = 0;
    unsigned id = 0; //!< per-schedule display id; 0 = unassigned
    /** Modification order; absolute index = base + position. */
    std::vector<Store> stores;
    std::size_t base = 0;
    /** Oldest absolute index any load may still read (write-through
     *  floor: RMWs and seq_cst stores advance it). */
    std::size_t floor = 0;
    /** Per-thread coherence floor: last absolute index read. */
    std::array<std::size_t, kMaxThreads> last_read{};
    /** Lanes blocked in atomicWait on this location. */
    std::vector<unsigned> waiters;
};

/** Model-side state of one sync::Cell (plain, race-checked data). */
struct CellState
{
    std::uint64_t epoch = 0;
    unsigned id = 0;
    bool written = false;
    unsigned last_writer = 0;
    std::uint32_t write_stamp = 0;
    /** Per-thread own-component stamp of the last read. */
    std::array<std::uint32_t, kMaxThreads> read_stamps{};
};

/** Model-side state of one sync::Mutex. */
struct MutexState
{
    std::uint64_t epoch = 0;
    unsigned id = 0;
    int locked_by = -1;
    bool has_sync = false;
    Clock sync_clock{};
};

/** Exploration bounds and knobs. */
struct Options
{
    /** Schedule label used in failure reports. */
    const char *name = "";
    /** Max context switches away from a still-enabled thread. */
    unsigned preemption_bound = 3;
    /** Schedules explored before giving up (exhausted flag). */
    std::uint64_t max_schedules = 1u << 20;
    /** Scheduling points per schedule (livelock bound). */
    unsigned max_steps = 20000;
    /** Sleep-set pruning of commuting sibling schedules. */
    bool sleep_sets = true;
    /**
     * Comma-separated decision vector from a failure report; when
     * non-empty, runs exactly the one schedule it describes.
     */
    std::string replay;
};

/** Outcome of one explore() call. */
struct Result
{
    bool ok = true;
    /** Schedule budget ran out before the DFS finished. */
    bool exhausted = false;
    std::uint64_t schedules = 0;
    std::uint64_t steps = 0;
    /** Human-readable failure kind + message; empty when ok. */
    std::string failure;
    /** Replayable decision vector of the failing schedule. */
    std::string decisions;
    /** Per-step operation log of the failing schedule. */
    std::string trace;

    /** The failure report tests print on unexpected outcomes. */
    std::string report() const;
};

/**
 * Explore every bounded interleaving of @p body. The body runs on
 * virtual thread 0 and may spawn() up to kMaxThreads - 1 workers;
 * it is re-executed once per schedule, so all state under test must
 * be (re)constructed inside it. The first failing schedule stops
 * the exploration and is described in the Result.
 */
Result explore(const Options &opts,
               const std::function<void()> &body);

/** explore() with default options. */
Result explore(const std::function<void()> &body);

/** Spawn a virtual thread (inside a body only). */
void spawn(std::function<void()> fn);

/**
 * Block until every spawned thread finished (inside a body only).
 * The natural last statement before a body's invariant checks.
 */
void joinAll();

/**
 * Assert an invariant inside a model run: a false @p ok fails the
 * current schedule, records @p msg, and aborts the exploration.
 * Outside a run it is a fatal() assert.
 */
void modelAssert(bool ok, const char *msg);

/** True while the calling thread is a virtual thread of a run. */
bool active();

/**
 * Preemption bound for model suites: SRBENES_MODEL_PREEMPTIONS
 * (clamped to [1, 8]) when set — the nightly exhaustive sweep's
 * knob — else @p fallback.
 */
unsigned preemptionBoundFromEnv(unsigned fallback);

/**
 * Shim entry points. sync.hh calls these under SRBENES_MODEL; each
 * one is a scheduling point when the calling thread is a virtual
 * thread of an active exploration, and a plain sequential operation
 * on the stored `plain` value otherwise (so model-built code still
 * works outside explore(), e.g. in test setup and teardown).
 */
std::uint64_t atomicLoad(AtomicState &a, Order o);
void atomicStore(AtomicState &a, std::uint64_t v, Order o);

/** Returns the OLD value. */
std::uint64_t atomicRmw(AtomicState &a, Rmw op, std::uint64_t operand,
                        Order o);

/**
 * Kernel-futex semantics: blocks while the LATEST value still equals
 * @p old, woken only by atomicNotify — a plain store does not wake
 * (that is precisely what makes lost-wakeup bugs reproducible: a
 * waiter nobody will ever notify is reported as a deadlock).
 */
void atomicWait(AtomicState &a, std::uint64_t old, Order o);
void atomicNotify(AtomicState &a, bool all);

void mutexLock(MutexState &m);
bool mutexTryLock(MutexState &m);
void mutexUnlock(MutexState &m);

/**
 * A false return means the schedule is aborting and the caller must
 * not touch the guarded data either — during abort teardown the cell
 * may live in an already-unwound lane's destroyed stack frame.
 */
[[nodiscard]] bool cellRead(CellState &c);
[[nodiscard]] bool cellWrite(CellState &c);

/**
 * Dense virtual-thread index (0 when inactive): the model-mode
 * stand-in for per-real-thread sharding keys, so sharded structures
 * land on deterministic shards under exploration.
 */
unsigned laneIndex();

} // namespace model
} // namespace srbenes

#endif // SRBENES_MODEL_MODEL_HH
