#include "gates/benes_gates.hh"

#include "common/logging.hh"
#include "core/topology.hh"

namespace srbenes
{

BenesGateModel::BenesGateModel(unsigned n, bool with_omega_input)
    : n_(n), with_omega_(with_omega_input)
{
    if (n < 1 || n > 12)
        fatal("gate model size n = %u out of supported range "
              "(netlists get large)", n);

    const BenesTopology topo(n);
    const Word size = topo.numLines();

    // Primary inputs: the n tag bits of every line, then the omega
    // mode flag.
    inputs_.assign(size, std::vector<NodeId>(n));
    for (Word line = 0; line < size; ++line)
        for (unsigned b = 0; b < n; ++b)
            inputs_[line][b] = net_.addInput();
    NodeId not_omega = 0;
    if (with_omega_) {
        omega_input_ = net_.addInput();
        not_omega = net_.addNot(omega_input_);
    }

    // cur[line][bit]: the node currently driving that tag bit.
    std::vector<std::vector<NodeId>> cur = inputs_;
    std::vector<std::vector<NodeId>> next(size,
                                          std::vector<NodeId>(n));

    for (unsigned s = 0; s < topo.numStages(); ++s) {
        const unsigned b = topo.controlBit(s);
        const bool omega_forced = with_omega_ && s + 1 < n;
        for (Word i = 0; i < topo.switchesPerStage(); ++i) {
            // The self-setting "logic": the control is just the
            // upper tag's bit b, ANDed with !omega in the forced
            // stages.
            NodeId control = cur[2 * i][b];
            if (omega_forced)
                control = net_.addAnd(control, not_omega);

            for (unsigned t = 0; t < n; ++t) {
                const NodeId up = cur[2 * i][t];
                const NodeId lo = cur[2 * i + 1][t];
                next[2 * i][t] = net_.addMux(control, up, lo);
                next[2 * i + 1][t] = net_.addMux(control, lo, up);
            }
        }

        // Fixed wiring: pure renaming, no gates.
        if (s + 1 < topo.numStages()) {
            for (Word line = 0; line < size; ++line)
                cur[topo.wireToNext(s, line)] = next[line];
        } else {
            cur = next;
        }
    }
    outputs_ = cur;
}

std::vector<Word>
BenesGateModel::simulate(const Permutation &d, bool omega_mode) const
{
    const Word size = numLines();
    if (d.size() != size)
        fatal("permutation size %zu does not match gate model "
              "N = %llu", d.size(),
              static_cast<unsigned long long>(size));

    std::vector<std::uint8_t> in;
    in.reserve(size * n_ + (with_omega_ ? 1 : 0));
    for (Word line = 0; line < size; ++line)
        for (unsigned b = 0; b < n_; ++b)
            in.push_back(static_cast<std::uint8_t>(bit(d[line], b)));
    if (with_omega_)
        in.push_back(static_cast<std::uint8_t>(omega_mode));
    else if (omega_mode)
        fatal("omega mode requested on a model built without the "
              "omega input");

    const auto values = net_.evaluate(in);

    std::vector<Word> tags(size, 0);
    for (Word line = 0; line < size; ++line)
        for (unsigned b = 0; b < n_; ++b)
            tags[line] |= Word{values[outputs_[line][b]]} << b;
    return tags;
}

} // namespace srbenes
