#include "gates/pipelined_gates.hh"

#include "common/logging.hh"
#include "core/topology.hh"

namespace srbenes
{

PipelinedBenesGateModel::PipelinedBenesGateModel(unsigned n)
    : n_(n)
{
    if (n < 1 || n > 10)
        fatal("pipelined gate model size n = %u out of supported "
              "range", n);

    const BenesTopology topo(n);
    const Word size = topo.numLines();

    inputs_.assign(size, std::vector<NodeId>(n));
    for (Word line = 0; line < size; ++line)
        for (unsigned b = 0; b < n; ++b)
            inputs_[line][b] = net_.addInput();

    std::vector<std::vector<NodeId>> cur = inputs_;
    std::vector<std::vector<NodeId>> next(size,
                                          std::vector<NodeId>(n));

    for (unsigned s = 0; s < topo.numStages(); ++s) {
        const unsigned b = topo.controlBit(s);
        for (Word i = 0; i < topo.switchesPerStage(); ++i) {
            const NodeId control = cur[2 * i][b];
            for (unsigned t = 0; t < n; ++t) {
                const NodeId up = cur[2 * i][t];
                const NodeId lo = cur[2 * i + 1][t];
                // Mux, then the stage's register bank.
                next[2 * i][t] =
                    net_.addReg(net_.addMux(control, up, lo));
                next[2 * i + 1][t] =
                    net_.addReg(net_.addMux(control, lo, up));
            }
        }
        if (s + 1 < topo.numStages()) {
            for (Word line = 0; line < size; ++line)
                cur[topo.wireToNext(s, line)] = next[line];
        } else {
            cur = next;
        }
    }
    outputs_ = cur;
}

std::vector<std::vector<Word>>
PipelinedBenesGateModel::simulateStream(
    const std::vector<Permutation> &vectors,
    unsigned extra_cycles) const
{
    if (vectors.empty())
        fatal("simulateStream needs at least one vector");
    const Word size = numLines();
    std::vector<std::uint8_t> reg_state(net_.numRegs(), 0);
    std::vector<std::vector<Word>> per_cycle;

    const std::size_t cycles = vectors.size() + extra_cycles;
    for (std::size_t c = 0; c < cycles; ++c) {
        std::vector<std::uint8_t> in;
        in.reserve(size * n_);
        const Permutation &d =
            vectors[std::min(c, vectors.size() - 1)];
        const bool live = c < vectors.size();
        for (Word line = 0; line < size; ++line)
            for (unsigned b = 0; b < n_; ++b)
                in.push_back(static_cast<std::uint8_t>(
                    live ? bit(d[line], b) : 0));

        const auto values = net_.evaluateSeq(in, reg_state);

        std::vector<Word> tags(size, 0);
        for (Word line = 0; line < size; ++line)
            for (unsigned b = 0; b < n_; ++b)
                tags[line] |= Word{values[outputs_[line][b]]} << b;
        per_cycle.push_back(std::move(tags));
    }
    return per_cycle;
}

} // namespace srbenes
