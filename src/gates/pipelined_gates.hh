/**
 * @file
 * Sequential gate-level model of the pipelined fabric (Section IV).
 *
 * "By providing registers between the stages of B(n), the network
 * may operate in pipelined mode." This model inserts a flip-flop
 * bank after every stage's muxes and clocks destination-tag vectors
 * through: one vector enters per clock, the first emerges after
 * 2n-1 clocks, and -- the hardware point the behavioral pipeline
 * cannot show -- the combinational path between any two register
 * banks is EXACTLY ONE MUX LEVEL, so the achievable clock period is
 * a constant independent of N. Throughput therefore scales with N
 * at a fixed clock, which is the whole argument for pipelining the
 * fabric.
 */

#ifndef SRBENES_GATES_PIPELINED_GATES_HH
#define SRBENES_GATES_PIPELINED_GATES_HH

#include <vector>

#include "gates/netlist.hh"
#include "perm/permutation.hh"

namespace srbenes
{

class PipelinedBenesGateModel
{
  public:
    explicit PipelinedBenesGateModel(unsigned n);

    unsigned n() const { return n_; }
    Word numLines() const { return Word{1} << n_; }
    const Netlist &netlist() const { return net_; }

    /** Fill latency in clocks: one register bank per stage. */
    unsigned latency() const { return 2 * n_ - 1; }

    /** Flip-flops: (2n-1) banks of N n-bit tags. */
    std::size_t numRegisters() const { return net_.numRegs(); }

    /**
     * Longest combinational path between registers (or pins): the
     * achievable clock period in gate delays. One mux level by
     * construction.
     */
    unsigned clockPathDepth() const { return net_.criticalDepth(); }

    /**
     * Clock @p vectors through the model (one injected per cycle)
     * and return the output tag vector observed at each cycle;
     * entry c is the outputs at cycle c (vectors before the fill
     * latency carry pipeline garbage, as in real hardware fed
     * without valid bits).
     */
    std::vector<std::vector<Word>>
    simulateStream(const std::vector<Permutation> &vectors,
                   unsigned extra_cycles) const;

  private:
    unsigned n_;
    Netlist net_;
    std::vector<std::vector<NodeId>> inputs_;
    std::vector<std::vector<NodeId>> outputs_;
};

} // namespace srbenes

#endif // SRBENES_GATES_PIPELINED_GATES_HH
