/**
 * @file
 * A minimal combinational-netlist substrate.
 *
 * The paper's central hardware claim is that self-routing needs only
 * "some simple logic" per switch and that "the total switch setting
 * and delay time for the N input/output self-routing network is
 * O(log N)". The behavioral simulator (src/core) cannot witness
 * that claim at the gate level, so this module provides a tiny
 * structural netlist: primitive gates, topological evaluation, gate
 * counts per type, and per-node logic depth. src/gates/benes_gates
 * builds the complete fabric out of these primitives and the tests
 * cross-check it bit-for-bit against the behavioral model.
 *
 * Gates must be created in topological order (every fanin already
 * defined), which the builders naturally do; evaluation is then a
 * single linear pass.
 */

#ifndef SRBENES_GATES_NETLIST_HH
#define SRBENES_GATES_NETLIST_HH

#include <array>
#include <cstdint>
#include <vector>

namespace srbenes
{

/** Primitive operations. Mux selects a (sel = 0) or b (sel = 1) and
 *  counts as one gate of unit depth (a standard 2:1 mux cell). Reg
 *  is a D flip-flop: its value is the fanin's value of the PREVIOUS
 *  clock, so it breaks the combinational path (depth 0). */
enum class GateOp : std::uint8_t
{
    Input,
    Const0,
    Const1,
    Not,
    And,
    Or,
    Xor,
    Mux,
    Reg,
};

/** Handle to a netlist node. */
using NodeId = std::uint32_t;

class Netlist
{
  public:
    /** Create a primary input; returns its node. */
    NodeId addInput();

    /** Constant nodes (shared). */
    NodeId constant(bool value);

    NodeId addNot(NodeId a);
    NodeId addAnd(NodeId a, NodeId b);
    NodeId addOr(NodeId a, NodeId b);
    NodeId addXor(NodeId a, NodeId b);
    /** 2:1 mux: sel = 0 -> a, sel = 1 -> b. */
    NodeId addMux(NodeId sel, NodeId a, NodeId b);
    /** D flip-flop capturing @p d each clock. */
    NodeId addReg(NodeId d);

    /** Number of flip-flops in the netlist. */
    std::size_t numRegs() const { return reg_order_.size(); }

    std::size_t numNodes() const { return ops_.size(); }
    std::size_t numInputs() const { return num_inputs_; }

    /** Combinational gates (everything but inputs and constants). */
    std::size_t numGates() const;

    /** Gates of one type. */
    std::size_t countOf(GateOp op) const;

    /**
     * Logic depth of a node: inputs and constants are depth 0, every
     * gate is 1 + max fanin depth.
     */
    unsigned depthOf(NodeId node) const { return depth_[node]; }

    /** Maximum depth over all nodes (the critical path). */
    unsigned criticalDepth() const;

    /**
     * Evaluate the whole netlist combinationally for one input
     * assignment (in input creation order) and return every node's
     * value; flip-flops read as 0 (a one-shot with a cleared
     * state).
     */
    std::vector<std::uint8_t>
    evaluate(const std::vector<std::uint8_t> &inputs) const;

    /**
     * One clock of sequential evaluation: flip-flops present the
     * values in @p reg_state (indexed in Reg creation order), the
     * combinational fabric settles, and @p reg_state is replaced by
     * the captured next-state. Returns every node's value.
     */
    std::vector<std::uint8_t>
    evaluateSeq(const std::vector<std::uint8_t> &inputs,
                std::vector<std::uint8_t> &reg_state) const;

  private:
    NodeId add(GateOp op, NodeId a, NodeId b, NodeId c);

    std::vector<GateOp> ops_;
    std::vector<std::array<NodeId, 3>> fanins_;
    std::vector<unsigned> depth_;
    std::vector<NodeId> input_order_;
    std::vector<NodeId> reg_order_;
    std::size_t num_inputs_ = 0;
    NodeId const0_ = 0, const1_ = 0;
    bool have_const0_ = false, have_const1_ = false;
};

} // namespace srbenes

#endif // SRBENES_GATES_NETLIST_HH
