#include "gates/baseline_gates.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/** Balanced OR-reduction of a node list. */
NodeId
orTree(Netlist &net, std::vector<NodeId> nodes)
{
    if (nodes.empty())
        return net.constant(false);
    while (nodes.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t k = 0; k + 1 < nodes.size(); k += 2)
            next.push_back(net.addOr(nodes[k], nodes[k + 1]));
        if (nodes.size() % 2)
            next.push_back(nodes.back());
        nodes.swap(next);
    }
    return nodes.front();
}

std::vector<std::uint8_t>
tagBits(const Permutation &d, unsigned n)
{
    std::vector<std::uint8_t> in;
    in.reserve(d.size() * n);
    for (Word line = 0; line < d.size(); ++line)
        for (unsigned b = 0; b < n; ++b)
            in.push_back(static_cast<std::uint8_t>(bit(d[line], b)));
    return in;
}

} // namespace

OmegaGateModel::OmegaGateModel(unsigned n)
    : n_(n)
{
    if (n < 1 || n > 12)
        fatal("omega gate model size n = %u out of supported range",
              n);
    const Word size = numLines();

    inputs_.assign(size, std::vector<NodeId>(n));
    for (Word line = 0; line < size; ++line)
        for (unsigned b = 0; b < n; ++b)
            inputs_[line][b] = net_.addInput();

    std::vector<std::vector<NodeId>> cur = inputs_;
    std::vector<std::vector<NodeId>> next(size,
                                          std::vector<NodeId>(n));
    std::vector<NodeId> conflicts;

    for (unsigned s = 0; s < n; ++s) {
        // Perfect shuffle of the line positions: pure renaming.
        for (Word line = 0; line < size; ++line)
            next[shuffle(line, n)] = cur[line];
        cur = next;

        const unsigned rb = n - 1 - s;
        for (Word i = 0; i < size / 2; ++i) {
            const NodeId pa = cur[2 * i][rb];
            const NodeId pb = cur[2 * i + 1][rb];
            // Swap when the upper input requests the lower port and
            // there is no conflict: pa AND NOT pb.
            const NodeId control =
                net_.addAnd(pa, net_.addNot(pb));
            // Conflict: both request the same port (XNOR).
            conflicts.push_back(
                net_.addNot(net_.addXor(pa, pb)));
            for (unsigned t = 0; t < n; ++t) {
                const NodeId up = cur[2 * i][t];
                const NodeId lo = cur[2 * i + 1][t];
                next[2 * i][t] = net_.addMux(control, up, lo);
                next[2 * i + 1][t] = net_.addMux(control, lo, up);
            }
        }
        cur = next;
    }
    outputs_ = cur;
    blocked_ = orTree(net_, std::move(conflicts));
}

OmegaGateResult
OmegaGateModel::simulate(const Permutation &d) const
{
    if (d.size() != numLines())
        fatal("permutation size %zu does not match gate model", d.size());
    const auto values = net_.evaluate(tagBits(d, n_));

    OmegaGateResult res;
    res.output_tags.assign(numLines(), 0);
    for (Word line = 0; line < numLines(); ++line)
        for (unsigned b = 0; b < n_; ++b)
            res.output_tags[line] |=
                Word{values[outputs_[line][b]]} << b;
    res.blocked = values[blocked_] != 0;
    return res;
}

BatcherGateModel::BatcherGateModel(unsigned n)
    : n_(n)
{
    if (n < 1 || n > 8)
        fatal("Batcher gate model size n = %u out of supported "
              "range (netlists get large)", n);
    const Word size = numLines();

    inputs_.assign(size, std::vector<NodeId>(n));
    for (Word line = 0; line < size; ++line)
        for (unsigned b = 0; b < n; ++b)
            inputs_[line][b] = net_.addInput();

    auto cur = inputs_;

    // Ripple magnitude comparator: gt(A, B), MSB first. Depth
    // Theta(n) per comparator stage; a carry-lookahead-style tree
    // would reach Theta(log n) at more gates -- either way, a
    // Batcher stage is far deeper than the Benes single-mux stage.
    auto greater = [this](const std::vector<NodeId> &a,
                          const std::vector<NodeId> &b) {
        NodeId gt = net_.constant(false);
        NodeId eq = net_.constant(true);
        for (unsigned t = n_; t-- > 0;) {
            const NodeId a_gt_b =
                net_.addAnd(a[t], net_.addNot(b[t]));
            gt = net_.addOr(gt, net_.addAnd(eq, a_gt_b));
            eq = net_.addAnd(eq,
                             net_.addNot(net_.addXor(a[t], b[t])));
        }
        return gt;
    };

    for (std::size_t k = 2; k <= size; k <<= 1) {
        for (std::size_t j = k >> 1; j > 0; j >>= 1) {
            auto next = cur;
            for (std::size_t i = 0; i < size; ++i) {
                const std::size_t l = i ^ j;
                if (l <= i)
                    continue;
                const bool ascending = (i & k) == 0;
                const NodeId gt = greater(cur[i], cur[l]);
                const NodeId control =
                    ascending ? gt : net_.addNot(gt);
                for (unsigned t = 0; t < n; ++t) {
                    next[i][t] =
                        net_.addMux(control, cur[i][t], cur[l][t]);
                    next[l][t] =
                        net_.addMux(control, cur[l][t], cur[i][t]);
                }
            }
            cur = next;
        }
    }
    outputs_ = cur;
}

std::vector<Word>
BatcherGateModel::simulate(const Permutation &d) const
{
    if (d.size() != numLines())
        fatal("permutation size %zu does not match gate model", d.size());
    const auto values = net_.evaluate(tagBits(d, n_));

    std::vector<Word> tags(numLines(), 0);
    for (Word line = 0; line < numLines(); ++line)
        for (unsigned b = 0; b < n_; ++b)
            tags[line] |= Word{values[outputs_[line][b]]} << b;
    return tags;
}

} // namespace srbenes
