#include "gates/netlist.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srbenes
{

NodeId
Netlist::add(GateOp op, NodeId a, NodeId b, NodeId c)
{
    const NodeId id = static_cast<NodeId>(ops_.size());
    for (NodeId fi : {a, b, c})
        if (fi != id && fi >= id)
            panic("netlist fanin %u not yet defined", fi);
    ops_.push_back(op);
    fanins_.push_back({a, b, c});

    unsigned depth = 0;
    switch (op) {
      case GateOp::Input:
      case GateOp::Const0:
      case GateOp::Const1:
        break;
      case GateOp::Not:
        depth = depth_[a] + 1;
        break;
      case GateOp::And:
      case GateOp::Or:
      case GateOp::Xor:
        depth = std::max(depth_[a], depth_[b]) + 1;
        break;
      case GateOp::Mux:
        depth = std::max({depth_[a], depth_[b], depth_[c]}) + 1;
        break;
      case GateOp::Reg:
        break; // flip-flops break the combinational path
    }
    depth_.push_back(depth);
    return id;
}

NodeId
Netlist::addInput()
{
    const NodeId id = add(GateOp::Input, 0, 0, 0);
    input_order_.push_back(id);
    ++num_inputs_;
    return id;
}

NodeId
Netlist::constant(bool value)
{
    if (value) {
        if (!have_const1_) {
            const1_ = add(GateOp::Const1, 0, 0, 0);
            have_const1_ = true;
        }
        return const1_;
    }
    if (!have_const0_) {
        const0_ = add(GateOp::Const0, 0, 0, 0);
        have_const0_ = true;
    }
    return const0_;
}

NodeId
Netlist::addNot(NodeId a)
{
    return add(GateOp::Not, a, 0, 0);
}

NodeId
Netlist::addAnd(NodeId a, NodeId b)
{
    return add(GateOp::And, a, b, 0);
}

NodeId
Netlist::addOr(NodeId a, NodeId b)
{
    return add(GateOp::Or, a, b, 0);
}

NodeId
Netlist::addXor(NodeId a, NodeId b)
{
    return add(GateOp::Xor, a, b, 0);
}

NodeId
Netlist::addMux(NodeId sel, NodeId a, NodeId b)
{
    return add(GateOp::Mux, sel, a, b);
}

NodeId
Netlist::addReg(NodeId d)
{
    const NodeId id = add(GateOp::Reg, d, 0, 0);
    reg_order_.push_back(id);
    return id;
}

std::size_t
Netlist::numGates() const
{
    std::size_t gates = 0;
    for (GateOp op : ops_)
        gates += op != GateOp::Input && op != GateOp::Const0 &&
                 op != GateOp::Const1 && op != GateOp::Reg;
    return gates;
}

std::size_t
Netlist::countOf(GateOp op) const
{
    return static_cast<std::size_t>(
        std::count(ops_.begin(), ops_.end(), op));
}

unsigned
Netlist::criticalDepth() const
{
    unsigned depth = 0;
    for (unsigned d : depth_)
        depth = std::max(depth, d);
    return depth;
}

std::vector<std::uint8_t>
Netlist::evaluate(const std::vector<std::uint8_t> &inputs) const
{
    std::vector<std::uint8_t> cleared(numRegs(), 0);
    return evaluateSeq(inputs, cleared);
}

std::vector<std::uint8_t>
Netlist::evaluateSeq(const std::vector<std::uint8_t> &inputs,
                     std::vector<std::uint8_t> &reg_state) const
{
    if (inputs.size() != num_inputs_)
        fatal("netlist expects %zu inputs, got %zu", num_inputs_,
              inputs.size());
    if (reg_state.size() != numRegs())
        fatal("netlist has %zu flip-flops, state holds %zu",
              numRegs(), reg_state.size());

    std::vector<std::uint8_t> value(ops_.size(), 0);
    std::size_t next_input = 0, next_reg = 0;
    for (std::size_t id = 0; id < ops_.size(); ++id) {
        const auto &fi = fanins_[id];
        switch (ops_[id]) {
          case GateOp::Input:
            value[id] = inputs[next_input++] & 1;
            break;
          case GateOp::Const0:
            value[id] = 0;
            break;
          case GateOp::Const1:
            value[id] = 1;
            break;
          case GateOp::Not:
            value[id] = value[fi[0]] ^ 1;
            break;
          case GateOp::And:
            value[id] = value[fi[0]] & value[fi[1]];
            break;
          case GateOp::Or:
            value[id] = value[fi[0]] | value[fi[1]];
            break;
          case GateOp::Xor:
            value[id] = value[fi[0]] ^ value[fi[1]];
            break;
          case GateOp::Mux:
            value[id] = value[fi[0]] ? value[fi[2]] : value[fi[1]];
            break;
          case GateOp::Reg:
            value[id] = reg_state[next_reg++] & 1;
            break;
        }
    }
    // Capture next-state: each flip-flop latches its fanin's
    // settled value. (Fanins topologically precede the Reg node, so
    // this models registers at stage boundaries; a feedback path
    // would need forward references, which add() rejects.)
    for (std::size_t k = 0; k < reg_order_.size(); ++k)
        reg_state[k] = value[fanins_[reg_order_[k]][0]];
    return value;
}

} // namespace srbenes
