/**
 * @file
 * Gate-level models of the comparison fabrics, so E9's delay/cost
 * argument is made at gate granularity for every network the paper
 * discusses:
 *
 *  - OmegaGateModel: n shuffle-exchange stages; a switch's control
 *    is the upper input's current routing bit (a wire), one mux
 *    level per stage -- plus a per-switch conflict detector (XNOR
 *    of the two routing bits, OR-reduced to a global blocked flag);
 *  - BatcherGateModel: n(n+1)/2 comparator stages; each comparator
 *    must COMPARE two n-bit tags, so a stage is not one mux level
 *    but an O(log n)-deep comparator tree followed by the exchange
 *    muxes. The measured critical path makes the hidden factor in
 *    "Batcher is also self-routing" explicit:
 *    stages * (comparator depth + 1) gate levels.
 *
 * Both are evaluated bit-for-bit against their behavioral models in
 * the tests.
 */

#ifndef SRBENES_GATES_BASELINE_GATES_HH
#define SRBENES_GATES_BASELINE_GATES_HH

#include <vector>

#include "gates/netlist.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** Result of a gate-level omega simulation. */
struct OmegaGateResult
{
    std::vector<Word> output_tags;
    bool blocked = false; //!< some switch saw a port conflict
};

class OmegaGateModel
{
  public:
    explicit OmegaGateModel(unsigned n);

    unsigned n() const { return n_; }
    Word numLines() const { return Word{1} << n_; }
    const Netlist &netlist() const { return net_; }
    unsigned criticalDepth() const { return net_.criticalDepth(); }

    OmegaGateResult simulate(const Permutation &d) const;

  private:
    unsigned n_;
    Netlist net_;
    std::vector<std::vector<NodeId>> inputs_;
    std::vector<std::vector<NodeId>> outputs_;
    NodeId blocked_ = 0;
};

class BatcherGateModel
{
  public:
    explicit BatcherGateModel(unsigned n);

    unsigned n() const { return n_; }
    Word numLines() const { return Word{1} << n_; }
    const Netlist &netlist() const { return net_; }
    unsigned criticalDepth() const { return net_.criticalDepth(); }
    unsigned comparatorStages() const { return n_ * (n_ + 1) / 2; }

    /** Always sorts: returns the tag at each output. */
    std::vector<Word> simulate(const Permutation &d) const;

  private:
    unsigned n_;
    Netlist net_;
    std::vector<std::vector<NodeId>> inputs_;
    std::vector<std::vector<NodeId>> outputs_;
};

} // namespace srbenes

#endif // SRBENES_GATES_BASELINE_GATES_HH
