/**
 * @file
 * Gate-level model of the self-routing Benes network.
 *
 * Builds the COMPLETE fabric as a combinational netlist: every line
 * carries its n destination-tag bits; every switch is
 *
 *   control  = bit b of the upper input's tag  (a wire -- the
 *              paper's "very simple logic"), optionally gated by
 *              the global omega-mode input in stages 0..n-2;
 *   each output bit = one 2:1 mux steered by control.
 *
 * The model substantiates the paper's two hardware claims
 * structurally rather than by assertion:
 *
 *  - cost: 2n muxes per switch, (2n-1) * N/2 switches total;
 *  - delay: the critical path is one mux per stage (plus one AND
 *    when the omega feature is compiled in), i.e. O(log N) gate
 *    delays INCLUDING all switch setting -- there is no setup phase
 *    in the netlist at all.
 *
 * The tests evaluate the netlist against the behavioral
 * SelfRoutingBenes bit-for-bit.
 */

#ifndef SRBENES_GATES_BENES_GATES_HH
#define SRBENES_GATES_BENES_GATES_HH

#include <vector>

#include "gates/netlist.hh"
#include "perm/permutation.hh"

namespace srbenes
{

class BenesGateModel
{
  public:
    /**
     * Build the netlist for B(n).
     * @param with_omega_input include the extra "omega" control
     *        input that forces stages 0..n-2 straight.
     */
    explicit BenesGateModel(unsigned n, bool with_omega_input = true);

    unsigned n() const { return n_; }
    Word numLines() const { return Word{1} << n_; }
    bool hasOmegaInput() const { return with_omega_; }

    const Netlist &netlist() const { return net_; }

    /**
     * Drive the inputs with the destination tags of @p d (and the
     * omega mode flag, if compiled in) and return the tag observed
     * at each output terminal.
     */
    std::vector<Word> simulate(const Permutation &d,
                               bool omega_mode = false) const;

    /** Muxes per switch = 2n (each output bit is one mux). */
    std::size_t muxesPerSwitch() const { return 2 * n_; }

    /**
     * Critical path in gate delays: 2n-1 mux levels, plus one AND
     * level when the omega feature is present.
     */
    unsigned criticalDepth() const { return net_.criticalDepth(); }

  private:
    unsigned n_;
    bool with_omega_;
    Netlist net_;
    /** inputs_[line][bit]: primary input node of a tag bit. */
    std::vector<std::vector<NodeId>> inputs_;
    /** outputs_[line][bit]: node holding an output tag bit. */
    std::vector<std::vector<NodeId>> outputs_;
    NodeId omega_input_ = 0;
};

} // namespace srbenes

#endif // SRBENES_GATES_BENES_GATES_HH
