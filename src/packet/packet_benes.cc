#include "packet/packet_benes.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srbenes
{

PacketBenes::PacketBenes(unsigned n, PacketConfig cfg)
    : topo_(n), cfg_(cfg)
{
    if (cfg_.fifo_capacity < 1)
        fatal("packet fabric needs FIFO capacity >= 1");
}

namespace
{

struct Fifo
{
    std::deque<std::pair<Word, std::uint64_t>> q; // (tag, injected)
};

} // namespace

PacketStats
PacketBenes::runStream(const std::vector<Permutation> &batches)
{
    const unsigned stages = topo_.numStages();
    const Word size = topo_.numLines();

    // queues[s][line]: input FIFO of stage s at that line position
    // (line = 2*switch + port). Stage 0 queues are the unbounded
    // source buffers.
    std::vector<std::vector<Fifo>> queues(
        stages, std::vector<Fifo>(size));

    PacketStats stats;
    std::uint64_t delivered = 0;
    std::uint64_t latency_sum = 0;
    stats.min_latency = ~std::uint64_t{0};

    const std::uint64_t total_packets =
        static_cast<std::uint64_t>(batches.size()) * size;
    const std::uint64_t cycle_limit =
        100 * (stages + total_packets + 10);

    std::size_t next_batch = 0;
    std::uint64_t cycle = 0;
    while (delivered < total_packets) {
        if (cycle++ > cycle_limit)
            panic("packet fabric failed to drain (bug: the "
                  "feed-forward network cannot deadlock)");

        // Inject one batch per cycle at the sources.
        if (next_batch < batches.size()) {
            const Permutation &d = batches[next_batch];
            if (d.size() != size)
                fatal("batch size %zu != N", d.size());
            for (Word i = 0; i < size; ++i)
                queues[0][i].q.emplace_back(d[i], cycle);
            ++next_batch;
        }

        // Advance packets, last stage first, so a freed slot can be
        // refilled by the upstream stage within the same cycle
        // (standard pipelined flow).
        for (unsigned s = stages; s-- > 0;) {
            const unsigned b = topo_.controlBit(s);
            for (Word sw = 0; sw < topo_.switchesPerStage(); ++sw) {
                // Arbitrate the two output ports among the two
                // head packets; alternate priority by cycle parity
                // for fairness.
                const Word first_port = cycle & 1;
                bool sent[2] = {false, false}; // one move per input
                for (Word pp = 0; pp < 2; ++pp) {
                    const Word port = pp ^ first_port;
                    // Pick the head packet that wants this output
                    // port, preferring inputs alternately across
                    // cycles for fairness.
                    int chosen = -1;
                    for (Word cand = 0; cand < 2; ++cand) {
                        const Word in = (cand + first_port) % 2;
                        auto &fifo = queues[s][2 * sw + in];
                        if (!sent[in] && !fifo.q.empty() &&
                            bit(fifo.q.front().first, b) == port) {
                            chosen = static_cast<int>(in);
                            break;
                        }
                    }
                    if (chosen < 0)
                        continue;
                    auto &src = queues[s][2 * sw + chosen];
                    const auto pkt = src.q.front();

                    const Word out_line = 2 * sw + port;
                    if (s + 1 == stages) {
                        // Delivery.
                        if (pkt.first != out_line)
                            panic("packet with tag %llu left at "
                                  "output %llu",
                                  static_cast<unsigned long long>(
                                      pkt.first),
                                  static_cast<unsigned long long>(
                                      out_line));
                        src.q.pop_front();
                        sent[chosen] = true;
                        ++delivered;
                        // Inclusive of the injection cycle's own
                        // stage-0 traversal: a stall-free pass
                        // reads 2n-1, the circuit-mode gate delay.
                        const std::uint64_t lat =
                            cycle - pkt.second + 1;
                        latency_sum += lat;
                        stats.min_latency =
                            std::min(stats.min_latency, lat);
                        stats.max_latency =
                            std::max(stats.max_latency, lat);
                        continue;
                    }

                    const Word next_line =
                        topo_.wireToNext(s, out_line);
                    auto &dst = queues[s + 1][next_line];
                    if (dst.q.size() >= cfg_.fifo_capacity) {
                        ++stats.stalls; // backpressure
                        continue;
                    }
                    dst.q.push_back(pkt);
                    src.q.pop_front();
                    sent[chosen] = true;
                    stats.max_occupancy = std::max(
                        stats.max_occupancy,
                        static_cast<std::uint64_t>(dst.q.size()));
                }
            }
        }
    }

    stats.all_delivered = true;
    stats.cycles = cycle;
    stats.avg_latency =
        static_cast<double>(latency_sum) /
        static_cast<double>(total_packets);
    if (total_packets == 0)
        stats.min_latency = 0;
    return stats;
}

PacketStats
PacketBenes::runPermutation(const Permutation &d)
{
    return runStream({d});
}

} // namespace srbenes
