#include "packet/packet_benes.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "packet/traffic.hh"

namespace srbenes
{

PacketBenes::PacketBenes(unsigned n, PacketConfig cfg)
    : n_(n), topo_(n), cfg_(cfg)
{
    if (cfg_.fifo_capacity < 1)
        fatal("packet fabric needs FIFO capacity >= 1");
    ensureIngress(1);
}

void
PacketBenes::ensureIngress(std::size_t batches)
{
    // The old source queues were unbounded; an ingress ring with one
    // slot per batch can never refuse an offer, which preserves the
    // old lossless semantics exactly.
    const std::size_t needed = std::max<std::size_t>(batches, 1);
    if (fabric_ != nullptr &&
        fabric_->options().ingress_capacity >= needed)
        return;
    packet::PacketOptions opts;
    opts.queue_capacity = cfg_.fifo_capacity;
    opts.ingress_capacity = needed;
    opts.contention = packet::ContentionPolicy::Backpressure;
    opts.midpath = packet::MidpathPolicy::TagBits;
    fabric_ = std::make_unique<packet::Fabric>(n_, opts, nullptr);
}

namespace
{

PacketStats
toPacketStats(const packet::FabricStats &fs)
{
    PacketStats stats;
    stats.all_delivered = fs.allDelivered();
    stats.cycles = fs.cycles;
    stats.stalls = fs.stalls;
    stats.max_occupancy = fs.max_occupancy;
    stats.avg_latency = fs.avg_latency;
    stats.min_latency = fs.min_latency;
    stats.max_latency = fs.max_latency;
    return stats;
}

} // namespace

PacketStats
PacketBenes::runPermutation(const Permutation &d)
{
    ensureIngress(1);
    return toPacketStats(fabric_->runPermutation(d));
}

PacketStats
PacketBenes::runStream(const std::vector<Permutation> &batches)
{
    const Word size = topo_.numLines();
    ensureIngress(batches.size());
    std::vector<std::vector<packet::Arrival>> schedule;
    schedule.reserve(batches.size());
    for (const Permutation &d : batches) {
        if (d.size() != size)
            fatal("batch size %zu != N", d.size());
        std::vector<packet::Arrival> batch;
        batch.reserve(size);
        for (Word i = 0; i < size; ++i)
            batch.push_back(packet::Arrival{i, d[i]});
        schedule.push_back(std::move(batch));
    }
    packet::ScheduleTraffic source(std::move(schedule));
    return toPacketStats(fabric_->run(source, batches.size()));
}

} // namespace srbenes
