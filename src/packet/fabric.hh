/**
 * @file
 * packet::Fabric -- the Benes wires run as a load-balanced packet
 * switch, in the style of Huang & Walrand's "A Benes Packet
 * Network" (PAPERS.md).
 *
 * The source paper's discipline is circuit-switched: a setup phase
 * (self-routing tags for F members, Waksman otherwise) configures
 * every switch, then a full permutation flows in lockstep. This
 * class keeps the exact same wires but treats each destination tag
 * as a PACKET that routes itself cycle by cycle, which lifts the two
 * restrictions that make circuit mode a poor traffic model:
 *
 *  - the workload no longer has to be a permutation (hot-spots,
 *    bursts, partial and multicast matrices all make sense), and
 *  - nothing has to be known in advance -- packets are offered at
 *    the inputs at any rate and contend for ports on the fly.
 *
 * Operating model (one step() = one cycle, every switch moves at
 * most one packet per input):
 *
 *  - Every switch input port owns a BOUNDED ring queue, allocated
 *    once at construction (no per-cycle allocation anywhere on the
 *    stepping path). Stage-0 rings are the ingress buffers that
 *    offer() fills; their depth is configurable separately.
 *  - In the first n-1 stages ANY output port still leads to every
 *    destination (the closing n stages form an omega-style banyan
 *    that self-routes from any middle line), so port choice there is
 *    a load-balancing decision, not a correctness one. That freedom
 *    is the Huang & Walrand multipath: MidpathPolicy picks randomly,
 *    by least downstream occupancy, or by tag bit (the degenerate
 *    single-path choice, kept for comparison).
 *  - In the last n stages the packet MUST exit on bit controlBit(s)
 *    of its tag; a delivery on the wrong line is a panic(), never a
 *    statistic.
 *  - When the queue a winning packet wants is full, the
 *    ContentionPolicy decides: Backpressure holds the packet in
 *    place (feed-forward wires cannot deadlock, so every packet
 *    eventually arrives), Drop discards it and accounts for it.
 *
 * Accounting is conservation-grade: every offered packet is exactly
 * one of rejected (ingress full), delivered, dropped, or in flight,
 * and stats().conserved checks the books every time it is called.
 * The same tallies are mirrored into an obs::MetricsRegistry
 * (counters, per-stage queue-depth gauges, a per-packet latency
 * histogram) so a live fabric exports through obs/export.hh exactly
 * like Router and StreamEngine; pass metrics = nullptr to run dark.
 */

#ifndef SRBENES_PACKET_FABRIC_HH
#define SRBENES_PACKET_FABRIC_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/prng.hh"
#include "core/topology.hh"
#include "obs/metrics.hh"
#include "perm/permutation.hh"

namespace srbenes
{
namespace packet
{

class TrafficSource;

/** What happens when a packet's next ring is full. */
enum class ContentionPolicy
{
    /** Hold the packet where it is (lossless; stalls accumulate). */
    Backpressure,
    /** Discard the packet and count it (lossy; latency stays flat). */
    Drop,
};

/**
 * How a packet picks its output port in the first n-1 stages, where
 * either port still reaches every destination.
 */
enum class MidpathPolicy
{
    /** The emptier downstream ring, ties broken by coin flip. */
    LeastOccupancy,
    /** Uniform coin flip (Valiant-style randomized balancing). */
    Random,
    /** Bit controlBit(s) of the tag: the single-path baseline the
     *  old PacketBenes used; no balancing, kept for comparison. */
    TagBits,
};

const char *contentionPolicyName(ContentionPolicy p) noexcept;
const char *midpathPolicyName(MidpathPolicy p) noexcept;

/** Tunables of the packet fabric. */
struct PacketOptions
{
    /** Ring depth per switch input port at stages >= 1 (>= 1).
     *  Eight slots keep the Drop policy loss-free through offered
     *  load 0.3 on uniform traffic at n = 8 (the bench gate). */
    std::size_t queue_capacity = 8;
    /** Ring depth of the stage-0 ingress buffers (>= 1). */
    std::size_t ingress_capacity = 8;
    ContentionPolicy contention = ContentionPolicy::Backpressure;
    MidpathPolicy midpath = MidpathPolicy::LeastOccupancy;
    /** Seed of the fabric's private Prng (midpath coin flips);
     *  equal seeds replay equal schedules. */
    std::uint64_t seed = 0x5eed5eed5eedULL;
};

/**
 * Aggregate accounting, either over the fabric's lifetime (stats())
 * or over one run helper call (the returned value). Tallies are the
 * simulator's own single-threaded bookkeeping -- exact with or
 * without a registry; only the latency percentiles come from the
 * registry histogram and read 0 when metrics is nullptr.
 */
struct FabricStats
{
    std::uint64_t offered = 0;   //!< offer() calls
    std::uint64_t injected = 0;  //!< accepted into an ingress ring
    std::uint64_t rejected = 0;  //!< refused at a full ingress ring
    std::uint64_t delivered = 0; //!< left on their destination line
    std::uint64_t dropped = 0;   //!< discarded in-fabric (Drop)
    std::uint64_t stalls = 0;    //!< head packets that failed to move
    std::uint64_t cycles = 0;    //!< step() calls
    std::uint64_t in_flight = 0; //!< currently queued in any ring
    /** Deepest stage>=1 ring ever observed. */
    std::uint64_t max_occupancy = 0;
    /** Deepest ingress (stage-0) ring ever observed. */
    std::uint64_t max_ingress_occupancy = 0;
    /** offered == injected + rejected and
     *  injected == delivered + dropped + in_flight. */
    bool conserved = false;
    /** @{ Per-packet delay in cycles, exact (min/max/avg) or from
     *  the log2 histogram (p50/p99, ~12% resolution; 0 w/o metrics). */
    double avg_latency = 0.0;
    std::uint64_t min_latency = 0;
    std::uint64_t max_latency = 0;
    std::uint64_t p50_latency = 0;
    std::uint64_t p99_latency = 0;
    /** @} */

    /** Every injected packet delivered (nothing dropped or queued). */
    bool
    allDelivered() const noexcept
    {
        return injected == delivered && dropped == 0 && in_flight == 0;
    }
};

/** One packet handed to a delivery sink. */
struct Delivery
{
    Word dst = 0;     //!< output line it left on (== its tag)
    Word payload = 0; //!< the word it carried
    std::uint64_t latency = 0; //!< cycles from injection, inclusive
};

/**
 * The packet-switched Benes fabric. Single-threaded by design: one
 * step() advances the whole fabric one cycle, so a caller (or a
 * driving loop like run()) owns the clock. All storage is allocated
 * at construction.
 */
class Fabric
{
  public:
    /**
     * Build the fabric for B(n). @p metrics follows the house
     * convention: default the process-global registry, nullptr
     * turns exposition off (the simulation itself stays exact).
     */
    explicit Fabric(unsigned n, PacketOptions opts = {},
                    obs::MetricsRegistry *metrics =
                        obs::defaultRegistry());

    const BenesTopology &topology() const { return topo_; }
    unsigned n() const { return topo_.n(); }
    Word numLines() const { return topo_.numLines(); }
    const PacketOptions &options() const { return opts_; }

    /**
     * Offer one packet at input line @p src for output line @p dst,
     * carrying @p payload. False means the ingress ring is full and
     * the packet was REJECTED (counted; never silently lost). The
     * packet first moves during the next step().
     */
    bool offer(Word src, Word dst, Word payload = 0);

    /** Advance every switch one cycle. */
    void step();

    /** Completed step() count since construction/reset(). */
    std::uint64_t cycle() const { return cycle_; }

    /** Packets currently queued anywhere in the fabric. */
    std::uint64_t inFlight() const { return acct_.in_flight; }

    bool empty() const { return acct_.in_flight == 0; }

    /**
     * step() until the fabric is empty. Feed-forward wires cannot
     * deadlock, so this terminates under both policies; a generous
     * internal cycle bound panic()s if that invariant ever breaks.
     */
    void drainAll();

    /**
     * Sink invoked on every delivery (after the line check). Keep it
     * cheap; pass nullptr (default) for none.
     */
    void setDeliverySink(std::function<void(const Delivery &)> sink);

    /**
     * Empty every ring and restart the cycle clock and the midpath
     * Prng (same seed -> same schedule). Lifetime tallies and
     * registry instruments are monotonic and survive, matching the
     * registry convention everywhere else in the tree.
     */
    void reset();

    /** Lifetime accounting (see FabricStats). */
    FabricStats stats() const;

    /**
     * Run one full-permutation load: packet i carries payload i to
     * d[i]. Requires an empty fabric; injects in one cycle (the
     * ingress rings must hold one packet, always true) and drains.
     * Returns the accounting of THIS run only.
     */
    FabricStats runPermutation(const Permutation &d);

    /**
     * runPermutation carrying @p data, scattering delivered payloads
     * into @p out (resized to N): out[d[i]] = data[i] on a lossless
     * run -- the bit-exact equivalence with Permutation::applyTo.
     * Slots of dropped packets are left at the @p fill value.
     */
    FabricStats runPermutation(const Permutation &d,
                               const std::vector<Word> &data,
                               std::vector<Word> &out,
                               Word fill = ~Word{0});

    /**
     * Drive the fabric from @p source for @p inject_cycles cycles
     * (asking it for arrivals before every step), then drain.
     * Returns the accounting of this run only.
     */
    FabricStats run(TrafficSource &source,
                    std::uint64_t inject_cycles);

  private:
    struct Pkt
    {
        Word dst = 0;
        Word payload = 0;
        std::uint64_t inject_cycle = 0;
    };

    /** Lifetime tallies (single-threaded; mirrored to metrics). */
    struct Accounting
    {
        std::uint64_t offered = 0;
        std::uint64_t injected = 0;
        std::uint64_t rejected = 0;
        std::uint64_t delivered = 0;
        std::uint64_t dropped = 0;
        std::uint64_t stalls = 0;
        std::uint64_t in_flight = 0;
        std::uint64_t max_occupancy = 0;
        std::uint64_t max_ingress_occupancy = 0;
        std::uint64_t lat_sum = 0;
        std::uint64_t lat_min = ~std::uint64_t{0};
        std::uint64_t lat_max = 0;
    };

    std::size_t qIndex(unsigned stage, Word line) const
    {
        return std::size_t{stage} * topo_.numLines() + line;
    }
    std::size_t qCapacity(unsigned stage) const
    {
        return stage == 0 ? opts_.ingress_capacity
                          : opts_.queue_capacity;
    }
    Pkt &slot(std::size_t q, std::uint32_t i)
    {
        return slots_[slot_base_[q] + i];
    }

    bool pushQueue(std::size_t q, unsigned stage, const Pkt &p);
    void popQueue(std::size_t q, unsigned stage);

    /** Move/deliver/drop the head of (stage, 2*sw + in); returns
     *  true when the input consumed its move for this cycle. */
    bool advanceHead(unsigned stage, Word sw, Word in,
                     bool port_used[2]);
    void deliver(unsigned stage, Word out_line, const Pkt &p);

    /** Begin/end-of-run snapshot helpers for the run*() APIs. */
    Accounting snapshot() const { return acct_; }
    FabricStats finishRun(const Accounting &before,
                          std::uint64_t cycles_before,
                          const obs::Histogram::Snapshot &hist_before)
        const;
    obs::Histogram::Snapshot latencySnapshot() const;

    BenesTopology topo_;
    PacketOptions opts_;
    /** First stage of the self-routing omega half: n-1. */
    unsigned first_delivery_stage_;
    Prng prng_;

    /** Ring storage: per-queue base offset into slots_, plus head
     *  index and length. Queue q = stage * N + line. */
    std::vector<Pkt> slots_;
    std::vector<std::size_t> slot_base_;
    std::vector<std::uint32_t> head_;
    std::vector<std::uint32_t> len_;
    /** Packets resident per stage (drives the depth gauges). */
    std::vector<std::int64_t> stage_occ_;

    std::uint64_t cycle_ = 0;
    Accounting acct_;
    /** Exact per-run latency/occupancy extremes (reset by the run
     *  helpers, updated alongside the lifetime tallies). */
    std::uint64_t run_lat_min_ = ~std::uint64_t{0};
    std::uint64_t run_lat_max_ = 0;
    std::uint64_t run_max_occ_ = 0;
    std::uint64_t run_max_ingress_occ_ = 0;

    std::function<void(const Delivery &)> sink_;

    /** @{ Registry-served instruments; null when metrics off. */
    obs::Counter *c_offered_ = nullptr;
    obs::Counter *c_injected_ = nullptr;
    obs::Counter *c_rejected_ = nullptr;
    obs::Counter *c_delivered_ = nullptr;
    obs::Counter *c_dropped_ = nullptr;
    obs::Counter *c_stalls_ = nullptr;
    obs::Gauge *g_in_flight_ = nullptr;
    obs::Gauge *g_max_occupancy_ = nullptr;
    obs::Histogram *h_latency_ = nullptr;
    std::vector<obs::Gauge *> g_stage_depth_;
    /** @} */
};

} // namespace packet
} // namespace srbenes

#endif // SRBENES_PACKET_FABRIC_HH
