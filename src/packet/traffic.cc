#include "packet/traffic.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace srbenes
{
namespace packet
{

RandomTrafficBase::RandomTrafficBase(unsigned n, double load,
                                     std::uint64_t seed)
    : size_(Word{1} << n), load_(load), seed_(seed), prng_(seed)
{
    if (n < 1 || n > 20)
        fatal("traffic source n = %u out of range", n);
    if (load < 0.0 || load > 1.0)
        fatal("offered load %g outside [0, 1]", load);
}

bool
RandomTrafficBase::coin(double p)
{
    if (p <= 0.0)
        return false;
    // 2^64 as a double; p == 1 makes the threshold exceed every
    // possible draw, so the coin is exactly always-true there.
    return static_cast<double>(prng_()) <
           p * 18446744073709551616.0;
}

UniformTraffic::UniformTraffic(unsigned n, double load,
                               std::uint64_t seed)
    : RandomTrafficBase(n, load, seed)
{
}

void
UniformTraffic::arrivals(std::uint64_t cycle,
                         std::vector<Arrival> &out)
{
    (void)cycle;
    for (Word src = 0; src < size_; ++src)
        if (coin(load_))
            out.push_back(Arrival{src, prng_.below(size_)});
}

HotSpotTraffic::HotSpotTraffic(unsigned n, double load,
                               double hot_fraction, Word hot,
                               std::uint64_t seed)
    : RandomTrafficBase(n, load, seed), hot_fraction_(hot_fraction),
      hot_(hot)
{
    if (hot_fraction < 0.0 || hot_fraction > 1.0)
        fatal("hot fraction %g outside [0, 1]", hot_fraction);
    if (hot >= size_)
        fatal("hot line %llu out of range",
              static_cast<unsigned long long>(hot));
}

void
HotSpotTraffic::arrivals(std::uint64_t cycle,
                         std::vector<Arrival> &out)
{
    (void)cycle;
    for (Word src = 0; src < size_; ++src)
        if (coin(load_)) {
            const Word dst =
                coin(hot_fraction_) ? hot_ : prng_.below(size_);
            out.push_back(Arrival{src, dst});
        }
}

BurstyTraffic::BurstyTraffic(unsigned n, double load,
                             double mean_burst, std::uint64_t seed)
    : RandomTrafficBase(n, load, seed)
{
    if (mean_burst < 1.0)
        fatal("mean burst length %g < 1 cycle", mean_burst);
    if (load >= mean_burst / (mean_burst + 1.0))
        fatal("bursty load %g unreachable with mean burst %g "
              "(needs load <= B / (B + 1))",
              load, mean_burst);
    p_off_ = 1.0 / mean_burst;
    // Stationary ON probability p_on / (p_on + p_off) == load.
    p_on_ = load < 1.0 ? load / (mean_burst * (1.0 - load)) : 1.0;
    onReset();
}

void
BurstyTraffic::onReset()
{
    // Start at the stationary distribution so the measured load is
    // flat from cycle 0 instead of ramping up.
    on_.assign(size_, 0);
    burst_dst_.assign(size_, 0);
    for (Word src = 0; src < size_; ++src)
        if (coin(load_)) {
            on_[src] = 1;
            burst_dst_[src] = prng_.below(size_);
        }
}

void
BurstyTraffic::arrivals(std::uint64_t cycle,
                        std::vector<Arrival> &out)
{
    (void)cycle;
    for (Word src = 0; src < size_; ++src) {
        if (on_[src]) {
            if (coin(p_off_))
                on_[src] = 0;
        } else if (coin(p_on_)) {
            on_[src] = 1;
            burst_dst_[src] = prng_.below(size_);
        }
        if (on_[src])
            out.push_back(Arrival{src, burst_dst_[src]});
    }
}

PartialTraffic::PartialTraffic(unsigned n, double load,
                               double active_fraction,
                               std::uint64_t seed)
    : RandomTrafficBase(n, load, seed)
{
    if (active_fraction < 0.0 || active_fraction > 1.0)
        fatal("active fraction %g outside [0, 1]", active_fraction);
    active_ = static_cast<Word>(
        static_cast<double>(size_) * active_fraction + 0.5);
    onReset();
}

void
PartialTraffic::onReset()
{
    // A random partial permutation: shuffle sources, shuffle
    // destinations, pair off the first active_ of each.
    std::vector<Word> srcs(size_);
    std::vector<Word> dsts(size_);
    for (Word i = 0; i < size_; ++i)
        srcs[i] = dsts[i] = i;
    std::shuffle(srcs.begin(), srcs.end(), prng_);
    std::shuffle(dsts.begin(), dsts.end(), prng_);
    dst_.assign(size_, ~Word{0});
    for (Word i = 0; i < active_; ++i)
        dst_[srcs[i]] = dsts[i];
}

void
PartialTraffic::arrivals(std::uint64_t cycle,
                         std::vector<Arrival> &out)
{
    (void)cycle;
    for (Word src = 0; src < size_; ++src)
        if (dst_[src] != ~Word{0} && coin(load_))
            out.push_back(Arrival{src, dst_[src]});
}

MulticastTraffic::MulticastTraffic(unsigned n, double load,
                                   Word fanout, std::uint64_t seed)
    : RandomTrafficBase(n, load, seed), fanout_(fanout)
{
    if (fanout < 1 || fanout > size_)
        fatal("multicast fanout %llu outside [1, N]",
              static_cast<unsigned long long>(fanout));
}

void
MulticastTraffic::arrivals(std::uint64_t cycle,
                           std::vector<Arrival> &out)
{
    (void)cycle;
    const double event_p =
        load_ / static_cast<double>(fanout_);
    for (Word src = 0; src < size_; ++src) {
        if (!coin(event_p))
            continue;
        // Distinct destinations by rejection; fanout << N in any
        // sane configuration, so retries are rare.
        pick_.clear();
        while (pick_.size() < fanout_) {
            const Word d = prng_.below(size_);
            if (std::find(pick_.begin(), pick_.end(), d) ==
                pick_.end())
                pick_.push_back(d);
        }
        for (const Word d : pick_)
            out.push_back(Arrival{src, d});
    }
}

PermutationTraffic::PermutationTraffic(unsigned n, double load,
                                       Permutation d,
                                       std::uint64_t seed)
    : RandomTrafficBase(n, load, seed), d_(std::move(d))
{
    if (d_.size() != size_)
        fatal("permutation size %zu != N = %llu", d_.size(),
              static_cast<unsigned long long>(size_));
}

void
PermutationTraffic::arrivals(std::uint64_t cycle,
                             std::vector<Arrival> &out)
{
    (void)cycle;
    for (Word src = 0; src < size_; ++src)
        if (coin(load_))
            out.push_back(Arrival{src, d_[src]});
}

ScheduleTraffic::ScheduleTraffic(
    std::vector<std::vector<Arrival>> schedule)
    : schedule_(std::move(schedule))
{
}

void
ScheduleTraffic::arrivals(std::uint64_t cycle,
                          std::vector<Arrival> &out)
{
    (void)cycle;
    if (next_ >= schedule_.size())
        return;
    const std::vector<Arrival> &batch = schedule_[next_++];
    out.insert(out.end(), batch.begin(), batch.end());
}

} // namespace packet
} // namespace srbenes
