/**
 * @file
 * Deprecated packet-mode entry point, now a shim over
 * packet::Fabric.
 *
 * PacketBenes was the toy that proved the wires could run
 * packet-switched: tag-bit routing at every stage, backpressure
 * everywhere, permutation workloads only. That role has moved to
 * packet::Fabric (src/packet/fabric.hh), which adds bounded ring
 * queues, load-balanced midpath policies, a drop policy, arbitrary
 * traffic matrices (src/packet/traffic.hh), and obs wiring. This
 * header keeps the old surface -- PacketConfig, PacketStats,
 * runPermutation(), runStream() -- compiling for one release by
 * delegating to a Fabric configured for the old behavior (TagBits
 * midpath + Backpressure, metrics off).
 *
 * New code should construct packet::Fabric directly. Builds that
 * define SRBENES_STRICT_DEPRECATION get compiler warnings here.
 */

#ifndef SRBENES_PACKET_PACKET_BENES_HH
#define SRBENES_PACKET_PACKET_BENES_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/route_outcome.hh"
#include "core/topology.hh"
#include "packet/fabric.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** Tunables of the old packet fabric.
 *  @deprecated Use packet::PacketOptions. */
struct PacketConfig
{
    /** Input-FIFO depth per switch port at stages >= 1. */
    std::size_t fifo_capacity = 2;
};

/** Aggregate results of one old-style packet-mode run.
 *  @deprecated Use packet::FabricStats. */
struct PacketStats
{
    bool all_delivered = false;
    std::uint64_t cycles = 0;        //!< makespan
    std::uint64_t stalls = 0;        //!< blocked head-of-line moves
    std::uint64_t max_occupancy = 0; //!< deepest FIFO observed
    double avg_latency = 0.0;        //!< mean per-packet delay
    std::uint64_t min_latency = 0;
    std::uint64_t max_latency = 0;
};

/** @deprecated Use packet::Fabric. */
class PacketBenes
{
  public:
    SRB_DEPRECATED_API("use packet::Fabric")
    explicit PacketBenes(unsigned n, PacketConfig cfg = {});

    const BenesTopology &topology() const { return topo_; }

    /**
     * One packet per input, destinations from @p d; runs to full
     * delivery. @deprecated Use packet::Fabric::runPermutation().
     */
    PacketStats runPermutation(const Permutation &d);

    /**
     * Stream @p batches permutation loads, injecting one full batch
     * per cycle at the sources. @deprecated Use
     * packet::Fabric::run() with a packet::ScheduleTraffic.
     */
    PacketStats runStream(const std::vector<Permutation> &batches);

  private:
    /** (Re)build fabric_ with room for @p batches ingress slots. */
    void ensureIngress(std::size_t batches);

    unsigned n_;
    BenesTopology topo_;
    PacketConfig cfg_;
    std::unique_ptr<packet::Fabric> fabric_;
};

} // namespace srbenes

#endif // SRBENES_PACKET_PACKET_BENES_HH
