/**
 * @file
 * Packet-switched operation of the Benes fabric.
 *
 * The paper's network is circuit-switched: the Fig. 3 rule sets a
 * switch from its UPPER input's tag, both signals flow in lockstep,
 * and exactly the class F(n) is conflict-free. An asynchronous
 * alternative treats each destination tag as a PACKET that routes
 * itself: at a stage with control bit b the packet requests the
 * output port equal to bit b of its own tag, input FIFOs buffer
 * head-of-line losers, and backpressure stalls full links. Because
 * the fabric is feed-forward this is deadlock-free, and because the
 * omega half gives every middle line a path to every output, every
 * packet eventually arrives -- ALL N! permutations deliver, at the
 * price of stalls.
 *
 * The interesting measurement (bench_packet): even F members pay
 * contention in packet mode (bit reversal collides at stage 0,
 * where the circuit rule would cross cleanly), so the self-routing
 * circuit discipline is strictly stronger than per-packet tag
 * routing on the same wires -- the quantified version of the
 * paper's choice.
 */

#ifndef SRBENES_PACKET_PACKET_BENES_HH
#define SRBENES_PACKET_PACKET_BENES_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/topology.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** Tunables of the packet fabric. */
struct PacketConfig
{
    /** Input-FIFO depth per switch port at stages >= 1. */
    std::size_t fifo_capacity = 2;
};

/** Aggregate results of one packet-mode run. */
struct PacketStats
{
    bool all_delivered = false;
    std::uint64_t cycles = 0;        //!< makespan
    std::uint64_t stalls = 0;        //!< blocked head-of-line moves
    std::uint64_t max_occupancy = 0; //!< deepest FIFO observed
    double avg_latency = 0.0;        //!< mean per-packet delay
    std::uint64_t min_latency = 0;
    std::uint64_t max_latency = 0;
};

class PacketBenes
{
  public:
    explicit PacketBenes(unsigned n, PacketConfig cfg = {});

    const BenesTopology &topology() const { return topo_; }

    /**
     * One packet per input, destinations from @p d; runs to full
     * delivery (panics past a generous cycle bound, which a
     * feed-forward fabric cannot legitimately hit).
     */
    PacketStats runPermutation(const Permutation &d);

    /**
     * Stream @p batches permutation loads, injecting one full
     * batch per cycle at the sources (source queues are unbounded;
     * internal FIFOs exert backpressure).
     */
    PacketStats runStream(const std::vector<Permutation> &batches);

  private:
    struct Packet
    {
        Word tag;
        std::uint64_t inject_cycle;
    };

    BenesTopology topo_;
    PacketConfig cfg_;
};

} // namespace srbenes

#endif // SRBENES_PACKET_PACKET_BENES_HH
