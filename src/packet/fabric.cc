#include "packet/fabric.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "packet/traffic.hh"

namespace srbenes
{
namespace packet
{

const char *
contentionPolicyName(ContentionPolicy p) noexcept
{
    switch (p) {
    case ContentionPolicy::Backpressure:
        return "backpressure";
    case ContentionPolicy::Drop:
        return "drop";
    }
    return "?";
}

const char *
midpathPolicyName(MidpathPolicy p) noexcept
{
    switch (p) {
    case MidpathPolicy::LeastOccupancy:
        return "least-occupancy";
    case MidpathPolicy::Random:
        return "random";
    case MidpathPolicy::TagBits:
        return "tag-bits";
    }
    return "?";
}

Fabric::Fabric(unsigned n, PacketOptions opts,
               obs::MetricsRegistry *metrics)
    : topo_(n), opts_(opts), first_delivery_stage_(n - 1),
      prng_(opts.seed)
{
    if (opts_.queue_capacity < 1 || opts_.ingress_capacity < 1)
        fatal("packet fabric rings need capacity >= 1");

    const unsigned stages = topo_.numStages();
    const Word size = topo_.numLines();
    const std::size_t queues = std::size_t{stages} * size;
    slot_base_.resize(queues);
    head_.assign(queues, 0);
    len_.assign(queues, 0);
    stage_occ_.assign(stages, 0);
    std::size_t total = 0;
    for (unsigned s = 0; s < stages; ++s)
        for (Word line = 0; line < size; ++line) {
            slot_base_[qIndex(s, line)] = total;
            total += qCapacity(s);
        }
    slots_.resize(total);

    if (metrics != nullptr) {
        const std::string inst = metrics->uniqueInstance("packet");
        const obs::Labels labels{{"instance", inst}};
        c_offered_ =
            &metrics->counter("srbenes_packet_offered_total", labels);
        c_injected_ = &metrics->counter(
            "srbenes_packet_injected_total", labels);
        c_rejected_ = &metrics->counter(
            "srbenes_packet_rejected_total", labels);
        c_delivered_ = &metrics->counter(
            "srbenes_packet_delivered_total", labels);
        c_dropped_ =
            &metrics->counter("srbenes_packet_dropped_total", labels);
        c_stalls_ =
            &metrics->counter("srbenes_packet_stalls_total", labels);
        g_in_flight_ =
            &metrics->gauge("srbenes_packet_in_flight", labels);
        g_max_occupancy_ =
            &metrics->gauge("srbenes_packet_max_occupancy", labels);
        h_latency_ = &metrics->histogram(
            "srbenes_packet_latency_cycles", labels);
        g_stage_depth_.resize(stages);
        for (unsigned s = 0; s < stages; ++s)
            g_stage_depth_[s] = &metrics->gauge(
                "srbenes_packet_queue_depth",
                obs::Labels{{"instance", inst},
                            {"stage", std::to_string(s)}});
    }
}

void
Fabric::setDeliverySink(std::function<void(const Delivery &)> sink)
{
    sink_ = std::move(sink);
}

bool
Fabric::pushQueue(std::size_t q, unsigned stage, const Pkt &p)
{
    const std::size_t cap = qCapacity(stage);
    if (len_[q] >= cap)
        return false;
    slot(q, static_cast<std::uint32_t>((head_[q] + len_[q]) % cap)) =
        p;
    ++len_[q];
    ++stage_occ_[stage];
    if (stage == 0) {
        if (len_[q] > acct_.max_ingress_occupancy) {
            acct_.max_ingress_occupancy = len_[q];
            run_max_ingress_occ_ =
                std::max<std::uint64_t>(run_max_ingress_occ_, len_[q]);
        } else if (len_[q] > run_max_ingress_occ_) {
            run_max_ingress_occ_ = len_[q];
        }
    } else {
        if (len_[q] > acct_.max_occupancy) {
            acct_.max_occupancy = len_[q];
            if (g_max_occupancy_ != nullptr)
                g_max_occupancy_->set(
                    static_cast<std::int64_t>(len_[q]));
        }
        run_max_occ_ = std::max<std::uint64_t>(run_max_occ_, len_[q]);
    }
    return true;
}

void
Fabric::popQueue(std::size_t q, unsigned stage)
{
    const std::size_t cap = qCapacity(stage);
    head_[q] = static_cast<std::uint32_t>((head_[q] + 1) % cap);
    --len_[q];
    --stage_occ_[stage];
}

bool
Fabric::offer(Word src, Word dst, Word payload)
{
    const Word size = topo_.numLines();
    if (src >= size || dst >= size)
        fatal("packet src/dst %llu/%llu out of range (N = %llu)",
              static_cast<unsigned long long>(src),
              static_cast<unsigned long long>(dst),
              static_cast<unsigned long long>(size));
    ++acct_.offered;
    if (c_offered_ != nullptr)
        c_offered_->inc();
    const Pkt p{dst, payload, cycle_ + 1};
    if (!pushQueue(qIndex(0, src), 0, p)) {
        ++acct_.rejected;
        if (c_rejected_ != nullptr)
            c_rejected_->inc();
        return false;
    }
    ++acct_.injected;
    ++acct_.in_flight;
    if (c_injected_ != nullptr) {
        c_injected_->inc();
        g_in_flight_->add(1);
    }
    return true;
}

void
Fabric::deliver(unsigned stage, Word out_line, const Pkt &p)
{
    if (p.dst != out_line)
        panic("packet for line %llu delivered on line %llu "
              "(stage %u): the omega half must self-route",
              static_cast<unsigned long long>(p.dst),
              static_cast<unsigned long long>(out_line), stage);
    const std::uint64_t lat = cycle_ - p.inject_cycle + 1;
    ++acct_.delivered;
    --acct_.in_flight;
    acct_.lat_sum += lat;
    acct_.lat_min = std::min(acct_.lat_min, lat);
    acct_.lat_max = std::max(acct_.lat_max, lat);
    run_lat_min_ = std::min(run_lat_min_, lat);
    run_lat_max_ = std::max(run_lat_max_, lat);
    if (c_delivered_ != nullptr) {
        c_delivered_->inc();
        g_in_flight_->add(-1);
        h_latency_->observe(lat);
    }
    if (sink_)
        sink_(Delivery{out_line, p.payload, lat});
}

bool
Fabric::advanceHead(unsigned stage, Word sw, Word in,
                    bool port_used[2])
{
    const std::size_t q = qIndex(stage, 2 * sw + in);
    if (len_[q] == 0)
        return false;
    const Pkt &p = slot(q, head_[q]);

    // Port preference: forced by the tag in the omega (delivery)
    // half; a balancing choice with the other port as fallback in
    // the first n-1 stages.
    unsigned pref[2] = {0, 0};
    unsigned nprefs = 1;
    if (stage >= first_delivery_stage_) {
        pref[0] = static_cast<unsigned>(
            bit(p.dst, topo_.controlBit(stage)));
    } else {
        switch (opts_.midpath) {
        case MidpathPolicy::TagBits:
            pref[0] = static_cast<unsigned>(
                bit(p.dst, topo_.controlBit(stage)));
            break;
        case MidpathPolicy::Random:
            pref[0] = static_cast<unsigned>(prng_() & 1);
            pref[1] = pref[0] ^ 1u;
            nprefs = 2;
            break;
        case MidpathPolicy::LeastOccupancy: {
            const std::size_t q0 = qIndex(
                stage + 1, topo_.wireToNext(stage, 2 * sw + 0));
            const std::size_t q1 = qIndex(
                stage + 1, topo_.wireToNext(stage, 2 * sw + 1));
            if (len_[q0] != len_[q1])
                pref[0] = len_[q0] < len_[q1] ? 0u : 1u;
            else
                pref[0] = static_cast<unsigned>(prng_() & 1);
            pref[1] = pref[0] ^ 1u;
            nprefs = 2;
            break;
        }
        }
    }

    bool blocked_full = false;
    bool blocked_contended = false;
    for (unsigned k = 0; k < nprefs; ++k) {
        const unsigned port = pref[k];
        if (port_used[port]) {
            blocked_contended = true;
            continue;
        }
        const Word out_line = 2 * sw + port;
        if (stage + 1 == topo_.numStages()) {
            deliver(stage, out_line, p);
            popQueue(q, stage);
            port_used[port] = true;
            return true;
        }
        const std::size_t nq =
            qIndex(stage + 1, topo_.wireToNext(stage, out_line));
        if (len_[nq] >= qCapacity(stage + 1)) {
            blocked_full = true;
            continue;
        }
        pushQueue(nq, stage + 1, p);
        popQueue(q, stage);
        port_used[port] = true;
        return true;
    }

    // The head failed to move. Losing arbitration always means
    // waiting a cycle; a full downstream ring is where the policy
    // splits: Drop discards the packet (and only then -- a
    // contended port may be free next cycle), Backpressure holds it.
    if (opts_.contention == ContentionPolicy::Drop && blocked_full &&
        !blocked_contended) {
        popQueue(q, stage);
        ++acct_.dropped;
        --acct_.in_flight;
        if (c_dropped_ != nullptr) {
            c_dropped_->inc();
            g_in_flight_->add(-1);
        }
        return true;
    }
    ++acct_.stalls;
    if (c_stalls_ != nullptr)
        c_stalls_->inc();
    return false;
}

void
Fabric::step()
{
    ++cycle_;
    const unsigned stages = topo_.numStages();
    const Word sw_per_stage = topo_.switchesPerStage();
    // Alternate input priority by cycle parity so neither port of a
    // switch can starve the other under sustained contention.
    const Word rot = cycle_ & 1;
    // Last stage first, so a slot freed downstream this cycle can be
    // refilled by the upstream stage within the same cycle
    // (standard pipelined flow).
    for (unsigned s = stages; s-- > 0;)
        for (Word sw = 0; sw < sw_per_stage; ++sw) {
            bool port_used[2] = {false, false};
            for (Word i = 0; i < 2; ++i)
                (void)advanceHead(s, sw, i ^ rot, port_used);
        }
    if (!g_stage_depth_.empty())
        for (unsigned s = 0; s < stages; ++s)
            g_stage_depth_[s]->set(stage_occ_[s]);
}

void
Fabric::drainAll()
{
    const std::uint64_t limit =
        100 * (topo_.numStages() + acct_.in_flight + 10);
    std::uint64_t used = 0;
    while (acct_.in_flight > 0) {
        if (used++ > limit)
            panic("packet fabric failed to drain (bug: feed-forward "
                  "wires cannot deadlock)");
        step();
    }
}

void
Fabric::reset()
{
    // Queued packets are flushed, not forgotten: they move to the
    // dropped tally so the conservation invariant survives reset().
    if (acct_.in_flight > 0) {
        acct_.dropped += acct_.in_flight;
        if (c_dropped_ != nullptr) {
            c_dropped_->inc(acct_.in_flight);
            g_in_flight_->add(
                -static_cast<std::int64_t>(acct_.in_flight));
        }
        acct_.in_flight = 0;
    }
    std::fill(head_.begin(), head_.end(), 0u);
    std::fill(len_.begin(), len_.end(), 0u);
    std::fill(stage_occ_.begin(), stage_occ_.end(), std::int64_t{0});
    if (!g_stage_depth_.empty())
        for (unsigned s = 0; s < topo_.numStages(); ++s)
            g_stage_depth_[s]->set(0);
    cycle_ = 0;
    prng_ = Prng(opts_.seed);
}

obs::Histogram::Snapshot
Fabric::latencySnapshot() const
{
    if (h_latency_ == nullptr)
        return obs::Histogram::Snapshot{};
    return h_latency_->snapshot();
}

namespace
{

obs::Histogram::Snapshot
diffSnapshots(const obs::Histogram::Snapshot &now,
              const obs::Histogram::Snapshot &then)
{
    obs::Histogram::Snapshot d;
    for (unsigned i = 0; i < obs::Histogram::kBuckets; ++i)
        d.buckets[i] = now.buckets[i] - then.buckets[i];
    d.sum = now.sum - then.sum;
    return d;
}

} // namespace

FabricStats
Fabric::stats() const
{
    FabricStats s;
    s.offered = acct_.offered;
    s.injected = acct_.injected;
    s.rejected = acct_.rejected;
    s.delivered = acct_.delivered;
    s.dropped = acct_.dropped;
    s.stalls = acct_.stalls;
    s.cycles = cycle_;
    s.in_flight = acct_.in_flight;
    s.max_occupancy = acct_.max_occupancy;
    s.max_ingress_occupancy = acct_.max_ingress_occupancy;
    s.conserved =
        acct_.offered == acct_.injected + acct_.rejected &&
        acct_.injected ==
            acct_.delivered + acct_.dropped + acct_.in_flight;
    if (acct_.delivered > 0) {
        s.avg_latency = static_cast<double>(acct_.lat_sum) /
                        static_cast<double>(acct_.delivered);
        s.min_latency = acct_.lat_min;
        s.max_latency = acct_.lat_max;
    }
    if (h_latency_ != nullptr) {
        const obs::Histogram::Snapshot snap = h_latency_->snapshot();
        s.p50_latency = snap.quantile(0.5);
        s.p99_latency = snap.quantile(0.99);
    }
    return s;
}

FabricStats
Fabric::finishRun(const Accounting &before,
                  std::uint64_t cycles_before,
                  const obs::Histogram::Snapshot &hist_before) const
{
    FabricStats s;
    s.offered = acct_.offered - before.offered;
    s.injected = acct_.injected - before.injected;
    s.rejected = acct_.rejected - before.rejected;
    s.delivered = acct_.delivered - before.delivered;
    s.dropped = acct_.dropped - before.dropped;
    s.stalls = acct_.stalls - before.stalls;
    s.cycles = cycle_ - cycles_before;
    s.in_flight = acct_.in_flight;
    s.max_occupancy = run_max_occ_;
    s.max_ingress_occupancy = run_max_ingress_occ_;
    s.conserved = s.offered == s.injected + s.rejected &&
                  s.injected ==
                      s.delivered + s.dropped + s.in_flight;
    if (s.delivered > 0) {
        s.avg_latency =
            static_cast<double>(acct_.lat_sum - before.lat_sum) /
            static_cast<double>(s.delivered);
        s.min_latency = run_lat_min_;
        s.max_latency = run_lat_max_;
    }
    if (h_latency_ != nullptr) {
        const obs::Histogram::Snapshot snap =
            diffSnapshots(h_latency_->snapshot(), hist_before);
        s.p50_latency = snap.quantile(0.5);
        s.p99_latency = snap.quantile(0.99);
    }
    return s;
}

FabricStats
Fabric::runPermutation(const Permutation &d)
{
    if (d.size() != numLines())
        fatal("permutation size %zu != N = %llu", d.size(),
              static_cast<unsigned long long>(numLines()));
    if (!empty())
        panic("Fabric run helpers require an empty fabric");
    const Accounting before = snapshot();
    const std::uint64_t cyc0 = cycle_;
    const obs::Histogram::Snapshot hist0 = latencySnapshot();
    run_lat_min_ = ~std::uint64_t{0};
    run_lat_max_ = 0;
    run_max_occ_ = 0;
    run_max_ingress_occ_ = 0;
    for (Word i = 0; i < numLines(); ++i)
        (void)offer(i, d[i], i); // an empty ingress ring never refuses
    drainAll();
    return finishRun(before, cyc0, hist0);
}

FabricStats
Fabric::runPermutation(const Permutation &d,
                       const std::vector<Word> &data,
                       std::vector<Word> &out, Word fill)
{
    if (data.size() != numLines())
        fatal("payload size %zu != N = %llu", data.size(),
              static_cast<unsigned long long>(numLines()));
    if (!empty())
        panic("Fabric run helpers require an empty fabric");
    out.assign(numLines(), fill);
    std::function<void(const Delivery &)> saved = std::move(sink_);
    sink_ = [&out](const Delivery &del) { out[del.dst] = del.payload; };
    const Accounting before = snapshot();
    const std::uint64_t cyc0 = cycle_;
    const obs::Histogram::Snapshot hist0 = latencySnapshot();
    run_lat_min_ = ~std::uint64_t{0};
    run_lat_max_ = 0;
    run_max_occ_ = 0;
    run_max_ingress_occ_ = 0;
    for (Word i = 0; i < numLines(); ++i)
        (void)offer(i, d[i], data[i]);
    drainAll();
    sink_ = std::move(saved);
    return finishRun(before, cyc0, hist0);
}

FabricStats
Fabric::run(TrafficSource &source, std::uint64_t inject_cycles)
{
    if (!empty())
        panic("Fabric run helpers require an empty fabric");
    const Accounting before = snapshot();
    const std::uint64_t cyc0 = cycle_;
    const obs::Histogram::Snapshot hist0 = latencySnapshot();
    run_lat_min_ = ~std::uint64_t{0};
    run_lat_max_ = 0;
    run_max_occ_ = 0;
    run_max_ingress_occ_ = 0;
    std::vector<Arrival> buf;
    for (std::uint64_t c = 0; c < inject_cycles; ++c) {
        buf.clear();
        source.arrivals(cycle_, buf);
        for (const Arrival &a : buf)
            (void)offer(a.src, a.dst, a.src);
        step();
    }
    drainAll();
    return finishRun(before, cyc0, hist0);
}

} // namespace packet
} // namespace srbenes
