/**
 * @file
 * Traffic matrices for the packet fabric.
 *
 * One small interface, TrafficSource, shared by bench_packet,
 * test_packet, and (later) srb_loadgen so that "hot-spot at load
 * 0.6" means the same arrival process everywhere. A source is asked
 * once per cycle for that cycle's arrivals; everything is driven by
 * an owned xoshiro256** stream (seeded via splitmix64 like every
 * other Prng in the tree), so equal seeds replay equal traffic and
 * reset() rewinds a source to its first cycle.
 *
 * Offered load is normalized per input port: at load rho, each
 * SENDING port emits a packet with probability rho per cycle
 * (PartialTraffic normalizes over its active ports only, and
 * MulticastTraffic divides rho by the fanout so the DELIVERED load
 * per output port stays comparable across matrices).
 */

#ifndef SRBENES_PACKET_TRAFFIC_HH
#define SRBENES_PACKET_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/prng.hh"
#include "perm/permutation.hh"

namespace srbenes
{
namespace packet
{

/** One packet's worth of demand: @p src wants to reach @p dst. */
struct Arrival
{
    Word src = 0;
    Word dst = 0;
};

/**
 * An arrival process over B(n)'s N input ports. Implementations are
 * deterministic functions of (seed, call sequence): callers invoke
 * arrivals() exactly once per simulated cycle.
 */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Short stable name for tables and JSON ("uniform", ...). */
    virtual const char *name() const noexcept = 0;

    /** Append this cycle's arrivals to @p out (not cleared). */
    virtual void arrivals(std::uint64_t cycle,
                          std::vector<Arrival> &out) = 0;

    /** Rewind to the first cycle; equal seeds then replay. */
    virtual void reset() = 0;
};

/**
 * Shared plumbing of the random matrices: geometry, a target load,
 * and the seeded Prng (reset() reseeds it and lets the subclass
 * rebuild any per-source state).
 */
class RandomTrafficBase : public TrafficSource
{
  public:
    double offeredLoad() const noexcept { return load_; }

    void
    reset() override
    {
        prng_ = Prng(seed_);
        onReset();
    }

  protected:
    RandomTrafficBase(unsigned n, double load, std::uint64_t seed);

    /** One biased coin flip from the owned stream. */
    bool coin(double p);

    /** Per-source state rebuild hook invoked by reset(). */
    virtual void onReset() {}

    Word size_;
    double load_;
    std::uint64_t seed_;
    Prng prng_;
};

/** Every port sends to an independently uniform destination. */
class UniformTraffic : public RandomTrafficBase
{
  public:
    UniformTraffic(unsigned n, double load,
                   std::uint64_t seed = 0x5eed5eed5eedULL);

    const char *name() const noexcept override { return "uniform"; }
    void arrivals(std::uint64_t cycle,
                  std::vector<Arrival> &out) override;
};

/**
 * Uniform background with a fraction of all packets aimed at one
 * hot output port -- the classic tree-saturation matrix.
 */
class HotSpotTraffic : public RandomTrafficBase
{
  public:
    /** @p hot_fraction of packets target line @p hot. */
    HotSpotTraffic(unsigned n, double load, double hot_fraction,
                   Word hot = 0,
                   std::uint64_t seed = 0x5eed5eed5eedULL);

    const char *name() const noexcept override { return "hotspot"; }
    void arrivals(std::uint64_t cycle,
                  std::vector<Arrival> &out) override;

    Word hotLine() const noexcept { return hot_; }

  private:
    double hot_fraction_;
    Word hot_;
};

/**
 * Two-state MMPP per source: ON sources emit every cycle toward one
 * burst-constant destination, OFF sources are silent. Mean burst
 * length is @p mean_burst cycles and the ON probability is chosen so
 * the stationary per-port load is @p load (which therefore must be
 * <= mean_burst / (mean_burst + 1)).
 */
class BurstyTraffic : public RandomTrafficBase
{
  public:
    BurstyTraffic(unsigned n, double load, double mean_burst = 8.0,
                  std::uint64_t seed = 0x5eed5eed5eedULL);

    const char *name() const noexcept override { return "bursty"; }
    void arrivals(std::uint64_t cycle,
                  std::vector<Arrival> &out) override;

  private:
    void onReset() override;

    double p_on_;  //!< OFF -> ON per cycle
    double p_off_; //!< ON -> OFF per cycle (1 / mean_burst)
    std::vector<std::uint8_t> on_;
    std::vector<Word> burst_dst_;
};

/**
 * A random partial permutation: a fixed subset of sources, each
 * bound to a distinct destination, offered at @p load per ACTIVE
 * source; the other ports stay silent.
 */
class PartialTraffic : public RandomTrafficBase
{
  public:
    /** round(@p active_fraction * N) sources are active. */
    PartialTraffic(unsigned n, double load, double active_fraction,
                   std::uint64_t seed = 0x5eed5eed5eedULL);

    const char *name() const noexcept override { return "partial"; }
    void arrivals(std::uint64_t cycle,
                  std::vector<Arrival> &out) override;

    Word activeSources() const noexcept { return active_; }

  private:
    void onReset() override;

    Word active_;
    /** dst_[src], or ~Word{0} when src is silent. */
    std::vector<Word> dst_;
};

/**
 * Each send event fans out to @p fanout distinct uniform
 * destinations (emitted as fanout unicast arrivals -- the fabric
 * itself stays unicast). Event probability is load / fanout so the
 * per-output offered load matches the unicast matrices.
 */
class MulticastTraffic : public RandomTrafficBase
{
  public:
    MulticastTraffic(unsigned n, double load, Word fanout = 4,
                     std::uint64_t seed = 0x5eed5eed5eedULL);

    const char *name() const noexcept override { return "multicast"; }
    void arrivals(std::uint64_t cycle,
                  std::vector<Arrival> &out) override;

  private:
    Word fanout_;
    std::vector<Word> pick_; //!< scratch for distinct-dst sampling
};

/** A fixed permutation matrix offered at @p load per port. */
class PermutationTraffic : public RandomTrafficBase
{
  public:
    PermutationTraffic(unsigned n, double load, Permutation d,
                       std::uint64_t seed = 0x5eed5eed5eedULL);

    const char *name() const noexcept override
    {
        return "permutation";
    }
    void arrivals(std::uint64_t cycle,
                  std::vector<Arrival> &out) override;

  private:
    Permutation d_;
};

/**
 * Deterministic playback: call k returns schedule[k] (nothing once
 * the schedule is exhausted). Used by the deprecated PacketBenes
 * shim to reproduce its batch-per-cycle injection and by tests that
 * need exact arrival patterns.
 */
class ScheduleTraffic : public TrafficSource
{
  public:
    explicit ScheduleTraffic(
        std::vector<std::vector<Arrival>> schedule);

    const char *name() const noexcept override { return "schedule"; }
    void arrivals(std::uint64_t cycle,
                  std::vector<Arrival> &out) override;
    void reset() override { next_ = 0; }

    std::size_t length() const noexcept { return schedule_.size(); }

  private:
    std::vector<std::vector<Arrival>> schedule_;
    std::size_t next_ = 0;
};

} // namespace packet
} // namespace srbenes

#endif // SRBENES_PACKET_TRAFFIC_HH
