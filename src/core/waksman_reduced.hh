/**
 * @file
 * Waksman's reduced permutation network (the paper's reference
 * [10]).
 *
 * Waksman observed that the Benes construction over-provisions: in
 * every B(m) subnetwork with m >= 2, ONE closing-stage switch may
 * be hardwired straight and the network still realizes all (2^m)!
 * sub-permutations -- the looping 2-coloring simply starts each
 * affected loop from the forced constraint "output pair 0's even
 * output comes from the upper half". Applied recursively this
 * removes N/2 - 1 switches, giving N lg N - N + 1 against the Benes
 * N lg N - N/2.
 *
 * The reduced network shares the BenesTopology wiring; reduction is
 * expressed as a set of switches that the setup is guaranteed to
 * leave straight (so hardware could omit them). The self-routing
 * scheme of the paper does NOT apply to the reduced fabric: the
 * Fig. 3 rule needs the freedom Waksman removes (tests demonstrate
 * a BPC member whose self-route crosses a removed switch).
 */

#ifndef SRBENES_CORE_WAKSMAN_REDUCED_HH
#define SRBENES_CORE_WAKSMAN_REDUCED_HH

#include <vector>

#include "core/topology.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** A hardwired-straight switch position. */
struct FixedSwitch
{
    unsigned stage;
    Word switch_index;

    bool operator==(const FixedSwitch &other) const = default;
};

/** The switches Waksman's reduction removes from B(n): the closing
 *  switch of output pair 0 of every subnetwork with m >= 2. */
std::vector<FixedSwitch> waksmanFixedSwitches(const BenesTopology &topo);

/** Switch count of the reduced network: N lg N - N + 1. */
Word waksmanReducedSwitchCount(unsigned n);

/**
 * Compute states realizing @p d that keep every reduced switch
 * straight (the reduced network's setup). Route the result with
 * SelfRoutingBenes::routeWithStates.
 */
SwitchStates waksmanReducedSetup(const BenesTopology &topo,
                                 const Permutation &d);

} // namespace srbenes

#endif // SRBENES_CORE_WAKSMAN_REDUCED_HH
