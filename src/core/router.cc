// srb-lint: modeled — SRB010: the plan cache's lock-free recency
// stamps go through common/sync.hh (core/cache_recency.hh).
#include "core/router.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/waksman.hh"
#include "obs/trace.hh"
#include "perm/f_class.hh"
#include "perm/omega_class.hh"

namespace srbenes
{

/**
 * FNV-1a over the destination words. Collisions only cost a cache
 * miss: planCached compares the stored permutation before reuse.
 */
std::uint64_t
Router::hashPermutation(const Permutation &d)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (Word v : d.dest()) {
        h ^= v;
        h *= 1099511628211ULL;
        h ^= h >> 29; // spread the low-entropy small values
    }
    return h;
}

const char *
routeStrategyName(RouteStrategy s)
{
    switch (s) {
      case RouteStrategy::SelfRouting:
        return "self-routing";
      case RouteStrategy::OmegaBit:
        return "omega-bit";
      case RouteStrategy::TwoPass:
        return "two-pass";
      case RouteStrategy::Waksman:
        return "waksman";
    }
    return "?";
}

Router::Router(unsigned n, bool prefer_waksman,
               std::size_t plan_cache_capacity, unsigned cache_shards,
               obs::MetricsRegistry *metrics,
               std::size_t plan_cache_bytes)
    : net_(n), engine_(n, metrics), setup_(engine_, metrics),
      prefer_waksman_(prefer_waksman),
      cache_capacity_(plan_cache_capacity),
      cache_bytes_budget_(plan_cache_bytes), metrics_(metrics)
{
    std::size_t nshards = std::max(1u, cache_shards);
    if (cache_capacity_ > 0)
        nshards = std::min(nshards, cache_capacity_);
    shards_.reserve(nshards);
    for (std::size_t i = 0; i < nshards; ++i) {
        shards_.push_back(std::make_unique<CacheShard>());
        shards_[i]->arena = std::make_shared<PlanArena>();
    }

    if (!metrics_)
        return;
    const std::string inst = metrics_->uniqueInstance("router");
    for (std::size_t i = 0; i < nshards; ++i) {
        const obs::Labels labels{{"router", inst},
                                 {"shard", std::to_string(i)}};
        shards_[i]->hits = &metrics_->counter(
            "srbenes_router_plan_cache_hits_total", labels);
        shards_[i]->misses = &metrics_->counter(
            "srbenes_router_plan_cache_misses_total", labels);
        shards_[i]->evictions = &metrics_->counter(
            "srbenes_router_plan_cache_evictions_total", labels);
        shards_[i]->bytes_g = &metrics_->gauge(
            "srbenes_router_plan_cache_resident_bytes", labels);
        shards_[i]->arena->attachGauges(
            &metrics_->gauge("srbenes_router_plan_arena_resident_bytes",
                             labels),
            &metrics_->gauge("srbenes_router_plan_arena_capacity_bytes",
                             labels));
    }
    for (RouteStrategy s :
         {RouteStrategy::SelfRouting, RouteStrategy::OmegaBit,
          RouteStrategy::TwoPass, RouteStrategy::Waksman})
        plans_by_strategy_[static_cast<int>(s)] = &metrics_->counter(
            "srbenes_router_plans_total",
            {{"router", inst}, {"strategy", routeStrategyName(s)}});
    classified_engine_ = &metrics_->counter(
        "srbenes_router_classification_total",
        {{"router", inst}, {"path", "engine"}});
    classified_structural_ = &metrics_->counter(
        "srbenes_router_classification_total",
        {{"router", inst}, {"path", "structural"}});
    cold_plan_ns_ = &metrics_->histogram(
        "srbenes_router_plan_cold_ns", {{"router", inst}});
    for (RouteStrategy s :
         {RouteStrategy::SelfRouting, RouteStrategy::OmegaBit,
          RouteStrategy::TwoPass, RouteStrategy::Waksman})
        setup_ns_by_strategy_[static_cast<int>(s)] =
            &metrics_->histogram(
                "srbenes_router_setup_ns",
                {{"router", inst},
                 {"strategy", routeStrategyName(s)}});
}

Router::CacheShard &
Router::shardFor(std::uint64_t hash) const
{
    // The low bits index buckets inside the shard's map; pick the
    // shard from well-mixed high bits so the two stay independent.
    return *shards_[(hash >> 32) % shards_.size()];
}

RoutePlan
Router::plan(const Permutation &d) const
{
    // The instrumented wrapper around the real planner: cold plans
    // are the expensive event worth a span and a latency histogram;
    // the strategy counters double as the engine-vs-structural
    // classification census (the engine's conflict detection IS the
    // F-membership test, so SelfRouting == engine-classified).
    obs::Tracer::Span span(
        metrics_ ? &obs::Tracer::global() : nullptr, "router.plan");
    const std::uint64_t t0 = metrics_ ? obs::monotonicNs() : 0;
    RoutePlan p = planImpl(d);
    if (metrics_) {
        const std::uint64_t elapsed = obs::monotonicNs() - t0;
        cold_plan_ns_->observe(elapsed);
        setup_ns_by_strategy_[static_cast<int>(p.strategy)]->observe(
            elapsed);
        plans_by_strategy_[static_cast<int>(p.strategy)]->inc();
        if (p.strategy == RouteStrategy::SelfRouting)
            classified_engine_->inc();
        else
            classified_structural_->inc();
    }
    return p;
}

RoutePlan
Router::planImpl(const Permutation &d) const
{
    if (d.size() != net_.numLines())
        fatal("permutation size %zu does not match router N = %llu",
              d.size(),
              static_cast<unsigned long long>(net_.numLines()));

    // Try the destination-tag pass directly instead of classifying
    // first: the engine's conflict detection IS the F-membership
    // test (a permutation self-routes iff it is in F), and one
    // bit-sliced routing pass costs a fraction of the structural
    // inFClass check. All self-routed passes go through the
    // SetupEngine so cold planning stays on the bit-sliced path.
    {
        auto fast = std::make_shared<FastPlan>(setup_.plan(d));
        if (fast->success)
            return RoutePlan{RouteStrategy::SelfRouting, d, {}, {}, 1,
                             std::move(fast)};
    }
    if (isOmega(d)) {
        auto fast = std::make_shared<FastPlan>(
            setup_.plan(d, RoutingMode::OmegaBit));
        if (!fast->success)
            panic("omega-bit plan failed for a planned Omega member");
        return RoutePlan{RouteStrategy::OmegaBit, d, {}, {}, 1,
                         std::move(fast)};
    }
    if (prefer_waksman_) {
        SwitchStates states = waksmanSetup(net_.topology(), d);
        auto fast =
            std::make_shared<FastPlan>(engine_.planWithStates(d, states));
        if (!fast->success)
            panic("waksman plan failed to realize its permutation");
        return RoutePlan{RouteStrategy::Waksman, d, {},
                         std::move(states), 1, std::move(fast)};
    }

    TwoPassPlan tp = twoPassPlan(net_, d);
    const FastPlan p1 = setup_.plan(tp.first);
    const FastPlan p2 =
        setup_.plan(tp.second, RoutingMode::OmegaBit);
    if (!p1.success || !p2.success)
        panic("two-pass plan failed one of its self-routed passes");
    // Compose the two verified passes into one execution mapping;
    // the per-pass switch states live in the TwoPassPlan if needed.
    auto fast = std::make_shared<FastPlan>();
    fast->n = p1.n;
    fast->success = true;
    fast->dest.resize(d.size());
    fast->src.resize(d.size());
    for (Word i = 0; i < d.size(); ++i)
        fast->dest[i] = p2.dest[p1.dest[i]];
    for (Word i = 0; i < d.size(); ++i)
        fast->src[fast->dest[i]] = i;
    return RoutePlan{RouteStrategy::TwoPass, d, std::move(tp), {}, 2,
                     std::move(fast)};
}

void
Router::compactForCache(RoutePlan &p, CacheShard &sh) const
{
    if (!p.fast || p.fast->ctrl.empty())
        return; // composed TwoPass mappings carry no masks to pack
    // Insert-time slimming of a plan planImpl built a moment ago:
    // this planCached call still holds the only reference, so the
    // const on the element type (which guards the aliases handed
    // out to callers later) can be set aside for the compaction.
    FastPlan &fp = const_cast<FastPlan &>(*p.fast);

    // The switch settings survive in succinct switch-packed form
    // ((2n-1) * N/2 bits, a word-rounding of Waksman's
    // N lg N - N + 1 bound) inside the shard's arena; the flat
    // masks, the dest table (== perm on a success plan), and the
    // (empty) misroute list are dropped. src stays flat — it is the
    // gather table execute reads on every hit.
    PackedStates packed = setup_.packedStates(fp);
    const std::size_t words = packed.words.size();
    Word *block = sh.arena->alloc(words);
    std::copy(packed.words.begin(), packed.words.end(), block);
    std::shared_ptr<PlanArena> arena = sh.arena;
    p.packed_block = std::shared_ptr<const Word>(
        block, [arena, words](const Word *b) {
            arena->release(const_cast<Word *>(b), words);
        });
    p.packed_ctrl.n = fp.n;
    p.packed_ctrl.words_per_stage = packed.words_per_stage;
    p.packed_ctrl.stage_stride = packed.words_per_stage;
    p.packed_ctrl.words = p.packed_block.get();

    fp.ctrl = {};
    if (fp.success)
        fp.dest = {};
    fp.misrouted_outputs = {};
}

std::size_t
Router::planResidentBytes(const RoutePlan &p)
{
    std::size_t b = sizeof(RoutePlan);
    b += p.perm.dest().size() * sizeof(Word);
    if (p.fast) {
        b += sizeof(FastPlan);
        b += (p.fast->ctrl.size() + p.fast->dest.size() +
              p.fast->src.size() + p.fast->misrouted_outputs.size()) *
             sizeof(Word);
    }
    if (p.packed_ctrl.words)
        b += std::size_t{2} * p.packed_ctrl.n *
             p.packed_ctrl.words_per_stage * sizeof(Word);
    if (p.two_pass)
        b += (p.two_pass->first.dest().size() +
              p.two_pass->second.dest().size()) *
             sizeof(Word);
    if (p.states)
        for (const auto &stage : *p.states)
            b += stage.size() * sizeof(std::uint8_t);
    return b;
}

template <typename Over>
void
Router::evictWhile(Over over) const
{
    // Capacity is global, not per shard: evict the globally
    // least-recently-stamped entries. Scanning every shard is fine
    // here — insertion already paid for a full plan, and hits never
    // reach this path.
    while (over()) {
        CacheShard *vsh = nullptr;
        std::uint64_t vhash = 0;
        std::uint64_t vstamp = ~std::uint64_t{0};
        for (const auto &cand : shards_) {
            ReaderLock lock(cand->mu);
            for (const auto &[eh, entry] : cand->map) {
                // The eviction scan tolerates racing stamp updates
                // (LRU is approximate; see cache_recency.hh).
                const std::uint64_t stamp = entry.last_used.value();
                if (stamp < vstamp) {
                    vsh = cand.get();
                    vhash = eh;
                    vstamp = stamp;
                }
            }
        }
        if (!vsh)
            break;
        WriterLock lock(vsh->mu);
        auto it = vsh->map.find(vhash);
        if (it != vsh->map.end()) {
            vsh->bytes -= it->second.bytes;
            if (vsh->bytes_g)
                vsh->bytes_g->set(
                    static_cast<std::int64_t>(vsh->bytes));
            vsh->map.erase(it);
            if (vsh->evictions)
                vsh->evictions->inc();
        }
    }
}

std::shared_ptr<const RoutePlan>
Router::planCached(const Permutation &d) const
{
    if (cache_capacity_ == 0)
        return std::make_shared<const RoutePlan>(plan(d));

    const std::uint64_t h = hashPermutation(d);
    CacheShard &sh = shardFor(h);
    {
        ReaderLock lock(sh.mu);
        auto it = sh.map.find(h);
        if (it != sh.map.end() && it->second.plan->perm == d) {
            if (sh.hits)
                sh.hits->inc();
            // Relaxed clock and stamp; a stale LRU stamp only
            // costs a suboptimal eviction (cache_recency.hh).
            it->second.last_used.touch(tick_);
            return it->second.plan;
        }
    }
    if (sh.misses)
        sh.misses->inc();

    // Plan outside the lock; concurrent misses on the same pattern
    // just plan twice and the later insert wins. Cache residents are
    // compacted: control bits move into the shard arena in succinct
    // form and the derivable tables are dropped.
    RoutePlan fresh = plan(d);
    compactForCache(fresh, sh);
    const std::size_t bytes = planResidentBytes(fresh);
    auto planned = std::make_shared<const RoutePlan>(std::move(fresh));
    // The recency clock only feeds the LRU heuristic (see the hit
    // path above).
    const std::uint64_t now = tick_.next();
    {
        WriterLock lock(sh.mu);
        auto [it, inserted] = sh.map.try_emplace(h, planned, now, bytes);
        if (!inserted) {
            // Same hash: either a racing insert of this pattern or a
            // collision; either way the newcomer replaces the plan.
            sh.bytes -= it->second.bytes;
            it->second.plan = planned;
            it->second.bytes = bytes;
            // LRU stamp drawn before the lock; see the hit path.
            it->second.last_used.stamp(now);
        }
        sh.bytes += bytes;
        if (sh.bytes_g)
            sh.bytes_g->set(static_cast<std::int64_t>(sh.bytes));
    }

    evictWhile([this] { return planCacheSize() > cache_capacity_; });
    if (cache_bytes_budget_ > 0)
        evictWhile([this] {
            return planCacheBytes() > cache_bytes_budget_;
        });
    return planned;
}

std::vector<Word>
Router::execute(const RoutePlan &plan,
                const std::vector<Word> &data) const
{
    if (plan.fast && plan.fast->success)
        return engine_.execute(*plan.fast, data);

    switch (plan.strategy) {
      case RouteStrategy::SelfRouting: {
        const auto out = net_.permutePayloads(plan.perm, data);
        if (!out)
            panic("self-routing plan failed for a planned F member");
        return *out;
      }
      case RouteStrategy::OmegaBit: {
        const auto out = net_.permutePayloads(plan.perm, data,
                                              RoutingMode::OmegaBit);
        if (!out)
            panic("omega-bit plan failed for a planned Omega "
                  "member");
        return *out;
      }
      case RouteStrategy::TwoPass:
        if (!plan.two_pass)
            panic("two-pass plan is missing its factorization");
        return twoPassPermute(net_, *plan.two_pass, data);
      case RouteStrategy::Waksman: {
        if (!plan.states)
            panic("waksman plan is missing its switch states");
        const auto res = net_.routeWithStates(plan.perm, *plan.states);
        if (!res.success)
            panic("waksman plan failed to realize its permutation");
        std::vector<Word> out(data.size());
        for (std::size_t i = 0; i < data.size(); ++i)
            out[res.realized_dest[i]] = data[i];
        return out;
      }
    }
    panic("unreachable routing strategy");
}

void
Router::executeInto(const RoutePlan &plan,
                    const std::vector<Word> &data,
                    std::vector<Word> &out) const
{
    if (plan.fast && plan.fast->success) {
        engine_.executeInto(*plan.fast, data, out);
        return;
    }
    out = execute(plan, data);
}

std::vector<std::vector<Word>>
Router::executeMany(const RoutePlan &plan,
                    const std::vector<std::vector<Word>> &batch,
                    unsigned num_threads) const
{
    if (plan.fast && plan.fast->success)
        return engine_.executeMany(*plan.fast, batch, num_threads);
    std::vector<std::vector<Word>> outs(batch.size());
    for (std::size_t v = 0; v < batch.size(); ++v)
        outs[v] = execute(plan, batch[v]);
    return outs;
}

RouteOutcome
Router::routeOutcome(const Permutation &d,
                     const std::vector<Word> &data) const
{
    if (data.size() != d.size())
        fatal("payload size %zu does not match permutation size %zu",
              data.size(), d.size());
    return RouteOutcome::success(execute(*planCached(d), data));
}

std::vector<Word>
Router::route(const Permutation &d,
              const std::vector<Word> &data) const
{
    return execute(*planCached(d), data);
}

std::vector<std::vector<Word>>
Router::routeBatch(const Permutation &d,
                   const std::vector<std::vector<Word>> &batch,
                   unsigned num_threads) const
{
    return executeMany(*planCached(d), batch, num_threads);
}

std::vector<CacheShardStats>
Router::cacheStats() const
{
    std::vector<CacheShardStats> stats;
    stats.reserve(shards_.size());
    for (const auto &sh : shards_) {
        CacheShardStats s;
        {
            ReaderLock lock(sh->mu);
            s.size = sh->map.size();
            s.bytes = sh->bytes;
        }
        s.hits = sh->hits ? sh->hits->value() : 0;
        s.misses = sh->misses ? sh->misses->value() : 0;
        s.evictions = sh->evictions ? sh->evictions->value() : 0;
        const PlanArenaStats a = sh->arena->stats();
        s.arena_resident_bytes = a.resident_bytes;
        s.arena_capacity_bytes = a.capacity_bytes;
        stats.push_back(s);
    }
    return stats;
}

std::size_t
Router::planCacheBytes() const
{
    std::size_t total = 0;
    for (const auto &sh : shards_) {
        ReaderLock lock(sh->mu);
        total += sh->bytes;
    }
    return total;
}

std::size_t
Router::planCacheSize() const
{
    std::size_t total = 0;
    for (const auto &s : cacheStats())
        total += s.size;
    return total;
}

std::size_t
Router::planCacheHits() const
{
    std::size_t total = 0;
    for (const auto &s : cacheStats())
        total += s.hits;
    return total;
}

std::size_t
Router::planCacheMisses() const
{
    std::size_t total = 0;
    for (const auto &s : cacheStats())
        total += s.misses;
    return total;
}

std::size_t
Router::planCacheEvictions() const
{
    std::size_t total = 0;
    for (const auto &s : cacheStats())
        total += s.evictions;
    return total;
}

void
Router::clearPlanCache() const
{
    for (const auto &sh : shards_) {
        WriterLock lock(sh->mu);
        sh->map.clear();
        sh->bytes = 0;
        if (sh->bytes_g)
            sh->bytes_g->set(0);
        if (sh->hits)
            sh->hits->reset();
        if (sh->misses)
            sh->misses->reset();
        if (sh->evictions)
            sh->evictions->reset();
    }
}

} // namespace srbenes
