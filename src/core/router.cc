#include "core/router.hh"

#include "common/logging.hh"
#include "core/waksman.hh"
#include "perm/f_class.hh"
#include "perm/omega_class.hh"

namespace srbenes
{

namespace
{

/**
 * FNV-1a over the destination words. Collisions only cost a cache
 * miss: planCached compares the stored permutation before reuse.
 */
std::uint64_t
permHash(const Permutation &d)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (Word v : d.dest()) {
        h ^= v;
        h *= 1099511628211ULL;
        h ^= h >> 29; // spread the low-entropy small values
    }
    return h;
}

} // namespace

const char *
routeStrategyName(RouteStrategy s)
{
    switch (s) {
      case RouteStrategy::SelfRouting:
        return "self-routing";
      case RouteStrategy::OmegaBit:
        return "omega-bit";
      case RouteStrategy::TwoPass:
        return "two-pass";
      case RouteStrategy::Waksman:
        return "waksman";
    }
    return "?";
}

Router::Router(unsigned n, bool prefer_waksman,
               std::size_t plan_cache_capacity)
    : net_(n), engine_(n), prefer_waksman_(prefer_waksman),
      cache_capacity_(plan_cache_capacity)
{
}

RoutePlan
Router::plan(const Permutation &d) const
{
    if (d.size() != net_.numLines())
        fatal("permutation size %zu does not match router N = %llu",
              d.size(),
              static_cast<unsigned long long>(net_.numLines()));

    if (inFClass(d)) {
        auto fast = std::make_shared<FastPlan>(engine_.routePlan(d));
        if (!fast->success)
            panic("self-routing plan failed for a planned F member");
        return RoutePlan{RouteStrategy::SelfRouting, d, {}, {}, 1,
                         std::move(fast)};
    }
    if (isOmega(d)) {
        auto fast = std::make_shared<FastPlan>(
            engine_.routePlan(d, RoutingMode::OmegaBit));
        if (!fast->success)
            panic("omega-bit plan failed for a planned Omega member");
        return RoutePlan{RouteStrategy::OmegaBit, d, {}, {}, 1,
                         std::move(fast)};
    }
    if (prefer_waksman_) {
        SwitchStates states = waksmanSetup(net_.topology(), d);
        auto fast =
            std::make_shared<FastPlan>(engine_.planWithStates(d, states));
        if (!fast->success)
            panic("waksman plan failed to realize its permutation");
        return RoutePlan{RouteStrategy::Waksman, d, {},
                         std::move(states), 1, std::move(fast)};
    }

    TwoPassPlan tp = twoPassPlan(net_, d);
    const FastPlan p1 = engine_.routePlan(tp.first);
    const FastPlan p2 =
        engine_.routePlan(tp.second, RoutingMode::OmegaBit);
    if (!p1.success || !p2.success)
        panic("two-pass plan failed one of its self-routed passes");
    // Compose the two verified passes into one execution mapping;
    // the per-pass switch states live in the TwoPassPlan if needed.
    auto fast = std::make_shared<FastPlan>();
    fast->n = p1.n;
    fast->success = true;
    fast->dest.resize(d.size());
    fast->src.resize(d.size());
    for (Word i = 0; i < d.size(); ++i)
        fast->dest[i] = p2.dest[p1.dest[i]];
    for (Word i = 0; i < d.size(); ++i)
        fast->src[fast->dest[i]] = i;
    return RoutePlan{RouteStrategy::TwoPass, d, std::move(tp), {}, 2,
                     std::move(fast)};
}

std::shared_ptr<const RoutePlan>
Router::planCached(const Permutation &d) const
{
    if (cache_capacity_ == 0)
        return std::make_shared<const RoutePlan>(plan(d));

    const std::uint64_t h = permHash(d);
    {
        std::lock_guard<std::mutex> lock(cache_mu_);
        auto it = cache_index_.find(h);
        if (it != cache_index_.end() && it->second->plan->perm == d) {
            ++cache_hits_;
            lru_.splice(lru_.begin(), lru_, it->second);
            return it->second->plan;
        }
        ++cache_misses_;
    }

    // Plan outside the lock; concurrent misses on the same pattern
    // just plan twice and the later insert wins.
    auto planned = std::make_shared<const RoutePlan>(plan(d));
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_index_.find(h);
    if (it != cache_index_.end()) {
        // Same hash: either a racing insert of this pattern or a
        // collision; either way the newcomer replaces it.
        lru_.erase(it->second);
        cache_index_.erase(it);
    }
    lru_.push_front(CacheEntry{h, planned});
    cache_index_[h] = lru_.begin();
    while (lru_.size() > cache_capacity_) {
        cache_index_.erase(lru_.back().hash);
        lru_.pop_back();
    }
    return planned;
}

std::vector<Word>
Router::execute(const RoutePlan &plan,
                const std::vector<Word> &data) const
{
    if (plan.fast && plan.fast->success)
        return engine_.execute(*plan.fast, data);

    switch (plan.strategy) {
      case RouteStrategy::SelfRouting: {
        const auto out = net_.permutePayloads(plan.perm, data);
        if (!out)
            panic("self-routing plan failed for a planned F member");
        return *out;
      }
      case RouteStrategy::OmegaBit: {
        const auto out = net_.permutePayloads(plan.perm, data,
                                              RoutingMode::OmegaBit);
        if (!out)
            panic("omega-bit plan failed for a planned Omega "
                  "member");
        return *out;
      }
      case RouteStrategy::TwoPass:
        if (!plan.two_pass)
            panic("two-pass plan is missing its factorization");
        return twoPassPermute(net_, *plan.two_pass, data);
      case RouteStrategy::Waksman: {
        if (!plan.states)
            panic("waksman plan is missing its switch states");
        const auto res = net_.routeWithStates(plan.perm, *plan.states);
        if (!res.success)
            panic("waksman plan failed to realize its permutation");
        std::vector<Word> out(data.size());
        for (std::size_t i = 0; i < data.size(); ++i)
            out[res.realized_dest[i]] = data[i];
        return out;
      }
    }
    panic("unreachable routing strategy");
}

void
Router::executeInto(const RoutePlan &plan,
                    const std::vector<Word> &data,
                    std::vector<Word> &out) const
{
    if (plan.fast && plan.fast->success) {
        engine_.executeInto(*plan.fast, data, out);
        return;
    }
    out = execute(plan, data);
}

std::vector<std::vector<Word>>
Router::executeMany(const RoutePlan &plan,
                    const std::vector<std::vector<Word>> &batch,
                    unsigned num_threads) const
{
    if (plan.fast && plan.fast->success)
        return engine_.executeMany(*plan.fast, batch, num_threads);
    std::vector<std::vector<Word>> outs(batch.size());
    for (std::size_t v = 0; v < batch.size(); ++v)
        outs[v] = execute(plan, batch[v]);
    return outs;
}

std::vector<Word>
Router::route(const Permutation &d,
              const std::vector<Word> &data) const
{
    return execute(*planCached(d), data);
}

std::vector<std::vector<Word>>
Router::routeBatch(const Permutation &d,
                   const std::vector<std::vector<Word>> &batch,
                   unsigned num_threads) const
{
    return executeMany(*planCached(d), batch, num_threads);
}

std::size_t
Router::planCacheSize() const
{
    std::lock_guard<std::mutex> lock(cache_mu_);
    return lru_.size();
}

std::size_t
Router::planCacheHits() const
{
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_hits_;
}

std::size_t
Router::planCacheMisses() const
{
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_misses_;
}

void
Router::clearPlanCache() const
{
    std::lock_guard<std::mutex> lock(cache_mu_);
    lru_.clear();
    cache_index_.clear();
    cache_hits_ = 0;
    cache_misses_ = 0;
}

} // namespace srbenes
