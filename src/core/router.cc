#include "core/router.hh"

#include "common/logging.hh"
#include "core/waksman.hh"
#include "perm/f_class.hh"
#include "perm/omega_class.hh"

namespace srbenes
{

const char *
routeStrategyName(RouteStrategy s)
{
    switch (s) {
      case RouteStrategy::SelfRouting:
        return "self-routing";
      case RouteStrategy::OmegaBit:
        return "omega-bit";
      case RouteStrategy::TwoPass:
        return "two-pass";
      case RouteStrategy::Waksman:
        return "waksman";
    }
    return "?";
}

Router::Router(unsigned n, bool prefer_waksman)
    : net_(n), prefer_waksman_(prefer_waksman)
{
}

RoutePlan
Router::plan(const Permutation &d) const
{
    if (d.size() != net_.numLines())
        fatal("permutation size %zu does not match router N = %llu",
              d.size(),
              static_cast<unsigned long long>(net_.numLines()));

    if (inFClass(d))
        return RoutePlan{RouteStrategy::SelfRouting, d, {}, {}, 1};
    if (isOmega(d))
        return RoutePlan{RouteStrategy::OmegaBit, d, {}, {}, 1};
    if (prefer_waksman_) {
        return RoutePlan{RouteStrategy::Waksman, d, {},
                         waksmanSetup(net_.topology(), d), 1};
    }
    return RoutePlan{RouteStrategy::TwoPass, d, twoPassPlan(net_, d),
                     {}, 2};
}

std::vector<Word>
Router::execute(const RoutePlan &plan,
                const std::vector<Word> &data) const
{
    switch (plan.strategy) {
      case RouteStrategy::SelfRouting: {
        const auto out = net_.permutePayloads(plan.perm, data);
        if (!out)
            panic("self-routing plan failed for a planned F member");
        return *out;
      }
      case RouteStrategy::OmegaBit: {
        const auto out = net_.permutePayloads(plan.perm, data,
                                              RoutingMode::OmegaBit);
        if (!out)
            panic("omega-bit plan failed for a planned Omega "
                  "member");
        return *out;
      }
      case RouteStrategy::TwoPass:
        if (!plan.two_pass)
            panic("two-pass plan is missing its factorization");
        return twoPassPermute(net_, *plan.two_pass, data);
      case RouteStrategy::Waksman: {
        if (!plan.states)
            panic("waksman plan is missing its switch states");
        const auto res = net_.routeWithStates(plan.perm, *plan.states);
        if (!res.success)
            panic("waksman plan failed to realize its permutation");
        std::vector<Word> out(data.size());
        for (std::size_t i = 0; i < data.size(); ++i)
            out[res.realized_dest[i]] = data[i];
        return out;
      }
    }
    panic("unreachable routing strategy");
}

std::vector<Word>
Router::route(const Permutation &d,
              const std::vector<Word> &data) const
{
    return execute(plan(d), data);
}

} // namespace srbenes
