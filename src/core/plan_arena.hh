// srb-lint: arena — SRB009: plan bytes come from PlanArena here.
// srb-lint: modeled — SRB010: locking goes through common/sync.hh.
/**
 * @file
 * Tiled arena for plan bytes: the resident form of routing plans.
 *
 * Waksman's succinct-plan bound (N lg N - N + 1 control bits) says a
 * rearrangeable network's configuration is tiny next to the flat
 * FastPlan working set (slot-order control masks plus materialized
 * dest/src gather tables: ~76 KiB per plan at n = 12 against ~6 KiB
 * of switch-packed control bits). BENCH_setup.json showed where that
 * difference bites: a 64-plan batch writes ~5 MiB of plan bytes, the
 * working set falls out of L2, and the per-plan cost more than
 * doubles. This arena is the fix's storage half: plan bytes live in
 * cache-budget-sized tiles, carved out with a bump pointer and
 * recycled through exact-size free lists, with byte-level accounting
 * the cache layer can expose and evict against.
 *
 * Two consumers:
 *
 *  - TiledPlans (below): a batch of succinct plans produced by
 *    SetupEngine::setupTiled, stored STAGE-MAJOR inside each tile —
 *    all plans' stage-0 rows contiguous, then stage-1, ... — so the
 *    fused setup→execute pipeline streams one stage of a whole tile
 *    per pass and the tile never leaves cache while it is hot.
 *  - Router's sharded plan cache: each shard owns an arena holding
 *    the switch-packed control bits of its resident plans; entries
 *    account their bytes, eviction can run against a byte budget,
 *    and gauges export arena residency/occupancy.
 *
 * alloc()/release() are thread-safe (a small mutex; both are
 * cold-path operations: plan insertion, eviction, final release of a
 * shared plan on whichever thread drops the last reference). The
 * returned blocks themselves are synchronized by whatever publishes
 * them (the shard lock, or the batch hand-off of TiledPlans).
 */

#ifndef SRBENES_CORE_PLAN_ARENA_HH
#define SRBENES_CORE_PLAN_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bitops.hh"
#include "common/sync.hh"
#include "common/thread_annotations.hh"
#include "obs/metrics.hh"

namespace srbenes
{

/**
 * Switch states packed one bit per switch, stage-major, switch i of
 * a stage at word i/64 bit i%64 — the same bit order state_io uses,
 * but word-addressed so a stage's 64-switch groups are single loads.
 * This flat, self-owning form is the compatibility currency between
 * the engines and state_io; the arena-resident forms below carry the
 * same bits without the per-plan vector.
 */
struct PackedStates
{
    unsigned n = 0;
    /** Words per stage, ceil((N/2) / 64). */
    Word words_per_stage = 0;
    /** (2n-1) * words_per_stage words, contiguous. */
    // srb-lint: allow(SRB009) the materialized compat form is the
    // one deliberate heap escape hatch out of the arena.
    std::vector<Word> words;

    bool
    get(unsigned stage, Word sw) const
    {
        const Word w = words[stage * words_per_stage + (sw >> 6)];
        return (w >> (sw & 63)) & 1u;
    }

    void
    set(unsigned stage, Word sw, bool v)
    {
        Word &w = words[stage * words_per_stage + (sw >> 6)];
        const Word m = Word{1} << (sw & 63);
        w = v ? (w | m) : (w & ~m);
    }
};

/** One byte-accounting snapshot of a PlanArena. */
struct PlanArenaStats
{
    /** Bytes inside live (allocated, unreleased) blocks. */
    std::size_t resident_bytes = 0;
    /** Bytes backing every tile, live or free. */
    std::size_t capacity_bytes = 0;
    std::size_t tiles = 0;
    std::size_t live_blocks = 0;
    /** resident / capacity; 0 before the first tile exists. */
    double occupancy = 0.0;
};

class PlanArena
{
  public:
    /**
     * The default tile: sized so one tile of plan bytes plus the
     * producer's scratch planes sit comfortably inside a commodity
     * per-core L2 (tiles are the unit the fused pipeline keeps
     * resident, not the whole batch).
     */
    static constexpr std::size_t kDefaultTileBytes = 256 * 1024;

    explicit PlanArena(std::size_t tile_bytes = kDefaultTileBytes);

    PlanArena(const PlanArena &) = delete;
    PlanArena &operator=(const PlanArena &) = delete;

    std::size_t tileBytes() const noexcept { return tile_bytes_; }
    /** Whole words one tile can hold (alloc() ceiling is soft:
     *  larger requests get a dedicated oversize tile). */
    std::size_t tileWords() const noexcept { return tile_words_; }

    /**
     * Carve a block of @p words Words out of the arena: an exact-size
     * free-list hit when a released block of this size exists, a bump
     * allocation from the open tile otherwise (opening a new tile —
     * oversized if needed — when the open one cannot fit it).
     * Returned memory is NOT zeroed. words == 0 is a fatal() (a
     * zero-byte plan is a caller bug, and nullptr would be
     * indistinguishable from failure).
     */
    Word *alloc(std::size_t words);

    /**
     * Return @p block (a pointer previously produced by alloc() with
     * the same @p words) to the exact-size free list. The arena never
     * shrinks: tiles persist and freed blocks are recycled, which is
     * the steady state a plan cache wants.
     */
    void release(Word *block, std::size_t words);

    PlanArenaStats stats() const;
    std::size_t residentBytes() const;
    std::size_t capacityBytes() const;

    /**
     * Attach residency gauges (obs/metrics.hh); the arena keeps them
     * current from inside alloc()/release(), so a final release on a
     * foreign thread still lands in the export. Either may be null.
     */
    void attachGauges(obs::Gauge *resident, obs::Gauge *capacity);

  private:
    struct Tile
    {
        std::unique_ptr<Word[]> words;
        std::size_t cap = 0;  //!< words in this tile
        std::size_t used = 0; //!< bump offset
    };

    Word *allocLocked(std::size_t words) SRB_REQUIRES(mu_);
    void publishGaugesLocked() SRB_REQUIRES(mu_);

    const std::size_t tile_bytes_;
    const std::size_t tile_words_;

    mutable sync::Mutex mu_;
    std::vector<Tile> tiles_ SRB_GUARDED_BY(mu_);
    /** Exact-size free lists: word count -> recycled blocks. */
    std::unordered_map<std::size_t, std::vector<Word *>> free_
        SRB_GUARDED_BY(mu_);
    std::size_t live_words_ SRB_GUARDED_BY(mu_) = 0;
    std::size_t live_blocks_ SRB_GUARDED_BY(mu_) = 0;
    std::size_t capacity_words_ SRB_GUARDED_BY(mu_) = 0;

    /** Registry-served residency gauges; null when unattached. */
    obs::Gauge *g_resident_ SRB_GUARDED_BY(mu_) = nullptr;
    obs::Gauge *g_capacity_ SRB_GUARDED_BY(mu_) = nullptr;
};

/**
 * The succinct, arena-resident form of one plan's configuration:
 * switch-packed control bits (PackedStates bit order), stage s's row
 * at words + s * stage_stride. Produced by the Router's plan-cache
 * compaction and by TiledPlans; the flat PackedStates form is
 * materialized on demand only.
 */
struct PackedPlanBits
{
    unsigned n = 0;
    Word words_per_stage = 0;
    /** Words between consecutive stages (== words_per_stage for a
     *  lone plan; tile_capacity * words_per_stage inside a tile). */
    Word stage_stride = 0;
    const Word *words = nullptr;

    bool
    get(unsigned stage, Word sw) const
    {
        const Word w = words[Word{stage} * stage_stride + (sw >> 6)];
        return (w >> (sw & 63)) & 1u;
    }
};

/**
 * A batch of succinct plans produced by SetupEngine::setupTiled: the
 * per-plan heap allocations of the FastPlan path replaced by
 * stage-major tile blocks in a PlanArena. Movable, not copyable; the
 * blocks return to the arena on destruction, and the arena (owned or
 * caller-provided) outlives every view handed out.
 */
class TiledPlans
{
  public:
    TiledPlans() = default;
    ~TiledPlans();
    TiledPlans(TiledPlans &&other) noexcept;
    TiledPlans &operator=(TiledPlans &&other) noexcept;
    TiledPlans(const TiledPlans &) = delete;
    TiledPlans &operator=(const TiledPlans &) = delete;

    unsigned n() const noexcept { return n_; }
    std::size_t size() const noexcept { return success_.size(); }
    bool empty() const noexcept { return success_.empty(); }
    Word wordsPerStage() const noexcept { return words_per_stage_; }
    /** Plans per full tile. */
    Word tileCapacity() const noexcept { return tile_cap_; }
    std::size_t tiles() const noexcept { return tile_base_.size(); }

    /** True iff plan @p i realized its permutation exactly. */
    bool success(std::size_t i) const { return success_[i] != 0; }

    /** Zero-copy view of plan @p i's packed control bits. */
    PackedPlanBits bits(std::size_t i) const;

    /** Materialized flat PackedStates of plan @p i (compat form for
     *  state_io consumers and the differential tests). */
    PackedStates packedStates(std::size_t i) const;

    /** Byte accounting of the arena behind this batch. */
    PlanArenaStats arenaStats() const;

    /** Live plan bytes of this batch alone (its tile blocks). */
    std::size_t planBytes() const noexcept;

  private:
    friend class SetupEngine;

    void releaseBlocks();

    unsigned n_ = 0;
    unsigned stages_ = 0;
    Word words_per_stage_ = 0;
    Word tile_cap_ = 0;
    /** Shared so views stay valid however the batch travels. */
    std::shared_ptr<PlanArena> arena_;
    /** One stage-major block per tile; tile t holds plans
     *  [t * tile_cap, min(size, (t+1) * tile_cap)). */
    std::vector<Word *> tile_base_;
    std::vector<std::uint8_t> success_;
};

} // namespace srbenes

#endif // SRBENES_CORE_PLAN_ARENA_HH
