#include "core/stats.hh"

#include "common/logging.hh"

namespace srbenes
{

Word
countCrossed(const SwitchStates &states)
{
    Word crossed = 0;
    for (const auto &stage : states)
        for (auto s : stage)
            crossed += s != 0;
    return crossed;
}

std::vector<double>
stageUtilization(const SwitchStates &states)
{
    std::vector<double> util;
    util.reserve(states.size());
    for (const auto &stage : states) {
        Word crossed = 0;
        for (auto s : stage)
            crossed += s != 0;
        util.push_back(stage.empty()
                           ? 0.0
                           : static_cast<double>(crossed) /
                                 static_cast<double>(stage.size()));
    }
    return util;
}

double
crossedFraction(const SwitchStates &states)
{
    Word total = 0;
    for (const auto &stage : states)
        total += stage.size();
    if (total == 0)
        return 0.0;
    return static_cast<double>(countCrossed(states)) /
           static_cast<double>(total);
}

std::vector<unsigned>
idleStages(const SwitchStates &states)
{
    std::vector<unsigned> idle;
    for (unsigned s = 0; s < states.size(); ++s) {
        bool all_straight = true;
        for (auto st : states[s])
            all_straight = all_straight && st == 0;
        if (all_straight)
            idle.push_back(s);
    }
    return idle;
}

Word
statesHammingDistance(const SwitchStates &a, const SwitchStates &b)
{
    if (a.size() != b.size())
        panic("comparing state arrays of %zu and %zu stages",
              a.size(), b.size());
    Word distance = 0;
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].size() != b[s].size())
            panic("stage %zu width mismatch", s);
        for (std::size_t i = 0; i < a[s].size(); ++i)
            distance += (a[s][i] != 0) != (b[s][i] != 0);
    }
    return distance;
}

} // namespace srbenes
