/**
 * @file
 * The Benes network topology B(n), Fig. 1 of the paper.
 *
 * B(n) has N = 2^n terminals and 2n-1 stages of N/2 binary switches.
 * Recursively, it is a stage of switches, two copies of B(n-1), and a
 * closing stage of switches; B(1) is a single switch. This class
 * flattens that recursion into an explicit wiring table so the whole
 * fabric can be simulated iteratively, set up externally
 * (WaksmanSetup), and pipelined (PipelinedBenes):
 *
 *  - stages are numbered 0 .. 2n-2 left to right;
 *  - within a stage, lines 2i and 2i+1 enter switch i (top to
 *    bottom), line 2i on the upper port;
 *  - boundary s (0 <= s <= 2n-3) is the fixed wiring between the
 *    outputs of stage s and the inputs of stage s+1.
 *
 * The wiring realizes Fig. 1: after the first stage of a (sub)network
 * spanning lines [base, base + 2^m), the upper/lower switch outputs
 * fan out to the upper/lower B(m-1) halves (an unshuffle of the m
 * local index bits); the boundary before the closing stage is the
 * corresponding shuffle.
 */

#ifndef SRBENES_CORE_TOPOLOGY_HH
#define SRBENES_CORE_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"

namespace srbenes
{

/** Per-switch binary states, indexed [stage][switch]; 0 = straight
 *  (through), 1 = crossed (exchange), Fig. 2. */
using SwitchStates = std::vector<std::vector<std::uint8_t>>;

class BenesTopology
{
  public:
    /** Build B(n); n >= 1, N = 2^n terminals. */
    explicit BenesTopology(unsigned n);

    unsigned n() const { return n_; }
    /** Number of input (and output) terminals, N = 2^n. */
    Word numLines() const { return Word{1} << n_; }
    /** 2n - 1 stages of switches. */
    unsigned numStages() const { return 2 * n_ - 1; }
    /** N/2 switches per stage. */
    Word switchesPerStage() const { return numLines() / 2; }
    /** Total binary switches, N log N - N/2. */
    Word numSwitches() const { return numStages() * switchesPerStage(); }

    /**
     * The destination-tag bit that self-sets switches of @p stage:
     * bit b for stage b and stage 2n-2-b (Fig. 3).
     */
    unsigned
    controlBit(unsigned stage) const
    {
        return std::min(stage, 2 * n_ - 2 - stage);
    }

    /**
     * Fixed wiring: the line position at the input of stage
     * @p boundary + 1 fed by line position @p line at the output of
     * stage @p boundary.
     */
    Word
    wireToNext(unsigned boundary, Word line) const
    {
        return wires_[boundary][line];
    }

    /** Freshly allocated all-zero switch-state array. */
    SwitchStates makeStates() const;

  private:
    void build(unsigned m, Word base_line, unsigned base_stage);

    unsigned n_;
    /** wires_[boundary][line]; boundaries 0 .. 2n-3 (empty for n=1). */
    std::vector<std::vector<Word>> wires_;
};

} // namespace srbenes

#endif // SRBENES_CORE_TOPOLOGY_HH
