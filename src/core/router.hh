/**
 * @file
 * The one-stop routing facade.
 *
 * A downstream user has a permutation and data; which of the
 * library's mechanisms should carry it? This facade plans the
 * CHEAPEST strategy automatically:
 *
 *   SelfRouting  if D is in F(n)        -- 1 pass, zero setup;
 *   OmegaBit     else if D is in Omega  -- 1 pass, one mode wire;
 *   TwoPass      otherwise (default)    -- 2 self-routed passes,
 *                O(N log N) planning once, only tags move after;
 *   Waksman      otherwise (opt-in)     -- 1 pass, ships switch
 *                states to the fabric.
 *
 * Plans are immutable and reusable: plan once per communication
 * pattern, execute per data vector (the paper's SIMD setting, where
 * the same pattern recurs every iteration).
 *
 * Two layers make the reuse path near-free:
 *
 *  - every plan is verified through the bit-sliced FastEngine at
 *    planning time and carries the realized lane mapping, so
 *    execute() is a single contiguous gather — no fabric
 *    re-simulation, no allocation beyond the result (and none at
 *    all via executeInto);
 *  - route() consults an LRU plan cache keyed by a permutation
 *    hash, so a recurring pattern skips classification and planning
 *    entirely after its first appearance.
 */

#ifndef SRBENES_CORE_ROUTER_HH
#define SRBENES_CORE_ROUTER_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/fast_engine.hh"
#include "core/self_routing.hh"
#include "core/two_pass.hh"

namespace srbenes
{

/** How a plan will drive the fabric. */
enum class RouteStrategy
{
    SelfRouting, //!< one pass, Fig. 3 rule only
    OmegaBit,    //!< one pass, stages 0..n-2 forced
    TwoPass,     //!< two self-routed passes
    Waksman,     //!< one pass, externally loaded states
};

const char *routeStrategyName(RouteStrategy s);

/** An immutable, reusable routing plan for one permutation. */
struct RoutePlan
{
    RouteStrategy strategy;
    Permutation perm;
    /** TwoPass only. */
    std::optional<TwoPassPlan> two_pass;
    /** Waksman only. */
    std::optional<SwitchStates> states;
    /** Passes through the fabric per executed vector. */
    unsigned passes = 1;
    /**
     * Realized lane mapping, verified through the FastEngine at
     * planning time (for TwoPass, the composition of both passes; its
     * ctrl masks are then empty). Plans built by Router always carry
     * it; a hand-assembled plan without it falls back to the
     * reference fabric simulation in execute().
     */
    std::shared_ptr<const FastPlan> fast;
};

class Router
{
  public:
    /**
     * @param prefer_waksman resolve non-F/non-Omega permutations
     *        with a single externally-set pass instead of two
     *        self-routed ones.
     * @param plan_cache_capacity distinct recurring patterns kept
     *        hot; 0 disables the cache.
     */
    explicit Router(unsigned n, bool prefer_waksman = false,
                    std::size_t plan_cache_capacity = 64);

    const SelfRoutingBenes &fabric() const { return net_; }
    const FastEngine &engine() const { return engine_; }

    /** Plan the cheapest strategy for @p d. */
    RoutePlan plan(const Permutation &d) const;

    /**
     * Plan through the LRU cache: a repeated pattern returns the
     * cached plan without re-classifying or re-routing. Thread-safe.
     */
    std::shared_ptr<const RoutePlan>
    planCached(const Permutation &d) const;

    /** Move a data vector along a previously computed plan. */
    std::vector<Word> execute(const RoutePlan &plan,
                              const std::vector<Word> &data) const;

    /**
     * Allocation-free execute for plans carrying a fast mapping:
     * gathers into @p out, reusing its capacity.
     */
    void executeInto(const RoutePlan &plan,
                     const std::vector<Word> &data,
                     std::vector<Word> &out) const;

    /**
     * Apply one plan to B payload vectors; lanes are sharded across
     * @p num_threads std::thread workers when > 1.
     */
    std::vector<std::vector<Word>>
    executeMany(const RoutePlan &plan,
                const std::vector<std::vector<Word>> &batch,
                unsigned num_threads = 1) const;

    /** Convenience: cached plan + execute in one call. */
    std::vector<Word> route(const Permutation &d,
                            const std::vector<Word> &data) const;

    /** Cached plan + executeMany in one call. */
    std::vector<std::vector<Word>>
    routeBatch(const Permutation &d,
               const std::vector<std::vector<Word>> &batch,
               unsigned num_threads = 1) const;

    /** @{ Plan-cache introspection (for tests and telemetry). */
    std::size_t planCacheSize() const;
    std::size_t planCacheHits() const;
    std::size_t planCacheMisses() const;
    std::size_t planCacheCapacity() const { return cache_capacity_; }
    void clearPlanCache() const;
    /** @} */

  private:
    struct CacheEntry
    {
        std::uint64_t hash;
        std::shared_ptr<const RoutePlan> plan;
    };

    SelfRoutingBenes net_;
    FastEngine engine_;
    bool prefer_waksman_;
    std::size_t cache_capacity_;

    /** LRU list, most recent first, plus a hash index into it. */
    mutable std::mutex cache_mu_;
    mutable std::list<CacheEntry> lru_;
    mutable std::unordered_map<std::uint64_t,
                               std::list<CacheEntry>::iterator>
        cache_index_;
    mutable std::size_t cache_hits_ = 0;
    mutable std::size_t cache_misses_ = 0;
};

} // namespace srbenes

#endif // SRBENES_CORE_ROUTER_HH
