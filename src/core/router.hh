// srb-lint: modeled — SRB010: the plan cache's lock-free recency
// stamps go through common/sync.hh (core/cache_recency.hh).
/**
 * @file
 * The one-stop routing facade.
 *
 * A downstream user has a permutation and data; which of the
 * library's mechanisms should carry it? This facade plans the
 * CHEAPEST strategy automatically:
 *
 *   SelfRouting  if D is in F(n)        -- 1 pass, zero setup;
 *   OmegaBit     else if D is in Omega  -- 1 pass, one mode wire;
 *   TwoPass      otherwise (default)    -- 2 self-routed passes,
 *                O(N log N) planning once, only tags move after;
 *   Waksman      otherwise (opt-in)     -- 1 pass, ships switch
 *                states to the fabric.
 *
 * Plans are immutable and reusable: plan once per communication
 * pattern, execute per data vector (the paper's SIMD setting, where
 * the same pattern recurs every iteration).
 *
 * Two layers make the reuse path near-free:
 *
 *  - every plan is verified through the bit-sliced FastEngine at
 *    planning time and carries the realized lane mapping, so
 *    execute() is a single contiguous gather — no fabric
 *    re-simulation, no allocation beyond the result (and none at
 *    all via executeInto);
 *  - route() consults a sharded, read-mostly plan cache keyed by a
 *    permutation hash, so a recurring pattern skips classification
 *    and planning entirely after its first appearance, and
 *    concurrent readers on different shards never serialize.
 */

#ifndef SRBENES_CORE_ROUTER_HH
#define SRBENES_CORE_ROUTER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hh"
#include "core/cache_recency.hh"
#include "core/fast_engine.hh"
#include "core/plan_arena.hh"
#include "core/route_outcome.hh"
#include "core/self_routing.hh"
#include "core/setup_engine.hh"
#include "core/two_pass.hh"
#include "obs/metrics.hh"

namespace srbenes
{

/** How a plan will drive the fabric. */
enum class RouteStrategy
{
    SelfRouting, //!< one pass, Fig. 3 rule only
    OmegaBit,    //!< one pass, stages 0..n-2 forced
    TwoPass,     //!< two self-routed passes
    Waksman,     //!< one pass, externally loaded states
};

const char *routeStrategyName(RouteStrategy s);

/** An immutable, reusable routing plan for one permutation. */
struct RoutePlan
{
    RouteStrategy strategy;
    Permutation perm;
    /** TwoPass only. */
    std::optional<TwoPassPlan> two_pass;
    /** Waksman only. */
    std::optional<SwitchStates> states;
    /** Passes through the fabric per executed vector. */
    unsigned passes = 1;
    /**
     * Realized lane mapping, verified through the FastEngine at
     * planning time (for TwoPass, the composition of both passes; its
     * ctrl masks are then empty). Plans built by Router always carry
     * it; a hand-assembled plan without it falls back to the
     * reference fabric simulation in execute().
     *
     * Plans resident in the Router's cache are COMPACTED: the flat
     * ctrl masks and the dest table (derivable from perm on a
     * success plan) are dropped and the switch settings live on as
     * packed_ctrl below. Only the src gather table — what execute
     * actually reads — stays flat.
     */
    std::shared_ptr<const FastPlan> fast;
    /**
     * Succinct switch-packed control bits of a cache-compacted plan
     * (a view into a per-shard PlanArena block; words == nullptr on
     * uncompacted plans and on composed TwoPass mappings, which
     * carry per-pass states in two_pass instead).
     */
    PackedPlanBits packed_ctrl;
    /**
     * Owner of packed_ctrl.words: its deleter returns the block to
     * the shard's arena (and keeps the arena alive), so a plan
     * handed out by planCached stays valid across eviction.
     */
    std::shared_ptr<const Word> packed_block;
};

/** One plan-cache shard's counters, as returned by cacheStats(). */
struct CacheShardStats
{
    std::size_t size = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    /** Resident bytes of the shard's cached plans (perm + src +
     *  packed control bits + strategy extras). */
    std::size_t bytes = 0;
    /** Shard plan-arena residency/footprint (packed_ctrl blocks). */
    std::size_t arena_resident_bytes = 0;
    std::size_t arena_capacity_bytes = 0;
};

class Router
{
  public:
    /**
     * @param prefer_waksman resolve non-F/non-Omega permutations
     *        with a single externally-set pass instead of two
     *        self-routed ones.
     * @param plan_cache_capacity distinct recurring patterns kept
     *        hot across all shards; 0 disables the cache.
     * @param cache_shards independent cache shards; lookups take one
     *        shard's reader lock only, so K threads with disjoint
     *        working sets never serialize. Clamped to
     *        [1, plan_cache_capacity] when the cache is enabled.
     * @param metrics registry receiving this router's instruments
     *        (plan-cache hit/miss/eviction per shard, resident-byte
     *        and arena gauges, strategy counts, cold-plan latency).
     *        nullptr disables instrumentation; the default is the
     *        process-global registry.
     * @param plan_cache_bytes resident-byte budget across all
     *        shards: after an insert pushes the cache past it, the
     *        globally least-recently-used plans are evicted until
     *        the cache fits again (entry-count capacity still
     *        applies independently). 0 disables the byte budget.
     */
    explicit Router(unsigned n, bool prefer_waksman = false,
                    std::size_t plan_cache_capacity = 64,
                    unsigned cache_shards = 8,
                    obs::MetricsRegistry *metrics =
                        obs::defaultRegistry(),
                    std::size_t plan_cache_bytes = 0);

    const SelfRoutingBenes &fabric() const noexcept { return net_; }
    const FastEngine &engine() const noexcept { return engine_; }
    /** The bit-sliced cold-plan engine all planning goes through. */
    const SetupEngine &setupEngine() const noexcept { return setup_; }

    /** Plan the cheapest strategy for @p d. */
    RoutePlan plan(const Permutation &d) const;

    /**
     * Plan through the sharded plan cache: a repeated pattern
     * returns the cached plan without re-classifying or re-routing.
     * Thread-safe; hits take one shard's reader lock only.
     */
    std::shared_ptr<const RoutePlan>
    planCached(const Permutation &d) const;

    /**
     * The cache hash; exposed so callers that pre-compute it (the
     * streaming layer) shard their own tiers consistently.
     */
    static std::uint64_t hashPermutation(const Permutation &d);

    /** Move a data vector along a previously computed plan. */
    std::vector<Word> execute(const RoutePlan &plan,
                              const std::vector<Word> &data) const;

    /**
     * Allocation-free execute for plans carrying a fast mapping:
     * gathers into @p out, reusing its capacity.
     */
    void executeInto(const RoutePlan &plan,
                     const std::vector<Word> &data,
                     std::vector<Word> &out) const;

    /**
     * Apply one plan to B payload vectors; lanes are sharded across
     * @p num_threads std::thread workers when > 1.
     */
    std::vector<std::vector<Word>>
    executeMany(const RoutePlan &plan,
                const std::vector<std::vector<Word>> &batch,
                unsigned num_threads = 1) const;

    /**
     * Convenience: cached plan + execute in one call, answering in
     * the unified value-or-error taxonomy (core/route_outcome.hh).
     * A healthy Router can plan every permutation, so the outcome is
     * always ok with tier Primary — the shared signature is what the
     * resilient layer and the network adapters build on.
     */
    RouteOutcome routeOutcome(const Permutation &d,
                              const std::vector<Word> &data) const;

    /**
     * Cached plan + execute in one call.
     * @deprecated Superseded by routeOutcome(); kept as a thin shim
     * for source compatibility. The warning fires only under
     * -DSRBENES_STRICT_DEPRECATION so in-tree builds stay clean.
     */
    SRB_DEPRECATED_API("use Router::routeOutcome()")
    std::vector<Word> route(const Permutation &d,
                            const std::vector<Word> &data) const;

    /** Cached plan + executeMany in one call. */
    std::vector<std::vector<Word>>
    routeBatch(const Permutation &d,
               const std::vector<std::vector<Word>> &batch,
               unsigned num_threads = 1) const;

    /** @{ Plan-cache introspection (for tests and telemetry). */
    std::size_t planCacheSize() const;
    std::size_t planCacheHits() const;
    std::size_t planCacheMisses() const;
    std::size_t planCacheEvictions() const;
    /** Resident bytes of all cached plans across shards. */
    std::size_t planCacheBytes() const;
    std::size_t planCacheByteBudget() const noexcept
    {
        return cache_bytes_budget_;
    }
    std::size_t planCacheCapacity() const noexcept
    {
        return cache_capacity_;
    }
    std::size_t planCacheShards() const noexcept
    {
        return shards_.size();
    }
    /** Per-shard size/capacity/hits/misses/evictions. */
    std::vector<CacheShardStats> cacheStats() const;
    void clearPlanCache() const;
    /** @} */

  private:
    /**
     * One shard: a read-mostly hash -> plan map. Hits touch only the
     * shard's reader lock plus a relaxed recency stamp; inserts take
     * the writer lock and evict the least-recently-stamped entry
     * when the shard is over its share of the capacity.
     */
    struct CacheShard
    {
        struct Entry
        {
            Entry(std::shared_ptr<const RoutePlan> p, std::uint64_t t,
                  std::size_t b)
                : plan(std::move(p)), last_used(t), bytes(b)
            {
            }
            std::shared_ptr<const RoutePlan> plan;
            RecencyStamp last_used;
            /** Resident bytes this entry accounts for. */
            std::size_t bytes;
        };
        mutable SharedMutex mu;
        std::unordered_map<std::uint64_t, Entry> map
            SRB_GUARDED_BY(mu);
        /** Sum of the entries' bytes, maintained incrementally. */
        std::size_t bytes SRB_GUARDED_BY(mu) = 0;
        /** Arena holding the packed_ctrl blocks of this shard's
         *  compacted plans; blocks outlive eviction through each
         *  plan's packed_block deleter. */
        std::shared_ptr<PlanArena> arena;
        /** Registry-served counters; null when metrics are off. */
        obs::Counter *hits = nullptr;
        obs::Counter *misses = nullptr;
        obs::Counter *evictions = nullptr;
        /** Resident plan bytes of this shard, for the export. */
        obs::Gauge *bytes_g = nullptr;
    };

    CacheShard &shardFor(std::uint64_t hash) const;
    RoutePlan planImpl(const Permutation &d) const;
    /**
     * Compact a freshly planned RoutePlan for cache residency: the
     * flat ctrl masks become switch-packed bits in @p sh's arena
     * (packed_ctrl / packed_block) and the derivable dest table and
     * misroute list are dropped; only src stays flat. No-op for
     * mappings that carry no masks (TwoPass compositions).
     */
    void compactForCache(RoutePlan &p, CacheShard &sh) const;
    /** Resident bytes of one plan as cached (heap payloads only). */
    static std::size_t planResidentBytes(const RoutePlan &p);
    /** Evict globally-LRU entries while @p over() says so. */
    template <typename Over> void evictWhile(Over over) const;

    SelfRoutingBenes net_;
    FastEngine engine_;
    SetupEngine setup_;
    bool prefer_waksman_;
    std::size_t cache_capacity_;
    std::size_t cache_bytes_budget_;
    mutable std::vector<std::unique_ptr<CacheShard>> shards_;
    /** Global recency clock for the stamps. */
    RecencyClock tick_;

    /** @{ Observability (obs/metrics.hh); null when disabled. */
    obs::MetricsRegistry *metrics_;
    obs::Counter *plans_by_strategy_[4] = {};
    obs::Counter *classified_engine_ = nullptr;
    obs::Counter *classified_structural_ = nullptr;
    obs::Histogram *cold_plan_ns_ = nullptr;
    /** Cold-plan latency split by the strategy that won. */
    obs::Histogram *setup_ns_by_strategy_[4] = {};
    /** @} */
};

} // namespace srbenes

#endif // SRBENES_CORE_ROUTER_HH
