/**
 * @file
 * The one-stop routing facade.
 *
 * A downstream user has a permutation and data; which of the
 * library's mechanisms should carry it? This facade plans the
 * CHEAPEST strategy automatically:
 *
 *   SelfRouting  if D is in F(n)        -- 1 pass, zero setup;
 *   OmegaBit     else if D is in Omega  -- 1 pass, one mode wire;
 *   TwoPass      otherwise (default)    -- 2 self-routed passes,
 *                O(N log N) planning once, only tags move after;
 *   Waksman      otherwise (opt-in)     -- 1 pass, ships switch
 *                states to the fabric.
 *
 * Plans are immutable and reusable: plan once per communication
 * pattern, execute per data vector (the paper's SIMD setting, where
 * the same pattern recurs every iteration).
 */

#ifndef SRBENES_CORE_ROUTER_HH
#define SRBENES_CORE_ROUTER_HH

#include <optional>
#include <string>

#include "core/self_routing.hh"
#include "core/two_pass.hh"

namespace srbenes
{

/** How a plan will drive the fabric. */
enum class RouteStrategy
{
    SelfRouting, //!< one pass, Fig. 3 rule only
    OmegaBit,    //!< one pass, stages 0..n-2 forced
    TwoPass,     //!< two self-routed passes
    Waksman,     //!< one pass, externally loaded states
};

const char *routeStrategyName(RouteStrategy s);

/** An immutable, reusable routing plan for one permutation. */
struct RoutePlan
{
    RouteStrategy strategy;
    Permutation perm;
    /** TwoPass only. */
    std::optional<TwoPassPlan> two_pass;
    /** Waksman only. */
    std::optional<SwitchStates> states;
    /** Passes through the fabric per executed vector. */
    unsigned passes = 1;
};

class Router
{
  public:
    /**
     * @param prefer_waksman resolve non-F/non-Omega permutations
     *        with a single externally-set pass instead of two
     *        self-routed ones.
     */
    explicit Router(unsigned n, bool prefer_waksman = false);

    const SelfRoutingBenes &fabric() const { return net_; }

    /** Plan the cheapest strategy for @p d. */
    RoutePlan plan(const Permutation &d) const;

    /** Move a data vector along a previously computed plan. */
    std::vector<Word> execute(const RoutePlan &plan,
                              const std::vector<Word> &data) const;

    /** Convenience: plan + execute in one call. */
    std::vector<Word> route(const Permutation &d,
                            const std::vector<Word> &data) const;

  private:
    SelfRoutingBenes net_;
    bool prefer_waksman_;
};

} // namespace srbenes

#endif // SRBENES_CORE_ROUTER_HH
