/**
 * @file
 * Bit-sliced batched setup engine: plan production at plane speed.
 *
 * FastEngine already routes tags through the fabric word-parallel,
 * but everything AROUND that pass — seeding the tag planes,
 * emitting the physical-order PackedStates a plan consumer wants —
 * historically fell back to per-lane / per-switch scalar walks.
 * This class is the cold-plan counterpart of the execution engine:
 * Section III's parallel-setup story applied to the setup path
 * itself.
 *
 * The structural fact it exploits: stage s pairs slots {x, x ^ 2^b}
 * with the physical upper input on the slot whose bit b is clear
 * (see fast_engine.hh). Because every inter-stage wiring of B(n) is
 * a pure bit permutation of the line index, the map from a switch's
 * physical index i to the RANK of its upper slot among all
 * bit-b-clear slots is itself a bit permutation of the n-1 index
 * bits of i. The constructor derives that permutation per stage
 * (and verifies it switch-by-switch rather than assuming it), then
 * factors it into transpositions. Producing PackedStates from a
 * plan's slot-order control masks is then:
 *
 *   1. compress each stage's mask to its upper lanes (drop bit b):
 *      a handful of shift-or folds per 64-bit word;
 *   2. apply the stage's transposition schedule as masked delta
 *      swaps / word swaps over the compressed vector.
 *
 * Both steps touch O(S / 64) words per stage — no per-switch loop
 * ever runs (enforced by srb-lint rule SRB008 on the .cc file).
 *
 * setupMany() amortizes dispatch over a batch of B independent
 * permutations, sharding the batch across worker threads in the
 * same spirit as FastEngine::executeMany (OpenMP when compiled in,
 * std::thread otherwise).
 */

#ifndef SRBENES_CORE_SETUP_ENGINE_HH
#define SRBENES_CORE_SETUP_ENGINE_HH

#include <utility>
#include <vector>

#include "core/fast_engine.hh"
#include "obs/metrics.hh"

namespace srbenes
{

/** A cold plan together with its packed physical switch settings. */
struct SetupResult
{
    FastPlan plan;
    PackedStates packed;
};

class SetupEngine
{
  public:
    /**
     * Build the per-stage compression/permutation schedules for
     * @p eng's fabric. The engine reference is retained; it must
     * outlive this object.
     *
     * @param metrics registry receiving this engine's instruments
     *        (plans produced, batch-size histogram). nullptr
     *        disables instrumentation.
     */
    explicit SetupEngine(const FastEngine &eng,
                         obs::MetricsRegistry *metrics =
                             obs::defaultRegistry());

    const FastEngine &engine() const { return eng_; }

    /** Cold-plan @p d through the bit-sliced fabric. */
    FastPlan plan(const Permutation &d,
                  RoutingMode mode = RoutingMode::SelfRouting) const;

    /**
     * Physical-order PackedStates of @p plan, produced word-parallel
     * from its slot-order control masks. Bit-for-bit equal to
     * FastEngine::planPackedStates (the scalar reference), which the
     * differential tests assert.
     */
    PackedStates packedStates(const FastPlan &plan) const;

    /** Fused cold plan + packed-state production. */
    SetupResult setupPacked(const Permutation &d,
                            RoutingMode mode =
                                RoutingMode::SelfRouting) const;

    /**
     * Plan a batch of independent permutations. With
     * @p num_threads > 1 the batch is sharded across workers
     * (OpenMP when available, std::thread otherwise); results are
     * returned in input order either way.
     */
    std::vector<FastPlan>
    setupMany(const std::vector<Permutation> &batch,
              RoutingMode mode = RoutingMode::SelfRouting,
              unsigned num_threads = 1) const;

  private:
    /** Compress stage @p s's slot-order mask to upper-lane ranks. */
    void compressStage(unsigned s, const Word *ctrl, Word *out) const;
    /** Apply transposition (p, q), p < q, to a compressed vector. */
    void applySwap(Word *x, unsigned p, unsigned q) const;

    const FastEngine &eng_;
    /** Words per compressed stage vector, ceil((N/2) / 64). */
    Word packed_words_;
    /**
     * Per-stage factorization of the rank -> switch-index bit
     * permutation into transpositions (p, q) of the n-1 index bits,
     * to be applied in order.
     */
    std::vector<std::vector<std::pair<unsigned, unsigned>>> swaps_;

    /** @{ Observability (obs/metrics.hh); null when disabled. */
    obs::Counter *plans_ = nullptr;
    obs::Histogram *batch_perms_ = nullptr;
    /** @} */
};

} // namespace srbenes

#endif // SRBENES_CORE_SETUP_ENGINE_HH
