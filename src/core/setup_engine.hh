/**
 * @file
 * Bit-sliced batched setup engine: plan production at plane speed.
 *
 * FastEngine already routes tags through the fabric word-parallel,
 * but everything AROUND that pass — seeding the tag planes,
 * emitting the physical-order PackedStates a plan consumer wants —
 * historically fell back to per-lane / per-switch scalar walks.
 * This class is the cold-plan counterpart of the execution engine:
 * Section III's parallel-setup story applied to the setup path
 * itself.
 *
 * The structural fact it exploits: stage s pairs slots {x, x ^ 2^b}
 * with the physical upper input on the slot whose bit b is clear
 * (see fast_engine.hh). Because every inter-stage wiring of B(n) is
 * a pure bit permutation of the line index, the map from a switch's
 * physical index i to the RANK of its upper slot among all
 * bit-b-clear slots is itself a bit permutation of the n-1 index
 * bits of i. The constructor derives that permutation per stage
 * (and verifies it switch-by-switch rather than assuming it), then
 * factors it into transpositions. Producing PackedStates from a
 * plan's slot-order control masks is then:
 *
 *   1. compress each stage's mask to its upper lanes (drop bit b):
 *      a handful of shift-or folds per 64-bit word;
 *   2. apply the stage's transposition schedule as masked delta
 *      swaps / word swaps over the compressed vector.
 *
 * Both steps touch O(S / 64) words per stage — no per-switch loop
 * ever runs (enforced by srb-lint rule SRB008 on the .cc file).
 *
 * setupMany() amortizes dispatch over a batch of B independent
 * permutations, sharding the batch across worker threads in the
 * same spirit as FastEngine::executeMany (OpenMP when compiled in,
 * std::thread otherwise).
 *
 * setupTiled() / setupExecuteMany() are the cache-conscious batch
 * path. setupMany materializes a full FastPlan per permutation —
 * slot-order control masks plus dest/src gather tables, ~76 KiB at
 * n = 12 — so a 64-plan batch writes ~5 MiB and falls out of L2
 * (BENCH_setup.json's batch cliff). The tiled path writes each plan
 * once, already in its succinct switch-packed form ((2n-1) * N/2
 * bits, within a word-rounding of Waksman's N lg N - N + 1 bound),
 * stage-major inside cache-budget-sized PlanArena tiles, and never
 * allocates per plan. The fused variant then routes one payload per
 * permutation tile-by-tile — a tile's plans are set up, then its
 * payloads are transported while the tile's working set is still
 * resident, with the next tile's permutation/payload streams
 * prefetched under the current tile's compute.
 */

#ifndef SRBENES_CORE_SETUP_ENGINE_HH
#define SRBENES_CORE_SETUP_ENGINE_HH

#include <memory>
#include <utility>
#include <vector>

#include "core/fast_engine.hh"
#include "core/plan_arena.hh"
#include "obs/metrics.hh"

namespace srbenes
{

/** A cold plan together with its packed physical switch settings. */
struct SetupResult
{
    FastPlan plan;
    PackedStates packed;
};

class SetupEngine
{
  public:
    /**
     * Build the per-stage compression/permutation schedules for
     * @p eng's fabric. The engine reference is retained; it must
     * outlive this object.
     *
     * @param metrics registry receiving this engine's instruments
     *        (plans produced, batch-size histogram). nullptr
     *        disables instrumentation.
     */
    explicit SetupEngine(const FastEngine &eng,
                         obs::MetricsRegistry *metrics =
                             obs::defaultRegistry());

    const FastEngine &engine() const { return eng_; }

    /** Cold-plan @p d through the bit-sliced fabric. */
    FastPlan plan(const Permutation &d,
                  RoutingMode mode = RoutingMode::SelfRouting) const;

    /**
     * Physical-order PackedStates of @p plan, produced word-parallel
     * from its slot-order control masks. Bit-for-bit equal to
     * FastEngine::planPackedStates (the scalar reference), which the
     * differential tests assert.
     */
    PackedStates packedStates(const FastPlan &plan) const;

    /** Fused cold plan + packed-state production. */
    SetupResult setupPacked(const Permutation &d,
                            RoutingMode mode =
                                RoutingMode::SelfRouting) const;

    /**
     * Plan a batch of independent permutations. With
     * @p num_threads > 1 the batch is sharded across workers
     * (OpenMP when available, std::thread otherwise); results are
     * returned in input order either way.
     */
    std::vector<FastPlan>
    setupMany(const std::vector<Permutation> &batch,
              RoutingMode mode = RoutingMode::SelfRouting,
              unsigned num_threads = 1) const;

    /**
     * Plan a batch straight into arena-resident succinct form: one
     * switch-packed row per stage, stage-major inside tiles of
     * @p arena (a fresh default-budget arena when null). No FastPlan
     * and no per-plan heap allocation is ever materialized; each
     * plan's packed bits are produced word-parallel as the planes
     * pass each stage. success(i) records whether permutation i
     * self-routed exactly. With @p num_threads > 1, workers each own
     * whole tiles (a resident tile per shard). Results are
     * bit-for-bit identical to packedStates(setupMany(...)[i]),
     * which the differential tests assert.
     */
    TiledPlans
    setupTiled(const std::vector<Permutation> &batch,
               RoutingMode mode = RoutingMode::SelfRouting,
               unsigned num_threads = 1,
               std::shared_ptr<PlanArena> arena = nullptr) const;

    /**
     * Fused setup→execute tile pipeline: route payloads[i] by a
     * fresh plan for batch[i], processing the batch as cache-sized
     * tiles — a tile's plans are set up, then its payloads
     * transported while the tile is resident, with the next tile's
     * permutation and payload streams prefetched under the current
     * tile's compute. Outputs are bit-for-bit what
     * executeMany-after-setupMany produces. @p plans_out (optional)
     * receives the batch's TiledPlans for reuse/inspection.
     */
    std::vector<std::vector<Word>>
    setupExecuteMany(const std::vector<Permutation> &batch,
                     const std::vector<std::vector<Word>> &payloads,
                     RoutingMode mode = RoutingMode::SelfRouting,
                     unsigned num_threads = 1,
                     TiledPlans *plans_out = nullptr,
                     std::shared_ptr<PlanArena> arena = nullptr) const;

    /** Plans per tile for this fabric under @p arena's tile budget. */
    Word tileCapacity(const PlanArena &arena) const;

  private:
    /** Allocate the tile skeleton of a @p count-plan batch. */
    TiledPlans makeTiled(std::size_t count,
                         std::shared_ptr<PlanArena> arena) const;
    /**
     * Plan one permutation, writing stage s's switch-packed row at
     * rows + s * row_stride (the stage-major tile layout); @p planes
     * and @p ctrl are reusable scratch. On return @p planes holds
     * the final tag planes (the misroute-execute fallback reads
     * them) and @p success says whether every tag reached home.
     */
    void setupPlanRows(const Permutation &d, RoutingMode mode,
                       std::vector<Word> &planes,
                       std::vector<Word> &ctrl, Word *rows,
                       Word row_stride, bool &success) const;
    /** Compress stage @p s's slot-order mask to upper-lane ranks. */
    void compressStage(unsigned s, const Word *ctrl, Word *out) const;
    /** Apply transposition (p, q), p < q, to a compressed vector. */
    void applySwap(Word *x, unsigned p, unsigned q) const;

    const FastEngine &eng_;
    /** Words per compressed stage vector, ceil((N/2) / 64). */
    Word packed_words_;
    /**
     * Per-stage factorization of the rank -> switch-index bit
     * permutation into transpositions (p, q) of the n-1 index bits,
     * to be applied in order.
     */
    std::vector<std::vector<std::pair<unsigned, unsigned>>> swaps_;

    /** @{ Observability (obs/metrics.hh); null when disabled. */
    obs::Counter *plans_ = nullptr;
    obs::Histogram *batch_perms_ = nullptr;
    /** @} */
};

} // namespace srbenes

#endif // SRBENES_CORE_SETUP_ENGINE_HH
