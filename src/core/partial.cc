#include "core/partial.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace srbenes
{

PartialMapping::PartialMapping(std::vector<Word> dest)
    : dest_(std::move(dest)), active_count_(0)
{
    if (dest_.empty())
        fatal("empty partial mapping");
    std::vector<bool> seen(dest_.size(), false);
    for (Word d : dest_) {
        if (d == kIdle)
            continue;
        if (d >= dest_.size())
            fatal("partial destination %llu out of range",
                  static_cast<unsigned long long>(d));
        if (seen[d])
            fatal("duplicate partial destination %llu",
                  static_cast<unsigned long long>(d));
        seen[d] = true;
        ++active_count_;
    }
}

PartialMapping
PartialMapping::restrict(const Permutation &perm,
                         const std::vector<bool> &active)
{
    if (active.size() != perm.size())
        fatal("mask size %zu != permutation size %zu", active.size(),
              perm.size());
    std::vector<Word> dest(perm.size(), kIdle);
    for (std::size_t i = 0; i < perm.size(); ++i)
        if (active[i])
            dest[i] = perm[i];
    return PartialMapping(std::move(dest));
}

PartialMapping
PartialMapping::random(std::size_t size, std::size_t active_count,
                       Prng &prng)
{
    if (active_count > size)
        fatal("cannot activate %zu of %zu inputs", active_count,
              size);
    // Random sources and random destinations, both without
    // replacement.
    std::vector<Word> src(size), dst(size);
    std::iota(src.begin(), src.end(), Word{0});
    std::iota(dst.begin(), dst.end(), Word{0});
    for (std::size_t i = size; i > 1; --i) {
        std::swap(src[i - 1], src[prng.below(i)]);
        std::swap(dst[i - 1], dst[prng.below(i)]);
    }
    std::vector<Word> dest(size, kIdle);
    for (std::size_t k = 0; k < active_count; ++k)
        dest[src[k]] = dst[k];
    return PartialMapping(std::move(dest));
}

PartialRouteResult
routePartial(const SelfRoutingBenes &net,
             const PartialMapping &mapping)
{
    const BenesTopology &topo = net.topology();
    const Word size = topo.numLines();
    if (mapping.size() != size)
        fatal("mapping size %zu does not match network N = %llu",
              mapping.size(), static_cast<unsigned long long>(size));

    std::vector<Word> cur(mapping.dest()), next(size);

    PartialRouteResult res;
    res.states = topo.makeStates();

    const unsigned stages = topo.numStages();
    for (unsigned s = 0; s < stages; ++s) {
        const unsigned b = topo.controlBit(s);
        for (Word i = 0; i < topo.switchesPerStage(); ++i) {
            const Word up = cur[2 * i];
            const Word lo = cur[2 * i + 1];
            std::uint8_t state = 0;
            if (up != PartialMapping::kIdle) {
                state = static_cast<std::uint8_t>(bit(up, b));
            } else if (lo != PartialMapping::kIdle) {
                // Route the lone lower signal out the correct port.
                state =
                    static_cast<std::uint8_t>(1 - bit(lo, b));
            }
            res.states[s][i] = state;
            if (state)
                std::swap(cur[2 * i], cur[2 * i + 1]);
        }
        if (s + 1 < stages) {
            for (Word line = 0; line < size; ++line)
                next[topo.wireToNext(s, line)] = cur[line];
            cur.swap(next);
        }
    }

    res.output_tags = cur;
    res.delivered = 0;
    for (Word j = 0; j < size; ++j)
        if (cur[j] == j)
            ++res.delivered;
    res.success = res.delivered == mapping.activeCount();
    return res;
}

} // namespace srbenes
