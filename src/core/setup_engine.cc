// srb-lint: bitsliced — SRB008 forbids per-switch scalar walks here.

#include "core/setup_engine.hh"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "core/fast_kernels.hh"

namespace srbenes
{

namespace
{

/**
 * Mask of lanes whose index bit @p k is clear, for k < 6 (the same
 * pattern family fast_engine uses for its upper-input masks).
 */
constexpr Word kBitClear[6] = {
    0x5555555555555555ULL, 0x3333333333333333ULL,
    0x0f0f0f0f0f0f0f0fULL, 0x00ff00ff00ff00ffULL,
    0x0000ffff0000ffffULL, 0x00000000ffffffffULL,
};

/**
 * Compress the bit-@p b-clear lanes of @p x to a contiguous rank
 * field in the low 32 bits (software PEXT for this regular mask
 * family): after each fold level j, rank r sits at position
 * ((r >> j) << (j + 1)) | (r & lowMask(j)).
 */
Word
compressUpper(Word x, unsigned b)
{
    x &= kBitClear[b];
    for (unsigned j = b; j < 5; ++j)
        x = (x | (x >> (1u << j))) & kBitClear[j + 1];
    return (x | (x >> 32)) & 0xffffffffULL;
}

/** Drop bit @p b of @p x, closing the gap. */
Word
dropBit(Word x, unsigned b)
{
    return ((x >> (b + 1)) << b) | (x & lowMask(b));
}

} // namespace

SetupEngine::SetupEngine(const FastEngine &eng,
                         obs::MetricsRegistry *metrics)
    : eng_(eng)
{
    const unsigned n = eng_.n_;
    const unsigned stages = eng_.numStages();
    // srb-lint: allow(SRB008) construction-time schedule derivation
    const Word S = eng_.switchesPerStage();
    packed_words_ = (S + 63) / 64;
    swaps_.resize(stages);

    // Stage s pairs slots {x, x ^ 2^b}; the upper slot of physical
    // switch i has bit b clear, and its rank among bit-b-clear slots
    // is a bit permutation of i's n-1 index bits (the inter-stage
    // wirings of B(n) are pure bit permutations of the line index).
    // Derive that permutation from the basis switches, verify it on
    // every switch — once, at construction — and factor it into
    // transpositions for the word-parallel producer.
    const unsigned nb = n - 1;
    std::vector<unsigned> perm(nb);
    for (unsigned s = 0; s < stages; ++s) {
        const unsigned b = std::min(s, 2 * n - 2 - s);
        const Word *slot = eng_.switch_slot_.data() + Word{s} * S;

        for (unsigned k = 0; k < nb; ++k) {
            const Word img = dropBit(slot[Word{1} << k], b);
            if (!isPowerOfTwo(img))
                panic("stage %u: rank of basis switch 2^%u is %llu, "
                      "not a power of two",
                      s, k, static_cast<unsigned long long>(img));
            perm[k] = floorLog2(img);
        }
        // srb-lint: allow(SRB008) one-time constructor verification
        for (Word i = 0; i < S; ++i) {
            Word expect = 0;
            for (unsigned k = 0; k < nb; ++k)
                expect |= bit(i, k) << perm[k];
            if (dropBit(slot[i], b) != expect)
                panic("stage %u switch %llu: rank map deviates from "
                      "the derived bit permutation",
                      s, static_cast<unsigned long long>(i));
        }

        // Factor each cycle (c0 c1 ... cm-1) of the permutation as
        // (c0 c1)(c1 c2)...(cm-2 cm-1); applying the lane swaps in
        // that order realizes out[i] = compressed[rank(i)].
        auto &sched = swaps_[s];
        std::vector<bool> seen(nb, false);
        for (unsigned c0 = 0; c0 < nb; ++c0) {
            if (seen[c0])
                continue;
            seen[c0] = true;
            unsigned prev = c0;
            for (unsigned cur = perm[c0]; cur != c0; cur = perm[cur]) {
                seen[cur] = true;
                sched.emplace_back(std::min(prev, cur),
                                   std::max(prev, cur));
                prev = cur;
            }
        }
    }

    if (metrics) {
        const std::string inst = metrics->uniqueInstance("setup");
        plans_ = &metrics->counter("srbenes_setup_plans_total",
                                   {{"setup", inst}});
        batch_perms_ = &metrics->histogram("srbenes_setup_batch_perms",
                                           {{"setup", inst}});
    }
}

void
SetupEngine::compressStage(unsigned s, const Word *ctrl,
                           Word *out) const
{
    const unsigned b = std::min(s, 2 * eng_.n_ - 2 - s);
    if (b >= 6) {
        // Upper lanes fill whole words; dropping slot-bit b drops
        // bit (b - 6) of the word index.
        const unsigned k = b - 6;
        for (Word w2 = 0; w2 < packed_words_; ++w2)
            out[w2] = ctrl[((w2 >> k) << (k + 1)) | (w2 & lowMask(k))];
        return;
    }
    // Each input word contributes 32 ranks; word pairs concatenate.
    const Word W = eng_.lane_words_;
    for (Word w2 = 0; w2 < packed_words_; ++w2) {
        const Word lo = compressUpper(ctrl[2 * w2], b);
        const Word hi = (2 * w2 + 1 < W)
                            ? compressUpper(ctrl[2 * w2 + 1], b)
                            : 0;
        out[w2] = lo | (hi << 32);
    }
}

void
SetupEngine::applySwap(Word *x, unsigned p, unsigned q) const
{
    const Word W2 = packed_words_;
    if (q < 6) {
        // In-word: lanes with bit p set / bit q clear move up by
        // 2^q - 2^p to the mirrored lane; the mask selects the
        // lower lane of each exchanged pair.
        const unsigned d = (1u << q) - (1u << p);
        const Word m = ~kBitClear[p] & kBitClear[q];
        for (Word w = 0; w < W2; ++w) {
            const Word t = (x[w] ^ (x[w] >> d)) & m;
            x[w] ^= t ^ (t << d);
        }
        return;
    }
    if (p >= 6) {
        // Both bits select the word index: swap whole words whose
        // indices differ in bits (p - 6) and (q - 6).
        const Word dp = Word{1} << (p - 6);
        const Word dq = Word{1} << (q - 6);
        for (Word w = 0; w < W2; ++w)
            if ((w & dp) && !(w & dq))
                std::swap(x[w], x[w - dp + dq]);
        return;
    }
    // Mixed: bit-p-set lanes of the low word of each pair trade
    // places with bit-p-clear lanes of the word 2^(q-6) above it.
    const unsigned sp = 1u << p;
    const Word dq = Word{1} << (q - 6);
    const Word m = kBitClear[p];
    for (Word w = 0; w < W2; ++w) {
        if (w & dq)
            continue;
        const Word lo = x[w];
        const Word hi = x[w + dq];
        const Word t = ((lo >> sp) ^ hi) & m;
        x[w + dq] = hi ^ t;
        x[w] = lo ^ (t << sp);
    }
}

FastPlan
SetupEngine::plan(const Permutation &d, RoutingMode mode) const
{
    FastPlan p = eng_.routePlan(d, mode);
    if (plans_)
        plans_->inc();
    return p;
}

PackedStates
SetupEngine::packedStates(const FastPlan &plan) const
{
    const unsigned stages = eng_.numStages();
    if (plan.n != eng_.n_)
        fatal("plan shaped for another network");
    if (plan.ctrl.size() != Word{stages} * eng_.lane_words_)
        fatal("plan carries no per-stage control masks");

    PackedStates packed;
    packed.n = eng_.n_;
    packed.words_per_stage = packed_words_;
    packed.words.resize(Word{stages} * packed_words_);
    for (unsigned s = 0; s < stages; ++s) {
        Word *out = packed.words.data() + Word{s} * packed_words_;
        compressStage(s, plan.ctrl.data() + Word{s} * eng_.lane_words_,
                      out);
        for (const auto &pq : swaps_[s])
            applySwap(out, pq.first, pq.second);
    }
    return packed;
}

SetupResult
SetupEngine::setupPacked(const Permutation &d, RoutingMode mode) const
{
    SetupResult res;
    res.plan = plan(d, mode);
    res.packed = packedStates(res.plan);
    return res;
}

std::vector<FastPlan>
SetupEngine::setupMany(const std::vector<Permutation> &batch,
                       RoutingMode mode, unsigned num_threads) const
{
    std::vector<FastPlan> out(batch.size());
    if (batch_perms_)
        batch_perms_->observe(batch.size());
    if (plans_)
        plans_->inc(batch.size());

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned T = static_cast<unsigned>(std::min<std::size_t>(
        std::min(num_threads, hw), batch.size()));
    if (T <= 1) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = eng_.routePlan(batch[i], mode);
        return out;
    }

    // Validate on the calling thread so shape errors fatal() here,
    // not inside a worker.
    for (const Permutation &d : batch)
        if (d.size() != eng_.numLines())
            fatal("permutation size %zu does not match network "
                  "N = %llu",
                  d.size(),
                  static_cast<unsigned long long>(eng_.numLines()));

#if defined(_OPENMP)
    #pragma omp parallel for num_threads(static_cast<int>(T)) \
        schedule(dynamic)
    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = eng_.routePlan(batch[i], mode);
#else
    // Strided sharding in the executeMany / routeBatch spirit:
    // worker t plans items t, t + T, t + 2T, ...
    std::vector<std::thread> threads;
    threads.reserve(T);
    for (unsigned t = 0; t < T; ++t)
        threads.emplace_back([&, t] {
            for (std::size_t i = t; i < batch.size(); i += T)
                out[i] = eng_.routePlan(batch[i], mode);
        });
    for (auto &th : threads)
        th.join();
#endif
    return out;
}

Word
SetupEngine::tileCapacity(const PlanArena &arena) const
{
    const Word plan_words = Word{eng_.numStages()} * packed_words_;
    return std::max<Word>(1, arena.tileWords() / plan_words);
}

TiledPlans
SetupEngine::makeTiled(std::size_t count,
                       std::shared_ptr<PlanArena> arena) const
{
    if (!arena)
        arena = std::make_shared<PlanArena>();
    TiledPlans out;
    out.n_ = eng_.n_;
    out.stages_ = eng_.numStages();
    out.words_per_stage_ = packed_words_;
    // A short batch never pays for a full tile's worth of rows.
    out.tile_cap_ = std::min<Word>(
        tileCapacity(*arena), std::max<std::size_t>(1, count));
    out.arena_ = std::move(arena);
    out.success_.assign(count, 0);
    if (count == 0)
        return out;

    const std::size_t tiles =
        (count + out.tile_cap_ - 1) / out.tile_cap_;
    const std::size_t block_words = std::size_t{out.stages_} *
                                    out.tile_cap_ * packed_words_;
    out.tile_base_.reserve(tiles);
    for (std::size_t t = 0; t < tiles; ++t)
        out.tile_base_.push_back(out.arena_->alloc(block_words));
    return out;
}

void
SetupEngine::setupPlanRows(const Permutation &d, RoutingMode mode,
                           std::vector<Word> &planes,
                           std::vector<Word> &ctrl, Word *rows,
                           Word row_stride, bool &success) const
{
    const unsigned stages = eng_.numStages();
    eng_.loadTagPlanes(d, planes);
    ctrl.resize(eng_.lane_words_);
    for (unsigned s = 0; s < stages; ++s) {
        // Control masks read before the exchange (Fig. 3), then
        // compressed and rank-permuted straight into the tile row —
        // the succinct form is the ONLY one ever written.
        eng_.stageCtrl(s, planes.data(), mode, ctrl.data());
        Word *row = rows + Word{s} * row_stride;
        compressStage(s, ctrl.data(), row);
        for (const auto &pq : swaps_[s])
            applySwap(row, pq.first, pq.second);
        eng_.stageExchange(s, planes.data(), ctrl.data());
    }
    success = eng_.planesAtHome(planes);
}

TiledPlans
SetupEngine::setupTiled(const std::vector<Permutation> &batch,
                        RoutingMode mode, unsigned num_threads,
                        std::shared_ptr<PlanArena> arena) const
{
    for (const Permutation &d : batch)
        if (d.size() != eng_.numLines())
            fatal("permutation size %zu does not match network "
                  "N = %llu",
                  d.size(),
                  static_cast<unsigned long long>(eng_.numLines()));

    TiledPlans out = makeTiled(batch.size(), std::move(arena));
    if (batch.empty())
        return out;
    if (plans_)
        plans_->inc(batch.size());
    if (batch_perms_)
        batch_perms_->observe(batch.size());

    const Word cap = out.tile_cap_;
    const std::size_t tiles = out.tile_base_.size();
    const Word row_stride = cap * packed_words_;
    auto runTiles = [&](std::size_t t0, std::size_t step) {
        std::vector<Word> planes;
        std::vector<Word> ctrl;
        for (std::size_t t = t0; t < tiles; t += step) {
            Word *base = out.tile_base_[t];
            const std::size_t lo = t * cap;
            const std::size_t hi = std::min(batch.size(), lo + cap);
            for (std::size_t i = lo; i < hi; ++i) {
                // One-plan prefetch lead on the tag stream.
                if (i + 1 < hi)
                    prefetchWords(batch[i + 1].dest().data(),
                                  eng_.numLines());
                bool ok = false;
                setupPlanRows(batch[i], mode, planes, ctrl,
                              base + (i - lo) * packed_words_,
                              row_stride, ok);
                out.success_[i] = ok ? 1 : 0;
            }
        }
    };

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned T = static_cast<unsigned>(std::min<std::size_t>(
        std::min(num_threads, hw), tiles));
    if (T <= 1) {
        runTiles(0, 1);
        return out;
    }
    std::vector<std::thread> threads;
    threads.reserve(T);
    for (unsigned t = 0; t < T; ++t)
        threads.emplace_back(runTiles, t, T);
    for (auto &th : threads)
        th.join();
    return out;
}

std::vector<std::vector<Word>>
SetupEngine::setupExecuteMany(const std::vector<Permutation> &batch,
                              const std::vector<std::vector<Word>> &payloads,
                              RoutingMode mode, unsigned num_threads,
                              TiledPlans *plans_out,
                              std::shared_ptr<PlanArena> arena) const
{
    const Word N = eng_.numLines();
    if (payloads.size() != batch.size())
        fatal("fused batch: %zu payloads for %zu permutations",
              payloads.size(), batch.size());
    for (const Permutation &d : batch)
        if (d.size() != N)
            fatal("permutation size %zu does not match network "
                  "N = %llu",
                  d.size(), static_cast<unsigned long long>(N));
    for (const std::vector<Word> &p : payloads)
        if (p.size() != N)
            fatal("payload vector size %zu != N = %llu", p.size(),
                  static_cast<unsigned long long>(N));

    TiledPlans plans = makeTiled(batch.size(), std::move(arena));
    std::vector<std::vector<Word>> outs(batch.size());
    if (batch.empty()) {
        if (plans_out)
            *plans_out = std::move(plans);
        return outs;
    }
    if (plans_)
        plans_->inc(batch.size());
    if (batch_perms_)
        batch_perms_->observe(batch.size());

    const Word cap = plans.tile_cap_;
    const std::size_t tiles = plans.tile_base_.size();
    const Word row_stride = cap * packed_words_;
    const KernelTable &kern = activeKernels();
    auto runTiles = [&](std::size_t t0, std::size_t step) {
        std::vector<Word> planes;
        std::vector<Word> ctrl;
        std::vector<Word> src;
        // Realized gather tables of the (rare) misrouting plans,
        // captured while their final tag planes are still in scratch.
        std::unordered_map<std::size_t, std::vector<Word>> miss_src;
        for (std::size_t t = t0; t < tiles; t += step) {
            Word *base = plans.tile_base_[t];
            const std::size_t lo = t * cap;
            const std::size_t hi = std::min(batch.size(), lo + cap);

            // Setup half of the tile.
            for (std::size_t i = lo; i < hi; ++i) {
                if (i + 1 < hi)
                    prefetchWords(batch[i + 1].dest().data(), N);
                bool ok = false;
                setupPlanRows(batch[i], mode, planes, ctrl,
                              base + (i - lo) * packed_words_,
                              row_stride, ok);
                plans.success_[i] = ok ? 1 : 0;
                if (!ok)
                    eng_.srcFromPlanes(batch[i], planes, miss_src[i]);
            }

            // Transport half: the tile's permutations are still
            // resident, so a success plan's gather table is just the
            // inverse of its permutation — no plan bytes re-read, no
            // dest/src ever stored. Prefetch leads one payload.
            for (std::size_t i = lo; i < hi; ++i) {
                if (i + 1 < batch.size())
                    prefetchWords(payloads[i + 1].data(), N);
                const Word *sp;
                if (plans.success_[i]) {
                    eng_.inverseInto(batch[i], src);
                    sp = src.data();
                } else {
                    sp = miss_src[i].data();
                }
                outs[i].resize(N);
                kern.gather(outs[i].data(), payloads[i].data(), sp, N);
            }
            miss_src.clear();
        }
    };

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned T = static_cast<unsigned>(std::min<std::size_t>(
        std::min(num_threads, hw), tiles));
    if (T <= 1) {
        runTiles(0, 1);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(T);
        for (unsigned t = 0; t < T; ++t)
            threads.emplace_back(runTiles, t, T);
        for (auto &th : threads)
            th.join();
    }
    if (eng_.executes_)
        eng_.executes_->inc(batch.size());
    if (plans_out)
        *plans_out = std::move(plans);
    return outs;
}

} // namespace srbenes
