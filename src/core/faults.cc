#include "core/faults.hh"

#include "common/logging.hh"
#include "core/stats.hh"
#include "obs/metrics.hh"
#include "perm/f_class.hh"

namespace srbenes
{

namespace
{

/**
 * Fault tooling is free-function-shaped, so its counters live as
 * function-local statics in the global registry (registration is a
 * one-time cold path; the references stay valid for process life).
 */
obs::Counter &
faultCounter(const char *name)
{
    return obs::MetricsRegistry::global().counter(name);
}

/**
 * Shared faulty-fabric pass. Mirror of SelfRoutingBenes::run with
 * the fault overlay applied at state-decision time (a stuck switch
 * corrupts everything downstream, so the override cannot be
 * post-applied). With @p loaded non-null the self-setting logic is
 * disabled and the switches take the loaded states (except where
 * stuck); otherwise @p mode picks the tag-driven rule.
 */
RouteResult
faultyPass(const SelfRoutingBenes &net, const Permutation &d,
           const std::vector<StuckFault> &faults, RoutingMode mode,
           const SwitchStates *loaded)
{
    const BenesTopology &topo = net.topology();
    const Word size = topo.numLines();
    if (d.size() != size)
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(size));

    static obs::Counter &injected =
        faultCounter("srbenes_faults_injected_total");
    injected.inc(faults.size());

    // Overlay: -1 = healthy, else the stuck value.
    std::vector<std::vector<int>> overlay(
        topo.numStages(),
        std::vector<int>(topo.switchesPerStage(), -1));
    for (const auto &f : faults) {
        if (f.stage >= topo.numStages() ||
            f.switch_index >= topo.switchesPerStage())
            fatal("fault at stage %u switch %llu out of range",
                  f.stage,
                  static_cast<unsigned long long>(f.switch_index));
        overlay[f.stage][f.switch_index] = f.stuck_value;
    }

    struct Signal
    {
        Word tag;
        Word origin;
    };
    std::vector<Signal> cur(size), next(size);
    for (Word i = 0; i < size; ++i)
        cur[i] = Signal{d[i], i};

    RouteResult res;
    res.states = topo.makeStates();
    res.gate_delay = topo.numStages();

    const unsigned stages = topo.numStages();
    for (unsigned s = 0; s < stages; ++s) {
        const unsigned b = topo.controlBit(s);
        for (Word i = 0; i < topo.switchesPerStage(); ++i) {
            std::uint8_t state;
            if (overlay[s][i] >= 0) {
                state = static_cast<std::uint8_t>(overlay[s][i]);
            } else if (loaded) {
                state = (*loaded)[s][i];
            } else if (mode == RoutingMode::OmegaBit &&
                       s + 1 < topo.n()) {
                state = 0;
            } else {
                state = static_cast<std::uint8_t>(
                    bit(cur[2 * i].tag, b));
            }
            res.states[s][i] = state;
            if (state)
                std::swap(cur[2 * i], cur[2 * i + 1]);
        }
        if (s + 1 < stages) {
            for (Word line = 0; line < size; ++line)
                next[topo.wireToNext(s, line)] = cur[line];
            cur.swap(next);
        }
    }

    res.output_tags.resize(size);
    res.realized_dest.resize(size);
    res.success = true;
    for (Word j = 0; j < size; ++j) {
        res.output_tags[j] = cur[j].tag;
        res.realized_dest[cur[j].origin] = j;
        if (cur[j].tag != j) {
            res.success = false;
            res.misrouted_outputs.push_back(j);
        }
    }
    return res;
}

} // namespace

RouteResult
routeWithFaults(const SelfRoutingBenes &net, const Permutation &d,
                const std::vector<StuckFault> &faults,
                RoutingMode mode)
{
    return faultyPass(net, d, faults, mode, nullptr);
}

RouteResult
routeWithFaultsStates(const SelfRoutingBenes &net, const Permutation &d,
                      const std::vector<StuckFault> &faults,
                      const SwitchStates &states)
{
    return faultyPass(net, d, faults, RoutingMode::SelfRouting,
                      &states);
}

RouteOutcome
routeWithFaults(const SelfRoutingBenes &net, const Permutation &d,
                const std::vector<StuckFault> &faults,
                const std::vector<Word> &data, RoutingMode mode)
{
    if (data.size() != d.size())
        fatal("payload size %zu does not match permutation size %zu",
              data.size(), d.size());
    const RouteResult res = faultyPass(net, d, faults, mode, nullptr);
    if (!res.success) {
        RouteError err;
        err.code = RouteErrc::FaultDetected;
        err.tier = ServeTier::Primary;
        err.detail = std::to_string(res.misrouted_outputs.size()) +
                     " outputs received a wrong tag";
        return RouteOutcome::failure(std::move(err));
    }
    // Verified: every tag reached home, so realized_dest == d and
    // the payload lands exactly where the permutation sends it.
    std::vector<Word> out(data.size());
    for (Word i = 0; i < data.size(); ++i)
        out[res.realized_dest[i]] = data[i];
    return RouteOutcome::success(std::move(out));
}

std::vector<Permutation>
faultTestSet(const SelfRoutingBenes &net, Prng &prng)
{
    const BenesTopology &topo = net.topology();

    // Detection-driven greedy cover. State coverage alone is NOT
    // enough: the opening half of the fabric makes free decisions
    // that the tag-driven closing half can compensate, so a stuck
    // opening switch is masked on any test whose affected input
    // pair maps onto one output pair (the identity masks every
    // stage-0 fault, for example). A fault counts as covered only
    // when some test's OUTPUT TAGS actually change under it.
    std::vector<StuckFault> undetected;
    for (unsigned s = 0; s < topo.numStages(); ++s)
        for (Word i = 0; i < topo.switchesPerStage(); ++i)
            for (std::uint8_t v : {std::uint8_t{0}, std::uint8_t{1}})
                undetected.push_back(StuckFault{s, i, v});

    std::vector<Permutation> tests;
    auto absorb = [&](const Permutation &t) {
        const auto healthy = net.route(t).output_tags;
        std::vector<StuckFault> still;
        for (const auto &f : undetected)
            if (routeWithFaults(net, t, {f}).output_tags == healthy)
                still.push_back(f);
        if (still.size() < undetected.size()) {
            tests.push_back(t);
            undetected.swap(still);
        }
    };

    // The identity detects every stuck-crossed fault in the forced
    // (closing) half cheaply; random members cover the rest.
    absorb(Permutation::identity(topo.numLines()));
    const int kMaxDraws = 10000;
    for (int draw = 0; draw < kMaxDraws && !undetected.empty();
         ++draw)
        absorb(randomFMember(topo.n(), prng));
    if (!undetected.empty())
        panic("%zu faults undetected after the draw budget",
              undetected.size());
    return tests;
}

bool
testSetDetects(const SelfRoutingBenes &net,
               const std::vector<Permutation> &tests,
               const StuckFault &fault)
{
    static obs::Counter &checks =
        faultCounter("srbenes_faults_detect_checks_total");
    static obs::Counter &detected =
        faultCounter("srbenes_faults_detected_total");
    checks.inc();
    for (const auto &t : tests) {
        const auto healthy = net.route(t);
        const auto faulty = routeWithFaults(net, t, {fault});
        if (healthy.output_tags != faulty.output_tags) {
            detected.inc();
            return true;
        }
    }
    return false;
}

std::vector<StuckFault>
diagnoseSingleFault(const SelfRoutingBenes &net,
                    const std::vector<Permutation> &tests,
                    const std::vector<std::vector<Word>> &observed)
{
    const BenesTopology &topo = net.topology();
    if (observed.size() != tests.size())
        fatal("need one observation per test (%zu tests, %zu "
              "observations)", tests.size(), observed.size());

    static obs::Counter &diagnoses =
        faultCounter("srbenes_faults_diagnoses_total");
    diagnoses.inc();

    std::vector<StuckFault> candidates;
    for (unsigned s = 0; s < topo.numStages(); ++s) {
        for (Word i = 0; i < topo.switchesPerStage(); ++i) {
            for (std::uint8_t v : {std::uint8_t{0},
                                   std::uint8_t{1}}) {
                const StuckFault fault{s, i, v};
                bool consistent = true;
                for (std::size_t t = 0;
                     consistent && t < tests.size(); ++t) {
                    consistent =
                        routeWithFaults(net, tests[t], {fault})
                            .output_tags == observed[t];
                }
                if (consistent)
                    candidates.push_back(fault);
            }
        }
    }
    return candidates;
}

} // namespace srbenes
