/**
 * @file
 * The unified value-or-error result of every routing entry point.
 *
 * Before this header the stack had four ways to say "it worked":
 * SelfRoutingBenes returned a RouteResult with a success bool,
 * permutePayloads an optional, PermutationNetwork::tryRoute a bare
 * bool, and Router::route simply never failed (panicking on internal
 * contradictions). A serving layer that can detect faults, miss
 * deadlines, and shed load needs one structured answer instead:
 * RouteOutcome carries either the routed payload (plus WHICH serving
 * tier produced it) or a RouteError naming the failure class and the
 * suspected switches.
 *
 * The taxonomy is deliberately small and closed:
 *
 *   ok                the payload was routed and tag-verified;
 *   not_in_F          a single self-routed pass cannot realize the
 *                     permutation (Theorem 1 classification, the
 *                     only error a bare fabric can report);
 *   fault_detected    the fabric misrouted and no fallback tier
 *                     produced a verified result;
 *   deadline_exceeded the request's deadline passed before a
 *                     verified result existed;
 *   shed              the service refused the request under load.
 *
 * StuckFault lives here (not in faults.hh) so the error type can
 * name suspect switches without an include cycle; faults.hh
 * re-exports it to its historical users.
 */

#ifndef SRBENES_CORE_ROUTE_OUTCOME_HH
#define SRBENES_CORE_ROUTE_OUTCOME_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitops.hh"

/**
 * Deprecation decoration for the thin back-compat shims (the old
 * bool/optional/vector signatures kept while callers migrate to
 * RouteOutcome). Off by default so the in-tree callers that
 * deliberately exercise the shims build warning-clean; downstreams
 * define SRBENES_STRICT_DEPRECATION to make the compiler enforce the
 * migration.
 */
#ifdef SRBENES_STRICT_DEPRECATION
#define SRB_DEPRECATED_API(msg) [[deprecated(msg)]]
#else
#define SRB_DEPRECATED_API(msg)
#endif

namespace srbenes
{

/** One faulty switch: its state line is stuck at @p stuck_value. */
struct StuckFault
{
    unsigned stage;
    Word switch_index;
    std::uint8_t stuck_value; //!< 0 = stuck straight, 1 = stuck
                              //!< crossed

    bool operator==(const StuckFault &other) const = default;
};

/** Failure classes a routing service can report. */
enum class RouteErrc : std::uint8_t
{
    Ok = 0,
    NotInF,           //!< not realizable by one self-routed pass
    FaultDetected,    //!< misroute observed, no tier recovered
    DeadlineExceeded, //!< deadline passed before a verified result
    Shed,             //!< refused under load (ring full / overload)
};

/** Wire/JSON name: "ok", "not_in_F", "fault_detected", ... */
const char *routeErrcName(RouteErrc e) noexcept;

/**
 * Which rung of the degraded-mode fallback chain produced a result
 * (DESIGN.md §7): the chain walks Primary -> Reroute -> TwoPass and
 * fail-fasts as Failed.
 */
enum class ServeTier : std::uint8_t
{
    Primary = 0, //!< the planned fast path on a believed-healthy fabric
    Reroute,     //!< forced-state pass pinned around suspect switches
    TwoPass,     //!< re-factored two-pass, each pass tag-verified
    Failed,      //!< no tier produced a verified result
};

const char *serveTierName(ServeTier t) noexcept;

/** The structured error half of a RouteOutcome. */
struct RouteError
{
    RouteErrc code = RouteErrc::Ok;
    /** Deepest tier attempted before giving up. */
    ServeTier tier = ServeTier::Failed;
    /**
     * fault_detected only: the behaviorally-equivalent stuck-at
     * candidates the health diagnosis localized (empty when the
     * evidence fits no single-fault hypothesis).
     */
    std::vector<StuckFault> suspects;
    /** Human-readable context for logs. */
    std::string detail;
};

/**
 * Value-or-error: the routed payload in output order plus the tier
 * that served it, or a RouteError. Accessing the wrong half is a
 * caller bug and panics.
 */
class RouteOutcome
{
  public:
    static RouteOutcome
    success(std::vector<Word> payload,
            ServeTier tier = ServeTier::Primary)
    {
        RouteOutcome o;
        o.payload_ = std::move(payload);
        o.err_.code = RouteErrc::Ok;
        o.err_.tier = tier;
        return o;
    }

    static RouteOutcome
    failure(RouteError err)
    {
        RouteOutcome o;
        o.err_ = std::move(err);
        if (o.err_.code == RouteErrc::Ok)
            o.err_.code = RouteErrc::FaultDetected;
        return o;
    }

    bool ok() const noexcept { return err_.code == RouteErrc::Ok; }
    explicit operator bool() const noexcept { return ok(); }

    RouteErrc errc() const noexcept { return err_.code; }
    /** The tier that served (ok) or the deepest tier attempted. */
    ServeTier tier() const noexcept { return err_.tier; }

    /** The routed payload; panics unless ok(). */
    const std::vector<Word> &value() const;
    /** Move the routed payload out; panics unless ok(). */
    std::vector<Word> &&takeValue();
    /** The structured error; panics when ok(). */
    const RouteError &error() const;

  private:
    std::vector<Word> payload_;
    RouteError err_;
};

} // namespace srbenes

#endif // SRBENES_CORE_ROUTE_OUTCOME_HH
