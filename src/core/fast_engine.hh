/**
 * @file
 * Bit-sliced flat routing engine: the software analogue of the
 * paper's hardware parallelism.
 *
 * The reference simulator (SelfRoutingBenes) moves one (tag, origin)
 * pair at a time through vector<vector<>> wiring tables: O(N log N)
 * branchy scalar work per route. This engine evaluates ALL N/2
 * switches of a stage with a handful of word operations per 64 lanes.
 *
 * Two observations make that possible:
 *
 * 1. Conjugation flattens the wiring away. Let C_s be the composition
 *    of the fixed inter-stage wirings up to the input of stage s
 *    (C_0 = identity). Tracking every signal in "stage-0 coordinates"
 *    — slot x holds the signal that entered on input x of the first
 *    stage if nothing had moved — each stage s becomes a CONDITIONAL
 *    EXCHANGE between slots x and x ^ 2^b, b = controlBit(s), with
 *    the physical upper input on the slot whose bit b is 0. (This is
 *    the same structure that makes B(n) an inverse-omega network
 *    followed by an omega network; the constructor derives the slot
 *    maps from the flattened gather tables and verifies the exchange
 *    property rather than assuming it.) No data is ever moved for a
 *    boundary: one fixed output gather remains at the very end.
 *
 * 2. Bit-slicing turns the Fig. 3 rule into word ops. Destination
 *    tags are stored as n bit-planes of N lanes packed into 64-bit
 *    words: bit x of plane b is bit b of the tag in slot x. The
 *    control mask of stage s is plane b restricted to lanes with
 *    slot-bit b clear (the upper inputs), read BEFORE the exchange —
 *    exactly "bit b of the tag on the upper input". The exchange
 *    itself is the classic delta swap
 *        t = (P ^ (P >> 2^b)) & ctrl;   P ^= t ^ (t << 2^b);
 *    applied to every plane (or an XOR swap of whole words when the
 *    exchange distance crosses word boundaries).
 *
 * Switch states come out of a route as per-stage control masks in
 * slot order; converters produce the physical-order SwitchStates /
 * PackedStates forms on demand (compatibility with WaksmanSetup and
 * state_io), so the hot path never pays the scalar transposition.
 *
 * The execution side is split from planning the way Router plans
 * are: routePlan() runs the fabric once bit-sliced and materializes
 * the realized lane mapping; executeMany() then applies one routed
 * configuration to B payload vectors as contiguous gathers,
 * optionally sharding lanes across std::thread workers for large N.
 */

#ifndef SRBENES_CORE_FAST_ENGINE_HH
#define SRBENES_CORE_FAST_ENGINE_HH

#include <vector>

#include "core/plan_arena.hh"
#include "core/self_routing.hh"
#include "core/topology.hh"
#include "obs/metrics.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/**
 * One routed configuration, kept in the engine's native form. The
 * realized lane mapping is always well defined (switches permute
 * lanes whether or not every tag reached its destination), so a plan
 * can be executed even when success is false — Router never does,
 * but diagnostics may.
 */
struct FastPlan
{
    unsigned n = 0;
    /** True iff every tag reached its numbered output. */
    bool success = false;
    /**
     * Per-stage switch control masks in SLOT order: (2n-1) stages x
     * laneWords() words; bit x of stage s's mask is the state of the
     * exchange on slots {x, x ^ 2^controlBit(s)} (only bits with
     * slot-bit controlBit(s) clear are used). Convert with
     * FastEngine::planStates / planPackedStates. Empty for composed
     * plans that only carry an execution mapping.
     */
    std::vector<Word> ctrl;
    /** Output terminal reached by each input's signal. */
    std::vector<Word> dest;
    /** Inverse gather table: input whose signal reached output j. */
    std::vector<Word> src;
    /** Outputs whose tag differs from their index, ascending. */
    std::vector<Word> misrouted_outputs;
};

class FastEngine
{
  public:
    /**
     * @param metrics registry receiving this engine's instruments
     *        (routes planned, vectors executed, batch-size
     *        histogram). nullptr disables instrumentation.
     */
    explicit FastEngine(unsigned n,
                        obs::MetricsRegistry *metrics =
                            obs::defaultRegistry());

    unsigned n() const { return n_; }
    Word numLines() const { return num_lines_; }
    unsigned numStages() const { return 2 * n_ - 1; }
    Word switchesPerStage() const { return num_lines_ / 2; }
    /** 64-bit words per bit-plane of N lanes. */
    Word laneWords() const { return lane_words_; }

    /**
     * Flat contiguous gather table for @p boundary (0 <= boundary <=
     * 2n-3): the stage-(boundary+1) input line fed by output @p line
     * of stage @p boundary. Same values as BenesTopology::wireToNext,
     * one cache-friendly array per boundary.
     */
    Word
    wireToNext(unsigned boundary, Word line) const
    {
        return flat_wires_[boundary * num_lines_ + line];
    }

    /** Route @p d bit-sliced; the hot planning path. */
    FastPlan routePlan(const Permutation &d,
                       RoutingMode mode = RoutingMode::SelfRouting) const;

    /** Route with externally supplied states (Waksman path). */
    FastPlan planWithStates(const Permutation &d,
                            const SwitchStates &states) const;

    /** Route with externally supplied packed states. */
    FastPlan planWithPacked(const Permutation &d,
                            const PackedStates &packed) const;

    /**
     * Drop-in equivalents of SelfRoutingBenes::route /
     * routeWithStates: bit-for-bit identical RouteResult (states,
     * output_tags, realized_dest, misrouted_outputs, success), built
     * from a bit-sliced pass plus the compatibility converters.
     */
    RouteResult route(const Permutation &d,
                      RoutingMode mode = RoutingMode::SelfRouting) const;
    RouteResult routeWithStates(const Permutation &d,
                                const SwitchStates &states) const;

    /** Apply a routed configuration to one payload vector. */
    std::vector<Word> execute(const FastPlan &plan,
                              const std::vector<Word> &data) const;

    /** Allocation-free variant; @p out is resized to N. */
    void executeInto(const FastPlan &plan, const std::vector<Word> &data,
                     std::vector<Word> &out) const;

    /**
     * Apply one routed configuration to B payload vectors. With
     * @p num_threads > 1 the N output lanes are sharded across
     * std::thread workers (worth it for large N * B only; callers
     * pick the threshold).
     */
    std::vector<std::vector<Word>>
    executeMany(const FastPlan &plan,
                const std::vector<std::vector<Word>> &batch,
                unsigned num_threads = 1) const;

    /** Plan once, then executeMany: route + batched transport. */
    std::vector<std::vector<Word>>
    routeBatch(const Permutation &d,
               const std::vector<std::vector<Word>> &batch,
               RoutingMode mode = RoutingMode::SelfRouting,
               unsigned num_threads = 1) const;

    /** Physical-order switch states of a routed plan. */
    SwitchStates planStates(const FastPlan &plan) const;
    /** Packed physical-order switch states of a routed plan. */
    PackedStates planPackedStates(const FastPlan &plan) const;

    /** SwitchStates -> packed bitset (state_io bit order). */
    PackedStates packStates(const SwitchStates &states) const;
    /** Packed bitset -> SwitchStates; fatal()s on a shape mismatch. */
    SwitchStates unpackStates(const PackedStates &packed) const;

  private:
    /**
     * SetupEngine reads switch_slot_ to precompute the per-stage
     * slot-rank -> switch-index bit permutations that let it emit
     * PackedStates word-parallel.
     */
    friend class SetupEngine;

    void loadTagPlanes(const Permutation &d,
                       std::vector<Word> &planes) const;
    void runPlanes(std::vector<Word> &planes, FastPlan &plan,
                   const std::vector<Word> *forced,
                   RoutingMode mode) const;
    /**
     * @{ Stage-granular pieces of runPlanes, shared with the tiled
     * setup pipeline (SetupEngine::setupTiled) so the Fig. 3 control
     * rule and the exchange have exactly one implementation whether
     * the masks land in a FastPlan or in an arena tile row.
     */
    void stageCtrl(unsigned s, const Word *planes, RoutingMode mode,
                   Word *ctrl) const;
    void stageExchange(unsigned s, Word *planes,
                       const Word *ctrl) const;
    /** True iff @p planes equal the all-tags-home pattern. */
    bool planesAtHome(const std::vector<Word> &planes) const;
    /** Gather table realized by final @p planes (misroute-safe). */
    void srcFromPlanes(const Permutation &d,
                       const std::vector<Word> &planes,
                       std::vector<Word> &src) const;
    /** Gather table of a SUCCESS plan: src[d[i]] = i, no plan
     *  bytes needed beyond the permutation itself. */
    void inverseInto(const Permutation &d, std::vector<Word> &src) const;
    /** @} */
    void finishPlan(FastPlan &plan, const Permutation &d,
                    const std::vector<Word> &planes) const;
    RouteResult toRouteResult(const FastPlan &plan,
                              const Permutation &d) const;

    unsigned n_;
    Word num_lines_;
    Word lane_words_;
    /** Contiguous wiring gather tables, boundary-major. */
    std::vector<Word> flat_wires_;
    /** Stage-major: slot on the upper input of physical switch i. */
    std::vector<Word> switch_slot_;
    /** Slot feeding physical output j after the last stage. */
    std::vector<Word> out_slot_of_output_;
    /** Physical output fed by slot x (inverse of the above). */
    std::vector<Word> output_of_slot_;
    /** Expected final tag planes when every tag reaches home. */
    std::vector<Word> success_pattern_;

    /** @{ Observability (obs/metrics.hh); null when disabled. */
    obs::Counter *routes_planned_ = nullptr;
    obs::Counter *executes_ = nullptr;
    obs::Histogram *batch_vectors_ = nullptr;
    /** @} */
};

} // namespace srbenes

#endif // SRBENES_CORE_FAST_ENGINE_HH
