/**
 * @file
 * The two halves of B(n) as standalone networks.
 *
 * Section II remarks that "the first n stages of B(n) correspond to
 * an inverse omega network except for some rearrangement of
 * switches" and likewise the last n stages to an omega network.
 * This module makes the correspondence exact and testable. With
 * mappings read as permutations of line positions:
 *
 *   { firstHalfMapping(states) }  =  { rho o w0 : rho in
 *                                      InverseOmega(n) }
 *   { omegaHalfMapping(states) }  =  { beta o omega : omega in
 *                                      Omega(n) }
 *
 * where w0 is the fixed all-straight relabeling of the half (a pure
 * bit permutation of the line index; identity at n = 2, one
 * unshuffle at n = 3) and beta is the bit-reversal relabeling --
 * i.e.\ the "rearrangement of switches" amounts to exactly one
 * fixed relabeling per half. The tests verify both set equalities
 * exhaustively over all switch settings at N = 4 and 8, plus that
 * settings-to-mapping is injective (each half realizes exactly
 * 2^(n N/2) distinct mappings, the omega-network count).
 */

#ifndef SRBENES_CORE_HALF_NETWORK_HH
#define SRBENES_CORE_HALF_NETWORK_HH

#include "core/topology.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/**
 * Mapping realized by stages 0..n-1 of B(n) under @p states,
 * measured at the input of stage n (the two-pass split point):
 * input i ends on line result[i].
 */
Permutation firstHalfMapping(const BenesTopology &topo,
                             const SwitchStates &states);

/**
 * Mapping realized by the omega half, stages n-1..2n-2: a signal
 * entering stage n-1 on line m leaves on output result[m].
 */
Permutation omegaHalfMapping(const BenesTopology &topo,
                             const SwitchStates &states);

/**
 * Mapping realized by the strict tail, stages n..2n-2 (what remains
 * after firstHalfMapping); the full route factors as
 * firstHalfMapping(s).then(tailMapping(s)).
 */
Permutation tailMapping(const BenesTopology &topo,
                        const SwitchStates &states);

} // namespace srbenes

#endif // SRBENES_CORE_HALF_NETWORK_HH
