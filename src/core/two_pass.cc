#include "core/two_pass.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/** splitmix64 finalizer for the seeded loop-color draws. */
std::uint64_t
mixFactorKey(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/**
 * Recursive worker: run the looping 2-coloring of the Waksman
 * algorithm, but instead of emitting switch states, record for each
 * original input the upper/lower decision at every recursion level.
 * Those decision bits ARE the middle-stage line label M_i in the
 * recursive numbering of B(n):
 *
 *  - the level-l decision becomes bit l of M_i (which B(n-1-l)
 *    subnetwork the signal uses);
 *  - the port of the final B(1) block (the signal's local input
 *    index there) becomes the top bit.
 *
 * By construction M separates every input pair and every output pair
 * at every granularity, which is exactly Lawrie's pair of window
 * conditions: M is in InverseOmega(n) and D o M^-1 is in Omega(n).
 *
 * @param d    local sub-permutation (size 2^m);
 * @param ids  original input index carried by each local input;
 * @param level current recursion depth (0 = outermost);
 * @param n    total index width;
 * @param mid  output: M, indexed by original input;
 * @param seed loop-coloring seed; 0 = canonical (always pick 0).
 */
void
factorRecurse(const std::vector<Word> &d, const std::vector<Word> &ids,
              unsigned level, unsigned n, std::vector<Word> &mid,
              std::uint64_t seed)
{
    const Word size = d.size();
    if (size == 2) {
        // Final B(1): the local input index is the middle-stage port.
        mid[ids[0]] |= Word{0} << (n - 1);
        mid[ids[1]] |= Word{1} << (n - 1);
        return;
    }

    std::vector<Word> dinv(size);
    for (Word x = 0; x < size; ++x)
        dinv[d[x]] = x;

    // The alternating loop of the Waksman setup: inputs of one pair
    // must part ways, and so must the inputs feeding one output
    // pair. Each loop's starting color is the algorithm's free
    // choice; the seeded draw keys on the loop's starting ORIGINAL
    // input id, which is unique per loop across the whole level.
    std::vector<int> up(size, -1);
    for (Word p = 0; p < size / 2; ++p) {
        if (up[2 * p] != -1)
            continue;
        Word x = 2 * p;
        // Top bit: bit 0 of the finalizer is biased over these
        // small structured keys (see waksman.cc seededColor).
        int val = seed == 0
                      ? 0
                      : static_cast<int>(
                            mixFactorKey(
                                seed ^
                                (std::uint64_t{level} << 48) ^
                                ids[2 * p]) >>
                            63);
        while (up[x] == -1) {
            up[x] = val;
            up[x ^ 1] = 1 - val;
            x = dinv[d[x ^ 1] ^ 1];
        }
    }

    std::vector<Word> usub(size / 2), lsub(size / 2);
    std::vector<Word> uids(size / 2), lids(size / 2);
    for (Word i = 0; i < size / 2; ++i) {
        const Word x_up = 2 * i + static_cast<Word>(up[2 * i] != 0);
        const Word x_dn = x_up ^ 1;
        usub[i] = d[x_up] >> 1;
        lsub[i] = d[x_dn] >> 1;
        uids[i] = ids[x_up];
        lids[i] = ids[x_dn];
        mid[ids[x_dn]] |= Word{1} << level;
    }

    factorRecurse(usub, uids, level + 1, n, mid, seed);
    factorRecurse(lsub, lids, level + 1, n, mid, seed);
}

} // namespace

TwoPassPlan
twoPassPlan(const SelfRoutingBenes &net, const Permutation &d)
{
    return twoPassPlanSeeded(net, d, 0);
}

TwoPassPlan
twoPassPlanSeeded(const SelfRoutingBenes &net, const Permutation &d,
                  std::uint64_t seed)
{
    const unsigned n = net.topology().n();
    const Word size = net.numLines();
    if (d.size() != size)
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(size));

    if (n == 1) {
        // Omega(1) is everything; one real pass suffices.
        return {Permutation::identity(size), d};
    }

    std::vector<Word> mid(size, 0);
    std::vector<Word> ids(size);
    for (Word i = 0; i < size; ++i)
        ids[i] = i;
    factorRecurse(d.dest(), ids, 0, n, mid, seed);

    std::vector<Word> second(size);
    for (Word i = 0; i < size; ++i)
        second[mid[i]] = d[i];
    return {Permutation(std::move(mid)),
            Permutation(std::move(second))};
}

std::vector<Word>
twoPassPermute(const SelfRoutingBenes &net, const TwoPassPlan &plan,
               const std::vector<Word> &data)
{
    const auto mid = net.permutePayloads(plan.first, data,
                                         RoutingMode::SelfRouting);
    if (!mid)
        panic("two-pass plan: first pass not self-routable");
    const auto out = net.permutePayloads(plan.second, *mid,
                                         RoutingMode::OmegaBit);
    if (!out)
        panic("two-pass plan: second pass not omega-routable");
    return *out;
}

} // namespace srbenes
