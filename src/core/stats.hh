/**
 * @file
 * Instrumentation over switch-state arrays: how much of the fabric
 * a route actually exercises. Backs the switch-activity ablation
 * (bench_switch_activity): the class-hint schedule savings of
 * Section III correspond to stages whose switches stay straight.
 */

#ifndef SRBENES_CORE_STATS_HH
#define SRBENES_CORE_STATS_HH

#include <vector>

#include "core/topology.hh"

namespace srbenes
{

/** Total switches in state 1 (crossed). */
Word countCrossed(const SwitchStates &states);

/** Fraction of crossed switches per stage, in stage order. */
std::vector<double> stageUtilization(const SwitchStates &states);

/** Fraction of crossed switches over the whole fabric. */
double crossedFraction(const SwitchStates &states);

/** Stages whose switches are all straight (candidates for the
 *  Section III iteration-skipping shortcuts). */
std::vector<unsigned> idleStages(const SwitchStates &states);

/** Number of positions where two state arrays differ (e.g.\ the
 *  self-routing vs Waksman realizations of one permutation). */
Word statesHammingDistance(const SwitchStates &a,
                           const SwitchStates &b);

} // namespace srbenes

#endif // SRBENES_CORE_STATS_HH
