#include "core/fast_engine.hh"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <thread>

#include "common/logging.hh"
#include "core/fast_kernels.hh"

namespace srbenes
{

namespace
{

/**
 * Mask of lanes whose slot-bit @p b is clear — the physical upper
 * inputs of a bit-b exchange stage — for in-word distances (b < 6).
 */
constexpr Word kUpperMask[6] = {
    0x5555555555555555ULL, 0x3333333333333333ULL,
    0x0f0f0f0f0f0f0f0fULL, 0x00ff00ff00ff00ffULL,
    0x0000ffff0000ffffULL, 0x00000000ffffffffULL,
};

/** Reusable bit-plane arena; capacity persists across routes. */
thread_local std::vector<Word> t_planes;

} // namespace

FastEngine::FastEngine(unsigned n, obs::MetricsRegistry *metrics)
    : n_(n)
{
    // The reference topology enforces 1 <= n <= 30; mirror it (and
    // let it do the check) by building the wiring tables from it.
    const BenesTopology topo(n);
    num_lines_ = topo.numLines();
    lane_words_ = (num_lines_ + 63) / 64;

    const Word size = num_lines_;
    const unsigned stages = numStages();
    const unsigned boundaries = stages - 1;

    flat_wires_.resize(Word{boundaries} * size);
    for (unsigned s = 0; s < boundaries; ++s)
        for (Word line = 0; line < size; ++line)
            flat_wires_[Word{s} * size + line] = topo.wireToNext(s, line);

    // Walk the fabric once, composing the fixed wirings into the
    // slot <-> physical-line maps and checking the conjugated
    // exchange structure this engine relies on.
    std::vector<Word> pos(size); // physical line of slot x
    std::vector<Word> inv(size); // slot on physical line p
    std::iota(pos.begin(), pos.end(), Word{0});
    std::iota(inv.begin(), inv.end(), Word{0});
    std::vector<Word> scratch(size);

    switch_slot_.resize(Word{stages} * switchesPerStage());
    for (unsigned s = 0; s < stages; ++s) {
        const Word d = Word{1} << topo.controlBit(s);
        for (Word i = 0; i < switchesPerStage(); ++i) {
            const Word up = inv[2 * i];
            const Word lo = inv[2 * i + 1];
            if ((up ^ lo) != d || (up & d) != 0)
                panic("stage %u switch %llu pairs slots %llu/%llu; "
                      "not an upper-first bit-%u exchange",
                      s, static_cast<unsigned long long>(i),
                      static_cast<unsigned long long>(up),
                      static_cast<unsigned long long>(lo),
                      topo.controlBit(s));
            switch_slot_[Word{s} * switchesPerStage() + i] = up;
        }
        if (s + 1 < stages) {
            const Word *wire = flat_wires_.data() + Word{s} * size;
            for (Word x = 0; x < size; ++x)
                scratch[x] = wire[pos[x]];
            pos.swap(scratch);
            for (Word x = 0; x < size; ++x)
                inv[pos[x]] = x;
        }
    }

    out_slot_of_output_ = inv;     // slot feeding output j
    output_of_slot_ = pos;         // output fed by slot x

    success_pattern_.assign(Word{n_} * lane_words_, 0);
    for (Word x = 0; x < size; ++x) {
        const Word home = output_of_slot_[x];
        for (unsigned b = 0; b < n_; ++b)
            success_pattern_[Word{b} * lane_words_ + (x >> 6)] |=
                bit(home, b) << (x & 63);
    }

    if (metrics) {
        const std::string inst = metrics->uniqueInstance("engine");
        routes_planned_ = &metrics->counter(
            "srbenes_engine_routes_planned_total", {{"engine", inst}});
        executes_ = &metrics->counter(
            "srbenes_engine_executes_total", {{"engine", inst}});
        batch_vectors_ = &metrics->histogram(
            "srbenes_engine_batch_vectors", {{"engine", inst}});
    }
}

void
FastEngine::loadTagPlanes(const Permutation &d,
                          std::vector<Word> &planes) const
{
    // The transpose kernel writes every word of every plane row
    // (tail lanes zeroed), so a resize without zero-fill suffices.
    planes.resize(Word{n_} * lane_words_);
    activeKernels().packTags(planes.data(), n_, lane_words_,
                             d.dest().data(), num_lines_);
}

void
FastEngine::stageCtrl(unsigned s, const Word *planes, RoutingMode mode,
                      Word *ctrl) const
{
    const unsigned b = std::min(s, 2 * n_ - 2 - s);
    const Word W = lane_words_;
    const Word *pb = planes + Word{b} * W;

    // Control masks: bit b of the tag on each upper input, read
    // before any exchange of this stage (Fig. 3), unless the omega
    // bit holds the stage open.
    if (mode == RoutingMode::OmegaBit && s + 1 < n_) {
        std::memset(ctrl, 0, W * sizeof(Word));
    } else if (b < 6) {
        const Word m = kUpperMask[b];
        for (Word w = 0; w < W; ++w)
            ctrl[w] = pb[w] & m;
    } else {
        const Word dw = Word{1} << (b - 6);
        for (Word w = 0; w < W; ++w)
            ctrl[w] = (w & dw) ? 0 : pb[w];
    }
}

void
FastEngine::stageExchange(unsigned s, Word *planes,
                          const Word *ctrl) const
{
    // Conditional exchange of every plane at distance 2^b, through
    // the runtime-dispatched kernel table.
    const unsigned b = std::min(s, 2 * n_ - 2 - s);
    const KernelTable &kern = activeKernels();
    if (b < 6)
        kern.deltaSwap(planes, n_, lane_words_, ctrl, lane_words_,
                       1u << b);
    else
        kern.pairSwap(planes, n_, lane_words_, ctrl, lane_words_,
                      Word{1} << (b - 6));
}

bool
FastEngine::planesAtHome(const std::vector<Word> &planes) const
{
    return std::equal(planes.begin(), planes.end(),
                      success_pattern_.begin());
}

void
FastEngine::srcFromPlanes(const Permutation &d,
                          const std::vector<Word> &planes,
                          std::vector<Word> &src) const
{
    const Word size = num_lines_;
    src.resize(size);
    std::vector<Word> dinv(size);
    for (Word i = 0; i < size; ++i)
        dinv[d[i]] = i;
    for (Word x = 0; x < size; ++x) {
        const Word w = x >> 6;
        const unsigned sh = x & 63;
        Word tag = 0;
        for (unsigned b = 0; b < n_; ++b)
            tag |= ((planes[Word{b} * lane_words_ + w] >> sh) & 1u) << b;
        src[output_of_slot_[x]] = dinv[tag];
    }
}

void
FastEngine::inverseInto(const Permutation &d,
                        std::vector<Word> &src) const
{
    src.resize(num_lines_);
    for (Word i = 0; i < num_lines_; ++i)
        src[d[i]] = i;
}

void
FastEngine::runPlanes(std::vector<Word> &planes, FastPlan &plan,
                      const std::vector<Word> *forced,
                      RoutingMode mode) const
{
    const unsigned stages = numStages();
    const Word W = lane_words_;
    plan.n = n_;
    plan.ctrl.resize(Word{stages} * W);

    for (unsigned s = 0; s < stages; ++s) {
        Word *ctrl = plan.ctrl.data() + Word{s} * W;
        if (forced)
            std::memcpy(ctrl, forced->data() + Word{s} * W,
                        W * sizeof(Word));
        else
            stageCtrl(s, planes.data(), mode, ctrl);
        stageExchange(s, planes.data(), ctrl);
    }
}

void
FastEngine::finishPlan(FastPlan &plan, const Permutation &d,
                       const std::vector<Word> &planes) const
{
    const Word size = num_lines_;
    plan.dest.resize(size);
    plan.src.resize(size);
    plan.misrouted_outputs.clear();

    // Success iff the final planes equal the home pattern: every
    // output's tag is its own index.
    plan.success = planesAtHome(planes);
    if (plan.success) {
        // Tags ride with their signals, and d is a permutation, so
        // success pins the whole lane mapping to d itself.
        for (Word i = 0; i < size; ++i) {
            plan.dest[i] = d[i];
            plan.src[d[i]] = i;
        }
        return;
    }

    // Misroute path (non-F self-routing attempts, fault studies):
    // unpack each slot's tag and recover its origin through d^-1.
    std::vector<Word> dinv(size);
    for (Word i = 0; i < size; ++i)
        dinv[d[i]] = i;
    for (Word x = 0; x < size; ++x) {
        const Word w = x >> 6;
        const unsigned sh = x & 63;
        Word tag = 0;
        for (unsigned b = 0; b < n_; ++b)
            tag |= ((planes[Word{b} * lane_words_ + w] >> sh) & 1u) << b;
        const Word j = output_of_slot_[x];
        const Word origin = dinv[tag];
        plan.src[j] = origin;
        plan.dest[origin] = j;
        if (tag != j)
            plan.misrouted_outputs.push_back(j);
    }
    std::sort(plan.misrouted_outputs.begin(),
              plan.misrouted_outputs.end());
}

FastPlan
FastEngine::routePlan(const Permutation &d, RoutingMode mode) const
{
    if (d.size() != num_lines_)
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(num_lines_));
    FastPlan plan;
    loadTagPlanes(d, t_planes);
    runPlanes(t_planes, plan, nullptr, mode);
    finishPlan(plan, d, t_planes);
    if (routes_planned_)
        routes_planned_->inc();
    return plan;
}

FastPlan
FastEngine::planWithStates(const Permutation &d,
                           const SwitchStates &states) const
{
    if (states.size() != numStages())
        fatal("state array has %zu stages, network has %u",
              states.size(), numStages());
    PackedStates packed = packStates(states);
    return planWithPacked(d, packed);
}

FastPlan
FastEngine::planWithPacked(const Permutation &d,
                           const PackedStates &packed) const
{
    if (d.size() != num_lines_)
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(num_lines_));
    if (packed.n != n_ ||
        packed.words.size() != Word{numStages()} * packed.words_per_stage)
        fatal("packed states shaped for another network");

    // Scatter the physical-order bits onto upper-input slots once;
    // the route itself then runs exactly like the self-set case.
    const unsigned stages = numStages();
    std::vector<Word> forced(Word{stages} * lane_words_, 0);
    for (unsigned s = 0; s < stages; ++s) {
        const Word *slot = switch_slot_.data() + Word{s} * switchesPerStage();
        for (Word i = 0; i < switchesPerStage(); ++i) {
            if (!packed.get(s, i))
                continue;
            const Word x = slot[i];
            forced[Word{s} * lane_words_ + (x >> 6)] |= Word{1}
                                                        << (x & 63);
        }
    }

    FastPlan plan;
    loadTagPlanes(d, t_planes);
    runPlanes(t_planes, plan, &forced, RoutingMode::SelfRouting);
    finishPlan(plan, d, t_planes);
    return plan;
}

RouteResult
FastEngine::toRouteResult(const FastPlan &plan,
                          const Permutation &d) const
{
    RouteResult res;
    res.success = plan.success;
    res.gate_delay = numStages();
    res.states = planStates(plan);
    res.realized_dest = plan.dest;
    res.misrouted_outputs = plan.misrouted_outputs;
    res.output_tags.resize(num_lines_);
    for (Word j = 0; j < num_lines_; ++j)
        res.output_tags[j] = d[plan.src[j]];
    return res;
}

RouteResult
FastEngine::route(const Permutation &d, RoutingMode mode) const
{
    return toRouteResult(routePlan(d, mode), d);
}

RouteResult
FastEngine::routeWithStates(const Permutation &d,
                            const SwitchStates &states) const
{
    return toRouteResult(planWithStates(d, states), d);
}

void
FastEngine::executeInto(const FastPlan &plan,
                        const std::vector<Word> &data,
                        std::vector<Word> &out) const
{
    if (data.size() != num_lines_)
        fatal("payload vector size %zu != N = %llu", data.size(),
              static_cast<unsigned long long>(num_lines_));
    if (plan.src.size() != num_lines_)
        fatal("plan shaped for another network");
    out.resize(num_lines_);
    activeKernels().gather(out.data(), data.data(), plan.src.data(),
                           num_lines_);
    if (executes_)
        executes_->inc();
}

std::vector<Word>
FastEngine::execute(const FastPlan &plan,
                    const std::vector<Word> &data) const
{
    std::vector<Word> out;
    executeInto(plan, data, out);
    return out;
}

std::vector<std::vector<Word>>
FastEngine::executeMany(const FastPlan &plan,
                        const std::vector<std::vector<Word>> &batch,
                        unsigned num_threads) const
{
    std::vector<std::vector<Word>> outs(batch.size());
    if (batch_vectors_)
        batch_vectors_->observe(batch.size());
    if (num_threads <= 1 || batch.empty()) {
        for (std::size_t v = 0; v < batch.size(); ++v) {
            // Start the next payload's stream while this gather runs.
            if (v + 1 < batch.size())
                prefetchWords(batch[v + 1].data(), num_lines_);
            executeInto(plan, batch[v], outs[v]);
        }
        return outs;
    }

    for (std::size_t v = 0; v < batch.size(); ++v) {
        if (batch[v].size() != num_lines_)
            fatal("payload vector size %zu != N = %llu",
                  batch[v].size(),
                  static_cast<unsigned long long>(num_lines_));
        outs[v].resize(num_lines_);
    }
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const Word T = std::min<Word>(std::min(num_threads, hw), num_lines_);
    const Word *src = plan.src.data();
    const KernelTable &kern = activeKernels();
    auto worker = [&](Word lo, Word hi) {
        for (std::size_t v = 0; v < batch.size(); ++v) {
            if (v + 1 < batch.size())
                prefetchWords(batch[v + 1].data() + lo, hi - lo);
            kern.gather(outs[v].data() + lo, batch[v].data(), src + lo,
                        hi - lo);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(T);
    const Word chunk = (num_lines_ + T - 1) / T;
    for (Word t = 0; t < T; ++t) {
        const Word lo = t * chunk;
        const Word hi = std::min(num_lines_, lo + chunk);
        if (lo >= hi)
            break;
        threads.emplace_back(worker, lo, hi);
    }
    for (auto &th : threads)
        th.join();
    if (executes_)
        executes_->inc(batch.size());
    return outs;
}

std::vector<std::vector<Word>>
FastEngine::routeBatch(const Permutation &d,
                       const std::vector<std::vector<Word>> &batch,
                       RoutingMode mode, unsigned num_threads) const
{
    return executeMany(routePlan(d, mode), batch, num_threads);
}

SwitchStates
FastEngine::planStates(const FastPlan &plan) const
{
    if (plan.ctrl.size() != Word{numStages()} * lane_words_)
        fatal("plan carries no per-stage control masks");
    SwitchStates out(numStages(),
                     std::vector<std::uint8_t>(switchesPerStage()));
    for (unsigned s = 0; s < numStages(); ++s) {
        const Word *ctrl = plan.ctrl.data() + Word{s} * lane_words_;
        const Word *slot = switch_slot_.data() + Word{s} * switchesPerStage();
        for (Word i = 0; i < switchesPerStage(); ++i) {
            const Word x = slot[i];
            out[s][i] = static_cast<std::uint8_t>(
                (ctrl[x >> 6] >> (x & 63)) & 1u);
        }
    }
    return out;
}

PackedStates
FastEngine::planPackedStates(const FastPlan &plan) const
{
    if (plan.ctrl.size() != Word{numStages()} * lane_words_)
        fatal("plan carries no per-stage control masks");
    PackedStates packed;
    packed.n = n_;
    packed.words_per_stage = (switchesPerStage() + 63) / 64;
    packed.words.assign(Word{numStages()} * packed.words_per_stage, 0);
    for (unsigned s = 0; s < numStages(); ++s) {
        const Word *ctrl = plan.ctrl.data() + Word{s} * lane_words_;
        const Word *slot = switch_slot_.data() + Word{s} * switchesPerStage();
        for (Word i = 0; i < switchesPerStage(); ++i) {
            const Word x = slot[i];
            if ((ctrl[x >> 6] >> (x & 63)) & 1u)
                packed.set(s, i, true);
        }
    }
    return packed;
}

PackedStates
FastEngine::packStates(const SwitchStates &states) const
{
    if (states.size() != numStages())
        fatal("state array has %zu stages, network has %u",
              states.size(), numStages());
    PackedStates packed;
    packed.n = n_;
    packed.words_per_stage = (switchesPerStage() + 63) / 64;
    packed.words.assign(Word{numStages()} * packed.words_per_stage, 0);
    for (unsigned s = 0; s < numStages(); ++s) {
        if (states[s].size() != switchesPerStage())
            fatal("stage %u has %zu switches, network has %llu", s,
                  states[s].size(),
                  static_cast<unsigned long long>(switchesPerStage()));
        for (Word i = 0; i < switchesPerStage(); ++i)
            if (states[s][i])
                packed.set(s, i, true);
    }
    return packed;
}

SwitchStates
FastEngine::unpackStates(const PackedStates &packed) const
{
    if (packed.n != n_ ||
        packed.words.size() != Word{numStages()} * packed.words_per_stage)
        fatal("packed states shaped for another network");
    SwitchStates out(numStages(),
                     std::vector<std::uint8_t>(switchesPerStage()));
    for (unsigned s = 0; s < numStages(); ++s)
        for (Word i = 0; i < switchesPerStage(); ++i)
            out[s][i] = packed.get(s, i) ? 1 : 0;
    return out;
}

} // namespace srbenes
