#include "core/waksman_reduced.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

void
collectFixed(unsigned m, Word base_line, unsigned base_stage,
             std::vector<FixedSwitch> &fixed)
{
    if (m < 2)
        return;
    // Closing switch of local output pair 0.
    fixed.push_back(
        FixedSwitch{base_stage + 2 * m - 2, base_line / 2});
    collectFixed(m - 1, base_line, base_stage + 1, fixed);
    collectFixed(m - 1, base_line + (Word{1} << (m - 1)),
                 base_stage + 1, fixed);
}

void
setupReduced(SwitchStates &states, const std::vector<Word> &d,
             unsigned m, Word base_line, unsigned base_stage)
{
    const Word size = Word{1} << m;
    const Word sw_base = base_line / 2;

    if (m == 1) {
        states[base_stage][sw_base] =
            static_cast<std::uint8_t>(d[0] == 1);
        return;
    }

    std::vector<Word> dinv(size);
    for (Word x = 0; x < size; ++x)
        dinv[d[x]] = x;

    std::vector<int> up(size, -1);
    auto chase = [&](Word start, int val) {
        Word x = start;
        while (up[x] == -1) {
            up[x] = val;
            up[x ^ 1] = 1 - val;
            x = dinv[d[x ^ 1] ^ 1];
        }
    };

    // Waksman's forced loop: output 0 must come from the upper
    // half, so the closing switch of output pair 0 stays straight
    // and can be omitted from the hardware.
    chase(dinv[0], 0);
    for (Word p = 0; p < size / 2; ++p)
        if (up[2 * p] == -1)
            chase(2 * p, 0);

    for (Word i = 0; i < size / 2; ++i)
        states[base_stage][sw_base + i] =
            static_cast<std::uint8_t>(up[2 * i]);

    const unsigned last_stage = base_stage + 2 * m - 2;
    for (Word j = 0; j < size / 2; ++j)
        states[last_stage][sw_base + j] =
            static_cast<std::uint8_t>(up[dinv[2 * j]]);
    if (states[last_stage][sw_base] != 0)
        panic("Waksman reduction violated: fixed switch crossed");

    std::vector<Word> usub(size / 2), lsub(size / 2);
    for (Word i = 0; i < size / 2; ++i) {
        const Word x_up = 2 * i + static_cast<Word>(up[2 * i] != 0);
        usub[i] = d[x_up] >> 1;
        lsub[i] = d[x_up ^ 1] >> 1;
    }
    setupReduced(states, usub, m - 1, base_line, base_stage + 1);
    setupReduced(states, lsub, m - 1, base_line + size / 2,
                 base_stage + 1);
}

} // namespace

std::vector<FixedSwitch>
waksmanFixedSwitches(const BenesTopology &topo)
{
    std::vector<FixedSwitch> fixed;
    collectFixed(topo.n(), 0, 0, fixed);
    return fixed;
}

Word
waksmanReducedSwitchCount(unsigned n)
{
    const Word size = Word{1} << n;
    return size * n - size + 1;
}

SwitchStates
waksmanReducedSetup(const BenesTopology &topo, const Permutation &d)
{
    if (d.size() != topo.numLines())
        fatal("permutation size %zu does not match network N = %llu",
              d.size(),
              static_cast<unsigned long long>(topo.numLines()));
    SwitchStates states = topo.makeStates();
    setupReduced(states, d.dest(), topo.n(), 0, 0);
    return states;
}

} // namespace srbenes
